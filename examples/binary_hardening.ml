(* The binary-instrumentation path (SV-C/SV-D): take an already-compiled
   SSP binary and upgrade it to P-SSP without moving a single byte.

     dune exec examples/binary_hardening.exe *)

let source = Workload.Vuln.fork_server ~buffer_size:16

let show_handler title image =
  Printf.printf "%s\n" title;
  List.iter
    (fun (addr, insn) ->
      Printf.printf "  %6Lx:  %s\n" addr (Isa.Asm.to_string (Os.Image.annotate_targets image insn)))
    (Os.Image.disassemble_symbol image "handle");
  print_newline ()

let () =
  (* the legacy binary: compiled with -fstack-protector only *)
  let ssp = Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp (Minic.Parser.parse source) in
  show_handler "handle() as shipped (plain SSP, Codes 1/2):" ssp;

  (* the rewriter finds the SSP patterns and patches them in place *)
  let patched, report = Rewriter.Driver.instrument ssp in
  Format.printf "rewriter report: %a@.@." Rewriter.Driver.pp_report report;
  show_handler "handle() after instrumentation (Codes 5/6):" patched;
  Printf.printf "text size before/after: %d / %d bytes (address layout preserved)\n\n"
    (Os.Image.code_size ssp) (Os.Image.code_size patched);

  (* byte-by-byte: the original falls, the hardened binary does not *)
  let attack image preload label =
    let oracle = Attack.Oracle.create ~preload image in
    let layout = { Attack.Payload.overflow_distance = 16; canary_len = 8 } in
    let outcome = Attack.Byte_by_byte.run oracle ~layout ~max_trials:15_000 in
    Printf.printf "%-22s %s\n" label (Attack.Byte_by_byte.outcome_to_string outcome)
  in
  attack ssp Os.Preload.No_preload "original SSP binary:";
  attack patched (Rewriter.Driver.required_preload patched) "instrumented binary:";

  (* the static-link variant grows a new section instead of a preload *)
  let ssp_static =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp ~linkage:Os.Image.Static
      (Minic.Parser.parse source)
  in
  let patched_static, report_static = Rewriter.Driver.instrument ssp_static in
  Format.printf "@.static binary: %a@." Rewriter.Driver.pp_report report_static;
  Printf.printf "added symbols: %s\n"
    (String.concat ", "
       (List.filter_map
          (fun (s : Os.Image.symbol) ->
            if String.length s.Os.Image.sym_name > 6
               && String.sub s.Os.Image.sym_name 0 6 = "__pssp"
            then Some s.Os.Image.sym_name
            else None)
          patched_static.Os.Image.symbols))
