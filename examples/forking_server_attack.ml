(* The paper's headline experiment (SII-B vs SIII-C): a byte-by-byte
   attack against a forking network server.

     dune exec examples/forking_server_attack.exe

   Under SSP every forked worker inherits the same stack canary, so the
   attacker confirms it one byte at a time (~8 x 128 trials). Under
   P-SSP each fork re-randomizes the (C0, C1) shadow pair, so confirmed
   bytes go stale and nothing accumulates. *)

let buffer_size = 16

let campaign scheme ~budget =
  Printf.printf "== %s ==\n%!" (Pssp.Scheme.title scheme);
  let source = Workload.Vuln.fork_server ~buffer_size in
  let image = Mcc.Driver.compile ~scheme (Minic.Parser.parse source) in
  let oracle =
    Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image
  in
  let layout =
    {
      Attack.Payload.overflow_distance = buffer_size;
      canary_len = 8 * Pssp.Scheme.stack_words scheme;
    }
  in
  (* a few warm-up probes, narrated *)
  Printf.printf "  probe: benign request            -> %s\n"
    (match Attack.Oracle.query oracle (Bytes.of_string "GET /") with
    | Attack.Oracle.Survived _ -> "worker replied"
    | Attack.Oracle.Crashed (_, m) -> m
    | Attack.Oracle.Server_down m -> m);
  Printf.printf "  probe: %d-byte overflow          -> %s\n"
    (buffer_size + 1)
    (match Attack.Oracle.query oracle (Bytes.make (buffer_size + 1) 'A') with
    | Attack.Oracle.Survived _ -> "worker replied (!)"
    | Attack.Oracle.Crashed (_, _) -> "worker crashed; parent respawns"
    | Attack.Oracle.Server_down m -> m);
  let outcome = Attack.Byte_by_byte.run oracle ~layout ~max_trials:budget in
  Printf.printf "  campaign: %s\n\n" (Attack.Byte_by_byte.outcome_to_string outcome)

let () =
  print_endline
    "Byte-by-byte (BROP-style) attack against a fork-per-request server\n";
  campaign Pssp.Scheme.Ssp ~budget:20_000;
  campaign Pssp.Scheme.Pssp ~budget:20_000;
  campaign Pssp.Scheme.Pssp_nt ~budget:20_000;
  print_endline
    "SSP falls in about a thousand trials (paper: ~1024); the polymorphic\n\
     schemes burn the whole budget without holding more than a lucky byte."
