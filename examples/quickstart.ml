(* Quickstart: compile a vulnerable Mini-C program, run it on the
   simulated machine, and watch the canary schemes catch an overflow.

     dune exec examples/quickstart.exe *)

let vulnerable_source =
  {|
int greet() {
  char name[16];
  read_input(name);      /* recv-like: no bounds check! */
  print_str("hi there\n");
  return 0;
}

int main() {
  greet();
  return 0;
}
|}

let run_under scheme ~input =
  (* 1. compile (the "LLVM pass" step) *)
  let program = Minic.Parser.parse vulnerable_source in
  let image = Mcc.Driver.compile ~name:"greeter" ~scheme program in
  (* 2. load into a fresh simulated process, with the runtime support the
        scheme needs (the LD_PRELOAD shim for P-SSP) *)
  let kernel = Os.Kernel.create () in
  let proc =
    Os.Kernel.spawn kernel ~input ~preload:(Mcc.Driver.preload_for scheme) image
  in
  (* 3. run to completion *)
  let stop =
          Os.Kernel.enqueue kernel proc;
          Os.Kernel.schedule kernel;
          Os.Kernel.stop_of proc
        in
  Printf.printf "  %-10s %-12s -> %s\n" (Pssp.Scheme.name scheme)
    (Printf.sprintf "(%dB input)" (Bytes.length input))
    (Os.Kernel.stop_to_string stop)

let () =
  print_endline "A friendly request (fits the 16-byte buffer):";
  List.iter
    (fun s -> run_under s ~input:(Bytes.of_string "alice"))
    [ Pssp.Scheme.None_; Pssp.Scheme.Ssp; Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_owf ];
  print_endline "";
  print_endline "A 48-byte overflow (through the canary into the return address):";
  List.iter
    (fun s -> run_under s ~input:(Bytes.make 48 'A'))
    [ Pssp.Scheme.None_; Pssp.Scheme.Ssp; Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_owf ];
  print_endline "";
  print_endline
    "Unprotected, the overflow seizes the return address (segfault at\n\
     0x4141...); every canary scheme turns it into a clean abort.";
  (* bonus: look at the code the P-SSP pass emitted (Codes 3 and 4) *)
  print_endline "";
  print_endline "The P-SSP prologue/epilogue emitted for greet():";
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp (Minic.Parser.parse vulnerable_source)
  in
  List.iter
    (fun (addr, insn) ->
      Printf.printf "  %6Lx:  %s\n" addr (Isa.Asm.to_string (Os.Image.annotate_targets image insn)))
    (Os.Image.disassemble_symbol image "greet")
