(* P-SSP-LV (SIV-B): guarding critical local variables, not just the
   return address.

     dune exec examples/local_variable_guard.exe

   The victim keeps an audit buffer marked `critical` above a plain
   input buffer. A measured overflow corrupts the audit data but stops
   short of the return-address guard - stealthy under every
   return-address-only scheme, caught by P-SSP-LV's per-variable
   canary. *)

let () =
  print_endline "Victim (note the `critical` qualifier):";
  print_endline Workload.Vuln.lv_stealth_victim;
  let payload = Workload.Vuln.lv_stealth_payload in
  Printf.printf "Attack payload: %d bytes (fills input[16], spills 8 into whatever sits above)\n\n"
    (Bytes.length payload);
  let run scheme =
    let image =
      Mcc.Driver.compile ~scheme (Minic.Parser.parse Workload.Vuln.lv_stealth_victim)
    in
    let kernel = Os.Kernel.create () in
    let proc =
      Os.Kernel.spawn kernel ~input:payload
        ~preload:(Mcc.Driver.preload_for scheme) image
    in
    let stop =
          Os.Kernel.enqueue kernel proc;
          Os.Kernel.schedule kernel;
          Os.Kernel.stop_of proc
        in
    Printf.printf "  %-10s -> %-45s stdout: %s\n" (Pssp.Scheme.name scheme)
      (Os.Kernel.stop_to_string stop)
      (String.trim (Os.Process.stdout proc))
  in
  run Pssp.Scheme.Ssp;
  run Pssp.Scheme.Pssp_nt;
  run (Pssp.Scheme.Pssp_lv 1);
  print_endline
    "\nUnder SSP / P-SSP-NT the run exits cleanly with audit=X - the audit\n\
     record was silently corrupted (the paper's 'far more stealthy'\n\
     non-control-data attack). P-SSP-LV's canary below the critical\n\
     variable dies instead, and the epilogue aborts.";
  (* show the Algorithm 2 chain invariant at the model level *)
  let rng = Util.Prng.create 0xD1CEL in
  let c = 0x1122334455667788L in
  let chain = Pssp.Canary.split_chain rng c ~n:3 in
  Printf.printf
    "\nAlgorithm 2 invariant: XOR of all %d frame canaries = C (%b)\n"
    (List.length chain)
    (Pssp.Canary.chain_checks_out ~tls_canary:c chain)
