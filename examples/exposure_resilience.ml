(* P-SSP-OWF (SIV-C): surviving a canary disclosure.

     dune exec examples/exposure_resilience.exe

   The victim has two handlers: one leaks its own stack (an OOB read,
   standing in for a format-string bug), the other has the classic
   unbounded overflow. Leaking frame A's canary under P-SSP reveals
   C = C0 xor C1, which forges canaries for EVERY frame. Under
   P-SSP-OWF the leak is a MAC bound to frame A's return address and
   transfers nowhere. *)

let () =
  print_endline "Victim server (two handlers: 'L...' leaks, anything else overflows):";
  print_endline Workload.Vuln.leaky_server;
  List.iter
    (fun scheme ->
      let hijacked, leaked = Harness.Exposure.attack_with_leak scheme in
      Printf.printf "  %-10s leaked canary region: %s\n" (Pssp.Scheme.name scheme) leaked;
      Printf.printf "  %-10s forged canary in the OTHER handler: %s\n\n"
        "" (if hijacked then "HIJACK SUCCEEDED" else "detected and aborted"))
    [ Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_nt; Pssp.Scheme.Pssp_owf ];
  print_endline
    "One leaked (C0, C1) pair breaks P-SSP everywhere; the AES-bound\n\
     P-SSP-OWF canary is worthless outside its own frame - the paper's\n\
     'stack canary exposure resilience'.";
  (* the same point at the model level *)
  let f = Crypto.Oneway.create ~key_lo:0x1234L ~key_hi:0x5678L in
  let a = Crypto.Oneway.evaluate f ~ret:0x400100L ~nonce:42L in
  let b = Crypto.Oneway.evaluate f ~ret:0x400200L ~nonce:42L in
  Printf.printf
    "\nModel check: F(ret_A||n, C) = F(ret_B||n, C)? %b (different frames,\n\
     different canaries, same key)\n"
    (a = b)
