(* pssp — command-line front end: compile/run/disassemble Mini-C programs
   under any protection scheme, instrument SSP binaries, and launch
   attack campaigns. *)

open Cmdliner

let read_source path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let scheme_conv =
  let parse s =
    match Pssp.Scheme.of_name s with
    | Some scheme -> Ok scheme
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Pssp.Scheme.name s))

let scheme_arg =
  let doc =
    "Protection scheme: none, ssp, raf-ssp, dynaguard, dcr, pssp, pssp-nt, \
     pssp-lvN, pssp-owf, pssp-owf-weak, shadow-compact, shadow-parallel, \
     pac-canary, wasm-ssp."
  in
  Arg.(value & opt scheme_conv Pssp.Scheme.Pssp & info [ "s"; "scheme" ] ~doc)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c" ~doc:"Mini-C source file")

let input_arg =
  let doc = "Bytes fed to the program's stdin (read_input/read_n)." in
  Arg.(value & opt string "" & info [ "i"; "input" ] ~doc)

let static_arg =
  Arg.(value & flag & info [ "static" ] ~doc:"Link statically (embed glibc stubs).")

let compile_image ~scheme ~static path =
  let linkage = if static then Os.Image.Static else Os.Image.Dynamic in
  Mcc.Driver.compile ~name:(Filename.basename path) ~scheme ~linkage
    (Minic.Parser.parse (read_source path))

(* ---- telemetry options (shared flag semantics with bench via Harness.Cli) -- *)

let profile_conv =
  let parse s =
    match Harness.Cli.parse_profile_top s with
    | Ok n -> Ok n
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt n -> Format.fprintf fmt "top=%d" n)

let telemetry_term =
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the final registry snapshot as schema-2 metrics JSON.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Stream trace spans (JSONL, one object per line) to $(docv).")
  in
  let profile_arg =
    Arg.(
      value
      & opt (some profile_conv) None
      & info [ "profile" ] ~docv:"top=N"
          ~doc:"Cycle-attributed VM profile; print the N hottest guest symbols.")
  in
  let make metrics_out trace_out profile_top =
    let o = Harness.Cli.telemetry_opts () in
    o.Harness.Cli.metrics_out <- metrics_out;
    o.Harness.Cli.trace_out <- trace_out;
    o.Harness.Cli.profile_top <- profile_top;
    o
  in
  Term.(const make $ metrics_out_arg $ trace_out_arg $ profile_arg)

let image_resolver image addr =
  Option.map
    (fun sym -> sym.Os.Image.sym_name)
    (Os.Image.symbol_covering image addr)

let wrap f =
  try f () with
  | Minic.Lexer.Error (line, msg) ->
    Printf.eprintf "lex error (line %d): %s\n" line msg;
    exit 1
  | Minic.Parser.Error (line, msg) ->
    Printf.eprintf "parse error (line %d): %s\n" line msg;
    exit 1
  | Minic.Typecheck.Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

(* ---- compile / exec ---------------------------------------------------------- *)

let compile_cmd =
  let action scheme static optimize path out =
    wrap (fun () ->
        let linkage = if static then Os.Image.Static else Os.Image.Dynamic in
        let image =
          Mcc.Driver.compile ~name:(Filename.basename path) ~scheme ~linkage
            ~optimize
            (Minic.Parser.parse (read_source path))
        in
        Os.Objfile.save image out;
        Printf.printf "wrote %s (%d code bytes, scheme %s)\n" out
          (Os.Image.code_size image) image.Os.Image.scheme_tag)
  in
  let out_arg =
    Arg.(value & opt string "a.out.pssp" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let opt_flag =
    Arg.(value & flag & info [ "O" ] ~doc:"Enable the peephole optimiser.")
  in
  let doc = "Compile a Mini-C program to an on-disk pssp executable." in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const action $ scheme_arg $ static_arg $ opt_flag $ file_arg $ out_arg)

let exec_cmd =
  let action path input telem =
    wrap (fun () ->
        let image =
          try Os.Objfile.load path
          with Os.Objfile.Format_error msg ->
            Printf.eprintf "%s: %s\n" path msg;
            exit 1
        in
        let preload =
          match Pssp.Scheme.of_name image.Os.Image.scheme_tag with
          | Some scheme -> Mcc.Driver.preload_for scheme
          | None -> Rewriter.Driver.required_preload image
        in
        Harness.Cli.telemetry_start telem;
        let kernel = Os.Kernel.create () in
        let proc =
          Os.Kernel.spawn kernel ~input:(Bytes.of_string input) ~preload image
        in
        let stop =
          Os.Kernel.enqueue kernel proc;
          Os.Kernel.schedule kernel;
          Os.Kernel.stop_of proc
        in
        print_string (Os.Process.stdout proc);
        prerr_string (Os.Process.stderr proc);
        Printf.printf "[%s: %s]\n" image.Os.Image.name
          (Os.Kernel.stop_to_string stop);
        (* [exit] skips Fun.protect finalisers, so flush the telemetry
           sinks before leaving. *)
        Harness.Cli.telemetry_finish ~resolve:(image_resolver image) telem;
        match stop with Os.Kernel.Stop_exit n -> exit n | _ -> exit 128)
  in
  let bin_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.pssp" ~doc:"Executable.")
  in
  let doc = "Load and run an on-disk pssp executable." in
  Cmd.v (Cmd.info "exec" ~doc) Term.(const action $ bin_arg $ input_arg $ telemetry_term)

(* ---- run ------------------------------------------------------------------- *)

let run_cmd =
  let action scheme static path input telem =
    wrap (fun () ->
        let image = compile_image ~scheme ~static path in
        Harness.Cli.telemetry_start telem;
        let kernel = Os.Kernel.create () in
        let proc =
          Os.Kernel.spawn kernel
            ~input:(Bytes.of_string input)
            ~preload:(Mcc.Driver.preload_for scheme) image
        in
        let stop =
          Os.Kernel.enqueue kernel proc;
          Os.Kernel.schedule kernel;
          Os.Kernel.stop_of proc
        in
        print_string (Os.Process.stdout proc);
        prerr_string (Os.Process.stderr proc);
        Printf.printf "[%s under %s: %s, %Ld cycles]\n" (Filename.basename path)
          (Pssp.Scheme.title scheme) (Os.Kernel.stop_to_string stop)
          (Os.Process.cycles proc);
        (* [exit] skips Fun.protect finalisers, so flush the telemetry
           sinks before leaving. *)
        Harness.Cli.telemetry_finish ~resolve:(image_resolver image) telem;
        match stop with Os.Kernel.Stop_exit n -> exit n | _ -> exit 128)
  in
  let doc = "Compile and run a Mini-C program on the simulated machine." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const action $ scheme_arg $ static_arg $ file_arg $ input_arg $ telemetry_term)

(* ---- disasm ---------------------------------------------------------------- *)

let disasm_cmd =
  let action scheme static path =
    wrap (fun () ->
        let image = compile_image ~scheme ~static path in
        Format.printf "%a@?" Os.Image.pp_disassembly image)
  in
  let doc = "Compile a Mini-C program and print its disassembly." in
  Cmd.v (Cmd.info "disasm" ~doc)
    Term.(const action $ scheme_arg $ static_arg $ file_arg)

(* ---- rewrite ---------------------------------------------------------------- *)

let rewrite_cmd =
  let action static path run_it input =
    wrap (fun () ->
        let ssp = compile_image ~scheme:Pssp.Scheme.Ssp ~static path in
        let patched, report = Rewriter.Driver.instrument ssp in
        Format.printf "rewriter: %a@." Rewriter.Driver.pp_report report;
        if run_it then begin
          let kernel = Os.Kernel.create () in
          let proc =
            Os.Kernel.spawn kernel
              ~input:(Bytes.of_string input)
              ~preload:(Rewriter.Driver.required_preload patched)
              patched
          in
          let stop =
          Os.Kernel.enqueue kernel proc;
          Os.Kernel.schedule kernel;
          Os.Kernel.stop_of proc
        in
          print_string (Os.Process.stdout proc);
          Printf.printf "[instrumented: %s]\n" (Os.Kernel.stop_to_string stop)
        end
        else Format.printf "%a@?" Os.Image.pp_disassembly patched)
  in
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Run the instrumented binary instead of disassembling it.")
  in
  let doc =
    "Compile with plain SSP, upgrade the binary to P-SSP with the rewriter \
     (SV-C), then disassemble or run it."
  in
  Cmd.v (Cmd.info "rewrite" ~doc)
    Term.(const action $ static_arg $ file_arg $ run_flag $ input_arg)

(* ---- trace ------------------------------------------------------------------- *)

let trace_cmd =
  let action scheme path input window =
    wrap (fun () ->
        let image = compile_image ~scheme ~static:false path in
        let tracer = Os.Debug.ring_tracer ~capacity:window in
        let kernel = Os.Kernel.create ~on_retire:(Os.Debug.on_retire tracer) () in
        let proc =
          Os.Kernel.spawn kernel ~input:(Bytes.of_string input)
            ~preload:(Mcc.Driver.preload_for scheme) image
        in
        let stop =
          Os.Kernel.enqueue kernel proc;
          Os.Kernel.schedule kernel;
          Os.Kernel.stop_of proc
        in
        Printf.printf "stopped: %s (%d instructions retired)\n"
          (Os.Kernel.stop_to_string stop)
          (Os.Debug.retired tracer);
        Printf.printf "last %d instructions (oldest first):\n" window;
        List.iter (fun l -> print_endline ("  " ^ l)) (Os.Debug.recent tracer ~image ());
        print_endline "autopsy:";
        Format.printf "%a@?" Os.Autopsy.pp_report (Os.Autopsy.examine proc))
  in
  let window_arg =
    Arg.(value & opt int 24 & info [ "window" ] ~doc:"Instructions to retain.")
  in
  let doc = "Run a program with an execution tracer and print the tail + backtrace." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const action $ scheme_arg $ file_arg $ input_arg $ window_arg)

(* ---- attack ----------------------------------------------------------------- *)

let attack_cmd =
  let action scheme budget buffer =
    wrap (fun () ->
        let src = Workload.Vuln.fork_server ~buffer_size:buffer in
        let image = Mcc.Driver.compile ~scheme (Minic.Parser.parse src) in
        let oracle =
          Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image
        in
        let layout =
          {
            Attack.Payload.overflow_distance = buffer;
            canary_len = 8 * Pssp.Scheme.stack_words scheme;
          }
        in
        Printf.printf
          "byte-by-byte attack vs a forking server under %s (buffer %d, budget %d)...\n%!"
          (Pssp.Scheme.title scheme) buffer budget;
        let outcome = Attack.Byte_by_byte.run oracle ~layout ~max_trials:budget in
        print_endline (Attack.Byte_by_byte.outcome_to_string outcome))
  in
  let budget_arg =
    Arg.(value & opt int 20000 & info [ "budget" ] ~doc:"Trial budget.")
  in
  let buffer_arg =
    Arg.(value & opt int 16 & info [ "buffer" ] ~doc:"Victim buffer size (multiple of 8).")
  in
  let doc = "Run the SII-B byte-by-byte attack against a forking server." in
  Cmd.v (Cmd.info "attack" ~doc)
    Term.(const action $ scheme_arg $ budget_arg $ buffer_arg)

(* ---- fuzz ------------------------------------------------------------------- *)

let fuzz_cmd =
  let action count seed_base jobs verbose =
    let jobs = if jobs = 0 then Harness.Pool.default_jobs () else jobs in
    let check i =
      let seed = Int64.add seed_base (Int64.of_int (i * 7919)) in
      let program = Workload.Progen.generate ~seed in
      let run scheme =
        let image = Mcc.Driver.compile ~scheme program in
        let kernel = Os.Kernel.create () in
        let proc =
          Os.Kernel.spawn kernel ~preload:(Mcc.Driver.preload_for scheme) image
        in
        let stop =
          Os.Kernel.enqueue kernel proc;
          Os.Kernel.schedule ~fuel:20_000_000 kernel;
          Os.Kernel.stop_of proc
        in
        (stop, Os.Process.stdout proc)
      in
      let reference = run Pssp.Scheme.None_ in
      let diverged =
        List.filter_map
          (fun scheme ->
            if run scheme <> reference then Some (Pssp.Scheme.name scheme) else None)
          [ Pssp.Scheme.Ssp; Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_nt; Pssp.Scheme.Pssp_owf ]
      in
      (seed, diverged)
    in
    (* Run the campaigns in parallel, report in seed order so the output
       is identical for every jobs count. *)
    let results = Harness.Pool.map ~jobs check (List.init count Fun.id) in
    let failures = ref 0 in
    List.iter
      (fun (seed, diverged) ->
        if diverged <> [] then begin
          incr failures;
          Printf.printf "seed %Ld DIVERGED under: %s\n" seed
            (String.concat ", " diverged);
          if verbose then print_endline (Workload.Progen.generate_source ~seed)
        end
        else if verbose then Printf.printf "seed %Ld ok\n" seed)
      results;
    Printf.printf "fuzz: %d program(s), %d divergence(s)\n" count !failures;
    if !failures > 0 then exit 1
  in
  let count_arg =
    Arg.(value & opt int 50 & info [ "n" ] ~doc:"Number of random programs.")
  in
  let seed_arg =
    Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Base seed.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ]
          ~doc:"Fuzz in N parallel domains (0 = recommended count).")
  in
  let verbose_arg = Arg.(value & flag & info [ "v" ] ~doc:"Print every seed.") in
  let doc =
    "Differential fuzzing: random Mini-C programs must behave identically      under every protection scheme."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const action $ count_arg $ seed_arg $ jobs_arg $ verbose_arg)

(* ---- bench ------------------------------------------------------------------ *)

let schemes_cmd =
  let action () =
    List.iter
      (fun s -> Printf.printf "%-14s %s\n" (Pssp.Scheme.name s) (Pssp.Scheme.title s))
      (Pssp.Scheme.all_basic @ Pssp.Scheme.all_extensions
      @ [ Pssp.Scheme.Pssp_owf_weak; Pssp.Scheme.Pssp_gb ]
      @ Pssp.Scheme.all_families)
  in
  Cmd.v (Cmd.info "schemes" ~doc:"List available protection schemes.")
    Term.(const action $ const ())

let main_cmd =
  let doc = "Polymorphic Stack Smashing Protection (DSN'18) toolchain" in
  Cmd.group (Cmd.info "pssp" ~version:"1.0.0" ~doc)
    [
      run_cmd; compile_cmd; exec_cmd; disasm_cmd; rewrite_cmd; trace_cmd;
      attack_cmd; fuzz_cmd; schemes_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
