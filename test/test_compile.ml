(* Differential oracle for the compiled execution tiers.

   Every compiled tier must be observationally identical to the
   interpreter: same registers, flags, xmm state, memory, cycle counter,
   RNG draws and fault identity after every run. Rather than trusting
   each specialized closure individually, we fuzz: generate random
   encodable instruction sequences, run each four times from identical
   initial state — interpreter, tier 1 (per-block closures), tier 2
   (chained/fused, with the fuse threshold forced to 1 so superblocks
   actually form), tier 3 (register caching, exercising the spill
   protocol at every fault and kernel boundary) — and compare the
   complete machine state. *)

open Isa
open Vm64

let builtin_addr = 0xB00L

let env =
  Exec.create_env
    ~is_builtin:(fun a -> if a = builtin_addr then Some "blt" else None)
    ()

let text_base = 0x1000L
let data_base = 0x20000L
let data_len = 8192
let stack_base = 0x70000L
let stack_len = 8192

(* ---- random program generation ------------------------------------------- *)

let rand_reg p = Reg.of_index_exn (Util.Prng.int p 16)
let rand_xmm p = Reg.Xmm.of_index_exn (Util.Prng.int p 16)

let rand_cond p =
  match Insn.cond_of_index (Util.Prng.int p 12) with
  | Some c -> c
  | None -> assert false

(* Memory operands concentrate on the data region (so loads see real
   bytes and stores land on mapped pages) but also probe the mapping
   edge and plainly unmapped space, so both tiers' fault paths and
   partial cross-page writes get compared. *)
let rand_mem_record p =
  let mk ?seg_fs ?base ?index disp =
    match Operand.mem ?seg_fs ?base ?index disp with
    | Operand.Mem m -> m
    | _ -> assert false
  in
  match Util.Prng.int p 10 with
  | 0 | 1 | 2 ->
    (* absolute, interior of the data region *)
    mk (Int64.add data_base (Int64.of_int (Util.Prng.int p (data_len - 16))))
  | 3 | 4 ->
    (* base-relative: R15 is pinned to the data base *)
    mk ~base:Reg.R15 (Int64.of_int (Util.Prng.int p 4096))
  | 5 | 6 ->
    (* base + scaled index: R14 is pinned to a small value *)
    let scale =
      match Util.Prng.int p 4 with
      | 0 -> Operand.S1
      | 1 -> Operand.S2
      | 2 -> Operand.S4
      | _ -> Operand.S8
    in
    mk ~base:Reg.R15 ~index:(Reg.R14, scale) (Int64.of_int (Util.Prng.int p 2048))
  | 7 ->
    (* FS-segment form; fs_base is pinned inside the data region *)
    mk ~seg_fs:true (Int64.of_int (Util.Prng.int p 1024))
  | 8 ->
    (* straddling / just past the end of the data mapping *)
    mk (Int64.add data_base (Int64.of_int (data_len - 8 + Util.Prng.int p 24)))
  | _ ->
    (* unmapped *)
    mk 0x9000000L

let rand_operand p =
  match Util.Prng.int p 8 with
  | 0 | 1 | 2 -> Operand.reg (rand_reg p)
  | 3 | 4 ->
    Operand.imm
      (if Util.Prng.bool p then Int64.of_int (Util.Prng.int p 4096 - 2048)
       else Util.Prng.next64 p)
  | _ -> Operand.Mem (rand_mem_record p)

let rand_dst p =
  if Util.Prng.int p 4 = 0 then Operand.Mem (rand_mem_record p)
  else Operand.reg (rand_reg p)

(* Control transfers target the first bytes of the text page: backward
   targets create loops (cut by [max_insns], comparing fuel accounting),
   and targets landing mid-instruction exercise garbage decode in both
   tiers identically. *)
let rand_target p = Insn.Abs (Int64.add text_base (Int64.of_int (Util.Prng.int p 96)))

let rand_insn p =
  match Util.Prng.int p 100 with
  | 0 | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 8 | 9 -> Insn.Mov (rand_dst p, rand_operand p)
  | 10 | 11 | 12 -> Insn.Movb (rand_dst p, rand_operand p)
  | 13 | 14 | 15 -> Insn.Movl (rand_dst p, rand_operand p)
  | 16 | 17 | 18 -> Insn.Lea (rand_reg p, rand_mem_record p)
  | 19 | 20 | 21 | 22 -> Insn.Push (rand_operand p)
  | 23 | 24 | 25 -> Insn.Pop (rand_dst p)
  | 26 | 27 | 28 | 29 | 30 | 31 | 32 | 33 | 34 | 35 | 36 | 37 ->
    let op =
      match Insn.binop_of_index (Util.Prng.int p 10) with
      | Some b -> b
      | None -> assert false
    in
    Insn.Bin (op, rand_dst p, rand_operand p)
  | 38 | 39 | 40 ->
    (* explicit idiv/irem with occasional zero divisor: the #DE path *)
    let op = if Util.Prng.bool p then Insn.Idiv else Insn.Irem in
    let src =
      if Util.Prng.int p 3 = 0 then Operand.imm 0L else rand_operand p
    in
    Insn.Bin (op, Operand.reg (rand_reg p), src)
  | 41 | 42 | 43 ->
    let op =
      match Insn.shiftop_of_index (Util.Prng.int p 3) with
      | Some s -> s
      | None -> assert false
    in
    Insn.Shift (op, rand_dst p, Util.Prng.int p 66)
  | 44 | 45 -> Insn.Neg (rand_dst p)
  | 46 | 47 -> Insn.Not (rand_dst p)
  | 48 | 49 | 50 | 51 -> Insn.Setcc (rand_cond p, rand_reg p)
  | 52 | 53 | 54 | 55 | 56 | 57 -> Insn.Jcc (rand_cond p, rand_target p)
  | 58 -> Insn.Jmp (rand_target p)
  | 59 ->
    Insn.Call
      (if Util.Prng.bool p then Insn.Abs builtin_addr else rand_target p)
  | 60 -> Insn.Call_ind (Operand.reg (rand_reg p))
  | 61 -> Insn.Ret
  | 62 -> Insn.Leave
  | 63 | 64 -> Insn.Rdrand (rand_reg p)
  | 65 -> Insn.Rdtsc (* compiled against the static prefix charge *)
  | 66 -> Insn.Syscall
  | 67 | 68 | 69 -> Insn.Movq_to_xmm (rand_xmm p, rand_reg p)
  | 70 | 71 -> Insn.Movq_from_xmm (rand_reg p, rand_xmm p)
  | 72 | 73 -> Insn.Pinsrq_high (rand_xmm p, rand_reg p)
  | 74 | 75 | 76 -> Insn.Movhps_load (rand_xmm p, rand_mem_record p)
  | 77 | 78 | 79 -> Insn.Movq_store (rand_mem_record p, rand_xmm p)
  | 80 | 81 | 82 | 83 -> Insn.Movdqu_load (rand_xmm p, rand_mem_record p)
  | 84 | 85 | 86 | 87 -> Insn.Movdqu_store (rand_mem_record p, rand_xmm p)
  | 88 | 89 -> Insn.Aesenc (rand_xmm p, rand_xmm p)
  | 90 | 91 -> Insn.Aesenclast (rand_xmm p, rand_xmm p)
  | 92 | 93 | 94 -> Insn.Pcmpeq128 (rand_xmm p, rand_mem_record p)
  | 95 | 96 -> Insn.Pac (rand_reg p, rand_reg p)
  | 97 | 98 -> Insn.Aut (rand_reg p, rand_reg p)
  | _ -> Insn.Nop

(* Not every generated shape is encodable (e.g. mem-to-mem moves);
   resample deterministically until the whole sequence encodes. *)
let rand_program p =
  let rec gen attempts =
    if attempts > 200 then [ Insn.Hlt ]
    else
      let n = 1 + Util.Prng.int p 24 in
      let insns = List.init n (fun _ -> rand_insn p) @ [ Insn.Hlt ] in
      match Encode.list_to_bytes insns with
      | _ -> insns
      | exception _ -> gen (attempts + 1)
  in
  gen 0

(* ---- machine-state capture ------------------------------------------------ *)

type snapshot = {
  s_result : Exec.run_result;
  s_gprs : int64 array;
  s_xmms : (int64 * int64) array;
  s_rip : int64;
  s_flags : bool * bool * bool * bool;
  s_cycles : int64;
  s_text : bytes;
  s_data : bytes;
  s_stack : bytes;
}

let run_one ~tier ~trial_seed ~taxes:(insn_tax, call_tax) ~init_gprs ~init_xmms
    ~data ~code =
  Compile.set_tier tier;
  let cpu = Cpu.create ~seed:trial_seed () in
  (* keyed MAC for Pac/Aut: same derivation in every tier, so signed
     values and authentication verdicts must agree bit-for-bit *)
  cpu.Cpu.pac_key <- Int64.logxor trial_seed 0x9E3779B97F4A7C15L;
  let mem = Memory.create () in
  Memory.map mem ~addr:text_base ~len:4096;
  Memory.map mem ~addr:data_base ~len:data_len;
  Memory.map mem ~addr:stack_base ~len:stack_len;
  Memory.write_bytes mem data_base data;
  Memory.write_bytes mem text_base code;
  Array.blit init_gprs 0 cpu.Cpu.gprs 0 16;
  Array.iteri (fun i v -> cpu.Cpu.xmms.(i) <- v) init_xmms;
  Cpu.set cpu Reg.RSP 0x71800L;
  Cpu.set cpu Reg.R15 data_base;
  Cpu.set cpu Reg.R14 (Int64.of_int (Int64.to_int init_gprs.(14) land 15));
  cpu.Cpu.fs_base <- 0x20400L;
  cpu.Cpu.insn_tax <- insn_tax;
  cpu.Cpu.call_tax <- call_tax;
  cpu.Cpu.rip <- text_base;
  let result = Exec.run ~max_insns:200 env cpu mem in
  Compile.set_tier 3;
  {
    s_result = result;
    s_gprs = Array.copy cpu.Cpu.gprs;
    s_xmms = Array.copy cpu.Cpu.xmms;
    s_rip = cpu.Cpu.rip;
    s_flags =
      ( cpu.Cpu.flags.Cpu.zf,
        cpu.Cpu.flags.Cpu.sf,
        cpu.Cpu.flags.Cpu.cf,
        cpu.Cpu.flags.Cpu.of_ );
    s_cycles = cpu.Cpu.cycles;
    s_text = Memory.read_bytes mem text_base 4096;
    s_data = Memory.read_bytes mem data_base data_len;
    s_stack = Memory.read_bytes mem stack_base stack_len;
  }

let result_to_string = function
  | Exec.Out_of_fuel -> "out-of-fuel"
  | Exec.Stopped o -> (
    match o with
    | Exec.Running -> "stopped(running?)"
    | Exec.Builtin s -> "builtin " ^ s
    | Exec.Syscall_trap -> "syscall"
    | Exec.Halted -> "hlt"
    | Exec.Faulted f -> "fault " ^ Fault.to_string f)

let compare_snapshots ~trial ~what a b =
  let fail field detail =
    Alcotest.failf "trial %d: %s diverges between interpreter and %s (%s)"
      trial field what detail
  in
  if a.s_result <> b.s_result then
    fail "run result"
      (result_to_string a.s_result ^ " vs " ^ result_to_string b.s_result);
  for i = 0 to 15 do
    if a.s_gprs.(i) <> b.s_gprs.(i) then
      fail
        (Printf.sprintf "gpr %s" (Reg.name (Reg.of_index_exn i)))
        (Printf.sprintf "0x%Lx vs 0x%Lx" a.s_gprs.(i) b.s_gprs.(i));
    if a.s_xmms.(i) <> b.s_xmms.(i) then fail (Printf.sprintf "xmm%d" i) ""
  done;
  if a.s_rip <> b.s_rip then
    fail "rip" (Printf.sprintf "0x%Lx vs 0x%Lx" a.s_rip b.s_rip);
  if a.s_flags <> b.s_flags then fail "flags" "";
  if a.s_cycles <> b.s_cycles then
    fail "cycles" (Printf.sprintf "%Ld vs %Ld" a.s_cycles b.s_cycles);
  if not (Bytes.equal a.s_text b.s_text) then fail "text page" "";
  if not (Bytes.equal a.s_data b.s_data) then fail "data region" "";
  if not (Bytes.equal a.s_stack b.s_stack) then fail "stack region" ""

let trials = 1100

let test_differential_fuzz () =
  let p = Util.Prng.create 0xD1FFC0DEL in
  let halted = ref 0 and faulted = ref 0 and fuel = ref 0 and other = ref 0 in
  (* force superblock formation on the very first re-entry so the fused
     paths face the same corpus as the plain chained ones *)
  let saved_threshold = Compile.get_fuse_threshold () in
  Compile.set_fuse_threshold 1;
  for trial = 0 to trials - 1 do
    let insns = rand_program p in
    let code = Encode.list_to_bytes insns in
    let data = Util.Prng.bytes p data_len in
    let init_gprs = Array.init 16 (fun _ -> Util.Prng.next64 p) in
    let init_xmms =
      Array.init 16 (fun _ -> (Util.Prng.next64 p, Util.Prng.next64 p))
    in
    let taxes =
      if Util.Prng.int p 4 = 0 then (Util.Prng.int p 3, Util.Prng.int p 10)
      else (0, 0)
    in
    let trial_seed = Util.Prng.next64 p in
    let args ~tier =
      run_one ~tier ~trial_seed ~taxes ~init_gprs ~init_xmms ~data ~code
    in
    let interp = args ~tier:0 in
    let tier1 = args ~tier:1 in
    let tier2 = args ~tier:2 in
    let tier3 = args ~tier:3 in
    compare_snapshots ~trial ~what:"tier 1" interp tier1;
    compare_snapshots ~trial ~what:"tier 2" interp tier2;
    compare_snapshots ~trial ~what:"tier 3" interp tier3;
    (match interp.s_result with
    | Exec.Stopped Exec.Halted -> incr halted
    | Exec.Stopped (Exec.Faulted _) -> incr faulted
    | Exec.Out_of_fuel -> incr fuel
    | _ -> incr other)
  done;
  Compile.set_fuse_threshold saved_threshold;
  (* the corpus must actually exercise the interesting exits *)
  Alcotest.(check bool) "saw clean halts" true (!halted > 100);
  Alcotest.(check bool) "saw faults" true (!faulted > 50);
  Alcotest.(check bool) "saw fuel exhaustion" true (!fuel > 10);
  Alcotest.(check bool) "saw builtin/syscall exits" true (!other > 10)

(* ---- targeted compiled-tier tests ----------------------------------------- *)

let load_program mem insns = Memory.write_bytes mem text_base (Encode.list_to_bytes insns)

let fresh () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:text_base ~len:4096;
  Memory.map mem ~addr:stack_base ~len:stack_len;
  Cpu.set cpu Reg.RSP 0x71800L;
  cpu.Cpu.rip <- text_base;
  (cpu, mem)

let run_to_halt cpu mem =
  cpu.Cpu.rip <- text_base;
  match Exec.run env cpu mem with
  | Exec.Stopped Exec.Halted -> ()
  | r -> Alcotest.fail ("expected hlt, got " ^ result_to_string r)

(* Patching text must reach the compiled tier through invalidation: the
   stale closures are dropped with the block and the patched bytes are
   re-decoded and re-compiled. *)
let test_patch_invalidates_compiled () =
  Alcotest.(check bool) "tier on" true (Compile.enabled ());
  let cpu, mem = fresh () in
  load_program mem [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 1L); Insn.Hlt ];
  run_to_halt cpu mem;
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal) "first run"
    1L (Cpu.get cpu Reg.RAX);
  let compiles_before = (Tcache.exec_stats cpu.Cpu.tcache).Tcache.compiles in
  Alcotest.(check bool) "block was compiled" true (compiles_before >= 1);
  (* patch in place, invalidate, re-run: new semantics must win *)
  let patched = Encode.list_to_bytes [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 2L); Insn.Hlt ] in
  Memory.write_bytes mem text_base patched;
  Cpu.invalidate_decode cpu ~addr:text_base ~len:(Bytes.length patched);
  Alcotest.(check bool) "invalidation counted" true
    ((Tcache.exec_stats cpu.Cpu.tcache).Tcache.invalidated >= 1);
  run_to_halt cpu mem;
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal) "patched run"
    2L (Cpu.get cpu Reg.RAX);
  Alcotest.(check bool) "patched block recompiled" true
    ((Tcache.exec_stats cpu.Cpu.tcache).Tcache.compiles > compiles_before)

(* A fork child reuses the parent's compiled blocks (shared Tcache
   records carry the translation), and divergence after the fork stays
   private to the side that patched. *)
let test_compiled_across_fork () =
  let cpu, mem = fresh () in
  load_program mem [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 7L); Insn.Hlt ];
  run_to_halt cpu mem;
  let ccpu = Cpu.clone cpu in
  let cmem = Memory.clone mem in
  run_to_halt ccpu cmem;
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal)
    "child reuses compiled block" 7L (Cpu.get ccpu Reg.RAX);
  (* child patches its private text; parent must be unaffected *)
  let patched = Encode.list_to_bytes [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 9L); Insn.Hlt ] in
  Memory.write_bytes cmem text_base patched;
  Cpu.invalidate_decode ccpu ~addr:text_base ~len:(Bytes.length patched);
  run_to_halt ccpu cmem;
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal)
    "child sees patch" 9L (Cpu.get ccpu Reg.RAX);
  run_to_halt cpu mem;
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal)
    "parent keeps original" 7L (Cpu.get cpu Reg.RAX)

(* Blocks decoded by one fork relative from a CoW-shared page are
   published into the shared table; the other relatives reuse them
   without re-decoding, and the payload anchor — not manual
   invalidation — protects each space once its pages diverge. *)
let test_published_block_and_anchor () =
  let cpu, mem = fresh () in
  let prog_b_addr = Int64.add text_base 0x100L in
  load_program mem [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 1L); Insn.Hlt ];
  Memory.write_bytes mem prog_b_addr
    (Encode.list_to_bytes [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 2L); Insn.Hlt ]);
  run_to_halt cpu mem;
  let ccpu = Cpu.clone cpu in
  let cmem = Memory.clone mem in
  Alcotest.(check bool) "tables aliased after fork" true
    (Tcache.is_shared ccpu.Cpu.tcache);
  (* child decodes prog B from the fork-shared text page *)
  ccpu.Cpu.rip <- prog_b_addr;
  (match Exec.run env ccpu cmem with
  | Exec.Stopped Exec.Halted -> ()
  | r -> Alcotest.fail ("child prog B: " ^ result_to_string r));
  Alcotest.(check bool) "publish did not materialise the table" true
    (Tcache.is_shared ccpu.Cpu.tcache);
  Alcotest.(check bool) "parent sees the published block" true
    (Tcache.find cpu.Cpu.tcache prog_b_addr <> None);
  let misses_before = (Tcache.exec_stats cpu.Cpu.tcache).Tcache.misses in
  cpu.Cpu.rip <- prog_b_addr;
  (match Exec.run env cpu mem with
  | Exec.Stopped Exec.Halted -> ()
  | r -> Alcotest.fail ("parent prog B: " ^ result_to_string r));
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal)
    "parent runs child's decode" 2L (Cpu.get cpu Reg.RAX);
  Alcotest.(check int) "parent hit, no re-decode" misses_before
    (Tcache.exec_stats cpu.Cpu.tcache).Tcache.misses;
  (* parent rewrites its copy of the page: CoW gives it a fresh payload,
     the published block's anchor goes stale for the parent only, and
     the next fetch re-decodes — no invalidate call involved *)
  Memory.write_bytes mem prog_b_addr
    (Encode.list_to_bytes [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 3L); Insn.Hlt ]);
  cpu.Cpu.rip <- prog_b_addr;
  (match Exec.run env cpu mem with
  | Exec.Stopped Exec.Halted -> ()
  | r -> Alcotest.fail ("parent patched prog B: " ^ result_to_string r));
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal)
    "stale anchor forces parent re-decode" 3L (Cpu.get cpu Reg.RAX);
  Alcotest.(check bool) "staleness counted as miss" true
    ((Tcache.exec_stats cpu.Cpu.tcache).Tcache.misses > misses_before);
  (* the child's payload object is unchanged, so its view is intact *)
  ccpu.Cpu.rip <- prog_b_addr;
  (match Exec.run env ccpu cmem with
  | Exec.Stopped Exec.Halted -> ()
  | r -> Alcotest.fail ("child prog B again: " ^ result_to_string r));
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal)
    "child still runs original bytes" 2L (Cpu.get ccpu Reg.RAX)

(* ---- tier-2 chaining / superblock tests ------------------------------------ *)

let block_b = Int64.add text_base 0x80L
let block_c = Int64.add text_base 0x100L

let mov_hlt reg v = Encode.list_to_bytes [ Insn.Mov (Operand.reg reg, Operand.imm v); Insn.Hlt ]

(* A: rax <- 1, jmp B.  B: rbx <- v, hlt.  Tier 2 patches A's exit to
   call B's closure directly (or fuses the pair), so re-running A never
   revisits the dispatcher for B: patching B exercises the link-epoch
   and fused-range invalidation paths, not the per-fetch anchor check. *)
let load_two_blocks mem ~b_value =
  load_program mem
    [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 1L); Insn.Jmp (Insn.Abs block_b) ];
  Memory.write_bytes mem block_b (mov_hlt Reg.RBX b_value)

let check_reg msg reg v cpu =
  Alcotest.check (Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal) msg v (Cpu.get cpu reg)

let with_fuse_threshold n f =
  let saved = Compile.get_fuse_threshold () in
  Compile.set_fuse_threshold n;
  Fun.protect ~finally:(fun () -> Compile.set_fuse_threshold saved) f

let test_chained_exit_invalidation () =
  with_fuse_threshold 1_000_000 @@ fun () ->
  let cpu, mem = fresh () in
  load_two_blocks mem ~b_value:2L;
  run_to_halt cpu mem;
  run_to_halt cpu mem;
  let stats = Tcache.exec_stats cpu.Cpu.tcache in
  Alcotest.(check bool) "exit link patched" true (stats.Tcache.chains >= 1);
  Alcotest.(check int) "no superblock at this threshold" 0 stats.Tcache.superblocks;
  check_reg "chained run" Reg.RBX 2L cpu;
  Memory.write_bytes mem block_b (mov_hlt Reg.RBX 9L);
  Cpu.invalidate_decode cpu ~addr:block_b ~len:16;
  run_to_halt cpu mem;
  check_reg "patched successor executed, not the stale link" Reg.RBX 9L cpu

let test_superblock_constituent_patch () =
  with_fuse_threshold 1 @@ fun () ->
  let cpu, mem = fresh () in
  load_two_blocks mem ~b_value:2L;
  run_to_halt cpu mem;
  run_to_halt cpu mem;
  let stats = Tcache.exec_stats cpu.Cpu.tcache in
  Alcotest.(check bool) "superblock formed" true (stats.Tcache.superblocks >= 1);
  run_to_halt cpu mem;
  check_reg "fused run" Reg.RBX 2L cpu;
  (* patch the *interior* constituent: B's own record is dropped by the
     range walk, and the head's fused_ranges entry must take the
     superblock (which tail-duplicated B's code under A's address) down
     with it *)
  Memory.write_bytes mem block_b (mov_hlt Reg.RBX 9L);
  Cpu.invalidate_decode cpu ~addr:block_b ~len:16;
  run_to_halt cpu mem;
  check_reg "patched constituent executed" Reg.RBX 9L cpu;
  check_reg "head semantics intact" Reg.RAX 1L cpu

let test_superblock_across_fork () =
  with_fuse_threshold 1 @@ fun () ->
  let cpu, mem = fresh () in
  load_two_blocks mem ~b_value:2L;
  run_to_halt cpu mem;
  run_to_halt cpu mem;
  Alcotest.(check bool) "superblock formed" true
    ((Tcache.exec_stats cpu.Cpu.tcache).Tcache.superblocks >= 1);
  let ccpu = Cpu.clone cpu in
  let cmem = Memory.clone mem in
  run_to_halt ccpu cmem;
  check_reg "child reuses the superblock" Reg.RBX 2L ccpu;
  (* the child patches its private copy of B and invalidates through the
     family-shared table: the fused head is dropped for every relative,
     yet each side must keep executing its own bytes *)
  Memory.write_bytes cmem block_b (mov_hlt Reg.RBX 9L);
  Cpu.invalidate_decode ccpu ~addr:block_b ~len:16;
  run_to_halt ccpu cmem;
  check_reg "child sees patch" Reg.RBX 9L ccpu;
  run_to_halt cpu mem;
  check_reg "parent keeps original" Reg.RBX 2L cpu;
  (* second family: fork while the superblock is live, then have the
     child write B's CoW-shared page with no invalidate call at all.
     A's page is untouched, so the dispatcher's head-anchor check
     passes; only the entry-time constituent-anchor sweep can strip the
     stale tail-duplicated copy of B *)
  let cpu, mem = fresh () in
  load_two_blocks mem ~b_value:2L;
  run_to_halt cpu mem;
  run_to_halt cpu mem;
  Alcotest.(check bool) "second family fused" true
    ((Tcache.exec_stats cpu.Cpu.tcache).Tcache.superblocks >= 1);
  let dcpu = Cpu.clone cpu in
  let dmem = Memory.clone mem in
  Memory.write_bytes dmem block_b (mov_hlt Reg.RBX 5L);
  run_to_halt dcpu dmem;
  check_reg "constituent anchor strips the fusion" Reg.RBX 5L dcpu;
  run_to_halt cpu mem;
  check_reg "parent unaffected by CoW divergence" Reg.RBX 2L cpu

(* Superblock fusion must not perturb profiler attribution: the fused
   closure retires a whole chain in one sweep, yet its per-constituent
   self-notes must reproduce the per-block rows byte for byte —
   including the insn/call tax terms. RAX is hammered in every block so
   the tier-3 run genuinely caches it: the register-caching chain must
   attribute through the same prefix-sum notes as the per-step loop. *)
let test_superblock_profile_attribution () =
  with_fuse_threshold 1 @@ fun () ->
  let profile_rows ~tier =
    Compile.set_tier tier;
    Telemetry.Profile.reset ();
    Telemetry.Profile.set_enabled true;
    let cpu, mem = fresh () in
    load_program mem
      [ Insn.Mov (Operand.reg Reg.RAX, Operand.imm 1L);
        Insn.Bin (Insn.Add, Operand.reg Reg.RAX, Operand.imm 2L);
        Insn.Jmp (Insn.Abs block_b) ];
    Memory.write_bytes mem block_b
      (Encode.list_to_bytes
         [ Insn.Bin (Insn.Add, Operand.reg Reg.RAX, Operand.imm 3L);
           Insn.Mov (Operand.reg Reg.RBX, Operand.imm 2L);
           Insn.Jmp (Insn.Abs block_c) ]);
    Memory.write_bytes mem block_c
      (Encode.list_to_bytes
         [ Insn.Bin (Insn.Add, Operand.reg Reg.RAX, Operand.imm 4L);
           Insn.Mov (Operand.reg Reg.RCX, Operand.imm 3L);
           Insn.Hlt ]);
    cpu.Cpu.insn_tax <- 2;
    cpu.Cpu.call_tax <- 7;
    for _ = 1 to 10 do
      run_to_halt cpu mem
    done;
    Telemetry.Profile.set_enabled false;
    let rows = Telemetry.Profile.dump () in
    Telemetry.Profile.reset ();
    Compile.set_tier 3;
    (rows, Tcache.exec_stats cpu.Cpu.tcache)
  in
  let rows1, _ = profile_rows ~tier:1 in
  let rows2, stats2 = profile_rows ~tier:2 in
  let rows3, stats3 = profile_rows ~tier:3 in
  Alcotest.(check bool) "tier-2 run actually fused" true (stats2.Tcache.superblocks >= 1);
  Alcotest.(check bool) "tier-3 run actually fused" true (stats3.Tcache.superblocks >= 1);
  Alcotest.(check bool) "profile saw the blocks" true (List.length rows1 >= 3);
  let show rows =
    String.concat "; "
      (List.map
         (fun r ->
           Printf.sprintf "0x%Lx: %d cycles / %d blocks" r.Telemetry.Profile.addr
             r.Telemetry.Profile.cycles r.Telemetry.Profile.blocks)
         rows)
  in
  let check_same what rows =
    if rows1 <> rows then
      Alcotest.failf "attribution diverges under fusion:\n  tier 1: %s\n  %s: %s"
        (show rows1) what (show rows)
  in
  check_same "tier 2" rows2;
  check_same "tier 3" rows3

(* ---- tier-3 register caching ----------------------------------------------- *)

let mk_block ~start insns =
  Tcache.make_block ~start
    (Array.of_list
       (List.map (fun i -> (i, Bytes.length (Encode.list_to_bytes [ i ]))) insns))

let no_builtin _ = None

(* The self-move peephole: [mov r, r] normalizes to the cost-only no-op
   while a real register move stays executable, and neither rewrite
   loses the decoded cycle cost. *)
let test_normalize_self_move () =
  let b =
    mk_block ~start:text_base
      [
        Insn.Mov (Operand.reg Reg.RCX, Operand.reg Reg.RCX);
        Insn.Mov (Operand.reg Reg.RCX, Operand.reg Reg.RDX);
        Insn.Hlt;
      ]
  in
  let ir = Ir.normalize (Ir.lift ~is_builtin:no_builtin ~inlinable:(fun _ -> false) b) in
  (match ir.Ir.steps.(0).Ir.uop with
  | Ir.Nop_cost -> ()
  | _ -> Alcotest.fail "mov rcx, rcx must normalize to Nop_cost");
  (match ir.Ir.steps.(1).Ir.uop with
  | Ir.Exec (Insn.Mov _) -> ()
  | _ -> Alcotest.fail "mov rcx, rdx must stay a real move");
  Alcotest.(check int) "self-move keeps the move's decoded cost"
    ir.Ir.steps.(1).Ir.cost ir.Ir.steps.(0).Ir.cost

(* The caching heuristic is deterministic: most-accessed register first,
   only registers worth an entry reload + exit spill qualify, and a
   block containing rdtsc still translates (against the static prefix
   charge) rather than falling back to the interpreter. *)
let test_cache_plan_and_rdtsc_compiles () =
  let b =
    mk_block ~start:text_base
      [
        Insn.Bin (Insn.Add, Operand.reg Reg.RBX, Operand.imm 1L);
        Insn.Bin (Insn.Add, Operand.reg Reg.RBX, Operand.reg Reg.RCX);
        Insn.Bin (Insn.Add, Operand.reg Reg.RCX, Operand.imm 2L);
        Insn.Mov (Operand.reg Reg.RCX, Operand.reg Reg.RBX);
        Insn.Rdtsc;
        Insn.Hlt;
      ]
  in
  (match Compile.compile ~is_builtin:no_builtin b with
  | Compile.Code c ->
    Alcotest.(check (array int))
      "plan picks the hot gprs, hottest first"
      [| Reg.index Reg.RBX; Reg.index Reg.RCX |]
      (Compile.cached_regs c)
  | _ -> Alcotest.fail "rdtsc block must still compile");
  (* rax/rdx are written once each by rdtsc: below the profitability
     bar, so they must not appear in the plan *)
  let cold =
    mk_block ~start:text_base [ Insn.Rdtsc; Insn.Hlt ]
  in
  match Compile.compile ~is_builtin:no_builtin cold with
  | Compile.Code c ->
    Alcotest.(check (array int)) "cold block caches nothing" [||]
      (Compile.cached_regs c)
  | _ -> Alcotest.fail "cold rdtsc block must still compile"

let int64_t = Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal

(* Fault-exact spills: trap mid-superblock on a store page-fault while a
   cached register is live (modified since entry) in a closure local.
   Every interpreter-visible fact — gprs, flags, rip, cycles, fault
   identity — must match a tier-1 replay of the same machine. *)
let test_spill_exactness_on_fault () =
  with_fuse_threshold 1 @@ fun () ->
  let run_at tier =
    Compile.set_tier tier;
    Fun.protect ~finally:(fun () -> Compile.set_tier 3) @@ fun () ->
    let cpu, mem = fresh () in
    Memory.map mem ~addr:data_base ~len:data_len;
    load_program mem
      [
        Insn.Bin (Insn.Add, Operand.reg Reg.RBX, Operand.imm 5L);
        Insn.Jmp (Insn.Abs block_b);
      ];
    Memory.write_bytes mem block_b
      (Encode.list_to_bytes
         [
           Insn.Bin (Insn.Add, Operand.reg Reg.RBX, Operand.imm 1L);
           Insn.Push (Operand.reg Reg.RBX);
           Insn.Mov (Operand.mem ~base:Reg.R13 0L, Operand.reg Reg.RBX);
           Insn.Bin (Insn.Add, Operand.reg Reg.RBX, Operand.imm 100L);
           Insn.Hlt;
         ]);
    cpu.Cpu.insn_tax <- 2;
    cpu.Cpu.call_tax <- 7;
    (* warm up with the store aimed at mapped data: two halting runs
       form the superblock, whose fused IR caches rbx *)
    Cpu.set cpu Reg.R13 data_base;
    run_to_halt cpu mem;
    run_to_halt cpu mem;
    if tier = 3 then begin
      Alcotest.(check bool) "superblock formed" true
        ((Tcache.exec_stats cpu.Cpu.tcache).Tcache.superblocks >= 1);
      match Tcache.find cpu.Cpu.tcache text_base with
      | Some blk -> (
        match blk.Tcache.compiled with
        | Compile.Code c ->
          Alcotest.(check (array int)) "rbx is cached in the fused chain"
            [| Reg.index Reg.RBX |] (Compile.cached_regs c)
        | _ -> Alcotest.fail "fused head has no compiled slot")
      | None -> Alcotest.fail "fused head record missing"
    end;
    (* aim the store at unmapped space: the chain faults with rbx live
       in a closure local, two adds retired, the +100 not *)
    Cpu.set cpu Reg.R13 0x9000000L;
    Cpu.set cpu Reg.RBX 0L;
    cpu.Cpu.rip <- text_base;
    let result = Exec.run env cpu mem in
    ( result,
      Array.copy cpu.Cpu.gprs,
      ( cpu.Cpu.flags.Cpu.zf,
        cpu.Cpu.flags.Cpu.sf,
        cpu.Cpu.flags.Cpu.cf,
        cpu.Cpu.flags.Cpu.of_ ),
      cpu.Cpu.rip,
      cpu.Cpu.cycles )
  in
  let r1, g1, f1, rip1, c1 = run_at 1 in
  let r3, g3, f3, rip3, c3 = run_at 3 in
  (match r3 with
  | Exec.Stopped (Exec.Faulted _) -> ()
  | r -> Alcotest.fail ("expected a page fault, got " ^ result_to_string r));
  Alcotest.(check string) "fault identity matches tier 1"
    (result_to_string r1) (result_to_string r3);
  for i = 0 to 15 do
    Alcotest.check int64_t
      (Printf.sprintf "gpr %s at fault" (Reg.name (Reg.of_index_exn i)))
      g1.(i) g3.(i)
  done;
  Alcotest.(check bool) "flags at fault" true (f1 = f3);
  Alcotest.check int64_t "rip points at the faulting store" rip1 rip3;
  Alcotest.check int64_t "cycles at fault" c1 c3;
  (* the spilled value is the architecturally current one *)
  Alcotest.check int64_t "rbx shows exactly the retired adds" 6L
    g3.(Reg.index Reg.RBX)

(* patch_text inside the cached region at tier 3: invalidating an
   interior constituent must take the register-caching chain down with
   the superblock, and the patched bytes must retranslate. *)
let test_tier3_patch_in_cached_region () =
  with_fuse_threshold 1 @@ fun () ->
  Compile.set_tier 3;
  let cpu, mem = fresh () in
  load_program mem
    [
      Insn.Bin (Insn.Add, Operand.reg Reg.RBX, Operand.imm 1L);
      Insn.Bin (Insn.Add, Operand.reg Reg.RBX, Operand.imm 2L);
      Insn.Jmp (Insn.Abs block_b);
    ];
  let b_bytes v =
    Encode.list_to_bytes
      [ Insn.Bin (Insn.Add, Operand.reg Reg.RBX, Operand.imm v); Insn.Hlt ]
  in
  Memory.write_bytes mem block_b (b_bytes 4L);
  run_to_halt cpu mem;
  run_to_halt cpu mem;
  Alcotest.(check bool) "superblock formed" true
    ((Tcache.exec_stats cpu.Cpu.tcache).Tcache.superblocks >= 1);
  (match Tcache.find cpu.Cpu.tcache text_base with
  | Some blk -> (
    match blk.Tcache.compiled with
    | Compile.Code c ->
      Alcotest.(check (array int)) "rbx cached in the superblock"
        [| Reg.index Reg.RBX |] (Compile.cached_regs c)
    | _ -> Alcotest.fail "head has no compiled slot")
  | None -> Alcotest.fail "head record missing");
  Cpu.set cpu Reg.RBX 0L;
  run_to_halt cpu mem;
  check_reg "fused run through the cached chain" Reg.RBX 7L cpu;
  Memory.write_bytes mem block_b (b_bytes 40L);
  Cpu.invalidate_decode cpu ~addr:block_b ~len:16;
  Cpu.set cpu Reg.RBX 0L;
  run_to_halt cpu mem;
  check_reg "patched constituent executed, stale cached chain dropped"
    Reg.RBX 43L cpu

let () =
  Alcotest.run "compile"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "interpreter vs compiled tier, %d random programs"
               trials)
            `Slow test_differential_fuzz;
        ] );
      ( "targeted",
        [
          Alcotest.test_case "patch_text invalidates compiled block" `Quick
            test_patch_invalidates_compiled;
          Alcotest.test_case "compiled blocks across CoW fork" `Quick
            test_compiled_across_fork;
          Alcotest.test_case "published block + anchor staleness" `Quick
            test_published_block_and_anchor;
        ] );
      ( "tier-2",
        [
          Alcotest.test_case "patching a chained successor unlinks it" `Quick
            test_chained_exit_invalidation;
          Alcotest.test_case "patching inside a superblock drops the fusion"
            `Quick test_superblock_constituent_patch;
          Alcotest.test_case "superblock invalidation across CoW fork" `Quick
            test_superblock_across_fork;
          Alcotest.test_case "profile attribution identical under fusion"
            `Quick test_superblock_profile_attribution;
        ] );
      ( "tier-3",
        [
          Alcotest.test_case "normalize rewrites mov r,r to Nop_cost" `Quick
            test_normalize_self_move;
          Alcotest.test_case "cache plan is deterministic; rdtsc compiles"
            `Quick test_cache_plan_and_rdtsc_compiles;
          Alcotest.test_case "spills are fault-exact mid-superblock" `Quick
            test_spill_exactness_on_fault;
          Alcotest.test_case "patching inside the cached region retranslates"
            `Quick test_tier3_patch_in_cached_region;
        ] );
    ]
