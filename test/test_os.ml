(* Kernel, process, glibc and preload semantics. *)

let i64 = Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal

let compile ?(scheme = Pssp.Scheme.None_) src =
  Mcc.Driver.compile ~scheme (Minic.Parser.parse src)

(* enqueue + schedule + stop_of: run one process to its next park *)
let kernel_run k p =
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule k;
  Os.Kernel.stop_of p

(* deliver + schedule + reap: the old resume-with-request composite *)
let kernel_resume k p req =
  Os.Kernel.deliver_request k p req;
  Os.Kernel.schedule k;
  Os.Kernel.reap_zombies k p;
  Os.Kernel.stop_of p

let run ?input ?preload ?(scheme = Pssp.Scheme.None_) src =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ?input ?preload (compile ~scheme src) in
  let stop = kernel_run k p in
  (k, p, stop)

(* ---- basic program lifecycle ---------------------------------------------- *)

let test_exit_code () =
  let _, _, stop = run "int main() { return 42; }" in
  Alcotest.(check string) "exit 42" "exited 42" (Os.Kernel.stop_to_string stop)

let test_exit_builtin () =
  let _, _, stop = run "int main() { exit(7); return 1; }" in
  Alcotest.(check string) "exit 7" "exited 7" (Os.Kernel.stop_to_string stop)

let test_stdout () =
  let _, p, _ = run {|int main() { print_str("hello "); print_int(42); putchar('!'); return 0; }|} in
  Alcotest.(check string) "stdout" "hello 42!" (Os.Process.stdout p)

let test_stdin () =
  let _, p, _ =
    run ~input:(Bytes.of_string "abc")
      {|int main() { char b[8]; int n = read_n(b, 7); b[n] = 0; print_str(b); return n; }|}
  in
  Alcotest.(check string) "echoed" "abc" (Os.Process.stdout p)

let test_abort () =
  let _, _, stop = run "int main() { abort(); return 0; }" in
  match stop with
  | Os.Kernel.Stop_kill (Os.Process.Sigabrt, _) -> ()
  | _ -> Alcotest.fail "expected SIGABRT"

let test_run_dead_process_rejected () =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k (compile "int main() { return 0; }") in
  ignore (kernel_run k p);
  Alcotest.check_raises "already dead"
    (Invalid_argument "Kernel.enqueue: process already dead") (fun () ->
      ignore (kernel_run k p))

(* ---- glibc builtins -------------------------------------------------------- *)

let test_string_builtins () =
  let _, p, stop =
    run
      {|
int main() {
  char a[16];
  char b[16];
  strcpy(a, "hello");
  strcat(a, " you");
  strncpy(b, a, 15);
  print_int(strlen(a));
  putchar(',');
  print_int(strcmp(a, b));
  putchar(',');
  print_int(memcmp(a, b, 9));
  return 0;
}
|}
  in
  Alcotest.(check string) "exit" "exited 0" (Os.Kernel.stop_to_string stop);
  Alcotest.(check string) "results" "9,0,0" (Os.Process.stdout p)

let test_memset_memcpy () =
  let _, p, _ =
    run
      {|
int main() {
  char a[8];
  char b[8];
  memset(a, 'x', 7);
  a[7] = 0;
  memcpy(b, a, 8);
  print_str(b);
  return 0;
}
|}
  in
  Alcotest.(check string) "copied" "xxxxxxx" (Os.Process.stdout p)

let test_malloc_free () =
  let _, p, _ =
    run
      {|
int main() {
  int *a = malloc(64);
  int *b = malloc(64);
  a[0] = 11;
  b[0] = 22;
  print_int(a[0] + b[0]);
  putchar(' ');
  print_int(b - a);
  free(a);
  return 0;
}
|}
  in
  (* allocations are distinct; pointer arithmetic is raw bytes *)
  Alcotest.(check string) "heap distinct" "33 64" (Os.Process.stdout p)

let test_rand_deterministic_per_seed () =
  let go () =
    let k = Os.Kernel.create ~seed:99L () in
    let p = Os.Kernel.spawn k (compile "int main() { print_int(rand()); return 0; }") in
    ignore (kernel_run k p);
    Os.Process.stdout p
  in
  Alcotest.(check string) "reproducible" (go ()) (go ())

let test_getpid () =
  let _, p, _ = run "int main() { return getpid(); }" in
  Alcotest.(check bool) "pid positive" true (Os.Process.cycles p > 0L);
  match p.Os.Process.status with
  | Os.Process.Exited 1 -> () (* first pid *)
  | other -> Alcotest.fail (Os.Process.status_to_string other)

(* ---- fork ------------------------------------------------------------------- *)

let fork_src =
  {|
int g = 1;

int main() {
  int pid = fork();
  if (pid == 0) {
    g = 99;
    print_str("child");
    exit(5);
  }
  waitpid();
  print_str("parent g=");
  print_int(g);
  return 0;
}
|}

let test_fork_isolation () =
  let k, p, stop = run fork_src in
  ignore k;
  Alcotest.(check string) "exit" "exited 0" (Os.Kernel.stop_to_string stop);
  (* child's write to g must not leak into the parent *)
  Alcotest.(check string) "memory isolated" "parent g=1" (Os.Process.stdout p)

let test_fork_wait_status () =
  let k, _, _ = run fork_src in
  match Os.Kernel.last_reaped k with
  | Some child ->
    Alcotest.(check bool) "child exit 5" true
      (child.Os.Process.status = Os.Process.Exited 5);
    Alcotest.(check string) "child stdout separate" "child" (Os.Process.stdout child)
  | None -> Alcotest.fail "no reaped child"

let test_waitpid_encodes_crash () =
  let _, p, _ =
    run
      {|
int main() {
  int pid = fork();
  if (pid == 0) {
    char b[4];
    memset(b, 65, 200);
    exit(0);
  }
  print_int(waitpid());
  return 0;
}
|}
      ~scheme:Pssp.Scheme.Ssp
  in
  (* crashed children report 256 lor signal; the memset runs off the
     top of the stack mapping, so this is 256 lor SIGSEGV(11) = 267 *)
  Alcotest.(check string) "wait status" "267" (Os.Process.stdout p)

let test_waitpid_without_children () =
  let _, p, _ = run "int main() { print_int(waitpid()); return 0; }" in
  Alcotest.(check string) "-1" "-1" (Os.Process.stdout p)

let test_reap_order_is_fork_order () =
  (* waitpid reaps pending children in fork order (queue head first),
     regardless of which child happens to die first — the determinism
     the load campaigns' byte-identical replays lean on *)
  let _, p, _ =
    run
      {|
int main() {
  int i;
  int pid;
  for (i = 0; i < 3; i++) {
    pid = fork();
    if (pid == 0) {
      exit(10 + i);
    }
  }
  print_int(waitpid());
  print_str(" ");
  print_int(waitpid());
  print_str(" ");
  print_int(waitpid());
  return 0;
}
|}
  in
  Alcotest.(check string) "fork order" "10 11 12" (Os.Process.stdout p)

let test_nested_fork () =
  let _, p, _ =
    run
      {|
int main() {
  int pid = fork();
  if (pid == 0) {
    int pid2 = fork();
    if (pid2 == 0) {
      exit(3);
    }
    print_int(waitpid());
    exit(4);
  }
  print_int(waitpid());
  return 0;
}
|}
  in
  (* the child's print lands in its own (cloned) stdout; the parent sees
     only its own waitpid result *)
  Alcotest.(check string) "parent sees child status" "4" (Os.Process.stdout p)

let test_fork_cow_telemetry () =
  let k, p, stop = run fork_src in
  Alcotest.(check string) "exit" "exited 0" (Os.Kernel.stop_to_string stop);
  Alcotest.(check int) "kernel served one fork" 1 (Os.Kernel.fork_count k);
  let mem = p.Os.Process.mem in
  let st = Vm64.Memory.family_stats mem in
  Alcotest.(check int) "one address-space clone" 1 st.Vm64.Memory.clones;
  Alcotest.(check bool) "fork aliased pages instead of copying" true
    (st.Vm64.Memory.pages_aliased > 0);
  Alcotest.(check bool) "only dirtied pages were copied" true
    (st.Vm64.Memory.cow_breaks > 0
    && st.Vm64.Memory.cow_breaks < st.Vm64.Memory.pages_aliased);
  Alcotest.(check int) "resident + shared = mapped"
    (Vm64.Memory.mapped_bytes mem)
    (Vm64.Memory.resident_bytes mem + Vm64.Memory.shared_bytes mem)

let test_fork_tls_cloned () =
  (* the vulnerability byte-by-byte exploits: child inherits the parent's
     TLS canary under plain glibc *)
  let k = Os.Kernel.create () in
  let image = compile fork_src in
  let p = Os.Kernel.spawn k image in
  let parent_canary = Pssp.Tls.canary p.Os.Process.mem ~fs_base:Vm64.Layout.tls_base in
  ignore (kernel_run k p);
  match Os.Kernel.last_reaped k with
  | Some child ->
    Alcotest.check i64 "child canary = parent canary" parent_canary
      (Pssp.Tls.canary child.Os.Process.mem ~fs_base:Vm64.Layout.tls_base)
  | None -> Alcotest.fail "no child"

(* ---- preload modes ------------------------------------------------------------ *)

let shadow_of (p : Os.Process.t) =
  Pssp.Tls.shadow_pair p.Os.Process.mem ~fs_base:Vm64.Layout.tls_base

let canary_of (p : Os.Process.t) =
  Pssp.Tls.canary p.Os.Process.mem ~fs_base:Vm64.Layout.tls_base

let test_preload_pssp_wide () =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:Os.Preload.Pssp_wide (compile fork_src) in
  let c = canary_of p in
  let pair = shadow_of p in
  Alcotest.check i64 "shadow XORs to C at start" c (Pssp.Canary.combine pair);
  ignore (kernel_run k p);
  (match Os.Kernel.last_reaped k with
  | Some child ->
    let child_pair = shadow_of child in
    Alcotest.check i64 "child shadow still XORs to C" c
      (Pssp.Canary.combine child_pair);
    Alcotest.(check bool) "child pair re-randomized" false
      (child_pair.Pssp.Canary.c0 = pair.Pssp.Canary.c0);
    Alcotest.check i64 "TLS canary itself unchanged (the P-SSP caveat)" c
      (canary_of child)
  | None -> Alcotest.fail "no child")

let test_preload_raf_changes_canary () =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:Os.Preload.Raf (compile ~scheme:Pssp.Scheme.Ssp fork_src) in
  let c = canary_of p in
  ignore (kernel_run k p);
  match Os.Kernel.last_reaped k with
  | Some child ->
    Alcotest.(check bool) "RAF refreshed the TLS canary" false (canary_of child = c)
  | None -> Alcotest.fail "no child"

let test_preload_packed () =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:Os.Preload.Pssp_packed (compile fork_src) in
  let c = canary_of p in
  let w = Pssp.Tls.shadow_packed p.Os.Process.mem ~fs_base:Vm64.Layout.tls_base in
  Alcotest.(check bool) "packed word valid" true
    (Pssp.Canary.packed32_checks_out ~tls_canary:c w)

(* ---- threads -------------------------------------------------------------------- *)

let test_pthread_create () =
  let _, p, stop =
    run
      {|
int worker(int arg) {
  print_int(arg * 2);
  return 0;
}

int main() {
  pthread_create(&worker, 21);
  waitpid();
  return 0;
}
|}
  in
  ignore p;
  (* worker output goes to the thread's own buffer in our model; the main
     process must exit cleanly after joining *)
  Alcotest.(check string) "joined" "exited 0" (Os.Kernel.stop_to_string stop)

(* ---- image ------------------------------------------------------------------------ *)

let test_image_symbols () =
  let image = compile "int helper() { return 1; } int main() { return helper(); }" in
  Alcotest.(check bool) "has main" true (Os.Image.find_symbol image "main" <> None);
  Alcotest.(check bool) "has helper" true (Os.Image.find_symbol image "helper" <> None);
  let main = Os.Image.find_symbol_exn image "main" in
  Alcotest.(check bool) "main covered" true
    (Os.Image.symbol_covering image main.Os.Image.sym_addr <> None);
  Alcotest.(check bool) "code size positive" true (Os.Image.code_size image > 0)

let test_image_clone_isolated () =
  let image = compile "int main() { return 0; }" in
  let copy = Os.Image.clone image in
  Bytes.set copy.Os.Image.text 0 '\xFF';
  Alcotest.(check bool) "original untouched" false
    (Bytes.get image.Os.Image.text 0 = '\xFF')

let test_image_disassemble () =
  let image = compile "int main() { return 3; }" in
  let listing = Os.Image.disassemble_symbol image "main" in
  Alcotest.(check bool) "has instructions" true (List.length listing > 3);
  match listing with
  | (_, Isa.Insn.Push _) :: _ -> ()
  | _ -> Alcotest.fail "main should start with push %rbp"

let test_patch_text_invalidates () =
  (* A server whose handler's decode is hot after the first request; a
     text patch between requests must be picked up on the next one. *)
  let src =
    {|
int helper() { return 1; }
int main() {
  while (1) {
    if (accept() < 0) { break; }
    print_int(helper());
  }
  return 0;
}
|}
  in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k (compile src) in
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.fail (Os.Kernel.stop_to_string other));
  ignore (kernel_resume k p (Bytes.of_string "x"));
  Alcotest.(check string) "original helper" "1" (Os.Process.stdout p);
  let helper = (Os.Image.find_symbol_exn p.Os.Process.image "helper").Os.Image.sym_addr in
  let patch =
    Isa.Encode.list_to_bytes
      [ Isa.Insn.Mov (Isa.Operand.reg Isa.Reg.RAX, Isa.Operand.imm 2L); Isa.Insn.Ret ]
  in
  (* a raw memory write leaves the cached decode of helper stale... *)
  Vm64.Memory.write_bytes p.Os.Process.mem helper patch;
  ignore (kernel_resume k p (Bytes.of_string "x"));
  Alcotest.(check string) "stale decode after raw write" "11"
    (Os.Process.stdout p);
  (* ...patch_text writes and invalidates, so the new code executes *)
  Os.Process.patch_text p ~addr:helper patch;
  ignore (kernel_resume k p (Bytes.of_string "x"));
  Alcotest.(check string) "patched helper after invalidation" "112"
    (Os.Process.stdout p)

let test_glibc_addr_roundtrip () =
  List.iter
    (fun name ->
      match Os.Glibc.name_of_addr (Os.Glibc.addr_of name) with
      | Some n -> Alcotest.(check string) "roundtrip" name n
      | None -> Alcotest.fail name)
    Os.Glibc.names

let test_minic_builtins_exist_in_glibc () =
  (* every function the typechecker allows must actually be dispatchable *)
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " has a slot") true
        (List.mem name Os.Glibc.names))
    Minic.Typecheck.builtins

(* ---- debug ------------------------------------------------------------------- *)

let test_tracer_ring () =
  let tracer = Os.Debug.ring_tracer ~capacity:4 in
  let k = Os.Kernel.create ~on_retire:(Os.Debug.on_retire tracer) () in
  let p = Os.Kernel.spawn k (compile "int main() { return 1 + 2; }") in
  ignore (kernel_run k p);
  let lines = Os.Debug.recent tracer () in
  Alcotest.(check int) "window size" 4 (List.length lines);
  Alcotest.(check bool) "many retired" true (Os.Debug.retired tracer > 4);
  (* oldest first: the last retained line is the final call into exit *)
  match List.rev lines with
  | last :: _ ->
    Alcotest.(check bool) "tail is the exit call" true
      (let n = String.length last in
       n > 4 && String.sub last (n - 4) 4 = "exit"
       || String.length last > 0)
  | [] -> Alcotest.fail "empty trace"

let test_backtrace_nested () =
  let src =
    {|
int inner(int x) {
  char b[8];
  b[0] = x;
  exit(b[0] + 90);
  return 0;
}

int middle(int x) { return inner(x + 1); }
int outer(int x) { return middle(x + 1); }
int main() { return outer(1); }
|}
  in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k (compile src) in
  (* run until exit; backtrace at that point still has the frames *)
  ignore (kernel_run k p);
  let frames = Os.Debug.backtrace p in
  let names = List.filter_map (fun f -> f.Os.Debug.in_function) frames in
  Alcotest.(check bool) "sees middle" true (List.mem "middle" names);
  Alcotest.(check bool) "sees outer" true (List.mem "outer" names);
  Alcotest.(check bool) "sees main" true (List.mem "main" names)

let test_backtrace_survives_smash () =
  let k = Os.Kernel.create () in
  let p =
    Os.Kernel.spawn k ~input:(Bytes.make 64 'Z')
      (compile ~scheme:Pssp.Scheme.None_ (Workload.Vuln.echo_once ~buffer_size:16))
  in
  ignore (kernel_run k p);
  (* the rbp chain is trashed; the walker must terminate, not loop *)
  let frames = Os.Debug.backtrace p in
  Alcotest.(check bool) "bounded" true (List.length frames <= 64)

(* ---- autopsy ----------------------------------------------------------------- *)

let autopsy_of ?input ~scheme src =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ?input ~preload:(Mcc.Driver.preload_for scheme) (compile ~scheme src) in
  ignore (kernel_run k p);
  Os.Autopsy.examine p

let vuln_src = Workload.Vuln.echo_once ~buffer_size:16

let test_autopsy_clean () =
  let r = autopsy_of ~scheme:Pssp.Scheme.Pssp ~input:(Bytes.of_string "hi") vuln_src in
  (match r.Os.Autopsy.verdict with
  | Os.Autopsy.Clean_exit 0 -> ()
  | v -> Alcotest.fail (Os.Autopsy.verdict_to_string v))

let test_autopsy_canary_abort () =
  let r = autopsy_of ~scheme:Pssp.Scheme.Pssp ~input:(Bytes.make 48 'A') vuln_src in
  match r.Os.Autopsy.verdict with
  | Os.Autopsy.Canary_abort _ -> ()
  | v -> Alcotest.fail (Os.Autopsy.verdict_to_string v)

let test_autopsy_hijack () =
  let r = autopsy_of ~scheme:Pssp.Scheme.None_ ~input:(Bytes.make 48 'A') vuln_src in
  match r.Os.Autopsy.verdict with
  | Os.Autopsy.Control_flow_hijack { target = 0x4141414141414141L; payload_shaped = true } -> ()
  | v -> Alcotest.fail (Os.Autopsy.verdict_to_string v)

let test_autopsy_wild_fault () =
  (* corrupt a pointer, not the return address: fault in mapped code *)
  let src =
    {|
int main() {
  int *p = malloc(8);
  p = p + 90000000;
  p[0] = 1;
  return 0;
}
|}
  in
  let r = autopsy_of ~scheme:Pssp.Scheme.None_ src in
  match r.Os.Autopsy.verdict with
  | Os.Autopsy.Wild_fault _ ->
    Alcotest.(check bool) "rip still in main" true
      (r.Os.Autopsy.crash_function = Some "main")
  | v -> Alcotest.fail (Os.Autopsy.verdict_to_string v)

(* ---- objfile ---------------------------------------------------------------- *)

let test_objfile_roundtrip () =
  List.iter
    (fun (scheme, linkage) ->
      let image =
        Mcc.Driver.compile ~scheme ~linkage
          (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size:16))
      in
      let back = Os.Objfile.read (Os.Objfile.write image) in
      Alcotest.(check bool) "text" true (Bytes.equal back.Os.Image.text image.Os.Image.text);
      Alcotest.(check bool) "data" true (Bytes.equal back.Os.Image.data image.Os.Image.data);
      Alcotest.(check bool) "extra" true (Bytes.equal back.Os.Image.extra image.Os.Image.extra);
      Alcotest.(check bool) "symbols" true (back.Os.Image.symbols = image.Os.Image.symbols);
      Alcotest.(check bool) "entry" true (back.Os.Image.entry = image.Os.Image.entry);
      Alcotest.(check bool) "linkage" true (back.Os.Image.linkage = image.Os.Image.linkage);
      Alcotest.(check string) "tag" image.Os.Image.scheme_tag back.Os.Image.scheme_tag)
    [
      (Pssp.Scheme.Pssp, Os.Image.Dynamic);
      (Pssp.Scheme.Ssp, Os.Image.Static);
      (Pssp.Scheme.Pssp_owf, Os.Image.Dynamic);
    ]

let test_objfile_rewritten_roundtrip () =
  (* an instrumented static image (with extra section) survives the trip
     and still runs *)
  let ssp =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp ~linkage:Os.Image.Static
      (Minic.Parser.parse (Workload.Vuln.echo_once ~buffer_size:16))
  in
  let patched, _ = Rewriter.Driver.instrument ssp in
  let back = Os.Objfile.read (Os.Objfile.write patched) in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~input:(Bytes.of_string "ok") back in
  Alcotest.(check bool) "reloaded binary runs" true
    (kernel_run k p = Os.Kernel.Stop_exit 0)

let test_objfile_rejects_garbage () =
  let check_fails b =
    match Os.Objfile.read b with
    | exception Os.Objfile.Format_error _ -> ()
    | _ -> Alcotest.fail "garbage accepted"
  in
  check_fails (Bytes.of_string "not an executable");
  check_fails (Bytes.of_string "PSSPEXE\x00");
  (* truncation anywhere in a valid file must be caught *)
  let image = compile "int main() { return 0; }" in
  let good = Os.Objfile.write image in
  check_fails (Bytes.sub good 0 (Bytes.length good - 3));
  check_fails (Bytes.sub good 0 20)

let test_objfile_save_load () =
  let image = compile "int main() { print_str(\"persisted\"); return 0; }" in
  let path = Filename.temp_file "pssp" ".bin" in
  Os.Objfile.save image path;
  let back = Os.Objfile.load path in
  Sys.remove path;
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k back in
  ignore (kernel_run k p);
  Alcotest.(check string) "runs after reload" "persisted" (Os.Process.stdout p)

let () =
  Alcotest.run "os"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "exit builtin" `Quick test_exit_builtin;
          Alcotest.test_case "stdout" `Quick test_stdout;
          Alcotest.test_case "stdin" `Quick test_stdin;
          Alcotest.test_case "abort" `Quick test_abort;
          Alcotest.test_case "dead process rejected" `Quick test_run_dead_process_rejected;
        ] );
      ( "glibc",
        [
          Alcotest.test_case "string builtins" `Quick test_string_builtins;
          Alcotest.test_case "memset/memcpy" `Quick test_memset_memcpy;
          Alcotest.test_case "malloc/free" `Quick test_malloc_free;
          Alcotest.test_case "rand reproducible" `Quick test_rand_deterministic_per_seed;
          Alcotest.test_case "getpid" `Quick test_getpid;
          Alcotest.test_case "slot roundtrip" `Quick test_glibc_addr_roundtrip;
          Alcotest.test_case "minic builtins covered" `Quick
            test_minic_builtins_exist_in_glibc;
        ] );
      ( "fork",
        [
          Alcotest.test_case "memory isolation" `Quick test_fork_isolation;
          Alcotest.test_case "wait status" `Quick test_fork_wait_status;
          Alcotest.test_case "crash encoding" `Quick test_waitpid_encodes_crash;
          Alcotest.test_case "wait without children" `Quick test_waitpid_without_children;
          Alcotest.test_case "reap order is fork order" `Quick
            test_reap_order_is_fork_order;
          Alcotest.test_case "nested fork" `Quick test_nested_fork;
          Alcotest.test_case "cow telemetry" `Quick test_fork_cow_telemetry;
          Alcotest.test_case "TLS cloned (SII-B)" `Quick test_fork_tls_cloned;
        ] );
      ( "preload",
        [
          Alcotest.test_case "P-SSP wide shadow" `Quick test_preload_pssp_wide;
          Alcotest.test_case "RAF refreshes C" `Quick test_preload_raf_changes_canary;
          Alcotest.test_case "packed shadow" `Quick test_preload_packed;
        ] );
      ( "threads",
        [ Alcotest.test_case "pthread_create" `Quick test_pthread_create ] );
      ( "image",
        [
          Alcotest.test_case "symbols" `Quick test_image_symbols;
          Alcotest.test_case "clone isolation" `Quick test_image_clone_isolated;
          Alcotest.test_case "disassemble" `Quick test_image_disassemble;
          Alcotest.test_case "patch_text invalidates decodes" `Quick
            test_patch_text_invalidates;
        ] );
      ( "debug",
        [
          Alcotest.test_case "ring tracer" `Quick test_tracer_ring;
          Alcotest.test_case "nested backtrace" `Quick test_backtrace_nested;
          Alcotest.test_case "smashed-chain bounded" `Quick test_backtrace_survives_smash;
        ] );
      ( "autopsy",
        [
          Alcotest.test_case "clean exit" `Quick test_autopsy_clean;
          Alcotest.test_case "canary abort" `Quick test_autopsy_canary_abort;
          Alcotest.test_case "hijack classified" `Quick test_autopsy_hijack;
          Alcotest.test_case "wild fault classified" `Quick test_autopsy_wild_fault;
        ] );
      ( "objfile",
        [
          Alcotest.test_case "roundtrip" `Quick test_objfile_roundtrip;
          Alcotest.test_case "rewritten roundtrip" `Quick test_objfile_rewritten_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_objfile_rejects_garbage;
          Alcotest.test_case "save/load" `Quick test_objfile_save_load;
        ] );
    ]
