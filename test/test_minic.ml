(* Lexer, parser, pretty-printer and typechecker tests for Mini-C. *)

open Minic

let parse = Parser.parse
let parse_expr = Parser.parse_expr

(* ---- lexer ----------------------------------------------------------------- *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "count" 6 (List.length (toks "int x = 42;"));
  match toks "int x = 42;" with
  | [ Lexer.KW_INT; IDENT "x"; EQ; INT 42L; SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_ops () =
  match toks "a == b != c <= >= << >> && || += ++" with
  | [ Lexer.IDENT "a"; EQEQ; IDENT "b"; NE; IDENT "c"; LE; GE; SHL; SHR;
      AMPAMP; PIPEPIPE; PLUSEQ; PLUSPLUS; EOF ] -> ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_literals () =
  (match toks {|'a' '\n' '\0' "hi\n" 0x10|} with
  | [ Lexer.CHARLIT 'a'; CHARLIT '\n'; CHARLIT '\000'; STRING "hi\n"; INT 16L; EOF ]
    -> ()
  | _ -> Alcotest.fail "literal lexing");
  match toks "critical char" with
  | [ Lexer.KW_CRITICAL; KW_CHAR; EOF ] -> ()
  | _ -> Alcotest.fail "keyword lexing"

let test_lexer_comments () =
  match toks "a // line comment\n b /* block \n comment */ c" with
  | [ Lexer.IDENT "a"; IDENT "b"; IDENT "c"; EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_errors () =
  (match Lexer.tokenize "@" with
  | exception Lexer.Error (1, _) -> ()
  | _ -> Alcotest.fail "expected error");
  match Lexer.tokenize "\n\n\"unterminated" with
  | exception Lexer.Error (3, _) -> ()
  | _ -> Alcotest.fail "expected error with line number"

(* ---- parser ----------------------------------------------------------------- *)

let test_parse_precedence () =
  match parse_expr "1 + 2 * 3" with
  | Ast.Ebinop (Ast.Add, Ast.Eint 1L, Ast.Ebinop (Ast.Mul, Ast.Eint 2L, Ast.Eint 3L))
    -> ()
  | _ -> Alcotest.fail "precedence"

let test_parse_associativity () =
  match parse_expr "10 - 3 - 2" with
  | Ast.Ebinop (Ast.Sub, Ast.Ebinop (Ast.Sub, Ast.Eint 10L, Ast.Eint 3L), Ast.Eint 2L)
    -> ()
  | _ -> Alcotest.fail "left associativity"

let test_parse_logical_layers () =
  match parse_expr "a || b && c" with
  | Ast.Ebinop (Ast.Lor, Ast.Evar "a", Ast.Ebinop (Ast.Land, Ast.Evar "b", Ast.Evar "c"))
    -> ()
  | _ -> Alcotest.fail "|| binds looser than &&"

let test_parse_unary_and_index () =
  match parse_expr "-a[i + 1]" with
  | Ast.Eunop (Ast.Neg, Ast.Eindex (Ast.Evar "a", Ast.Ebinop (Ast.Add, Ast.Evar "i", Ast.Eint 1L)))
    -> ()
  | _ -> Alcotest.fail "unary/index"

let test_parse_call_args () =
  match parse_expr "f(1, g(2), h())" with
  | Ast.Ecall ("f", [ Ast.Eint 1L; Ast.Ecall ("g", [ Ast.Eint 2L ]); Ast.Ecall ("h", []) ])
    -> ()
  | _ -> Alcotest.fail "call args"

let test_parse_program_shape () =
  let p =
    parse
      {|
int g = 5;
char name[10];

int helper(int a, char *s) {
  return a;
}

int main() {
  critical int secret;
  int i;
  for (i = 0; i < 10; i++) {
    secret = i;
  }
  do { i--; } while (i > 0);
  return helper(g, name);
}
|}
  in
  Alcotest.(check int) "globals" 2 (List.length p.Ast.globals);
  Alcotest.(check int) "functions" 2 (List.length p.Ast.funcs);
  let main = Option.get (Ast.find_func p "main") in
  let decls = Typecheck.block_decls main.Ast.f_body in
  Alcotest.(check int) "locals" 2 (List.length decls);
  Alcotest.(check bool) "critical flag" true
    (List.exists (fun d -> d.Ast.d_critical && d.Ast.d_name = "secret") decls)

let test_parse_for_decl () =
  let p = parse "int main() { int s = 0; for (int i = 0; i < 4; i++) { s += i; } return s; }" in
  let main = Option.get (Ast.find_func p "main") in
  (match
     List.find_opt (function Ast.Sfor (Some (Ast.Sdecl _), _, _, _) -> true | _ -> false)
       main.Ast.f_body
   with
  | Some _ -> ()
  | None -> Alcotest.fail "for-decl not parsed as a declaration");
  (* scoping is function-flat: the loop variable is a normal local *)
  Alcotest.(check bool) "i visible" true (Typecheck.type_of_var p main "i" = Some Ast.Tint)

let test_parse_sugar () =
  let p = parse "int main() { int x; x = 0; x += 2; x -= 1; x++; x--; return x; }" in
  let main = Option.get (Ast.find_func p "main") in
  (* sugar desugars to plain assignments *)
  let assigns =
    List.filter (function Ast.Sassign _ -> true | _ -> false) main.Ast.f_body
  in
  Alcotest.(check int) "desugared" 5 (List.length assigns)

let test_parse_array_param_decays () =
  let p = parse "int f(char buf[]) { return buf[0]; } int main() { return 0; }" in
  let f = Option.get (Ast.find_func p "f") in
  match f.Ast.f_params with
  | [ ("buf", Ast.Tptr Ast.Tchar) ] -> ()
  | _ -> Alcotest.fail "array param should decay to pointer"

let test_parse_errors () =
  (match parse "int main() { return 1 }" with
  | exception Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "missing semicolon accepted");
  (match parse "int main() { 1 = 2; }" with
  | exception Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "assignment to literal accepted");
  match parse "critical int f() { return 0; }" with
  | exception Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "critical function accepted"

(* ---- pretty-printer roundtrip ------------------------------------------------ *)

let test_pretty_roundtrip_corpus () =
  (* every benchmark and victim program must round-trip through the
     pretty-printer *)
  let sources =
    List.map (fun b -> b.Workload.Spec.source) Workload.Spec.all
    @ [
        Workload.Vuln.fork_server ~buffer_size:16;
        Workload.Vuln.raf_correctness_probe;
        Workload.Vuln.leaky_server;
        Workload.Vuln.lv_stealth_victim;
      ]
    @ List.map
        (fun (p : Workload.Servers.profile) -> p.Workload.Servers.source)
        (Workload.Servers.web @ Workload.Servers.db)
  in
  List.iter
    (fun src ->
      let ast = parse src in
      let printed = Pretty.program_to_string ast in
      let reparsed = parse printed in
      if reparsed <> ast then
        Alcotest.fail ("pretty-print roundtrip failed for:\n" ^ printed))
    sources;
  Alcotest.(check bool) "all round-tripped" true (List.length sources > 30)

let test_pretty_expr () =
  Alcotest.(check string) "parens where needed" "(1 + 2) * 3"
    (Pretty.expr_to_string
       (Ast.Ebinop (Ast.Mul, Ast.Ebinop (Ast.Add, Ast.Eint 1L, Ast.Eint 2L), Ast.Eint 3L)));
  Alcotest.(check string) "no spurious parens" "1 + 2 * 3"
    (Pretty.expr_to_string (parse_expr "1 + 2 * 3"))

(* ---- typechecker -------------------------------------------------------------- *)

let expect_error src =
  match Typecheck.check (parse src) with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail ("typecheck accepted: " ^ src)

let expect_ok src =
  match Typecheck.check (parse src) with
  | _ -> ()
  | exception Typecheck.Error msg -> Alcotest.fail ("typecheck rejected: " ^ msg)

let test_typecheck_accepts_suite () =
  List.iter (fun b -> expect_ok b.Workload.Spec.source) Workload.Spec.all

let test_typecheck_unknown_var () =
  expect_error "int main() { return nope; }"

let test_typecheck_unknown_function () =
  expect_error "int main() { return mystery(); }"

let test_typecheck_arity () =
  expect_error "int f(int a) { return a; } int main() { return f(1, 2); }";
  expect_error "int main() { return strlen(); }"

let test_typecheck_builtin_known () =
  expect_ok {|int main() { char b[8]; strcpy(b, "x"); return strlen(b); }|}

let test_typecheck_index_scalar () =
  expect_error "int main() { int x; return x[0]; }"

let test_typecheck_assign_array () =
  expect_error "int main() { char b[4]; b = 0; return 0; }"

let test_typecheck_break_outside_loop () =
  expect_error "int main() { break; return 0; }";
  expect_error "int main() { continue; return 0; }"

let test_typecheck_duplicates () =
  expect_error "int main() { int x; int x; return 0; }";
  expect_error "int f(int a, int a) { return a; } int main() { return 0; }";
  expect_error "int g; int g; int main() { return 0; }"

let test_typecheck_missing_main () =
  expect_error "int f() { return 0; }"

let test_typecheck_critical_global () =
  expect_error "critical int g; int main() { return 0; }"

let test_typecheck_redefine_builtin () =
  expect_error "int strlen(int x) { return x; } int main() { return 0; }"

let test_typecheck_array_initialiser () =
  expect_error "int main() { char b[4] = 1; return 0; }"

let test_type_of_var_scoping () =
  let p = parse "int g; int f(int a) { int l; l = a; return l; } int main() { return 0; }" in
  let f = Option.get (Ast.find_func p "f") in
  Alcotest.(check bool) "param" true (Typecheck.type_of_var p f "a" = Some Ast.Tint);
  Alcotest.(check bool) "local" true (Typecheck.type_of_var p f "l" = Some Ast.Tint);
  Alcotest.(check bool) "global" true (Typecheck.type_of_var p f "g" = Some Ast.Tint);
  Alcotest.(check bool) "unknown" true (Typecheck.type_of_var p f "zzz" = None)

(* ---- constant folding --------------------------------------------------------- *)

let test_fold_arithmetic () =
  let f src = Pretty.expr_to_string (Fold.expr (parse_expr src)) in
  Alcotest.(check string) "arith" "9" (f "2 + 3 * 4 - 10 / 2");
  Alcotest.(check string) "comparisons" "1" (f "3 < 4");
  Alcotest.(check string) "logic" "0" (f "1 && 0");
  Alcotest.(check string) "shift masks like hardware" "2" (f "1 << 65");
  Alcotest.(check string) "unary" "-5" (f "-(2 + 3)");
  Alcotest.(check string) "char literals" "97" (f "'a' + 0")

let test_fold_preserves_div_by_zero () =
  match Fold.expr (parse_expr "1 / 0") with
  | Ast.Ebinop (Ast.Div, Ast.Eint 1L, Ast.Eint 0L) -> ()
  | _ -> Alcotest.fail "division by zero must not be folded away"

let test_fold_keeps_nonliteral () =
  match Fold.expr (parse_expr "x + (2 * 3)") with
  | Ast.Ebinop (Ast.Add, Ast.Evar "x", Ast.Eint 6L) -> ()
  | _ -> Alcotest.fail "partial folding"

let test_fold_dead_branch_keeps_decls () =
  let p =
    parse
      {|
int main() {
  if (0) {
    int ghost = 5;
    print_int(ghost);
  }
  ghost = 7;
  return ghost;
}
|}
  in
  let folded = Fold.program p in
  (* still typechecks: ghost's declaration survived the dead branch *)
  ignore (Typecheck.check folded);
  (* and the print inside the dead branch is gone *)
  let main = Option.get (Ast.find_func folded "main") in
  let rec has_call block =
    List.exists
      (function
        | Ast.Sexpr (Ast.Ecall ("print_int", _)) -> true
        | Ast.Sblock b | Ast.Swhile (_, b) -> has_call b
        | Ast.Sif (_, a, b) -> has_call a || has_call b
        | _ -> false)
      block
  in
  Alcotest.(check bool) "dead call removed" false (has_call main.Ast.f_body)

let test_fold_dead_while () =
  let p = parse "int main() { while (1 - 1) { print_int(1); } return 0; }" in
  let folded = Fold.program p in
  let main = Option.get (Ast.find_func folded "main") in
  Alcotest.(check bool) "loop removed" false
    (List.exists (function Ast.Swhile _ -> true | _ -> false) main.Ast.f_body)

(* ---- ast helpers ---------------------------------------------------------------- *)

let test_sizeof () =
  Alcotest.(check int) "int" 8 (Ast.sizeof Ast.Tint);
  Alcotest.(check int) "char" 1 (Ast.sizeof Ast.Tchar);
  Alcotest.(check int) "ptr" 8 (Ast.sizeof (Ast.Tptr Ast.Tchar));
  Alcotest.(check int) "array" 24 (Ast.sizeof (Ast.Tarray (Ast.Tint, 3)))

let test_elem_size () =
  Alcotest.(check int) "char array" 1 (Ast.elem_size (Ast.Tarray (Ast.Tchar, 4)));
  Alcotest.(check int) "int ptr" 8 (Ast.elem_size (Ast.Tptr Ast.Tint));
  match Ast.elem_size Ast.Tint with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "scalar should not be indexable"

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "operators" `Quick test_lexer_ops;
          Alcotest.test_case "literals" `Quick test_lexer_literals;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors with lines" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "associativity" `Quick test_parse_associativity;
          Alcotest.test_case "logical layers" `Quick test_parse_logical_layers;
          Alcotest.test_case "unary/index" `Quick test_parse_unary_and_index;
          Alcotest.test_case "call args" `Quick test_parse_call_args;
          Alcotest.test_case "program shape" `Quick test_parse_program_shape;
          Alcotest.test_case "for-decl" `Quick test_parse_for_decl;
          Alcotest.test_case "sugar desugars" `Quick test_parse_sugar;
          Alcotest.test_case "array param decays" `Quick test_parse_array_param_decays;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "corpus roundtrip" `Quick test_pretty_roundtrip_corpus;
          Alcotest.test_case "expr forms" `Quick test_pretty_expr;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts the suite" `Quick test_typecheck_accepts_suite;
          Alcotest.test_case "unknown variable" `Quick test_typecheck_unknown_var;
          Alcotest.test_case "unknown function" `Quick test_typecheck_unknown_function;
          Alcotest.test_case "arity" `Quick test_typecheck_arity;
          Alcotest.test_case "builtins known" `Quick test_typecheck_builtin_known;
          Alcotest.test_case "indexing scalars" `Quick test_typecheck_index_scalar;
          Alcotest.test_case "assigning arrays" `Quick test_typecheck_assign_array;
          Alcotest.test_case "break placement" `Quick test_typecheck_break_outside_loop;
          Alcotest.test_case "duplicates" `Quick test_typecheck_duplicates;
          Alcotest.test_case "missing main" `Quick test_typecheck_missing_main;
          Alcotest.test_case "critical global" `Quick test_typecheck_critical_global;
          Alcotest.test_case "redefining builtins" `Quick test_typecheck_redefine_builtin;
          Alcotest.test_case "array initialiser" `Quick test_typecheck_array_initialiser;
          Alcotest.test_case "type_of_var scoping" `Quick test_type_of_var_scoping;
        ] );
      ( "fold",
        [
          Alcotest.test_case "arithmetic" `Quick test_fold_arithmetic;
          Alcotest.test_case "div-by-zero preserved" `Quick test_fold_preserves_div_by_zero;
          Alcotest.test_case "partial folding" `Quick test_fold_keeps_nonliteral;
          Alcotest.test_case "dead branch keeps decls" `Quick
            test_fold_dead_branch_keeps_decls;
          Alcotest.test_case "dead while removed" `Quick test_fold_dead_while;
        ] );
      ( "ast",
        [
          Alcotest.test_case "sizeof" `Quick test_sizeof;
          Alcotest.test_case "elem_size" `Quick test_elem_size;
        ] );
    ]
