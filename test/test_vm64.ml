(* Machine-level tests: memory, faults, and instruction semantics
   executed through the real fetch/decode/execute path. *)

open Isa
open Vm64

let i64 = Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal

(* ---- memory --------------------------------------------------------------- *)

let test_mem_rw () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000L ~len:4096;
  Memory.write_u64 m 0x1000L 0x1122334455667788L;
  Alcotest.check i64 "u64" 0x1122334455667788L (Memory.read_u64 m 0x1000L);
  Alcotest.(check int) "low byte (little endian)" 0x88 (Memory.read_u8 m 0x1000L);
  Memory.write_u8 m 0x1007L 0xFF;
  Alcotest.check i64 "byte patch visible" 0xFF22334455667788L (Memory.read_u64 m 0x1000L)

let test_mem_u32 () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:4096;
  Memory.write_u32 m 8L 0xDEADBEEFL;
  Alcotest.check i64 "zero extended" 0xDEADBEEFL (Memory.read_u32 m 8L);
  Alcotest.check i64 "upper half untouched" 0xDEADBEEFL (Memory.read_u64 m 8L)

let test_mem_cross_page () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:8192;
  Memory.write_u64 m 4092L 0x0102030405060708L;
  Alcotest.check i64 "cross-page u64" 0x0102030405060708L (Memory.read_u64 m 4092L);
  Memory.write_bytes m 4090L (Bytes.of_string "ABCDEFGHIJ");
  Alcotest.(check string) "cross-page bytes" "ABCDEFGHIJ"
    (Bytes.to_string (Memory.read_bytes m 4090L 10))

let test_mem_unmapped_faults () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000L ~len:4096;
  (match Memory.read_u8 m 0x9999999L with
  | exception Fault.Trap (Fault.Segfault 0x9999999L) -> ()
  | _ -> Alcotest.fail "expected segfault");
  match Memory.write_u64 m 0xFF0L 1L with
  | exception Fault.Trap (Fault.Segfault _) -> ()
  | _ -> Alcotest.fail "expected segfault below mapping"

let test_mem_clone_isolated () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:4096;
  Memory.write_u64 m 0L 42L;
  let c = Memory.clone m in
  Memory.write_u64 c 0L 99L;
  Alcotest.check i64 "parent unchanged" 42L (Memory.read_u64 m 0L);
  Alcotest.check i64 "child sees write" 99L (Memory.read_u64 c 0L)

let test_mem_cross_page_u32_u64 () =
  (* the straddling slow paths of the 4- and 8-byte accessors *)
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:8192;
  List.iter
    (fun off ->
      let a = Int64.of_int off in
      Memory.write_u64 m a 0x1122334455667788L;
      Alcotest.check i64
        (Printf.sprintf "u64 roundtrip @%d" off)
        0x1122334455667788L (Memory.read_u64 m a))
    [ 4089; 4090; 4091; 4092; 4093; 4094; 4095 ];
  List.iter
    (fun off ->
      let a = Int64.of_int off in
      Memory.write_u32 m a 0xDEADBEEFL;
      Alcotest.check i64
        (Printf.sprintf "u32 roundtrip @%d" off)
        0xDEADBEEFL (Memory.read_u32 m a))
    [ 4093; 4094; 4095 ];
  (* little-endian byte layout across the boundary *)
  Memory.write_u64 m 4092L 0x0807060504030201L;
  Alcotest.(check int) "low byte on first page" 0x01 (Memory.read_u8 m 4092L);
  Alcotest.(check int) "fifth byte on second page" 0x05 (Memory.read_u8 m 4096L)

let test_mem_cross_page_fault_partial () =
  (* a spanning write that hits an unmapped page faults at the page
     boundary, leaving exactly the prefix a per-byte loop would write *)
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:4096;
  (match Memory.write_u64 m 4092L 0x0102030405060708L with
  | exception Fault.Trap (Fault.Segfault a) ->
    Alcotest.check i64 "fault at page boundary" 4096L a
  | () -> Alcotest.fail "expected segfault");
  Alcotest.check i64 "prefix written before the fault" 0x05060708L
    (Memory.read_u32 m 4092L)

(* ---- copy-on-write fork ---------------------------------------------------- *)

let test_cow_isolation_both_directions () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:4096;
  Memory.write_u64 m 0L 42L;
  let c = Memory.clone m in
  Memory.write_u64 m 8L 7L;
  Memory.write_u64 c 0L 99L;
  Alcotest.check i64 "child write invisible to parent" 42L (Memory.read_u64 m 0L);
  Alcotest.check i64 "parent write invisible to child" 0L (Memory.read_u64 c 8L);
  Alcotest.check i64 "parent sees own write" 7L (Memory.read_u64 m 8L);
  Alcotest.check i64 "child sees own write" 99L (Memory.read_u64 c 0L)

let test_cow_fork_chain () =
  let g = Memory.create () in
  Memory.map g ~addr:0L ~len:4096;
  Memory.write_u64 g 0L 1L;
  let p = Memory.clone g in
  let c = Memory.clone p in
  Memory.write_u64 g 0L 10L;
  Memory.write_u64 p 0L 20L;
  Alcotest.check i64 "grandparent" 10L (Memory.read_u64 g 0L);
  Alcotest.check i64 "parent" 20L (Memory.read_u64 p 0L);
  Alcotest.check i64 "child keeps fork-time value" 1L (Memory.read_u64 c 0L);
  let gc = Memory.clone c in
  Memory.write_u64 c 0L 30L;
  Alcotest.check i64 "grandchild keeps its fork-time value" 1L
    (Memory.read_u64 gc 0L);
  Alcotest.check i64 "child" 30L (Memory.read_u64 c 0L)

let test_cow_memoized_page_write_through () =
  (* writing through the one-page memo must still break sharing *)
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:8192;
  Memory.write_u64 m 0L 5L;
  ignore (Memory.read_u8 m 0L) (* memoize page 0 in the parent *);
  let c = Memory.clone m in
  Memory.write_u64 m 0L 6L (* write via the memoized (now shared) record *);
  Alcotest.check i64 "child unaffected by memoized write" 5L (Memory.read_u64 c 0L);
  Alcotest.check i64 "parent sees it" 6L (Memory.read_u64 m 0L);
  ignore (Memory.read_u8 c 4096L) (* memoize page 1 in the child *);
  Memory.write_u8 c 4097L 0xAB;
  Alcotest.(check int) "parent unaffected by child's memoized write" 0
    (Memory.read_u8 m 4097L)

let test_cow_accounting () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:(3 * 4096);
  Alcotest.(check int) "resident pre-fork" (3 * 4096) (Memory.resident_bytes m);
  Alcotest.(check int) "shared pre-fork" 0 (Memory.shared_bytes m);
  let c = Memory.clone m in
  Alcotest.(check int) "mapped unchanged by fork" (3 * 4096) (Memory.mapped_bytes m);
  Alcotest.(check int) "parent fully shared after fork" 0 (Memory.resident_bytes m);
  Alcotest.(check int) "child fully shared after fork" 0 (Memory.resident_bytes c);
  Memory.write_u8 m 0L 1;
  Alcotest.(check int) "one page privatised by the write" 4096
    (Memory.resident_bytes m);
  Alcotest.(check int) "rest still shared" (2 * 4096) (Memory.shared_bytes m);
  Alcotest.(check int) "resident + shared = mapped" (Memory.mapped_bytes m)
    (Memory.resident_bytes m + Memory.shared_bytes m);
  let st = Memory.family_stats m in
  Alcotest.(check int) "clones" 1 st.Memory.clones;
  Alcotest.(check int) "pages aliased at clone" 3 st.Memory.pages_aliased;
  Alcotest.(check int) "cow breaks" 1 st.Memory.cow_breaks;
  Alcotest.(check int) "telemetry shared with the child" 1
    (Memory.family_stats c).Memory.clones

let test_cstr_len () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:8192;
  Memory.write_bytes m 4090L (Bytes.of_string "ABCDEFGHIJ");
  Alcotest.(check int) "crosses the page boundary" 10 (Memory.cstr_len m 4090L);
  Alcotest.(check int) "empty string" 0 (Memory.cstr_len m 0L);
  let m2 = Memory.create () in
  Memory.map m2 ~addr:0L ~len:4096;
  Memory.write_bytes m2 0L (Bytes.make 4096 'A');
  match Memory.cstr_len m2 0L with
  | exception Fault.Trap (Fault.Segfault 4096L) -> ()
  | _ -> Alcotest.fail "expected segfault at the first unmapped byte"

let test_mapped_bytes () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~len:1;
  Alcotest.(check int) "one page" 4096 (Memory.mapped_bytes m);
  Memory.map m ~addr:0L ~len:4096;
  Alcotest.(check int) "idempotent" 4096 (Memory.mapped_bytes m)

let prop_mem_roundtrip =
  QCheck.Test.make ~name:"u64 write/read roundtrip at any offset" ~count:300
    QCheck.(pair (int_range 0 8184) int64)
    (fun (off, v) ->
      let m = Memory.create () in
      Memory.map m ~addr:0L ~len:8192;
      Memory.write_u64 m (Int64.of_int off) v;
      Memory.read_u64 m (Int64.of_int off) = v)

(* ---- execution harness ----------------------------------------------------- *)

let env = Exec.create_env ~is_builtin:(fun a -> if a = 0x100L then Some "fake" else None) ()

let run_insns ?(setup = fun _ _ -> ()) insns =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  Memory.map mem ~addr:0x20000L ~len:8192;
  Memory.map mem ~addr:0x70000L ~len:8192;
  Cpu.set cpu Reg.RSP 0x71000L;
  Memory.write_bytes mem 0x1000L (Encode.list_to_bytes (insns @ [ Insn.Hlt ]));
  cpu.Cpu.rip <- 0x1000L;
  setup cpu mem;
  let rec loop n =
    if n > 10000 then Alcotest.fail "runaway program";
    match Exec.step env cpu mem with
    | Exec.Running -> loop (n + 1)
    | Exec.Halted -> ()
    | Exec.Builtin name -> Alcotest.fail ("unexpected builtin " ^ name)
    | Exec.Syscall_trap -> Alcotest.fail "unexpected syscall"
    | Exec.Faulted f -> Alcotest.fail ("unexpected fault: " ^ Fault.to_string f)
  in
  loop 0;
  (cpu, mem)

let rax = Operand.reg Reg.RAX
let rbx = Operand.reg Reg.RBX
let rcx = Operand.reg Reg.RCX

let test_mov_imm () =
  let cpu, _ = run_insns [ Insn.Mov (rax, Operand.imm 7L) ] in
  Alcotest.check i64 "rax" 7L (Cpu.get cpu Reg.RAX)

let test_arith () =
  let cpu, _ =
    run_insns
      [
        Insn.Mov (rax, Operand.imm 10L);
        Insn.Mov (rbx, Operand.imm 3L);
        Insn.Bin (Insn.Sub, rax, rbx);
        Insn.Bin (Insn.Imul, rax, Operand.imm 6L);
        Insn.Bin (Insn.Idiv, rax, Operand.imm 5L);
        Insn.Bin (Insn.Irem, rax, Operand.imm 3L);
      ]
  in
  Alcotest.check i64 "arith chain" 2L (Cpu.get cpu Reg.RAX)

let test_div_by_zero_faults () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  Memory.write_bytes mem 0x1000L
    (Encode.list_to_bytes
       [ Insn.Mov (rax, Operand.imm 1L); Insn.Bin (Insn.Idiv, rax, Operand.imm 0L) ]);
  cpu.Cpu.rip <- 0x1000L;
  let rec loop () =
    match Exec.step env cpu mem with
    | Exec.Running -> loop ()
    | Exec.Faulted (Fault.Bad_instruction (_, msg)) ->
      Alcotest.(check string) "reason" "division by zero" msg
    | _ -> Alcotest.fail "expected fault"
  in
  loop ()

let test_flags_and_setcc () =
  let cpu, _ =
    run_insns
      [
        Insn.Mov (rax, Operand.imm 3L);
        Insn.Mov (rbx, Operand.imm 9L);
        Insn.Bin (Insn.Cmp, rax, rbx);
        Insn.Setcc (Insn.L, Reg.RCX);
        Insn.Bin (Insn.Cmp, rbx, rax);
        Insn.Setcc (Insn.G, Reg.RDX);
      ]
  in
  Alcotest.check i64 "setl" 1L (Cpu.get cpu Reg.RCX);
  Alcotest.check i64 "setg" 1L (Cpu.get cpu Reg.RDX)

let test_unsigned_conditions () =
  let cpu, _ =
    run_insns
      [
        Insn.Mov (rax, Operand.imm (-1L));
        Insn.Mov (rbx, Operand.imm 1L);
        Insn.Bin (Insn.Cmp, rax, rbx);
        Insn.Setcc (Insn.A, Reg.RCX);
        Insn.Bin (Insn.Cmp, rax, rbx);
        Insn.Setcc (Insn.L, Reg.RDX);
      ]
  in
  Alcotest.check i64 "above (unsigned)" 1L (Cpu.get cpu Reg.RCX);
  Alcotest.check i64 "less (signed)" 1L (Cpu.get cpu Reg.RDX)

let test_push_pop_stack () =
  let cpu, _ =
    run_insns
      [
        Insn.Mov (rax, Operand.imm 0xABCL);
        Insn.Push rax;
        Insn.Mov (rax, Operand.imm 0L);
        Insn.Pop rbx;
      ]
  in
  Alcotest.check i64 "popped" 0xABCL (Cpu.get cpu Reg.RBX);
  Alcotest.check i64 "rsp restored" 0x71000L (Cpu.get cpu Reg.RSP)

let test_call_ret () =
  let fn = [ Insn.Mov (rbx, Operand.imm 55L); Insn.Ret ] in
  let fn_addr = 0x1800L in
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:8192;
  Memory.map mem ~addr:0x70000L ~len:8192;
  Cpu.set cpu Reg.RSP 0x71000L;
  Memory.write_bytes mem 0x1000L
    (Encode.list_to_bytes [ Insn.Call (Insn.Abs fn_addr); Insn.Hlt ]);
  Memory.write_bytes mem fn_addr (Encode.list_to_bytes fn);
  cpu.Cpu.rip <- 0x1000L;
  let rec loop () =
    match Exec.step env cpu mem with
    | Exec.Running -> loop ()
    | Exec.Halted -> ()
    | _ -> Alcotest.fail "unexpected stop"
  in
  loop ();
  Alcotest.check i64 "callee ran" 55L (Cpu.get cpu Reg.RBX);
  Alcotest.check i64 "stack balanced" 0x71000L (Cpu.get cpu Reg.RSP)

let test_builtin_call_traps () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  Memory.map mem ~addr:0x70000L ~len:8192;
  Cpu.set cpu Reg.RSP 0x71000L;
  Memory.write_bytes mem 0x1000L
    (Encode.list_to_bytes [ Insn.Call (Insn.Abs 0x100L); Insn.Hlt ]);
  cpu.Cpu.rip <- 0x1000L;
  (match Exec.step env cpu mem with
  | Exec.Builtin "fake" -> ()
  | _ -> Alcotest.fail "expected builtin trap");
  Alcotest.check i64 "rsp untouched (no ret pushed)" 0x71000L (Cpu.get cpu Reg.RSP);
  match Exec.step env cpu mem with
  | Exec.Halted -> ()
  | _ -> Alcotest.fail "expected hlt after builtin"

let test_leave () =
  let cpu, _ =
    run_insns
      [
        Insn.Mov (Operand.reg Reg.RBP, Operand.imm 0x9999L);
        Insn.Push (Operand.reg Reg.RBP);
        Insn.Mov (Operand.reg Reg.RBP, Operand.reg Reg.RSP);
        Insn.Bin (Insn.Sub, Operand.reg Reg.RSP, Operand.imm 64L);
        Insn.Leave;
      ]
  in
  Alcotest.check i64 "rbp restored" 0x9999L (Cpu.get cpu Reg.RBP);
  Alcotest.check i64 "rsp popped" 0x71000L (Cpu.get cpu Reg.RSP)

let test_movb_merges () =
  let cpu, _ =
    run_insns
      [
        Insn.Mov (rax, Operand.imm 0x1111111111111111L);
        Insn.Movb (rax, Operand.imm 0xFFL);
      ]
  in
  Alcotest.check i64 "low byte merged" 0x11111111111111FFL (Cpu.get cpu Reg.RAX)

let test_movl_zero_extends () =
  let cpu, _ =
    run_insns
      [ Insn.Mov (rax, Operand.imm (-1L)); Insn.Movl (rax, Operand.imm 0x1234L) ]
  in
  Alcotest.check i64 "zero extended" 0x1234L (Cpu.get cpu Reg.RAX)

let test_lea_addressing () =
  let cpu, _ =
    run_insns
      [
        Insn.Mov (rbx, Operand.imm 0x1000L);
        Insn.Mov (rcx, Operand.imm 4L);
        Insn.Lea
          ( Reg.RAX,
            { Operand.seg_fs = false; base = Some Reg.RBX;
              index = Some (Reg.RCX, Operand.S8); disp = 16L } );
      ]
  in
  Alcotest.check i64 "base+index*8+disp" 0x1030L (Cpu.get cpu Reg.RAX)

let test_fs_segment () =
  let setup cpu mem =
    cpu.Cpu.fs_base <- 0x20000L;
    Memory.write_u64 mem 0x20028L 0xCAFEL
  in
  let cpu, _ = run_insns ~setup [ Insn.Mov (rax, Operand.fs 0x28L) ] in
  Alcotest.check i64 "TLS load" 0xCAFEL (Cpu.get cpu Reg.RAX)

let test_rdrand_sets_cf () =
  let cpu, _ = run_insns [ Insn.Rdrand Reg.RAX ] in
  Alcotest.(check bool) "CF set" true cpu.Cpu.flags.Cpu.cf

let test_rdrand_deterministic_per_seed () =
  let run () =
    let cpu, _ = run_insns [ Insn.Rdrand Reg.RAX ] in
    Cpu.get cpu Reg.RAX
  in
  Alcotest.check i64 "same seed, same entropy" (run ()) (run ())

let test_rdtsc_composition () =
  let cpu, _ =
    run_insns
      [
        Insn.Nop; Insn.Nop;
        Insn.Rdtsc;
        Insn.Shift (Insn.Shl, Operand.reg Reg.RDX, 32);
        Insn.Bin (Insn.Or, rax, Operand.reg Reg.RDX);
      ]
  in
  let v = Cpu.get cpu Reg.RAX in
  Alcotest.(check bool) "plausible tsc" true
    (Int64.compare v 0L > 0 && Int64.compare v 1000L < 0)

let test_aesenc_matches_crypto () =
  let setup cpu _ =
    Cpu.set_xmm cpu Reg.Xmm.xmm0 (0x1111L, 0x2222L);
    Cpu.set_xmm cpu Reg.Xmm.xmm1 (0x3333L, 0x4444L)
  in
  let cpu, _ = run_insns ~setup [ Insn.Aesenc (Reg.Xmm.xmm0, Reg.Xmm.xmm1) ] in
  let state = Bytes.create 16 in
  Bytes.set_int64_le state 0 0x1111L;
  Bytes.set_int64_le state 8 0x2222L;
  let rk = Bytes.create 16 in
  Bytes.set_int64_le rk 0 0x3333L;
  Bytes.set_int64_le rk 8 0x4444L;
  let expect = Crypto.Aes128.aesenc ~state ~round_key:rk in
  let lo, hi = Cpu.get_xmm cpu Reg.Xmm.xmm0 in
  Alcotest.check i64 "lo" (Bytes.get_int64_le expect 0) lo;
  Alcotest.check i64 "hi" (Bytes.get_int64_le expect 8) hi

let test_pcmpeq128 () =
  let setup cpu mem =
    Cpu.set_xmm cpu Reg.Xmm.xmm15 (0xAAL, 0xBBL);
    Memory.write_u64 mem 0x20000L 0xAAL;
    Memory.write_u64 mem 0x20008L 0xBBL
  in
  let mem_op =
    { Operand.seg_fs = false; base = None; index = None; disp = 0x20000L }
  in
  let cpu, _ = run_insns ~setup [ Insn.Pcmpeq128 (Reg.Xmm.xmm15, mem_op) ] in
  Alcotest.(check bool) "equal -> ZF" true cpu.Cpu.flags.Cpu.zf;
  let setup2 cpu mem =
    setup cpu mem;
    Memory.write_u64 mem 0x20008L 0xBCL
  in
  let cpu2, _ = run_insns ~setup:setup2 [ Insn.Pcmpeq128 (Reg.Xmm.xmm15, mem_op) ] in
  Alcotest.(check bool) "mismatch -> not ZF" false cpu2.Cpu.flags.Cpu.zf

let test_xmm_moves () =
  let setup cpu mem =
    Cpu.set cpu Reg.R12 0x12L;
    Cpu.set cpu Reg.R13 0x13L;
    Memory.write_u64 mem 0x20010L 0x99L
  in
  let _, mem =
    run_insns ~setup
      [
        Insn.Movq_to_xmm (Reg.Xmm.xmm1, Reg.R13);
        Insn.Pinsrq_high (Reg.Xmm.xmm1, Reg.R12);
        Insn.Movhps_load
          (Reg.Xmm.xmm1, { Operand.seg_fs = false; base = None; index = None; disp = 0x20010L });
        Insn.Movdqu_store
          ({ Operand.seg_fs = false; base = None; index = None; disp = 0x20020L }, Reg.Xmm.xmm1);
      ]
  in
  Alcotest.check i64 "low lane" 0x13L (Memory.read_u64 mem 0x20020L);
  Alcotest.check i64 "high lane (movhps overwrote pinsrq)" 0x99L
    (Memory.read_u64 mem 0x20028L)

let test_exec_faults_reported () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  Memory.write_bytes mem 0x1000L
    (Encode.list_to_bytes [ Insn.Mov (rax, Operand.mem 0x9000000L) ]);
  cpu.Cpu.rip <- 0x1000L;
  match Exec.step env cpu mem with
  | Exec.Faulted (Fault.Segfault 0x9000000L) -> ()
  | _ -> Alcotest.fail "expected segfault"

let test_fetch_unmapped () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  cpu.Cpu.rip <- 0x41414141L;
  match Exec.step env cpu mem with
  | Exec.Faulted (Fault.Segfault _) -> ()
  | _ -> Alcotest.fail "expected fetch fault"

let test_fetch_fault_retires_zero () =
  (* fuel pinning around a segfaulting rip: the block before the bad
     jump retires and is charged normally; the faulting fetch itself
     retires 0 instructions and charges nothing *)
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  Memory.write_bytes mem 0x1000L
    (Encode.list_to_bytes [ Insn.Nop; Insn.Nop; Insn.Jmp (Insn.Abs 0x9000000L) ]);
  cpu.Cpu.rip <- 0x1000L;
  (match Exec.step_block env cpu mem ~max_insns:50 with
  | Exec.Running, 3 -> ()
  | _, n -> Alcotest.failf "block before the fault: %d retired, want 3" n);
  Alcotest.(check bool) "block was charged" true (cpu.Cpu.cycles > 0L);
  let cycles_at_fault = cpu.Cpu.cycles in
  (match Exec.step_block env cpu mem ~max_insns:50 with
  | Exec.Faulted (Fault.Segfault 0x9000000L), 0 -> ()
  | Exec.Faulted _, n -> Alcotest.failf "faulting fetch retired %d, want 0" n
  | _ -> Alcotest.fail "expected fetch segfault");
  Alcotest.check i64 "faulting fetch charged nothing" cycles_at_fault
    cpu.Cpu.cycles;
  (* and a whole-run over the same program still terminates *)
  let cpu2 = Cpu.create () in
  cpu2.Cpu.rip <- 0x1000L;
  match Exec.run env cpu2 mem with
  | Exec.Stopped (Exec.Faulted (Fault.Segfault 0x9000000L)) ->
    Alcotest.check i64 "run charged only the retired block" cycles_at_fault
      cpu2.Cpu.cycles
  | _ -> Alcotest.fail "run did not stop on the fetch fault"

let test_insn_tax_charged () =
  let measure tax =
    let cpu = Cpu.create () in
    cpu.Cpu.insn_tax <- tax;
    let mem = Memory.create () in
    Memory.map mem ~addr:0x1000L ~len:4096;
    Memory.write_bytes mem 0x1000L
      (Encode.list_to_bytes [ Insn.Nop; Insn.Nop; Insn.Hlt ]);
    cpu.Cpu.rip <- 0x1000L;
    let rec loop () =
      match Exec.step env cpu mem with Exec.Running -> loop () | _ -> ()
    in
    loop ();
    cpu.Cpu.cycles
  in
  Alcotest.check i64 "tax adds per insn" (Int64.add (measure 0) 15L) (measure 5)

let test_call_tax_charged () =
  let measure tax =
    let cpu = Cpu.create () in
    cpu.Cpu.call_tax <- tax;
    let mem = Memory.create () in
    Memory.map mem ~addr:0x1000L ~len:4096;
    Memory.map mem ~addr:0x70000L ~len:8192;
    Cpu.set cpu Reg.RSP 0x71000L;
    Memory.write_bytes mem 0x1000L
      (Encode.list_to_bytes [ Insn.Call (Insn.Abs 0x1100L); Insn.Hlt ]);
    Memory.write_bytes mem 0x1100L (Encode.list_to_bytes [ Insn.Ret ]);
    cpu.Cpu.rip <- 0x1000L;
    let rec loop () =
      match Exec.step env cpu mem with Exec.Running -> loop () | _ -> ()
    in
    loop ();
    cpu.Cpu.cycles
  in
  (* one call + one ret = 2 taxed instructions *)
  Alcotest.check i64 "call tax" (Int64.add (measure 0) 20L) (measure 10)

let test_run_fuel () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  Memory.write_bytes mem 0x1000L (Encode.list_to_bytes [ Insn.Jmp (Insn.Abs 0x1000L) ]);
  cpu.Cpu.rip <- 0x1000L;
  match Exec.run ~max_insns:100 env cpu mem with
  | Exec.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let expect_bad_instruction insns reason =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  Memory.write_bytes mem 0x1000L (Encode.list_to_bytes (insns @ [ Insn.Hlt ]));
  cpu.Cpu.rip <- 0x1000L;
  let rec loop () =
    match Exec.step env cpu mem with
    | Exec.Running -> loop ()
    | Exec.Faulted (Fault.Bad_instruction (_, msg)) ->
      Alcotest.(check string) "reason" reason msg
    | _ -> Alcotest.fail "expected fault"
  in
  loop ()

let test_div_overflow_faults () =
  (* INT64_MIN / -1 overflows the quotient: x86 raises #DE, same as /0. *)
  expect_bad_instruction
    [
      Insn.Mov (rax, Operand.imm Int64.min_int);
      Insn.Bin (Insn.Idiv, rax, Operand.imm (-1L));
    ]
    "division overflow";
  expect_bad_instruction
    [
      Insn.Mov (rax, Operand.imm Int64.min_int);
      Insn.Bin (Insn.Irem, rax, Operand.imm (-1L));
    ]
    "division overflow"

let test_shift_count_zero_preserves_flags () =
  let cpu, _ =
    run_insns
      [
        Insn.Mov (rax, Operand.imm (-1L));
        Insn.Bin (Insn.Cmp, rax, rax);
        (* both shifts mask to count 0: flags and destination untouched *)
        Insn.Shift (Insn.Shl, rax, 0);
        Insn.Shift (Insn.Shr, rax, 64);
      ]
  in
  Alcotest.(check bool) "ZF preserved across count-0 shifts" true
    cpu.Cpu.flags.Cpu.zf;
  Alcotest.check i64 "destination untouched" (-1L) (Cpu.get cpu Reg.RAX)

let test_neg_min_int_flags () =
  let cpu, _ =
    run_insns [ Insn.Mov (rax, Operand.imm Int64.min_int); Insn.Neg rax ]
  in
  Alcotest.(check bool) "CF set (nonzero source)" true cpu.Cpu.flags.Cpu.cf;
  Alcotest.(check bool) "OF set (INT64_MIN)" true cpu.Cpu.flags.Cpu.of_;
  Alcotest.check i64 "INT64_MIN negates to itself" Int64.min_int
    (Cpu.get cpu Reg.RAX);
  let cpu0, _ = run_insns [ Insn.Mov (rax, Operand.imm 0L); Insn.Neg rax ] in
  Alcotest.(check bool) "CF clear for zero" false cpu0.Cpu.flags.Cpu.cf;
  Alcotest.(check bool) "OF clear for zero" false cpu0.Cpu.flags.Cpu.of_

(* ---- translation cache ------------------------------------------------------ *)

let run_to_halt cpu mem =
  let rec loop n =
    if n > 10000 then Alcotest.fail "runaway program";
    match Exec.step env cpu mem with
    | Exec.Running -> loop (n + 1)
    | Exec.Halted -> ()
    | other -> ignore other; Alcotest.fail "unexpected stop"
  in
  loop 0

let test_decode_cache_invalidation () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  let code v = Encode.list_to_bytes [ Insn.Mov (rax, Operand.imm v); Insn.Hlt ] in
  Memory.write_bytes mem 0x1000L (code 1L);
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  Alcotest.check i64 "first run" 1L (Cpu.get cpu Reg.RAX);
  (* patch the text without invalidating: the stale decode still executes *)
  Memory.write_bytes mem 0x1000L (code 2L);
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  Alcotest.check i64 "stale until invalidated" 1L (Cpu.get cpu Reg.RAX);
  Cpu.invalidate_decode cpu ~addr:0x1000L ~len:(Bytes.length (code 2L));
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  Alcotest.check i64 "patched insn after invalidation" 2L (Cpu.get cpu Reg.RAX)

let test_decode_cache_clone_isolated () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  let code v = Encode.list_to_bytes [ Insn.Mov (rax, Operand.imm v); Insn.Hlt ] in
  Memory.write_bytes mem 0x1000L (code 1L);
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  let child = Cpu.clone cpu in
  (* flushing the child's cache must not flush the parent's *)
  Cpu.invalidate_decode_all child;
  Memory.write_bytes mem 0x1000L (code 9L);
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  Alcotest.check i64 "parent keeps its cached decode" 1L (Cpu.get cpu Reg.RAX);
  child.Cpu.rip <- 0x1000L;
  run_to_halt child mem;
  Alcotest.check i64 "child re-decodes the patched text" 9L
    (Cpu.get child Reg.RAX)

let test_decode_cache_lazy_clone () =
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  let code v = Encode.list_to_bytes [ Insn.Mov (rax, Operand.imm v); Insn.Hlt ] in
  Memory.write_bytes mem 0x1000L (code 1L);
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  let warm_blocks, _ = Tcache.stats cpu.Cpu.tcache in
  let child = Cpu.clone cpu in
  Alcotest.(check bool) "tables aliased after clone" true
    (Tcache.is_shared cpu.Cpu.tcache && Tcache.is_shared child.Cpu.tcache);
  (* re-executing the parent's warm text must not materialise a copy *)
  child.Cpu.rip <- 0x1000L;
  run_to_halt child mem;
  Alcotest.check i64 "child ran the shared decode" 1L (Cpu.get child Reg.RAX);
  Alcotest.(check bool) "still shared after warm re-execution" true
    (Tcache.is_shared child.Cpu.tcache);
  (* a fresh decode in the parent privatises the parent's table only *)
  Memory.write_bytes mem 0x1800L (code 7L);
  cpu.Cpu.rip <- 0x1800L;
  run_to_halt cpu mem;
  Alcotest.(check bool) "parent owns a private table" false
    (Tcache.is_shared cpu.Cpu.tcache);
  Alcotest.(check bool) "child still on the shared table" true
    (Tcache.is_shared child.Cpu.tcache);
  let parent_blocks, _ = Tcache.stats cpu.Cpu.tcache in
  let child_blocks, _ = Tcache.stats child.Cpu.tcache in
  Alcotest.(check bool) "parent gained blocks" true (parent_blocks > warm_blocks);
  Alcotest.(check int) "child did not" warm_blocks child_blocks

let test_cow_patch_text_isolation () =
  (* forked address spaces share text pages CoW; a patch (write +
     decode invalidation) on either side must leave the other running
     its original code *)
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  let code v = Encode.list_to_bytes [ Insn.Mov (rax, Operand.imm v); Insn.Hlt ] in
  let len = Bytes.length (code 1L) in
  Memory.write_bytes mem 0x1000L (code 1L);
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  (* fork: clone the address space and the cpu, as Kernel.fork_child does *)
  let cmem = Memory.clone mem in
  let ccpu = Cpu.clone cpu in
  Memory.write_bytes mem 0x1000L (code 2L);
  Cpu.invalidate_decode cpu ~addr:0x1000L ~len;
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  Alcotest.check i64 "parent executes its patch" 2L (Cpu.get cpu Reg.RAX);
  ccpu.Cpu.rip <- 0x1000L;
  run_to_halt ccpu cmem;
  Alcotest.check i64 "child still runs pre-fork code" 1L (Cpu.get ccpu Reg.RAX);
  Memory.write_bytes cmem 0x1000L (code 3L);
  Cpu.invalidate_decode ccpu ~addr:0x1000L ~len;
  ccpu.Cpu.rip <- 0x1000L;
  run_to_halt ccpu cmem;
  Alcotest.check i64 "child executes its patch" 3L (Cpu.get ccpu Reg.RAX);
  cpu.Cpu.rip <- 0x1000L;
  run_to_halt cpu mem;
  Alcotest.check i64 "parent keeps its own patch" 2L (Cpu.get cpu Reg.RAX)

let test_exec_telemetry () =
  (* the hit/miss/compile/invalidate counters feed the deterministic
     --mem-stats line; pin their exact values on a tiny program *)
  let cpu = Cpu.create () in
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000L ~len:4096;
  Memory.write_bytes mem 0x1000L (Encode.list_to_bytes [ Insn.Nop; Insn.Hlt ]);
  let snap () = Tcache.exec_stats cpu.Cpu.tcache in
  let run_blocks cpu mem =
    cpu.Cpu.rip <- 0x1000L;
    match Exec.run env cpu mem with
    | Exec.Stopped Exec.Halted -> ()
    | _ -> Alcotest.fail "expected hlt"
  in
  Alcotest.(check int) "fresh cache: no misses" 0 (snap ()).Tcache.misses;
  run_blocks cpu mem;
  let first = snap () in
  Alcotest.(check int) "one decode" 1 first.Tcache.misses;
  Alcotest.(check int) "no hits yet" 0 first.Tcache.hits;
  if Compile.enabled () then
    Alcotest.(check int) "block compiled once" 1 first.Tcache.compiles;
  run_blocks cpu mem;
  let second = snap () in
  Alcotest.(check int) "re-run hits the cache" 1 second.Tcache.hits;
  Alcotest.(check int) "no second decode" 1 second.Tcache.misses;
  Alcotest.(check int) "no recompilation" first.Tcache.compiles
    second.Tcache.compiles;
  Cpu.invalidate_decode_all cpu;
  Alcotest.(check int) "invalidation counted" 1 (snap ()).Tcache.invalidated;
  (* the stats record is family-wide: a fork child's decode shows up *)
  let ccpu = Cpu.clone cpu in
  let cmem = Memory.clone mem in
  run_blocks ccpu cmem;
  Alcotest.(check int) "child's decode visible in family stats" 2
    (snap ()).Tcache.misses

let test_cost_model_anchors () =
  Alcotest.(check bool) "rdrand is expensive" true
    (Cost.cycles (Insn.Rdrand Reg.RAX) > 300);
  Alcotest.(check int) "mov is cheap" 1 (Cost.cycles (Insn.Mov (rax, rbx)));
  Alcotest.(check bool) "aes helper cost near AES-NI"
    true
    (Cost.aes_encrypt_call_cycles > 50 && Cost.aes_encrypt_call_cycles < 200)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vm64"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "u32" `Quick test_mem_u32;
          Alcotest.test_case "cross-page access" `Quick test_mem_cross_page;
          Alcotest.test_case "unmapped faults" `Quick test_mem_unmapped_faults;
          Alcotest.test_case "clone isolation" `Quick test_mem_clone_isolated;
          Alcotest.test_case "cross-page u32/u64 slow paths" `Quick
            test_mem_cross_page_u32_u64;
          Alcotest.test_case "cross-page partial-write fault" `Quick
            test_mem_cross_page_fault_partial;
          Alcotest.test_case "mapped bytes" `Quick test_mapped_bytes;
          Alcotest.test_case "cstr_len" `Quick test_cstr_len;
          qc prop_mem_roundtrip;
        ] );
      ( "cow",
        [
          Alcotest.test_case "isolation both directions" `Quick
            test_cow_isolation_both_directions;
          Alcotest.test_case "fork-of-fork chain" `Quick test_cow_fork_chain;
          Alcotest.test_case "memoized-page write-through" `Quick
            test_cow_memoized_page_write_through;
          Alcotest.test_case "resident/shared accounting" `Quick
            test_cow_accounting;
        ] );
      ( "alu",
        [
          Alcotest.test_case "mov imm" `Quick test_mov_imm;
          Alcotest.test_case "arith chain" `Quick test_arith;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero_faults;
          Alcotest.test_case "div overflow" `Quick test_div_overflow_faults;
          Alcotest.test_case "shift count 0 keeps flags" `Quick
            test_shift_count_zero_preserves_flags;
          Alcotest.test_case "neg min_int flags" `Quick test_neg_min_int_flags;
          Alcotest.test_case "signed conditions" `Quick test_flags_and_setcc;
          Alcotest.test_case "unsigned conditions" `Quick test_unsigned_conditions;
          Alcotest.test_case "movb merges" `Quick test_movb_merges;
          Alcotest.test_case "movl zero-extends" `Quick test_movl_zero_extends;
          Alcotest.test_case "lea addressing" `Quick test_lea_addressing;
        ] );
      ( "control",
        [
          Alcotest.test_case "push/pop" `Quick test_push_pop_stack;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "builtin trap" `Quick test_builtin_call_traps;
          Alcotest.test_case "leave" `Quick test_leave;
          Alcotest.test_case "fuel" `Quick test_run_fuel;
        ] );
      ( "special",
        [
          Alcotest.test_case "fs segment" `Quick test_fs_segment;
          Alcotest.test_case "rdrand sets CF" `Quick test_rdrand_sets_cf;
          Alcotest.test_case "rdrand deterministic per seed" `Quick
            test_rdrand_deterministic_per_seed;
          Alcotest.test_case "rdtsc composition" `Quick test_rdtsc_composition;
          Alcotest.test_case "aesenc = crypto" `Quick test_aesenc_matches_crypto;
          Alcotest.test_case "pcmpeq128" `Quick test_pcmpeq128;
          Alcotest.test_case "xmm moves" `Quick test_xmm_moves;
        ] );
      ( "faults+cost",
        [
          Alcotest.test_case "data segfault" `Quick test_exec_faults_reported;
          Alcotest.test_case "fetch segfault" `Quick test_fetch_unmapped;
          Alcotest.test_case "fetch fault retires zero" `Quick
            test_fetch_fault_retires_zero;
          Alcotest.test_case "insn tax" `Quick test_insn_tax_charged;
          Alcotest.test_case "call tax" `Quick test_call_tax_charged;
          Alcotest.test_case "cost anchors" `Quick test_cost_model_anchors;
        ] );
      ( "tcache",
        [
          Alcotest.test_case "invalidation picks up patches" `Quick
            test_decode_cache_invalidation;
          Alcotest.test_case "clone cache isolated" `Quick
            test_decode_cache_clone_isolated;
          Alcotest.test_case "clone is lazy until first mutation" `Quick
            test_decode_cache_lazy_clone;
          Alcotest.test_case "patch_text under CoW fork" `Quick
            test_cow_patch_text_isolation;
          Alcotest.test_case "hit/miss/compile/invalidate telemetry" `Quick
            test_exec_telemetry;
        ] );
    ]
