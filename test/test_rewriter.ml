(* Binary rewriter tests: scanning, layout-preserving patches, static
   hooking, and end-to-end behaviour of instrumented binaries. *)

let compile ?(scheme = Pssp.Scheme.Ssp) ?linkage src =
  Mcc.Driver.compile ~scheme ?linkage (Minic.Parser.parse src)

let vuln = Workload.Vuln.echo_once ~buffer_size:16

(* enqueue + schedule + stop_of: run one process to its next park *)
let kernel_run k p =
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule k;
  Os.Kernel.stop_of p

let guarded_src =
  {|
int f1() { char a[8]; read_input(a); return 0; }
int f2() { char b[24]; b[0] = 1; return b[0]; }
int plain(int x) { return x * 2; }
int main() { f1(); return f2() + plain(3); }
|}

(* ---- scan ------------------------------------------------------------------- *)

let test_scan_counts () =
  let sites = Rewriter.Scan.scan (compile guarded_src) in
  Alcotest.(check int) "two guarded prologues" 2
    (List.length sites.Rewriter.Scan.prologues);
  Alcotest.(check int) "two guarded epilogues" 2
    (List.length sites.Rewriter.Scan.epilogues);
  let funcs = List.map (fun p -> p.Rewriter.Scan.p_func) sites.Rewriter.Scan.prologues in
  Alcotest.(check bool) "f1 found" true (List.mem "f1" funcs);
  Alcotest.(check bool) "f2 found" true (List.mem "f2" funcs);
  Alcotest.(check bool) "plain not flagged" false (List.mem "plain" funcs)

let test_scan_native_finds_nothing () =
  let sites = Rewriter.Scan.scan (compile ~scheme:Pssp.Scheme.None_ guarded_src) in
  Alcotest.(check int) "no prologues" 0 (List.length sites.Rewriter.Scan.prologues);
  Alcotest.(check int) "no epilogues" 0 (List.length sites.Rewriter.Scan.epilogues)

let test_scan_epilogue_target () =
  let image = compile vuln in
  let sites = Rewriter.Scan.scan image in
  match sites.Rewriter.Scan.epilogues with
  | [ e ] ->
    Alcotest.(check bool) "fail target is __stack_chk_fail" true
      (Os.Glibc.name_of_addr e.Rewriter.Scan.e_fail_target = Some "__stack_chk_fail")
  | _ -> Alcotest.fail "expected one epilogue"

(* ---- instrument (dynamic) ------------------------------------------------------ *)

let test_instrument_dynamic_report () =
  let image = compile guarded_src in
  let _, report = Rewriter.Driver.instrument image in
  Alcotest.(check int) "prologues" 2 report.Rewriter.Driver.prologues_patched;
  Alcotest.(check int) "epilogues" 2 report.Rewriter.Driver.epilogues_patched;
  Alcotest.(check int) "no stubs in dynamic" 0 report.Rewriter.Driver.stubs_hooked;
  Alcotest.(check int) "zero expansion (Table II)" 0 report.Rewriter.Driver.bytes_added

let test_instrument_preserves_layout () =
  let image = compile guarded_src in
  let patched, _ = Rewriter.Driver.instrument image in
  Alcotest.(check int) "same text size"
    (Bytes.length image.Os.Image.text)
    (Bytes.length patched.Os.Image.text);
  (* every symbol keeps its address and size *)
  List.iter
    (fun (s : Os.Image.symbol) ->
      let s' = Os.Image.find_symbol_exn patched s.Os.Image.sym_name in
      Alcotest.(check bool) "symbol stable" true
        (s'.Os.Image.sym_addr = s.Os.Image.sym_addr
        && s'.Os.Image.sym_size = s.Os.Image.sym_size))
    image.Os.Image.symbols

let test_instrument_does_not_mutate_input () =
  let image = compile vuln in
  let before = Bytes.copy image.Os.Image.text in
  let _ = Rewriter.Driver.instrument image in
  Alcotest.(check bool) "input untouched" true (Bytes.equal before image.Os.Image.text)

let test_instrumented_prologue_reads_shadow () =
  let image = compile vuln in
  let patched, _ = Rewriter.Driver.instrument image in
  let listing = Os.Image.disassemble_symbol patched "handle" in
  let reads disp =
    List.exists
      (fun (_, i) ->
        match i with
        | Isa.Insn.Mov (Isa.Operand.Reg Isa.Reg.RAX, Isa.Operand.Mem m) ->
          m.Isa.Operand.seg_fs && m.Isa.Operand.disp = disp
        | _ -> false)
      listing
  in
  Alcotest.(check bool) "reads %fs:0x2a8 after patch" true (reads 0x2a8L);
  Alcotest.(check bool) "no %fs:0x28 prologue load left" false (reads 0x28L)

let test_instrumented_runs_and_detects () =
  let patched, _ = Rewriter.Driver.instrument (compile vuln) in
  let preload = Rewriter.Driver.required_preload patched in
  (* benign *)
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~input:(Bytes.of_string "ok") ~preload patched in
  (match kernel_run k p with
  | Os.Kernel.Stop_exit 0 -> ()
  | other -> Alcotest.failf "benign: %s" (Os.Kernel.stop_to_string other));
  (* smash *)
  let k2 = Os.Kernel.create () in
  let p2 = Os.Kernel.spawn k2 ~input:(Bytes.make 48 'A') ~preload patched in
  match kernel_run k2 p2 with
  | Os.Kernel.Stop_kill (Os.Process.Sigabrt, _) -> ()
  | other -> Alcotest.failf "smash missed: %s" (Os.Kernel.stop_to_string other)

let test_instrument_is_effectively_idempotent () =
  (* a patched binary has no SSP patterns left to find *)
  let patched, _ = Rewriter.Driver.instrument (compile vuln) in
  let sites = Rewriter.Scan.scan patched in
  Alcotest.(check int) "no prologues left" 0 (List.length sites.Rewriter.Scan.prologues);
  Alcotest.(check int) "no epilogues left" 0 (List.length sites.Rewriter.Scan.epilogues)

(* ---- instrument (static) --------------------------------------------------------- *)

let test_instrument_static () =
  let image = compile ~linkage:Os.Image.Static vuln in
  let patched, report = Rewriter.Driver.instrument image in
  Alcotest.(check int) "three stubs hooked" 3 report.Rewriter.Driver.stubs_hooked;
  Alcotest.(check bool) "expansion > 0 (Table II)" true
    (report.Rewriter.Driver.bytes_added > 0);
  List.iter
    (fun sym ->
      Alcotest.(check bool) (sym ^ " added") true
        (Os.Image.find_symbol patched sym <> None))
    [ "__pssp_stack_chk_fail"; "__pssp_fork"; "__pssp_ctor" ];
  (* runs without any preload: the added code is self-contained *)
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~input:(Bytes.of_string "hi") patched in
  (match kernel_run k p with
  | Os.Kernel.Stop_exit 0 -> ()
  | other -> Alcotest.failf "static benign: %s" (Os.Kernel.stop_to_string other));
  let k2 = Os.Kernel.create () in
  let p2 = Os.Kernel.spawn k2 ~input:(Bytes.make 48 'A') patched in
  match kernel_run k2 p2 with
  | Os.Kernel.Stop_kill (Os.Process.Sigabrt, _) -> ()
  | other -> Alcotest.failf "static smash missed: %s" (Os.Kernel.stop_to_string other)

let test_static_fork_refreshes_shadow () =
  let image = compile ~linkage:Os.Image.Static (Workload.Vuln.fork_server ~buffer_size:16) in
  let patched, _ = Rewriter.Driver.instrument image in
  let oracle = Attack.Oracle.create patched in
  (* observe two children: their packed shadow words must differ and both
     must verify against C *)
  let shadow_of_child () =
    match Attack.Oracle.query oracle (Bytes.of_string "x") with
    | Attack.Oracle.Survived _ -> ()
    | _ -> Alcotest.fail "benign request crashed"
  in
  shadow_of_child ();
  shadow_of_child ();
  Alcotest.(check bool) "server survived" true (Attack.Oracle.server_alive oracle)

(* ---- patch safety ------------------------------------------------------------------- *)

let test_patch_rejects_out_of_text () =
  let image = compile vuln in
  Alcotest.(check bool) "raises on bad address" true
    (match Rewriter.Patch.write_code_at image 0x1L [ Isa.Insn.Nop ] with
    | exception Rewriter.Patch.Patch_error _ -> true
    | () -> false)

let test_required_preload_mapping () =
  let dynamic, _ = Rewriter.Driver.instrument (compile vuln) in
  let static_, _ =
    Rewriter.Driver.instrument (compile ~linkage:Os.Image.Static vuln)
  in
  Alcotest.(check bool) "dynamic wants packed preload" true
    (Rewriter.Driver.required_preload dynamic = Os.Preload.Pssp_packed);
  Alcotest.(check bool) "static is self-contained" true
    (Rewriter.Driver.required_preload static_ = Os.Preload.No_preload)

let () =
  Alcotest.run "rewriter"
    [
      ( "scan",
        [
          Alcotest.test_case "site counts" `Quick test_scan_counts;
          Alcotest.test_case "native finds nothing" `Quick test_scan_native_finds_nothing;
          Alcotest.test_case "epilogue fail target" `Quick test_scan_epilogue_target;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "report" `Quick test_instrument_dynamic_report;
          Alcotest.test_case "layout preserved (SV-C)" `Quick test_instrument_preserves_layout;
          Alcotest.test_case "input image untouched" `Quick
            test_instrument_does_not_mutate_input;
          Alcotest.test_case "prologue retargeted (Code 5)" `Quick
            test_instrumented_prologue_reads_shadow;
          Alcotest.test_case "runs and detects" `Quick test_instrumented_runs_and_detects;
          Alcotest.test_case "nothing left to patch" `Quick
            test_instrument_is_effectively_idempotent;
        ] );
      ( "static",
        [
          Alcotest.test_case "section + hooks (SV-D)" `Quick test_instrument_static;
          Alcotest.test_case "fork server stable" `Quick test_static_fork_refreshes_shadow;
        ] );
      ( "safety",
        [
          Alcotest.test_case "patch bounds" `Quick test_patch_rejects_out_of_text;
          Alcotest.test_case "preload mapping" `Quick test_required_preload_mapping;
        ] );
    ]
