(* Unit and property tests for the util library. *)

let check_i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

let contains_substring ~affix s =
  let n = String.length affix in
  let rec go i =
    if i + n > String.length s then false
    else if String.sub s i n = affix then true
    else go (i + 1)
  in
  go 0

(* ---- Prng --------------------------------------------------------------- *)

let test_splitmix_reference () =
  (* Reference values for SplitMix64 with seed 0 (widely published). *)
  let sm = Util.Prng.Splitmix.create 0L in
  Alcotest.check check_i64 "first" 0xE220A8397B1DCDAFL (Util.Prng.Splitmix.next sm);
  Alcotest.check check_i64 "second" 0x6E789E6AA1B965F4L (Util.Prng.Splitmix.next sm);
  Alcotest.check check_i64 "third" 0x06C45D188009454FL (Util.Prng.Splitmix.next sm)

let test_prng_deterministic () =
  let a = Util.Prng.create 42L in
  let b = Util.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.check check_i64 "same stream" (Util.Prng.next64 a) (Util.Prng.next64 b)
  done

let test_prng_copy_independent () =
  let a = Util.Prng.create 7L in
  let b = Util.Prng.copy a in
  let va = Util.Prng.next64 a in
  let vb = Util.Prng.next64 b in
  Alcotest.check check_i64 "copy continues identically" va vb;
  ignore (Util.Prng.next64 a);
  let va2 = Util.Prng.next64 a in
  let vb2 = Util.Prng.next64 b in
  Alcotest.(check bool) "diverged" false (Int64.equal va2 vb2)

let test_prng_split_differs () =
  let a = Util.Prng.create 7L in
  let child = Util.Prng.split a in
  let xs = List.init 10 (fun _ -> Util.Prng.next64 a) in
  let ys = List.init 10 (fun _ -> Util.Prng.next64 child) in
  Alcotest.(check bool) "independent streams" false (xs = ys)

let test_prng_zero_state_rejected () =
  Alcotest.check_raises "all-zero state"
    (Invalid_argument "Prng.of_state: all-zero state") (fun () ->
      ignore (Util.Prng.of_state (0L, 0L, 0L, 0L)))

let test_prng_int_bounds () =
  let rng = Util.Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Util.Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Util.Prng.int rng 0))

let test_prng_float_range () =
  let rng = Util.Prng.create 2L in
  for _ = 1 to 1000 do
    let v = Util.Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_bytes_len () =
  let rng = Util.Prng.create 3L in
  Alcotest.(check int) "length" 13 (Bytes.length (Util.Prng.bytes rng 13))

let test_shuffle_permutation () =
  let rng = Util.Prng.create 4L in
  let a = Array.init 50 (fun i -> i) in
  Util.Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let prop_bits_range =
  QCheck.Test.make ~name:"Prng.bits fits width" ~count:500
    QCheck.(pair (int_range 1 63) int64)
    (fun (n, seed) ->
      let rng = Util.Prng.create seed in
      let v = Util.Prng.bits rng n in
      Int64.unsigned_compare v (Int64.shift_left 1L n) < 0)

(* ---- Stats -------------------------------------------------------------- *)

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_mean_stddev () =
  Alcotest.(check bool) "mean" true (feq (Util.Stats.mean [| 1.0; 2.0; 3.0 |]) 2.0);
  Alcotest.(check bool) "stddev" true
    (feq
       (Util.Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])
       2.138089935299395);
  Alcotest.(check bool) "singleton stddev" true (feq (Util.Stats.stddev [| 5.0 |]) 0.0)

let test_median_percentile () =
  Alcotest.(check bool) "odd median" true (feq (Util.Stats.median [| 3.0; 1.0; 2.0 |]) 2.0);
  Alcotest.(check bool) "even median" true
    (feq (Util.Stats.median [| 4.0; 1.0; 2.0; 3.0 |]) 2.5);
  Alcotest.(check bool) "p0 is min" true
    (feq (Util.Stats.percentile [| 9.0; 1.0; 5.0 |] 0.0) 1.0);
  Alcotest.(check bool) "p100 is max" true
    (feq (Util.Stats.percentile [| 9.0; 1.0; 5.0 |] 100.0) 9.0)

let test_geomean () =
  Alcotest.(check bool) "geomean" true (feq (Util.Stats.geomean [| 1.0; 4.0 |]) 2.0);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geomean: nonpositive input") (fun () ->
      ignore (Util.Stats.geomean [| 1.0; 0.0 |]))

let test_overhead () =
  Alcotest.(check bool) "10% overhead" true
    (feq (Util.Stats.overhead_pct ~baseline:100.0 ~measured:110.0) 10.0);
  Alcotest.(check bool) "negative" true
    (feq (Util.Stats.overhead_pct ~baseline:100.0 ~measured:90.0) (-10.0))

let test_chi_square () =
  let v =
    Util.Stats.chi_square ~expected:[| 10.0; 10.0 |] ~observed:[| 8.0; 12.0 |]
  in
  Alcotest.(check bool) "chi2" true (feq v 0.8);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Stats.chi_square: length mismatch") (fun () ->
      ignore (Util.Stats.chi_square ~expected:[| 1.0 |] ~observed:[| 1.0; 2.0 |]))

let test_chi_square_uniform_detects_bias () =
  let biased = Array.make 256 10 in
  biased.(0) <- 4000;
  Alcotest.(check bool) "bias detected" true
    (Util.Stats.chi_square_uniform ~observed:biased
    > Util.Stats.chi_square_critical_256_p001)

let test_chi_square_uniform_rejects_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.chi_square_uniform: empty array") (fun () ->
      ignore (Util.Stats.chi_square_uniform ~observed:[||]));
  Alcotest.check_raises "all-zero counts"
    (Invalid_argument
       "Stats.chi_square_uniform: no observations (all counts zero)")
    (fun () -> ignore (Util.Stats.chi_square_uniform ~observed:(Array.make 256 0)))

let test_histogram () =
  let h =
    Util.Stats.histogram ~buckets:4 ~lo:0.0 ~hi:4.0
      [| 0.5; 1.5; 1.7; 3.9; -1.0; 99.0 |]
  in
  Alcotest.(check (array int)) "counts" [| 2; 2; 0; 2 |] h

let test_histogram_rejects_nan () =
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Stats.histogram: NaN sample") (fun () ->
      ignore
        (Util.Stats.histogram ~buckets:4 ~lo:0.0 ~hi:4.0 [| 1.0; Float.nan |]))

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean between min and max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 40) (float_bound_inclusive 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      let m = Util.Stats.mean a in
      m >= Util.Stats.min a -. 1e-9 && m <= Util.Stats.max a +. 1e-9)

(* ---- Hex ---------------------------------------------------------------- *)

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\x01\xfe\xff canary" in
  Alcotest.(check string) "roundtrip" (Bytes.to_string b)
    (Bytes.to_string (Util.Hex.to_bytes (Util.Hex.of_bytes b)))

let test_hex_int64 () =
  Alcotest.(check string) "padded" "00000000deadbeef" (Util.Hex.int64 0xDEADBEEFL);
  Alcotest.(check string) "pretty" "0xdeadbeef" (Util.Hex.int64_pretty 0xDEADBEEFL)

let test_hex_bad_input () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.to_bytes: odd length")
    (fun () -> ignore (Util.Hex.to_bytes "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.to_bytes: bad digit")
    (fun () -> ignore (Util.Hex.to_bytes "zz"))

let test_hex_dump_shape () =
  let d = Util.Hex.dump ~base:0x1000L (Bytes.make 20 'A') in
  Alcotest.(check bool) "has base address" true
    (String.length d > 8 && String.sub d 0 8 = "00001000");
  Alcotest.(check int) "two lines" 2
    (List.length (String.split_on_char '\n' (String.trim d)))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:300 QCheck.string (fun s ->
      Bytes.to_string (Util.Hex.to_bytes (Util.Hex.of_string s)) = s)

(* ---- Table -------------------------------------------------------------- *)

let test_table_renders () =
  let t = Util.Table.create ~title:"T" [ "a"; "bb" ] in
  Util.Table.add_row t [ "x"; "1" ];
  Util.Table.add_separator t;
  Util.Table.add_row t [ "longer"; "2" ];
  let s = Util.Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains row" true (contains_substring ~affix:"longer" s)

let test_table_arity_checked () =
  let t = Util.Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity") (fun () ->
      Util.Table.add_row t [ "only one" ])

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Util.Table.cell_float 3.14159);
  Alcotest.(check string) "pct" "2.50%" (Util.Table.cell_pct 2.5);
  Alcotest.(check string) "digits" "1.2346" (Util.Table.cell_float ~digits:4 1.23456)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "splitmix reference vectors" `Quick test_splitmix_reference;
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split differs" `Quick test_prng_split_differs;
          Alcotest.test_case "zero state rejected" `Quick test_prng_zero_state_rejected;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bytes length" `Quick test_prng_bytes_len;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
          qc prop_bits_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "overhead" `Quick test_overhead;
          Alcotest.test_case "chi-square" `Quick test_chi_square;
          Alcotest.test_case "chi-square detects bias" `Quick
            test_chi_square_uniform_detects_bias;
          Alcotest.test_case "chi-square uniform rejects empty" `Quick
            test_chi_square_uniform_rejects_empty;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram rejects NaN" `Quick
            test_histogram_rejects_nan;
          qc prop_mean_bounded;
        ] );
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "int64 forms" `Quick test_hex_int64;
          Alcotest.test_case "bad input" `Quick test_hex_bad_input;
          Alcotest.test_case "dump shape" `Quick test_hex_dump_shape;
          qc prop_hex_roundtrip;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "arity checked" `Quick test_table_arity_checked;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
    ]
