(* Workload validity: every benchmark parses, compiles under every
   scheme, runs deterministically to exit 0, and emits identical output
   under every protection scheme. *)

let schemes_to_check =
  [ Pssp.Scheme.None_; Pssp.Scheme.Ssp; Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_owf ]

(* enqueue + schedule + stop_of: run one process to its next park *)
let kernel_run ?fuel k p =
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule ?fuel k;
  Os.Kernel.stop_of p

let run_bench bench scheme =
  let image = Mcc.Driver.compile ~scheme (Workload.Spec.parse bench) in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:(Mcc.Driver.preload_for scheme) image in
  match kernel_run ~fuel:80_000_000 k p with
  | Os.Kernel.Stop_exit 0 -> Os.Process.stdout p
  | other ->
    Alcotest.failf "%s/%s: %s" bench.Workload.Spec.bench_name
      (Pssp.Scheme.name scheme) (Os.Kernel.stop_to_string other)

let test_suite_complete () =
  Alcotest.(check int) "28 benchmarks" 28 (List.length Workload.Spec.all);
  Alcotest.(check int) "12 int" 12
    (List.length (List.filter (fun b -> b.Workload.Spec.suite = `Int) Workload.Spec.all));
  Alcotest.(check int) "16 fp" 16
    (List.length (List.filter (fun b -> b.Workload.Spec.suite = `Fp) Workload.Spec.all))

let test_names_unique () =
  let names = Workload.Spec.names in
  Alcotest.(check int) "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  Alcotest.(check bool) "finds bzip2" true (Workload.Spec.find "bzip2" <> None);
  Alcotest.(check bool) "unknown" true (Workload.Spec.find "doom" = None)

let bench_case bench =
  Alcotest.test_case bench.Workload.Spec.bench_name `Slow (fun () ->
      let outputs = List.map (run_bench bench) schemes_to_check in
      match outputs with
      | reference :: rest ->
        Alcotest.(check bool) "nonempty checksum" true (String.length reference > 1);
        List.iter
          (fun out ->
            Alcotest.(check string) "schemes agree on output" reference out)
          rest
      | [] -> assert false)

let test_benchmarks_deterministic () =
  let b = Option.get (Workload.Spec.find "perlbench") in
  Alcotest.(check string) "two runs agree"
    (run_bench b Pssp.Scheme.None_)
    (run_bench b Pssp.Scheme.None_)

let test_guarded_functions_exist () =
  (* each benchmark must have at least one canary-guarded function, or
     Fig. 5 would measure nothing *)
  List.iter
    (fun bench ->
      let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp (Workload.Spec.parse bench) in
      let sites = Rewriter.Scan.scan image in
      Alcotest.(check bool)
        (bench.Workload.Spec.bench_name ^ " has guards")
        true
        (List.length sites.Rewriter.Scan.prologues > 0))
    Workload.Spec.all

(* ---- servers ------------------------------------------------------------------- *)

let drain_conn conn =
  let buf = Buffer.create 64 in
  let rec go () =
    match Net.Conn.client_recv conn ~max:4096 with
    | Net.Conn.Data b ->
      Buffer.add_bytes buf b;
      go ()
    | Net.Conn.Would_block | Net.Conn.Eof | Net.Conn.Closed -> ()
  in
  go ();
  Buffer.contents buf

(* The PR 5 servers read requests from a connection fd and write the
   response back over it, so the test plays client: connect, send the
   request, half-close, run the kernel, read the response. *)
let server_case (profile : Workload.Servers.profile) =
  Alcotest.test_case profile.Workload.Servers.profile_name `Slow (fun () ->
      let image =
        Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
          (Minic.Parser.parse profile.Workload.Servers.source)
      in
      let k = Os.Kernel.create () in
      let p = Os.Kernel.spawn k ~preload:Os.Preload.Pssp_wide image in
      (match kernel_run k p with
      | Os.Kernel.Stop_accept -> ()
      | other -> Alcotest.failf "no accept: %s" (Os.Kernel.stop_to_string other));
      List.iter
        (fun req ->
          match Os.Kernel.connect k p with
          | None -> Alcotest.fail "connection refused"
          | Some conn -> (
            let now = Os.Kernel.now k in
            Alcotest.(check bool) "request accepted by conn" true
              (Net.Conn.client_send conn ~now req);
            Net.Conn.client_shutdown conn ~now;
            match kernel_run k p with
            | Os.Kernel.Stop_accept -> (
              Os.Kernel.reap_zombies k p;
              match Os.Kernel.last_reaped k with
              | Some child ->
                Alcotest.(check bool) "child exited cleanly" true
                  (child.Os.Process.status = Os.Process.Exited 0);
                Alcotest.(check bool) "child produced a response" true
                  (String.length (drain_conn conn) > 0)
              | None -> Alcotest.fail "no child")
            | other ->
              Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other)))
        profile.Workload.Servers.requests)

(* ---- victims ------------------------------------------------------------------- *)

let test_victims_parse_and_typecheck () =
  List.iter
    (fun src -> ignore (Minic.Typecheck.check (Minic.Parser.parse src)))
    [
      Workload.Vuln.fork_server ~buffer_size:16;
      Workload.Vuln.fork_server ~buffer_size:64;
      Workload.Vuln.echo_once ~buffer_size:16;
      Workload.Vuln.raf_correctness_probe;
      Workload.Vuln.leaky_server;
      Workload.Vuln.lv_stealth_victim;
    ]

let test_raf_probe_discriminates () =
  let image scheme =
    Mcc.Driver.compile ~scheme (Minic.Parser.parse Workload.Vuln.raf_correctness_probe)
  in
  let child_status scheme =
    let k = Os.Kernel.create () in
    let p = Os.Kernel.spawn k ~preload:(Mcc.Driver.preload_for scheme) (image scheme) in
    ignore (kernel_run k p);
    match Os.Kernel.last_reaped k with
    | Some child -> child.Os.Process.status
    | None -> Alcotest.fail "no child"
  in
  (* correct schemes: the child exits 7 through inherited frames *)
  List.iter
    (fun scheme ->
      Alcotest.(check bool)
        (Pssp.Scheme.name scheme ^ " correct")
        true
        (child_status scheme = Os.Process.Exited 7))
    [ Pssp.Scheme.Ssp; Pssp.Scheme.Pssp; Pssp.Scheme.Dynaguard; Pssp.Scheme.Dcr ];
  (* RAF-SSP falsely aborts the child (the Table I correctness flaw) *)
  match child_status Pssp.Scheme.Raf_ssp with
  | Os.Process.Killed (Os.Process.Sigabrt, _) -> ()
  | other -> Alcotest.failf "RAF child: %s" (Os.Process.status_to_string other)

let () =
  Alcotest.run "workload"
    [
      ( "registry",
        [
          Alcotest.test_case "28 programs" `Quick test_suite_complete;
          Alcotest.test_case "unique names" `Quick test_names_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "deterministic" `Slow test_benchmarks_deterministic;
          Alcotest.test_case "all have guarded functions" `Slow
            test_guarded_functions_exist;
        ] );
      ("benchmarks", List.map bench_case Workload.Spec.all);
      ("servers", List.map server_case (Workload.Servers.web @ Workload.Servers.db));
      ( "threaded servers",
        List.map
          (fun p -> server_case (Workload.Servers.threaded p))
          (Workload.Servers.web @ Workload.Servers.db) );
      ( "victims",
        [
          Alcotest.test_case "parse and typecheck" `Quick test_victims_parse_and_typecheck;
          Alcotest.test_case "RAF probe discriminates" `Slow test_raf_probe_discriminates;
        ] );
    ]
