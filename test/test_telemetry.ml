(* Telemetry subsystem: registry semantics under concurrency, trace span
   nesting, profiler attribution, registry reads over a real workload,
   the schema-2 JSON files, and the shared CLI specs. *)

let reg_int = Telemetry.Registry.read_int

(* ---- registry ------------------------------------------------------------- *)

let test_counter_concurrent () =
  let c = Telemetry.Registry.counter "test.concurrent" in
  Telemetry.Registry.reset "test.concurrent";
  let per_task = 25_000 in
  let tasks = List.init 8 Fun.id in
  ignore
    (Harness.Pool.map ~jobs:4
       (fun _ ->
         for _ = 1 to per_task do
           Telemetry.Registry.incr c
         done)
       tasks);
  Alcotest.(check int)
    "increments from 4 domains sum exactly"
    (per_task * List.length tasks)
    (Telemetry.Registry.counter_value c);
  Alcotest.(check int) "read_int sees the same total" (per_task * List.length tasks)
    (reg_int "test.concurrent")

let test_counter_kind_clash () =
  ignore (Telemetry.Registry.counter "test.kind");
  Alcotest.check_raises "histogram over a counter name"
    (Invalid_argument "Registry.histogram: test.kind is not a histogram")
    (fun () -> ignore (Telemetry.Registry.histogram "test.kind" ~bounds:[| 1 |]))

let test_histogram_flatten () =
  let h = Telemetry.Registry.histogram "test.hist" ~bounds:[| 10; 100 |] in
  Telemetry.Registry.reset "test.hist";
  List.iter (Telemetry.Registry.observe h) [ 5; 50; 500 ];
  let snap = Telemetry.Registry.snapshot () in
  let get name =
    match List.assoc_opt name snap with
    | Some v -> v
    | None -> Alcotest.failf "snapshot is missing %s" name
  in
  Alcotest.(check int) "le=10 bucket" 1 (get "test.hist/le=10");
  Alcotest.(check int) "le=100 bucket" 1 (get "test.hist/le=100");
  Alcotest.(check int) "overflow bucket" 1 (get "test.hist/le=inf");
  Alcotest.(check int) "count" 3 (get "test.hist/count");
  Alcotest.(check int) "sum" 555 (get "test.hist/sum");
  Alcotest.(check int) "read_int = observation count" 3 (reg_int "test.hist")

let test_snapshot_sorted () =
  let snap = Telemetry.Registry.snapshot () in
  let names = List.map fst snap in
  Alcotest.(check (list string)) "snapshot is name-sorted" (List.sort compare names) names

(* ---- registry reads over a real workload ---------------------------------- *)

let run_small_fork_workload () =
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
      (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size:16))
  in
  let oracle = Attack.Oracle.create ~preload:Os.Preload.Pssp_wide image in
  for _ = 1 to 5 do
    ignore (Attack.Oracle.query oracle (Bytes.make 17 'A'))
  done

(* PR 5 removed the deprecated per-module stats wrappers; the registry
   names are now the only interface, so pin down that a real workload
   populates them. *)
let test_registry_reads () =
  Telemetry.Registry.reset Vm64.Memory.metric_clones;
  Telemetry.Registry.reset Vm64.Tcache.metric_hits;
  Telemetry.Registry.reset Os.Kernel.metric_forks;
  run_small_fork_workload ();
  Alcotest.(check bool)
    "workload forked (os.kernel.forks)" true
    (reg_int Os.Kernel.metric_forks > 0);
  Alcotest.(check bool)
    "fork path cloned memories (vm.mem.clones)" true
    (reg_int Vm64.Memory.metric_clones > 0);
  Alcotest.(check bool)
    "execution hit the tcache (vm.tcache.hits)" true
    (reg_int Vm64.Tcache.metric_hits > 0);
  Telemetry.Registry.reset Os.Kernel.metric_forks;
  Alcotest.(check int) "reset zeroes os.kernel.forks" 0
    (reg_int Os.Kernel.metric_forks)

(* ---- trace spans ---------------------------------------------------------- *)

let parse_json line =
  match Util.Json.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable trace line %S: %s" line e

let jstr j name =
  match Option.bind (Util.Json.member name j) Util.Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %s" name

let jint j name =
  match Option.bind (Util.Json.member name j) Util.Json.to_int_opt with
  | Some n -> n
  | None -> Alcotest.failf "missing int field %s" name

let test_span_nesting () =
  let sink, lines = Telemetry.Trace.memory_sink () in
  Telemetry.Trace.set_sink (Some sink);
  let cyc = ref 0L in
  let next_cycle () =
    cyc := Int64.add !cyc 10L;
    !cyc
  in
  Telemetry.Trace.with_span "outer" ~cycles:next_cycle (fun () ->
      Telemetry.Trace.with_span "inner" ~cycles:next_cycle (fun () -> ());
      Telemetry.Trace.instant "tick" ~cycles:99L);
  Telemetry.Trace.set_sink None;
  match List.map parse_json (lines ()) with
  | [ inner; tick; outer ] ->
    Alcotest.(check string) "inner emitted first" "inner" (jstr inner "name");
    Alcotest.(check int) "inner depth" 1 (jint inner "depth");
    Alcotest.(check string) "instant in the middle" "tick" (jstr tick "name");
    Alcotest.(check string) "instant kind" "instant" (jstr tick "ev");
    Alcotest.(check int) "instant cycle stamp" 99 (jint tick "cyc");
    Alcotest.(check string) "outer emitted last" "outer" (jstr outer "name");
    Alcotest.(check int) "outer depth" 0 (jint outer "depth");
    Alcotest.(check bool) "outer brackets inner" true
      (jint outer "cyc0" < jint inner "cyc0" && jint inner "cyc1" < jint outer "cyc1")
  | other -> Alcotest.failf "expected 3 trace lines, got %d" (List.length other)

let test_trace_disabled_is_free () =
  Alcotest.(check bool) "no sink => disabled" false (Telemetry.Trace.enabled ());
  (* no sink: spans run their body and emit nothing *)
  let r = Telemetry.Trace.with_span "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "body result passes through" 42 r

(* ---- profiler ------------------------------------------------------------- *)

let two_function_source =
  {|
int hot(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i * 3;
    i = i + 1;
  }
  return acc;
}

int cold(int n) {
  return n + 1;
}

int main() {
  int total = 0;
  int j = 0;
  while (j < 50) {
    total = total + hot(200);
    total = total + cold(j);
    j = j + 1;
  }
  return 0;
}
|}

let test_profile_attribution () =
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
      (Minic.Parser.parse two_function_source)
  in
  Telemetry.Profile.reset ();
  Telemetry.Profile.set_enabled true;
  let kernel = Os.Kernel.create () in
  let proc = Os.Kernel.spawn kernel ~preload:Os.Preload.Pssp_wide image in
  Os.Kernel.enqueue kernel proc;
  Os.Kernel.schedule kernel;
  let stop = Os.Kernel.stop_of proc in
  Telemetry.Profile.set_enabled false;
  Alcotest.(check string) "program exits cleanly" "exited 0"
    (Os.Kernel.stop_to_string stop);
  let rows = Telemetry.Profile.dump () in
  Alcotest.(check bool) "profiler sampled blocks" true (rows <> []);
  let resolve addr =
    Option.map (fun s -> s.Os.Image.sym_name) (Os.Image.symbol_covering image addr)
  in
  (match Telemetry.Profile.attribute ~resolve rows with
  | (name, cycles, blocks) :: rest ->
    Alcotest.(check string) "hottest symbol is hot()" "hot" name;
    Alcotest.(check bool) "hot dominates" true
      (List.for_all (fun (_, c, _) -> c <= cycles) rest);
    Alcotest.(check bool) "counts are positive" true (cycles > 0 && blocks > 0)
  | [] -> Alcotest.fail "no attributed rows");
  let report = Telemetry.Profile.report ~resolve ~top:3 () in
  Alcotest.(check bool) "report names hot()" true
    (Astring.String.is_infix ~affix:"hot" report);
  Telemetry.Profile.reset ();
  Alcotest.(check (list (triple string int int))) "reset empties the tables" []
    (Telemetry.Profile.attribute (Telemetry.Profile.dump ()))

(* ---- Json / Benchfile ----------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Util.Json.Obj
      [
        ("s", Util.Json.String "a \"quoted\"\nline\twith \\ bits");
        ("i", Util.Json.Int (-42));
        ("f", Util.Json.Float 0.125);
        ("b", Util.Json.Bool true);
        ("n", Util.Json.Null);
        ("l", Util.Json.List [ Util.Json.Int 1; Util.Json.Int 2 ]);
      ]
  in
  match Util.Json.parse (Util.Json.to_string j) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok j' ->
    Alcotest.(check bool) "round-trips structurally" true (j = j');
    Alcotest.(check (option string)) "string survives escaping"
      (Some "a \"quoted\"\nline\twith \\ bits")
      (Option.bind (Util.Json.member "s" j') Util.Json.to_string_opt)

let test_benchfile_roundtrip () =
  let t =
    Util.Benchfile.make ~pr:4 ~jobs:2 ~compile_tier:2
      [
        Util.Benchfile.campaign ~name:"effectiveness" ~wall_s:1.25
          [ ("a.count", 3); ("b.count", 0) ];
      ]
  in
  let file = Filename.temp_file "bench" ".json" in
  Util.Benchfile.write file t;
  (match Util.Benchfile.read file with
  | Ok t' -> Alcotest.(check bool) "campaign record round-trips" true (t = t')
  | Error e -> Alcotest.failf "read failed: %s" e);
  Sys.remove file;
  (* a shard file: provenance and hex-encoded cell rows survive *)
  let sharded =
    Util.Benchfile.make ~shards:4 ~shard:1 ~pr:9 ~jobs:1 ~compile_tier:3
      [
        Util.Benchfile.campaign ~context:"budget=500"
          ~cells:[ (1, "00ff10"); (5, "abcd") ]
          ~name:"effectiveness" ~wall_s:0.5
          [ ("a.count", 7) ];
      ]
  in
  let sfile = Filename.temp_file "shard" ".json" in
  Util.Benchfile.write sfile sharded;
  (match Util.Benchfile.read sfile with
  | Ok t' -> Alcotest.(check bool) "shard file round-trips" true (sharded = t')
  | Error e -> Alcotest.failf "shard read failed: %s" e);
  Sys.remove sfile;
  let metrics = [ ("x", 1); ("y", 2) ] in
  let mfile = Filename.temp_file "metrics" ".json" in
  Util.Benchfile.write_metrics mfile metrics;
  (match Util.Benchfile.read_metrics mfile with
  | Ok m -> Alcotest.(check (list (pair string int))) "snapshot round-trips" metrics m
  | Error e -> Alcotest.failf "read_metrics failed: %s" e);
  Sys.remove mfile

let test_benchfile_rejects_wrong_schema () =
  let file = Filename.temp_file "bad" ".json" in
  let oc = open_out file in
  output_string oc "{\"schema\": 1, \"metrics\": {}}";
  close_out oc;
  (match Util.Benchfile.read_metrics file with
  | Ok _ -> Alcotest.fail "schema 1 must be rejected"
  | Error _ -> ());
  Sys.remove file

(* ---- Harness.Cli ---------------------------------------------------------- *)

let specs_for jobs budget tier =
  [
    Harness.Cli.nonneg_int ~name:"--jobs" ~docv:"N" ~doc:"jobs" (fun v -> jobs := v);
    Harness.Cli.pos_int ~name:"--budget" ~docv:"N" ~doc:"budget" (fun v -> budget := v);
    Harness.Cli.tier_value ~name:"--compile-tier" ~doc:"tier" (fun v -> tier := v);
  ]

let check_bad specs args expected =
  match Harness.Cli.parse specs args with
  | Harness.Cli.Bad msg -> Alcotest.(check string) "error message" expected msg
  | Harness.Cli.Positionals _ -> Alcotest.failf "%s parsed" (String.concat " " args)
  | Harness.Cli.Help -> Alcotest.fail "unexpected help"

let test_cli_parse () =
  let jobs = ref 1 and budget = ref 0 and tier = ref 2 in
  let specs = specs_for jobs budget tier in
  (match
     Harness.Cli.parse specs
       [ "table5"; "--jobs"; "4"; "--budget"; "500"; "--compile-tier"; "off"; "micro" ]
   with
  | Harness.Cli.Positionals p ->
    Alcotest.(check (list string)) "positionals in order" [ "table5"; "micro" ] p;
    Alcotest.(check int) "--jobs applied" 4 !jobs;
    Alcotest.(check int) "--budget applied" 500 !budget;
    Alcotest.(check int) "--compile-tier applied" 0 !tier;
    (match Harness.Cli.parse specs [ "--compile-tier"; "1" ] with
    | Harness.Cli.Positionals [] ->
      Alcotest.(check int) "--compile-tier 1 applied" 1 !tier
    | _ -> Alcotest.fail "--compile-tier 1 must parse");
    (match Harness.Cli.parse specs [ "--compile-tier"; "2" ] with
    | Harness.Cli.Positionals [] ->
      Alcotest.(check int) "--compile-tier 2 applied" 2 !tier
    | _ -> Alcotest.fail "--compile-tier 2 must parse");
    (match Harness.Cli.parse specs [ "--compile-tier"; "on" ] with
    | Harness.Cli.Positionals [] ->
      Alcotest.(check int) "--compile-tier on means 3" 3 !tier
    | _ -> Alcotest.fail "--compile-tier on must parse")
  | _ -> Alcotest.fail "mixed flags + positionals must parse");
  match Harness.Cli.parse specs [ "--help" ] with
  | Harness.Cli.Help -> ()
  | _ -> Alcotest.fail "--help must be recognised"

(* Every malformed flag is a [Bad] — the wording is the bench driver's
   historical stderr contract, and [parse_or_exit] turns each into a
   non-zero exit. *)
let test_cli_errors () =
  let jobs = ref 1 and budget = ref 0 and tier = ref 2 in
  let specs = specs_for jobs budget tier in
  check_bad specs [ "--jobs"; "x" ] "--jobs expects a non-negative integer, got x";
  check_bad specs [ "--jobs"; "-2" ] "--jobs expects a non-negative integer, got -2";
  check_bad specs [ "--jobs" ] "--jobs expects an argument";
  check_bad specs [ "--budget"; "0" ] "--budget expects a positive integer, got 0";
  check_bad specs [ "--budget" ] "--budget expects an argument";
  check_bad specs
    [ "--compile-tier"; "maybe" ]
    "--compile-tier expects off, 1, 2, 3 or on, got maybe"

let test_cli_profile_top () =
  (match Harness.Cli.parse_profile_top "top=10" with
  | Ok n -> Alcotest.(check int) "top=10" 10 n
  | Error e -> Alcotest.failf "top=10 rejected: %s" e);
  List.iter
    (fun s ->
      match Harness.Cli.parse_profile_top s with
      | Ok _ -> Alcotest.failf "%S must be rejected" s
      | Error msg ->
        Alcotest.(check string) "error message"
          (Printf.sprintf "--profile expects top=N with N positive, got %s" s)
          msg)
    [ "top=0"; "top=x"; "bogus"; "n=3" ]

let test_cli_usage () =
  let usage =
    Harness.Cli.usage ~prog:"bench/main.exe" ~positional:"[<experiment>...]"
      (specs_for (ref 0) (ref 0) (ref 2))
  in
  Alcotest.(check bool) "usage lists --jobs" true
    (Astring.String.is_infix ~affix:"--jobs N" usage);
  Alcotest.(check bool) "usage lists tier docv" true
    (Astring.String.is_infix ~affix:"--compile-tier off|1|2|3|on" usage)

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "concurrent counters sum exactly" `Quick
            test_counter_concurrent;
          Alcotest.test_case "kind clash rejected" `Quick test_counter_kind_clash;
          Alcotest.test_case "histogram flattening" `Quick test_histogram_flatten;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "registry reads over a fork workload" `Quick
            test_registry_reads;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "disabled tracing is pass-through" `Quick
            test_trace_disabled_is_free;
        ] );
      ( "profile",
        [
          Alcotest.test_case "two-function attribution" `Quick
            test_profile_attribution;
        ] );
      ( "files",
        [
          Alcotest.test_case "Json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "Benchfile round-trip" `Quick test_benchfile_roundtrip;
          Alcotest.test_case "wrong schema rejected" `Quick
            test_benchfile_rejects_wrong_schema;
        ] );
      ( "cli",
        [
          Alcotest.test_case "flags + positionals" `Quick test_cli_parse;
          Alcotest.test_case "error messages pinned" `Quick test_cli_errors;
          Alcotest.test_case "--profile top=N parser" `Quick test_cli_profile_top;
          Alcotest.test_case "generated usage" `Quick test_cli_usage;
        ] );
    ]
