(* AES-128 against FIPS-197 vectors, plus the one-way function used by
   P-SSP-OWF. *)

let bytes_of_hex = Util.Hex.to_bytes
let hex = Util.Hex.of_bytes

(* ---- FIPS-197 / NIST reference vectors ---------------------------------- *)

let test_fips197_appendix_b () =
  let key = bytes_of_hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let pt = bytes_of_hex "3243f6a8885a308d313198a2e0370734" in
  let k = Crypto.Aes128.expand_key key in
  Alcotest.(check string) "ciphertext" "3925841d02dc09fbdc118597196a0b32"
    (hex (Crypto.Aes128.encrypt_block k pt))

let test_fips197_appendix_c () =
  let key = bytes_of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = bytes_of_hex "00112233445566778899aabbccddeeff" in
  let k = Crypto.Aes128.expand_key key in
  Alcotest.(check string) "ciphertext" "69c4e0d86a7b0430d8cdb78070b4c55a"
    (hex (Crypto.Aes128.encrypt_block k pt))

let test_nist_ecb_kat () =
  (* NIST SP 800-38A F.1.1, first block *)
  let key = bytes_of_hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let pt = bytes_of_hex "6bc1bee22e409f96e93d7e117393172a" in
  let k = Crypto.Aes128.expand_key key in
  Alcotest.(check string) "ciphertext" "3ad77bb40d7a3660a89ecaf32466ef97"
    (hex (Crypto.Aes128.encrypt_block k pt))

let test_key_schedule_first_round () =
  (* FIPS-197 A.1: first expanded word of round 1 is w4 = a0fafe17... *)
  let key = bytes_of_hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let k = Crypto.Aes128.expand_key key in
  let rks = Crypto.Aes128.round_keys k in
  Alcotest.(check int) "11 round keys" 11 (Array.length rks);
  Alcotest.(check string) "round key 0 is the key"
    "2b7e151628aed2a6abf7158809cf4f3c" (hex rks.(0));
  Alcotest.(check string) "round key 1" "a0fafe1788542cb123a339392a6c7605"
    (hex rks.(1))

let test_decrypt_inverts () =
  let key = bytes_of_hex "000102030405060708090a0b0c0d0e0f" in
  let k = Crypto.Aes128.expand_key key in
  let pt = bytes_of_hex "00112233445566778899aabbccddeeff" in
  Alcotest.(check string) "decrypt(encrypt(x)) = x" (hex pt)
    (hex (Crypto.Aes128.decrypt_block k (Crypto.Aes128.encrypt_block k pt)))

let test_rounds_compose_to_encrypt () =
  (* aesenc^9 . aesenclast with the round keys must equal encrypt_block
     (this is how the simulated CPU instructions are defined). *)
  let key = bytes_of_hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let k = Crypto.Aes128.expand_key key in
  let rks = Crypto.Aes128.round_keys k in
  let pt = bytes_of_hex "3243f6a8885a308d313198a2e0370734" in
  let xor16 a b =
    Bytes.init 16 (fun i ->
        Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))
  in
  let state = ref (xor16 pt rks.(0)) in
  for r = 1 to 9 do
    state := Crypto.Aes128.aesenc ~state:!state ~round_key:rks.(r)
  done;
  let out = Crypto.Aes128.aesenclast ~state:!state ~round_key:rks.(10) in
  Alcotest.(check string) "matches encrypt_block"
    (hex (Crypto.Aes128.encrypt_block k pt))
    (hex out)

let test_bad_lengths () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Aes128.expand_key: need 16 bytes") (fun () ->
      ignore (Crypto.Aes128.expand_key (Bytes.create 8)));
  let k = Crypto.Aes128.key_of_int64s 1L 2L in
  Alcotest.check_raises "short block"
    (Invalid_argument "Aes128.encrypt_block: need 16 bytes") (fun () ->
      ignore (Crypto.Aes128.encrypt_block k (Bytes.create 15)))

let test_int64_interface_consistent () =
  let k = Crypto.Aes128.key_of_int64s 0x0706050403020100L 0x0F0E0D0C0B0A0908L in
  let k' = Crypto.Aes128.expand_key (bytes_of_hex "000102030405060708090a0b0c0d0e0f") in
  let lo, hi = Crypto.Aes128.encrypt_int64s k 0x7766554433221100L 0xFFEEDDCCBBAA9988L in
  let ct = Crypto.Aes128.encrypt_block k' (bytes_of_hex "00112233445566778899aabbccddeeff") in
  Alcotest.(check string) "lanes agree with byte interface"
    (hex ct)
    (hex
       (let b = Bytes.create 16 in
        Bytes.set_int64_le b 0 lo;
        Bytes.set_int64_le b 8 hi;
        b))

let prop_roundtrip =
  QCheck.Test.make ~name:"decrypt . encrypt = id" ~count:200
    QCheck.(quad int64 int64 int64 int64)
    (fun (k0, k1, p0, p1) ->
      let k = Crypto.Aes128.key_of_int64s k0 k1 in
      let c0, c1 = Crypto.Aes128.encrypt_int64s k p0 p1 in
      let ct = Bytes.create 16 in
      Bytes.set_int64_le ct 0 c0;
      Bytes.set_int64_le ct 8 c1;
      let pt = Crypto.Aes128.decrypt_block k ct in
      Bytes.get_int64_le pt 0 = p0 && Bytes.get_int64_le pt 8 = p1)

let prop_permutation =
  QCheck.Test.make ~name:"distinct plaintexts -> distinct ciphertexts" ~count:200
    QCheck.(triple int64 int64 int64)
    (fun (k0, p, q) ->
      QCheck.assume (p <> q);
      let k = Crypto.Aes128.key_of_int64s k0 0L in
      Crypto.Aes128.encrypt_int64s k p 0L <> Crypto.Aes128.encrypt_int64s k q 0L)

(* ---- Oneway -------------------------------------------------------------- *)

let test_oneway_deterministic () =
  let f = Crypto.Oneway.create ~key_lo:11L ~key_hi:22L in
  let a = Crypto.Oneway.evaluate f ~ret:0x400123L ~nonce:99L in
  let b = Crypto.Oneway.evaluate f ~ret:0x400123L ~nonce:99L in
  Alcotest.(check bool) "same inputs, same canary" true (a = b)

let test_oneway_sensitive_to_ret () =
  let f = Crypto.Oneway.create ~key_lo:11L ~key_hi:22L in
  let a = Crypto.Oneway.evaluate f ~ret:0x400123L ~nonce:99L in
  let b = Crypto.Oneway.evaluate f ~ret:0x400124L ~nonce:99L in
  Alcotest.(check bool) "ret change changes canary" false (a = b)

let test_oneway_sensitive_to_nonce () =
  let f = Crypto.Oneway.create ~key_lo:11L ~key_hi:22L in
  let a = Crypto.Oneway.evaluate f ~ret:0x400123L ~nonce:1L in
  let b = Crypto.Oneway.evaluate f ~ret:0x400123L ~nonce:2L in
  Alcotest.(check bool) "nonce change changes canary" false (a = b)

let test_oneway_sensitive_to_key () =
  let f = Crypto.Oneway.create ~key_lo:11L ~key_hi:22L in
  let g = Crypto.Oneway.create ~key_lo:11L ~key_hi:23L in
  Alcotest.(check bool) "key change changes canary" false
    (Crypto.Oneway.evaluate f ~ret:5L ~nonce:5L
    = Crypto.Oneway.evaluate g ~ret:5L ~nonce:5L)

let test_oneway_no_nonce_is_nonce_zero () =
  let f = Crypto.Oneway.create ~key_lo:3L ~key_hi:4L in
  Alcotest.(check bool) "weak variant pins nonce to 0" true
    (Crypto.Oneway.evaluate_no_nonce f ~ret:77L
    = Crypto.Oneway.evaluate f ~ret:77L ~nonce:0L)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "crypto"
    [
      ( "aes128",
        [
          Alcotest.test_case "FIPS-197 appendix B" `Quick test_fips197_appendix_b;
          Alcotest.test_case "FIPS-197 appendix C" `Quick test_fips197_appendix_c;
          Alcotest.test_case "NIST ECB KAT" `Quick test_nist_ecb_kat;
          Alcotest.test_case "key schedule" `Quick test_key_schedule_first_round;
          Alcotest.test_case "decrypt inverts" `Quick test_decrypt_inverts;
          Alcotest.test_case "aesenc rounds compose" `Quick test_rounds_compose_to_encrypt;
          Alcotest.test_case "bad lengths rejected" `Quick test_bad_lengths;
          Alcotest.test_case "int64 lanes" `Quick test_int64_interface_consistent;
          qc prop_roundtrip;
          qc prop_permutation;
        ] );
      ( "oneway",
        [
          Alcotest.test_case "deterministic" `Quick test_oneway_deterministic;
          Alcotest.test_case "sensitive to ret" `Quick test_oneway_sensitive_to_ret;
          Alcotest.test_case "sensitive to nonce" `Quick test_oneway_sensitive_to_nonce;
          Alcotest.test_case "sensitive to key" `Quick test_oneway_sensitive_to_key;
          Alcotest.test_case "no-nonce = nonce 0" `Quick test_oneway_no_nonce_is_nonce_zero;
        ] );
    ]
