(* Compiler tests: frame layout, code generation correctness (against
   expected program outputs), and the protection passes' emitted code. *)

open Minic

let compile ?(scheme = Pssp.Scheme.None_) ?linkage src =
  Mcc.Driver.compile ~scheme ?linkage (Parser.parse src)

(* enqueue + schedule + stop_of: run one process to its next park *)
let kernel_run ?fuel k p =
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule ?fuel k;
  Os.Kernel.stop_of p

(* Run a program and return (exit_code, stdout). *)
let run ?(scheme = Pssp.Scheme.None_) ?input src =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ?input ~preload:(Mcc.Driver.preload_for scheme) (compile ~scheme src) in
  match kernel_run k p with
  | Os.Kernel.Stop_exit code -> (code, Os.Process.stdout p)
  | other -> Alcotest.failf "program died: %s" (Os.Kernel.stop_to_string other)

let expect_output ?scheme src expected =
  let _, out = run ?scheme src in
  Alcotest.(check string) "stdout" expected out

let expect_exit ?scheme src expected =
  let code, _ = run ?scheme src in
  Alcotest.(check int) "exit code" expected code

(* ---- frame layout ------------------------------------------------------------ *)

let func_of src name =
  let p = Parser.parse src in
  Option.get (Ast.find_func p name)

let test_frame_guard_policy () =
  let with_buffer = func_of "int f() { char b[8]; return b[0]; } int main() { return 0; }" "f" in
  let without = func_of "int f() { int x; return x; } int main() { return 0; }" "f" in
  let fr1 = Mcc.Frame.layout ~scheme:Pssp.Scheme.Ssp with_buffer in
  let fr2 = Mcc.Frame.layout ~scheme:Pssp.Scheme.Ssp without in
  Alcotest.(check bool) "buffer => guarded" true fr1.Mcc.Frame.guarded;
  Alcotest.(check bool) "no buffer => unguarded" false fr2.Mcc.Frame.guarded;
  let fr3 = Mcc.Frame.layout ~scheme:Pssp.Scheme.None_ with_buffer in
  Alcotest.(check bool) "native never guarded" false fr3.Mcc.Frame.guarded

let test_frame_guard_words () =
  let f = func_of "int f() { char b[8]; return 0; } int main() { return 0; }" "f" in
  let words scheme = (Mcc.Frame.layout ~scheme f).Mcc.Frame.guard_words in
  Alcotest.(check int) "ssp 1 word" 1 (words Pssp.Scheme.Ssp);
  Alcotest.(check int) "pssp 2 words" 2 (words Pssp.Scheme.Pssp);
  Alcotest.(check int) "owf 3 words" 3 (words Pssp.Scheme.Pssp_owf);
  (* the SVII-C point: the global-buffer variant keeps the SSP layout *)
  Alcotest.(check int) "gb 1 word (SSP layout)" 1 (words Pssp.Scheme.Pssp_gb)

let test_frame_arrays_above_scalars () =
  (* SSP-strong ordering: buffers adjacent to the guard, scalars below *)
  let f =
    func_of "int f() { int x; char b[16]; int y; return 0; } int main() { return 0; }" "f"
  in
  let fr = Mcc.Frame.layout ~scheme:Pssp.Scheme.Ssp f in
  let slot n = (Mcc.Frame.slot fr n).Mcc.Frame.offset in
  Alcotest.(check bool) "buffer above x" true (slot "b" > slot "x");
  Alcotest.(check bool) "buffer above y" true (slot "b" > slot "y");
  Alcotest.(check int) "buffer right below guard" (-8 - 16) (slot "b")

let test_frame_lv_canary_below_critical () =
  let f =
    func_of
      "int f() { critical char log[16]; char buf[16]; return 0; } int main() { return 0; }"
      "f"
  in
  let fr = Mcc.Frame.layout ~scheme:(Pssp.Scheme.Pssp_lv 1) f in
  (match fr.Mcc.Frame.lv_canaries with
  | [ c ] ->
    let log_off = (Mcc.Frame.slot fr "log").Mcc.Frame.offset in
    Alcotest.(check int) "canary in adjacent word below the variable"
      (log_off - 8) c.Mcc.Frame.canary_offset;
    (* the plain buffer sits below the canary: ascending overflow meets
       the canary before the critical variable *)
    Alcotest.(check bool) "buf below canary" true
      ((Mcc.Frame.slot fr "buf").Mcc.Frame.offset < c.Mcc.Frame.canary_offset)
  | _ -> Alcotest.fail "expected exactly one LV canary");
  (* under non-LV schemes no per-variable canaries exist *)
  let fr2 = Mcc.Frame.layout ~scheme:Pssp.Scheme.Pssp_nt f in
  Alcotest.(check int) "no LV canaries" 0 (List.length fr2.Mcc.Frame.lv_canaries)

let test_frame_16_alignment () =
  List.iter
    (fun scheme ->
      let f =
        func_of "int f(int a) { char b[13]; int z; return a; } int main() { return 0; }" "f"
      in
      let fr = Mcc.Frame.layout ~scheme f in
      Alcotest.(check int) "16-aligned" 0 (fr.Mcc.Frame.frame_size mod 16))
    [ Pssp.Scheme.None_; Pssp.Scheme.Ssp; Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_owf ]

(* ---- codegen correctness -------------------------------------------------------- *)

let test_arith_precedence () =
  expect_output "int main() { print_int(2 + 3 * 4 - 10 / 2); return 0; }" "9"

let test_division_negative () =
  expect_output "int main() { print_int(-7 / 2); putchar(' '); print_int(-7 % 2); return 0; }"
    "-3 -1"

let test_bitwise () =
  expect_output
    "int main() { print_int((12 & 10) | (1 << 4) ^ 3); putchar(' '); print_int(~0); putchar(' '); print_int(255 >> 4); return 0; }"
    "27 -1 15"

let test_comparisons () =
  expect_output
    {|int main() {
  print_int(1 < 2); print_int(2 <= 2); print_int(3 > 4); print_int(4 >= 5);
  print_int(5 == 5); print_int(6 != 6);
  return 0;
}|}
    "110010"

let test_short_circuit_side_effects () =
  expect_output
    {|
int g = 0;

int bump() {
  g++;
  return 1;
}

int main() {
  int r = 0 && bump();
  r = r + (1 || bump());
  print_int(g);
  return 0;
}
|}
    "0"

let test_logical_values () =
  expect_output "int main() { print_int(3 && 2); print_int(0 || 7); print_int(!5); print_int(!0); return 0; }"
    "1101"

let test_while_break_continue () =
  expect_output
    {|
int main() {
  int i = 0;
  int sum = 0;
  while (1) {
    i++;
    if (i > 10) { break; }
    if (i % 2 == 0) { continue; }
    sum += i;
  }
  print_int(sum);
  return 0;
}
|}
    "25"

let test_for_loop_nested () =
  expect_output
    {|
int main() {
  int total = 0;
  int i;
  int j;
  for (i = 0; i < 5; i++) {
    for (j = 0; j <= i; j++) {
      total += j;
    }
  }
  print_int(total);
  return 0;
}
|}
    "20"

let test_for_decl_runs () =
  expect_output
    {|
int main() {
  int s = 0;
  for (int i = 1; i <= 5; i++) {
    s += i;
  }
  print_int(s);
  return 0;
}
|}
    "15"

let test_do_while () =
  expect_output
    {|
int main() {
  int n = 0;
  do {
    n++;
  } while (n < 3);
  print_int(n);
  return 0;
}
|}
    "3"

let test_recursion () =
  expect_exit
    {|
int ack(int m, int n) {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}

int main() {
  return ack(2, 3);
}
|}
    9

let test_mutual_recursion () =
  expect_output
    {|
int is_odd(int n);

int is_even(int n) {
  if (n == 0) { return 1; }
  return is_odd(n - 1);
}

int is_odd(int n) {
  if (n == 0) { return 0; }
  return is_even(n - 1);
}

int main() {
  print_int(is_even(10));
  print_int(is_odd(7));
  return 0;
}
|}
    "11"

let test_six_args () =
  expect_exit
    {|
int sum6(int a, int b, int c, int d, int e, int f) {
  return a + 2 * b + 3 * c + 4 * d + 5 * e + 6 * f;
}

int main() {
  return sum6(1, 1, 1, 1, 1, 1);
}
|}
    21

let test_too_many_args_rejected () =
  match
    compile
      "int f(int a, int b, int c, int d, int e, int g, int h) { return 0; } int main() { return 0; }"
  with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "7-arg function should be rejected"

let test_char_arrays () =
  expect_output
    {|
int main() {
  char b[8];
  int i;
  for (i = 0; i < 5; i++) {
    b[i] = 'a' + i;
  }
  b[5] = 0;
  print_str(b);
  print_int(b[1] == 'b');
  return 0;
}
|}
    "abcde1"

let test_int_arrays_and_pointers () =
  expect_output
    {|
int fill(int a[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = i * i;
  }
  return 0;
}

int main() {
  int squares[6];
  fill(squares, 6);
  print_int(squares[5]);
  return 0;
}
|}
    "25"

let test_address_of_scalar () =
  expect_output
    {|
int set_to(int *p, int v) {
  p[0] = v;
  return 0;
}

int main() {
  int x = 1;
  set_to(&x, 41);
  print_int(x + 1);
  return 0;
}
|}
    "42"

let test_globals () =
  expect_output
    {|
int counter = 10;
char tag = 'x';
int table[4];

int main() {
  counter += 5;
  table[2] = counter;
  print_int(table[2]);
  putchar(tag);
  return 0;
}
|}
    "15x"

let test_string_literals_pooled () =
  let image =
    compile {|int main() { print_str("dup"); print_str("dup"); return 0; }|}
  in
  (* one copy of "dup" in rodata: data is small *)
  Alcotest.(check bool) "string pooled" true
    (Bytes.length image.Os.Image.data < 16)

let test_char_sign_behaviour () =
  (* chars load zero-extended *)
  expect_output
    {|
int main() {
  char c = 200;
  print_int(c);
  return 0;
}
|}
    "200"

let test_shift_amount_must_be_literal () =
  match run "int main() { int n = 3; return 1 << n; }" with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "variable shift should be rejected by the backend"

let test_fall_off_end_returns_zero () =
  expect_exit "int main() { print_int(1); }" 0

(* all schemes produce the same observable behaviour on the same program *)
let test_schemes_agree () =
  let src =
    {|
int work(int n) {
  char scratch[16];
  int acc = 0;
  int i;
  for (i = 0; i < n; i++) {
    scratch[i % 16] = i;
    acc += scratch[i % 16];
  }
  return acc;
}

int main() {
  print_int(work(50));
  return 0;
}
|}
  in
  let reference = run src in
  List.iter
    (fun scheme ->
      let got = run ~scheme src in
      Alcotest.(check bool)
        ("scheme " ^ Pssp.Scheme.name scheme ^ " agrees")
        true (got = reference))
    [
      Pssp.Scheme.Ssp; Pssp.Scheme.Raf_ssp; Pssp.Scheme.Dynaguard;
      Pssp.Scheme.Dcr; Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_nt;
      Pssp.Scheme.Pssp_lv 1; Pssp.Scheme.Pssp_owf; Pssp.Scheme.Pssp_owf_weak;
      Pssp.Scheme.Pssp_gb;
    ]

(* ---- protection pass shapes ----------------------------------------------------- *)

let disasm_of scheme =
  let image =
    compile ~scheme "int f() { char b[16]; read_input(b); return 0; } int main() { return f(); }"
  in
  Os.Image.disassemble_symbol image "f"

let has_insn pred listing = List.exists (fun (_, i) -> pred i) listing

let test_ssp_prologue_shape () =
  let listing = disasm_of Pssp.Scheme.Ssp in
  Alcotest.(check bool) "loads %fs:0x28" true
    (has_insn
       (function
         | Isa.Insn.Mov (Isa.Operand.Reg Isa.Reg.RAX, Isa.Operand.Mem m) ->
           m.Isa.Operand.seg_fs && m.Isa.Operand.disp = 0x28L
         | _ -> false)
       listing);
  Alcotest.(check bool) "calls __stack_chk_fail" true
    (has_insn
       (function
         | Isa.Insn.Call (Isa.Insn.Abs a) ->
           Os.Glibc.name_of_addr a = Some "__stack_chk_fail"
         | _ -> false)
       listing)

let test_pssp_prologue_shape () =
  let listing = disasm_of Pssp.Scheme.Pssp in
  let loads_fs disp =
    has_insn
      (function
        | Isa.Insn.Mov (Isa.Operand.Reg Isa.Reg.RAX, Isa.Operand.Mem m) ->
          m.Isa.Operand.seg_fs && m.Isa.Operand.disp = disp
        | _ -> false)
      listing
  in
  Alcotest.(check bool) "loads shadow C0 (%fs:0x2a8)" true (loads_fs 0x2a8L);
  Alcotest.(check bool) "loads shadow C1 (%fs:0x2b0)" true (loads_fs 0x2b0L);
  Alcotest.(check bool) "never rdrand (Code 3 uses plain movs)" false
    (has_insn (function Isa.Insn.Rdrand _ -> true | _ -> false) listing)

let test_pssp_nt_uses_rdrand () =
  let listing = disasm_of Pssp.Scheme.Pssp_nt in
  Alcotest.(check bool) "rdrand present" true
    (has_insn (function Isa.Insn.Rdrand _ -> true | _ -> false) listing)

let test_owf_uses_aes_path () =
  let listing = disasm_of Pssp.Scheme.Pssp_owf in
  Alcotest.(check bool) "rdtsc nonce" true
    (has_insn (function Isa.Insn.Rdtsc -> true | _ -> false) listing);
  Alcotest.(check bool) "calls AES helper" true
    (has_insn
       (function
         | Isa.Insn.Call (Isa.Insn.Abs a) ->
           Os.Glibc.name_of_addr a = Some "AES_ENCRYPT_128"
         | _ -> false)
       listing);
  Alcotest.(check bool) "128-bit compare" true
    (has_insn (function Isa.Insn.Pcmpeq128 _ -> true | _ -> false) listing)

let test_unguarded_function_has_no_canary_code () =
  let image =
    compile ~scheme:Pssp.Scheme.Pssp
      "int leaf(int x) { return x + 1; } int main() { char b[8]; b[0] = leaf(1); return b[0]; }"
  in
  let listing = Os.Image.disassemble_symbol image "leaf" in
  Alcotest.(check bool) "no TLS access in bufferless function" false
    (has_insn
       (function
         | Isa.Insn.Mov (_, Isa.Operand.Mem m) -> m.Isa.Operand.seg_fs
         | _ -> false)
       listing)

let test_static_linkage_stubs () =
  let image =
    compile ~linkage:Os.Image.Static ~scheme:Pssp.Scheme.Ssp
      "int main() { char b[8]; read_input(b); return 0; }"
  in
  List.iter
    (fun stub ->
      Alcotest.(check bool) (stub ^ " embedded") true
        (Os.Image.find_symbol image stub <> None))
    Mcc.Driver.static_stub_names;
  (* dynamic images must not embed them *)
  let dyn = compile ~scheme:Pssp.Scheme.Ssp "int main() { return 0; }" in
  Alcotest.(check bool) "dynamic has no stubs" true
    (Os.Image.find_symbol dyn "__stack_chk_fail" = None)

(* canary detection wiring per scheme *)
let test_overflow_detected_each_scheme () =
  let src = Workload.Vuln.echo_once ~buffer_size:16 in
  List.iter
    (fun scheme ->
      let k = Os.Kernel.create () in
      let p =
        Os.Kernel.spawn k ~input:(Bytes.make 64 'A')
          ~preload:(Mcc.Driver.preload_for scheme)
          (compile ~scheme src)
      in
      match kernel_run k p with
      | Os.Kernel.Stop_kill (Os.Process.Sigabrt, _) -> ()
      | other ->
        Alcotest.failf "%s missed the smash: %s" (Pssp.Scheme.name scheme)
          (Os.Kernel.stop_to_string other))
    [
      Pssp.Scheme.Ssp; Pssp.Scheme.Raf_ssp; Pssp.Scheme.Dynaguard;
      Pssp.Scheme.Dcr; Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_nt;
      Pssp.Scheme.Pssp_lv 1; Pssp.Scheme.Pssp_owf; Pssp.Scheme.Pssp_gb;
    ]

let test_lv_detects_intra_frame_overflow () =
  let src = Workload.Vuln.lv_stealth_victim in
  let payload = Workload.Vuln.lv_stealth_payload in
  (* NT misses it (stealthy corruption of the critical buffer) *)
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~input:payload (compile ~scheme:Pssp.Scheme.Pssp_nt src) in
  (match kernel_run k p with
  | Os.Kernel.Stop_exit 0 ->
    let out = Os.Process.stdout p in
    Alcotest.(check bool) "critical buffer corrupted silently" true
      (out = "audit=X\n")
  | other -> Alcotest.failf "NT run: %s" (Os.Kernel.stop_to_string other));
  (* LV catches it at epilogue *)
  let k2 = Os.Kernel.create () in
  let p2 =
    Os.Kernel.spawn k2 ~input:payload (compile ~scheme:(Pssp.Scheme.Pssp_lv 1) src)
  in
  match kernel_run k2 p2 with
  | Os.Kernel.Stop_kill (Os.Process.Sigabrt, _) -> ()
  | other -> Alcotest.failf "LV missed it: %s" (Os.Kernel.stop_to_string other)

(* ---- peephole ------------------------------------------------------------------- *)

let test_peephole_preserves_behaviour () =
  let src =
    {|
int helper(int a, int b) {
  char pad[8];
  pad[0] = a;
  return a * b + pad[0];
}

int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 20; i++) {
    acc += helper(i, i + 1);
  }
  print_int(acc);
  return acc % 97;
}
|}
  in
  let run_opt optimize =
    let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp ~optimize (Minic.Parser.parse src) in
    let k = Os.Kernel.create () in
    let p = Os.Kernel.spawn k ~preload:Os.Preload.Pssp_wide image in
    let stop = kernel_run k p in
    (stop, Os.Process.stdout p, Os.Image.code_size image, Os.Process.cycles p)
  in
  let stop0, out0, size0, cyc0 = run_opt false in
  let stop1, out1, size1, cyc1 = run_opt true in
  Alcotest.(check bool) "same stop" true (stop0 = stop1);
  Alcotest.(check string) "same output" out0 out1;
  Alcotest.(check bool) "smaller binary" true (size1 < size0);
  Alcotest.(check bool) "no slower" true (Int64.compare cyc1 cyc0 <= 0)

let test_peephole_suite_differential () =
  (* every SPEC benchmark must behave identically optimized *)
  List.iter
    (fun bench ->
      let run optimize =
        let image =
          Mcc.Driver.compile ~scheme:Pssp.Scheme.None_ ~optimize (Workload.Spec.parse bench)
        in
        let k = Os.Kernel.create () in
        let p = Os.Kernel.spawn k image in
        match kernel_run ~fuel:80_000_000 k p with
        | Os.Kernel.Stop_exit 0 -> Os.Process.stdout p
        | other -> Alcotest.failf "%s: %s" bench.Workload.Spec.bench_name (Os.Kernel.stop_to_string other)
      in
      Alcotest.(check string) (bench.Workload.Spec.bench_name ^ " agrees") (run false) (run true))
    (List.filteri (fun i _ -> i mod 5 = 0) Workload.Spec.all)

let test_peephole_keeps_ssp_patterns () =
  (* the rewriter must still find the SSP sites in optimized binaries *)
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp ~optimize:true
      (Minic.Parser.parse (Workload.Vuln.echo_once ~buffer_size:16))
  in
  let sites = Rewriter.Scan.scan image in
  Alcotest.(check int) "prologue survives" 1 (List.length sites.Rewriter.Scan.prologues);
  Alcotest.(check int) "epilogue survives" 1 (List.length sites.Rewriter.Scan.epilogues);
  (* ... and instrumented optimized binaries still work *)
  let patched, _ = Rewriter.Driver.instrument image in
  let k = Os.Kernel.create () in
  let p =
    Os.Kernel.spawn k ~input:(Bytes.make 48 'A')
      ~preload:(Rewriter.Driver.required_preload patched) patched
  in
  match kernel_run k p with
  | Os.Kernel.Stop_kill (Os.Process.Sigabrt, _) -> ()
  | other -> Alcotest.failf "smash missed: %s" (Os.Kernel.stop_to_string other)

let test_optimized_div_by_zero_still_faults () =
  let src = "int main() { return 1 / (1 - 1); }" in
  let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.None_ ~optimize:true (Minic.Parser.parse src) in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k image in
  match kernel_run k p with
  | Os.Kernel.Stop_kill (Os.Process.Sigill, _) -> ()
  | other -> Alcotest.failf "optimizer ate the fault: %s" (Os.Kernel.stop_to_string other)

let test_folding_shrinks_code () =
  let src = "int main() { return (2 + 3) * (4 + 5) - 40; }" in
  let size opt =
    Os.Image.code_size
      (Mcc.Driver.compile ~scheme:Pssp.Scheme.None_ ~optimize:opt (Minic.Parser.parse src))
  in
  Alcotest.(check bool) "smaller" true (size true < size false);
  (* and still correct *)
  let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.None_ ~optimize:true (Minic.Parser.parse src) in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k image in
  Alcotest.(check bool) "value" true (kernel_run k p = Os.Kernel.Stop_exit 5)

let test_peephole_rewrite_patterns () =
  (* unit-level: push/pop fusion and jump threading *)
  let b = Isa.Builder.create () in
  Isa.Builder.emit_all b
    [
      Isa.Insn.Push (Isa.Operand.reg Isa.Reg.RAX);
      Isa.Insn.Pop (Isa.Operand.reg Isa.Reg.RDI);
      Isa.Insn.Mov (Isa.Operand.reg Isa.Reg.RBX, Isa.Operand.reg Isa.Reg.RBX);
      Isa.Insn.Mov (Isa.Operand.reg Isa.Reg.RCX, Isa.Operand.imm 0L);
      Isa.Insn.Jmp (Isa.Insn.Sym "next");
    ];
  Isa.Builder.label b "next";
  Isa.Builder.emit b Isa.Insn.Ret;
  let optimized = Mcc.Peephole.optimize b in
  let insns =
    List.filter_map
      (function Isa.Builder.Instruction i -> Some i | _ -> None)
      (Isa.Builder.items optimized)
  in
  (match insns with
  | [ Isa.Insn.Mov (Isa.Operand.Reg Isa.Reg.RDI, Isa.Operand.Reg Isa.Reg.RAX);
      Isa.Insn.Bin (Isa.Insn.Xor, Isa.Operand.Reg Isa.Reg.RCX, Isa.Operand.Reg Isa.Reg.RCX);
      Isa.Insn.Ret ] -> ()
  | _ ->
    Alcotest.failf "unexpected result: %s"
      (String.concat "; " (List.map Isa.Asm.to_string insns)));
  Alcotest.(check bool) "rewrites counted" true (Mcc.Peephole.rewrites_applied b > 0)

let () =
  Alcotest.run "mcc"
    [
      ( "frame",
        [
          Alcotest.test_case "guard policy" `Quick test_frame_guard_policy;
          Alcotest.test_case "guard words per scheme" `Quick test_frame_guard_words;
          Alcotest.test_case "arrays above scalars" `Quick test_frame_arrays_above_scalars;
          Alcotest.test_case "LV canary below critical" `Quick
            test_frame_lv_canary_below_critical;
          Alcotest.test_case "16-byte alignment" `Quick test_frame_16_alignment;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "precedence" `Quick test_arith_precedence;
          Alcotest.test_case "division/modulo" `Quick test_division_negative;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "short circuit" `Quick test_short_circuit_side_effects;
          Alcotest.test_case "logical values" `Quick test_logical_values;
          Alcotest.test_case "while/break/continue" `Quick test_while_break_continue;
          Alcotest.test_case "nested for" `Quick test_for_loop_nested;
          Alcotest.test_case "for-decl loops" `Quick test_for_decl_runs;
          Alcotest.test_case "do-while" `Quick test_do_while;
          Alcotest.test_case "recursion (ackermann)" `Quick test_recursion;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "six arguments" `Quick test_six_args;
          Alcotest.test_case "seven arguments rejected" `Quick test_too_many_args_rejected;
          Alcotest.test_case "char arrays" `Quick test_char_arrays;
          Alcotest.test_case "int arrays via pointer params" `Quick
            test_int_arrays_and_pointers;
          Alcotest.test_case "address-of scalar" `Quick test_address_of_scalar;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "string pooling" `Quick test_string_literals_pooled;
          Alcotest.test_case "char zero-extension" `Quick test_char_sign_behaviour;
          Alcotest.test_case "variable shifts rejected" `Quick
            test_shift_amount_must_be_literal;
          Alcotest.test_case "fall off end" `Quick test_fall_off_end_returns_zero;
          Alcotest.test_case "all schemes agree" `Quick test_schemes_agree;
        ] );
      ( "protect",
        [
          Alcotest.test_case "SSP shape (Codes 1/2)" `Quick test_ssp_prologue_shape;
          Alcotest.test_case "P-SSP shape (Codes 3/4)" `Quick test_pssp_prologue_shape;
          Alcotest.test_case "NT uses rdrand (Code 7)" `Quick test_pssp_nt_uses_rdrand;
          Alcotest.test_case "OWF uses AES (Codes 8/9)" `Quick test_owf_uses_aes_path;
          Alcotest.test_case "no canary without buffers" `Quick
            test_unguarded_function_has_no_canary_code;
          Alcotest.test_case "static stubs" `Quick test_static_linkage_stubs;
          Alcotest.test_case "every scheme detects a smash" `Quick
            test_overflow_detected_each_scheme;
          Alcotest.test_case "LV catches intra-frame overflow" `Quick
            test_lv_detects_intra_frame_overflow;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "behaviour preserved" `Quick test_peephole_preserves_behaviour;
          Alcotest.test_case "suite differential" `Slow test_peephole_suite_differential;
          Alcotest.test_case "SSP patterns survive" `Quick test_peephole_keeps_ssp_patterns;
          Alcotest.test_case "rewrite patterns" `Quick test_peephole_rewrite_patterns;
          Alcotest.test_case "optimized div-by-zero faults" `Quick
            test_optimized_div_by_zero_still_faults;
          Alcotest.test_case "folding shrinks code" `Quick test_folding_shrinks_code;
        ] );
    ]
