(* lib/net integration: connection stream semantics, accept-backlog
   limits, keep-alive across forked children, connection timeouts, the
   seeded load generator, and the byte-by-byte attack carried over a
   real connection instead of the legacy magic request channel. *)

let compile ?(scheme = Pssp.Scheme.Pssp) src =
  Mcc.Driver.compile ~scheme (Minic.Parser.parse src)

let spawn_server ?(scheme = Pssp.Scheme.Pssp) src =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:(Mcc.Driver.preload_for scheme) (compile ~scheme src) in
  (match Os.Kernel.run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server never accepted: %s" (Os.Kernel.stop_to_string other));
  (k, p)

let drain conn =
  let buf = Buffer.create 64 in
  let rec go () =
    match Net.Conn.client_recv conn ~max:4096 with
    | Net.Conn.Data b ->
      Buffer.add_bytes buf b;
      go ()
    | Net.Conn.Would_block | Net.Conn.Eof | Net.Conn.Closed -> ()
  in
  go ();
  Buffer.contents buf

(* ---- conn stream semantics ----------------------------------------------------- *)

let test_eof_exactly_once () =
  let conn = Net.Conn.create ~id:1 ~now:0L () in
  Alcotest.(check bool) "send" true (Net.Conn.client_send conn ~now:1L "abc");
  Net.Conn.client_shutdown conn ~now:2L;
  (* buffered bytes drain first, in order, honouring partial reads *)
  (match Net.Conn.server_read conn ~now:3L ~max:2 with
  | Net.Conn.Data b -> Alcotest.(check string) "partial read" "ab" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected data");
  (match Net.Conn.server_read conn ~now:4L ~max:16 with
  | Net.Conn.Data b -> Alcotest.(check string) "tail" "c" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected tail");
  (* then EOF is delivered exactly once, and only once *)
  (match Net.Conn.server_read conn ~now:5L ~max:16 with
  | Net.Conn.Eof -> ()
  | _ -> Alcotest.fail "expected Eof");
  match Net.Conn.server_read conn ~now:6L ~max:16 with
  | Net.Conn.Closed -> ()
  | _ -> Alcotest.fail "second read after EOF must be Closed"

let test_tx_backpressure () =
  let conn = Net.Conn.create ~tx_capacity:4 ~id:2 ~now:0L () in
  (match Net.Conn.server_write conn ~now:1L (Bytes.of_string "abcdef") with
  | Net.Conn.Wrote n -> Alcotest.(check int) "partial write" 4 n
  | _ -> Alcotest.fail "expected partial write");
  (match Net.Conn.server_write conn ~now:2L (Bytes.of_string "ef") with
  | Net.Conn.Tx_full -> ()
  | _ -> Alcotest.fail "expected Tx_full");
  (match Net.Conn.client_recv conn ~max:16 with
  | Net.Conn.Data b -> Alcotest.(check string) "client sees flushed bytes" "abcd" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected data");
  match Net.Conn.server_write conn ~now:3L (Bytes.of_string "ef") with
  | Net.Conn.Wrote 2 -> ()
  | _ -> Alcotest.fail "space reclaimed after client drained"

(* ---- accept backlog ------------------------------------------------------------- *)

let test_backlog_overflow_refuses () =
  (* fork_server_net listens with backlog 16: with the parent parked in
     accept, 16 connects queue and the 17th is refused *)
  let k, p = spawn_server (Workload.Vuln.fork_server_net ~buffer_size:16) in
  let refused_before = Telemetry.Registry.read_int "net.conn.refused" in
  let conns =
    List.init 16 (fun i ->
        match Os.Kernel.connect k p with
        | Some c -> c
        | None -> Alcotest.failf "connect %d refused below backlog" i)
  in
  (match Os.Kernel.connect k p with
  | None -> ()
  | Some _ -> Alcotest.fail "connect beyond backlog must be refused");
  Alcotest.(check int) "refusal counted" (refused_before + 1)
    (Telemetry.Registry.read_int "net.conn.refused");
  (* the refusal leaves the queued connections fully servable *)
  List.iter
    (fun c ->
      ignore (Net.Conn.client_send c ~now:(Os.Kernel.now k) "ping");
      Net.Conn.client_shutdown c ~now:(Os.Kernel.now k))
    conns;
  (match Os.Kernel.run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  List.iter
    (fun c ->
      Alcotest.(check bool) "queued conn served" true (String.length (drain c) > 0))
    conns;
  Alcotest.(check int) "one child per queued conn" 16 (Os.Kernel.fork_count k)

(* ---- keep-alive across forked children ------------------------------------------ *)

let test_keepalive_across_child () =
  let profile = Workload.Servers.apache2 in
  let k, p = spawn_server profile.Workload.Servers.source in
  let conn =
    match Os.Kernel.connect k p with
    | Some c -> c
    | None -> Alcotest.fail "refused"
  in
  let request i =
    let req = List.nth profile.Workload.Servers.requests
        (i mod List.length profile.Workload.Servers.requests) in
    Alcotest.(check bool) "sent" true
      (Net.Conn.client_send conn ~now:(Os.Kernel.now k) req);
    (match Os.Kernel.run k p with
    | Os.Kernel.Stop_accept -> ()
    | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
    let resp = drain conn in
    Alcotest.(check bool) (Printf.sprintf "response %d" i) true
      (String.length resp > 0 && String.contains resp '\n')
  in
  (* several requests ride the same connection — and the same child *)
  request 0;
  request 1;
  request 2;
  Alcotest.(check int) "one fork serves the whole connection" 1
    (Os.Kernel.fork_count k);
  (* half-closing the conn ends the child's recv loop: it exits 0 *)
  Net.Conn.client_shutdown conn ~now:(Os.Kernel.now k);
  (match Os.Kernel.run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  Os.Kernel.reap_zombies k p;
  (match Os.Kernel.last_reaped k with
  | Some child ->
    Alcotest.(check bool) "child exited cleanly" true
      (child.Os.Process.status = Os.Process.Exited 0)
  | None -> Alcotest.fail "child not reaped");
  (* the server accepts fresh connections after the child is gone *)
  match Os.Kernel.connect k p with
  | Some conn2 ->
    ignore (Net.Conn.client_send conn2 ~now:(Os.Kernel.now k)
              (List.hd profile.Workload.Servers.requests));
    Net.Conn.client_shutdown conn2 ~now:(Os.Kernel.now k);
    (match Os.Kernel.run k p with
    | Os.Kernel.Stop_accept ->
      Alcotest.(check bool) "second connection served" true
        (String.length (drain conn2) > 0)
    | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other))
  | None -> Alcotest.fail "reconnect refused"

(* ---- connection timeout --------------------------------------------------------- *)

let test_slow_sender_times_out () =
  let profile = Workload.Servers.nginx in
  let k, p = spawn_server profile.Workload.Servers.source in
  Os.Kernel.set_conn_timeout k (Some 1_000_000L);
  (* conn A sends half a request and goes silent *)
  let slow =
    match Os.Kernel.connect k p with
    | Some c -> c
    | None -> Alcotest.fail "refused"
  in
  ignore (Net.Conn.client_send slow ~now:(Os.Kernel.now k) "GET /inde");
  (match Os.Kernel.run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  Alcotest.(check bool) "handler parked, not timed out yet" false
    (Net.Conn.is_reset slow);
  (* a well-behaved conn B is served while A is wedged *)
  (match Os.Kernel.connect k p with
  | Some good ->
    ignore (Net.Conn.client_send good ~now:(Os.Kernel.now k)
              (List.hd profile.Workload.Servers.requests));
    Net.Conn.client_shutdown good ~now:(Os.Kernel.now k);
    (match Os.Kernel.run k p with
    | Os.Kernel.Stop_accept ->
      Alcotest.(check bool) "good conn served around the slow one" true
        (String.length (drain good) > 0)
    | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other))
  | None -> Alcotest.fail "refused");
  (* idle past the timeout: the kernel resets A and unwedges its child *)
  let timeouts_before = Telemetry.Registry.read_int "net.conn.timeouts" in
  Os.Kernel.advance_to k (Int64.add (Os.Kernel.now k) 2_000_000L);
  (match Os.Kernel.run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  Alcotest.(check bool) "slow conn reset" true (Net.Conn.is_reset slow);
  Alcotest.(check int) "timeout counted" (timeouts_before + 1)
    (Telemetry.Registry.read_int "net.conn.timeouts");
  (* the ready queue is not wedged: a third connection still works *)
  match Os.Kernel.connect k p with
  | Some c ->
    ignore (Net.Conn.client_send c ~now:(Os.Kernel.now k)
              (List.hd profile.Workload.Servers.requests));
    Net.Conn.client_shutdown c ~now:(Os.Kernel.now k);
    (match Os.Kernel.run k p with
    | Os.Kernel.Stop_accept ->
      Alcotest.(check bool) "post-timeout conn served" true
        (String.length (drain c) > 0)
    | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other))
  | None -> Alcotest.fail "refused"

(* ---- load generator ------------------------------------------------------------- *)

let run_load_cell () =
  Harness.Runner.run_load (Harness.Runner.Compiler Pssp.Scheme.Pssp)
    Workload.Servers.nginx ~mode:Net.Loadgen.Closed ~connections:8 ~keepalive:4
    ~total:32 ~slow_every:7 ~abort_every:19

let test_load_deterministic () =
  let a = run_load_cell () in
  let b = run_load_cell () in
  Alcotest.(check bool) "identical reports" true (a = b);
  Alcotest.(check int) "all requests begun" 32 a.Harness.Runner.sent;
  Alcotest.(check bool) "requests completed" true (a.Harness.Runner.completed > 0);
  Alcotest.(check bool) "aborts happened" true (a.Harness.Runner.aborted > 0);
  Alcotest.(check int) "population saturates" 8 a.Harness.Runner.peak_open;
  Alcotest.(check bool) "keep-alive shares forks" true
    (a.Harness.Runner.load_forks < a.Harness.Runner.sent);
  Alcotest.(check bool) "server survives the campaign" true
    a.Harness.Runner.server_alive;
  (* the campaign leaves latency and byte-flow evidence in the registry *)
  Alcotest.(check bool) "net.* metrics populated" true
    (Telemetry.Registry.read_int "net.conn.opened" > 0
    && Telemetry.Registry.read_int "net.bytes.rx" > 0
    && Telemetry.Registry.read_int "net.loadgen.responses" > 0)

(* ---- the attack, carried over a connection -------------------------------------- *)

let net_oracle scheme =
  let image = compile ~scheme (Workload.Vuln.fork_server_net ~buffer_size:16) in
  Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image

let layout scheme =
  {
    Attack.Payload.overflow_distance = 16;
    canary_len = 8 * Pssp.Scheme.stack_words scheme;
  }

let test_net_oracle_transport () =
  let o = net_oracle Pssp.Scheme.Ssp in
  Alcotest.(check bool) "net transport selected" true
    (Attack.Oracle.transport o = Attack.Oracle.Net_conn);
  match Attack.Oracle.query o (Bytes.of_string "hello") with
  | Attack.Oracle.Survived out -> Alcotest.(check string) "child replied" "OK\n" out
  | _ -> Alcotest.fail "benign request crashed"

let test_byte_by_byte_over_conn_breaks_ssp () =
  let o = net_oracle Pssp.Scheme.Ssp in
  match Attack.Byte_by_byte.run o ~layout:(layout Pssp.Scheme.Ssp) ~max_trials:4000 with
  | Attack.Byte_by_byte.Broken { trials; _ } ->
    Alcotest.(check bool) "found within budget" true (trials <= 4000);
    Alcotest.(check bool) "server still up" true (Attack.Oracle.server_alive o)
  | other ->
    Alcotest.failf "SSP resisted over conn: %s"
      (Attack.Byte_by_byte.outcome_to_string other)

let test_byte_by_byte_over_conn_fails_pssp () =
  let o = net_oracle Pssp.Scheme.Pssp in
  match Attack.Byte_by_byte.run o ~layout:(layout Pssp.Scheme.Pssp) ~max_trials:3000 with
  | Attack.Byte_by_byte.Exhausted _ -> ()
  | other ->
    Alcotest.failf "P-SSP broken over conn: %s"
      (Attack.Byte_by_byte.outcome_to_string other)

(* ---- typed resume error --------------------------------------------------------- *)

let test_not_blocked_in_accept () =
  (* a process that ran to exit is not parked in accept: resuming it
     with a request is a driver bug, reported as a typed error *)
  let scheme = Pssp.Scheme.None_ in
  let image = compile ~scheme "int main() { return 0; }" in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:Os.Preload.No_preload image in
  ignore (Os.Kernel.run_to_exit k p);
  match Os.Kernel.resume_with_request k p (Bytes.of_string "x") with
  | _ -> Alcotest.fail "resume on an exited process must raise"
  | exception Os.Kernel.Not_blocked_in_accept { pid; status } ->
    Alcotest.(check int) "pid" p.Os.Process.pid pid;
    Alcotest.(check bool) "status carried" true (status = Os.Process.Exited 0)

let () =
  Alcotest.run "net"
    [
      ( "conn",
        [
          Alcotest.test_case "EOF exactly once on half-close" `Quick test_eof_exactly_once;
          Alcotest.test_case "tx backpressure" `Quick test_tx_backpressure;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "backlog overflow refuses" `Slow test_backlog_overflow_refuses;
          Alcotest.test_case "keep-alive across forked child" `Slow test_keepalive_across_child;
          Alcotest.test_case "slow sender times out" `Slow test_slow_sender_times_out;
          Alcotest.test_case "typed resume error" `Quick test_not_blocked_in_accept;
        ] );
      ( "loadgen",
        [ Alcotest.test_case "deterministic campaign" `Slow test_load_deterministic ] );
      ( "attack over conn",
        [
          Alcotest.test_case "oracle picks net transport" `Slow test_net_oracle_transport;
          Alcotest.test_case "byte-by-byte breaks SSP" `Slow
            test_byte_by_byte_over_conn_breaks_ssp;
          Alcotest.test_case "byte-by-byte fails on P-SSP" `Slow
            test_byte_by_byte_over_conn_fails_pssp;
        ] );
    ]
