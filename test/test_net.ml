(* lib/net integration: connection stream semantics, accept-backlog
   limits, keep-alive across forked children, connection timeouts, the
   seeded load generator, and the byte-by-byte attack carried over a
   real connection instead of the legacy magic request channel. *)

let compile ?(scheme = Pssp.Scheme.Pssp) src =
  Mcc.Driver.compile ~scheme (Minic.Parser.parse src)

(* enqueue + schedule + stop_of: run one process to its next park *)
let kernel_run k p =
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule k;
  Os.Kernel.stop_of p

let spawn_server ?(scheme = Pssp.Scheme.Pssp) src =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:(Mcc.Driver.preload_for scheme) (compile ~scheme src) in
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server never accepted: %s" (Os.Kernel.stop_to_string other));
  (k, p)

let drain conn =
  let buf = Buffer.create 64 in
  let rec go () =
    match Net.Conn.client_recv conn ~max:4096 with
    | Net.Conn.Data b ->
      Buffer.add_bytes buf b;
      go ()
    | Net.Conn.Would_block | Net.Conn.Eof | Net.Conn.Closed -> ()
  in
  go ();
  Buffer.contents buf

(* ---- conn stream semantics ----------------------------------------------------- *)

let test_eof_exactly_once () =
  let conn = Net.Conn.create ~id:1 ~now:0L () in
  Alcotest.(check bool) "send" true (Net.Conn.client_send conn ~now:1L "abc");
  Net.Conn.client_shutdown conn ~now:2L;
  (* buffered bytes drain first, in order, honouring partial reads *)
  (match Net.Conn.server_read conn ~now:3L ~max:2 with
  | Net.Conn.Data b -> Alcotest.(check string) "partial read" "ab" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected data");
  (match Net.Conn.server_read conn ~now:4L ~max:16 with
  | Net.Conn.Data b -> Alcotest.(check string) "tail" "c" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected tail");
  (* then EOF is delivered exactly once, and only once *)
  (match Net.Conn.server_read conn ~now:5L ~max:16 with
  | Net.Conn.Eof -> ()
  | _ -> Alcotest.fail "expected Eof");
  match Net.Conn.server_read conn ~now:6L ~max:16 with
  | Net.Conn.Closed -> ()
  | _ -> Alcotest.fail "second read after EOF must be Closed"

let test_tx_backpressure () =
  let conn = Net.Conn.create ~tx_capacity:4 ~id:2 ~now:0L () in
  (match Net.Conn.server_write conn ~now:1L (Bytes.of_string "abcdef") with
  | Net.Conn.Wrote n -> Alcotest.(check int) "partial write" 4 n
  | _ -> Alcotest.fail "expected partial write");
  (match Net.Conn.server_write conn ~now:2L (Bytes.of_string "ef") with
  | Net.Conn.Tx_full -> ()
  | _ -> Alcotest.fail "expected Tx_full");
  (match Net.Conn.client_recv conn ~max:16 with
  | Net.Conn.Data b -> Alcotest.(check string) "client sees flushed bytes" "abcd" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected data");
  match Net.Conn.server_write conn ~now:3L (Bytes.of_string "ef") with
  | Net.Conn.Wrote 2 -> ()
  | _ -> Alcotest.fail "space reclaimed after client drained"

let test_rst_discards_buffered_bytes () =
  let conn = Net.Conn.create ~id:3 ~now:0L () in
  (* bytes buffered in both directions when the RST lands *)
  (match Net.Conn.server_write conn ~now:1L (Bytes.of_string "late reply") with
  | Net.Conn.Wrote 10 -> ()
  | _ -> Alcotest.fail "expected full write");
  Alcotest.(check bool) "send" true
    (Net.Conn.client_send conn ~now:1L "partial requ");
  Net.Conn.abort conn ~now:2L;
  (* client direction: RST kills the receive queue — buffered response
     bytes must not drain like a graceful FIN close would *)
  (match Net.Conn.client_recv conn ~max:4096 with
  | Net.Conn.Closed -> ()
  | Net.Conn.Data _ -> Alcotest.fail "client drained stale tx after RST"
  | Net.Conn.Eof -> Alcotest.fail "RST must not read as graceful Eof"
  | Net.Conn.Would_block -> Alcotest.fail "expected Closed");
  (* server direction: buffered request bytes die the same way *)
  (match Net.Conn.server_read conn ~now:3L ~max:4096 with
  | Net.Conn.Closed -> ()
  | Net.Conn.Data _ -> Alcotest.fail "server drained stale rx after RST"
  | Net.Conn.Eof -> Alcotest.fail "RST must not read as graceful Eof"
  | Net.Conn.Would_block -> Alcotest.fail "expected Closed");
  Alcotest.(check bool) "send on reset conn refused" false
    (Net.Conn.client_send conn ~now:4L "x")

(* ---- accept backlog ------------------------------------------------------------- *)

let test_backlog_overflow_refuses () =
  (* fork_server_net listens with backlog 16: with the parent parked in
     accept, 16 connects queue and the 17th is refused *)
  let k, p = spawn_server (Workload.Vuln.fork_server_net ~buffer_size:16) in
  let refused_before = Telemetry.Registry.read_int "net.conn.refused" in
  let conns =
    List.init 16 (fun i ->
        match Os.Kernel.connect k p with
        | Some c -> c
        | None -> Alcotest.failf "connect %d refused below backlog" i)
  in
  (match Os.Kernel.connect k p with
  | None -> ()
  | Some _ -> Alcotest.fail "connect beyond backlog must be refused");
  Alcotest.(check int) "refusal counted" (refused_before + 1)
    (Telemetry.Registry.read_int "net.conn.refused");
  (* the refusal leaves the queued connections fully servable *)
  List.iter
    (fun c ->
      ignore (Net.Conn.client_send c ~now:(Os.Kernel.now k) "ping");
      Net.Conn.client_shutdown c ~now:(Os.Kernel.now k))
    conns;
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  List.iter
    (fun c ->
      Alcotest.(check bool) "queued conn served" true (String.length (drain c) > 0))
    conns;
  Alcotest.(check int) "one child per queued conn" 16 (Os.Kernel.fork_count k)

(* ---- keep-alive across forked children ------------------------------------------ *)

let test_keepalive_across_child () =
  let profile = Workload.Servers.apache2 in
  let k, p = spawn_server profile.Workload.Servers.source in
  let conn =
    match Os.Kernel.connect k p with
    | Some c -> c
    | None -> Alcotest.fail "refused"
  in
  let request i =
    let req = List.nth profile.Workload.Servers.requests
        (i mod List.length profile.Workload.Servers.requests) in
    Alcotest.(check bool) "sent" true
      (Net.Conn.client_send conn ~now:(Os.Kernel.now k) req);
    (match kernel_run k p with
    | Os.Kernel.Stop_accept -> ()
    | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
    let resp = drain conn in
    Alcotest.(check bool) (Printf.sprintf "response %d" i) true
      (String.length resp > 0 && String.contains resp '\n')
  in
  (* several requests ride the same connection — and the same child *)
  request 0;
  request 1;
  request 2;
  Alcotest.(check int) "one fork serves the whole connection" 1
    (Os.Kernel.fork_count k);
  (* half-closing the conn ends the child's recv loop: it exits 0 *)
  Net.Conn.client_shutdown conn ~now:(Os.Kernel.now k);
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  Os.Kernel.reap_zombies k p;
  (match Os.Kernel.last_reaped k with
  | Some child ->
    Alcotest.(check bool) "child exited cleanly" true
      (child.Os.Process.status = Os.Process.Exited 0)
  | None -> Alcotest.fail "child not reaped");
  (* the server accepts fresh connections after the child is gone *)
  match Os.Kernel.connect k p with
  | Some conn2 ->
    ignore (Net.Conn.client_send conn2 ~now:(Os.Kernel.now k)
              (List.hd profile.Workload.Servers.requests));
    Net.Conn.client_shutdown conn2 ~now:(Os.Kernel.now k);
    (match kernel_run k p with
    | Os.Kernel.Stop_accept ->
      Alcotest.(check bool) "second connection served" true
        (String.length (drain conn2) > 0)
    | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other))
  | None -> Alcotest.fail "reconnect refused"

(* ---- connection timeout --------------------------------------------------------- *)

let test_slow_sender_times_out () =
  let profile = Workload.Servers.nginx in
  let k, p = spawn_server profile.Workload.Servers.source in
  Os.Kernel.set_conn_timeout k (Some 1_000_000L);
  (* conn A sends half a request and goes silent *)
  let slow =
    match Os.Kernel.connect k p with
    | Some c -> c
    | None -> Alcotest.fail "refused"
  in
  ignore (Net.Conn.client_send slow ~now:(Os.Kernel.now k) "GET /inde");
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  Alcotest.(check bool) "handler parked, not timed out yet" false
    (Net.Conn.is_reset slow);
  (* a well-behaved conn B is served while A is wedged *)
  (match Os.Kernel.connect k p with
  | Some good ->
    ignore (Net.Conn.client_send good ~now:(Os.Kernel.now k)
              (List.hd profile.Workload.Servers.requests));
    Net.Conn.client_shutdown good ~now:(Os.Kernel.now k);
    (match kernel_run k p with
    | Os.Kernel.Stop_accept ->
      Alcotest.(check bool) "good conn served around the slow one" true
        (String.length (drain good) > 0)
    | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other))
  | None -> Alcotest.fail "refused");
  (* idle past the timeout: the kernel resets A and unwedges its child *)
  let timeouts_before = Telemetry.Registry.read_int "net.conn.timeouts" in
  Os.Kernel.advance_to k (Int64.add (Os.Kernel.now k) 2_000_000L);
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  Alcotest.(check bool) "slow conn reset" true (Net.Conn.is_reset slow);
  Alcotest.(check int) "timeout counted" (timeouts_before + 1)
    (Telemetry.Registry.read_int "net.conn.timeouts");
  (* the ready queue is not wedged: a third connection still works *)
  match Os.Kernel.connect k p with
  | Some c ->
    ignore (Net.Conn.client_send c ~now:(Os.Kernel.now k)
              (List.hd profile.Workload.Servers.requests));
    Net.Conn.client_shutdown c ~now:(Os.Kernel.now k);
    (match kernel_run k p with
    | Os.Kernel.Stop_accept ->
      Alcotest.(check bool) "post-timeout conn served" true
        (String.length (drain c) > 0)
    | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other))
  | None -> Alcotest.fail "refused"

(* ---- non-blocking fds and the event-driven server tier -------------------------- *)

let test_nonblock_read_eagain () =
  (* a non-blocking read on an empty stream returns EAGAIN (-2) instead
     of parking the process *)
  let src =
    {|
int main() {
  char buf[8];
  int lfd;
  int fd;
  lfd = socket();
  bind(lfd, 8080);
  listen(lfd, 8);
  fd = accept();
  set_nonblock(fd);
  print_int(read(fd, buf, 8));
  exit(0);
  return 0;
}
|}
  in
  let k = Os.Kernel.create () in
  let p =
    Os.Kernel.spawn k ~preload:Os.Preload.No_preload
      (compile ~scheme:Pssp.Scheme.None_ src)
  in
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other ->
    Alcotest.failf "server never accepted: %s" (Os.Kernel.stop_to_string other));
  (match Os.Kernel.connect k p with
  | Some _ -> ()
  | None -> Alcotest.fail "refused");
  (match kernel_run k p with
  | Os.Kernel.Stop_exit 0 -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  Alcotest.(check string) "read returned EAGAIN" "-2" (Os.Process.stdout p)

let spawn_ready ?(scheme = Pssp.Scheme.Pssp) src =
  (* like spawn_server, but for architectures that park in epoll_wait
     (event loop) or waitpid (sharded parent) rather than accept *)
  let k = Os.Kernel.create () in
  let p =
    Os.Kernel.spawn k ~preload:(Mcc.Driver.preload_for scheme)
      (compile ~scheme src)
  in
  (match kernel_run k p with
  | Os.Kernel.Stop_accept | Os.Kernel.Stop_io -> ()
  | other ->
    Alcotest.failf "server never became ready: %s"
      (Os.Kernel.stop_to_string other));
  (k, p)

let test_event_server_keepalive () =
  let profile = Workload.Servers.event_loop Workload.Servers.nginx in
  let k, p = spawn_ready profile.Workload.Servers.source in
  let connect () =
    match Os.Kernel.connect k p with
    | Some c -> c
    | None -> Alcotest.fail "refused"
  in
  let a = connect () in
  let b = connect () in
  let request conn label =
    Alcotest.(check bool) "sent" true
      (Net.Conn.client_send conn ~now:(Os.Kernel.now k)
         (List.hd profile.Workload.Servers.requests));
    (match kernel_run k p with
    | Os.Kernel.Stop_io -> ()
    | other ->
      Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
    let resp = drain conn in
    Alcotest.(check bool) label true
      (String.length resp > 0 && String.contains resp '\n')
  in
  (* keep-alive requests interleaved across two connections, all served
     by the one process — no forks, no threads *)
  request a "a first";
  request b "b first";
  request a "a second";
  request b "b second";
  Alcotest.(check int) "single-process architecture" 0 (Os.Kernel.fork_count k);
  (* half-close ends the connection server-side without killing the loop *)
  Net.Conn.client_shutdown a ~now:(Os.Kernel.now k);
  (match kernel_run k p with
  | Os.Kernel.Stop_io -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  Alcotest.(check bool) "closed conn released" true (Net.Conn.server_closed a);
  request b "b after a left";
  Alcotest.(check bool) "server still alive" true
    (match p.Os.Process.status with
    | Os.Process.Exited _ | Os.Process.Killed _ -> false
    | _ -> true)

let run_event_load () =
  Harness.Runner.run_load (Harness.Runner.Compiler Pssp.Scheme.Pssp)
    (Workload.Servers.event_loop Workload.Servers.nginx)
    ~mode:Net.Loadgen.Closed ~connections:8 ~keepalive:4 ~total:32
    ~slow_every:7 ~abort_every:19

let test_event_load_mix () =
  (* the event-loop server under a loadgen mix of slow byte-at-a-time
     senders and abrupt disconnects: the campaign completes, the server
     survives, and two identical runs are byte-identical *)
  let a = run_event_load () in
  let b = run_event_load () in
  Alcotest.(check bool) "identical reports" true (a = b);
  Alcotest.(check int) "all requests begun" 32 a.Harness.Runner.sent;
  Alcotest.(check bool) "requests completed" true
    (a.Harness.Runner.completed > 0);
  Alcotest.(check bool) "aborts happened" true (a.Harness.Runner.aborted > 0);
  Alcotest.(check int) "no forks: one process serves everyone" 0
    a.Harness.Runner.load_forks;
  Alcotest.(check bool) "server survives the campaign" true
    a.Harness.Runner.server_alive

(* ---- SO_REUSEPORT-style sharded listeners --------------------------------------- *)

let pid_shard_src ~shards =
  Printf.sprintf
    {|
int shard_serve() {
  char buf[8];
  int lfd;
  int fd;
  int r;
  lfd = socket();
  bind(lfd, 8080);
  listen(lfd, 8);
  while (1) {
    fd = accept();
    if (fd < 0) {
      break;
    }
    r = read(fd, buf, 8);
    while (r > 0) {
      r = read(fd, buf, 8);
    }
    write_int(fd, getpid());
    write_str(fd, "\n");
    close(fd);
  }
  return 0;
}

int main() {
  int i;
  int pid;
  i = 0;
  while (i < %d) {
    pid = fork();
    if (pid == 0) {
      shard_serve();
      exit(0);
    }
    i++;
  }
  while (1) {
    waitpid();
  }
  return 0;
}
|}
    shards

let test_sharded_round_robin () =
  (* four acceptor processes listen on the same port; the kernel
     round-robins connects across them, so 8 connects land 2 on each
     shard, cycling in a fixed order *)
  let k, p = spawn_ready ~scheme:Pssp.Scheme.None_ (pid_shard_src ~shards:4) in
  let conns =
    List.init 8 (fun i ->
        match Os.Kernel.connect k p with
        | Some c -> c
        | None -> Alcotest.failf "connect %d refused" i)
  in
  (* EOF-framed requests: each shard answers with its pid *)
  List.iter
    (fun c -> Net.Conn.client_shutdown c ~now:(Os.Kernel.now k))
    conns;
  (match kernel_run k p with
  | Os.Kernel.Stop_io -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  let pids = List.map (fun c -> String.trim (drain c)) conns in
  (match pids with
  | [ a; b; c; d; a'; b'; c'; d' ] ->
    let shard_set = List.sort_uniq compare [ a; b; c; d ] in
    Alcotest.(check int) "four distinct shards took the first four" 4
      (List.length shard_set);
    Alcotest.(check (list string)) "second lap repeats the same cycle"
      [ a; b; c; d ] [ a'; b'; c'; d' ]
  | _ -> Alcotest.fail "expected 8 responses");
  Alcotest.(check int) "exactly the shard forks" 4 (Os.Kernel.fork_count k)

let run_sharded_load () =
  Harness.Runner.run_load (Harness.Runner.Compiler Pssp.Scheme.Pssp)
    (Workload.Servers.sharded Workload.Servers.nginx)
    ~mode:Net.Loadgen.Closed ~connections:8 ~keepalive:4 ~total:32
    ~slow_every:7 ~abort_every:19

let test_sharded_load_mix () =
  let a = run_sharded_load () in
  let b = run_sharded_load () in
  Alcotest.(check bool) "identical reports" true (a = b);
  Alcotest.(check bool) "requests completed" true
    (a.Harness.Runner.completed > 0);
  Alcotest.(check int) "only the shard forks" 4 a.Harness.Runner.load_forks;
  Alcotest.(check bool) "parent survives the campaign" true
    a.Harness.Runner.server_alive

(* ---- wakeup ordering ------------------------------------------------------------ *)

let wake_order_transcript () =
  (* three forked children parked in read; data arrives on their conns
     in the order 2, 0, 1. The wake queue is FIFO across events, so the
     whole interleaving — response bytes and virtual time — must replay
     exactly. *)
  let profile = Workload.Servers.mysql in
  let k, p = spawn_server profile.Workload.Servers.source in
  let conns =
    Array.init 3 (fun i ->
        let c =
          match Os.Kernel.connect k p with
          | Some c -> c
          | None -> Alcotest.failf "connect %d refused" i
        in
        (match kernel_run k p with
        | Os.Kernel.Stop_accept -> ()
        | other ->
          Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
        c)
  in
  List.iter
    (fun i ->
      ignore
        (Net.Conn.client_send conns.(i) ~now:(Os.Kernel.now k) "SELECT 77");
      Net.Conn.client_shutdown conns.(i) ~now:(Os.Kernel.now k))
    [ 2; 0; 1 ];
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "server died: %s" (Os.Kernel.stop_to_string other));
  let responses = Array.map drain conns in
  Array.iter
    (fun r -> Alcotest.(check bool) "conn served" true (String.length r > 0))
    responses;
  String.concat "|" (Array.to_list responses)
  ^ Printf.sprintf "@%Ld" (Os.Kernel.now k)

let test_wake_order_deterministic () =
  Alcotest.(check string) "wakeups replay byte-identically"
    (wake_order_transcript ()) (wake_order_transcript ())

(* ---- load generator ------------------------------------------------------------- *)

let run_load_cell () =
  Harness.Runner.run_load (Harness.Runner.Compiler Pssp.Scheme.Pssp)
    Workload.Servers.nginx ~mode:Net.Loadgen.Closed ~connections:8 ~keepalive:4
    ~total:32 ~slow_every:7 ~abort_every:19

let test_load_deterministic () =
  let a = run_load_cell () in
  let b = run_load_cell () in
  Alcotest.(check bool) "identical reports" true (a = b);
  Alcotest.(check int) "all requests begun" 32 a.Harness.Runner.sent;
  Alcotest.(check bool) "requests completed" true (a.Harness.Runner.completed > 0);
  Alcotest.(check bool) "aborts happened" true (a.Harness.Runner.aborted > 0);
  Alcotest.(check int) "population saturates" 8 a.Harness.Runner.peak_open;
  Alcotest.(check bool) "keep-alive shares forks" true
    (a.Harness.Runner.load_forks < a.Harness.Runner.sent);
  Alcotest.(check bool) "server survives the campaign" true
    a.Harness.Runner.server_alive;
  (* the campaign leaves latency and byte-flow evidence in the registry *)
  Alcotest.(check bool) "net.* metrics populated" true
    (Telemetry.Registry.read_int "net.conn.opened" > 0
    && Telemetry.Registry.read_int "net.bytes.rx" > 0
    && Telemetry.Registry.read_int "net.loadgen.responses" > 0)

(* ---- the attack, carried over a connection -------------------------------------- *)

let net_oracle scheme =
  let image = compile ~scheme (Workload.Vuln.fork_server_net ~buffer_size:16) in
  Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image

let layout scheme =
  {
    Attack.Payload.overflow_distance = 16;
    canary_len = 8 * Pssp.Scheme.stack_words scheme;
  }

let test_net_oracle_transport () =
  let o = net_oracle Pssp.Scheme.Ssp in
  Alcotest.(check bool) "net transport selected" true
    (Attack.Oracle.transport o = Attack.Oracle.Net_conn);
  match Attack.Oracle.query o (Bytes.of_string "hello") with
  | Attack.Oracle.Survived out -> Alcotest.(check string) "child replied" "OK\n" out
  | _ -> Alcotest.fail "benign request crashed"

let test_byte_by_byte_over_conn_breaks_ssp () =
  let o = net_oracle Pssp.Scheme.Ssp in
  match Attack.Byte_by_byte.run o ~layout:(layout Pssp.Scheme.Ssp) ~max_trials:4000 with
  | Attack.Byte_by_byte.Broken { trials; _ } ->
    Alcotest.(check bool) "found within budget" true (trials <= 4000);
    Alcotest.(check bool) "server still up" true (Attack.Oracle.server_alive o)
  | other ->
    Alcotest.failf "SSP resisted over conn: %s"
      (Attack.Byte_by_byte.outcome_to_string other)

let test_byte_by_byte_over_conn_fails_pssp () =
  let o = net_oracle Pssp.Scheme.Pssp in
  match Attack.Byte_by_byte.run o ~layout:(layout Pssp.Scheme.Pssp) ~max_trials:3000 with
  | Attack.Byte_by_byte.Exhausted _ -> ()
  | other ->
    Alcotest.failf "P-SSP broken over conn: %s"
      (Attack.Byte_by_byte.outcome_to_string other)

(* ---- typed resume error --------------------------------------------------------- *)

let test_not_blocked_in_accept () =
  (* a process that ran to exit is not parked in accept: resuming it
     with a request is a driver bug, reported as a typed error *)
  let scheme = Pssp.Scheme.None_ in
  let image = compile ~scheme "int main() { return 0; }" in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:Os.Preload.No_preload image in
  ignore (Os.Kernel.run_to_exit k p);
  match Os.Kernel.deliver_request k p (Bytes.of_string "x") with
  | () -> Alcotest.fail "delivery to an exited process must raise"
  | exception Os.Kernel.Not_blocked_in_accept { pid; status } ->
    Alcotest.(check int) "pid" p.Os.Process.pid pid;
    Alcotest.(check bool) "status carried" true (status = Os.Process.Exited 0)

let () =
  Alcotest.run "net"
    [
      ( "conn",
        [
          Alcotest.test_case "EOF exactly once on half-close" `Quick test_eof_exactly_once;
          Alcotest.test_case "tx backpressure" `Quick test_tx_backpressure;
          Alcotest.test_case "RST discards buffered bytes both ways" `Quick
            test_rst_discards_buffered_bytes;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "backlog overflow refuses" `Slow test_backlog_overflow_refuses;
          Alcotest.test_case "keep-alive across forked child" `Slow test_keepalive_across_child;
          Alcotest.test_case "slow sender times out" `Slow test_slow_sender_times_out;
          Alcotest.test_case "typed resume error" `Quick test_not_blocked_in_accept;
        ] );
      ( "event tier",
        [
          Alcotest.test_case "non-blocking empty read is EAGAIN" `Quick
            test_nonblock_read_eagain;
          Alcotest.test_case "event-loop server keep-alive" `Slow
            test_event_server_keepalive;
          Alcotest.test_case "event-loop server under load mix" `Slow
            test_event_load_mix;
          Alcotest.test_case "sharded listeners round-robin" `Slow
            test_sharded_round_robin;
          Alcotest.test_case "sharded server under load mix" `Slow
            test_sharded_load_mix;
          Alcotest.test_case "wakeup ordering deterministic" `Slow
            test_wake_order_deterministic;
        ] );
      ( "loadgen",
        [ Alcotest.test_case "deterministic campaign" `Slow test_load_deterministic ] );
      ( "attack over conn",
        [
          Alcotest.test_case "oracle picks net transport" `Slow test_net_oracle_transport;
          Alcotest.test_case "byte-by-byte breaks SSP" `Slow
            test_byte_by_byte_over_conn_breaks_ssp;
          Alcotest.test_case "byte-by-byte fails on P-SSP" `Slow
            test_byte_by_byte_over_conn_fails_pssp;
        ] );
    ]
