(* Experiment-level integration tests: each table/figure generator must
   reproduce the paper's qualitative result (small budgets for speed;
   the full-scale numbers come from bench/main.exe). *)

let test_table5_shape () =
  (* Table V's ordering: P-SSP tiny; OWF < NT < LV(4) ; LV(2) close to NT *)
  let cost scheme criticals = Harness.Table5.measure_scheme ~calls:3000 scheme ~criticals in
  let pssp = cost Pssp.Scheme.Pssp 0 in
  let nt = cost Pssp.Scheme.Pssp_nt 0 in
  let lv2 = cost (Pssp.Scheme.Pssp_lv 1) 1 in
  let lv4 = cost (Pssp.Scheme.Pssp_lv 3) 3 in
  let owf = cost Pssp.Scheme.Pssp_owf 0 in
  Alcotest.(check bool) "P-SSP is cheap (paper: 6)" true (pssp > 2.0 && pssp < 20.0);
  Alcotest.(check bool) "NT ~ one rdrand (paper: 343)" true (nt > 250.0 && nt < 450.0);
  Alcotest.(check bool) "LV2 ~ NT (paper: 343)" true (abs_float (lv2 -. nt) < 60.0);
  Alcotest.(check bool) "LV4 ~ 3x rdrand (paper: 986)" true
    (lv4 > 2.5 *. nt && lv4 < 3.5 *. nt);
  Alcotest.(check bool) "OWF ~ two AES (paper: 278)" true (owf > 180.0 && owf < 400.0)

let test_fig5_subset () =
  let benches = List.filteri (fun i _ -> i < 3) Workload.Spec.all in
  let r = Harness.Fig5.run ~benches () in
  Alcotest.(check int) "three rows" 3 (List.length r.Harness.Fig5.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "overheads are small and non-negative" true
        (row.Harness.Fig5.compiler_pct >= -0.5 && row.Harness.Fig5.compiler_pct < 10.0))
    r.Harness.Fig5.rows

let test_parallel_runs_deterministic () =
  (* serial and parallel campaigns must emit byte-identical tables *)
  let benches = List.filteri (fun i _ -> i < 3) Workload.Spec.all in
  let render_fig5 jobs =
    Util.Table.render (Harness.Fig5.to_table (Harness.Fig5.run ~jobs ~benches ()))
  in
  Alcotest.(check string) "Fig 5: jobs=2 = jobs=1" (render_fig5 1) (render_fig5 2);
  let render_t5 jobs =
    Util.Table.render (Harness.Table5.to_table (Harness.Table5.run ~jobs ~calls:2000 ()))
  in
  Alcotest.(check string) "Table V: jobs=3 = jobs=1" (render_t5 1) (render_t5 3)

let test_table2_invariants () =
  let benches = List.filteri (fun i _ -> i < 4) Workload.Spec.all in
  let r = Harness.Table2.run ~benches () in
  List.iter
    (fun row ->
      Alcotest.(check bool) "dynamic instrumentation adds 0 bytes" true
        (row.Harness.Table2.instr_dynamic_pct = 0.0);
      Alcotest.(check bool) "compiler expansion positive, small" true
        (row.Harness.Table2.compiler_pct > 0.0 && row.Harness.Table2.compiler_pct < 10.0);
      Alcotest.(check bool) "static expansion largest" true
        (row.Harness.Table2.instr_static_pct > row.Harness.Table2.compiler_pct))
    r.Harness.Table2.rows

let test_compat_all_pass () =
  let r = Harness.Compat.run () in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Harness.Compat.scenario_name ^ " passes")
        true s.Harness.Compat.passed)
    r.Harness.Compat.scenarios

let test_theorem1 () =
  let r = Harness.Theorem1.run ~samples:20_000 () in
  Alcotest.(check bool) "C1 uniform" true r.Harness.Theorem1.uniform;
  Alcotest.(check bool) "C1 independent of C" true r.Harness.Theorem1.invariant

let test_theorem1_machine () =
  let r = Harness.Theorem1.run_machine ~children:600 () in
  Alcotest.(check int) "all pairs consistent" r.Harness.Theorem1.children
    r.Harness.Theorem1.consistent;
  Alcotest.(check bool) "pairs re-randomized" true
    (r.Harness.Theorem1.distinct_pairs > r.Harness.Theorem1.children * 9 / 10);
  Alcotest.(check bool) "C never changes" true r.Harness.Theorem1.c_stable

let test_exposure () =
  let hijacked_pssp, _ = Harness.Exposure.attack_with_leak Pssp.Scheme.Pssp in
  let hijacked_owf, _ = Harness.Exposure.attack_with_leak Pssp.Scheme.Pssp_owf in
  Alcotest.(check bool) "leak breaks P-SSP across frames" true hijacked_pssp;
  Alcotest.(check bool) "leak does not transfer under OWF" false hijacked_owf

let test_effectiveness_ssp_falls () =
  let broken, trials, _ =
    Harness.Effectiveness.attack_server ~budget:4000
      (Harness.Effectiveness.Scheme Pssp.Scheme.Ssp) ~buffer_size:16
  in
  Alcotest.(check bool) "SSP broken" true broken;
  Alcotest.(check bool) "~1024 trials" true (trials > 200 && trials < 3000)

let test_effectiveness_pssp_holds () =
  List.iter
    (fun target ->
      let broken, _, _ =
        Harness.Effectiveness.attack_server ~budget:2500 target ~buffer_size:16
      in
      Alcotest.(check bool) "resists" false broken)
    [
      Harness.Effectiveness.Scheme Pssp.Scheme.Pssp;
      Harness.Effectiveness.Scheme Pssp.Scheme.Pssp_nt;
      Harness.Effectiveness.Instrumented;
    ]

(* ---- pinned byte-by-byte outcomes for the defense families ---------------- *)

let test_effectiveness_shadow_detects_without_canary () =
  (* shadow stacks put no canary on the frame (canary_len = 0), so the
     attack has nothing to disclose: every hijack probe trips the
     epilogue's return-address check, burning a restart each time *)
  List.iter
    (fun scheme ->
      let broken, _, restarts =
        Harness.Effectiveness.attack_server ~budget:400
          (Harness.Effectiveness.Scheme scheme) ~buffer_size:16
      in
      Alcotest.(check bool) (Pssp.Scheme.name scheme ^ " resists") false broken;
      Alcotest.(check bool)
        (Pssp.Scheme.name scheme ^ " detected without canary")
        true (restarts > 0))
    [ Pssp.Scheme.Shadow_compact; Pssp.Scheme.Shadow_parallel ]

let test_effectiveness_pac_no_fork_transfer () =
  (* the PAC prologue signs a fresh random draw per call, so a canary
     byte disclosed in one forked child is stale in the next — the
     attack never accumulates a prefix *)
  let broken, _, _ =
    Harness.Effectiveness.attack_server ~budget:2500
      (Harness.Effectiveness.Scheme Pssp.Scheme.Pac_canary) ~buffer_size:16
  in
  Alcotest.(check bool) "pac-canary resists" false broken

let test_wasm_ssp_detects_only_at_epilogue () =
  (* the same wild write that traps mid-copy under ssp (SIGSEGV at the
     unmapped page past stack_top) lands silently under wasm-ssp and is
     caught only by the epilogue canary check (SIGABRT) *)
  let long_payload = Bytes.make 5000 'A' in
  let crash scheme =
    let image =
      Mcc.Driver.compile ~scheme
        (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size:16))
    in
    let oracle =
      Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image
    in
    match Attack.Oracle.query oracle long_payload with
    | Attack.Oracle.Crashed (s, _) -> Os.Process.signal_name s
    | Attack.Oracle.Survived _ -> "survived"
    | Attack.Oracle.Server_down _ -> "server-down"
  in
  Alcotest.(check string) "ssp traps mid-write" "SIGSEGV" (crash Pssp.Scheme.Ssp);
  Alcotest.(check string) "wasm-ssp detects only at the epilogue" "SIGABRT"
    (crash Pssp.Scheme.Wasm_ssp)

let test_ablation_families () =
  (* the family cells of the ablation grid: outcome + guard layout *)
  let shadow = Harness.Ablation.family_cell ~budget:400 Pssp.Scheme.Shadow_compact in
  Alcotest.(check bool) "shadow-compact resists" false
    shadow.Harness.Ablation.fam_broken;
  Alcotest.(check int) "shadow-compact keeps the guard off-frame" 0
    shadow.Harness.Ablation.fam_guard_words;
  let pac = Harness.Ablation.family_cell ~budget:400 Pssp.Scheme.Pac_canary in
  Alcotest.(check bool) "pac-canary resists" false pac.Harness.Ablation.fam_broken;
  Alcotest.(check int) "pac-canary keeps SSP's one guard word" 1
    pac.Harness.Ablation.fam_guard_words;
  Alcotest.(check bool) "pac-canary costs cycles" true
    (pac.Harness.Ablation.fam_cycles_per_call > 0.0)

let test_threaded_server_attack () =
  (* threads clone the TLS exactly like fork (SII-B), so the attack story
     must carry over: threaded SSP falls, threaded P-SSP holds (the
     preload wraps pthread_create too, SV-A) *)
  let victim =
    {|
int handle() {
  char buf[16];
  read_input(buf);
  print_str("OK\n");
  return 0;
}

int conn_worker(int arg) {
  handle();
  return 0;
}

int main() {
  while (1) {
    if (accept() < 0) {
      break;
    }
    pthread_create(&conn_worker, 0);
    waitpid();
  }
  return 0;
}
|}
  in
  let attack scheme budget =
    let image = Mcc.Driver.compile ~scheme (Minic.Parser.parse victim) in
    let oracle = Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image in
    let layout = Harness.Layouts.compiler_layout scheme ~buffer_size:16 in
    Attack.Byte_by_byte.run oracle ~layout ~max_trials:budget
  in
  (match attack Pssp.Scheme.Ssp 4000 with
  | Attack.Byte_by_byte.Broken _ -> ()
  | other ->
    Alcotest.failf "threaded SSP resisted: %s" (Attack.Byte_by_byte.outcome_to_string other));
  match attack Pssp.Scheme.Pssp 2500 with
  | Attack.Byte_by_byte.Exhausted _ -> ()
  | other ->
    Alcotest.failf "threaded P-SSP: %s" (Attack.Byte_by_byte.outcome_to_string other)

let test_ablation_nonce () =
  match Harness.Ablation.run_nonce ~budget:8000 () with
  | [ owf; weak ] ->
    Alcotest.(check bool) "OWF resists" false owf.Harness.Ablation.broken;
    Alcotest.(check bool) "no-nonce falls" true weak.Harness.Ablation.broken
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_width_scaling () =
  let rows = Harness.Ablation.run_width ~widths:[ 8; 12 ] () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "re-randomized cost within 16x of 2^(w-1)" true
        (float_of_int r.Harness.Ablation.rerand_trials
        < 16.0 *. r.Harness.Ablation.rerand_expected))
    rows

let test_ablation_global_buffer () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "no false positives across fork trees" true
        r.Harness.Ablation.all_passed)
    (Harness.Ablation.run_global_buffer ())

let test_table1_rows () =
  (* tiny-budget variant: BROP column only, to keep the suite fast *)
  let r = Harness.Table1.run ~brop_budget:3000
      ~benches:(List.filteri (fun i _ -> i < 2) Workload.Spec.all) ()
  in
  let row scheme =
    List.find
      (fun (x : Harness.Table1.row) -> Pssp.Scheme.equal x.Harness.Table1.scheme scheme)
      r.Harness.Table1.rows
  in
  Alcotest.(check bool) "SSP loses the BROP column" false
    (row Pssp.Scheme.Ssp).Harness.Table1.brop_prevented;
  Alcotest.(check bool) "P-SSP wins the BROP column" true
    (row Pssp.Scheme.Pssp).Harness.Table1.brop_prevented;
  Alcotest.(check bool) "RAF fails correctness" false
    (row Pssp.Scheme.Raf_ssp).Harness.Table1.correct;
  Alcotest.(check bool) "DynaGuard correct" true
    (row Pssp.Scheme.Dynaguard).Harness.Table1.correct;
  Alcotest.(check bool) "DCR correct" true (row Pssp.Scheme.Dcr).Harness.Table1.correct

let test_servers_measurable () =
  let r = Harness.Table34.run_web ~requests:20 () in
  List.iter
    (fun row ->
      Alcotest.(check bool) "positive time" true (row.Harness.Table34.native_ms > 0.0);
      Alcotest.(check bool) "P-SSP within 1% of native" true
        (abs_float (row.Harness.Table34.compiler_ms -. row.Harness.Table34.native_ms)
        /. row.Harness.Table34.native_ms
        < 0.01))
    r.Harness.Table34.rows

let () =
  Alcotest.run "harness"
    [
      ( "experiments",
        [
          Alcotest.test_case "Table V shape" `Slow test_table5_shape;
          Alcotest.test_case "Fig 5 subset" `Slow test_fig5_subset;
          Alcotest.test_case "parallel runs deterministic" `Slow
            test_parallel_runs_deterministic;
          Alcotest.test_case "Table II invariants" `Slow test_table2_invariants;
          Alcotest.test_case "compatibility" `Slow test_compat_all_pass;
          Alcotest.test_case "Theorem 1" `Slow test_theorem1;
          Alcotest.test_case "Theorem 1 (machine level)" `Slow test_theorem1_machine;
          Alcotest.test_case "exposure resilience" `Slow test_exposure;
          Alcotest.test_case "SSP falls" `Slow test_effectiveness_ssp_falls;
          Alcotest.test_case "P-SSP holds" `Slow test_effectiveness_pssp_holds;
          Alcotest.test_case "shadow stacks detect without canary" `Slow
            test_effectiveness_shadow_detects_without_canary;
          Alcotest.test_case "PAC disclosure does not transfer across forks"
            `Slow test_effectiveness_pac_no_fork_transfer;
          Alcotest.test_case "wasm-ssp detects only at the epilogue" `Slow
            test_wasm_ssp_detects_only_at_epilogue;
          Alcotest.test_case "family ablation cells" `Slow test_ablation_families;
          Alcotest.test_case "threaded-server attack" `Slow test_threaded_server_attack;
          Alcotest.test_case "nonce ablation" `Slow test_ablation_nonce;
          Alcotest.test_case "width ablation" `Slow test_ablation_width_scaling;
          Alcotest.test_case "global buffer ablation" `Quick test_ablation_global_buffer;
          Alcotest.test_case "Table I verdicts" `Slow test_table1_rows;
          Alcotest.test_case "servers measurable" `Slow test_servers_measurable;
        ] );
    ]
