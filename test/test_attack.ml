(* Attack framework tests: the oracle, payload construction, and the
   byte-by-byte / exhaustive campaigns on small budgets. *)

let compile ?(scheme = Pssp.Scheme.Ssp) src =
  Mcc.Driver.compile ~scheme (Minic.Parser.parse src)

let oracle ?(scheme = Pssp.Scheme.Ssp) ?(buffer_size = 16) () =
  let image = compile ~scheme (Workload.Vuln.fork_server ~buffer_size) in
  Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image

let layout ?(scheme = Pssp.Scheme.Ssp) ?(buffer_size = 16) () =
  {
    Attack.Payload.overflow_distance = buffer_size;
    canary_len = 8 * Pssp.Scheme.stack_words scheme;
  }

(* ---- oracle -------------------------------------------------------------------- *)

let test_oracle_benign () =
  let o = oracle () in
  (match Attack.Oracle.query o (Bytes.of_string "hello") with
  | Attack.Oracle.Survived out ->
    Alcotest.(check string) "child replied" "OK\n" out
  | _ -> Alcotest.fail "benign request crashed");
  Alcotest.(check int) "one query" 1 (Attack.Oracle.queries o)

let test_oracle_crash_signal () =
  let o = oracle () in
  match Attack.Oracle.query o (Bytes.make 64 'A') with
  | Attack.Oracle.Crashed (Os.Process.Sigabrt, msg) ->
    Alcotest.(check bool) "canary message" true
      (String.length msg > 0 && msg.[0] = '*')
  | _ -> Alcotest.fail "expected canary abort"

let test_oracle_survives_many_crashes () =
  let o = oracle () in
  for _ = 1 to 30 do
    ignore (Attack.Oracle.query o (Bytes.make 64 'B'))
  done;
  (match Attack.Oracle.query o (Bytes.of_string "fine") with
  | Attack.Oracle.Survived _ -> ()
  | _ -> Alcotest.fail "server should still answer");
  Alcotest.(check bool) "alive" true (Attack.Oracle.server_alive o)

(* ---- payloads ------------------------------------------------------------------- *)

let test_guess_prefix_shape () =
  let l = layout () in
  let p = Attack.Payload.guess_prefix l ~known:(Bytes.of_string "\x11\x22") ~guess:0x33 in
  Alcotest.(check int) "length" (16 + 2 + 1) (Bytes.length p);
  Alcotest.(check char) "filler" 'A' (Bytes.get p 0);
  Alcotest.(check int) "known byte replayed" 0x11 (Char.code (Bytes.get p 16));
  Alcotest.(check int) "guess byte last" 0x33 (Char.code (Bytes.get p 18))

let test_guess_prefix_full_canary_rejected () =
  let l = layout () in
  Alcotest.check_raises "full canary"
    (Invalid_argument "Payload.guess_prefix: canary already fully known")
    (fun () ->
      ignore (Attack.Payload.guess_prefix l ~known:(Bytes.create 8) ~guess:0))

let test_hijack_shape () =
  let l = layout () in
  let p = Attack.Payload.hijack l ~canary:(Bytes.make 8 'C') in
  Alcotest.(check int) "length covers rbp+ret" (16 + 8 + 16) (Bytes.length p);
  Alcotest.(check bool) "ret = magic" true
    (Bytes.get_int64_le p (16 + 8 + 8) = Attack.Payload.magic_ret)

let test_stealth_shape () =
  let l = layout () in
  let p = Attack.Payload.stealth_corruption l ~canary:(Bytes.make 8 'C') in
  Alcotest.(check int) "stops before ret" (16 + 8 + 8) (Bytes.length p)

let test_hijacked_detection () =
  Alcotest.(check bool) "segv at magic" true
    (Attack.Payload.hijacked
       (Attack.Oracle.Crashed
          (Os.Process.Sigsegv, "segmentation fault at 0xdead0000")));
  Alcotest.(check bool) "other segv" false
    (Attack.Payload.hijacked
       (Attack.Oracle.Crashed (Os.Process.Sigsegv, "segmentation fault at 0x1234")));
  Alcotest.(check bool) "abort is not hijack" false
    (Attack.Payload.hijacked
       (Attack.Oracle.Crashed (Os.Process.Sigabrt, "0xdead0000")));
  Alcotest.(check bool) "survival is not hijack" false
    (Attack.Payload.hijacked (Attack.Oracle.Survived "0xdead0000"))

(* ---- campaigns -------------------------------------------------------------------- *)

let test_byte_by_byte_breaks_ssp () =
  let o = oracle ~scheme:Pssp.Scheme.Ssp () in
  match Attack.Byte_by_byte.run o ~layout:(layout ()) ~max_trials:4000 with
  | Attack.Byte_by_byte.Broken { trials; canary } ->
    Alcotest.(check bool) "order of 8*128 trials (SII-B)" true
      (trials > 100 && trials < 3000);
    Alcotest.(check int) "recovered 8 bytes" 8 (Bytes.length canary)
  | other -> Alcotest.failf "SSP resisted: %s" (Attack.Byte_by_byte.outcome_to_string other)

let test_recovered_canary_is_the_real_one () =
  (* the recovered canary must equal the TLS canary of the victim *)
  let image = compile (Workload.Vuln.fork_server ~buffer_size:16) in
  let kernel_seed = 0xA77ACCL in
  let o = Attack.Oracle.create ~seed:kernel_seed image in
  match Attack.Byte_by_byte.run o ~layout:(layout ()) ~max_trials:4000 with
  | Attack.Byte_by_byte.Broken { canary; _ } ->
    (* replay against a fresh oracle with the same seed: first try wins *)
    let o2 = Attack.Oracle.create ~seed:kernel_seed image in
    let response = Attack.Oracle.query o2 (Attack.Payload.hijack (layout ()) ~canary) in
    Alcotest.(check bool) "one-shot replay hijacks" true
      (Attack.Payload.hijacked response)
  | other -> Alcotest.failf "%s" (Attack.Byte_by_byte.outcome_to_string other)

let test_byte_by_byte_fails_on_pssp () =
  let o = oracle ~scheme:Pssp.Scheme.Pssp () in
  match
    Attack.Byte_by_byte.run o ~layout:(layout ~scheme:Pssp.Scheme.Pssp ())
      ~max_trials:3000
  with
  | Attack.Byte_by_byte.Exhausted { max_bytes_recovered; _ } ->
    Alcotest.(check bool) "no accumulation (Theorem 1)" true
      (max_bytes_recovered <= 3)
  | other -> Alcotest.failf "unexpected: %s" (Attack.Byte_by_byte.outcome_to_string other)

let test_exhaustive_fails_within_budget () =
  let o = oracle ~scheme:Pssp.Scheme.Pssp () in
  match
    Attack.Exhaustive.run o ~layout:(layout ~scheme:Pssp.Scheme.Pssp ())
      ~max_trials:500
  with
  | Attack.Exhaustive.Exhausted { trials } -> Alcotest.(check int) "budget" 500 trials
  | other -> Alcotest.failf "unexpected: %s" (Attack.Exhaustive.outcome_to_string other)

(* ---- detection guarantees (property) --------------------------------------- *)

(* Any payload overwriting the whole canary region with random bytes is
   caught (a silent pass needs a full 64/128-bit collision). Payloads
   that stop exactly at the buffer boundary never trip anything. *)
let prop_full_overwrite_always_caught scheme =
  let o = oracle ~scheme () in
  let l = layout ~scheme () in
  QCheck.Test.make
    ~name:(Printf.sprintf "full overwrite always caught (%s)" (Pssp.Scheme.name scheme))
    ~count:60
    QCheck.(int_bound 0xFFFFFF)
    (fun seed ->
      let rng = Util.Prng.create (Int64.of_int seed) in
      let payload =
        Util.Prng.bytes rng (l.Attack.Payload.overflow_distance + l.Attack.Payload.canary_len + 16)
      in
      match Attack.Oracle.query o payload with
      | Attack.Oracle.Crashed _ -> true
      | Attack.Oracle.Survived _ | Attack.Oracle.Server_down _ -> false)

let prop_boundary_never_trips scheme =
  let o = oracle ~scheme () in
  QCheck.Test.make
    ~name:(Printf.sprintf "boundary writes never trip (%s)" (Pssp.Scheme.name scheme))
    ~count:60
    QCheck.(int_bound 0xFFFFFF)
    (fun seed ->
      let rng = Util.Prng.create (Int64.of_int seed) in
      let len = 1 + Util.Prng.int rng 16 (* at most fills the buffer *) in
      match Attack.Oracle.query o (Util.Prng.bytes rng len) with
      | Attack.Oracle.Survived _ -> true
      | Attack.Oracle.Crashed _ | Attack.Oracle.Server_down _ -> false)

let () =
  Alcotest.run "attack"
    [
      ( "oracle",
        [
          Alcotest.test_case "benign query" `Quick test_oracle_benign;
          Alcotest.test_case "crash signal" `Quick test_oracle_crash_signal;
          Alcotest.test_case "survives crashes" `Quick test_oracle_survives_many_crashes;
        ] );
      ( "payload",
        [
          Alcotest.test_case "guess prefix" `Quick test_guess_prefix_shape;
          Alcotest.test_case "full canary rejected" `Quick
            test_guess_prefix_full_canary_rejected;
          Alcotest.test_case "hijack" `Quick test_hijack_shape;
          Alcotest.test_case "stealth" `Quick test_stealth_shape;
          Alcotest.test_case "hijack detection" `Quick test_hijacked_detection;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "byte-by-byte breaks SSP" `Slow test_byte_by_byte_breaks_ssp;
          Alcotest.test_case "recovered canary replays" `Slow
            test_recovered_canary_is_the_real_one;
          Alcotest.test_case "byte-by-byte fails on P-SSP" `Slow
            test_byte_by_byte_fails_on_pssp;
          Alcotest.test_case "exhaustive exhausts" `Slow test_exhaustive_fails_within_budget;
        ] );
      ( "guarantees",
        [
          QCheck_alcotest.to_alcotest (prop_full_overwrite_always_caught Pssp.Scheme.Ssp);
          QCheck_alcotest.to_alcotest (prop_full_overwrite_always_caught Pssp.Scheme.Pssp);
          QCheck_alcotest.to_alcotest (prop_full_overwrite_always_caught Pssp.Scheme.Pssp_owf);
          QCheck_alcotest.to_alcotest (prop_boundary_never_trips Pssp.Scheme.Ssp);
          QCheck_alcotest.to_alcotest (prop_boundary_never_trips Pssp.Scheme.Pssp);
          QCheck_alcotest.to_alcotest (prop_boundary_never_trips Pssp.Scheme.Pssp_owf);
        ] );
    ]
