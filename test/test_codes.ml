(* Conformance against the paper's listings: the instruction sequences
   the compiler and rewriter emit must match Codes 1-5 and 7-9
   instruction-for-instruction (with our documented adaptations; see
   DESIGN.md SS5). Expected sequences are written as assembly text and
   parsed with Asm_parser, so these tests read like the paper. *)

let normalise_targets insn =
  (* jump/call destinations differ by layout; compare shape only *)
  match insn with
  | Isa.Insn.Jmp _ -> Isa.Insn.Jmp (Isa.Insn.Abs 0L)
  | Isa.Insn.Jcc (c, _) -> Isa.Insn.Jcc (c, Isa.Insn.Abs 0L)
  | Isa.Insn.Call _ -> Isa.Insn.Call (Isa.Insn.Abs 0L)
  | other -> other

let parse_expected text =
  List.filter_map
    (function `Insn i -> Some (normalise_targets i) | `Label _ -> None)
    (Isa.Asm_parser.parse_listing text)

let listing_of ?(instrumented = false) scheme =
  let image =
    Mcc.Driver.compile ~scheme
      (Minic.Parser.parse
         "int f() { char b[16]; read_input(b); return 0; } int main() { return f(); }")
  in
  let image =
    if instrumented then fst (Rewriter.Driver.instrument image) else image
  in
  List.map (fun (_, i) -> normalise_targets i) (Os.Image.disassemble_symbol image "f")

(* does [needle] appear as a contiguous subsequence of [haystack]? *)
let contains_seq haystack needle =
  let h = Array.of_list haystack in
  let n = Array.of_list needle in
  let hl = Array.length h and nl = Array.length n in
  let rec at i j = j = nl || (Isa.Insn.equal h.(i + j) n.(j) && at i (j + 1)) in
  let rec scan i = i + nl <= hl && (at i 0 || scan (i + 1)) in
  nl > 0 && scan 0

let check_contains ?instrumented scheme ~what expected_text =
  let listing = listing_of ?instrumented scheme in
  let expected = parse_expected expected_text in
  if not (contains_seq listing expected) then
    Alcotest.failf "%s missing from %s; emitted:\n%s" what
      (Pssp.Scheme.name scheme)
      (String.concat "\n" (List.map Isa.Asm.to_string listing))

(* ---- Code 1/2: SSP ----------------------------------------------------------- *)

let test_code1_ssp_prologue () =
  check_contains Pssp.Scheme.Ssp ~what:"Code 1 (SSP prologue)"
    {|
      mov    %fs:0x28,%rax
      mov    %rax,-0x8(%rbp)
    |}

let test_code2_ssp_epilogue () =
  check_contains Pssp.Scheme.Ssp ~what:"Code 2 (SSP epilogue)"
    {|
      mov    -0x8(%rbp),%rdx
      xor    %fs:0x28,%rdx
      je     0x0
      callq  0x0
      leaveq
      retq
    |}

(* ---- Code 3/4: compiler-based P-SSP ------------------------------------------- *)

let test_code3_pssp_prologue () =
  check_contains Pssp.Scheme.Pssp ~what:"Code 3 (P-SSP prologue)"
    {|
      mov    %fs:0x2a8,%rax
      mov    %rax,-0x8(%rbp)
      mov    %fs:0x2b0,%rax
      mov    %rax,-0x10(%rbp)
    |}

let test_code4_pssp_epilogue () =
  check_contains Pssp.Scheme.Pssp ~what:"Code 4 (P-SSP epilogue)"
    {|
      mov    -0x8(%rbp),%rdx
      mov    -0x10(%rbp),%rdi
      xor    %rdi,%rdx
      xor    %fs:0x28,%rdx
      je     0x0
      callq  0x0
      leaveq
      retq
    |}

(* ---- Code 5/6: instrumentation-based P-SSP ------------------------------------ *)

let test_code5_instrumented_prologue () =
  (* "Line 4 is the only instruction that is different from the SSP
     function prologue" *)
  check_contains ~instrumented:true Pssp.Scheme.Ssp
    ~what:"Code 5 (instrumented prologue)"
    {|
      mov    %fs:0x2a8,%rax
      mov    %rax,-0x8(%rbp)
    |}

let test_code6_instrumented_epilogue () =
  (* our documented adaptation: the canary word travels in rdi and the
     xor is replaced by the call into the check routine *)
  check_contains ~instrumented:true Pssp.Scheme.Ssp
    ~what:"Code 6 (instrumented epilogue)"
    {|
      mov    -0x8(%rbp),%rdi
      callq  0x0
      je     0x0
      callq  0x0
      leaveq
      retq
    |}

let test_instrumented_same_length () =
  (* the SV-C property behind Codes 5/6: identical byte layout *)
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp
      (Minic.Parser.parse
         "int f() { char b[16]; read_input(b); return 0; } int main() { return f(); }")
  in
  let patched, _ = Rewriter.Driver.instrument image in
  List.iter2
    (fun (a, _) (b, _) ->
      Alcotest.(check bool) "instruction addresses identical" true (Int64.equal a b))
    (Os.Image.disassemble_symbol image "f")
    (Os.Image.disassemble_symbol patched "f")

(* ---- Code 7: P-SSP-NT ---------------------------------------------------------- *)

let test_code7_nt_prologue () =
  check_contains Pssp.Scheme.Pssp_nt ~what:"Code 7 (P-SSP-NT prologue)"
    {|
      rdrand %rax
      mov    %rax,-0x8(%rbp)
      mov    %fs:0x28,%rcx
      xor    %rax,%rcx
      mov    %rcx,-0x10(%rbp)
    |}

(* ---- Code 8/9: P-SSP-OWF -------------------------------------------------------- *)

let test_code8_owf_prologue () =
  check_contains Pssp.Scheme.Pssp_owf ~what:"Code 8 (P-SSP-OWF prologue)"
    {|
      rdtsc
      shl    $32,%rdx
      or     %rdx,%rax
      mov    %rax,-0x8(%rbp)
      movq   %rax,%xmm15
      movhps 0x8(%rbp),%xmm15
      movq   %r13,%xmm1
      pinsrq $1,%r12,%xmm1
      callq  0x0
      movdqu %xmm15,-0x18(%rbp)
    |}

let test_code9_owf_epilogue () =
  check_contains Pssp.Scheme.Pssp_owf ~what:"Code 9 (P-SSP-OWF epilogue)"
    {|
      movq   %r13,%xmm1
      pinsrq $1,%r12,%xmm1
      push   %rax
      callq  0x0
      pop    %rax
      pcmpeq128 -0x18(%rbp),%xmm15
      je     0x0
      callq  0x0
      leaveq
      retq
    |}

(* ---- the OWF helper really is AES --------------------------------------------- *)

let test_owf_canary_is_aes_of_nonce_and_ret () =
  (* run an OWF-guarded function to its accept pause and recompute its
     stack canary with the crypto library directly *)
  let src =
    {|
int f() {
  char b[16];
  b[0] = 1;
  accept();
  return b[0];
}

int main() { return f(); }
|}
  in
  let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp_owf (Minic.Parser.parse src) in
  let kernel = Os.Kernel.create () in
  let proc = Os.Kernel.spawn kernel image in
  Os.Kernel.enqueue kernel proc;
  Os.Kernel.schedule kernel;
  (match Os.Kernel.stop_of proc with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "pause: %s" (Os.Kernel.stop_to_string other));
  let cpu = proc.Os.Process.cpu in
  let mem = proc.Os.Process.mem in
  let rbp = Vm64.Cpu.get cpu Isa.Reg.RBP in
  let nonce = Vm64.Memory.read_u64 mem (Int64.sub rbp 8L) in
  let ret = Vm64.Memory.read_u64 mem (Int64.add rbp 8L) in
  let ct_lo = Vm64.Memory.read_u64 mem (Int64.sub rbp 24L) in
  let ct_hi = Vm64.Memory.read_u64 mem (Int64.sub rbp 16L) in
  let f =
    Crypto.Oneway.create
      ~key_lo:(Vm64.Cpu.get cpu Isa.Reg.R13)
      ~key_hi:(Vm64.Cpu.get cpu Isa.Reg.R12)
  in
  let exp_lo, exp_hi = Crypto.Oneway.evaluate f ~ret ~nonce in
  Alcotest.(check bool) "stack canary = AES_k(nonce || ret)" true
    (Int64.equal ct_lo exp_lo && Int64.equal ct_hi exp_hi)

let () =
  Alcotest.run "codes"
    [
      ( "paper listings",
        [
          Alcotest.test_case "Code 1: SSP prologue" `Quick test_code1_ssp_prologue;
          Alcotest.test_case "Code 2: SSP epilogue" `Quick test_code2_ssp_epilogue;
          Alcotest.test_case "Code 3: P-SSP prologue" `Quick test_code3_pssp_prologue;
          Alcotest.test_case "Code 4: P-SSP epilogue" `Quick test_code4_pssp_epilogue;
          Alcotest.test_case "Code 5: instrumented prologue" `Quick
            test_code5_instrumented_prologue;
          Alcotest.test_case "Code 6: instrumented epilogue" `Quick
            test_code6_instrumented_epilogue;
          Alcotest.test_case "Codes 5/6: byte layout preserved" `Quick
            test_instrumented_same_length;
          Alcotest.test_case "Code 7: P-SSP-NT prologue" `Quick test_code7_nt_prologue;
          Alcotest.test_case "Code 8: P-SSP-OWF prologue" `Quick test_code8_owf_prologue;
          Alcotest.test_case "Code 9: P-SSP-OWF epilogue" `Quick test_code9_owf_epilogue;
          Alcotest.test_case "OWF canary is AES(nonce||ret)" `Quick
            test_owf_canary_is_aes_of_nonce_and_ret;
        ] );
    ]
