(* Differential fuzzing: randomly generated Mini-C programs must behave
   identically under every protection scheme, the peephole optimiser,
   and the binary rewriter. Any divergence is a real bug in the
   compiler, a scheme's prologue/epilogue, or the rewriter. *)

let run_image ?(input = Bytes.create 0) image preload =
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~input ~preload image in
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule ~fuel:20_000_000 k;
  (Os.Kernel.stop_of p, Os.Process.stdout p)

let build_variants program =
  let compiled scheme optimize =
    ( Printf.sprintf "%s%s" (Pssp.Scheme.name scheme) (if optimize then "+O" else ""),
      Mcc.Driver.compile ~scheme ~optimize program,
      Mcc.Driver.preload_for scheme )
  in
  let instrumented =
    let ssp = Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp program in
    let image, _ = Rewriter.Driver.instrument ssp in
    ("instrumented", image, Rewriter.Driver.required_preload image)
  in
  [
    compiled Pssp.Scheme.None_ false;
    compiled Pssp.Scheme.None_ true;
    compiled Pssp.Scheme.Ssp false;
    compiled Pssp.Scheme.Pssp false;
    compiled Pssp.Scheme.Pssp true;
    compiled Pssp.Scheme.Pssp_nt false;
    compiled Pssp.Scheme.Pssp_owf false;
    compiled Pssp.Scheme.Dcr false;
    compiled Pssp.Scheme.Pssp_gb false;
    compiled Pssp.Scheme.Shadow_compact false;
    compiled Pssp.Scheme.Shadow_parallel false;
    compiled Pssp.Scheme.Pac_canary false;
    compiled Pssp.Scheme.Wasm_ssp false;
    instrumented;
  ]

let check_seed seed =
  let program = Workload.Progen.generate ~seed in
  match build_variants program with
  | [] -> assert false
  | (label0, image0, preload0) :: rest ->
    let reference = run_image image0 preload0 in
    (match fst reference with
    | Os.Kernel.Stop_exit 0 -> ()
    | other ->
      Alcotest.failf "seed %Ld: %s did not exit 0: %s\nsource:\n%s" seed label0
        (Os.Kernel.stop_to_string other)
        (Workload.Progen.generate_source ~seed));
    List.iter
      (fun (label, image, preload) ->
        let got = run_image image preload in
        if got <> reference then
          Alcotest.failf
            "seed %Ld: %s diverges from %s\n  ref: %s %S\n  got: %s %S\nsource:\n%s"
            seed label label0
            (Os.Kernel.stop_to_string (fst reference))
            (snd reference)
            (Os.Kernel.stop_to_string (fst got))
            (snd got)
            (Workload.Progen.generate_source ~seed))
      rest

let test_fixed_seeds () =
  List.iter (fun s -> check_seed (Int64.of_int s)) (List.init 25 (fun i -> i * 7919))

let prop_random_seeds =
  QCheck.Test.make ~name:"random programs agree across schemes" ~count:15
    QCheck.int64 (fun seed ->
      check_seed seed;
      true)

let test_generated_parse_roundtrip () =
  (* generated sources must round-trip through the parser *)
  List.iter
    (fun i ->
      let seed = Int64.of_int (i * 104729) in
      let src = Workload.Progen.generate_source ~seed in
      let ast = Minic.Parser.parse src in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld pretty/parse" seed)
        true
        (Minic.Pretty.program_to_string ast = src))
    (List.init 10 (fun i -> i))

let test_generated_are_guarded () =
  (* every generated function owns a buffer, so canary code covers it *)
  let program = Workload.Progen.generate ~seed:42L in
  let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp program in
  let sites = Rewriter.Scan.scan image in
  (* every generated fnN owns a buffer; main does not *)
  Alcotest.(check int) "all generated functions guarded"
    (List.length program.Minic.Ast.funcs - 1)
    (List.length sites.Rewriter.Scan.prologues)

let () =
  Alcotest.run "progen"
    [
      ( "differential",
        [
          Alcotest.test_case "25 fixed seeds x 9 builds" `Slow test_fixed_seeds;
          QCheck_alcotest.to_alcotest prop_random_seeds;
          Alcotest.test_case "pretty/parse roundtrip" `Quick test_generated_parse_roundtrip;
          Alcotest.test_case "all functions guarded" `Quick test_generated_are_guarded;
        ] );
    ]
