(* Campaign sharding: serial output is byte-identical to any shard
   count, shards partition the cell space, and merged registry
   snapshots equal the serial ones. *)

let capture_stdout f =
  flush stdout;
  let file = Filename.temp_file "capture" ".out" in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  let r =
    try f ()
    with e ->
      restore ();
      Sys.remove file;
      raise e
  in
  restore ();
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove file;
  (r, s)

let metrics = Alcotest.(list (pair string int))

let check_shard_invariant name campaign =
  let serial_metrics, serial_out = capture_stdout (fun () -> Harness.Campaign.run campaign) in
  Alcotest.(check bool) (name ^ ": serial output nonempty") true (String.length serial_out > 0);
  List.iter
    (fun shards ->
      let m, out =
        capture_stdout (fun () -> Harness.Campaign.run ~shards campaign)
      in
      Alcotest.(check string)
        (Printf.sprintf "%s: %d-shard stdout byte-identical" name shards)
        serial_out out;
      Alcotest.check metrics
        (Printf.sprintf "%s: %d-shard metrics identical" name shards)
        serial_metrics m)
    [ 2; 4 ]

(* ---- the two campaigns the CI smoke step shards ---------------------------- *)

let test_effectiveness_shard_identical () =
  check_shard_invariant "effectiveness"
    (Harness.Effectiveness.campaign ~budget:1_500 ())

let test_loadbench_shard_identical () =
  check_shard_invariant "loadbench"
    (Harness.Loadbench.campaign ~mode:Net.Loadgen.Closed ~connections:16
       ~keepalive:4
       ~archs:[ Harness.Loadbench.Fork; Harness.Loadbench.Event ]
       ~total:64 ())

(* a cheap structural campaign exercises jobs x shards composition *)
let test_shard_with_jobs () =
  let c = Harness.Table2.campaign () in
  let serial_metrics, serial_out = capture_stdout (fun () -> Harness.Campaign.run c) in
  let m, out =
    capture_stdout (fun () -> Harness.Campaign.run ~jobs:2 ~shards:3 c)
  in
  Alcotest.(check string) "jobs=2 shards=3 stdout" serial_out out;
  Alcotest.check metrics "jobs=2 shards=3 metrics" serial_metrics m

(* ---- partitioning ----------------------------------------------------------- *)

let test_shards_partition_cells () =
  let c = Harness.Effectiveness.campaign ~budget:200 () in
  let shards = 3 in
  let owned =
    List.concat_map
      (fun k -> Harness.Campaign.shard_cells c ~shards ~shard:k)
      (List.init shards Fun.id)
  in
  Alcotest.(check (list int))
    "every cell owned exactly once"
    (List.init c.Harness.Campaign.cells Fun.id)
    (List.sort compare owned);
  (* shard rows carry their original indices *)
  let rows = Harness.Campaign.run_shard c ~shards ~shard:1 in
  Alcotest.(check (list int))
    "row indices = owned cells"
    (Harness.Campaign.shard_cells c ~shards ~shard:1)
    (List.map fst rows)

let test_render_rejects_missing_cell () =
  let c = Harness.Table2.campaign () in
  let rows = Harness.Campaign.run_shard c ~shards:2 ~shard:0 in
  (* half the cells are missing: render must refuse, not print garbage *)
  match capture_stdout (fun () -> Harness.Campaign.render c rows) with
  | _ -> Alcotest.fail "render with missing cells must fail"
  | exception Failure _ -> ()

let test_run_shard_validates_ranges () =
  let c = Harness.Table2.campaign () in
  (match Harness.Campaign.run_shard c ~shards:0 ~shard:0 with
  | _ -> Alcotest.fail "shards=0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Harness.Campaign.run_shard c ~shards:2 ~shard:2 with
  | _ -> Alcotest.fail "shard out of range must be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "shard"
    [
      ( "byte identity",
        [
          Alcotest.test_case "effectiveness: serial = 2-shard = 4-shard" `Slow
            test_effectiveness_shard_identical;
          Alcotest.test_case "loadbench: serial = 2-shard = 4-shard" `Slow
            test_loadbench_shard_identical;
          Alcotest.test_case "table2 under jobs=2 shards=3" `Quick
            test_shard_with_jobs;
        ] );
      ( "partitioning",
        [
          Alcotest.test_case "shards tile the cell space" `Quick
            test_shards_partition_cells;
          Alcotest.test_case "render rejects missing cells" `Quick
            test_render_rejects_missing_cell;
          Alcotest.test_case "run_shard validates ranges" `Quick
            test_run_shard_validates_ranges;
        ] );
    ]
