(* Edge cases and fault injection across the substrate: stack
   exhaustion, fuel, pathological programs, runtime-library corners. *)

let compile ?(scheme = Pssp.Scheme.None_) src =
  Mcc.Driver.compile ~scheme (Minic.Parser.parse src)

let run ?input ?fuel ?(scheme = Pssp.Scheme.None_) src =
  let k = Os.Kernel.create () in
  let p =
    Os.Kernel.spawn k ?input ~preload:(Mcc.Driver.preload_for scheme)
      (compile ~scheme src)
  in
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule ?fuel k;
  (Os.Kernel.stop_of p, p)

(* ---- stack behaviour ----------------------------------------------------- *)

let test_stack_exhaustion_hits_guard () =
  (* unbounded recursion must fault in the unmapped guard below the
     stack, not silently corrupt other mappings *)
  let stop, _ =
    run {|
int dive(int n) {
  char pad[512];
  pad[0] = n;
  return dive(n + 1) + pad[0];
}

int main() { return dive(0); }
|}
  in
  match stop with
  | Os.Kernel.Stop_kill (Os.Process.Sigsegv, msg) ->
    (* the fault address must be below the mapped stack *)
    Alcotest.(check bool) "segfault message" true (String.length msg > 0)
  | other -> Alcotest.failf "expected stack overflow: %s" (Os.Kernel.stop_to_string other)

let test_deep_but_bounded_recursion () =
  let stop, p =
    run {|
int sum(int n) {
  if (n == 0) { return 0; }
  return n + sum(n - 1);
}

int main() { print_int(sum(1000)); return 0; }
|}
  in
  Alcotest.(check bool) "completes" true (stop = Os.Kernel.Stop_exit 0);
  Alcotest.(check string) "gauss" "500500" (Os.Process.stdout p)

let test_fuel_exhaustion () =
  let stop, _ = run ~fuel:5000 "int main() { while (1) { } return 0; }" in
  Alcotest.(check bool) "out of fuel" true (stop = Os.Kernel.Stop_fuel)

let test_guarded_recursion_under_pssp_nt () =
  (* every recursive frame draws fresh rdrand canaries; the stack of
     canaries must unwind cleanly *)
  let stop, p =
    run ~scheme:Pssp.Scheme.Pssp_nt
      {|
int walk(int n) {
  char b[8];
  b[0] = n;
  if (n == 0) { return 0; }
  return walk(n - 1) + b[0];
}

int main() { print_int(walk(64)); return 0; }
|}
  in
  Alcotest.(check bool) "ok" true (stop = Os.Kernel.Stop_exit 0);
  Alcotest.(check string) "sum of low bytes" "2080" (Os.Process.stdout p)

let test_gb_scheme_deep_recursion () =
  (* the global buffer must stay balanced across deep guarded recursion *)
  let stop, _ =
    run ~scheme:Pssp.Scheme.Pssp_gb
      {|
int walk(int n) {
  char b[8];
  b[0] = n;
  if (n == 0) { return 0; }
  return walk(n - 1) + b[0];
}

int main() { return walk(200) & 127; }
|}
  in
  match stop with
  | Os.Kernel.Stop_exit _ -> ()
  | other -> Alcotest.failf "gb recursion: %s" (Os.Kernel.stop_to_string other)

(* ---- runtime library corners ---------------------------------------------- *)

let test_read_n_partial_and_empty () =
  let stop, p =
    run ~input:(Bytes.of_string "xyz")
      {|
int main() {
  char a[8];
  char b[8];
  print_int(read_n(a, 2));
  print_int(read_n(b, 8));
  print_int(read_n(a, 4));
  return 0;
}
|}
  in
  Alcotest.(check bool) "ok" true (stop = Os.Kernel.Stop_exit 0);
  (* 2 bytes, then the remaining 1, then 0 *)
  Alcotest.(check string) "cursor semantics" "210" (Os.Process.stdout p)

let test_malloc_exhaustion_returns_null () =
  let stop, p =
    run
      {|
int main() {
  int hits = 0;
  int i;
  for (i = 0; i < 100; i++) {
    if (malloc(65536) == 0) {
      hits++;
    }
  }
  print_int(hits);
  return 0;
}
|}
  in
  Alcotest.(check bool) "ok" true (stop = Os.Kernel.Stop_exit 0);
  (* heap is 256 KiB: after ~4 large blocks, malloc must return NULL *)
  Alcotest.(check bool) "eventually NULL, not a crash" true
    (int_of_string (Os.Process.stdout p) >= 90)

let test_string_edge_cases () =
  let _, p =
    run
      {|
int main() {
  char a[16];
  char b[16];
  a[0] = 0;
  print_int(strlen(a));
  strcpy(b, "");
  print_int(strlen(b));
  strcat(b, "xy");
  print_int(strcmp(b, "xy"));
  print_int(memcmp(a, b, 0));
  return 0;
}
|}
  in
  Alcotest.(check string) "empty-string semantics" "0000" (Os.Process.stdout p)

let test_char_param_truncation () =
  let _, p =
    run
      {|
int low(char c) {
  return c;
}

int main() {
  print_int(low(300));
  return 0;
}
|}
  in
  (* char params are stored in 8-byte slots but loaded through the char
     path when read as locals; passing 300 through an int path keeps the
     value — the declared type governs loads from memory, so this
     documents by-register char passing *)
  Alcotest.(check bool) "documented behaviour" true
    (Os.Process.stdout p = "300" || Os.Process.stdout p = "44")

(* ---- pathological but legal programs --------------------------------------- *)

let test_empty_main () =
  let stop, _ = run "int main() { return 0; }" in
  Alcotest.(check bool) "ok" true (stop = Os.Kernel.Stop_exit 0)

let test_many_locals () =
  let decls = String.concat "\n" (List.init 120 (fun i -> Printf.sprintf "  int v%d = %d;" i i)) in
  let sum = String.concat " + " (List.init 120 (fun i -> Printf.sprintf "v%d" i)) in
  let src = Printf.sprintf "int main() {\n%s\n  print_int(%s);\n  return 0;\n}" decls sum in
  let stop, p = run src in
  Alcotest.(check bool) "ok" true (stop = Os.Kernel.Stop_exit 0);
  Alcotest.(check string) "sum" "7140" (Os.Process.stdout p)

let test_large_buffer_frame () =
  let stop, _ =
    run ~scheme:Pssp.Scheme.Pssp
      {|
int main() {
  char big[16384];
  big[0] = 1;
  big[16383] = 2;
  return big[0] + big[16383];
}
|}
  in
  Alcotest.(check bool) "16K frame ok" true (stop = Os.Kernel.Stop_exit 3)

let test_deeply_nested_expressions () =
  let expr = String.concat "" (List.init 60 (fun _ -> "(1 + ")) ^ "0"
             ^ String.concat "" (List.init 60 (fun _ -> ")")) in
  let src = Printf.sprintf "int main() { return %s; }" expr in
  let stop, _ = run src in
  Alcotest.(check bool) "60-deep nesting" true (stop = Os.Kernel.Stop_exit 60)

let test_int64_boundaries () =
  let _, p =
    run
      {|
int main() {
  int big = 4611686018427387904;
  print_int(big + big);
  putchar(' ');
  print_int(0 - big - big);
  return 0;
}
|}
  in
  (* two's-complement wraparound, like the hardware *)
  Alcotest.(check string) "wraparound" "-9223372036854775808 -9223372036854775808"
    (Os.Process.stdout p)

let () =
  Alcotest.run "edge"
    [
      ( "stack",
        [
          Alcotest.test_case "exhaustion hits the guard" `Quick
            test_stack_exhaustion_hits_guard;
          Alcotest.test_case "deep bounded recursion" `Quick test_deep_but_bounded_recursion;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "NT canaries unwind" `Quick test_guarded_recursion_under_pssp_nt;
          Alcotest.test_case "GB buffer balanced in recursion" `Quick
            test_gb_scheme_deep_recursion;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "read_n cursor" `Quick test_read_n_partial_and_empty;
          Alcotest.test_case "malloc exhaustion" `Quick test_malloc_exhaustion_returns_null;
          Alcotest.test_case "string edges" `Quick test_string_edge_cases;
          Alcotest.test_case "char passing" `Quick test_char_param_truncation;
        ] );
      ( "pathological",
        [
          Alcotest.test_case "empty main" `Quick test_empty_main;
          Alcotest.test_case "120 locals" `Quick test_many_locals;
          Alcotest.test_case "16K buffer frame" `Quick test_large_buffer_frame;
          Alcotest.test_case "deep expression nesting" `Quick test_deeply_nested_expressions;
          Alcotest.test_case "int64 wraparound" `Quick test_int64_boundaries;
        ] );
    ]
