(* Zygote snapshots: capture/resume round-trips, machine-state
   equality against a cold spawn, compiled-tier survival, and
   invalidation epochs after restore. *)

let i64 = Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal

let compile ?(scheme = Pssp.Scheme.Pssp) src =
  Mcc.Driver.compile ~scheme (Minic.Parser.parse src)

let kernel_run k p =
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule k;
  Os.Kernel.stop_of p

(* Boot an image to its first accept and return (kernel, process). *)
let boot ?(seed = 0x5EEDL) ?(preload = Os.Preload.Pssp_wide) image =
  let k = Os.Kernel.create ~seed () in
  let p = Os.Kernel.spawn k ~preload image in
  (match kernel_run k p with
  | Os.Kernel.Stop_accept -> ()
  | other -> Alcotest.failf "never accepted: %s" (Os.Kernel.stop_to_string other));
  (k, p)

let serve k p req =
  Os.Kernel.deliver_request k p (Bytes.of_string req);
  Os.Kernel.schedule k;
  Os.Kernel.reap_zombies k p

let server_src =
  {|
int helper() { return 1; }
int main() {
  while (1) {
    if (accept() < 0) { break; }
    print_int(helper());
  }
  return 0;
}
|}

let check_machine_equal msg (a : Os.Process.t) (b : Os.Process.t) =
  let ca = a.Os.Process.cpu and cb = b.Os.Process.cpu in
  List.iter
    (fun r ->
      Alcotest.check i64
        (Printf.sprintf "%s: %s" msg (Isa.Reg.name r))
        (Vm64.Cpu.get ca r) (Vm64.Cpu.get cb r))
    Isa.Reg.all;
  Alcotest.check i64 (msg ^ ": rip") ca.Vm64.Cpu.rip cb.Vm64.Cpu.rip;
  Alcotest.check i64 (msg ^ ": fs_base") ca.Vm64.Cpu.fs_base cb.Vm64.Cpu.fs_base;
  Alcotest.check i64 (msg ^ ": cycles") ca.Vm64.Cpu.cycles cb.Vm64.Cpu.cycles;
  Alcotest.check i64 (msg ^ ": TLS canary")
    (Pssp.Tls.canary a.Os.Process.mem ~fs_base:Vm64.Layout.tls_base)
    (Pssp.Tls.canary b.Os.Process.mem ~fs_base:Vm64.Layout.tls_base);
  let pa = Pssp.Tls.shadow_pair a.Os.Process.mem ~fs_base:Vm64.Layout.tls_base in
  let pb = Pssp.Tls.shadow_pair b.Os.Process.mem ~fs_base:Vm64.Layout.tls_base in
  Alcotest.check i64 (msg ^ ": shadow c0") pa.Pssp.Canary.c0 pb.Pssp.Canary.c0;
  Alcotest.check i64 (msg ^ ": shadow c1") pa.Pssp.Canary.c1 pb.Pssp.Canary.c1

(* ---- capture/resume round-trip -------------------------------------------- *)

let test_resume_bit_identical () =
  (* the thawed copy carries the frozen process's exact machine state:
     same registers, rip, cycle count, RNG-derived TLS words *)
  let image = compile (Workload.Vuln.fork_server ~buffer_size:16) in
  let k, p = boot image in
  let snap = Os.Snapshot.capture k p in
  let q = Os.Snapshot.resume k snap in
  check_machine_equal "resumed = frozen" p q;
  Alcotest.(check bool) "fresh pid" false (p.Os.Process.pid = q.Os.Process.pid);
  Alcotest.(check bool) "resumed parked in accept" true
    (Os.Kernel.stop_of q = Os.Kernel.Stop_accept)

let test_resume_matches_cold_spawn () =
  (* cold boot with the same kernel seed reaches the same quiescent
     state the snapshot froze — resume is a shortcut, not a fork in
     behaviour *)
  let image = compile (Workload.Vuln.fork_server ~buffer_size:16) in
  let k1, p1 = boot ~seed:77L image in
  let snap = Os.Snapshot.capture k1 p1 in
  let k2 = Os.Kernel.create ~seed:77L () in
  let q = Os.Snapshot.resume k2 snap in
  let k3, cold = boot ~seed:77L image in
  ignore k3;
  check_machine_equal "resumed = cold spawn" cold q;
  ignore k2

let test_snapshot_immutable_and_reusable () =
  (* one snapshot stamps out many identical copies, even after earlier
     copies ran and diverged *)
  let image = compile (Workload.Vuln.fork_server ~buffer_size:16) in
  let k, p = boot image in
  let snap = Os.Snapshot.capture k p in
  let q1 = Os.Snapshot.resume k snap in
  serve k q1 "AAAA";
  let q2 = Os.Snapshot.resume k snap in
  check_machine_equal "second resume unaffected by first copy's run" p q2

let test_resume_serves_like_original () =
  (* behavioural equality: the resumed server answers a request stream
     exactly as the original would *)
  let image = compile ~scheme:Pssp.Scheme.Pssp server_src in
  let k1, p1 = boot ~seed:9L image in
  let snap = Os.Snapshot.capture k1 p1 in
  let k2 = Os.Kernel.create ~seed:9L () in
  let q = Os.Snapshot.resume k2 snap in
  serve k1 p1 "x";
  serve k1 p1 "y";
  serve k2 q "x";
  serve k2 q "y";
  Alcotest.(check string) "same stdout" (Os.Process.stdout p1) (Os.Process.stdout q);
  Alcotest.(check bool) "resumed back in accept" true
    (Os.Kernel.stop_of q = Os.Kernel.Stop_accept)

(* ---- quiescence guard ------------------------------------------------------ *)

let test_capture_rejects_dead_process () =
  let image = compile ~scheme:Pssp.Scheme.None_ "int main() { return 0; }" in
  let k = Os.Kernel.create () in
  let p = Os.Kernel.spawn k ~preload:Os.Preload.No_preload image in
  ignore (kernel_run k p);
  match Os.Snapshot.capture k p with
  | _ -> Alcotest.fail "capturing a dead process must raise"
  | exception Invalid_argument _ -> ()

(* ---- compiled tier ---------------------------------------------------------- *)

let test_compiled_blocks_survive_resume () =
  (* warm the translation cache before capture; the thawed copy reuses
     the compiled blocks (no recompilation) and still runs correctly *)
  let prev = Vm64.Compile.tier () in
  Vm64.Compile.set_tier 3;
  Fun.protect ~finally:(fun () -> Vm64.Compile.set_tier prev) @@ fun () ->
  let image = compile ~scheme:Pssp.Scheme.Pssp server_src in
  let k, p = boot image in
  serve k p "warm";
  serve k p "warm";
  (* back in accept with no open conns: quiescent again *)
  let snap = Os.Snapshot.capture k p in
  let q = Os.Snapshot.resume k snap in
  Telemetry.Registry.reset_all ();
  serve k q "go";
  let compiles =
    match
      List.assoc_opt Vm64.Tcache.metric_compiles (Telemetry.Registry.snapshot ())
    with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check string) "resumed warm server output"
    (String.concat "" [ "1"; "1"; "1" ])
    (Os.Process.stdout q);
  (* the handler path was compiled pre-capture; serving from the thawed
     copy must not recompile it (fork children share the warm cache) *)
  Alcotest.(check int) "no recompilation after resume" 0 compiles

let test_patch_text_after_resume_invalidates () =
  (* invalidation epochs survive restore: a patch_text on the thawed
     copy must take effect on its next request *)
  let image = compile ~scheme:Pssp.Scheme.Pssp server_src in
  let k, p = boot image in
  serve k p "x";
  let snap = Os.Snapshot.capture k p in
  let q = Os.Snapshot.resume k snap in
  serve k q "x";
  Alcotest.(check string) "pre-patch helper" "11" (Os.Process.stdout q);
  let helper =
    (Os.Image.find_symbol_exn q.Os.Process.image "helper").Os.Image.sym_addr
  in
  let patch =
    Isa.Encode.list_to_bytes
      [ Isa.Insn.Mov (Isa.Operand.reg Isa.Reg.RAX, Isa.Operand.imm 2L); Isa.Insn.Ret ]
  in
  Os.Process.patch_text q ~addr:helper patch;
  serve k q "x";
  Alcotest.(check string) "patched helper after resume" "112" (Os.Process.stdout q);
  (* the frozen original and its other copies are unaffected *)
  let r = Os.Snapshot.resume k snap in
  serve k r "x";
  Alcotest.(check string) "sibling copy unpatched" "11" (Os.Process.stdout r)

(* ---- defense-family state across snapshots and forks ------------------------ *)

let test_pac_key_survives_resume () =
  (* the per-process signing key lives in the CPU record; a thawed copy
     must authenticate frames with the exact key the frozen process
     signed them under *)
  let image =
    compile ~scheme:Pssp.Scheme.Pac_canary (Workload.Vuln.fork_server ~buffer_size:16)
  in
  let k, p = boot ~preload:Os.Preload.No_preload image in
  let key = p.Os.Process.cpu.Vm64.Cpu.pac_key in
  Alcotest.(check bool) "spawn drew a key" false (Int64.equal key 0L);
  let snap = Os.Snapshot.capture k p in
  let q = Os.Snapshot.resume k snap in
  Alcotest.check i64 "resumed key" key q.Os.Process.cpu.Vm64.Cpu.pac_key;
  (* and the thawed server still signs/authenticates its handler frames *)
  serve k q "AAAA";
  Alcotest.(check bool) "resumed pac server back in accept" true
    (Os.Kernel.stop_of q = Os.Kernel.Stop_accept)

let test_shadow_siblings_do_not_share () =
  (* two copies thawed from one snapshot have CoW-isolated shadow
     regions: a push in one must not appear in the other or in the
     frozen original *)
  let image =
    compile ~scheme:Pssp.Scheme.Shadow_compact
      (Workload.Vuln.fork_server ~buffer_size:16)
  in
  let k, p = boot ~preload:Os.Preload.No_preload image in
  let sp0 = Pssp.Tls.shadow_sp p.Os.Process.mem ~fs_base:Vm64.Layout.tls_base in
  Alcotest.check i64 "boot initialised the shadow SP"
    Vm64.Layout.shadow_stack_base sp0;
  let snap = Os.Snapshot.capture k p in
  let q1 = Os.Snapshot.resume k snap in
  let q2 = Os.Snapshot.resume k snap in
  (* simulate a shadow push in q1: bump its pointer and write an entry *)
  Vm64.Memory.write_u64 q1.Os.Process.mem Vm64.Layout.shadow_stack_base 0xFACEL;
  Pssp.Tls.set_shadow_sp q1.Os.Process.mem ~fs_base:Vm64.Layout.tls_base
    (Int64.add Vm64.Layout.shadow_stack_base 8L);
  Alcotest.check i64 "sibling's shadow entry untouched" 0L
    (Vm64.Memory.read_u64 q2.Os.Process.mem Vm64.Layout.shadow_stack_base);
  Alcotest.check i64 "sibling's shadow SP untouched"
    Vm64.Layout.shadow_stack_base
    (Pssp.Tls.shadow_sp q2.Os.Process.mem ~fs_base:Vm64.Layout.tls_base);
  Alcotest.check i64 "frozen original untouched" 0L
    (Vm64.Memory.read_u64 p.Os.Process.mem Vm64.Layout.shadow_stack_base);
  (* both siblings still serve: their own shadow regions are intact *)
  serve k q2 "AAAA";
  Alcotest.(check bool) "sibling serves and re-accepts" true
    (Os.Kernel.stop_of q2 = Os.Kernel.Stop_accept)

(* ---- the oracle's zygote mode ----------------------------------------------- *)

let test_oracle_zygote_respawn_counts () =
  let image = compile (Workload.Vuln.fork_server ~buffer_size:16) in
  let oracle =
    Attack.Oracle.create ~preload:Os.Preload.Pssp_wide
      ~respawn:Attack.Oracle.Zygote image
  in
  Alcotest.(check bool) "restart works" true (Attack.Oracle.restart_victim oracle);
  Alcotest.(check bool) "restart again" true (Attack.Oracle.restart_victim oracle);
  Alcotest.(check int) "respawns counted" 2 (Attack.Oracle.respawns oracle);
  Alcotest.(check bool) "victim alive" true (Attack.Oracle.server_alive oracle)

let test_oracle_zygote_equals_cold () =
  (* the attack sees the same oracle either way: respawned victims are
     bit-identical, so outcomes and trial counts agree *)
  let attack respawn =
    let image = compile (Workload.Vuln.fork_server ~buffer_size:16) in
    let oracle = Attack.Oracle.create ~preload:Os.Preload.Pssp_wide ~respawn image in
    let layout = Harness.Layouts.compiler_layout Pssp.Scheme.Pssp ~buffer_size:16 in
    match Attack.Byte_by_byte.run oracle ~layout ~max_trials:2_500 with
    | Attack.Byte_by_byte.Broken { trials; _ } -> ("broken", trials)
    | Attack.Byte_by_byte.Exhausted { trials; _ } -> ("exhausted", trials)
    | Attack.Byte_by_byte.Oracle_lost { trials; _ } -> ("lost", trials)
  in
  let outcome_z, trials_z = attack Attack.Oracle.Zygote in
  let outcome_c, trials_c = attack Attack.Oracle.Cold in
  Alcotest.(check string) "same outcome" outcome_c outcome_z;
  Alcotest.(check int) "same trial count" trials_c trials_z

let () =
  Alcotest.run "snapshot"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "resume is bit-identical to the frozen process"
            `Quick test_resume_bit_identical;
          Alcotest.test_case "resume matches a same-seed cold spawn" `Quick
            test_resume_matches_cold_spawn;
          Alcotest.test_case "snapshot is immutable and reusable" `Quick
            test_snapshot_immutable_and_reusable;
          Alcotest.test_case "resumed server behaves like the original" `Quick
            test_resume_serves_like_original;
          Alcotest.test_case "capture rejects a dead process" `Quick
            test_capture_rejects_dead_process;
        ] );
      ( "compiled tier",
        [
          Alcotest.test_case "warm tcache survives resume" `Quick
            test_compiled_blocks_survive_resume;
          Alcotest.test_case "patch_text after resume invalidates" `Quick
            test_patch_text_after_resume_invalidates;
        ] );
      ( "defense families",
        [
          Alcotest.test_case "PAC key survives capture/resume" `Quick
            test_pac_key_survives_resume;
          Alcotest.test_case "sibling zygote copies do not share shadow stacks"
            `Quick test_shadow_siblings_do_not_share;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "zygote respawn counts and keeps the victim alive"
            `Quick test_oracle_zygote_respawn_counts;
          Alcotest.test_case "zygote and cold respawn are observationally equal"
            `Quick test_oracle_zygote_equals_cold;
        ] );
    ]
