(* The core canary algebra: Algorithm 1, the packed 32-bit variant, the
   P-SSP-LV chain, and the SVII-C global buffer. *)

let i64 = Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal

let rng () = Util.Prng.create 0x7357L

(* ---- Algorithm 1 ------------------------------------------------------------- *)

let test_re_randomize_xor () =
  let r = rng () in
  let c = 0xFEEDFACE12345678L in
  for _ = 1 to 100 do
    let p = Pssp.Canary.re_randomize r c in
    Alcotest.check i64 "C0 xor C1 = C" c (Pssp.Canary.combine p)
  done

let test_re_randomize_fresh () =
  let r = rng () in
  let c = 1L in
  let a = Pssp.Canary.re_randomize r c in
  let b = Pssp.Canary.re_randomize r c in
  Alcotest.(check bool) "pairs differ between invocations" false
    (a.Pssp.Canary.c0 = b.Pssp.Canary.c0)

let test_checks_out () =
  let r = rng () in
  let c = 0xABCDEFL in
  let p = Pssp.Canary.re_randomize r c in
  Alcotest.(check bool) "valid pair" true (Pssp.Canary.checks_out ~tls_canary:c p);
  let tampered = { p with Pssp.Canary.c0 = Int64.add p.Pssp.Canary.c0 1L } in
  Alcotest.(check bool) "tampered pair" false
    (Pssp.Canary.checks_out ~tls_canary:c tampered)

let prop_re_randomize =
  QCheck.Test.make ~name:"re_randomize always XORs to C" ~count:500
    QCheck.(pair int64 int64)
    (fun (seed, c) ->
      let r = Util.Prng.create seed in
      Pssp.Canary.combine (Pssp.Canary.re_randomize r c) = c)

(* ---- packed 32-bit ------------------------------------------------------------- *)

let test_pack_parts_roundtrip () =
  let w = Pssp.Canary.pack32 ~c0:0x11223344L ~c1:0xAABBCCDDL in
  let c0, c1 = Pssp.Canary.packed32_parts w in
  Alcotest.check i64 "c0" 0x11223344L c0;
  Alcotest.check i64 "c1" 0xAABBCCDDL c1

let test_packed32_check () =
  let r = rng () in
  let c = 0x1234567890ABCDEFL in
  for _ = 1 to 50 do
    let w = Pssp.Canary.re_randomize_packed32 r c in
    Alcotest.(check bool) "valid packed" true
      (Pssp.Canary.packed32_checks_out ~tls_canary:c w);
    Alcotest.(check bool) "tampered packed" false
      (Pssp.Canary.packed32_checks_out ~tls_canary:c (Int64.logxor w 0x10000L))
  done

let test_packed32_only_low_half_matters () =
  (* the check binds to low32(C) only — the SV-C entropy downgrade *)
  let r = rng () in
  let c = 0x00000000DEADBEEFL in
  let w = Pssp.Canary.re_randomize_packed32 r c in
  Alcotest.(check bool) "high half of C ignored" true
    (Pssp.Canary.packed32_checks_out ~tls_canary:(Int64.logor c 0xFF00000000000000L) w)

let prop_packed32 =
  QCheck.Test.make ~name:"packed32 always verifies" ~count:500
    QCheck.(pair int64 int64)
    (fun (seed, c) ->
      let r = Util.Prng.create seed in
      Pssp.Canary.packed32_checks_out ~tls_canary:c
        (Pssp.Canary.re_randomize_packed32 r c))

(* ---- P-SSP-LV chains ------------------------------------------------------------ *)

let test_split_chain_xors_to_c () =
  let r = rng () in
  let c = 0xC0FFEEL in
  List.iter
    (fun n ->
      let chain = Pssp.Canary.split_chain r c ~n in
      Alcotest.(check int) "length" n (List.length chain);
      Alcotest.(check bool) "chain checks" true
        (Pssp.Canary.chain_checks_out ~tls_canary:c chain))
    [ 1; 2; 3; 7; 20 ]

let test_split_chain_n1_is_c () =
  let r = rng () in
  (* a single-canary chain degenerates to C itself (why P-SSP-LV always
     pairs the ret guard) *)
  match Pssp.Canary.split_chain r 0x42L ~n:1 with
  | [ only ] -> Alcotest.check i64 "degenerate chain" 0x42L only
  | _ -> Alcotest.fail "expected singleton"

let test_split_chain_rejects_zero () =
  let r = rng () in
  Alcotest.check_raises "n=0" (Invalid_argument "Canary.split_chain: n must be >= 1")
    (fun () -> ignore (Pssp.Canary.split_chain r 1L ~n:0))

let test_chain_detects_single_kill () =
  let r = rng () in
  let c = 0x777L in
  let chain = Pssp.Canary.split_chain r c ~n:4 in
  List.iteri
    (fun i _ ->
      let tampered = List.mapi (fun j v -> if i = j then Int64.lognot v else v) chain in
      Alcotest.(check bool) "killed canary detected" false
        (Pssp.Canary.chain_checks_out ~tls_canary:c tampered))
    chain

let prop_chain =
  QCheck.Test.make ~name:"chains always XOR to C" ~count:300
    QCheck.(triple int64 int64 (int_range 1 16))
    (fun (seed, c, n) ->
      let r = Util.Prng.create seed in
      Pssp.Canary.chain_checks_out ~tls_canary:c (Pssp.Canary.split_chain r c ~n))

(* ---- TLS accessors ---------------------------------------------------------------- *)

let test_tls_slots () =
  let mem = Vm64.Memory.create () in
  Vm64.Memory.map mem ~addr:Vm64.Layout.tls_base ~len:Vm64.Layout.tls_size;
  let fs_base = Vm64.Layout.tls_base in
  Pssp.Tls.set_canary mem ~fs_base 0xAAAAL;
  Alcotest.check i64 "canary slot" 0xAAAAL (Pssp.Tls.canary mem ~fs_base);
  Pssp.Tls.set_shadow_pair mem ~fs_base { Pssp.Canary.c0 = 1L; c1 = 2L };
  let p = Pssp.Tls.shadow_pair mem ~fs_base in
  Alcotest.check i64 "c0 slot" 1L p.Pssp.Canary.c0;
  Alcotest.check i64 "c1 slot" 2L p.Pssp.Canary.c1;
  (* the packed word shares the first shadow slot *)
  Alcotest.check i64 "packed aliases c0" 1L (Pssp.Tls.shadow_packed mem ~fs_base);
  (* raw offsets match the paper *)
  Alcotest.check i64 "0x28" 0xAAAAL
    (Vm64.Memory.read_u64 mem (Int64.add fs_base 0x28L));
  Alcotest.check i64 "0x2a8" 1L (Vm64.Memory.read_u64 mem (Int64.add fs_base 0x2a8L));
  Alcotest.check i64 "0x2b0" 2L (Vm64.Memory.read_u64 mem (Int64.add fs_base 0x2b0L))

let test_install_fresh () =
  let mem = Vm64.Memory.create () in
  Vm64.Memory.map mem ~addr:Vm64.Layout.tls_base ~len:Vm64.Layout.tls_size;
  let r = rng () in
  let c = Pssp.Tls.install_fresh_canary r mem ~fs_base:Vm64.Layout.tls_base in
  Alcotest.check i64 "returned = stored" c
    (Pssp.Tls.canary mem ~fs_base:Vm64.Layout.tls_base)

(* ---- global buffer ------------------------------------------------------------------ *)

let test_global_buffer_basic () =
  let r = rng () in
  let c = 0xFACEL in
  let buf = Pssp.Global_buffer.create () in
  let c0a = Pssp.Global_buffer.push_frame buf r ~tls_canary:c in
  let c0b = Pssp.Global_buffer.push_frame buf r ~tls_canary:c in
  Alcotest.(check int) "depth" 2 (Pssp.Global_buffer.depth buf);
  Alcotest.(check bool) "LIFO check b" true
    (Pssp.Global_buffer.check_and_pop buf ~tls_canary:c ~stack_c0:c0b);
  Alcotest.(check bool) "LIFO check a" true
    (Pssp.Global_buffer.check_and_pop buf ~tls_canary:c ~stack_c0:c0a);
  Alcotest.(check int) "drained" 0 (Pssp.Global_buffer.depth buf)

let test_global_buffer_detects_smash () =
  let r = rng () in
  let c = 0xFACEL in
  let buf = Pssp.Global_buffer.create () in
  let c0 = Pssp.Global_buffer.push_frame buf r ~tls_canary:c in
  Alcotest.(check bool) "smashed C0 detected" false
    (Pssp.Global_buffer.check_and_pop buf ~tls_canary:c
       ~stack_c0:(Int64.lognot c0))

let test_global_buffer_underflow () =
  let buf = Pssp.Global_buffer.create () in
  Alcotest.check_raises "empty pop"
    (Invalid_argument "Global_buffer.check_and_pop: empty buffer") (fun () ->
      ignore (Pssp.Global_buffer.check_and_pop buf ~tls_canary:0L ~stack_c0:0L))

let test_global_buffer_fork_clone () =
  let r = rng () in
  let c = 0x1234L in
  let parent = Pssp.Global_buffer.create () in
  let c0 = Pssp.Global_buffer.push_frame parent r ~tls_canary:c in
  let child = Pssp.Global_buffer.clone parent in
  ignore (Pssp.Global_buffer.push_frame child r ~tls_canary:c);
  (* child's extra frame must not disturb the parent *)
  Alcotest.(check int) "parent depth" 1 (Pssp.Global_buffer.depth parent);
  Alcotest.(check bool) "parent still verifies" true
    (Pssp.Global_buffer.check_and_pop parent ~tls_canary:c ~stack_c0:c0)

(* ---- scheme metadata ------------------------------------------------------------------ *)

let test_scheme_names_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Pssp.Scheme.name s ^ " roundtrips")
        true
        (Pssp.Scheme.of_name (Pssp.Scheme.name s) = Some s))
    (Pssp.Scheme.all_basic @ Pssp.Scheme.all_extensions
    @ [ Pssp.Scheme.Pssp_lv 7; Pssp.Scheme.Pssp_owf_weak; Pssp.Scheme.Pssp_gb ]
    @ Pssp.Scheme.all_families)

let test_family_metadata () =
  Alcotest.(check bool) "shadow-compact prevents BROP" true
    (Pssp.Scheme.prevents_brop Pssp.Scheme.Shadow_compact);
  Alcotest.(check bool) "shadow-parallel prevents BROP" true
    (Pssp.Scheme.prevents_brop Pssp.Scheme.Shadow_parallel);
  Alcotest.(check bool) "pac-canary prevents BROP" true
    (Pssp.Scheme.prevents_brop Pssp.Scheme.Pac_canary);
  Alcotest.(check bool) "wasm-ssp does not prevent BROP" false
    (Pssp.Scheme.prevents_brop Pssp.Scheme.Wasm_ssp);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Pssp.Scheme.name s ^ " preserves correctness")
        true
        (Pssp.Scheme.preserves_correctness s))
    Pssp.Scheme.all_families;
  (* shadow stacks keep the guard off-frame; pac/wasm keep SSP's slot *)
  Alcotest.(check int) "shadow-compact words" 0
    (Pssp.Scheme.stack_words Pssp.Scheme.Shadow_compact);
  Alcotest.(check int) "shadow-parallel words" 0
    (Pssp.Scheme.stack_words Pssp.Scheme.Shadow_parallel);
  Alcotest.(check int) "pac-canary words" 1
    (Pssp.Scheme.stack_words Pssp.Scheme.Pac_canary);
  Alcotest.(check int) "wasm-ssp words" 1
    (Pssp.Scheme.stack_words Pssp.Scheme.Wasm_ssp)

(* the bench driver's --scheme rejection message is a pinned surface *)
let test_unknown_scheme_message () =
  Alcotest.(check bool)
    "of_name rejects" true
    (Pssp.Scheme.of_name "shadow-banana" = None);
  let msg = Harness.Cli.unknown_scheme "shadow-banana" in
  Alcotest.(check bool)
    "pinned prefix" true
    (String.length msg >= 31
    && String.sub msg 0 31 = "unknown scheme \"shadow-banana\" ");
  List.iter
    (fun family ->
      let name = Pssp.Scheme.name family in
      Alcotest.(check bool)
        (name ^ " listed in the have-set")
        true
        (Astring.String.is_infix ~affix:name msg))
    Pssp.Scheme.all_families

let test_scheme_expectations () =
  Alcotest.(check bool) "SSP does not prevent BROP" false
    (Pssp.Scheme.prevents_brop Pssp.Scheme.Ssp);
  Alcotest.(check bool) "P-SSP prevents BROP" true
    (Pssp.Scheme.prevents_brop Pssp.Scheme.Pssp);
  Alcotest.(check bool) "RAF breaks correctness" false
    (Pssp.Scheme.preserves_correctness Pssp.Scheme.Raf_ssp);
  Alcotest.(check bool) "weak OWF does not prevent BROP" false
    (Pssp.Scheme.prevents_brop Pssp.Scheme.Pssp_owf_weak)

let test_scheme_stack_words () =
  Alcotest.(check int) "ssp" 1 (Pssp.Scheme.stack_words Pssp.Scheme.Ssp);
  Alcotest.(check int) "pssp" 2 (Pssp.Scheme.stack_words Pssp.Scheme.Pssp);
  Alcotest.(check int) "owf" 3 (Pssp.Scheme.stack_words Pssp.Scheme.Pssp_owf);
  Alcotest.(check int) "none" 0 (Pssp.Scheme.stack_words Pssp.Scheme.None_)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pssp"
    [
      ( "algorithm1",
        [
          Alcotest.test_case "XOR invariant" `Quick test_re_randomize_xor;
          Alcotest.test_case "freshness" `Quick test_re_randomize_fresh;
          Alcotest.test_case "checks_out" `Quick test_checks_out;
          qc prop_re_randomize;
        ] );
      ( "packed32",
        [
          Alcotest.test_case "pack/parts roundtrip" `Quick test_pack_parts_roundtrip;
          Alcotest.test_case "check" `Quick test_packed32_check;
          Alcotest.test_case "low-half binding" `Quick test_packed32_only_low_half_matters;
          qc prop_packed32;
        ] );
      ( "lv-chain",
        [
          Alcotest.test_case "XORs to C" `Quick test_split_chain_xors_to_c;
          Alcotest.test_case "n=1 degenerates" `Quick test_split_chain_n1_is_c;
          Alcotest.test_case "n=0 rejected" `Quick test_split_chain_rejects_zero;
          Alcotest.test_case "single kill detected" `Quick test_chain_detects_single_kill;
          qc prop_chain;
        ] );
      ( "tls",
        [
          Alcotest.test_case "slot layout" `Quick test_tls_slots;
          Alcotest.test_case "install fresh" `Quick test_install_fresh;
        ] );
      ( "global-buffer",
        [
          Alcotest.test_case "push/pop" `Quick test_global_buffer_basic;
          Alcotest.test_case "detects smash" `Quick test_global_buffer_detects_smash;
          Alcotest.test_case "underflow" `Quick test_global_buffer_underflow;
          Alcotest.test_case "fork clone" `Quick test_global_buffer_fork_clone;
        ] );
      ( "scheme",
        [
          Alcotest.test_case "names roundtrip" `Quick test_scheme_names_roundtrip;
          Alcotest.test_case "family metadata" `Quick test_family_metadata;
          Alcotest.test_case "unknown scheme message" `Quick
            test_unknown_scheme_message;
          Alcotest.test_case "Table I expectations" `Quick test_scheme_expectations;
          Alcotest.test_case "stack words" `Quick test_scheme_stack_words;
        ] );
    ]
