(* White-box tests of the baseline schemes' runtime machinery: the
   DynaGuard canary-address buffer and DCR's offset-linked in-stack
   canary list, inspected in the memory of live processes. *)

let i64 = Alcotest.testable (Fmt.fmt "0x%Lx") Int64.equal

let compile ?(scheme = Pssp.Scheme.Dynaguard) src =
  Mcc.Driver.compile ~scheme (Minic.Parser.parse src)

(* A program that pauses (blocks in accept) with three guarded frames
   live on the stack: main -> outer -> inner -> accept. *)
let nested_pause_src =
  {|
int inner() {
  char ibuf[8];
  ibuf[0] = 'i';
  accept();
  return ibuf[0];
}

int outer() {
  char obuf[8];
  obuf[0] = 'o';
  return inner() + obuf[0];
}

int main() {
  char mbuf[8];
  mbuf[0] = 'm';
  return outer() + mbuf[0];
}
|}

(* enqueue + schedule + stop_of: run one process to its next park *)
let kernel_run k p =
  Os.Kernel.enqueue k p;
  Os.Kernel.schedule k;
  Os.Kernel.stop_of p

(* deliver + schedule + reap: the old resume-with-request composite *)
let kernel_resume k p req =
  Os.Kernel.deliver_request k p req;
  Os.Kernel.schedule k;
  Os.Kernel.reap_zombies k p;
  Os.Kernel.stop_of p

let pause kernel image preload =
  let proc = Os.Kernel.spawn kernel ~preload image in
  match kernel_run kernel proc with
  | Os.Kernel.Stop_accept -> proc
  | other -> Alcotest.failf "never paused: %s" (Os.Kernel.stop_to_string other)

(* ---- DynaGuard --------------------------------------------------------------- *)

let dg_count mem =
  Int64.to_int (Vm64.Memory.read_u64 mem Vm64.Layout.dynaguard_buffer_base)

let dg_entry mem i =
  Vm64.Memory.read_u64 mem
    (Int64.add Vm64.Layout.dynaguard_buffer_base (Int64.of_int (8 * (i + 1))))

let test_dynaguard_buffer_tracks_frames () =
  let kernel = Os.Kernel.create () in
  let proc = pause kernel (compile nested_pause_src) Os.Preload.Dynaguard_fix in
  let mem = proc.Os.Process.mem in
  (* three guarded frames are live: main, outer, inner *)
  Alcotest.(check int) "three recorded canaries" 3 (dg_count mem);
  let c = Pssp.Tls.canary mem ~fs_base:Vm64.Layout.tls_base in
  for i = 0 to 2 do
    let addr = dg_entry mem i in
    Alcotest.check i64
      (Printf.sprintf "entry %d points at a live canary" i)
      c
      (Vm64.Memory.read_u64 mem addr)
  done;
  (* finish the run: epilogues decrement the count back to zero *)
  (match kernel_resume kernel proc (Bytes.create 0) with
  | Os.Kernel.Stop_exit _ -> ()
  | other -> Alcotest.failf "did not finish: %s" (Os.Kernel.stop_to_string other));
  Alcotest.(check int) "buffer drained on return" 0 (dg_count mem)

let test_dynaguard_fork_rewrites_live_canaries () =
  (* fork with live guarded frames: the child's TLS canary changes AND
     every recorded stack canary is rewritten to match (the correctness
     property RAF-SSP lacks) *)
  let src =
    {|
int worker() {
  char wbuf[8];
  int pid;
  wbuf[0] = 'w';
  pid = fork();
  if (pid == 0) {
    exit(7);
  }
  waitpid();
  return wbuf[0];
}

int main() {
  char mbuf[8];
  mbuf[0] = 'm';
  return worker() + mbuf[0];
}
|}
  in
  let kernel = Os.Kernel.create () in
  let proc =
    Os.Kernel.spawn kernel ~preload:Os.Preload.Dynaguard_fix (compile src)
  in
  let parent_c = Pssp.Tls.canary proc.Os.Process.mem ~fs_base:Vm64.Layout.tls_base in
  (match kernel_run kernel proc with
  | Os.Kernel.Stop_exit _ -> ()
  | other -> Alcotest.failf "run: %s" (Os.Kernel.stop_to_string other));
  match Os.Kernel.last_reaped kernel with
  | None -> Alcotest.fail "no child"
  | Some child ->
    let mem = child.Os.Process.mem in
    let child_c = Pssp.Tls.canary mem ~fs_base:Vm64.Layout.tls_base in
    Alcotest.(check bool) "child TLS canary refreshed" false
      (Int64.equal child_c parent_c);
    (* both live frames were rewritten to the child's new canary *)
    Alcotest.(check int) "two live frames at fork" 2 (dg_count mem);
    for i = 0 to 1 do
      Alcotest.check i64 "stack canary rewritten" child_c
        (Vm64.Memory.read_u64 mem (dg_entry mem i))
    done

(* ---- DCR ---------------------------------------------------------------------- *)

let dcr_head mem =
  Vm64.Memory.read_u64 mem
    (Int64.add Vm64.Layout.tls_base Vm64.Layout.tls_dcr_head_offset)

let test_dcr_list_structure () =
  let kernel = Os.Kernel.create () in
  let proc =
    pause kernel (compile ~scheme:Pssp.Scheme.Dcr nested_pause_src) Os.Preload.Dcr_fix
  in
  let mem = proc.Os.Process.mem in
  let c = Pssp.Tls.canary mem ~fs_base:Vm64.Layout.tls_base in
  (* walk the in-stack linked list: three nodes, each matching low48(C),
     terminated by the end marker *)
  let rec walk addr acc =
    if Int64.equal addr 0L then List.rev acc
    else begin
      let word = Vm64.Memory.read_u64 mem addr in
      Alcotest.(check bool) "node matches low48(C)" true
        (Os.Preload.dcr_matches ~tls_canary:c word);
      let delta = Os.Preload.dcr_delta word in
      if delta = Os.Preload.dcr_end_marker then List.rev (addr :: acc)
      else walk (Int64.add addr (Int64.of_int (8 * delta))) (addr :: acc)
    end
  in
  let nodes = walk (dcr_head mem) [] in
  Alcotest.(check int) "three linked canaries" 3 (List.length nodes);
  (* addresses ascend: inner frame (newest) is lowest *)
  let sorted = List.sort Int64.compare nodes in
  Alcotest.(check bool) "list runs from newest (lowest) upwards" true (sorted = nodes);
  (* unwind: the head pointer must retreat as frames pop *)
  (match kernel_resume kernel proc (Bytes.create 0) with
  | Os.Kernel.Stop_exit _ -> ()
  | other -> Alcotest.failf "did not finish: %s" (Os.Kernel.stop_to_string other));
  Alcotest.check i64 "head cleared after full unwind" 0L (dcr_head mem)

let test_dcr_pack_roundtrip () =
  let word = Os.Preload.dcr_pack ~delta:42 ~canary:0xABCDEF0123456789L in
  Alcotest.(check int) "delta" 42 (Os.Preload.dcr_delta word);
  Alcotest.check i64 "low48" 0x0000EF0123456789L (Os.Preload.dcr_low48 word);
  Alcotest.check_raises "delta range"
    (Invalid_argument "Preload.dcr_pack: delta out of range") (fun () ->
      ignore (Os.Preload.dcr_pack ~delta:0x10000 ~canary:0L))

let test_dcr_fork_rerandomizes_list () =
  let kernel = Os.Kernel.create () in
  let image = compile ~scheme:Pssp.Scheme.Dcr nested_pause_src in
  let proc = pause kernel image Os.Preload.Dcr_fix in
  let parent_c = Pssp.Tls.canary proc.Os.Process.mem ~fs_base:Vm64.Layout.tls_base in
  (* simulate the fork fixup directly on a clone (the preload hook) *)
  let child_mem = Vm64.Memory.clone proc.Os.Process.mem in
  let rng = Util.Prng.create 0x12345L in
  Os.Preload.on_fork_child Os.Preload.Dcr_fix rng child_mem
    ~fs_base:Vm64.Layout.tls_base;
  let child_c = Pssp.Tls.canary child_mem ~fs_base:Vm64.Layout.tls_base in
  Alcotest.(check bool) "C refreshed" false (Int64.equal child_c parent_c);
  (* every node in the child's list now matches the NEW canary and the
     deltas (list shape) are unchanged *)
  let rec walk mem addr count =
    if Int64.equal addr 0L then count
    else begin
      let word = Vm64.Memory.read_u64 mem addr in
      let delta = Os.Preload.dcr_delta word in
      if delta = Os.Preload.dcr_end_marker then count + 1
      else walk mem (Int64.add addr (Int64.of_int (8 * delta))) (count + 1)
    end
  in
  let child_head = dcr_head child_mem in
  Alcotest.(check int) "same list length" 3 (walk child_mem child_head 0);
  let word = Vm64.Memory.read_u64 child_mem child_head in
  Alcotest.(check bool) "head matches new C" true
    (Os.Preload.dcr_matches ~tls_canary:child_c word);
  Alcotest.(check bool) "head no longer matches old C" false
    (Os.Preload.dcr_matches ~tls_canary:parent_c word)

let () =
  Alcotest.run "baselines"
    [
      ( "dynaguard",
        [
          Alcotest.test_case "buffer tracks frames" `Quick
            test_dynaguard_buffer_tracks_frames;
          Alcotest.test_case "fork rewrites live canaries" `Quick
            test_dynaguard_fork_rewrites_live_canaries;
        ] );
      ( "dcr",
        [
          Alcotest.test_case "in-stack list structure" `Quick test_dcr_list_structure;
          Alcotest.test_case "pack/unpack" `Quick test_dcr_pack_roundtrip;
          Alcotest.test_case "fork re-randomizes the list" `Quick
            test_dcr_fork_rerandomizes_list;
        ] );
    ]
