(* Encoder/decoder roundtrips, assembler behaviour, and the fixed-width
   properties the binary rewriter relies on. *)

open Isa

let insn_testable = Alcotest.testable (fun fmt i -> Fmt.string fmt (Asm.to_string i)) Insn.equal

(* ---- generators ---------------------------------------------------------- *)

let gen_reg = QCheck.Gen.(map Reg.of_index_exn (int_range 0 15))
let gen_xmm = QCheck.Gen.(map Reg.Xmm.of_index_exn (int_range 0 15))

let gen_disp = QCheck.Gen.(map Int64.of_int (int_range (-100000) 100000))

let gen_mem =
  QCheck.Gen.(
    let* seg_fs = bool in
    let* base = opt gen_reg in
    let* index =
      opt (pair gen_reg (oneofl [ Operand.S1; Operand.S2; Operand.S4; Operand.S8 ]))
    in
    let* disp = gen_disp in
    return { Operand.seg_fs; base; index; disp })

let gen_operand =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Operand.Reg r) gen_reg;
        map (fun v -> Operand.Imm v) int64;
        map (fun m -> Operand.Mem m) gen_mem;
      ])

let gen_target = QCheck.Gen.(map (fun a -> Insn.Abs (Int64.logand a 0x7FFFFFFFL)) int64)

let gen_cond =
  QCheck.Gen.oneofl
    [ Insn.E; NE; L; LE; G; GE; B; BE; A; AE; S; NS ]

let gen_binop =
  QCheck.Gen.oneofl
    [ Insn.Add; Sub; Xor; And; Or; Cmp; Test; Imul; Idiv; Irem ]

let gen_shiftop = QCheck.Gen.oneofl [ Insn.Shl; Shr; Sar ]

let gen_insn =
  QCheck.Gen.(
    oneof
      [
        return Insn.Nop;
        map2 (fun a b -> Insn.Mov (a, b)) gen_operand gen_operand;
        map2 (fun a b -> Insn.Movb (a, b)) gen_operand gen_operand;
        map2 (fun a b -> Insn.Movl (a, b)) gen_operand gen_operand;
        map2 (fun r m -> Insn.Lea (r, m)) gen_reg gen_mem;
        map (fun o -> Insn.Push o) gen_operand;
        map (fun o -> Insn.Pop o) gen_operand;
        map3 (fun op a b -> Insn.Bin (op, a, b)) gen_binop gen_operand gen_operand;
        map3 (fun op a k -> Insn.Shift (op, a, k)) gen_shiftop gen_operand (int_range 0 63);
        map (fun o -> Insn.Neg o) gen_operand;
        map (fun o -> Insn.Not o) gen_operand;
        map (fun t -> Insn.Jmp t) gen_target;
        map2 (fun c t -> Insn.Jcc (c, t)) gen_cond gen_target;
        map (fun t -> Insn.Call t) gen_target;
        map (fun o -> Insn.Call_ind o) gen_operand;
        return Insn.Ret;
        return Insn.Leave;
        map2 (fun c r -> Insn.Setcc (c, r)) gen_cond gen_reg;
        map (fun r -> Insn.Rdrand r) gen_reg;
        return Insn.Rdtsc;
        map2 (fun d m -> Insn.Pac (d, m)) gen_reg gen_reg;
        map2 (fun d m -> Insn.Aut (d, m)) gen_reg gen_reg;
        return Insn.Syscall;
        return Insn.Hlt;
        map2 (fun x r -> Insn.Movq_to_xmm (x, r)) gen_xmm gen_reg;
        map2 (fun r x -> Insn.Movq_from_xmm (r, x)) gen_reg gen_xmm;
        map2 (fun x r -> Insn.Pinsrq_high (x, r)) gen_xmm gen_reg;
        map2 (fun x m -> Insn.Movhps_load (x, m)) gen_xmm gen_mem;
        map2 (fun m x -> Insn.Movq_store (m, x)) gen_mem gen_xmm;
        map2 (fun x m -> Insn.Movdqu_load (x, m)) gen_xmm gen_mem;
        map2 (fun m x -> Insn.Movdqu_store (m, x)) gen_mem gen_xmm;
        map2 (fun a b -> Insn.Aesenc (a, b)) gen_xmm gen_xmm;
        map2 (fun a b -> Insn.Aesenclast (a, b)) gen_xmm gen_xmm;
        map2 (fun x m -> Insn.Pcmpeq128 (x, m)) gen_xmm gen_mem;
      ])

let arb_insn = QCheck.make ~print:Asm.to_string gen_insn

(* ---- roundtrip ----------------------------------------------------------- *)

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"decode . encode = id" ~count:2000 arb_insn (fun insn ->
      let code = Encode.to_bytes insn in
      let decoded, len = Decode.decode code 0 in
      Insn.equal decoded insn && len = Bytes.length code)

let prop_length_agrees =
  QCheck.Test.make ~name:"Encode.length = encoded size" ~count:1000 arb_insn
    (fun insn -> Encode.length insn = Bytes.length (Encode.to_bytes insn))

let prop_stream_roundtrip =
  QCheck.Test.make ~name:"decode_all of a stream" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) arb_insn)
    (fun insns ->
      let code = Encode.list_to_bytes insns in
      let decoded = List.map snd (Decode.decode_all code) in
      List.length decoded = List.length insns
      && List.for_all2 Insn.equal decoded insns)

(* The property §V-C's rewriter depends on: changing a displacement or a
   call target never changes the instruction length. *)
let prop_fixed_width_disp =
  QCheck.Test.make ~name:"length independent of displacement" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_disp gen_disp))
    (fun (d1, d2) ->
      let mk d = Insn.Mov (Operand.reg Reg.RAX, Operand.fs d) in
      Encode.length (mk (Int64.logand d1 0xFFFFL))
      = Encode.length (mk (Int64.logand d2 0xFFFFL)))

let test_fixed_width_call () =
  let l1 = Encode.length (Insn.Call (Insn.Abs 0x1L)) in
  let l2 = Encode.length (Insn.Call (Insn.Abs 0x7FFFFFFFL)) in
  Alcotest.(check int) "call width constant" l1 l2

let test_sym_length_equals_abs () =
  Alcotest.(check int) "sym = abs width"
    (Encode.length (Insn.Jmp (Insn.Abs 0L)))
    (Encode.length (Insn.Jmp (Insn.Sym "somewhere")))

let test_encode_sym_rejected () =
  let buf = Buffer.create 8 in
  Alcotest.check_raises "unresolved" (Encode.Unresolved_symbol "f") (fun () ->
      Encode.encode buf (Insn.Call (Insn.Sym "f")))

let test_decode_bad_opcode () =
  (match Decode.decode (Bytes.of_string "\xee") 0 with
  | exception Decode.Bad_encoding (0, _) -> ()
  | _ -> Alcotest.fail "expected Bad_encoding");
  match Decode.decode (Bytes.of_string "\x01\x00") 0 with
  | exception Decode.Bad_encoding (_, _) -> ()
  | _ -> Alcotest.fail "expected truncation error"

(* ---- the paper's exact instruction forms --------------------------------- *)

let test_ssp_prologue_form () =
  (* mov %fs:0x28,%rax and mov %fs:0x2a8,%rax differ ONLY in the
     displacement bytes and have identical length (Code 5's patch). *)
  let a = Encode.to_bytes (Insn.Mov (Operand.reg Reg.RAX, Operand.fs 0x28L)) in
  let b = Encode.to_bytes (Insn.Mov (Operand.reg Reg.RAX, Operand.fs 0x2a8L)) in
  Alcotest.(check int) "same length" (Bytes.length a) (Bytes.length b);
  let diffs = ref 0 in
  Bytes.iteri
    (fun i c -> if c <> Bytes.get b i then incr diffs)
    a;
  Alcotest.(check bool) "only displacement differs" true (!diffs <= 2)

let test_xor_call_same_length () =
  (* the epilogue patch: xor %fs:0x28,%rdx (9B) -> call abs (9B) *)
  Alcotest.(check int) "equal lengths"
    (Encode.length (Insn.Bin (Insn.Xor, Operand.reg Reg.RDX, Operand.fs 0x28L)))
    (Encode.length (Insn.Call (Insn.Abs 0x10000L)))

(* ---- conditions ----------------------------------------------------------- *)

let test_negate_cond_involution () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "involution" true
        (Insn.negate_cond (Insn.negate_cond c) = c))
    [ Insn.E; NE; L; LE; G; GE; B; BE; A; AE; S; NS ]

let test_cond_index_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "index roundtrip" true
        (Insn.cond_of_index (Insn.cond_index c) = Some c))
    [ Insn.E; NE; L; LE; G; GE; B; BE; A; AE; S; NS ]

let test_binop_index_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "binop roundtrip" true
        (Insn.binop_of_index (Insn.binop_index op) = Some op))
    [ Insn.Add; Sub; Xor; And; Or; Cmp; Test; Imul; Idiv; Irem ]

(* ---- builder -------------------------------------------------------------- *)

let test_builder_local_labels () =
  let b = Builder.create () in
  let l = Builder.fresh_label b "loop" in
  Builder.label b l;
  Builder.emit b (Insn.Bin (Insn.Add, Operand.reg Reg.RAX, Operand.imm 1L));
  Builder.emit b (Insn.Jmp (Insn.Sym l));
  let a = Builder.assemble b ~base:0x4000L ~externs:(fun _ -> None) in
  match List.rev a.Builder.insns with
  | (_, Insn.Jmp (Insn.Abs target)) :: _ ->
    Alcotest.check (Alcotest.testable (Fmt.fmt "%Ld") Int64.equal) "jmp to label"
      0x4000L target
  | _ -> Alcotest.fail "expected resolved jmp"

let test_builder_externs () =
  let b = Builder.create () in
  Builder.emit b (Insn.Call (Insn.Sym "helper"));
  let a =
    Builder.assemble b ~base:0L ~externs:(fun s ->
        if s = "helper" then Some 0xBEEFL else None)
  in
  match a.Builder.insns with
  | [ (0, Insn.Call (Insn.Abs 0xBEEFL)) ] -> ()
  | _ -> Alcotest.fail "extern not resolved"

let test_builder_undefined_symbol () =
  let b = Builder.create () in
  Builder.emit b (Insn.Call (Insn.Sym "nope"));
  Alcotest.check_raises "undefined"
    (Invalid_argument "Builder.assemble: undefined symbol nope") (fun () ->
      ignore (Builder.assemble b ~base:0L ~externs:(fun _ -> None)))

let test_builder_duplicate_label () =
  let b = Builder.create () in
  Builder.label b "x";
  Alcotest.check_raises "duplicate" (Invalid_argument "Builder.label: x placed twice")
    (fun () -> Builder.label b "x")

let test_builder_size_matches () =
  let b = Builder.create () in
  Builder.emit_all b
    [ Insn.Push (Operand.reg Reg.RBP); Insn.Call (Insn.Sym "f"); Insn.Ret ];
  let size = Builder.size b in
  let a = Builder.assemble b ~base:0L ~externs:(fun _ -> Some 0L) in
  Alcotest.(check int) "size = assembled bytes" size (Bytes.length a.Builder.code)

(* ---- printer --------------------------------------------------------------- *)

let test_asm_forms () =
  Alcotest.check insn_testable "equality sanity" Insn.Ret Insn.Ret;
  let s = Asm.to_string (Insn.Mov (Operand.reg Reg.RAX, Operand.fs 0x28L)) in
  Alcotest.(check string) "att order" "mov    %fs:0x28,%rax" s;
  let s2 = Asm.to_string (Insn.Jcc (Insn.E, Insn.Sym "ok")) in
  Alcotest.(check string) "jcc" "je     <ok>" s2

(* ---- asm text parser --------------------------------------------------------- *)

let prop_asm_roundtrip =
  QCheck.Test.make ~name:"parse . print = id" ~count:2000 arb_insn (fun insn ->
      (* printed immediates lose nothing; Sym targets print as <name> *)
      Insn.equal (Asm_parser.parse_insn (Asm.to_string insn)) insn)

let test_asm_parse_listing () =
  let listing = {|
fork_wrapper:            # comment
  callq  <fork>
  test   %rax,%rax
  jne    <done>
  rdrand %rcx
  mov    %rcx,%fs:0x2a8
done:
  retq
|} in
  let items = Asm_parser.parse_listing listing in
  Alcotest.(check int) "items" 8 (List.length items);
  (match List.nth items 0 with
  | `Label "fork_wrapper" -> ()
  | _ -> Alcotest.fail "label");
  match List.nth items 1 with
  | `Insn (Insn.Call (Insn.Sym "fork")) -> ()
  | _ -> Alcotest.fail "sym call"

let test_asm_to_builder_assembles () =
  let b = Asm_parser.to_builder {|
entry:
  mov    $0x2a,%rax
  jmp    <skip>
  mov    $0x0,%rax
skip:
  retq
|} in
  let a = Builder.assemble b ~base:0x1000L ~externs:(fun _ -> None) in
  Alcotest.(check bool) "labels placed" true
    (List.mem_assoc "entry" a.Builder.labels && List.mem_assoc "skip" a.Builder.labels)

let test_asm_parse_errors () =
  (match Asm_parser.parse_insn "frobnicate %rax" with
  | exception Asm_parser.Error (1, _) -> ()
  | _ -> Alcotest.fail "unknown mnemonic accepted");
  match Asm_parser.parse_insn "mov %rax" with
  | exception Asm_parser.Error (1, _) -> ()
  | _ -> Alcotest.fail "arity not checked"

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "isa"
    [
      ( "roundtrip",
        [
          qc prop_encode_decode_roundtrip;
          qc prop_length_agrees;
          qc prop_stream_roundtrip;
          qc prop_fixed_width_disp;
          Alcotest.test_case "call width constant" `Quick test_fixed_width_call;
          Alcotest.test_case "sym length = abs length" `Quick test_sym_length_equals_abs;
          Alcotest.test_case "encoding sym rejected" `Quick test_encode_sym_rejected;
          Alcotest.test_case "bad opcodes rejected" `Quick test_decode_bad_opcode;
        ] );
      ( "rewriter-critical forms",
        [
          Alcotest.test_case "prologue patch same length" `Quick test_ssp_prologue_form;
          Alcotest.test_case "xor->call same length" `Quick test_xor_call_same_length;
        ] );
      ( "conditions",
        [
          Alcotest.test_case "negate involution" `Quick test_negate_cond_involution;
          Alcotest.test_case "cond index roundtrip" `Quick test_cond_index_roundtrip;
          Alcotest.test_case "binop index roundtrip" `Quick test_binop_index_roundtrip;
        ] );
      ( "builder",
        [
          Alcotest.test_case "local labels" `Quick test_builder_local_labels;
          Alcotest.test_case "externs" `Quick test_builder_externs;
          Alcotest.test_case "undefined symbol" `Quick test_builder_undefined_symbol;
          Alcotest.test_case "duplicate label" `Quick test_builder_duplicate_label;
          Alcotest.test_case "size matches" `Quick test_builder_size_matches;
        ] );
      ( "printer",
        [ Alcotest.test_case "AT&T forms" `Quick test_asm_forms ] );
      ( "asm-parser",
        [
          qc prop_asm_roundtrip;
          Alcotest.test_case "listing with labels/comments" `Quick test_asm_parse_listing;
          Alcotest.test_case "to_builder assembles" `Quick test_asm_to_builder_assembles;
          Alcotest.test_case "errors" `Quick test_asm_parse_errors;
        ] );
    ]
