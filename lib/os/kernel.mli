(** The kernel: process creation, fork/thread semantics, the run loop
    dispatching builtins, and the request-driving interface the attack
    harness and server benchmarks use.

    Scheduling is cooperative and depth-first: [waitpid] runs the
    waited-for child to completion inline. This is all the concurrency
    the paper's experiments need — the byte-by-byte attack depends on
    fork {e semantics} (TLS cloning, parent respawning children), not on
    preemption. *)

type t

val create :
  ?seed:int64 ->
  ?on_retire:(Vm64.Cpu.t -> Isa.Insn.t -> unit) ->
  unit ->
  t
(** [on_retire] traces every retired instruction across all processes
    of this kernel (see {!Debug.ring_tracer}). *)

val spawn :
  t ->
  ?input:bytes ->
  ?preload:Preload.mode ->
  ?insn_tax:int ->
  ?call_tax:int ->
  Image.t ->
  Process.t
(** Load an image into a fresh process: map text/data/stack/TLS, install
    a fresh TLS canary, run the preload constructor, point rip at the
    entry symbol. [insn_tax] models dynamic-binary-translation overhead
    (cycles added to every instruction). *)

val find : t -> int -> Process.t option

type stop =
  | Stop_exit of int
  | Stop_kill of Process.signal * string
  | Stop_accept  (** the process blocked in [accept] *)
  | Stop_fuel

val stop_to_string : stop -> string

val run : ?fuel:int -> t -> Process.t -> stop
(** Run until the process dies, blocks on [accept], or exhausts [fuel]
    (instructions, shared with any children it waits on; default 50M). *)

val resume_with_request : ?fuel:int -> t -> Process.t -> bytes -> stop
(** Deliver a request to a process blocked in [accept] and keep running.
    Raises [Invalid_argument] if it is not blocked there. *)

val last_reaped : t -> Process.t option
(** The most recent child reaped by a [waitpid] — the attack oracle
    reads the child's fate here. *)

val fork_count : t -> int
(** Forks (and thread spawns, which clone an address space) this kernel
    has served. *)

val forks_served : unit -> int
(** Process-wide fork count across all kernels since
    {!reset_forks_served} — for the bench driver's [--mem-stats]
    telemetry (domain-safe). *)

val reset_forks_served : unit -> unit

val exit_stub_addr : int64
(** Where the loader's process-exit trampoline lives ([main] returns to
    it). *)

val run_to_exit : ?fuel:int -> t -> Process.t -> int
(** Like {!run} but expects a plain exit; raises [Failure] with the stop
    description otherwise. Returns the exit code. *)
