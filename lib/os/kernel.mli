(** The kernel: process creation, fork/thread semantics, a round-robin
    ready-queue scheduler, connection-level services over {!Net}, and
    the request-driving interface the attack harness and server
    benchmarks use.

    Processes run in bounded instruction slices and park in [Blocked_*]
    states for kernel services ([accept], conn [read]/[write],
    [epoll_wait], blocking [waitpid]). Blocking registers a one-shot
    waiter on the object being waited on (conn, socket, child); the
    event fires the waiter, which queues the pid on a FIFO wake queue
    the scheduler drains before dispatching — no per-dispatch scan over
    blocked processes. Wakeups are FIFO across events and pid-ordered
    within one event, so for a deterministic workload the interleaving
    is deterministic. Virtual time ([now]) advances with the cycles
    retired across all processes — one simulated core — and drives
    connection timeouts and the load generator. *)

type t

exception Not_blocked_in_accept of { pid : int; status : Process.status }
(** Raised by {!deliver_request} when the target process is not parked
    in [accept]. *)

val create :
  ?seed:int64 ->
  ?on_retire:(Vm64.Cpu.t -> Isa.Insn.t -> unit) ->
  unit ->
  t
(** [on_retire] traces every retired instruction across all processes
    of this kernel (see {!Debug.ring_tracer}). *)

val spawn :
  t ->
  ?input:bytes ->
  ?preload:Preload.mode ->
  ?insn_tax:int ->
  ?call_tax:int ->
  Image.t ->
  Process.t
(** Load an image into a fresh process: map text/data/stack/TLS, install
    a fresh TLS canary, run the preload constructor, point rip at the
    entry symbol. [insn_tax] models dynamic-binary-translation overhead
    (cycles added to every instruction). *)

val find : t -> int -> Process.t option

type stop =
  | Stop_exit of int
  | Stop_kill of Process.signal * string
  | Stop_accept  (** the process blocked in [accept] *)
  | Stop_io
      (** blocked on a conn read/write, [epoll_wait], or a blocking
          [waitpid] *)
  | Stop_fuel

val stop_to_string : stop -> string

val enqueue : t -> Process.t -> unit
(** Queue a runnable process for the scheduler (idempotent — a process
    already in the ready queue keeps its one slot; blocked processes
    are queued but skipped at dispatch until an event wakes them).
    Raises [Invalid_argument] if the process is already dead. The old
    [run k p] composite is [enqueue k p; schedule k; stop_of p]. *)

val schedule : ?fuel:int -> t -> unit
(** Run the scheduler until every process is parked or dead (or [fuel]
    runs out — instructions, shared across all runnable processes;
    default 50M), without singling out one process. Drivers pair this
    with {!enqueue}/{!deliver_request} and read results off
    {!stop_of}. *)

val stop_of : Process.t -> stop
(** The process's current state as a scheduler stop reason. *)

val deliver_request : t -> Process.t -> bytes -> unit
(** Deliver a request to a process blocked in [accept] {e without}
    running the scheduler. If the process listens on a {!Net.Socket},
    the request arrives as a one-shot connection (payload + FIN) pushed
    onto the accept backlog; otherwise it is delivered magically as the
    process's input (the legacy protocol) and the process is enqueued.
    Follow with {!schedule} (and {!reap_zombies} if {!last_reaped}
    should name the child that served the request). Raises
    {!Not_blocked_in_accept} if the process is parked elsewhere. *)

val connect : ?tx_capacity:int -> t -> Process.t -> Net.Conn.t option
(** Client-side connect: to the process's own listening socket if it
    holds one, else round-robin across the live listeners registered on
    the kernel's port table (SO_REUSEPORT-style — how connects reach
    the sharded acceptors forked by a parent that owns no socket).
    [None] (and a [net.conn.refused] tick) when there is no listener
    anywhere or every candidate backlog is full — the caller backs off
    and retries, like a real client seeing SYN drops. *)

val now : t -> int64
(** Virtual time: cycles retired across all of this kernel's processes. *)

val advance_to : t -> int64 -> unit
(** Jump virtual time forward (never backward) — the pump uses this to
    skip idle stretches to the next load-generator event or connection
    deadline. *)

val set_conn_timeout : t -> int64 option -> unit
(** When set, a conn operation blocked for that many idle cycles resets
    the connection and completes with -1 ([net.conn.timeouts]). *)

val next_deadline : t -> int64 option
(** Earliest virtual cycle at which a currently-blocked conn operation
    would time out, if a timeout is configured. *)

val reap_zombies : t -> Process.t -> unit
(** Reap the process's dead children (without a guest waitpid), updating
    {!last_reaped} — used by drivers for servers that reap lazily. *)

val last_reaped : t -> Process.t option
(** The most recent child reaped — by a guest [waitpid]/[waitpid_nb] or
    by {!reap_zombies}. The attack oracle reads the child's fate here. *)

val fork_count : t -> int
(** Forks (and thread spawns, which clone an address space) this kernel
    has served. Process-wide counts live in the metrics registry
    ({!metric_forks}). *)

val metric_forks : string
(** Registry counter name for forks across all kernels
    (["os.kernel.forks"]). *)

val exit_stub_addr : int64
(** Where the loader's process-exit trampoline lives ([main] returns to
    it). *)

val run_to_exit : ?fuel:int -> t -> Process.t -> int
(** {!enqueue} + {!schedule}, expecting a plain exit; raises [Failure]
    with the stop description otherwise. Returns the exit code. *)

(** {1 Zygote snapshots}

    A snapshot freezes a fully loaded, protected, warmed process — CoW
    page-store clone, exact CPU state including the RNG position and
    the compiled translation-cache tier, and a rebuilt fd table that
    aliases no live kernel object. Resuming stamps out a warm copy in
    any kernel, bit-identical to the frozen original: the
    prefork/zygote pattern production servers use, here so campaigns
    restart trial victims without paying cold spawn + warmup each
    time. *)

type snapshot

val capture_snapshot : t -> Process.t -> snapshot
(** Freeze the process. It must be quiescent — [Runnable], parked in
    [accept], or parked in [epoll_wait], with no pending children and
    no open connection fds; raises [Invalid_argument] otherwise. The
    live process is unaffected and keeps running. *)

val resume_snapshot : t -> snapshot -> Process.t
(** Thaw a fresh process (new pid) from the snapshot into this kernel:
    listeners are re-registered on the kernel's port table and the
    frozen park is re-armed ([accept]/[epoll_wait] waiters), so the
    resumed process is immediately connectable. The snapshot itself
    stays frozen and can be resumed any number of times. Virtual time
    advances to at least the capture-time clock, so a resumed
    process's cycle counts continue where the original's stood. *)
