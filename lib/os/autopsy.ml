type verdict =
  | Not_dead
  | Clean_exit of int
  | Canary_abort of { message : string }
  | Control_flow_hijack of { target : int64; payload_shaped : bool }
  | Wild_fault of { at_rip : int64; detail : string }

type report = {
  verdict : verdict;
  crash_function : string option;
  frames : Debug.frame list;
}

(* One printable byte repeated across the whole word — classic filler
   ('AAAA...', 0x41414141...). *)
let payload_shaped addr =
  let b0 = Int64.to_int (Int64.logand addr 0xFFL) in
  b0 >= 0x20 && b0 < 0x7F
  && (let rec all i =
        i = 8
        || Int64.to_int (Int64.logand (Int64.shift_right_logical addr (8 * i)) 0xFFL)
           = b0
           && all (i + 1)
      in
      all 1)

let examine (proc : Process.t) =
  let rip = proc.Process.cpu.Vm64.Cpu.rip in
  let crash_function =
    Option.map
      (fun (s : Image.symbol) -> s.Image.sym_name)
      (Image.symbol_covering proc.Process.image rip)
  in
  let frames = Debug.backtrace proc in
  let verdict =
    match proc.Process.status with
    | Process.Runnable | Process.Blocked_accept | Process.Blocked_read _
    | Process.Blocked_write _ | Process.Blocked_poll _ | Process.Blocked_wait
      ->
      Not_dead
    | Process.Exited code -> Clean_exit code
    | Process.Killed (Process.Sigabrt, message) -> Canary_abort { message }
    | Process.Killed (_, detail) ->
      if Vm64.Memory.is_mapped proc.Process.mem rip && crash_function <> None
      then Wild_fault { at_rip = rip; detail }
      else Control_flow_hijack { target = rip; payload_shaped = payload_shaped rip }
  in
  { verdict; crash_function; frames }

let verdict_to_string = function
  | Not_dead -> "process is alive"
  | Clean_exit code -> Printf.sprintf "clean exit (%d)" code
  | Canary_abort { message } ->
    Printf.sprintf "canary abort — the defence fired (%s)" message
  | Control_flow_hijack { target; payload_shaped } ->
    Printf.sprintf "CONTROL-FLOW HIJACK — execution redirected to 0x%Lx%s" target
      (if payload_shaped then " (attacker-filler-shaped address)" else "")
  | Wild_fault { at_rip; detail } ->
    Printf.sprintf "wild fault while executing 0x%Lx (%s) — data corruption, \
                    return address intact"
      at_rip detail

let pp_report fmt r =
  Format.fprintf fmt "verdict: %s@." (verdict_to_string r.verdict);
  (match r.crash_function with
  | Some name -> Format.fprintf fmt "dying in: <%s>@." name
  | None -> Format.fprintf fmt "dying outside any known function@.");
  if r.frames <> [] then begin
    Format.fprintf fmt "backtrace:@.";
    Debug.pp_backtrace fmt r.frames
  end
