(** Post-mortem classification of a dead process — the forensic view of
    what a canary scheme did (or failed to do).

    Distinguishes the three endings the paper's experiments produce:
    a canary abort (the defence worked), a control-flow hijack (the
    attacker landed: rip left the mapped text), and a wild fault (the
    overflow corrupted something other than the return address). *)

type verdict =
  | Not_dead  (** the process is still runnable *)
  | Clean_exit of int
  | Canary_abort of { message : string }
      (** [__stack_chk_fail] (or the P-SSP check) fired *)
  | Control_flow_hijack of {
      target : int64;  (** where execution was redirected *)
      payload_shaped : bool;
          (** the target reads like attacker filler (one repeated
              printable byte) *)
    }
  | Wild_fault of { at_rip : int64; detail : string }
      (** a fault while executing mapped code — data corruption, not a
          seized return address *)

type report = {
  verdict : verdict;
  crash_function : string option;
      (** symbol covering rip at death, when rip is still inside the
          image *)
  frames : Debug.frame list;  (** best-effort backtrace *)
}

val examine : Process.t -> report

val verdict_to_string : verdict -> string
val pp_report : Format.formatter -> report -> unit
