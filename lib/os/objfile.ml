exception Format_error of string

let magic = "PSSPEXE\x00"
let version = 1

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

(* ---- writing -------------------------------------------------------------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let put_u64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

let put_string buf s =
  if String.length s > 0xFFFF then fail "string too long";
  put_u8 buf (String.length s land 0xFF);
  put_u8 buf (String.length s lsr 8);
  Buffer.add_string buf s

let put_blob buf b =
  put_u32 buf (Bytes.length b);
  Buffer.add_bytes buf b

let write (image : Image.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_u32 buf version;
  put_u8 buf (match image.Image.linkage with Image.Dynamic -> 0 | Image.Static -> 1);
  put_string buf image.Image.scheme_tag;
  put_string buf image.Image.name;
  put_u64 buf image.Image.entry;
  put_u64 buf image.Image.text_base;
  put_blob buf image.Image.text;
  put_u64 buf image.Image.data_base;
  put_blob buf image.Image.data;
  put_u64 buf image.Image.extra_base;
  put_blob buf image.Image.extra;
  put_u32 buf (List.length image.Image.symbols);
  List.iter
    (fun (s : Image.symbol) ->
      put_string buf s.Image.sym_name;
      put_u64 buf s.Image.sym_addr;
      put_u32 buf s.Image.sym_size)
    image.Image.symbols;
  Buffer.to_bytes buf

(* ---- reading -------------------------------------------------------------- *)

type cursor = { data : bytes; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.data then fail "truncated file"

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.data c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then fail "negative length";
  v

let get_u64 c =
  need c 8;
  let v = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  v

let get_string c =
  let lo = get_u8 c in
  let hi = get_u8 c in
  let n = lo lor (hi lsl 8) in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_blob c =
  let n = get_u32 c in
  need c n;
  let b = Bytes.sub c.data c.pos n in
  c.pos <- c.pos + n;
  b

let read data =
  let c = { data; pos = 0 } in
  need c (String.length magic);
  let m = Bytes.sub_string data 0 (String.length magic) in
  if m <> magic then fail "bad magic (not a pssp executable)";
  c.pos <- String.length magic;
  let v = get_u32 c in
  if v <> version then fail "unsupported version %d" v;
  let linkage =
    match get_u8 c with
    | 0 -> Image.Dynamic
    | 1 -> Image.Static
    | n -> fail "bad linkage byte %d" n
  in
  let scheme_tag = get_string c in
  let name = get_string c in
  let entry = get_u64 c in
  let text_base = get_u64 c in
  let text = get_blob c in
  let data_base = get_u64 c in
  let data_sec = get_blob c in
  let extra_base = get_u64 c in
  let extra = get_blob c in
  let nsyms = get_u32 c in
  if nsyms > 1_000_000 then fail "implausible symbol count %d" nsyms;
  let symbols =
    List.init nsyms (fun _ ->
        let sym_name = get_string c in
        let sym_addr = get_u64 c in
        let sym_size = get_u32 c in
        { Image.sym_name; sym_addr; sym_size })
  in
  let image : Image.t =
    {
      Image.name;
      linkage;
      entry;
      text_base;
      text;
      data_base;
      data = data_sec;
      symbols;
      extra_base;
      extra;
      scheme_tag;
    }
  in
  (* sanity: the entry must fall in a section *)
  if
    Bytes.length image.Image.text > 0
    && (Int64.compare entry text_base < 0
       || Int64.compare entry
            (Int64.add text_base (Int64.of_int (Bytes.length image.Image.text)))
          >= 0)
    && (Bytes.length extra = 0
       || Int64.compare entry extra_base < 0
       || Int64.compare entry
            (Int64.add extra_base (Int64.of_int (Bytes.length extra)))
          >= 0)
  then fail "entry point 0x%Lx outside all sections" entry;
  image

let save image path =
  let oc = open_out_bin path in
  output_bytes oc (write image);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  read b
