(** A simulated process: one address space, one CPU context, stdio. *)

type signal = Sigsegv | Sigabrt | Sigill

val signal_name : signal -> string
val signal_of_fault : Vm64.Fault.t -> signal

type status =
  | Runnable
  | Blocked_accept  (** server waiting for the driver to deliver a request *)
  | Exited of int
  | Killed of signal * string

val status_is_dead : status -> bool
val status_to_string : status -> string

type t = {
  pid : int;
  parent : int option;
  image : Image.t;
  mem : Vm64.Memory.t;
  cpu : Vm64.Cpu.t;
  io : Glibc.io;
  preload : Preload.mode;
  mutable status : status;
  mutable pending_children : int list;  (** oldest first, not yet waited *)
}

val crashed : t -> bool
(** Died from a signal (segfault or canary abort) — the event the
    byte-by-byte attacker's oracle distinguishes. *)

val patch_text : t -> addr:int64 -> bytes -> unit
(** Write [code] into the process's loaded text and invalidate the
    overlapping basic-block decodes, so the next fetch re-decodes the
    patched bytes. The safe way to modify code after load — a plain
    [Memory.write_bytes] would leave the translation cache stale. *)

val stdout : t -> string
val stderr : t -> string
val cycles : t -> int64
