(** A simulated process: one address space, one CPU context, stdio plus
    a file-descriptor table over {!Net} connections. *)

type signal = Sigsegv | Sigabrt | Sigill

val signal_name : signal -> string

val signal_number : signal -> int
(** Classic Linux signal number (SIGSEGV = 11, SIGABRT = 6, SIGILL = 4)
    — the low bits of a crashed child's waitpid status word. *)

val signal_of_fault : Vm64.Fault.t -> signal

type status =
  | Runnable
  | Blocked_accept  (** in [accept], waiting for a pending connection *)
  | Blocked_read of { fd : int; dst : int64; cap : int }
      (** in [read], waiting for conn bytes (or EOF/reset/timeout) *)
  | Blocked_write of { fd : int; data : bytes; written : int }
      (** in [write], waiting for TX-buffer space *)
  | Blocked_poll of { dst : int64; cap : int }
      (** in [epoll_wait], waiting for any fd to become ready *)
  | Blocked_wait  (** in blocking [waitpid] for a live child *)
  | Exited of int
  | Killed of signal * string

val status_is_dead : status -> bool
val status_is_blocked : status -> bool
val status_to_string : status -> string

type t = {
  pid : int;
  parent : int option;
  image : Image.t;
  mem : Vm64.Memory.t;
  cpu : Vm64.Cpu.t;
  io : Glibc.io;
  preload : Preload.mode;
  mutable status : status;
  pending_children : int Queue.t;
      (** oldest first, not yet waited; a queue so fork's append is O(1)
          even for a fork-per-connection server that reaps lazily *)
  mutable queued : bool;
      (** scheduler-internal: already in the ready queue *)
  mutable wake_pending : bool;
      (** scheduler-internal: already in the wake queue (a readiness
          event fired for this blocked process, retry not yet run) *)
}

val crashed : t -> bool
(** Died from a signal (segfault or canary abort) — the event the
    byte-by-byte attacker's oracle distinguishes. *)

val patch_text : t -> addr:int64 -> bytes -> unit
(** Write [code] into the process's loaded text and invalidate the
    overlapping basic-block decodes, so the next fetch re-decodes the
    patched bytes. The safe way to modify code after load — a plain
    [Memory.write_bytes] would leave the translation cache stale. *)

val stdout : t -> string
val stderr : t -> string
val cycles : t -> int64
