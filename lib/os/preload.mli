(** Runtime canary maintenance — the simulated counterpart of the
    paper's LD_PRELOAD shared library (§V-A) and, for the baseline
    schemes, of their own fork-time fixup machinery.

    The shim has two hooks: one run at program startup (the
    [setup_p-ssp] constructor) and one run in the child right after
    [fork]/[pthread_create] clones the TLS. *)

type mode =
  | No_preload  (** plain glibc: child inherits the TLS untouched (SSP) *)
  | Pssp_wide
      (** basic P-SSP: refresh the 64-bit shadow pair (C0, C1); the TLS
          canary C itself is never changed *)
  | Pssp_packed
      (** binary-instrumentation P-SSP (§V-C): refresh the packed
          2×32-bit shadow word *)
  | Raf
      (** RAF-SSP: replace the TLS canary itself — deliberately NOT
          fixing inherited stack frames (the paper's correctness flaw) *)
  | Dynaguard_fix
      (** DynaGuard: replace the TLS canary and rewrite every address
          recorded in the canary-address buffer *)
  | Dcr_fix
      (** DCR: replace the TLS canary and walk the in-stack linked list
          of offset-embedding canaries *)

val mode_name : mode -> string

val on_start : mode -> Util.Prng.t -> Vm64.Memory.t -> fs_base:int64 -> unit
(** Constructor-time TLS initialisation (after the loader installed C). *)

val on_fork_child : mode -> Util.Prng.t -> Vm64.Memory.t -> fs_base:int64 -> unit
(** Run in the child, after the address-space clone. *)

val on_thread_start : mode -> Util.Prng.t -> Vm64.Memory.t -> fs_base:int64 -> unit
(** Run in a freshly spawned thread. *)

(** DCR's canary word format: [delta (16 bits) || low48 of C].
    [delta] is the distance to the previous canary in 8-byte words;
    {!dcr_end_marker} terminates the list. *)

val dcr_end_marker : int
val dcr_pack : delta:int -> canary:int64 -> int64
val dcr_delta : int64 -> int
val dcr_low48 : int64 -> int64
val dcr_matches : tls_canary:int64 -> int64 -> bool
