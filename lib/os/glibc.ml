open Vm64

type control =
  | Exit of int
  | Abort of string
  | Fork
  | Spawn_thread of { start : int64; arg : int64 }
  | Wait_child
  | Wait_child_nb
  | Accept
  | Listen of { fd : int; backlog : int }
  | Sock_read of { fd : int; dst : int64; cap : int }
  | Sock_write of { fd : int; data : bytes }
  | Epoll_wait of { dst : int64; cap : int }
  | Close_fd of int

type outcome = Ret of int64 | Control of control

type fd_obj = Fd_conn of Net.Conn.t | Fd_listener of Net.Socket.t

type fd_entry = { obj : fd_obj; mutable nonblock : bool }

(* EAGAIN/EWOULDBLOCK sentinel returned by non-blocking accept/read/
   write (-1 stays "error/closed", 0 stays "EOF"/"wrote nothing"). *)
let eagain = -2L

type io = {
  mutable input : bytes;
  mutable input_pos : int;
  output : Buffer.t;
  errout : Buffer.t;
  mutable brk : int64;
  fds : (int, fd_entry) Hashtbl.t;
  mutable free_fds : int list;  (* closed fds below next_fd, ascending *)
  mutable next_fd : int;
  mutable listener : Net.Socket.t option;
  mutable listener_fd : int;  (* fd of [listener], -1 when none *)
}

let make_io () =
  {
    input = Bytes.create 0;
    input_pos = 0;
    output = Buffer.create 64;
    errout = Buffer.create 64;
    brk = Layout.heap_base;
    fds = Hashtbl.create 16;
    free_fds = [];
    next_fd = 3;
    listener = None;
    listener_fd = -1;
  }

let clone_io io =
  (* fork/pthread_create semantics: the child inherits the fd table, so
     every connection (and the listener) gains one more holder. Status
     flags (O_NONBLOCK) are per-entry and copied, like dup'd
     descriptors sharing an open file description. *)
  let fds = Hashtbl.create (Hashtbl.length io.fds) in
  Hashtbl.iter
    (fun fd e ->
      (match e.obj with
      | Fd_conn c -> Net.Conn.retain c
      | Fd_listener s -> Net.Socket.retain s);
      Hashtbl.replace fds fd { obj = e.obj; nonblock = e.nonblock })
    io.fds;
  {
    input = Bytes.copy io.input;
    input_pos = io.input_pos;
    output = Buffer.create 64;
    errout = Buffer.create 64;
    brk = io.brk;
    fds;
    free_fds = io.free_fds;
    next_fd = io.next_fd;
    listener = io.listener;
    listener_fd = io.listener_fd;
  }

(* Zygote-snapshot semantics: a frozen fd table must not alias live
   kernel objects, so every listener is rebuilt as a fresh socket with
   the same port/backlog/listening state (and an empty backlog — a
   checkpoint holds no in-flight SYNs). Sockets shared by several fds
   (dup-style) stay shared in the copy. Connection fds are refused: a
   zygote is captured quiescent, parked in accept/epoll with no client
   attached. *)
let snapshot_io io =
  let memo = ref [] in
  let build_sock s =
    let s' = Net.Socket.create () in
    Net.Socket.bind s' ~port:(Net.Socket.port s);
    if Net.Socket.listening s then
      Net.Socket.listen s' ~backlog:(Net.Socket.backlog s);
    memo := (s, s') :: !memo;
    s'
  in
  (* one refcount per holding fd, like clone_io *)
  let rebuild_sock s =
    match List.assq_opt s !memo with
    | Some s' ->
      Net.Socket.retain s';
      s'
    | None -> build_sock s
  in
  let fds = Hashtbl.create (max 16 (Hashtbl.length io.fds)) in
  Hashtbl.iter
    (fun fd e ->
      match e.obj with
      | Fd_conn _ ->
        invalid_arg
          "Glibc.snapshot_io: open connection fd (snapshot a quiescent \
           process)"
      | Fd_listener s ->
        Hashtbl.replace fds fd
          { obj = Fd_listener (rebuild_sock s); nonblock = e.nonblock })
    io.fds;
  let copy_buf b =
    let b' = Buffer.create (max 64 (Buffer.length b)) in
    Buffer.add_string b' (Buffer.contents b);
    b'
  in
  {
    input = Bytes.copy io.input;
    input_pos = io.input_pos;
    output = copy_buf io.output;
    errout = copy_buf io.errout;
    brk = io.brk;
    fds;
    free_fds = io.free_fds;
    next_fd = io.next_fd;
    listener =
      (* the [listener] field is a plain alias, not a refcount holder *)
      Option.map
        (fun s ->
          match List.assq_opt s !memo with Some s' -> s' | None -> build_sock s)
        io.listener;
    listener_fd = io.listener_fd;
  }

(* ---- fd table --------------------------------------------------------- *)

let fd_entry_of io fd = Hashtbl.find_opt io.fds fd

let fd_obj_of io fd =
  match fd_entry_of io fd with Some e -> Some e.obj | None -> None

let conn_of_fd io fd =
  match fd_obj_of io fd with Some (Fd_conn c) -> Some c | _ -> None

let listener_of io = io.listener
let listener_fd io = io.listener_fd

let fd_nonblock io fd =
  match fd_entry_of io fd with Some e -> e.nonblock | None -> false

let set_fd_nonblock io fd v =
  match fd_entry_of io fd with
  | Some e ->
    e.nonblock <- v;
    true
  | None -> false

let open_fds io =
  List.sort compare (Hashtbl.fold (fun fd _ acc -> fd :: acc) io.fds [])

(* Lowest closed fd first, like a real per-process table. Reuse keeps
   fd values small and dense, so a long-lived event-loop process can
   index flat per-fd state arrays by fd. *)
let install_fd io obj =
  let fd =
    match io.free_fds with
    | fd :: rest ->
      io.free_fds <- rest;
      fd
    | [] ->
      let fd = io.next_fd in
      io.next_fd <- fd + 1;
      fd
  in
  Hashtbl.replace io.fds fd { obj; nonblock = false };
  fd

let install_conn io conn =
  Net.Conn.retain conn;
  install_fd io (Fd_conn conn)

let install_listener io sock =
  io.listener <- Some sock;
  let fd = install_fd io (Fd_listener sock) in
  io.listener_fd <- fd;
  fd

(* keep [free_fds] sorted ascending; the list stays short under churn
   because install always takes the head *)
let rec insert_free fd = function
  | [] -> [ fd ]
  | hd :: tl as l ->
    if fd < hd then fd :: l
    else if fd = hd then l
    else hd :: insert_free fd tl

let close_fd io fd ~now =
  match fd_entry_of io fd with
  | None -> false
  | Some e ->
    Hashtbl.remove io.fds fd;
    io.free_fds <- insert_free fd io.free_fds;
    (match e.obj with
    | Fd_conn c -> Net.Conn.server_close c ~now
    | Fd_listener s ->
      Net.Socket.release s ~now;
      (match io.listener with
      | Some cur when cur == s ->
        io.listener <- None;
        io.listener_fd <- -1
      | _ -> ()));
    true

let close_all io ~now ~graceful =
  Hashtbl.iter
    (fun _ e ->
      match e.obj with
      | Fd_conn c ->
        if graceful then Net.Conn.server_close c ~now
        else Net.Conn.abort c ~now
      | Fd_listener s -> Net.Socket.release s ~now)
    io.fds;
  Hashtbl.reset io.fds;
  io.free_fds <- [];
  io.listener <- None;
  io.listener_fd <- -1

let set_input io data =
  io.input <- Bytes.copy data;
  io.input_pos <- 0

let names =
  [
    "exit";
    "abort";
    "fork";
    "pthread_create";
    "waitpid";
    "getpid";
    "accept";
    "__stack_chk_fail";
    "__stack_chk_fail_pssp";
    "__GI__fortify_fail";
    "memcpy";
    "memmove";
    "memset";
    "memcmp";
    "strcpy";
    "strncpy";
    "strcat";
    "strlen";
    "strcmp";
    "read_input";
    "read_n";
    "print_str";
    "print_int";
    "putchar";
    "puts";
    "write_out";
    "rand";
    "srand";
    "malloc";
    "free";
    "AES_ENCRYPT_128";
    (* fd-oriented networking (PR 5) — appended so existing slot
       addresses stay stable *)
    "socket";
    "bind";
    "listen";
    "read";
    "write";
    "close";
    "write_str";
    "write_int";
    "waitpid_nb";
    (* readiness / event-loop tier (PR 6) — appended, slots stay stable *)
    "set_nonblock";
    "epoll_wait";
  ]

let slot_table = Hashtbl.create 64

let () =
  List.iteri
    (fun i name ->
      let addr =
        Int64.add Layout.glibc_base (Int64.of_int (i * Layout.glibc_slot_size))
      in
      Hashtbl.add slot_table name addr)
    names

let addr_of name =
  match Hashtbl.find_opt slot_table name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Glibc.addr_of: unknown builtin %s" name)

let addr_table =
  let t = Hashtbl.create 64 in
  List.iter (fun name -> Hashtbl.add t (addr_of name) name) names;
  t

let name_of_addr addr = Hashtbl.find_opt addr_table addr

(* ---- helpers ---------------------------------------------------------- *)

let arg cpu i =
  match i with
  | 0 -> Cpu.get cpu Isa.Reg.RDI
  | 1 -> Cpu.get cpu Isa.Reg.RSI
  | 2 -> Cpu.get cpu Isa.Reg.RDX
  | _ -> invalid_arg "Glibc.arg"

let charge cpu n = Cpu.add_cycles cpu n
let charge_bytes cpu n = charge cpu (Cost.builtin_base_cycles + (n * Cost.builtin_byte_cycles))

(* Page-aware: one blit per page instead of one Hashtbl probe per byte.
   [cstr_len] faults at the same address a byte-at-a-time scan would. *)
let read_cstring mem addr =
  Bytes.to_string (Memory.read_bytes mem addr (Memory.cstr_len mem addr))

(* ---- pure builtin cores ------------------------------------------------ *)

(* The builtins whose whole effect is a function of (cpu, mem) — no
   [io], no kernel control transfer, no PRNG. Factored out as
   {!Compile.builtin_fn} cores so the OS dispatch below and tier-2
   call-site inlining ({!inline_core}) execute the {e same} closure:
   byte writes, cycle charges, fault addresses and the rax value cannot
   drift between the two paths. *)

let core_memcpy cpu mem =
  let dst = arg cpu 0 and src = arg cpu 1 and n = Int64.to_int (arg cpu 2) in
  charge_bytes cpu n;
  if n > 0 then Memory.write_bytes mem dst (Memory.read_bytes mem src n);
  dst

let core_memset cpu mem =
  let dst = arg cpu 0 and c = Int64.to_int (arg cpu 1) and n = Int64.to_int (arg cpu 2) in
  charge_bytes cpu n;
  if n > 0 then Memory.write_bytes mem dst (Bytes.make n (Char.chr (c land 0xFF)));
  dst

let core_memcmp cpu mem =
  let a = arg cpu 0 and b = arg cpu 1 and n = Int64.to_int (arg cpu 2) in
  charge_bytes cpu n;
  let r =
    if n <= 0 then 0
    else compare (Memory.read_bytes mem a n) (Memory.read_bytes mem b n)
  in
  Int64.of_int r

let core_strcpy cpu mem =
  (* copies the terminating NUL in the same bulk write *)
  let dst = arg cpu 0 and src = arg cpu 1 in
  let n = Memory.cstr_len mem src in
  charge_bytes cpu (n + 1);
  Memory.write_bytes mem dst (Memory.read_bytes mem src (n + 1));
  dst

let core_strncpy cpu mem =
  let dst = arg cpu 0 and src = arg cpu 1 and n = Int64.to_int (arg cpu 2) in
  let len = Stdlib.min (Memory.cstr_len mem src) n in
  charge_bytes cpu n;
  if len > 0 then Memory.write_bytes mem dst (Memory.read_bytes mem src len);
  if n > len then
    Memory.write_bytes mem
      (Int64.add dst (Int64.of_int len))
      (Bytes.make (n - len) '\000');
  dst

let core_strcat cpu mem =
  let dst = arg cpu 0 and src = arg cpu 1 in
  let dlen = Memory.cstr_len mem dst in
  let slen = Memory.cstr_len mem src in
  charge_bytes cpu (dlen + slen + 1);
  Memory.write_bytes mem
    (Int64.add dst (Int64.of_int dlen))
    (Memory.read_bytes mem src (slen + 1));
  dst

let core_strlen cpu mem =
  let n = Memory.cstr_len mem (arg cpu 0) in
  charge_bytes cpu n;
  Int64.of_int n

let core_strcmp cpu mem =
  let a = read_cstring mem (arg cpu 0) in
  let b = read_cstring mem (arg cpu 1) in
  charge_bytes cpu (String.length a + String.length b);
  Int64.of_int (compare a b)

let core_aes_encrypt cpu _mem =
  (* Key in xmm1, plaintext in xmm15, ciphertext back to xmm15 — the
     helper Code 8 calls. Cost matches AES-NI latency. *)
  charge cpu Cost.aes_encrypt_call_cycles;
  let key_lo, key_hi = Cpu.get_xmm cpu Isa.Reg.Xmm.xmm1 in
  let pt_lo, pt_hi = Cpu.get_xmm cpu Isa.Reg.Xmm.xmm15 in
  let key = Crypto.Aes128.key_of_int64s key_lo key_hi in
  let ct_lo, ct_hi = Crypto.Aes128.encrypt_int64s key pt_lo pt_hi in
  Cpu.set_xmm cpu Isa.Reg.Xmm.xmm15 (ct_lo, ct_hi);
  0L

let inline_core : string -> Compile.builtin_fn option = function
  | "memcpy" | "memmove" -> Some core_memcpy
  | "memset" -> Some core_memset
  | "memcmp" -> Some core_memcmp
  | "strcpy" -> Some core_strcpy
  | "strncpy" -> Some core_strncpy
  | "strcat" -> Some core_strcat
  | "strlen" -> Some core_strlen
  | "strcmp" -> Some core_strcmp
  | "AES_ENCRYPT_128" -> Some core_aes_encrypt
  | _ -> None

(* ---- the canary-check routine patched into __stack_chk_fail (Fig. 4) -- *)

let stack_chk_fail_pssp cpu mem =
  (* rdi carries the candidate canary word: C1 (high 32) || C0 (low 32).
     If C0 xor C1 equals the low half of the TLS canary, set ZF and
     return; otherwise fall through to __GI__fortify_fail. This keeps
     compatibility with plain SSP epilogues, whose (already mismatching)
     rdi fails the test with overwhelming probability. *)
  let candidate = Cpu.get cpu Isa.Reg.RDI in
  let tls_canary = Pssp.Tls.canary mem ~fs_base:cpu.Cpu.fs_base in
  (* cost of the real check-and-fail routine: the ~12 ALU/mov
     instructions of Fig. 4 plus PLT indirection and the call/ret pair
     the epilogue pays to reach it *)
  charge cpu 28;
  if Pssp.Canary.packed32_checks_out ~tls_canary candidate then begin
    cpu.Cpu.flags.Cpu.zf <- true;
    (* runs inside the epilogue: rax holds the function's return value
       and must survive the check *)
    Ret (Cpu.get cpu Isa.Reg.RAX)
  end
  else Control (Abort "*** buffer overflow detected ***: terminated")

(* ---- dispatch --------------------------------------------------------- *)

let dispatch ~name cpu mem ~pid io =
  match inline_core name with
  | Some core -> Ret (core cpu mem)  (* pure cores, shared with tier-2 inlining *)
  | None -> (
  match name with
  | "exit" ->
    charge cpu Cost.builtin_base_cycles;
    Control (Exit (Int64.to_int (arg cpu 0)))
  | "abort" ->
    charge cpu Cost.builtin_base_cycles;
    Control (Abort "Aborted")
  | "fork" ->
    charge cpu Cost.fork_cycles;
    Control Fork
  | "pthread_create" ->
    charge cpu Cost.fork_cycles;
    Control (Spawn_thread { start = arg cpu 0; arg = arg cpu 1 })
  | "waitpid" ->
    charge cpu Cost.syscall_cycles;
    Control Wait_child
  | "waitpid_nb" ->
    charge cpu Cost.syscall_cycles;
    Control Wait_child_nb
  | "getpid" ->
    charge cpu Cost.builtin_base_cycles;
    Ret (Int64.of_int pid)
  | "accept" ->
    charge cpu Cost.syscall_cycles;
    Control Accept
  | "socket" ->
    charge cpu Cost.syscall_cycles;
    Ret (Int64.of_int (install_listener io (Net.Socket.create ())))
  | "bind" -> (
    let fd = Int64.to_int (arg cpu 0) and port = Int64.to_int (arg cpu 1) in
    charge cpu Cost.syscall_cycles;
    match fd_obj_of io fd with
    | Some (Fd_listener s) ->
      Net.Socket.bind s ~port;
      Ret 0L
    | _ -> Ret (-1L))
  | "listen" ->
    (* kernel-served: listening registers the socket in the kernel's
       port table (SO_REUSEPORT-style sharding needs the kernel to see
       every listener on a port) *)
    let fd = Int64.to_int (arg cpu 0) and backlog = Int64.to_int (arg cpu 1) in
    charge cpu Cost.syscall_cycles;
    Control (Listen { fd; backlog })
  | "set_nonblock" ->
    (* fcntl(fd, F_SETFL, O_NONBLOCK) in spirit: accept/read/write on
       the fd return EAGAIN (-2) instead of parking *)
    let fd = Int64.to_int (arg cpu 0) in
    charge cpu Cost.syscall_cycles;
    Ret (if set_fd_nonblock io fd true then 0L else -1L)
  | "epoll_wait" ->
    (* epoll_wait(events, cap): writes ready fds (8-byte ints) into the
       guest array at [dst], blocking until at least one is ready. The
       whole open fd table is the interest set — level-triggered. *)
    let dst = arg cpu 0 and cap = Int64.to_int (arg cpu 1) in
    charge cpu Cost.syscall_cycles;
    Control (Epoll_wait { dst; cap })
  | "close" ->
    charge cpu Cost.syscall_cycles;
    Control (Close_fd (Int64.to_int (arg cpu 0)))
  | "read" -> (
    let fd = Int64.to_int (arg cpu 0)
    and dst = arg cpu 1
    and cap = Int64.to_int (arg cpu 2) in
    charge cpu Cost.syscall_cycles;
    match conn_of_fd io fd with
    | Some _ -> Control (Sock_read { fd; dst; cap })
    | None ->
      (* no connection behind this fd: serve from stdin-style input so
         fd-oriented handlers also run under the single-shot harness *)
      let avail = Bytes.length io.input - io.input_pos in
      let n = Stdlib.max 0 (Stdlib.min cap avail) in
      charge_bytes cpu n;
      if n > 0 then
        Memory.write_bytes mem dst (Bytes.sub io.input io.input_pos n);
      io.input_pos <- io.input_pos + n;
      Ret (Int64.of_int n))
  | "write" -> (
    let fd = Int64.to_int (arg cpu 0)
    and src = arg cpu 1
    and n = Int64.to_int (arg cpu 2) in
    charge_bytes cpu n;
    let data = if n > 0 then Memory.read_bytes mem src n else Bytes.create 0 in
    match conn_of_fd io fd with
    | Some _ -> Control (Sock_write { fd; data })
    | None ->
      Buffer.add_bytes io.output data;
      Ret (Int64.of_int n))
  | "write_str" -> (
    let fd = Int64.to_int (arg cpu 0) in
    let s = read_cstring mem (arg cpu 1) in
    charge_bytes cpu (String.length s);
    match conn_of_fd io fd with
    | Some _ -> Control (Sock_write { fd; data = Bytes.of_string s })
    | None ->
      Buffer.add_string io.output s;
      Ret (Int64.of_int (String.length s)))
  | "write_int" -> (
    let fd = Int64.to_int (arg cpu 0) in
    let s = Int64.to_string (arg cpu 1) in
    charge cpu (Cost.builtin_base_cycles + 16);
    match conn_of_fd io fd with
    | Some _ -> Control (Sock_write { fd; data = Bytes.of_string s })
    | None ->
      Buffer.add_string io.output s;
      Ret 0L)
  | "__stack_chk_fail" ->
    Buffer.add_string io.errout "*** stack smashing detected ***: terminated\n";
    Control (Abort "*** stack smashing detected ***: terminated")
  | "__stack_chk_fail_pssp" -> (
    match stack_chk_fail_pssp cpu mem with
    | Control (Abort msg) as c ->
      Buffer.add_string io.errout (msg ^ "\n");
      c
    | other -> other)
  | "__GI__fortify_fail" ->
    Buffer.add_string io.errout "*** buffer overflow detected ***: terminated\n";
    Control (Abort "*** buffer overflow detected ***: terminated")
  | "read_input" ->
    (* recv(2)-like: copies ALL pending input into the buffer with no
       bounds check and no terminator — the paper's overflow vector,
       writing exactly the attacker's bytes. *)
    let dst = arg cpu 0 in
    let n = Bytes.length io.input - io.input_pos in
    charge_bytes cpu n;
    if n > 0 then
      Memory.write_bytes mem dst (Bytes.sub io.input io.input_pos n);
    io.input_pos <- Bytes.length io.input;
    Ret (Int64.of_int n)
  | "read_n" ->
    let dst = arg cpu 0 and cap = Int64.to_int (arg cpu 1) in
    let avail = Bytes.length io.input - io.input_pos in
    let n = Stdlib.max 0 (Stdlib.min cap avail) in
    charge_bytes cpu n;
    if n > 0 then Memory.write_bytes mem dst (Bytes.sub io.input io.input_pos n);
    io.input_pos <- io.input_pos + n;
    Ret (Int64.of_int n)
  | "print_str" ->
    let s = read_cstring mem (arg cpu 0) in
    charge_bytes cpu (String.length s);
    Buffer.add_string io.output s;
    Ret (Int64.of_int (String.length s))
  | "print_int" ->
    let v = arg cpu 0 in
    charge cpu (Cost.builtin_base_cycles + 16);
    Buffer.add_string io.output (Int64.to_string v);
    Ret 0L
  | "putchar" ->
    charge cpu Cost.builtin_base_cycles;
    Buffer.add_char io.output (Char.chr (Int64.to_int (arg cpu 0) land 0xFF));
    Ret (arg cpu 0)
  | "puts" ->
    let s = read_cstring mem (arg cpu 0) in
    charge_bytes cpu (String.length s + 1);
    Buffer.add_string io.output s;
    Buffer.add_char io.output '\n';
    Ret (Int64.of_int (String.length s + 1))
  | "write_out" ->
    let src = arg cpu 0 and n = Int64.to_int (arg cpu 1) in
    charge_bytes cpu n;
    if n > 0 then Buffer.add_bytes io.output (Memory.read_bytes mem src n);
    Ret (Int64.of_int n)
  | "rand" ->
    charge cpu (Cost.builtin_base_cycles + 8);
    Ret (Int64.logand (Util.Prng.next64 cpu.Cpu.rng) 0x7FFFFFFFL)
  | "srand" ->
    charge cpu Cost.builtin_base_cycles;
    Ret 0L
  | "malloc" ->
    let n = Int64.to_int (arg cpu 0) in
    charge cpu (Cost.builtin_base_cycles + 20);
    let aligned = (n + 15) land lnot 15 in
    let ptr = io.brk in
    let limit = Int64.add Layout.heap_base (Int64.of_int Layout.heap_size) in
    if Int64.compare (Int64.add ptr (Int64.of_int aligned)) limit > 0 then Ret 0L
    else begin
      io.brk <- Int64.add ptr (Int64.of_int aligned);
      Ret ptr
    end
  | "free" ->
    charge cpu Cost.builtin_base_cycles;
    Ret 0L
  | other -> invalid_arg (Printf.sprintf "Glibc.dispatch: unknown builtin %s" other))
