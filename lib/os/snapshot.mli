(** Zygote process snapshots.

    [capture] freezes a fully loaded, protected, warmed process — CoW
    page-store family, fd table, TLS/canary state, and the compiled
    translation-cache tier; [resume] thaws a warm copy into any
    kernel, bit-identical to the frozen original. See
    {!Kernel.capture_snapshot} and {!Kernel.resume_snapshot} for the
    precise contract (quiescence requirements, re-armed parks, pid and
    virtual-time semantics). *)

type t = Kernel.snapshot

val capture : Kernel.t -> Process.t -> t
val resume : Kernel.t -> t -> Process.t
