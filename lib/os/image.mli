(** Executable images — the simulated equivalent of an ELF binary.

    An image owns its text bytes, so the binary rewriter can patch them
    before the image is loaded into a process. Static-link images embed
    stub code for the glibc functions they would otherwise import, and
    the rewriter may append extra sections (Dyninst-style, §V-D). *)

type linkage = Dynamic | Static

type symbol = {
  sym_name : string;
  sym_addr : int64;
  sym_size : int;  (** code bytes the symbol spans (0 if unknown) *)
}

type t = {
  name : string;
  linkage : linkage;
  entry : int64;  (** address of [main] *)
  text_base : int64;
  mutable text : bytes;
  data_base : int64;
  data : bytes;
  mutable symbols : symbol list;
  mutable extra_base : int64;  (** base of rewriter-added section, or 0 *)
  mutable extra : bytes;  (** rewriter-added code section (may be empty) *)
  scheme_tag : string;  (** protection scheme metadata for reporting *)
}

val create :
  name:string ->
  ?linkage:linkage ->
  ?data:bytes ->
  ?scheme_tag:string ->
  entry:string ->
  text:bytes ->
  symbols:symbol list ->
  unit ->
  t
(** [entry] names the symbol execution starts at (normally ["main"]).
    Raises [Invalid_argument] if that symbol is missing. *)

val find_symbol : t -> string -> symbol option
val find_symbol_exn : t -> string -> symbol

val symbol_covering : t -> int64 -> symbol option
(** The function symbol whose [addr, addr+size) range contains the given
    address. *)

val code_size : t -> int
(** Total code bytes including any rewriter-added section — the metric
    behind Table II. *)

val clone : t -> t
(** Deep copy, so a rewriter run never mutates the original. *)

val disassemble_symbol : t -> string -> (int64 * Isa.Insn.t) list
(** Decode the instructions of one function.
    Raises [Invalid_argument] on an unknown symbol, [Isa.Decode.Bad_encoding]
    on corrupt text. *)

val annotate_targets : t -> Isa.Insn.t -> Isa.Insn.t
(** Replace absolute call/jump targets with symbolic names (image
    symbols or glibc entries) where known — for readable listings. *)

val pp_disassembly : Format.formatter -> t -> unit
