(** The simulated C library.

    Each glibc entry point occupies a fixed pseudo-address slot; a
    [call] that lands on a slot traps out of the interpreter and is
    served here, in OCaml, against the process's simulated memory.
    Memory-writing builtins ([memcpy], [strcpy], [read_input], …)
    perform {e raw, unchecked} byte writes — they are the overflow
    vector the paper defends against.

    Builtins that need kernel services (fork, exit, waitpid, accept)
    return a [Control] value that {!Kernel} interprets. *)

type control =
  | Exit of int
  | Abort of string  (** SIGABRT with diagnostic (stack smashing etc.) *)
  | Fork
  | Spawn_thread of { start : int64; arg : int64 }
  | Wait_child
  | Accept  (** server blocks for the next request; driver resumes it *)

type outcome =
  | Ret of int64  (** completed; value for rax *)
  | Control of control

(** Per-process standard I/O plus the heap break. *)
type io = {
  mutable input : bytes;
  mutable input_pos : int;
  output : Buffer.t;
  errout : Buffer.t;
  mutable brk : int64;
}

val make_io : unit -> io
val clone_io : io -> io

val set_input : io -> bytes -> unit
(** Replace the pending input (rewinds the read cursor). *)

val names : string list
(** Every entry point, in slot order. *)

val addr_of : string -> int64
(** Raises [Invalid_argument] on an unknown name. *)

val name_of_addr : int64 -> string option
(** [Some name] iff the address is exactly a known slot. *)

val dispatch :
  name:string -> Vm64.Cpu.t -> Vm64.Memory.t -> pid:int -> io -> outcome
(** Execute one builtin. Arguments are taken from the SysV registers
    (rdi, rsi, rdx). Cycle costs are charged to the CPU. May raise
    [Vm64.Fault.Trap] if a memory-touching builtin walks off mapped
    memory — the kernel converts that into a crash, exactly like a
    hardware fault. Raises [Invalid_argument] on an unknown name. *)
