(** The simulated C library.

    Each glibc entry point occupies a fixed pseudo-address slot; a
    [call] that lands on a slot traps out of the interpreter and is
    served here, in OCaml, against the process's simulated memory.
    Memory-writing builtins ([memcpy], [strcpy], [read_input], [read],
    …) perform {e raw, unchecked} byte writes — they are the overflow
    vector the paper defends against.

    Builtins that need kernel services (fork, exit, waitpid, accept,
    and the fd operations that may block on a {!Net.Conn}) return a
    [Control] value that {!Kernel} interprets. *)

type control =
  | Exit of int
  | Abort of string  (** SIGABRT with diagnostic (stack smashing etc.) *)
  | Fork
  | Spawn_thread of { start : int64; arg : int64 }
  | Wait_child  (** blocking waitpid: parks until a pending child dies *)
  | Wait_child_nb  (** WNOHANG-style reap of one dead child, never parks *)
  | Accept  (** block for the next pending connection (or driver request) *)
  | Listen of { fd : int; backlog : int }
      (** kernel-served so every listener lands in the kernel's
          port-sharding table (SO_REUSEPORT semantics) *)
  | Sock_read of { fd : int; dst : int64; cap : int }
      (** read from a connection fd; parks when no bytes are pending *)
  | Sock_write of { fd : int; data : bytes }
      (** write to a connection fd; parks while the TX buffer is full.
          The payload is snapshotted at call time, like [write(2)]. *)
  | Epoll_wait of { dst : int64; cap : int }
      (** readiness query over the whole open fd table; parks until at
          least one fd is ready, then writes ready fds into the guest
          array at [dst] (8-byte slots, at most [cap]) *)
  | Close_fd of int

type outcome =
  | Ret of int64  (** completed; value for rax *)
  | Control of control

type fd_obj = Fd_conn of Net.Conn.t | Fd_listener of Net.Socket.t

val eagain : int64
(** The -2 sentinel non-blocking [accept]/[read]/[write] return instead
    of parking (EAGAIN). Distinct from -1 (error/closed) and 0 (EOF). *)

(** Per-process standard I/O, the heap break, and the fd table. *)
type fd_entry = { obj : fd_obj; mutable nonblock : bool }

type io = {
  mutable input : bytes;
  mutable input_pos : int;
  output : Buffer.t;
  errout : Buffer.t;
  mutable brk : int64;
  fds : (int, fd_entry) Hashtbl.t;
  mutable free_fds : int list;
      (** closed fds below [next_fd], ascending — install reuses the
          lowest first, keeping fd values dense under churn *)
  mutable next_fd : int;
  mutable listener : Net.Socket.t option;
      (** the most recently created listening socket — what [accept]
          (which takes no fd, see {!Kernel}) and kernel-side connects
          operate on *)
  mutable listener_fd : int;  (** fd of [listener], -1 when none *)
}

val make_io : unit -> io

val clone_io : io -> io
(** Fork/pthread semantics: stdio buffers are fresh, pending input is
    copied, and the fd table is inherited (each connection and listener
    gains one more holder). *)

val snapshot_io : io -> io
(** Zygote-snapshot copy: stdio buffer {e contents} are preserved (a
    resumed process must be indistinguishable from the frozen one) and
    every listener is rebuilt as a fresh socket with the same
    port/backlog/listening state, empty backlog, same fd numbering —
    the copy aliases no live kernel object. Raises [Invalid_argument]
    if any connection fd is open: snapshots are taken of quiescent
    processes parked in [accept]/[epoll_wait]. *)

val set_input : io -> bytes -> unit
(** Replace the pending input (rewinds the read cursor). *)

val fd_obj_of : io -> int -> fd_obj option
val conn_of_fd : io -> int -> Net.Conn.t option
val listener_of : io -> Net.Socket.t option
val listener_fd : io -> int

val fd_nonblock : io -> int -> bool
(** O_NONBLOCK status of the fd ([false] for unknown fds). *)

val set_fd_nonblock : io -> int -> bool -> bool
(** Set/clear O_NONBLOCK; [false] if the fd is not open. *)

val open_fds : io -> int list
(** Every open fd, ascending — the deterministic scan order epoll-style
    readiness queries use. *)

val install_conn : io -> Net.Conn.t -> int
(** Retain the connection and assign it the lowest free fd. *)

val install_listener : io -> Net.Socket.t -> int

val close_fd : io -> int -> now:int64 -> bool
(** Drop the fd; releases the underlying connection or listener.
    [false] if the fd was not open. *)

val close_all : io -> now:int64 -> graceful:bool -> unit
(** Process-death cleanup: graceful (exit) half-closes connections so
    buffered responses still reach the client; non-graceful (crash)
    aborts them — the reset the attacker's client observes. *)

val names : string list
(** Every entry point, in slot order. *)

val addr_of : string -> int64
(** Raises [Invalid_argument] on an unknown name. *)

val name_of_addr : int64 -> string option
(** [Some name] iff the address is exactly a known slot. *)

val inline_core : string -> Vm64.Compile.builtin_fn option
(** The pure cores — builtins whose entire effect is a function of
    (cpu, mem): the mem*/str* family and [AES_ENCRYPT_128]. [dispatch]
    executes exactly these closures for those names, so handing the
    table to {!Vm64.Exec.create_env}'s [inline_builtin] lets tier 2 run
    them in line at direct call sites with identical memory effects,
    cycle charges, fault addresses and rax. [None] for every builtin
    that touches [io] or needs kernel control (and for
    [__stack_chk_fail], which {!Preload} may remap per-process). *)

val dispatch :
  name:string -> Vm64.Cpu.t -> Vm64.Memory.t -> pid:int -> io -> outcome
(** Execute one builtin. Arguments are taken from the SysV registers
    (rdi, rsi, rdx). Cycle costs are charged to the CPU. May raise
    [Vm64.Fault.Trap] if a memory-touching builtin walks off mapped
    memory — the kernel converts that into a crash, exactly like a
    hardware fault. Raises [Invalid_argument] on an unknown name. *)
