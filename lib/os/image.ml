type linkage = Dynamic | Static

type symbol = { sym_name : string; sym_addr : int64; sym_size : int }

type t = {
  name : string;
  linkage : linkage;
  entry : int64;
  text_base : int64;
  mutable text : bytes;
  data_base : int64;
  data : bytes;
  mutable symbols : symbol list;
  mutable extra_base : int64;
  mutable extra : bytes;
  scheme_tag : string;
}

let find_symbol t name =
  List.find_opt (fun s -> String.equal s.sym_name name) t.symbols

let find_symbol_exn t name =
  match find_symbol t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Image.find_symbol_exn: %s has no %s" t.name name)

let create ~name ?(linkage = Dynamic) ?(data = Bytes.create 0)
    ?(scheme_tag = "none") ~entry ~text ~symbols () =
  let t =
    {
      name;
      linkage;
      entry = 0L;
      text_base = Vm64.Layout.text_base;
      text;
      data_base = Vm64.Layout.data_base;
      data;
      symbols;
      extra_base = 0L;
      extra = Bytes.create 0;
      scheme_tag;
    }
  in
  let entry_sym = find_symbol_exn t entry in
  { t with entry = entry_sym.sym_addr }

let symbol_covering t addr =
  List.find_opt
    (fun s ->
      s.sym_size > 0
      && Int64.compare addr s.sym_addr >= 0
      && Int64.compare addr (Int64.add s.sym_addr (Int64.of_int s.sym_size)) < 0)
    t.symbols

let code_size t = Bytes.length t.text + Bytes.length t.extra

let clone t =
  {
    t with
    text = Bytes.copy t.text;
    extra = Bytes.copy t.extra;
    symbols = t.symbols;
  }

let section_bytes t addr =
  (* Locate which section an address belongs to: (bytes, offset). *)
  let within base data =
    let off = Int64.sub addr base in
    if Int64.compare off 0L >= 0 && Int64.compare off (Int64.of_int (Bytes.length data)) < 0
    then Some (data, Int64.to_int off)
    else None
  in
  match within t.text_base t.text with
  | Some r -> Some r
  | None ->
    if Bytes.length t.extra > 0 then within t.extra_base t.extra else None

let disassemble_symbol t name =
  let s = find_symbol_exn t name in
  match section_bytes t s.sym_addr with
  | None -> invalid_arg (Printf.sprintf "Image.disassemble_symbol: %s out of sections" name)
  | Some (data, off) ->
    let code = Bytes.sub data off s.sym_size in
    List.map
      (fun (o, insn) -> (Int64.add s.sym_addr (Int64.of_int o), insn))
      (Isa.Decode.decode_all code)

let annotate_targets t insn =
  let symbol_name addr =
    match
      List.find_map
        (fun sy -> if Int64.equal sy.sym_addr addr then Some sy.sym_name else None)
        t.symbols
    with
    | Some n -> Some n
    | None -> Glibc.name_of_addr addr
  in
  let target = function
    | Isa.Insn.Abs a -> (
      match symbol_name a with
      | Some n -> Isa.Insn.Sym n
      | None -> Isa.Insn.Abs a)
    | other -> other
  in
  match insn with
  | Isa.Insn.Call tg -> Isa.Insn.Call (target tg)
  | Isa.Insn.Jmp tg -> Isa.Insn.Jmp (target tg)
  | Isa.Insn.Jcc (c, tg) -> Isa.Insn.Jcc (c, target tg)
  | other -> other

let pp_disassembly fmt t =
  let by_addr =
    List.sort (fun a b -> Int64.compare a.sym_addr b.sym_addr) t.symbols
  in
  List.iter
    (fun s ->
      if s.sym_size > 0 then begin
        Format.fprintf fmt "%s:@." s.sym_name;
        List.iter
          (fun (addr, insn) ->
            Format.fprintf fmt "  %8Lx:  %s@." addr
              (Isa.Asm.to_string (annotate_targets t insn)))
          (disassemble_symbol t s.sym_name)
      end)
    by_addr
