(** Serialisation of executable images — a minimal ELF-like container so
    compiled (or rewritten) binaries can be written to disk and loaded
    back, e.g. by the [pssp compile] / [pssp exec] CLI commands.

    Format: magic ["PSSPEXE\x00"], a version word, then length-prefixed
    sections and the symbol table, all little-endian. *)

exception Format_error of string

val magic : string
val version : int

val write : Image.t -> bytes
val read : bytes -> Image.t
(** Raises {!Format_error} on anything malformed: bad magic, unknown
    version, truncation, or inconsistent section lengths. *)

val save : Image.t -> string -> unit
(** Write to a file path. *)

val load : string -> Image.t
(** Read from a file path. Raises {!Format_error} or [Sys_error]. *)
