type tracer = {
  ring : (int64 * Isa.Insn.t) option array;
  mutable next : int;
  mutable total : int;
}

let ring_tracer ~capacity =
  if capacity <= 0 then invalid_arg "Debug.ring_tracer: capacity";
  { ring = Array.make capacity None; next = 0; total = 0 }

let on_retire t (cpu : Vm64.Cpu.t) insn =
  t.ring.(t.next) <- Some (cpu.Vm64.Cpu.rip, insn);
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let recent t ?image () =
  let annotate insn =
    match image with
    | Some img -> Image.annotate_targets img insn
    | None -> insn
  in
  let n = Array.length t.ring in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((t.next + i) mod n) with
    | Some (rip, insn) ->
      out := Printf.sprintf "%8Lx: %s" rip (Isa.Asm.to_string (annotate insn)) :: !out
    | None -> ()
  done;
  !out

let retired t = t.total

type frame = {
  frame_rbp : int64;
  return_address : int64;
  in_function : string option;
}

let backtrace ?(limit = 64) (proc : Process.t) =
  let mem = proc.Process.mem in
  let covering addr =
    Option.map
      (fun (s : Image.symbol) -> s.Image.sym_name)
      (Image.symbol_covering proc.Process.image addr)
  in
  let rec walk rbp depth acc =
    if depth >= limit then List.rev acc
    else if not (Vm64.Memory.is_mapped mem rbp) then List.rev acc
    else begin
      let saved_rbp = Vm64.Memory.read_u64 mem rbp in
      let return_address = Vm64.Memory.read_u64 mem (Int64.add rbp 8L) in
      let frame = { frame_rbp = rbp; return_address; in_function = covering return_address } in
      (* a sane chain grows towards higher addresses; anything else means
         the saved rbp was overwritten *)
      if Int64.compare saved_rbp rbp <= 0 then List.rev (frame :: acc)
      else walk saved_rbp (depth + 1) (frame :: acc)
    end
  in
  walk (Vm64.Cpu.get proc.Process.cpu Isa.Reg.RBP) 0 []

let pp_backtrace fmt frames =
  List.iteri
    (fun i f ->
      Format.fprintf fmt "#%-2d rbp=0x%Lx ret=0x%Lx%s@." i f.frame_rbp
        f.return_address
        (match f.in_function with
        | Some name -> " in <" ^ name ^ ">"
        | None -> ""))
    frames
