(** Post-mortem debugging aids: an execution ring tracer and an
    rbp-chain stack unwinder — what you reach for when a canary scheme
    misbehaves in the simulator. *)

type tracer

val ring_tracer : capacity:int -> tracer
(** Keep the last [capacity] retired instructions. *)

val on_retire : tracer -> Vm64.Cpu.t -> Isa.Insn.t -> unit
(** Plug into {!Kernel.create}'s [on_retire]. *)

val recent : tracer -> ?image:Image.t -> unit -> string list
(** The retained tail, oldest first, formatted as
    ["<rip>: <instruction>"] with call targets symbolised when an image
    is supplied. *)

val retired : tracer -> int
(** Total instructions seen (not just the retained window). *)

type frame = {
  frame_rbp : int64;
  return_address : int64;
  in_function : string option;  (** symbol covering the return address *)
}

val backtrace : ?limit:int -> Process.t -> frame list
(** Walk the saved-rbp chain from the process's current rbp. Robust to
    corruption: stops at unmapped or non-monotonic frame pointers
    (a smashed chain simply yields a short trace). *)

val pp_backtrace : Format.formatter -> frame list -> unit
