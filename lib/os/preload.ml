open Vm64

type mode =
  | No_preload
  | Pssp_wide
  | Pssp_packed
  | Raf
  | Dynaguard_fix
  | Dcr_fix

let mode_name = function
  | No_preload -> "none"
  | Pssp_wide -> "pssp-wide"
  | Pssp_packed -> "pssp-packed"
  | Raf -> "raf"
  | Dynaguard_fix -> "dynaguard"
  | Dcr_fix -> "dcr"

(* ---- DCR canary word format ------------------------------------------- *)

let dcr_end_marker = 0xFFFF
let low48_mask = 0x0000FFFFFFFFFFFFL

let dcr_low48 v = Int64.logand v low48_mask

let dcr_pack ~delta ~canary =
  if delta < 0 || delta > 0xFFFF then invalid_arg "Preload.dcr_pack: delta out of range";
  Int64.logor (Int64.shift_left (Int64.of_int delta) 48) (dcr_low48 canary)

let dcr_delta v = Int64.to_int (Int64.shift_right_logical v 48)

let dcr_matches ~tls_canary v = Int64.equal (dcr_low48 v) (dcr_low48 tls_canary)

(* ---- fixup walkers ----------------------------------------------------- *)

let refresh_tls_canary rng mem ~fs_base =
  let c = Util.Prng.next64 rng in
  Pssp.Tls.set_canary mem ~fs_base c;
  c

let dynaguard_rewrite_all rng mem ~fs_base =
  (* New C everywhere: TLS plus every live stack canary recorded in the
     canary address buffer. This is what makes DynaGuard correct where
     RAF-SSP is not. *)
  let c = refresh_tls_canary rng mem ~fs_base in
  let buf = Layout.dynaguard_buffer_base in
  let count = Int64.to_int (Memory.read_u64 mem buf) in
  for i = 1 to count do
    let slot = Int64.add buf (Int64.of_int (8 * i)) in
    let addr = Memory.read_u64 mem slot in
    Memory.write_u64 mem addr c
  done

let dcr_rewrite_all rng mem ~fs_base =
  let c = refresh_tls_canary rng mem ~fs_base in
  let rec walk addr =
    if not (Int64.equal addr 0L) then begin
      let word = Memory.read_u64 mem addr in
      let delta = dcr_delta word in
      Memory.write_u64 mem addr (dcr_pack ~delta ~canary:c);
      if delta <> dcr_end_marker then
        walk (Int64.add addr (Int64.of_int (8 * delta)))
    end
  in
  walk (Memory.read_u64 mem (Int64.add fs_base Layout.tls_dcr_head_offset))

let refresh_shadow_wide rng mem ~fs_base =
  let c = Pssp.Tls.canary mem ~fs_base in
  Pssp.Tls.set_shadow_pair mem ~fs_base (Pssp.Canary.re_randomize rng c)

let refresh_shadow_packed rng mem ~fs_base =
  let c = Pssp.Tls.canary mem ~fs_base in
  Pssp.Tls.set_shadow_packed mem ~fs_base (Pssp.Canary.re_randomize_packed32 rng c)

(* ---- hooks -------------------------------------------------------------- *)

let on_start mode rng mem ~fs_base =
  match mode with
  | No_preload | Raf | Dynaguard_fix | Dcr_fix -> ()
  | Pssp_wide -> refresh_shadow_wide rng mem ~fs_base
  | Pssp_packed -> refresh_shadow_packed rng mem ~fs_base

let on_fork_child mode rng mem ~fs_base =
  match mode with
  | No_preload -> ()
  | Pssp_wide -> refresh_shadow_wide rng mem ~fs_base
  | Pssp_packed -> refresh_shadow_packed rng mem ~fs_base
  | Raf -> ignore (refresh_tls_canary rng mem ~fs_base)
  | Dynaguard_fix -> dynaguard_rewrite_all rng mem ~fs_base
  | Dcr_fix -> dcr_rewrite_all rng mem ~fs_base

let on_thread_start mode rng mem ~fs_base =
  match mode with
  | No_preload | Raf | Dynaguard_fix | Dcr_fix -> ()
  | Pssp_wide -> refresh_shadow_wide rng mem ~fs_base
  | Pssp_packed -> refresh_shadow_packed rng mem ~fs_base
