type signal = Sigsegv | Sigabrt | Sigill

let signal_name = function
  | Sigsegv -> "SIGSEGV"
  | Sigabrt -> "SIGABRT"
  | Sigill -> "SIGILL"

let signal_of_fault = function
  | Vm64.Fault.Segfault _ -> Sigsegv
  | Vm64.Fault.Bad_instruction _ -> Sigill
  | Vm64.Fault.Stack_overflow_fault _ -> Sigsegv

type status =
  | Runnable
  | Blocked_accept
  | Exited of int
  | Killed of signal * string

let status_is_dead = function
  | Exited _ | Killed _ -> true
  | Runnable | Blocked_accept -> false

let status_to_string = function
  | Runnable -> "runnable"
  | Blocked_accept -> "blocked (accept)"
  | Exited n -> Printf.sprintf "exited %d" n
  | Killed (s, msg) -> Printf.sprintf "killed %s (%s)" (signal_name s) msg

type t = {
  pid : int;
  parent : int option;
  image : Image.t;
  mem : Vm64.Memory.t;
  cpu : Vm64.Cpu.t;
  io : Glibc.io;
  preload : Preload.mode;
  mutable status : status;
  mutable pending_children : int list;
}

let crashed t = match t.status with Killed _ -> true | _ -> false

let patch_text t ~addr code =
  Vm64.Memory.write_bytes t.mem addr code;
  Vm64.Cpu.invalidate_decode t.cpu ~addr ~len:(Bytes.length code)
let stdout t = Buffer.contents t.io.Glibc.output
let stderr t = Buffer.contents t.io.Glibc.errout
let cycles t = t.cpu.Vm64.Cpu.cycles
