type signal = Sigsegv | Sigabrt | Sigill

let signal_name = function
  | Sigsegv -> "SIGSEGV"
  | Sigabrt -> "SIGABRT"
  | Sigill -> "SIGILL"

(* Classic Linux signal numbers — what waitpid's status word encodes. *)
let signal_number = function Sigsegv -> 11 | Sigabrt -> 6 | Sigill -> 4

let signal_of_fault = function
  | Vm64.Fault.Segfault _ -> Sigsegv
  | Vm64.Fault.Bad_instruction _ -> Sigill
  | Vm64.Fault.Stack_overflow_fault _ -> Sigsegv

type status =
  | Runnable
  | Blocked_accept
  | Blocked_read of { fd : int; dst : int64; cap : int }
  | Blocked_write of { fd : int; data : bytes; written : int }
  | Blocked_poll of { dst : int64; cap : int }
  | Blocked_wait
  | Exited of int
  | Killed of signal * string

let status_is_dead = function
  | Exited _ | Killed _ -> true
  | Runnable | Blocked_accept | Blocked_read _ | Blocked_write _
  | Blocked_poll _ | Blocked_wait ->
    false

let status_is_blocked = function
  | Blocked_accept | Blocked_read _ | Blocked_write _ | Blocked_poll _
  | Blocked_wait ->
    true
  | Runnable | Exited _ | Killed _ -> false

let status_to_string = function
  | Runnable -> "runnable"
  | Blocked_accept -> "blocked (accept)"
  | Blocked_read { fd; _ } -> Printf.sprintf "blocked (read fd %d)" fd
  | Blocked_write { fd; _ } -> Printf.sprintf "blocked (write fd %d)" fd
  | Blocked_poll _ -> "blocked (epoll_wait)"
  | Blocked_wait -> "blocked (waitpid)"
  | Exited n -> Printf.sprintf "exited %d" n
  | Killed (s, msg) -> Printf.sprintf "killed %s (%s)" (signal_name s) msg

type t = {
  pid : int;
  parent : int option;
  image : Image.t;
  mem : Vm64.Memory.t;
  cpu : Vm64.Cpu.t;
  io : Glibc.io;
  preload : Preload.mode;
  mutable status : status;
  pending_children : int Queue.t;  (* oldest first; O(1) append at fork *)
  mutable queued : bool;  (* already sitting in the kernel's ready queue *)
  mutable wake_pending : bool;  (* already sitting in the kernel's wake queue *)
}

let crashed t = match t.status with Killed _ -> true | _ -> false

let patch_text t ~addr code =
  Vm64.Memory.write_bytes t.mem addr code;
  Vm64.Cpu.invalidate_decode t.cpu ~addr ~len:(Bytes.length code)
let stdout t = Buffer.contents t.io.Glibc.output
let stderr t = Buffer.contents t.io.Glibc.errout
let cycles t = t.cpu.Vm64.Cpu.cycles
