(* Thin façade over the kernel's zygote-snapshot machinery, so drivers
   read [Os.Snapshot.capture]/[resume] without reaching into Kernel. *)

type t = Kernel.snapshot

let capture = Kernel.capture_snapshot
let resume = Kernel.resume_snapshot
