open Vm64

(* PR 5 made the kernel a round-robin ready-queue scheduler; PR 6 makes
   blocking event-driven. Processes run in bounded slices and park in
   Blocked_* states for kernel services (accept, conn read/write,
   epoll_wait, blocking waitpid). Instead of re-polling every blocked
   process before each dispatch (O(procs log procs) per dispatch), a
   parking process registers a one-shot waiter on the exact object it
   waits for — conn RX/TX, a socket's accept queue, or (implicitly) a
   child's death — and the event that satisfies the wait pushes its pid
   onto a wake queue. Waiters fire in pid order within one event and
   FIFO across events, so scheduling stays deterministic for a
   deterministic workload. Virtual time ([now]) is the cycles retired
   across all processes — one simulated core — and drives connection
   timeouts and the load generator's clocks. *)

(* Listeners sharing a port, SO_REUSEPORT-style: [listen] registers the
   socket here and the kernel round-robins incoming connects across the
   live listeners, in registration order. *)
type port_entry = { mutable socks : Net.Socket.t list; mutable rr : int }

type t = {
  procs : (int, Process.t) Hashtbl.t;
  env : Exec.env;
  master_rng : Util.Prng.t;
  mutable next_pid : int;
  mutable last_reaped : Process.t option;
  mutable forks : int;  (* fork_child calls served by this kernel *)
  ready : int Queue.t;
  wake : int Queue.t;
      (* pids whose blocked condition may now hold (an event fired);
         drained before each dispatch, FIFO *)
  blocked_io : (int, unit) Hashtbl.t;
      (* pids parked in Blocked_read/Blocked_write — the only states
         connection timeouts apply to *)
  mutable next_timeout_check : int64 option;
      (* earliest deadline at which some blocked conn op could time
         out; the sweep runs only when [now] passes this *)
  ports : (int, port_entry) Hashtbl.t;
  mutable now : int64;  (* virtual cycles retired across all processes *)
  mutable conn_timeout : int64 option;
  mutable next_conn_id : int;
}

exception
  Not_blocked_in_accept of { pid : int; status : Process.status }

let () =
  Printexc.register_printer (function
    | Not_blocked_in_accept { pid; status } ->
      Some
        (Printf.sprintf
           "Kernel.Not_blocked_in_accept { pid = %d; status = %s }" pid
           (Process.status_to_string status))
    | _ -> None)

(* Process-wide lifecycle telemetry across all kernels (domain-safe),
   published to the metrics registry: forks feed the bench driver's
   MEM_STATS line alongside the Memory/Tcache metrics; crash/exit
   counters give campaigns a single pane of glass over guest process
   churn. *)
let metric_forks = "os.kernel.forks"

let g_forks = Telemetry.Registry.counter metric_forks
let g_crashes = Telemetry.Registry.counter "os.kernel.crashes"
let g_exits = Telemetry.Registry.counter "os.kernel.exits"

(* Readiness events delivered to parked processes — the direct-wakeup
   path that replaced the every-dispatch scan over all blocked procs. *)
let g_wakeups = Telemetry.Registry.counter "os.kernel.wakeups"

(* A readiness event fired for this blocked process: queue it for a
   retry of its parked operation. The [wake_pending] flag dedups — one
   queue slot per process no matter how many events fire. *)
let mark_ready t (p : Process.t) =
  if
    Process.status_is_blocked p.Process.status
    && not p.Process.wake_pending
  then begin
    p.Process.wake_pending <- true;
    Telemetry.Registry.incr g_wakeups;
    Queue.push p.Process.pid t.wake
  end

(* A dying child is the event a Blocked_wait parent sleeps on. *)
let mark_parent_of_dead t (p : Process.t) =
  match p.Process.parent with
  | None -> ()
  | Some ppid -> (
    match Hashtbl.find_opt t.procs ppid with
    | Some parent when parent.Process.status = Process.Blocked_wait ->
      mark_ready t parent
    | _ -> ())

(* Every transition to a dead status funnels through these two, so the
   registry counts match the statuses processes end up with. Death also
   tears down the fd table: exits half-close connections (buffered
   responses still drain to the client), crashes reset them — the RST
   the remote attacker's probe connection observes. *)
let note_exited t (p : Process.t) code =
  Telemetry.Registry.incr g_exits;
  p.Process.status <- Process.Exited code;
  Glibc.close_all p.Process.io ~now:t.now ~graceful:true;
  mark_parent_of_dead t p

let note_killed t (p : Process.t) signal msg =
  Telemetry.Registry.incr g_crashes;
  p.Process.status <- Process.Killed (signal, msg);
  Glibc.close_all p.Process.io ~now:t.now ~graceful:false;
  mark_parent_of_dead t p;
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.instant "kernel.crash"
      ~args:
        [
          ("pid", string_of_int p.Process.pid);
          ("signal", Process.signal_name signal);
          ("msg", msg);
        ]
      ~cycles:p.Process.cpu.Cpu.cycles

(* Above the builtin slot table (41 slots x 64 B); the glibc region is
   mapped 8 KiB so both stubs fit comfortably. *)
let exit_stub_addr = Int64.add Layout.glibc_base 0x1800L
let ctor_trampoline_addr = Int64.add Layout.glibc_base 0x1900L

let create ?(seed = 0xC0FFEEL) ?on_retire () =
  let is_builtin addr = Glibc.name_of_addr addr in
  (* Tier-2 builtin inlining: the pure glibc cores (mem*/str*, AES) are
     exactly what [handle_builtin] would run for those names — Preload's
     per-process remapping only touches __stack_chk_fail, which
     [inline_core] excludes — so direct calls to them may execute in
     line inside compiled code. *)
  {
    procs = Hashtbl.create 16;
    env =
      Exec.create_env ?on_retire ~inline_builtin:Glibc.inline_core ~is_builtin ();
    master_rng = Util.Prng.create seed;
    next_pid = 1;
    last_reaped = None;
    forks = 0;
    ready = Queue.create ();
    wake = Queue.create ();
    blocked_io = Hashtbl.create 16;
    next_timeout_check = None;
    ports = Hashtbl.create 4;
    now = 0L;
    conn_timeout = None;
    next_conn_id = 1;
  }

let find t pid = Hashtbl.find_opt t.procs pid

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let enqueue t (p : Process.t) =
  if (not p.Process.queued) && not (Process.status_is_dead p.Process.status)
  then begin
    p.Process.queued <- true;
    Queue.push p.Process.pid t.ready
  end

(* The trampoline main returns to: pass its return value to exit(). *)
let exit_stub_code =
  Isa.Encode.list_to_bytes
    [
      Isa.Insn.Mov (Isa.Operand.reg Isa.Reg.RDI, Isa.Operand.reg Isa.Reg.RAX);
      Isa.Insn.Call (Isa.Insn.Abs (Glibc.addr_of "exit"));
      Isa.Insn.Hlt;
    ]

let spawn t ?(input = Bytes.create 0) ?(preload = Preload.No_preload)
    ?(insn_tax = 0) ?(call_tax = 0) (image : Image.t) =
  let mem = Memory.create () in
  (* glibc region: slots are never fetched, but the exit stub is real code. *)
  Memory.map mem ~addr:Layout.glibc_base ~len:8192;
  Memory.write_bytes mem exit_stub_addr exit_stub_code;
  (* text / extra / data *)
  Memory.map mem ~addr:image.Image.text_base ~len:(max 1 (Bytes.length image.Image.text));
  Memory.write_bytes mem image.Image.text_base image.Image.text;
  if Bytes.length image.Image.extra > 0 then begin
    Memory.map mem ~addr:image.Image.extra_base ~len:(Bytes.length image.Image.extra);
    Memory.write_bytes mem image.Image.extra_base image.Image.extra
  end;
  Memory.map mem ~addr:image.Image.data_base ~len:(max 4096 (Bytes.length image.Image.data));
  if Bytes.length image.Image.data > 0 then
    Memory.write_bytes mem image.Image.data_base image.Image.data;
  Memory.map mem ~addr:Layout.dynaguard_buffer_base ~len:Layout.dynaguard_buffer_size;
  Memory.map mem ~addr:Layout.global_canary_buffer_base
    ~len:Layout.global_canary_buffer_size;
  Memory.map mem ~addr:Layout.heap_base ~len:Layout.heap_size;
  (* stack (the guard below it stays unmapped) *)
  Memory.map mem
    ~addr:(Int64.sub Layout.stack_top (Int64.of_int Layout.stack_size))
    ~len:Layout.stack_size;
  (* TLS *)
  Memory.map mem ~addr:Layout.tls_base ~len:Layout.tls_size;
  let cpu = Cpu.create ~seed:(Util.Prng.next64 t.master_rng) () in
  cpu.Cpu.fs_base <- Layout.tls_base;
  cpu.Cpu.insn_tax <- insn_tax;
  cpu.Cpu.call_tax <- call_tax;
  Telemetry.Trace.with_span "kernel.spawn.preload"
    ~args:[ ("image", image.Image.name) ]
    ~cycles:(fun () -> cpu.Cpu.cycles)
    (fun () ->
      ignore
        (Pssp.Tls.install_fresh_canary t.master_rng mem ~fs_base:Layout.tls_base);
      Preload.on_start preload cpu.Cpu.rng mem ~fs_base:Layout.tls_base);
  (* P-SSP-OWF keeps its AES key in the callee-saved r12/r13 pair, set up
     once at program start (§V-E3). *)
  if
    String.equal image.Image.scheme_tag "pssp-owf"
    || String.equal image.Image.scheme_tag "pssp-owf-weak"
  then begin
    Cpu.set cpu Isa.Reg.R12 (Util.Prng.next64 t.master_rng);
    Cpu.set cpu Isa.Reg.R13 (Util.Prng.next64 t.master_rng)
  end;
  (* Scheme-family setup, keyed on the image's scheme tag so processes
     under other schemes keep their exact memory footprint and PRNG
     stream. The regions are ordinary mappings: CoW fork and zygote
     snapshots clone them with the rest of the address space. *)
  if String.equal image.Image.scheme_tag "shadow-compact" then begin
    (* the compact shadow stack, plus its pointer in TLS *)
    Memory.map mem ~addr:Layout.shadow_stack_base ~len:Layout.shadow_stack_size;
    Memory.write_u64 mem
      (Int64.add Layout.tls_base Layout.tls_shadow_sp_offset)
      Layout.shadow_stack_base
  end;
  if String.equal image.Image.scheme_tag "shadow-parallel" then
    (* the mirror of the stack's return-address slots, at a fixed delta *)
    Memory.map mem
      ~addr:
        (Int64.sub
           (Int64.sub Layout.stack_top (Int64.of_int Layout.stack_size))
           Layout.shadow_parallel_delta)
      ~len:Layout.stack_size;
  if String.equal image.Image.scheme_tag "pac-canary" then
    cpu.Cpu.pac_key <- Util.Prng.next64 t.master_rng;
  if String.equal image.Image.scheme_tag "wasm-ssp" then
    (* linear-memory semantics: a write running off the top of the stack
       lands in this spill region instead of trapping, so an overflow is
       only caught when the epilogue canary check runs *)
    Memory.map mem ~addr:Layout.stack_top ~len:Layout.wasm_spill_size;
  (* initial stack: rsp -> return address = exit trampoline *)
  let rsp = Int64.sub Layout.stack_top 64L in
  Cpu.set cpu Isa.Reg.RSP (Int64.sub rsp 8L);
  Memory.write_u64 mem (Int64.sub rsp 8L) exit_stub_addr;
  (* Rewriter-added constructors (setup_p-ssp, §V-A) run before main via
     a small trampoline. *)
  (match Image.find_symbol image "__pssp_ctor" with
  | Some ctor ->
    Memory.write_bytes mem ctor_trampoline_addr
      (Isa.Encode.list_to_bytes
         [
           Isa.Insn.Call (Isa.Insn.Abs ctor.Image.sym_addr);
           Isa.Insn.Jmp (Isa.Insn.Abs image.Image.entry);
         ]);
    cpu.Cpu.rip <- ctor_trampoline_addr
  | None -> cpu.Cpu.rip <- image.Image.entry);
  let io = Glibc.make_io () in
  Glibc.set_input io input;
  let proc =
    {
      Process.pid = fresh_pid t;
      parent = None;
      image;
      mem;
      cpu;
      io;
      preload;
      status = Process.Runnable;
      pending_children = Queue.create ();
      queued = false;
      wake_pending = false;
    }
  in
  Hashtbl.add t.procs proc.Process.pid proc;
  proc

type stop =
  | Stop_exit of int
  | Stop_kill of Process.signal * string
  | Stop_accept
  | Stop_io
  | Stop_fuel

let stop_to_string = function
  | Stop_exit n -> Printf.sprintf "exited %d" n
  | Stop_kill (s, msg) -> Printf.sprintf "killed %s: %s" (Process.signal_name s) msg
  | Stop_accept -> "blocked on accept"
  | Stop_io -> "blocked on io"
  | Stop_fuel -> "out of fuel"

let fork_child t (parent : Process.t) =
  t.forks <- t.forks + 1;
  Telemetry.Registry.incr g_forks;
  let child_cpu = Cpu.clone parent.Process.cpu in
  let child_mem = Memory.clone parent.Process.mem in
  (* fork() return values *)
  let child_pid = fresh_pid t in
  Cpu.set child_cpu Isa.Reg.RAX 0L;
  Preload.on_fork_child parent.Process.preload child_cpu.Cpu.rng child_mem
    ~fs_base:child_cpu.Cpu.fs_base;
  let child =
    {
      Process.pid = child_pid;
      parent = Some parent.Process.pid;
      image = parent.Process.image;
      mem = child_mem;
      cpu = child_cpu;
      io = Glibc.clone_io parent.Process.io;
      preload = parent.Process.preload;
      status = Process.Runnable;
      pending_children = Queue.create ();
      queued = false;
      wake_pending = false;
    }
  in
  Hashtbl.add t.procs child_pid child;
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.instant "kernel.fork"
      ~args:
        [
          ("parent", string_of_int parent.Process.pid);
          ("child", string_of_int child_pid);
        ]
      ~cycles:parent.Process.cpu.Cpu.cycles;
  Cpu.set parent.Process.cpu Isa.Reg.RAX (Int64.of_int child_pid);
  (* O(1) append (oldest child stays at the head) — a list-append here
     goes quadratic for a fork-per-connection server reaping lazily *)
  Queue.push child_pid parent.Process.pending_children;
  enqueue t child;
  child

let spawn_thread t (parent : Process.t) ~start ~arg =
  (* Modelled as a cloned address space with its own stack pointer and a
     fresh TLS-shadow refresh — see DESIGN.md for why this preserves the
     behaviour the evaluation depends on. *)
  let child = fork_child t parent in
  let cpu = child.Process.cpu in
  let rsp = Int64.sub Layout.stack_top 64L in
  Cpu.set cpu Isa.Reg.RSP (Int64.sub rsp 8L);
  Memory.write_u64 child.Process.mem (Int64.sub rsp 8L) exit_stub_addr;
  Cpu.set cpu Isa.Reg.RDI arg;
  cpu.Cpu.rip <- start;
  Preload.on_thread_start parent.Process.preload cpu.Cpu.rng child.Process.mem
    ~fs_base:cpu.Cpu.fs_base;
  (* Statically instrumented binaries have no preload; the rewritten
     pthread_create's new-thread TLS refresh is applied here (the stub's
     own refresh covers the creating thread). *)
  if String.equal parent.Process.image.Image.scheme_tag "pssp-instr-static" then
    Preload.on_thread_start Preload.Pssp_packed cpu.Cpu.rng child.Process.mem
      ~fs_base:cpu.Cpu.fs_base;
  child

(* waitpid status word: low byte = exit code for a clean exit; for a
   signal death, bit 8 set with the signal number in the low bits (so
   SIGABRT encodes as 262, SIGSEGV as 267) — callers can distinguish a
   canary abort from a wild-pointer segfault, not just "crashed". *)
let encode_wait_status (p : Process.t) =
  match p.Process.status with
  | Process.Exited n -> Int64.of_int (n land 0xFF)
  | Process.Killed (s, _) -> Int64.of_int (256 lor Process.signal_number s)
  | _ -> 512L

(* ---- connection-level services ---------------------------------------- *)

let fresh_conn ?tx_capacity t =
  let id = t.next_conn_id in
  t.next_conn_id <- id + 1;
  Net.Conn.create ?tx_capacity ~id ~now:t.now ()

let set_conn_timeout t timeout = t.conn_timeout <- timeout
let now t = t.now

let advance_to t target =
  if Int64.compare target t.now > 0 then t.now <- target

(* [listen] lands here: remember every listener on the port, in
   registration order, so connects can round-robin across them. *)
let register_port t sock =
  let port = Net.Socket.port sock in
  let entry =
    match Hashtbl.find_opt t.ports port with
    | Some e -> e
    | None ->
      let e = { socks = []; rr = 0 } in
      Hashtbl.replace t.ports port e;
      e
  in
  if not (List.exists (fun s -> s == sock) entry.socks) then
    entry.socks <- entry.socks @ [ sock ]

(* Round-robin across the port's live listeners, skipping full
   backlogs; [None] when nothing on the port can take the conn. *)
let pick_listener t port =
  match Hashtbl.find_opt t.ports port with
  | None -> None
  | Some entry ->
    let live = List.filter Net.Socket.listening entry.socks in
    entry.socks <- live;
    let n = List.length live in
    let rec probe i =
      if i >= n then None
      else
        let s = List.nth live ((entry.rr + i) mod n) in
        if Net.Socket.can_push s then begin
          entry.rr <- (entry.rr + i + 1) mod n;
          Some s
        end
        else probe (i + 1)
    in
    if n = 0 then None else probe 0

let connect ?tx_capacity t (p : Process.t) =
  let sock =
    match Glibc.listener_of p.Process.io with
    | Some sock -> if Net.Socket.can_push sock then Some sock else None
    | None ->
      (* the target process owns no listener itself (SO_REUSEPORT
         sharding: its forked children each listen on the port) — pick
         one from the port table, lowest port first *)
      let rec first = function
        | [] -> None
        | port :: rest -> (
          match pick_listener t port with
          | Some s -> Some s
          | None -> first rest)
      in
      first
        (List.sort compare
           (Hashtbl.fold (fun port _ acc -> port :: acc) t.ports []))
  in
  match sock with
  | Some sock ->
    let conn = fresh_conn ?tx_capacity t in
    Net.Socket.push sock conn;
    Some conn
  | None ->
    Net.Socket.note_refused ();
    None

(* A blocked conn operation that outlived the timeout is torn down: the
   conn resets and the blocked syscall completes with -1. *)
let timed_out t conn =
  match t.conn_timeout with
  | Some tmo when Int64.compare (Net.Conn.idle_cycles conn ~now:t.now) tmo >= 0
    ->
    Net.Conn.timeout conn ~now:t.now;
    true
  | _ -> false

(* [Some rax] when the read can complete now (may raise Fault.Trap if
   the destination is unmapped, like any memory-writing builtin). *)
let try_read t (p : Process.t) ~fd ~dst ~cap =
  match Glibc.conn_of_fd p.Process.io fd with
  | None -> Some (-1L)
  | Some conn -> (
    match Net.Conn.server_read conn ~now:t.now ~max:(Stdlib.max 0 cap) with
    | Net.Conn.Data b ->
      Memory.write_bytes p.Process.mem dst b;
      Cpu.add_cycles p.Process.cpu
        (Cost.builtin_byte_cycles * Bytes.length b);
      Some (Int64.of_int (Bytes.length b))
    | Net.Conn.Eof -> Some 0L
    | Net.Conn.Closed -> Some (-1L)
    | Net.Conn.Would_block -> if timed_out t conn then Some (-1L) else None)

let try_write t (p : Process.t) ~fd ~data ~written =
  match Glibc.conn_of_fd p.Process.io fd with
  | None -> `Done (-1L)
  | Some conn ->
    let len = Bytes.length data in
    (* write(2) semantics: once any bytes of this call landed, a close
       mid-write reports the partial count; -1 (EPIPE) only when
       nothing was written at all *)
    let closed_rax written =
      if written > 0 then Int64.of_int written else -1L
    in
    let rec push written =
      if written >= len then `Done (Int64.of_int len)
      else
        let chunk = Bytes.sub data written (len - written) in
        match Net.Conn.server_write conn ~now:t.now chunk with
        | Net.Conn.Wrote n ->
          Cpu.add_cycles p.Process.cpu (Cost.builtin_byte_cycles * n);
          push (written + n)
        | Net.Conn.Conn_closed -> `Done (closed_rax written)
        | Net.Conn.Tx_full ->
          if timed_out t conn then `Done (closed_rax written)
          else `Blocked written
    in
    push written

let try_accept t (p : Process.t) =
  match Glibc.listener_of p.Process.io with
  | None -> None (* legacy magic accept: the driver resumes us *)
  | Some sock -> (
    match Net.Socket.accept_opt sock with
    | Some conn ->
      let fd = Glibc.install_conn p.Process.io conn in
      Net.Conn.touch conn ~now:t.now;
      Some (Int64.of_int fd)
    | None -> None)

(* Level-triggered readiness scan over the whole fd table, ascending fd
   order: a listener is ready when connections are queued, a conn when
   a read would not block (bytes, EOF, reset). Ready fds are written
   into the guest array at [dst] as 8-byte ints, at most [cap].
   [None] = nothing ready, the caller parks. *)
let try_epoll (p : Process.t) ~dst ~cap =
  let io = p.Process.io in
  let ready =
    List.filter
      (fun fd ->
        match Glibc.fd_obj_of io fd with
        | Some (Glibc.Fd_conn c) -> Net.Conn.readable c
        | Some (Glibc.Fd_listener s) -> Net.Socket.pending_count s > 0
        | None -> false)
      (Glibc.open_fds io)
  in
  match ready with
  | [] -> None
  | _ ->
    let cap = Stdlib.max 0 cap in
    let n = ref 0 in
    List.iter
      (fun fd ->
        if !n < cap then begin
          Memory.write_u64 p.Process.mem
            (Int64.add dst (Int64.of_int (!n * 8)))
            (Int64.of_int fd);
          incr n
        end)
      ready;
    Cpu.add_cycles p.Process.cpu (Cost.builtin_byte_cycles * 8 * !n);
    Some (Int64.of_int !n)

(* ---- parking: register one-shot waiters on what the process awaits -- *)

(* Cache the earliest cycle at which this conn's blocked op could time
   out; the sweep only runs when [now] passes the cache. *)
let note_io_deadline t conn =
  match t.conn_timeout with
  | None -> ()
  | Some tmo -> (
    let d = Int64.add (Net.Conn.last_activity conn) tmo in
    match t.next_timeout_check with
    | Some cur when Int64.compare cur d <= 0 -> ()
    | _ -> t.next_timeout_check <- Some d)

let park_read t (p : Process.t) ~fd ~dst ~cap =
  p.Process.status <- Process.Blocked_read { fd; dst; cap };
  match Glibc.conn_of_fd p.Process.io fd with
  | None -> ()
  | Some conn ->
    Hashtbl.replace t.blocked_io p.Process.pid ();
    Net.Conn.add_rx_waiter conn ~key:p.Process.pid (fun () -> mark_ready t p);
    note_io_deadline t conn

let park_write t (p : Process.t) ~fd ~data ~written =
  p.Process.status <- Process.Blocked_write { fd; data; written };
  match Glibc.conn_of_fd p.Process.io fd with
  | None -> ()
  | Some conn ->
    Hashtbl.replace t.blocked_io p.Process.pid ();
    Net.Conn.add_tx_waiter conn ~key:p.Process.pid (fun () -> mark_ready t p);
    note_io_deadline t conn

let park_accept t (p : Process.t) =
  p.Process.status <- Process.Blocked_accept;
  match Glibc.listener_of p.Process.io with
  | None -> () (* legacy magic accept: the driver resumes us *)
  | Some sock ->
    Net.Socket.add_accept_waiter sock ~key:p.Process.pid (fun () ->
        mark_ready t p)

(* epoll parks on everything at once: any conn turning readable (or any
   queued connect) re-queues the process for a fresh scan. Connection
   timeouts don't apply here — an event-loop process is not stuck in
   one conn's op, it's waiting for work. *)
let park_poll t (p : Process.t) ~dst ~cap =
  p.Process.status <- Process.Blocked_poll { dst; cap };
  let io = p.Process.io in
  List.iter
    (fun fd ->
      match Glibc.fd_obj_of io fd with
      | Some (Glibc.Fd_conn c) ->
        Net.Conn.add_rx_waiter c ~key:p.Process.pid (fun () -> mark_ready t p)
      | Some (Glibc.Fd_listener s) ->
        Net.Socket.add_accept_waiter s ~key:p.Process.pid (fun () ->
            mark_ready t p)
      | None -> ())
    (Glibc.open_fds io)

let do_reap t (child : Process.t) =
  t.last_reaped <- Some child;
  Hashtbl.remove t.procs child.Process.pid

(* ---- the scheduler ---------------------------------------------------- *)

let slice_insns = 4096

let set_rax (p : Process.t) v = Cpu.set p.Process.cpu Isa.Reg.RAX v

(* Handle one Control from a builtin. Returns true when the process may
   keep executing in its current slice; on false it has died or parked
   (p.status says which). *)
let handle_control t (p : Process.t) control =
  match control with
  | Glibc.Exit code ->
    note_exited t p code;
    false
  | Glibc.Abort msg ->
    note_killed t p Process.Sigabrt msg;
    false
  | Glibc.Fork ->
    ignore (fork_child t p);
    true
  | Glibc.Spawn_thread { start; arg } ->
    ignore (spawn_thread t p ~start ~arg);
    true
  | Glibc.Wait_child -> (
    match Queue.peek_opt p.Process.pending_children with
    | None ->
      set_rax p (-1L);
      true
    | Some child_pid -> (
      match find t child_pid with
      | None ->
        ignore (Queue.pop p.Process.pending_children);
        set_rax p (-1L);
        true
      | Some child when Process.status_is_dead child.Process.status ->
        ignore (Queue.pop p.Process.pending_children);
        do_reap t child;
        set_rax p (encode_wait_status child);
        true
      | Some _ ->
        (* non-inline waitpid: park until the child dies *)
        p.Process.status <- Process.Blocked_wait;
        false))
  | Glibc.Wait_child_nb ->
    (* one full rotation of the queue preserves child order; reap the
       first dead child found, drop children already gone *)
    let q = p.Process.pending_children in
    let reaped = ref None in
    let n = Queue.length q in
    for _ = 1 to n do
      let child_pid = Queue.pop q in
      match find t child_pid with
      | None -> ()
      | Some child
        when !reaped = None && Process.status_is_dead child.Process.status ->
        do_reap t child;
        reaped := Some child_pid
      | Some _ -> Queue.push child_pid q
    done;
    set_rax p
      (match !reaped with
      | Some child_pid -> Int64.of_int child_pid
      | None -> if Queue.is_empty q then -1L else 0L);
    true
  | Glibc.Accept -> (
    match try_accept t p with
    | Some rax ->
      set_rax p rax;
      true
    | None ->
      if Glibc.fd_nonblock p.Process.io (Glibc.listener_fd p.Process.io)
      then begin
        set_rax p Glibc.eagain;
        true
      end
      else begin
        park_accept t p;
        false
      end)
  | Glibc.Listen { fd; backlog } ->
    (match Glibc.fd_obj_of p.Process.io fd with
    | Some (Glibc.Fd_listener s) ->
      Net.Socket.listen s ~backlog;
      register_port t s;
      set_rax p 0L
    | _ -> set_rax p (-1L));
    true
  | Glibc.Sock_read { fd; dst; cap } -> (
    match try_read t p ~fd ~dst ~cap with
    | exception Fault.Trap fault ->
      note_killed t p (Process.signal_of_fault fault) (Fault.to_string fault);
      false
    | Some rax ->
      set_rax p rax;
      true
    | None ->
      if Glibc.fd_nonblock p.Process.io fd then begin
        set_rax p Glibc.eagain;
        true
      end
      else begin
        park_read t p ~fd ~dst ~cap;
        false
      end)
  | Glibc.Sock_write { fd; data } -> (
    match try_write t p ~fd ~data ~written:0 with
    | `Done rax ->
      set_rax p rax;
      true
    | `Blocked written ->
      if Glibc.fd_nonblock p.Process.io fd then begin
        (* short write: report what landed, EAGAIN only on zero *)
        set_rax p
          (if written > 0 then Int64.of_int written else Glibc.eagain);
        true
      end
      else begin
        park_write t p ~fd ~data ~written;
        false
      end)
  | Glibc.Epoll_wait { dst; cap } -> (
    match try_epoll p ~dst ~cap with
    | exception Fault.Trap fault ->
      note_killed t p (Process.signal_of_fault fault) (Fault.to_string fault);
      false
    | Some rax ->
      set_rax p rax;
      true
    | None ->
      park_poll t p ~dst ~cap;
      false)
  | Glibc.Close_fd fd ->
    set_rax p
      (if Glibc.close_fd p.Process.io fd ~now:t.now then 0L else -1L);
    true

let handle_builtin t (p : Process.t) name =
  (* LD_PRELOAD semantics: the P-SSP shared library for instrumented
     binaries exports its own __stack_chk_fail (the combined
     check-and-fail routine of Figs. 3/4). *)
  let name =
    match (name, p.Process.preload) with
    | "__stack_chk_fail", Preload.Pssp_packed -> "__stack_chk_fail_pssp"
    | _ -> name
  in
  match
    Glibc.dispatch ~name p.Process.cpu p.Process.mem ~pid:p.Process.pid
      p.Process.io
  with
  | exception Fault.Trap fault ->
    note_killed t p (Process.signal_of_fault fault) (Fault.to_string fault);
    false
  | Glibc.Ret v ->
    set_rax p v;
    true
  | Glibc.Control control -> handle_control t p control

(* Run p for one scheduling slice (or until it parks/dies/fuel runs
   out), advancing virtual time by the cycles it retires. *)
let run_slice t (p : Process.t) fuel =
  let c0 = p.Process.cpu.Cpu.cycles in
  let budget = ref (Stdlib.min slice_insns !fuel) in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    let outcome, retired =
      Exec.step_block t.env p.Process.cpu p.Process.mem ~max_insns:!budget
    in
    budget := !budget - retired;
    fuel := !fuel - retired;
    match outcome with
    | Exec.Running -> ()
    | Exec.Halted ->
      note_exited t p 0;
      continue_ := false
    | Exec.Faulted fault ->
      note_killed t p (Process.signal_of_fault fault) (Fault.to_string fault);
      continue_ := false
    | Exec.Syscall_trap ->
      note_killed t p Process.Sigill "raw syscall not supported";
      continue_ := false
    | Exec.Builtin name ->
      if not (handle_builtin t p name) then continue_ := false
  done;
  t.now <- Int64.add t.now (Int64.sub p.Process.cpu.Cpu.cycles c0)

let wake t (p : Process.t) rax =
  set_rax p rax;
  p.Process.status <- Process.Runnable;
  Hashtbl.remove t.blocked_io p.Process.pid;
  enqueue t p

(* Retry the parked operation of a process whose wakeup event fired.
   If the condition no longer holds (another process consumed the
   bytes / the connection, or the epoll scan comes up empty), re-park —
   the firing consumed the one-shot waiter, so it must be re-armed. *)
let retry_blocked t (p : Process.t) =
  match p.Process.status with
  | Process.Blocked_accept -> (
    match try_accept t p with
    | Some rax -> wake t p rax
    | None -> park_accept t p)
  | Process.Blocked_read { fd; dst; cap } -> (
    match try_read t p ~fd ~dst ~cap with
    | exception Fault.Trap fault ->
      note_killed t p (Process.signal_of_fault fault) (Fault.to_string fault)
    | Some rax -> wake t p rax
    | None -> park_read t p ~fd ~dst ~cap)
  | Process.Blocked_write { fd; data; written } -> (
    match try_write t p ~fd ~data ~written with
    | `Done rax -> wake t p rax
    | `Blocked written -> park_write t p ~fd ~data ~written)
  | Process.Blocked_poll { dst; cap } -> (
    match try_epoll p ~dst ~cap with
    | exception Fault.Trap fault ->
      note_killed t p (Process.signal_of_fault fault) (Fault.to_string fault)
    | Some rax -> wake t p rax
    | None -> park_poll t p ~dst ~cap)
  | Process.Blocked_wait -> (
    match Queue.peek_opt p.Process.pending_children with
    | None -> wake t p (-1L)
    | Some child_pid -> (
      match find t child_pid with
      | None ->
        ignore (Queue.pop p.Process.pending_children);
        wake t p (-1L)
      | Some child when Process.status_is_dead child.Process.status ->
        ignore (Queue.pop p.Process.pending_children);
        do_reap t child;
        wake t p (encode_wait_status child)
      | Some _ -> () (* spurious (stale waiter): head child still alive *)))
  | Process.Runnable | Process.Exited _ | Process.Killed _ -> ()

(* Drain the wake queue: each pid retried once per queued event, FIFO.
   Events fire their waiters in pid order (Conn/Socket sort by key), so
   the composite order — FIFO across events, pid order within one — is
   deterministic for a deterministic workload. *)
let service_wake t =
  let rec go () =
    match Queue.take_opt t.wake with
    | None -> ()
    | Some pid ->
      (match find t pid with
      | None -> ()
      | Some p ->
        p.Process.wake_pending <- false;
        retry_blocked t p);
      go ()
  in
  go ()

(* Time out idle conns with a blocked op on them. Runs only when [now]
   passes the cached earliest deadline, so the common path costs one
   comparison; the sweep itself is O(blocked ops), not O(procs). A
   timed-out conn resets, which fires its waiters — the woken syscall
   then completes with -1 through the normal retry path. *)
let sweep_timeouts t =
  match (t.conn_timeout, t.next_timeout_check) with
  | Some tmo, Some due when Int64.compare t.now due >= 0 ->
    t.next_timeout_check <- None;
    let stale = ref [] in
    Hashtbl.iter
      (fun pid () ->
        match find t pid with
        | None -> stale := pid :: !stale
        | Some p -> (
          let check fd =
            match Glibc.conn_of_fd p.Process.io fd with
            | None -> ()
            | Some conn ->
              if Int64.compare (Net.Conn.idle_cycles conn ~now:t.now) tmo >= 0
              then Net.Conn.timeout conn ~now:t.now
              else note_io_deadline t conn
          in
          match p.Process.status with
          | Process.Blocked_read { fd; _ } | Process.Blocked_write { fd; _ }
            ->
            check fd
          | _ -> stale := pid :: !stale))
      t.blocked_io;
    List.iter (Hashtbl.remove t.blocked_io) !stale
  | _ -> ()

let schedule ?(fuel = 50_000_000) t =
  let fuel = ref fuel in
  let continue_ = ref true in
  while !continue_ do
    sweep_timeouts t;
    service_wake t;
    if !fuel <= 0 then continue_ := false
    else
      match Queue.take_opt t.ready with
      | None -> continue_ := false
      | Some pid -> (
        match find t pid with
        | None -> ()
        | Some p -> (
          p.Process.queued <- false;
          match p.Process.status with
          | Process.Runnable ->
            run_slice t p fuel;
            (* round-robin: a process still runnable after its slice
               goes to the back of the queue *)
            (match p.Process.status with
            | Process.Runnable -> enqueue t p
            | _ -> ())
          | _ -> ()))
  done

(* Earliest cycle at which a blocked conn operation would time out —
   the pump uses this to jump virtual time across idle stretches. Scans
   only the processes parked on conn I/O, not the whole process table. *)
let next_deadline t =
  match t.conn_timeout with
  | None -> None
  | Some tmo ->
    Hashtbl.fold
      (fun pid () acc ->
        let deadline =
          match find t pid with
          | None -> None
          | Some p -> (
            let conn_deadline fd =
              match Glibc.conn_of_fd p.Process.io fd with
              | None -> None
              | Some conn -> Some (Int64.add (Net.Conn.last_activity conn) tmo)
            in
            match p.Process.status with
            | Process.Blocked_read { fd; _ } -> conn_deadline fd
            | Process.Blocked_write { fd; _ } -> conn_deadline fd
            | _ -> None)
        in
        match (deadline, acc) with
        | None, acc -> acc
        | Some d, None -> Some d
        | Some d, Some best -> Some (if Int64.compare d best < 0 then d else best))
      t.blocked_io None

let stop_of (p : Process.t) =
  match p.Process.status with
  | Process.Exited n -> Stop_exit n
  | Process.Killed (s, msg) -> Stop_kill (s, msg)
  | Process.Blocked_accept -> Stop_accept
  | Process.Blocked_read _ | Process.Blocked_write _ | Process.Blocked_poll _
  | Process.Blocked_wait ->
    Stop_io
  | Process.Runnable -> Stop_fuel

(* Reap p's dead children without a waitpid from the guest — the compat
   shim uses this so [last_reaped] names the child that served the
   request even for servers that reap lazily with waitpid_nb. *)
let reap_zombies t (p : Process.t) =
  let q = p.Process.pending_children in
  let n = Queue.length q in
  for _ = 1 to n do
    let child_pid = Queue.pop q in
    match find t child_pid with
    | None -> ()
    | Some child when Process.status_is_dead child.Process.status ->
      do_reap t child
    | Some _ -> Queue.push child_pid q
  done

(* The internal [enqueue] silently skips dead processes (scheduler
   convenience); handing a dead process to the public entry point is a
   driver bug and says so. *)
let enqueue t (p : Process.t) =
  if Process.status_is_dead p.Process.status then
    invalid_arg "Kernel.enqueue: process already dead";
  enqueue t p

let deliver_request t (p : Process.t) request =
  (match p.Process.status with
  | Process.Blocked_accept -> ()
  | status -> raise (Not_blocked_in_accept { pid = p.Process.pid; status }));
  match Glibc.listener_of p.Process.io with
  | Some sock when Net.Socket.listening sock ->
    (* connection-oriented server: deliver the request as a one-shot
       conn (send + FIN) pushed straight onto the accept backlog *)
    let conn = fresh_conn t in
    ignore (Net.Conn.client_send conn ~now:t.now (Bytes.to_string request));
    Net.Conn.client_shutdown conn ~now:t.now;
    Net.Socket.push sock conn
  | _ ->
    (* legacy magic delivery: request becomes the process's input *)
    Glibc.set_input p.Process.io request;
    set_rax p 0L;
    p.Process.status <- Process.Runnable;
    enqueue t p

let last_reaped t = t.last_reaped
let fork_count t = t.forks

let run_to_exit ?fuel t p =
  enqueue t p;
  schedule ?fuel t;
  match stop_of p with
  | Stop_exit code -> code
  | other -> failwith ("Kernel.run_to_exit: " ^ stop_to_string other)

(* ---- zygote snapshots ------------------------------------------------- *)

(* A frozen, fully warmed process: private CoW page-store clone, exact
   CPU state (RNG position preserved — see {!Cpu.snapshot}), compiled
   translation cache, and a rebuilt fd table that aliases no live
   kernel object. [resume_snapshot] thaws a fresh process from it in
   any kernel, bit-identical to the original at capture time — the
   prefork/zygote pattern: pay cold spawn + warmup once, then stamp out
   warm copies. *)
type snapshot = {
  snap_image : Image.t;
  snap_mem : Memory.t;
  snap_cpu : Cpu.t;
  snap_io : Glibc.io;
  snap_preload : Preload.mode;
  snap_status : Process.status;
  snap_now : int64;  (* kernel virtual time at capture *)
}

let g_captures = Telemetry.Registry.counter "os.snapshot.captures"
let g_resumes = Telemetry.Registry.counter "os.snapshot.resumes"

let capture_snapshot t (p : Process.t) =
  (match p.Process.status with
  | Process.Runnable | Process.Blocked_accept | Process.Blocked_poll _ -> ()
  | status ->
    invalid_arg
      (Printf.sprintf "Kernel.capture_snapshot: unsupported status (%s)"
         (Process.status_to_string status)));
  if not (Queue.is_empty p.Process.pending_children) then
    invalid_arg "Kernel.capture_snapshot: process has pending children";
  Telemetry.Registry.incr g_captures;
  {
    snap_image = p.Process.image;
    snap_mem = Memory.clone p.Process.mem;
    snap_cpu = Cpu.snapshot p.Process.cpu;
    snap_io = Glibc.snapshot_io p.Process.io;
    snap_preload = p.Process.preload;
    snap_status = p.Process.status;
    snap_now = t.now;
  }

let resume_snapshot t snap =
  Telemetry.Registry.incr g_resumes;
  (* clone-of-clone: the snapshot stays frozen and can be resumed any
     number of times *)
  let mem = Memory.clone snap.snap_mem in
  let cpu = Cpu.snapshot snap.snap_cpu in
  let io = Glibc.snapshot_io snap.snap_io in
  let proc =
    {
      Process.pid = fresh_pid t;
      parent = None;
      image = snap.snap_image;
      mem;
      cpu;
      io;
      preload = snap.snap_preload;
      status = Process.Runnable;
      pending_children = Queue.create ();
      queued = false;
      wake_pending = false;
    }
  in
  Hashtbl.add t.procs proc.Process.pid proc;
  (* listeners frozen in the fd table come back live: register their
     ports so connects can reach them *)
  List.iter
    (fun fd ->
      match Glibc.fd_obj_of io fd with
      | Some (Glibc.Fd_listener s) when Net.Socket.listening s ->
        register_port t s
      | _ -> ())
    (Glibc.open_fds io);
  (* re-create the frozen park, re-arming the one-shot waiters the
     original held at capture *)
  (match snap.snap_status with
  | Process.Runnable -> enqueue t proc
  | Process.Blocked_accept -> park_accept t proc
  | Process.Blocked_poll { dst; cap } -> park_poll t proc ~dst ~cap
  | _ -> assert false (* capture_snapshot rejects everything else *));
  (* a resumed process has already retired its warmup cycles *)
  advance_to t snap.snap_now;
  proc
