open Vm64

type t = {
  procs : (int, Process.t) Hashtbl.t;
  env : Exec.env;
  master_rng : Util.Prng.t;
  mutable next_pid : int;
  mutable last_reaped : Process.t option;
  mutable forks : int;  (* fork_child calls served by this kernel *)
}

(* Process-wide lifecycle telemetry across all kernels (domain-safe),
   published to the metrics registry: forks feed the bench driver's
   MEM_STATS line alongside the Memory/Tcache metrics; crash/exit
   counters give campaigns a single pane of glass over guest process
   churn. *)
let metric_forks = "os.kernel.forks"

let g_forks = Telemetry.Registry.counter metric_forks
let g_crashes = Telemetry.Registry.counter "os.kernel.crashes"
let g_exits = Telemetry.Registry.counter "os.kernel.exits"

let forks_served () = Telemetry.Registry.counter_value g_forks
let reset_forks_served () = Telemetry.Registry.reset metric_forks

(* Every transition to a dead status funnels through these two, so the
   registry counts match the statuses processes end up with. *)
let note_exited (p : Process.t) code =
  Telemetry.Registry.incr g_exits;
  p.Process.status <- Process.Exited code

let note_killed (p : Process.t) signal msg =
  Telemetry.Registry.incr g_crashes;
  p.Process.status <- Process.Killed (signal, msg);
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.instant "kernel.crash"
      ~args:
        [
          ("pid", string_of_int p.Process.pid);
          ("signal", Process.signal_name signal);
          ("msg", msg);
        ]
      ~cycles:p.Process.cpu.Cpu.cycles

let exit_stub_addr = Int64.add Layout.glibc_base 0x800L

let create ?(seed = 0xC0FFEEL) ?on_retire () =
  let is_builtin addr = Glibc.name_of_addr addr in
  {
    procs = Hashtbl.create 16;
    env = Exec.create_env ?on_retire ~is_builtin ();
    master_rng = Util.Prng.create seed;
    next_pid = 1;
    last_reaped = None;
    forks = 0;
  }

let find t pid = Hashtbl.find_opt t.procs pid

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

(* The trampoline main returns to: pass its return value to exit(). *)
let exit_stub_code =
  Isa.Encode.list_to_bytes
    [
      Isa.Insn.Mov (Isa.Operand.reg Isa.Reg.RDI, Isa.Operand.reg Isa.Reg.RAX);
      Isa.Insn.Call (Isa.Insn.Abs (Glibc.addr_of "exit"));
      Isa.Insn.Hlt;
    ]

let spawn t ?(input = Bytes.create 0) ?(preload = Preload.No_preload)
    ?(insn_tax = 0) ?(call_tax = 0) (image : Image.t) =
  let mem = Memory.create () in
  (* glibc region: slots are never fetched, but the exit stub is real code. *)
  Memory.map mem ~addr:Layout.glibc_base ~len:8192;
  Memory.write_bytes mem exit_stub_addr exit_stub_code;
  (* text / extra / data *)
  Memory.map mem ~addr:image.Image.text_base ~len:(max 1 (Bytes.length image.Image.text));
  Memory.write_bytes mem image.Image.text_base image.Image.text;
  if Bytes.length image.Image.extra > 0 then begin
    Memory.map mem ~addr:image.Image.extra_base ~len:(Bytes.length image.Image.extra);
    Memory.write_bytes mem image.Image.extra_base image.Image.extra
  end;
  Memory.map mem ~addr:image.Image.data_base ~len:(max 4096 (Bytes.length image.Image.data));
  if Bytes.length image.Image.data > 0 then
    Memory.write_bytes mem image.Image.data_base image.Image.data;
  Memory.map mem ~addr:Layout.dynaguard_buffer_base ~len:Layout.dynaguard_buffer_size;
  Memory.map mem ~addr:Layout.global_canary_buffer_base
    ~len:Layout.global_canary_buffer_size;
  Memory.map mem ~addr:Layout.heap_base ~len:Layout.heap_size;
  (* stack (the guard below it stays unmapped) *)
  Memory.map mem
    ~addr:(Int64.sub Layout.stack_top (Int64.of_int Layout.stack_size))
    ~len:Layout.stack_size;
  (* TLS *)
  Memory.map mem ~addr:Layout.tls_base ~len:Layout.tls_size;
  let cpu = Cpu.create ~seed:(Util.Prng.next64 t.master_rng) () in
  cpu.Cpu.fs_base <- Layout.tls_base;
  cpu.Cpu.insn_tax <- insn_tax;
  cpu.Cpu.call_tax <- call_tax;
  Telemetry.Trace.with_span "kernel.spawn.preload"
    ~args:[ ("image", image.Image.name) ]
    ~cycles:(fun () -> cpu.Cpu.cycles)
    (fun () ->
      ignore
        (Pssp.Tls.install_fresh_canary t.master_rng mem ~fs_base:Layout.tls_base);
      Preload.on_start preload cpu.Cpu.rng mem ~fs_base:Layout.tls_base);
  (* P-SSP-OWF keeps its AES key in the callee-saved r12/r13 pair, set up
     once at program start (§V-E3). *)
  if
    String.equal image.Image.scheme_tag "pssp-owf"
    || String.equal image.Image.scheme_tag "pssp-owf-weak"
  then begin
    Cpu.set cpu Isa.Reg.R12 (Util.Prng.next64 t.master_rng);
    Cpu.set cpu Isa.Reg.R13 (Util.Prng.next64 t.master_rng)
  end;
  (* initial stack: rsp -> return address = exit trampoline *)
  let rsp = Int64.sub Layout.stack_top 64L in
  Cpu.set cpu Isa.Reg.RSP (Int64.sub rsp 8L);
  Memory.write_u64 mem (Int64.sub rsp 8L) exit_stub_addr;
  (* Rewriter-added constructors (setup_p-ssp, §V-A) run before main via
     a small trampoline. *)
  (match Image.find_symbol image "__pssp_ctor" with
  | Some ctor ->
    let trampoline = Int64.add Layout.glibc_base 0x900L in
    Memory.write_bytes mem trampoline
      (Isa.Encode.list_to_bytes
         [
           Isa.Insn.Call (Isa.Insn.Abs ctor.Image.sym_addr);
           Isa.Insn.Jmp (Isa.Insn.Abs image.Image.entry);
         ]);
    cpu.Cpu.rip <- trampoline
  | None -> cpu.Cpu.rip <- image.Image.entry);
  let io = Glibc.make_io () in
  Glibc.set_input io input;
  let proc =
    {
      Process.pid = fresh_pid t;
      parent = None;
      image;
      mem;
      cpu;
      io;
      preload;
      status = Process.Runnable;
      pending_children = [];
    }
  in
  Hashtbl.add t.procs proc.Process.pid proc;
  proc

type stop =
  | Stop_exit of int
  | Stop_kill of Process.signal * string
  | Stop_accept
  | Stop_fuel

let stop_to_string = function
  | Stop_exit n -> Printf.sprintf "exited %d" n
  | Stop_kill (s, msg) -> Printf.sprintf "killed %s: %s" (Process.signal_name s) msg
  | Stop_accept -> "blocked on accept"
  | Stop_fuel -> "out of fuel"

let fork_child t (parent : Process.t) =
  t.forks <- t.forks + 1;
  Telemetry.Registry.incr g_forks;
  let child_cpu = Cpu.clone parent.Process.cpu in
  let child_mem = Memory.clone parent.Process.mem in
  (* fork() return values *)
  let child_pid = fresh_pid t in
  Cpu.set child_cpu Isa.Reg.RAX 0L;
  Preload.on_fork_child parent.Process.preload child_cpu.Cpu.rng child_mem
    ~fs_base:child_cpu.Cpu.fs_base;
  let child =
    {
      Process.pid = child_pid;
      parent = Some parent.Process.pid;
      image = parent.Process.image;
      mem = child_mem;
      cpu = child_cpu;
      io = Glibc.clone_io parent.Process.io;
      preload = parent.Process.preload;
      status = Process.Runnable;
      pending_children = [];
    }
  in
  Hashtbl.add t.procs child_pid child;
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.instant "kernel.fork"
      ~args:
        [
          ("parent", string_of_int parent.Process.pid);
          ("child", string_of_int child_pid);
        ]
      ~cycles:parent.Process.cpu.Cpu.cycles;
  Cpu.set parent.Process.cpu Isa.Reg.RAX (Int64.of_int child_pid);
  parent.Process.pending_children <-
    parent.Process.pending_children @ [ child_pid ];
  child

let spawn_thread t (parent : Process.t) ~start ~arg =
  (* Modelled as a cloned address space with its own stack pointer and a
     fresh TLS-shadow refresh — see DESIGN.md for why this preserves the
     behaviour the evaluation depends on. *)
  let child = fork_child t parent in
  let cpu = child.Process.cpu in
  let rsp = Int64.sub Layout.stack_top 64L in
  Cpu.set cpu Isa.Reg.RSP (Int64.sub rsp 8L);
  Memory.write_u64 child.Process.mem (Int64.sub rsp 8L) exit_stub_addr;
  Cpu.set cpu Isa.Reg.RDI arg;
  cpu.Cpu.rip <- start;
  Preload.on_thread_start parent.Process.preload cpu.Cpu.rng child.Process.mem
    ~fs_base:cpu.Cpu.fs_base;
  (* Statically instrumented binaries have no preload; the rewritten
     pthread_create's new-thread TLS refresh is applied here (the stub's
     own refresh covers the creating thread). *)
  if String.equal parent.Process.image.Image.scheme_tag "pssp-instr-static" then
    Preload.on_thread_start Preload.Pssp_packed cpu.Cpu.rng child.Process.mem
      ~fs_base:cpu.Cpu.fs_base;
  child

let encode_wait_status (p : Process.t) =
  match p.Process.status with
  | Process.Exited n -> Int64.of_int (n land 0xFF)
  | Process.Killed _ -> 256L
  | Process.Runnable | Process.Blocked_accept -> 512L

let rec run_loop t (p : Process.t) fuel =
  if !fuel <= 0 then Stop_fuel
  else begin
    let outcome, retired =
      Exec.step_block t.env p.Process.cpu p.Process.mem ~max_insns:!fuel
    in
    fuel := !fuel - retired;
    match outcome with
    | Exec.Running -> run_loop t p fuel
    | Exec.Halted ->
      note_exited p 0;
      Stop_exit 0
    | Exec.Faulted fault ->
      let signal = Process.signal_of_fault fault in
      let msg = Fault.to_string fault in
      note_killed p signal msg;
      Stop_kill (signal, msg)
    | Exec.Syscall_trap ->
      let msg = "raw syscall not supported" in
      note_killed p Process.Sigill msg;
      Stop_kill (Process.Sigill, msg)
    | Exec.Builtin name -> handle_builtin t p fuel name
  end

and handle_builtin t (p : Process.t) fuel name =
  (* LD_PRELOAD semantics: the P-SSP shared library for instrumented
     binaries exports its own __stack_chk_fail (the combined
     check-and-fail routine of Figs. 3/4). *)
  let name =
    match (name, p.Process.preload) with
    | "__stack_chk_fail", Preload.Pssp_packed -> "__stack_chk_fail_pssp"
    | _ -> name
  in
  match
    Glibc.dispatch ~name p.Process.cpu p.Process.mem ~pid:p.Process.pid
      p.Process.io
  with
  | exception Fault.Trap fault ->
    let signal = Process.signal_of_fault fault in
    let msg = Fault.to_string fault in
    note_killed p signal msg;
    Stop_kill (signal, msg)
  | Glibc.Ret v ->
    Cpu.set p.Process.cpu Isa.Reg.RAX v;
    run_loop t p fuel
  | Glibc.Control control -> (
    match control with
    | Glibc.Exit code ->
      note_exited p code;
      Stop_exit code
    | Glibc.Abort msg ->
      note_killed p Process.Sigabrt msg;
      Stop_kill (Process.Sigabrt, msg)
    | Glibc.Fork ->
      ignore (fork_child t p);
      run_loop t p fuel
    | Glibc.Spawn_thread { start; arg } ->
      ignore (spawn_thread t p ~start ~arg);
      run_loop t p fuel
    | Glibc.Wait_child -> (
      match p.Process.pending_children with
      | [] ->
        Cpu.set p.Process.cpu Isa.Reg.RAX (-1L);
        run_loop t p fuel
      | child_pid :: rest -> (
        p.Process.pending_children <- rest;
        match find t child_pid with
        | None ->
          Cpu.set p.Process.cpu Isa.Reg.RAX (-1L);
          run_loop t p fuel
        | Some child ->
          (if not (Process.status_is_dead child.Process.status) then
             ignore (run_loop t child fuel));
          t.last_reaped <- Some child;
          Hashtbl.remove t.procs child_pid;
          Cpu.set p.Process.cpu Isa.Reg.RAX (encode_wait_status child);
          run_loop t p fuel))
    | Glibc.Accept ->
      p.Process.status <- Process.Blocked_accept;
      Stop_accept)

let run ?(fuel = 50_000_000) t p =
  match p.Process.status with
  | Process.Exited _ | Process.Killed _ ->
    invalid_arg "Kernel.run: process already dead"
  | Process.Runnable | Process.Blocked_accept -> run_loop t p (ref fuel)

let resume_with_request ?(fuel = 50_000_000) t p request =
  match p.Process.status with
  | Process.Blocked_accept ->
    Glibc.set_input p.Process.io request;
    Cpu.set p.Process.cpu Isa.Reg.RAX 0L;
    p.Process.status <- Process.Runnable;
    run_loop t p (ref fuel)
  | _ -> invalid_arg "Kernel.resume_with_request: process not blocked in accept"

let last_reaped t = t.last_reaped
let fork_count t = t.forks

let run_to_exit ?fuel t p =
  match run ?fuel t p with
  | Stop_exit code -> code
  | other -> failwith ("Kernel.run_to_exit: " ^ stop_to_string other)
