(** Semantic checks for Mini-C programs, run before code generation.

    Checked: name resolution, call arities (user functions and the
    runtime builtins), indexability, lvalue-ness of assignments and
    [&], [break]/[continue] placement, duplicate declarations (Mini-C
    forbids shadowing, which keeps frame layout one-pass), and that
    [critical] only qualifies locals. *)

exception Error of string

val builtins : (string * int) list
(** Runtime (glibc) functions callable from Mini-C, with their arities. *)

val is_builtin : string -> bool

type info = {
  global_types : (string * Ast.ty) list;
  func_returns : (string * Ast.ty) list;
}

val check : Ast.program -> info
(** Raises {!Error} on the first violation. *)

val block_decls : Ast.block -> Ast.decl list
(** Every local declaration in a block, recursively, in source order —
    the set the compiler allocates frame slots for. *)

val type_of_var : Ast.program -> Ast.func -> string -> Ast.ty option
(** Look a name up in the scope of [func]: params, then every local
    declared anywhere in its body, then globals. *)
