exception Error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let builtins =
  [
    ("exit", 1); ("abort", 0); ("fork", 0); ("pthread_create", 2);
    ("waitpid", 0); ("waitpid_nb", 0); ("getpid", 0); ("accept", 0);
    ("socket", 0); ("bind", 2); ("listen", 2);
    ("read", 3); ("write", 3); ("close", 1);
    ("set_nonblock", 1); ("epoll_wait", 2);
    ("write_str", 2); ("write_int", 2);
    ("memcpy", 3); ("memmove", 3); ("memset", 3); ("memcmp", 3);
    ("strcpy", 2); ("strncpy", 3); ("strcat", 2); ("strlen", 1); ("strcmp", 2);
    ("read_input", 1); ("read_n", 2);
    ("print_str", 1); ("print_int", 1); ("putchar", 1); ("puts", 1);
    ("write_out", 2);
    ("rand", 0); ("srand", 1); ("malloc", 1); ("free", 1);
  ]

let is_builtin name = List.mem_assoc name builtins

type info = {
  global_types : (string * Ast.ty) list;
  func_returns : (string * Ast.ty) list;
}

(* Collect every local declaration in a block, recursively. *)
let rec block_decls block = List.concat_map stmt_decls block

and stmt_decls = function
  | Ast.Sdecl d -> [ d ]
  | Ast.Sif (_, a, b) -> block_decls a @ block_decls b
  | Ast.Swhile (_, b) -> block_decls b
  | Ast.Sdo_while (b, _) -> block_decls b
  | Ast.Sfor (init, _, step, b) ->
    (match init with Some s -> stmt_decls s | None -> [])
    @ (match step with Some s -> stmt_decls s | None -> [])
    @ block_decls b
  | Ast.Sblock b -> block_decls b
  | Ast.Sassign _ | Ast.Sreturn _ | Ast.Sexpr _ | Ast.Sbreak | Ast.Scontinue ->
    []

let type_of_var program (func : Ast.func) name =
  match List.assoc_opt name func.Ast.f_params with
  | Some ty -> Some ty
  | None -> (
    let locals = block_decls func.Ast.f_body in
    match List.find_opt (fun d -> String.equal d.Ast.d_name name) locals with
    | Some d -> Some d.Ast.d_ty
    | None -> (
      match
        List.find_opt
          (fun d -> String.equal d.Ast.d_name name)
          program.Ast.globals
      with
      | Some d -> Some d.Ast.d_ty
      | None -> None))

type scope = {
  program : Ast.program;
  func : Ast.func;
  mutable loop_depth : int;
}

let rec check_expr sc expr =
  match expr with
  | Ast.Eint _ | Ast.Echar _ | Ast.Estr _ -> ()
  | Ast.Evar name -> (
    match type_of_var sc.program sc.func name with
    | Some _ -> ()
    | None ->
      errorf "%s: unknown variable %s" sc.func.Ast.f_name name)
  | Ast.Eindex (base, idx) -> (
    check_expr sc base;
    check_expr sc idx;
    match base with
    | Ast.Evar name -> (
      match type_of_var sc.program sc.func name with
      | Some (Ast.Tarray _ | Ast.Tptr _) -> ()
      | Some ty ->
        errorf "%s: %s has type %s and cannot be indexed" sc.func.Ast.f_name
          name (Ast.ty_to_string ty)
      | None -> assert false (* caught above *))
    | _ ->
      errorf "%s: only named arrays/pointers can be indexed" sc.func.Ast.f_name)
  | Ast.Eaddr e -> (
    match e with
    | Ast.Evar name
      when Ast.find_func sc.program name <> None || is_builtin name ->
      (* taking a function's address (e.g. for pthread_create) *)
      ()
    | _ ->
      if not (Ast.is_lvalue e) then
        errorf "%s: & of a non-lvalue" sc.func.Ast.f_name;
      check_expr sc e)
  | Ast.Eunop (_, e) -> check_expr sc e
  | Ast.Ebinop (_, a, b) ->
    check_expr sc a;
    check_expr sc b
  | Ast.Ecall (name, args) ->
    List.iter (check_expr sc) args;
    let arity =
      match Ast.find_func sc.program name with
      | Some f -> List.length f.Ast.f_params
      | None -> (
        match List.assoc_opt name builtins with
        | Some n -> n
        | None -> errorf "%s: call to unknown function %s" sc.func.Ast.f_name name)
    in
    if List.length args <> arity then
      errorf "%s: %s expects %d argument(s), got %d" sc.func.Ast.f_name name
        arity (List.length args)

let rec check_stmt sc = function
  | Ast.Sdecl d -> (
    match d.Ast.d_init with
    | Some e ->
      (match d.Ast.d_ty with
      | Ast.Tarray _ ->
        errorf "%s: array %s cannot have a scalar initialiser"
          sc.func.Ast.f_name d.Ast.d_name
      | Ast.Tint | Ast.Tchar | Ast.Tptr _ -> ());
      check_expr sc e
    | None -> ())
  | Ast.Sassign (lhs, rhs) ->
    if not (Ast.is_lvalue lhs) then
      errorf "%s: assignment to non-lvalue" sc.func.Ast.f_name;
    (match lhs with
    | Ast.Evar name -> (
      match type_of_var sc.program sc.func name with
      | Some (Ast.Tarray _) ->
        errorf "%s: cannot assign to array %s" sc.func.Ast.f_name name
      | Some _ | None -> ())
    | _ -> ());
    check_expr sc lhs;
    check_expr sc rhs
  | Ast.Sif (c, a, b) ->
    check_expr sc c;
    check_block sc a;
    check_block sc b
  | Ast.Swhile (c, b) ->
    check_expr sc c;
    sc.loop_depth <- sc.loop_depth + 1;
    check_block sc b;
    sc.loop_depth <- sc.loop_depth - 1
  | Ast.Sdo_while (b, c) ->
    sc.loop_depth <- sc.loop_depth + 1;
    check_block sc b;
    sc.loop_depth <- sc.loop_depth - 1;
    check_expr sc c
  | Ast.Sfor (init, cond, step, b) ->
    Option.iter (check_stmt sc) init;
    Option.iter (check_expr sc) cond;
    sc.loop_depth <- sc.loop_depth + 1;
    Option.iter (check_stmt sc) step;
    check_block sc b;
    sc.loop_depth <- sc.loop_depth - 1
  | Ast.Sreturn e -> Option.iter (check_expr sc) e
  | Ast.Sexpr e -> check_expr sc e
  | Ast.Sbreak ->
    if sc.loop_depth = 0 then
      errorf "%s: break outside of a loop" sc.func.Ast.f_name
  | Ast.Scontinue ->
    if sc.loop_depth = 0 then
      errorf "%s: continue outside of a loop" sc.func.Ast.f_name
  | Ast.Sblock b -> check_block sc b

and check_block sc block = List.iter (check_stmt sc) block

let check_param_count func =
  if List.length func.Ast.f_params > 6 then
    errorf "%s: more than 6 parameters (register passing only)" func.Ast.f_name

let check_no_duplicates func =
  let names = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem names name then
        errorf "%s: duplicate parameter %s" func.Ast.f_name name;
      Hashtbl.add names name ())
    func.Ast.f_params;
  List.iter
    (fun d ->
      if Hashtbl.mem names d.Ast.d_name then
        errorf "%s: duplicate declaration of %s (Mini-C forbids shadowing)"
          func.Ast.f_name d.Ast.d_name;
      Hashtbl.add names d.Ast.d_name ())
    (block_decls func.Ast.f_body)

let check program =
  (* Global sanity. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d.Ast.d_name then
        errorf "duplicate global %s" d.Ast.d_name;
      Hashtbl.add seen d.Ast.d_name ();
      match d.Ast.d_init with
      | Some (Ast.Eint _) | Some (Ast.Echar _) | None -> ()
      | Some _ -> errorf "global %s: only constant initialisers" d.Ast.d_name)
    program.Ast.globals;
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.Ast.f_name then
        errorf "duplicate definition of %s" f.Ast.f_name;
      Hashtbl.add seen f.Ast.f_name ();
      if is_builtin f.Ast.f_name then
        errorf "%s: redefines a runtime builtin" f.Ast.f_name)
    program.Ast.funcs;
  (match Ast.find_func program "main" with
  | Some _ -> ()
  | None -> errorf "missing main function");
  List.iter
    (fun f ->
      check_param_count f;
      check_no_duplicates f;
      List.iter
        (fun d ->
          ignore d)
        (block_decls f.Ast.f_body);
      let sc = { program; func = f; loop_depth = 0 } in
      check_block sc f.Ast.f_body)
    program.Ast.funcs;
  (* critical only makes sense on locals (frame canaries). *)
  List.iter
    (fun d ->
      if d.Ast.d_critical then
        errorf "global %s: 'critical' applies to locals only" d.Ast.d_name)
    program.Ast.globals;
  {
    global_types = List.map (fun d -> (d.Ast.d_name, d.Ast.d_ty)) program.Ast.globals;
    func_returns = List.map (fun f -> (f.Ast.f_name, f.Ast.f_ret)) program.Ast.funcs;
  }
