type ty = Tint | Tchar | Tptr of ty | Tarray of ty * int

let rec sizeof = function
  | Tint -> 8
  | Tchar -> 1
  | Tptr _ -> 8
  | Tarray (t, n) -> sizeof t * n

let elem_size = function
  | Tptr t -> sizeof t
  | Tarray (t, _) -> sizeof t
  | (Tint | Tchar) as t ->
    invalid_arg ("Ast.elem_size: not indexable: " ^
      (match t with Tint -> "int" | _ -> "char"))

let rec ty_to_string = function
  | Tint -> "int"
  | Tchar -> "char"
  | Tptr t -> ty_to_string t ^ "*"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n

type unop = Neg | Lnot | Bnot

type binop =
  | Add | Sub | Mul | Div | Rem
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_to_string = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

type expr =
  | Eint of int64
  | Echar of char
  | Estr of string
  | Evar of string
  | Eindex of expr * expr
  | Eaddr of expr
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list

type decl = {
  d_name : string;
  d_ty : ty;
  d_critical : bool;
  d_init : expr option;
}

type stmt =
  | Sdecl of decl
  | Sassign of expr * expr
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sdo_while of block * expr
  | Sfor of stmt option * expr option * stmt option * block
  | Sreturn of expr option
  | Sexpr of expr
  | Sbreak
  | Scontinue
  | Sblock of block

and block = stmt list

type func = {
  f_name : string;
  f_params : (string * ty) list;
  f_ret : ty;
  f_body : block;
}

type program = { globals : decl list; funcs : func list }

let find_func p name = List.find_opt (fun f -> String.equal f.f_name name) p.funcs

let is_lvalue = function
  | Evar _ | Eindex _ -> true
  | Eint _ | Echar _ | Estr _ | Eaddr _ | Eunop _ | Ebinop _ | Ecall _ -> false
