open Lexer

exception Error of int * string

type state = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st msg = raise (Error (line st, msg))

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (token_to_string tok)
         (token_to_string (peek st)))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match peek st with
  | IDENT name ->
    advance st;
    name
  | other -> error st ("expected identifier, found " ^ token_to_string other)

(* ---- types ------------------------------------------------------------- *)

let base_type st =
  match peek st with
  | KW_INT ->
    advance st;
    Some Ast.Tint
  | KW_CHAR ->
    advance st;
    Some Ast.Tchar
  | KW_VOID ->
    advance st;
    Some Ast.Tint (* void functions return 0 implicitly *)
  | _ -> None

let wrap_pointers st ty =
  let rec go ty = if accept st STAR then go (Ast.Tptr ty) else ty in
  go ty

(* ---- expressions ------------------------------------------------------- *)

let rec primary st =
  match peek st with
  | INT v ->
    advance st;
    Ast.Eint v
  | CHARLIT c ->
    advance st;
    Ast.Echar c
  | STRING s ->
    advance st;
    Ast.Estr s
  | IDENT name ->
    advance st;
    if accept st LPAREN then begin
      let args = call_args st in
      Ast.Ecall (name, args)
    end
    else Ast.Evar name
  | LPAREN ->
    advance st;
    let e = expr st in
    expect st RPAREN;
    e
  | other -> error st ("expected expression, found " ^ token_to_string other)

and call_args st =
  if accept st RPAREN then []
  else begin
    let rec go acc =
      let e = expr st in
      if accept st COMMA then go (e :: acc)
      else begin
        expect st RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and postfix st =
  let rec go e =
    if accept st LBRACKET then begin
      let idx = expr st in
      expect st RBRACKET;
      go (Ast.Eindex (e, idx))
    end
    else e
  in
  go (primary st)

and unary st =
  match peek st with
  | MINUS ->
    advance st;
    Ast.Eunop (Ast.Neg, unary st)
  | BANG ->
    advance st;
    Ast.Eunop (Ast.Lnot, unary st)
  | TILDE ->
    advance st;
    Ast.Eunop (Ast.Bnot, unary st)
  | AMP ->
    advance st;
    let e = unary st in
    if not (Ast.is_lvalue e) then error st "& requires an lvalue";
    Ast.Eaddr e
  | _ -> postfix st

(* Precedence climbing over binary operators. *)
and binop_of_token = function
  | STAR -> Some (Ast.Mul, 10)
  | SLASH -> Some (Ast.Div, 10)
  | PERCENT -> Some (Ast.Rem, 10)
  | PLUS -> Some (Ast.Add, 9)
  | MINUS -> Some (Ast.Sub, 9)
  | SHL -> Some (Ast.Shl, 8)
  | SHR -> Some (Ast.Shr, 8)
  | LT -> Some (Ast.Lt, 7)
  | LE -> Some (Ast.Le, 7)
  | GT -> Some (Ast.Gt, 7)
  | GE -> Some (Ast.Ge, 7)
  | EQEQ -> Some (Ast.Eq, 6)
  | NE -> Some (Ast.Ne, 6)
  | AMP -> Some (Ast.Band, 5)
  | CARET -> Some (Ast.Bxor, 4)
  | PIPE -> Some (Ast.Bor, 3)
  | AMPAMP -> Some (Ast.Land, 2)
  | PIPEPIPE -> Some (Ast.Lor, 1)
  | _ -> None

and binary st min_prec =
  let lhs = unary st in
  let rec go lhs =
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = binary st (prec + 1) in
      go (Ast.Ebinop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  go lhs

and expr st = binary st 1

(* ---- declarations ------------------------------------------------------ *)

let declarator st base =
  let ty = wrap_pointers st base in
  let name = expect_ident st in
  let ty =
    if accept st LBRACKET then begin
      match peek st with
      | INT n ->
        advance st;
        expect st RBRACKET;
        Ast.Tarray (ty, Int64.to_int n)
      | _ -> error st "expected array length"
    end
    else ty
  in
  (name, ty)

let local_decl st ~critical base =
  let name, ty = declarator st base in
  let init = if accept st EQ then Some (expr st) else None in
  expect st SEMI;
  { Ast.d_name = name; d_ty = ty; d_critical = critical; d_init = init }

(* ---- statements -------------------------------------------------------- *)

(* An assignment or expression statement (no trailing ';'). *)
let simple_stmt st =
  let e = expr st in
  match peek st with
  | EQ ->
    advance st;
    if not (Ast.is_lvalue e) then error st "assignment to non-lvalue";
    let rhs = expr st in
    Ast.Sassign (e, rhs)
  | PLUSEQ ->
    advance st;
    if not (Ast.is_lvalue e) then error st "+= on non-lvalue";
    let rhs = expr st in
    Ast.Sassign (e, Ast.Ebinop (Ast.Add, e, rhs))
  | MINUSEQ ->
    advance st;
    if not (Ast.is_lvalue e) then error st "-= on non-lvalue";
    let rhs = expr st in
    Ast.Sassign (e, Ast.Ebinop (Ast.Sub, e, rhs))
  | PLUSPLUS ->
    advance st;
    if not (Ast.is_lvalue e) then error st "++ on non-lvalue";
    Ast.Sassign (e, Ast.Ebinop (Ast.Add, e, Ast.Eint 1L))
  | MINUSMINUS ->
    advance st;
    if not (Ast.is_lvalue e) then error st "-- on non-lvalue";
    Ast.Sassign (e, Ast.Ebinop (Ast.Sub, e, Ast.Eint 1L))
  | _ -> Ast.Sexpr e

let rec stmt st =
  match peek st with
  | KW_CRITICAL -> (
    advance st;
    match base_type st with
    | Some base -> Ast.Sdecl (local_decl st ~critical:true base)
    | None -> error st "expected type after 'critical'")
  | KW_INT | KW_CHAR -> (
    match base_type st with
    | Some base -> Ast.Sdecl (local_decl st ~critical:false base)
    | None -> assert false)
  | KW_IF ->
    advance st;
    expect st LPAREN;
    let c = expr st in
    expect st RPAREN;
    let then_ = block_or_stmt st in
    let else_ = if accept st KW_ELSE then block_or_stmt st else [] in
    Ast.Sif (c, then_, else_)
  | KW_WHILE ->
    advance st;
    expect st LPAREN;
    let c = expr st in
    expect st RPAREN;
    Ast.Swhile (c, block_or_stmt st)
  | KW_DO ->
    advance st;
    let body = block_or_stmt st in
    expect st KW_WHILE;
    expect st LPAREN;
    let c = expr st in
    expect st RPAREN;
    expect st SEMI;
    Ast.Sdo_while (body, c)
  | KW_FOR ->
    advance st;
    expect st LPAREN;
    (* the init clause may be a declaration: for (int i = 0; ...) *)
    let init, init_consumed_semi =
      match peek st with
      | SEMI -> (None, false)
      | KW_INT | KW_CHAR -> (
        match base_type st with
        | Some base -> (Some (Ast.Sdecl (local_decl st ~critical:false base)), true)
        | None -> assert false)
      | _ -> (Some (simple_stmt st), false)
    in
    if not init_consumed_semi then expect st SEMI;
    let cond = if peek st = SEMI then None else Some (expr st) in
    expect st SEMI;
    let step = if peek st = RPAREN then None else Some (simple_stmt st) in
    expect st RPAREN;
    Ast.Sfor (init, cond, step, block_or_stmt st)
  | KW_RETURN ->
    advance st;
    let e = if peek st = SEMI then None else Some (expr st) in
    expect st SEMI;
    Ast.Sreturn e
  | KW_BREAK ->
    advance st;
    expect st SEMI;
    Ast.Sbreak
  | KW_CONTINUE ->
    advance st;
    expect st SEMI;
    Ast.Scontinue
  | LBRACE -> Ast.Sblock (block st)
  | _ ->
    let s = simple_stmt st in
    expect st SEMI;
    s

and block st =
  expect st LBRACE;
  let rec go acc = if accept st RBRACE then List.rev acc else go (stmt st :: acc) in
  go []

and block_or_stmt st = if peek st = LBRACE then block st else [ stmt st ]

(* ---- top level --------------------------------------------------------- *)

let params st =
  expect st LPAREN;
  if accept st RPAREN then []
  else if peek st = KW_VOID && fst st.toks.(st.pos + 1) = RPAREN then begin
    advance st;
    advance st;
    []
  end
  else begin
    let one () =
      match base_type st with
      | None -> error st "expected parameter type"
      | Some base ->
        let ty = wrap_pointers st base in
        let name = expect_ident st in
        let ty =
          if accept st LBRACKET then begin
            expect st RBRACKET;
            Ast.Tptr ty (* array parameters decay to pointers *)
          end
          else ty
        in
        (name, ty)
    in
    let rec go acc =
      let p = one () in
      if accept st COMMA then go (p :: acc)
      else begin
        expect st RPAREN;
        List.rev (p :: acc)
      end
    in
    go []
  end

let top_level st =
  let critical = accept st KW_CRITICAL in
  match base_type st with
  | None -> error st ("expected declaration, found " ^ token_to_string (peek st))
  | Some base ->
    let ty = wrap_pointers st base in
    let name = expect_ident st in
    if peek st = LPAREN then begin
      if critical then error st "'critical' cannot qualify a function";
      let ps = params st in
      if accept st SEMI then `Proto
      else begin
        let body = block st in
        `Func { Ast.f_name = name; f_params = ps; f_ret = ty; f_body = body }
      end
    end
    else begin
      let ty =
        if accept st LBRACKET then begin
          match peek st with
          | INT n ->
            advance st;
            expect st RBRACKET;
            Ast.Tarray (ty, Int64.to_int n)
          | _ -> error st "expected array length"
        end
        else ty
      in
      let init = if accept st EQ then Some (expr st) else None in
      expect st SEMI;
      `Global { Ast.d_name = name; d_ty = ty; d_critical = critical; d_init = init }
    end

let parse src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec go globals funcs =
    if peek st = EOF then
      { Ast.globals = List.rev globals; funcs = List.rev funcs }
    else
      match top_level st with
      | `Func f -> go globals (f :: funcs)
      | `Proto -> go globals funcs
      | `Global g -> go (g :: globals) funcs
  in
  go [] []

let parse_expr src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = expr st in
  if peek st <> EOF then error st "trailing tokens after expression";
  e
