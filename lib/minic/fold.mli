(** AST-level constant folding.

    Semantics-preserving by construction:
    - division/modulo by a literal zero is NOT folded (the runtime
      fault must survive);
    - shift folding uses the machine's amount masking (k land 63);
    - a statically dead [if]/[while] branch is removed but its
      declarations are kept (Mini-C scoping is function-flat, so later
      code may legally reference them). *)

val expr : Ast.expr -> Ast.expr

val program : Ast.program -> Ast.program
