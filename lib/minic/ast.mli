(** Abstract syntax of Mini-C — the C subset the evaluation programs are
    written in.

    Notable deviation from C: a declaration may carry the [critical]
    qualifier, marking a local variable for P-SSP-LV protection
    (§IV-B suggests letting the programmer specify sensitive
    variables). *)

type ty =
  | Tint  (** 64-bit signed *)
  | Tchar  (** byte *)
  | Tptr of ty
  | Tarray of ty * int

val sizeof : ty -> int
(** Storage size in bytes ([Tint]/[Tptr] = 8, [Tchar] = 1, arrays are
    element size times length). *)

val elem_size : ty -> int
(** Size of the element an index expression steps by.
    Raises [Invalid_argument] for non-indexable types. *)

val ty_to_string : ty -> string

type unop = Neg | Lnot | Bnot

type binop =
  | Add | Sub | Mul | Div | Rem
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuiting *)
  | Band | Bor | Bxor | Shl | Shr

val binop_to_string : binop -> string
val unop_to_string : unop -> string

type expr =
  | Eint of int64
  | Echar of char
  | Estr of string  (** string literal: a pointer into rodata *)
  | Evar of string
  | Eindex of expr * expr  (** [a\[i\]] *)
  | Eaddr of expr  (** [&lvalue] *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list

type decl = {
  d_name : string;
  d_ty : ty;
  d_critical : bool;  (** P-SSP-LV protection requested *)
  d_init : expr option;
}

type stmt =
  | Sdecl of decl
  | Sassign of expr * expr  (** lvalue, rvalue *)
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sdo_while of block * expr
  | Sfor of stmt option * expr option * stmt option * block
  | Sreturn of expr option
  | Sexpr of expr
  | Sbreak
  | Scontinue
  | Sblock of block

and block = stmt list

type func = {
  f_name : string;
  f_params : (string * ty) list;
  f_ret : ty;
  f_body : block;
}

type program = { globals : decl list; funcs : func list }

val find_func : program -> string -> func option

val is_lvalue : expr -> bool
(** Variables and index expressions — things that denote storage. *)
