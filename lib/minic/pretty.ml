open Ast

let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | '"' -> "\\\""
  | c -> String.make 1 c

let escape_string s = String.concat "" (List.map escape_char (List.init (String.length s) (String.get s)))

let prec_of = function
  | Mul | Div | Rem -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3
  | Land -> 2
  | Lor -> 1

let rec expr_prec = function
  | Eint _ | Echar _ | Estr _ | Evar _ | Ecall _ | Eindex _ -> 12
  | Eunop _ | Eaddr _ -> 11
  | Ebinop (op, _, _) -> prec_of op

and render ctx e =
  let s =
    match e with
    | Eint v -> Int64.to_string v
    | Echar c -> Printf.sprintf "'%s'" (escape_char c)
    | Estr s -> Printf.sprintf "\"%s\"" (escape_string s)
    | Evar name -> name
    | Eindex (b, i) -> Printf.sprintf "%s[%s]" (render 12 b) (render 0 i)
    | Eaddr e -> "&" ^ render 11 e
    | Eunop (op, e) ->
      let inner = render 11 e in
      (* "-(-5)" must not print as "--5": the lexer would see a decrement *)
      if op = Neg && String.length inner > 0 && inner.[0] = '-' then
        unop_to_string op ^ "(" ^ inner ^ ")"
      else unop_to_string op ^ inner
    | Ebinop (op, a, b) ->
      let p = prec_of op in
      Printf.sprintf "%s %s %s" (render p a) (binop_to_string op) (render (p + 1) b)
    | Ecall (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (render 0) args))
  in
  if expr_prec e < ctx then "(" ^ s ^ ")" else s

let expr_to_string e = render 0 e

let decl_to_string d =
  let base, suffix =
    match d.d_ty with
    | Tarray (t, n) -> (ty_to_string t, Printf.sprintf "[%d]" n)
    | t -> (ty_to_string t, "")
  in
  Printf.sprintf "%s%s %s%s%s"
    (if d.d_critical then "critical " else "")
    base d.d_name suffix
    (match d.d_init with
    | Some e -> " = " ^ expr_to_string e
    | None -> "")

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  match s with
  | Sdecl d -> [ pad ^ decl_to_string d ^ ";" ]
  | Sassign (l, r) ->
    [ Printf.sprintf "%s%s = %s;" pad (expr_to_string l) (expr_to_string r) ]
  | Sif (c, a, []) ->
    (pad ^ Printf.sprintf "if (%s) {" (expr_to_string c))
    :: block_lines (indent + 2) a
    @ [ pad ^ "}" ]
  | Sif (c, a, b) ->
    (pad ^ Printf.sprintf "if (%s) {" (expr_to_string c))
    :: block_lines (indent + 2) a
    @ [ pad ^ "} else {" ]
    @ block_lines (indent + 2) b
    @ [ pad ^ "}" ]
  | Swhile (c, b) ->
    (pad ^ Printf.sprintf "while (%s) {" (expr_to_string c))
    :: block_lines (indent + 2) b
    @ [ pad ^ "}" ]
  | Sdo_while (b, c) ->
    (pad ^ "do {")
    :: block_lines (indent + 2) b
    @ [ pad ^ Printf.sprintf "} while (%s);" (expr_to_string c) ]
  | Sfor (init, cond, step, b) ->
    let part f = function Some x -> f x | None -> "" in
    let strip_semi s =
      if String.length s > 0 && s.[String.length s - 1] = ';' then
        String.sub s 0 (String.length s - 1)
      else s
    in
    let simple s = strip_semi (String.trim (String.concat "" (stmt_lines 0 s))) in
    (pad
    ^ Printf.sprintf "for (%s; %s; %s) {" (part simple init)
        (part expr_to_string cond) (part simple step))
    :: block_lines (indent + 2) b
    @ [ pad ^ "}" ]
  | Sreturn None -> [ pad ^ "return;" ]
  | Sreturn (Some e) -> [ pad ^ Printf.sprintf "return %s;" (expr_to_string e) ]
  | Sexpr e -> [ pad ^ expr_to_string e ^ ";" ]
  | Sbreak -> [ pad ^ "break;" ]
  | Scontinue -> [ pad ^ "continue;" ]
  | Sblock b -> (pad ^ "{") :: block_lines (indent + 2) b @ [ pad ^ "}" ]

and block_lines indent b = List.concat_map (stmt_lines indent) b

let stmt_to_string ?(indent = 0) s = String.concat "\n" (stmt_lines indent s)

let param_to_string (name, ty) =
  Printf.sprintf "%s %s" (ty_to_string ty) name

let func_to_string f =
  let header =
    Printf.sprintf "%s %s(%s) {" (ty_to_string f.f_ret) f.f_name
      (String.concat ", " (List.map param_to_string f.f_params))
  in
  String.concat "\n" ((header :: block_lines 2 f.f_body) @ [ "}" ])

let program_to_string p =
  let globals = List.map (fun d -> decl_to_string d ^ ";") p.globals in
  let funcs = List.map func_to_string p.funcs in
  String.concat "\n\n" (List.filter (fun s -> s <> "") [ String.concat "\n" globals ] @ funcs)
  ^ "\n"
