(** Hand-written lexer for Mini-C. *)

type token =
  | INT of int64
  | CHARLIT of char
  | STRING of string
  | IDENT of string
  | KW_INT | KW_CHAR | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_CRITICAL
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | EQEQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | PLUSEQ | MINUSEQ  (** sugar: [x += e] *)
  | PLUSPLUS | MINUSMINUS  (** sugar: [x++], [x--] (statement position) *)
  | EOF

val token_to_string : token -> string

exception Error of int * string
(** [(line, message)]. *)

val tokenize : string -> (token * int) list
(** Token stream with line numbers; comments ([//] and [/* */]) and
    whitespace are skipped. Raises {!Error} on bad input. *)
