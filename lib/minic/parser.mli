(** Recursive-descent parser for Mini-C. *)

exception Error of int * string
(** [(line, message)]. *)

val parse : string -> Ast.program
(** Parse a complete translation unit.
    Raises {!Error} or {!Lexer.Error} on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (testing convenience). *)
