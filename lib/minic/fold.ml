open Ast

let bool_to_int b = if b then 1L else 0L

let eval_binop op a b =
  match op with
  | Add -> Some (Int64.add a b)
  | Sub -> Some (Int64.sub a b)
  | Mul -> Some (Int64.mul a b)
  | Div -> if Int64.equal b 0L then None else Some (Int64.div a b)
  | Rem -> if Int64.equal b 0L then None else Some (Int64.rem a b)
  | Eq -> Some (bool_to_int (Int64.equal a b))
  | Ne -> Some (bool_to_int (not (Int64.equal a b)))
  | Lt -> Some (bool_to_int (Int64.compare a b < 0))
  | Le -> Some (bool_to_int (Int64.compare a b <= 0))
  | Gt -> Some (bool_to_int (Int64.compare a b > 0))
  | Ge -> Some (bool_to_int (Int64.compare a b >= 0))
  | Land -> Some (bool_to_int ((not (Int64.equal a 0L)) && not (Int64.equal b 0L)))
  | Lor -> Some (bool_to_int ((not (Int64.equal a 0L)) || not (Int64.equal b 0L)))
  | Band -> Some (Int64.logand a b)
  | Bor -> Some (Int64.logor a b)
  | Bxor -> Some (Int64.logxor a b)
  | Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Shr -> Some (Int64.shift_right_logical a (Int64.to_int b land 63))

let eval_unop op a =
  match op with
  | Neg -> Int64.neg a
  | Lnot -> bool_to_int (Int64.equal a 0L)
  | Bnot -> Int64.lognot a

let lit_of = function
  | Eint v -> Some v
  | Echar c -> Some (Int64.of_int (Char.code c))
  | _ -> None

let rec expr e =
  match e with
  | Eint _ | Echar _ | Estr _ | Evar _ -> e
  | Eindex (b, i) -> Eindex (expr b, expr i)
  | Eaddr inner -> Eaddr (expr inner)
  | Eunop (op, inner) -> (
    let inner = expr inner in
    match lit_of inner with
    | Some v -> Eint (eval_unop op v)
    | None -> Eunop (op, inner))
  | Ebinop (op, a, b) -> (
    let a = expr a and b = expr b in
    match (lit_of a, lit_of b) with
    | Some va, Some vb -> (
      match eval_binop op va vb with
      | Some v -> Eint v
      | None -> Ebinop (op, a, b) (* division by literal zero: keep the fault *))
    | _ -> Ebinop (op, a, b))
  | Ecall (f, args) -> Ecall (f, List.map expr args)

(* Dead branches lose their code but keep their declarations: Mini-C
   scope is function-flat, so later statements may name them. *)
let decls_only block =
  List.map
    (fun d -> Sdecl { d with d_init = None })
    (Typecheck.block_decls block)

let truthy e =
  match lit_of e with
  | Some v -> Some (not (Int64.equal v 0L))
  | None -> None

let rec stmt s =
  match s with
  | Sdecl d -> Sdecl { d with d_init = Option.map expr d.d_init }
  | Sassign (l, r) -> Sassign (expr l, expr r)
  | Sif (c, a, b) -> (
    let c = expr c in
    let a = block a and b = block b in
    match truthy c with
    | Some true -> Sblock (a @ decls_only b)
    | Some false -> Sblock (decls_only a @ b)
    | None -> Sif (c, a, b))
  | Swhile (c, body) -> (
    let c = expr c in
    match truthy c with
    | Some false -> Sblock (decls_only body)
    | Some true | None -> Swhile (c, block body))
  | Sdo_while (body, c) -> Sdo_while (block body, expr c)
  | Sfor (init, cond, step, body) ->
    Sfor (Option.map stmt init, Option.map expr cond, Option.map stmt step, block body)
  | Sreturn e -> Sreturn (Option.map expr e)
  | Sexpr e -> Sexpr (expr e)
  | Sbreak | Scontinue -> s
  | Sblock b -> Sblock (block b)

and block b = List.map stmt b

let program p =
  {
    p with
    funcs = List.map (fun f -> { f with f_body = block f.f_body }) p.funcs;
  }
