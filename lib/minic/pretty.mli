(** Render Mini-C ASTs back to source. Parsing the output yields the
    same AST (round-trip tested), which makes generated workloads easy
    to inspect. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val func_to_string : Ast.func -> string
val program_to_string : Ast.program -> string
