type token =
  | INT of int64
  | CHARLIT of char
  | STRING of string
  | IDENT of string
  | KW_INT | KW_CHAR | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_CRITICAL
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | EQEQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | PLUSEQ | MINUSEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

let token_to_string = function
  | INT v -> Int64.to_string v
  | CHARLIT c -> Printf.sprintf "'%c'" c
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_INT -> "int" | KW_CHAR -> "char" | KW_VOID -> "void"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while"
  | KW_DO -> "do" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_CRITICAL -> "critical"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> ","
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "=" | EQEQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<="
  | GT -> ">" | GE -> ">="
  | AMPAMP -> "&&" | PIPEPIPE -> "||" | BANG -> "!"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | SHL -> "<<" | SHR -> ">>"
  | PLUSEQ -> "+=" | MINUSEQ -> "-="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"

exception Error of int * string

let keyword = function
  | "int" -> Some KW_INT
  | "char" -> Some KW_CHAR
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "critical" -> Some KW_CRITICAL
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type state = { src : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (st.line, msg))

let escape st = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> error st (Printf.sprintf "bad escape \\%c" c)

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> error st "unterminated comment"
      | Some _, _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    let rec go () =
      match peek st with
      | Some c
        when is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ->
        advance st;
        go ()
      | Some _ | None -> ()
    in
    go ()
  end
  else begin
    let rec go () =
      match peek st with
      | Some c when is_digit c ->
        advance st;
        go ()
      | Some _ | None -> ()
    in
    go ()
  end;
  let text = String.sub st.src start (st.pos - start) in
  match Int64.of_string_opt text with
  | Some v -> INT v
  | None -> error st (Printf.sprintf "bad integer literal %s" text)

let lex_ident st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  match keyword text with Some kw -> kw | None -> IDENT text

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> error st "unterminated escape"
      | Some c ->
        advance st;
        Buffer.add_char buf (escape st c);
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let lex_charlit st =
  advance st;
  let c =
    match peek st with
    | None -> error st "unterminated char literal"
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> error st "unterminated escape"
      | Some e ->
        advance st;
        escape st e)
    | Some c ->
      advance st;
      c
  in
  match peek st with
  | Some '\'' ->
    advance st;
    CHARLIT c
  | _ -> error st "unterminated char literal"

let two st tok =
  advance st;
  advance st;
  tok

let one st tok =
  advance st;
  tok

let next_token st =
  skip_trivia st;
  match peek st with
  | None -> EOF
  | Some c -> (
    match c with
    | c when is_digit c -> lex_number st
    | c when is_ident_start c -> lex_ident st
    | '"' -> lex_string st
    | '\'' -> lex_charlit st
    | '(' -> one st LPAREN
    | ')' -> one st RPAREN
    | '{' -> one st LBRACE
    | '}' -> one st RBRACE
    | '[' -> one st LBRACKET
    | ']' -> one st RBRACKET
    | ';' -> one st SEMI
    | ',' -> one st COMMA
    | '+' -> (
      match peek2 st with
      | Some '=' -> two st PLUSEQ
      | Some '+' -> two st PLUSPLUS
      | _ -> one st PLUS)
    | '-' -> (
      match peek2 st with
      | Some '=' -> two st MINUSEQ
      | Some '-' -> two st MINUSMINUS
      | _ -> one st MINUS)
    | '*' -> one st STAR
    | '/' -> one st SLASH
    | '%' -> one st PERCENT
    | '=' -> if peek2 st = Some '=' then two st EQEQ else one st EQ
    | '!' -> if peek2 st = Some '=' then two st NE else one st BANG
    | '<' -> (
      match peek2 st with
      | Some '=' -> two st LE
      | Some '<' -> two st SHL
      | _ -> one st LT)
    | '>' -> (
      match peek2 st with
      | Some '=' -> two st GE
      | Some '>' -> two st SHR
      | _ -> one st GT)
    | '&' -> if peek2 st = Some '&' then two st AMPAMP else one st AMP
    | '|' -> if peek2 st = Some '|' then two st PIPEPIPE else one st PIPE
    | '^' -> one st CARET
    | '~' -> one st TILDE
    | c -> error st (Printf.sprintf "unexpected character %C" c))

let tokenize src =
  let st = { src; pos = 0; line = 1 } in
  let rec loop acc =
    let line = st.line in
    match next_token st with
    | EOF -> List.rev ((EOF, line) :: acc)
    | tok -> loop ((tok, line) :: acc)
  in
  loop []
