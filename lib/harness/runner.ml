type deployment =
  | Native
  | Compiler of Pssp.Scheme.t
  | Instr_dynamic
  | Instr_static
  | Dynaguard_pin
  | Dcr_static

let deployment_name = function
  | Native -> "native"
  | Compiler s -> "compiler/" ^ Pssp.Scheme.name s
  | Instr_dynamic -> "instr/pssp-dynamic"
  | Instr_static -> "instr/pssp-static"
  | Dynaguard_pin -> "instr/dynaguard-pin"
  | Dcr_static -> "instr/dcr-static"

let pin_insn_tax = 2
let dcr_call_tax = 24

type built = {
  image : Os.Image.t;
  preload : Os.Preload.mode;
  insn_tax : int;
  call_tax : int;
}

let build deployment program =
  match deployment with
  | Native ->
    let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.None_ program in
    { image; preload = Os.Preload.No_preload; insn_tax = 0; call_tax = 0 }
  | Compiler scheme ->
    let image = Mcc.Driver.compile ~scheme program in
    { image; preload = Mcc.Driver.preload_for scheme; insn_tax = 0; call_tax = 0 }
  | Instr_dynamic ->
    let ssp = Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp program in
    let image, _report = Rewriter.Driver.instrument ssp in
    { image; preload = Rewriter.Driver.required_preload image; insn_tax = 0; call_tax = 0 }
  | Instr_static ->
    let ssp =
      Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp ~linkage:Os.Image.Static program
    in
    let image, _report = Rewriter.Driver.instrument ssp in
    { image; preload = Os.Preload.No_preload; insn_tax = 0; call_tax = 0 }
  | Dynaguard_pin ->
    let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.Dynaguard program in
    {
      image;
      preload = Os.Preload.Dynaguard_fix;
      insn_tax = pin_insn_tax;
      call_tax = 0;
    }
  | Dcr_static ->
    let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.Dcr program in
    { image; preload = Os.Preload.Dcr_fix; insn_tax = 0; call_tax = dcr_call_tax }

type run = {
  stop : Os.Kernel.stop;
  cycles : int64;
  output : string;
  mem_bytes : int;
}

let run_built ?(input = Bytes.create 0) ?fuel ?(seed = 0x5EED5L) built =
  let kernel = Os.Kernel.create ~seed () in
  let proc =
    Os.Kernel.spawn kernel ~input ~preload:built.preload ~insn_tax:built.insn_tax
      ~call_tax:built.call_tax built.image
  in
  Os.Kernel.enqueue kernel proc;
  Os.Kernel.schedule ?fuel kernel;
  let stop = Os.Kernel.stop_of proc in
  {
    stop;
    cycles = Os.Process.cycles proc;
    output = Os.Process.stdout proc;
    mem_bytes = Vm64.Memory.mapped_bytes proc.Os.Process.mem;
  }

let run_bench ?seed deployment bench =
  Telemetry.Trace.with_span "runner.bench"
    ~args:
      [
        ("bench", bench.Workload.Spec.bench_name);
        ("deployment", deployment_name deployment);
      ]
    (fun () ->
  let built = build deployment (Workload.Spec.parse bench) in
  let run = run_built ?seed built in
  (match run.stop with
  | Os.Kernel.Stop_exit 0 -> ()
  | other ->
    failwith
      (Printf.sprintf "Runner.run_bench: %s under %s: %s"
         bench.Workload.Spec.bench_name (deployment_name deployment)
         (Os.Kernel.stop_to_string other)));
  run)

let overhead_pct ~native run =
  Util.Stats.overhead_pct
    ~baseline:(Int64.to_float native.cycles)
    ~measured:(Int64.to_float run.cycles)

(* Per-request guest-cycle distribution across every [run_server] call
   in the process; bucket bounds bracket the few-hundred-to-few-hundred-
   thousand-cycle requests the Table III/IV profiles produce. *)
let g_request_cycles =
  Telemetry.Registry.histogram "harness.server.request_cycles"
    ~bounds:[| 100; 300; 1_000; 3_000; 10_000; 30_000; 100_000; 300_000; 1_000_000 |]

type server_run = {
  avg_request_cycles : float;
  p50_request_cycles : float;
  p99_request_cycles : float;
  server_mem_bytes : int;
  server_resident_bytes : int;
  server_shared_bytes : int;
  forks : int;
  failed_requests : int;
  tcache_hits : int;
  tcache_misses : int;
  tcache_compiles : int;
}

let run_server ?(seed = 0x5E44EL) deployment (profile : Workload.Servers.profile)
    ~requests =
  let program = Minic.Parser.parse profile.Workload.Servers.source in
  let built = build deployment program in
  let kernel = Os.Kernel.create ~seed () in
  let server =
    Os.Kernel.spawn kernel ~preload:built.preload ~insn_tax:built.insn_tax
      ~call_tax:built.call_tax built.image
  in
  Os.Kernel.enqueue kernel server;
  Os.Kernel.schedule kernel;
  (match Os.Kernel.stop_of server with
  | Os.Kernel.Stop_accept -> ()
  | other ->
    failwith
      (Printf.sprintf "Runner.run_server: %s never reached accept: %s"
         profile.Workload.Servers.profile_name (Os.Kernel.stop_to_string other)));
  let mix = Array.of_list profile.Workload.Servers.requests in
  let samples = Array.make requests 0.0 in
  let failed = ref 0 in
  for i = 0 to requests - 1 do
    let request = Bytes.of_string mix.(i mod Array.length mix) in
    let before = Os.Process.cycles server in
    Os.Kernel.deliver_request kernel server request;
    Os.Kernel.schedule kernel;
    Os.Kernel.reap_zombies kernel server;
    (match Os.Kernel.stop_of server with
    | Os.Kernel.Stop_accept -> ()
    | other ->
      failwith
        (Printf.sprintf "Runner.run_server: server died: %s"
           (Os.Kernel.stop_to_string other)));
    let child_work =
      match Os.Kernel.last_reaped kernel with
      | Some child ->
        (match child.Os.Process.status with
        | Os.Process.Killed _ -> incr failed
        | _ -> ());
        Int64.to_float (Int64.sub (Os.Process.cycles child) before)
      | None -> 0.0
    in
    let parent_work = Int64.to_float (Int64.sub (Os.Process.cycles server) before) in
    samples.(i) <- child_work +. parent_work;
    Telemetry.Registry.observe g_request_cycles (int_of_float samples.(i))
  done;
  let xs = Vm64.Tcache.exec_stats server.Os.Process.cpu.Vm64.Cpu.tcache in
  {
    avg_request_cycles = Util.Stats.mean samples;
    p50_request_cycles = Util.Stats.median samples;
    p99_request_cycles = Util.Stats.percentile samples 99.0;
    server_mem_bytes = Vm64.Memory.mapped_bytes server.Os.Process.mem;
    server_resident_bytes = Vm64.Memory.resident_bytes server.Os.Process.mem;
    server_shared_bytes = Vm64.Memory.shared_bytes server.Os.Process.mem;
    forks = Os.Kernel.fork_count kernel;
    failed_requests = !failed;
    tcache_hits = xs.Vm64.Tcache.hits;
    tcache_misses = xs.Vm64.Tcache.misses;
    tcache_compiles = xs.Vm64.Tcache.compiles;
  }

(* ---- concurrent load ------------------------------------------------------ *)

type load_run = {
  sent : int;
  completed : int;
  load_failed : int;
  aborted : int;
  refused : int;
  peak_open : int;
  virtual_cycles : int64;
  throughput_rps : float;
  avg_latency_cycles : float;
  p50_latency_cycles : float;
  p99_latency_cycles : float;
  p999_latency_cycles : float;
  saturation_rps : float;
  load_forks : int;
  server_alive : bool;
}

let default_conn_timeout = 2_000_000L

(* Instruction budget per kernel turn inside the pump. Small enough
   that client state machines interleave with server execution well
   below the connection idle timeout (a saturated ready queue would
   otherwise run the whole campaign's cycles in one [schedule] call,
   starving slow senders until their conns time out), large enough
   that the pump loop itself is cheap. *)
let pump_slice = 262_144

(* The pump: alternate load-generator steps with kernel scheduling, and
   when neither side can move at the current virtual time, jump the
   clock to the earliest scheduled event (a client's send/retry stamp
   or a blocked connection's timeout deadline). All state is per-call
   and seeded, so a given configuration replays byte-identically no
   matter how many worker domains run pumps concurrently. *)
let pump kernel server lg =
  let try_connect () = Os.Kernel.connect kernel server in
  let stalls = ref 0 in
  let finished = ref false in
  while not !finished do
    let now0 = Os.Kernel.now kernel in
    let moved = Net.Loadgen.step lg ~now:now0 ~try_connect in
    Os.Kernel.schedule kernel ~fuel:pump_slice;
    if Net.Loadgen.finished lg then finished := true
    else if moved || Int64.compare (Os.Kernel.now kernel) now0 > 0 then
      stalls := 0
    else begin
      let next =
        match (Net.Loadgen.next_event lg, Os.Kernel.next_deadline kernel) with
        | None, None -> None
        | (Some _ as a), None -> a
        | None, (Some _ as b) -> b
        | Some a, Some b -> Some (if Int64.compare a b <= 0 then a else b)
      in
      (match next with
      | Some target when Int64.compare target now0 > 0 ->
        Os.Kernel.advance_to kernel target
      | _ -> incr stalls);
      (* nothing scheduled and nobody movable: a protocol wedge — fail
         the outstanding requests instead of spinning forever *)
      if !stalls > 3 then begin
        Net.Loadgen.force_finish lg ~now:(Os.Kernel.now kernel);
        finished := true
      end
    end
  done;
  (* let forked children drain: parked clients half-closed their conns,
     so blocked handlers see EOF; stragglers hit the conn timeout *)
  Os.Kernel.schedule kernel;
  match Os.Kernel.next_deadline kernel with
  | Some deadline ->
    Os.Kernel.advance_to kernel deadline;
    Os.Kernel.schedule kernel
  | None -> ()

let run_load ?(seed = 0x5E44EL) ?(loadgen_seed = 0x10AD6E4L)
    ?(conn_timeout = default_conn_timeout) ?(slow_every = 0) ?(abort_every = 0)
    deployment (profile : Workload.Servers.profile) ~mode ~connections
    ~keepalive ~total =
  Telemetry.Trace.with_span "runner.load"
    ~args:
      [
        ("profile", profile.Workload.Servers.profile_name);
        ("deployment", deployment_name deployment);
      ]
    (fun () ->
      let program = Minic.Parser.parse profile.Workload.Servers.source in
      let built = build deployment program in
      let kernel = Os.Kernel.create ~seed () in
      let server =
        Os.Kernel.spawn kernel ~preload:built.preload ~insn_tax:built.insn_tax
          ~call_tax:built.call_tax built.image
      in
      (* Forking servers park in accept; an event-loop server parks in
         epoll_wait and a sharded parent in waitpid (both Stop_io) —
         each means "ready for connections". *)
      Os.Kernel.enqueue kernel server;
      Os.Kernel.schedule kernel;
      (match Os.Kernel.stop_of server with
      | Os.Kernel.Stop_accept | Os.Kernel.Stop_io -> ()
      | other ->
        failwith
          (Printf.sprintf "Runner.run_load: %s never became ready: %s"
             profile.Workload.Servers.profile_name
             (Os.Kernel.stop_to_string other)));
      Os.Kernel.set_conn_timeout kernel (Some conn_timeout);
      let lg =
        Net.Loadgen.create ~seed:loadgen_seed ~slow_every ~abort_every ~mode
          ~clients:connections ~keepalive ~total
          ~mix:profile.Workload.Servers.requests ()
      in
      pump kernel server lg;
      Os.Kernel.reap_zombies kernel server;
      let r = Net.Loadgen.report lg in
      let latencies = Array.map Int64.to_float r.Net.Loadgen.latencies in
      let cycles = Os.Kernel.now kernel in
      let ms =
        Int64.to_float cycles /. profile.Workload.Servers.cycles_per_ms
      in
      {
        sent = r.Net.Loadgen.sent;
        completed = r.Net.Loadgen.completed;
        load_failed = r.Net.Loadgen.failed;
        aborted = r.Net.Loadgen.aborted;
        refused = r.Net.Loadgen.refused;
        peak_open = r.Net.Loadgen.peak_open;
        virtual_cycles = cycles;
        throughput_rps =
          (if ms > 0.0 then float_of_int r.Net.Loadgen.completed /. (ms /. 1000.0)
           else 0.0);
        avg_latency_cycles =
          (if Array.length latencies = 0 then 0.0 else Util.Stats.mean latencies);
        p50_latency_cycles =
          (if Array.length latencies = 0 then 0.0
           else Util.Stats.median latencies);
        p99_latency_cycles =
          (if Array.length latencies = 0 then 0.0
           else Util.Stats.percentile latencies 99.0);
        p999_latency_cycles =
          (if Array.length latencies = 0 then 0.0
           else Util.Stats.percentile latencies 99.9);
        saturation_rps =
          (let busy_ms =
             Int64.to_float r.Net.Loadgen.busy_cycles
             /. profile.Workload.Servers.cycles_per_ms
           in
           if busy_ms > 0.0 then
             float_of_int r.Net.Loadgen.completed /. (busy_ms /. 1000.0)
           else 0.0);
        load_forks = Os.Kernel.fork_count kernel;
        server_alive =
          (match server.Os.Process.status with
          | Os.Process.Exited _ | Os.Process.Killed _ -> false
          | _ -> true);
      })
