(** Loadbench: the concurrent keep-alive traffic campaign (one cell per
    server profile x architecture x deployment), formerly a bench/main
    special case. *)

type arch = Fork | Event | Reuseport

val arch_profile : arch -> Workload.Servers.profile -> Workload.Servers.profile
(** Wrap a forking profile into the event-loop or SO_REUSEPORT-sharded
    variant; [Fork] is the identity. *)

val mode_name : Net.Loadgen.mode -> string
(** ["closed"] or ["open/INTERARRIVAL"], as the header line prints it. *)

val campaign :
  mode:Net.Loadgen.mode ->
  connections:int ->
  keepalive:int ->
  archs:arch list ->
  total:int ->
  unit ->
  Campaign.t
(** The campaign's context line is the historical
    [mode=... connections=... keepalive=... requests-per-cell=...]
    header. *)
