type row = { label : string; scheme : Pssp.Scheme.t; cycles : float }

type result = { rows : row list }

(* A guarded leaf function with [criticals] critical locals, called in a
   tight loop; the loop body is identical across schemes, so the cycle
   delta against the unprotected build isolates the canary code. *)
let victim ~criticals ~calls =
  let decls =
    String.concat "\n"
      (List.init criticals (fun i ->
           Printf.sprintf "  critical int guard_me%d;" i))
  in
  let uses =
    String.concat "\n"
      (List.init criticals (fun i ->
           Printf.sprintf "  guard_me%d = x + %d;" i i))
  in
  let sums =
    String.concat ""
      (List.init criticals (fun i -> Printf.sprintf " + guard_me%d" i))
  in
  Printf.sprintf
    {|
int work(int x) {
  char buf[16];
%s
  buf[0] = x;
%s
  return buf[0]%s;
}

int main() {
  int i;
  int acc = 0;
  for (i = 0; i < %d; i++) {
    acc = acc + work(i);
  }
  print_int(acc);
  return 0;
}
|}
    decls uses sums calls

let run_cycles scheme ~criticals ~calls =
  let program = Minic.Parser.parse (victim ~criticals ~calls) in
  let image = Mcc.Driver.compile ~scheme program in
  let kernel = Os.Kernel.create () in
  let proc = Os.Kernel.spawn kernel ~preload:(Mcc.Driver.preload_for scheme) image in
  Os.Kernel.enqueue kernel proc;
  Os.Kernel.schedule kernel;
  (match Os.Kernel.stop_of proc with
  | Os.Kernel.Stop_exit 0 -> ()
  | other -> failwith ("Table5: " ^ Os.Kernel.stop_to_string other));
  Os.Process.cycles proc

let measure_scheme ?(calls = 20_000) scheme ~criticals =
  let protected_ = run_cycles scheme ~criticals ~calls in
  let baseline = run_cycles Pssp.Scheme.None_ ~criticals ~calls in
  Int64.to_float (Int64.sub protected_ baseline) /. float_of_int calls

let specs =
  [
    ("P-SSP", Pssp.Scheme.Pssp, 0);
    ("P-SSP-NT", Pssp.Scheme.Pssp_nt, 0);
    (* paper counts canaries: "2 variables" = ret guard + 1 critical *)
    ("P-SSP-LV (2 variables)", Pssp.Scheme.Pssp_lv 1, 1);
    ("P-SSP-LV (4 variables)", Pssp.Scheme.Pssp_lv 3, 3);
    ("P-SSP-OWF", Pssp.Scheme.Pssp_owf, 0);
    (* beyond the paper: the defense-family schemes, same harness *)
    ("Shadow stack (compact)", Pssp.Scheme.Shadow_compact, 0);
    ("Shadow stack (parallel)", Pssp.Scheme.Shadow_parallel, 0);
    ("PAC canary", Pssp.Scheme.Pac_canary, 0);
    ("Wasm SSP", Pssp.Scheme.Wasm_ssp, 0);
  ]

let run ?(jobs = 1) ?(calls = 20_000) () =
  {
    rows =
      Pool.map ~jobs
        (fun (label, scheme, criticals) ->
          { label; scheme; cycles = measure_scheme ~calls scheme ~criticals })
        specs;
  }

let to_table result =
  let t =
    Util.Table.create
      ~title:
        "Table V: Average CPU cycles spent by the canary prologue+epilogue"
      [ "Scheme"; "Cycles per call" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t [ r.label; Util.Table.cell_float ~digits:1 r.cycles ])
    result.rows;
  t

let campaign () =
  Campaign.v ~name:"table5" ~title:"Table V - prologue+epilogue canary cycles"
    ~cells:(List.length specs)
    ~run_cell:(fun i ->
      let label, scheme, criticals = List.nth specs i in
      Campaign.pack { label; scheme; cycles = measure_scheme scheme ~criticals })
    ~merge:(fun rows ->
      Util.Table.print
        (to_table { rows = List.map (fun r -> (Campaign.unpack r : row)) rows });
      print_string
        "Paper: P-SSP 6; P-SSP-NT 343; P-SSP-LV 343 / 986; P-SSP-OWF 278.\n")
    ()
