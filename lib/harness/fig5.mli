(** Figure 5: runtime overhead of compiler-based and instrumentation-
    based P-SSP over native execution, per SPEC benchmark, plus suite
    averages (paper: 0.24% compiler, 1.01% instrumented). *)

type row = {
  bench : string;
  suite : [ `Int | `Fp ];
  native_cycles : int64;
  compiler_pct : float;
  instr_pct : float;
}

type result = {
  rows : row list;
  compiler_avg : float;
  instr_avg : float;
}

val run : ?jobs:int -> ?benches:Workload.Spec.bench list -> unit -> result
(** Defaults to the full 28-program suite, measured serially. [jobs]
    fans the per-benchmark measurements out over a {!Pool} of domains;
    results (and the rendered table) are identical for every [jobs]. *)

val to_table : result -> Util.Table.t

val to_chart : ?width:int -> result -> string
(** Render the figure as horizontal bars (one row per benchmark, two
    bars: compiler-based and instrumentation-based overhead), the way
    the paper presents Figure 5. *)

val campaign : unit -> Campaign.t
(** One cell per benchmark of the full suite; the merge step prints the
    table, chart, and paper-comparison footer. *)
