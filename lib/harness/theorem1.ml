type result = {
  samples : int;
  byte_chi2 : float array;
  critical : float;
  uniform : bool;
  invariance_chi2 : float;
  invariant : bool;
}

let collect_c1_bytes rng c ~samples =
  (* counts.(byte_index).(value) *)
  let counts = Array.make_matrix 8 256 0 in
  for _ = 1 to samples do
    let pair = Pssp.Canary.re_randomize rng c in
    let c1 = pair.Pssp.Canary.c1 in
    for b = 0 to 7 do
      let v =
        Int64.to_int (Int64.logand (Int64.shift_right_logical c1 (8 * b)) 0xFFL)
      in
      counts.(b).(v) <- counts.(b).(v) + 1
    done
  done;
  counts

let run ?(samples = 100_000) ?(seed = 0x7E01L) () =
  let rng = Util.Prng.create seed in
  let c_a = 0xDEADBEEFCAFEF00DL in
  let c_b = 0x0123456789ABCDEFL in
  let counts_a = collect_c1_bytes rng c_a ~samples in
  let counts_b = collect_c1_bytes rng c_b ~samples in
  let byte_chi2 =
    Array.map (fun observed -> Util.Stats.chi_square_uniform ~observed) counts_a
  in
  let critical = Util.Stats.chi_square_critical_256_p001 in
  let uniform = Array.for_all (fun x -> x < critical) byte_chi2 in
  (* two-sample test on byte 0: does C1's distribution shift with C? *)
  let expected =
    Array.map (fun n -> Stdlib.max 1.0 (float_of_int n)) counts_a.(0)
  in
  let observed = Array.map float_of_int counts_b.(0) in
  let invariance_chi2 = Util.Stats.chi_square ~expected ~observed in
  (* two-sample chi2 has roughly twice the variance of the one-sample
     statistic; double the critical value is a conservative bound *)
  let invariant = invariance_chi2 < 2.0 *. critical in
  { samples; byte_chi2; critical; uniform; invariance_chi2; invariant }

let to_table result =
  let t =
    Util.Table.create
      ~title:
        (Printf.sprintf
           "Theorem 1: independence of exposed shadow halves (%d samples, \
            chi-square critical %.1f)"
           result.samples result.critical)
      [ "Test"; "Statistic"; "Verdict" ]
  in
  Array.iteri
    (fun i chi2 ->
      Util.Table.add_row t
        [
          Printf.sprintf "C1 byte %d uniformity" i;
          Util.Table.cell_float ~digits:1 chi2;
          (if chi2 < result.critical then "uniform" else "BIASED");
        ])
    result.byte_chi2;
  Util.Table.add_separator t;
  Util.Table.add_row t
    [
      "C1 invariance under different C";
      Util.Table.cell_float ~digits:1 result.invariance_chi2;
      (if result.invariant then "independent" else "DEPENDENT");
    ];
  t


(* ---- machine-level --------------------------------------------------------- *)

type machine_result = {
  children : int;
  consistent : int;
  distinct_pairs : int;
  c_stable : bool;
  c1_byte0_chi2 : float;
  c1_uniform : bool;
}

let run_machine ?(children = 2000) ?(seed = 0x7E02L) () =
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
      (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size:16))
  in
  let kernel = Os.Kernel.create ~seed () in
  let server = Os.Kernel.spawn kernel ~preload:Os.Preload.Pssp_wide image in
  Os.Kernel.enqueue kernel server;
  Os.Kernel.schedule kernel;
  (match Os.Kernel.stop_of server with
  | Os.Kernel.Stop_accept -> ()
  | other -> failwith ("Theorem1.run_machine: " ^ Os.Kernel.stop_to_string other));
  let fs_base = Vm64.Layout.tls_base in
  let c = Pssp.Tls.canary server.Os.Process.mem ~fs_base in
  let seen_c0 = Hashtbl.create 1024 in
  let consistent = ref 0 in
  let c_stable = ref true in
  let byte0 = Array.make 256 0 in
  for _ = 1 to children do
    Os.Kernel.deliver_request kernel server (Bytes.of_string "ping");
    Os.Kernel.schedule kernel;
    Os.Kernel.reap_zombies kernel server;
    (match Os.Kernel.stop_of server with
    | Os.Kernel.Stop_accept -> ()
    | other -> failwith ("Theorem1.run_machine: " ^ Os.Kernel.stop_to_string other));
    match Os.Kernel.last_reaped kernel with
    | Some child ->
      let pair = Pssp.Tls.shadow_pair child.Os.Process.mem ~fs_base in
      if Pssp.Canary.checks_out ~tls_canary:c pair then incr consistent;
      Hashtbl.replace seen_c0 pair.Pssp.Canary.c0 ();
      if not (Int64.equal (Pssp.Tls.canary child.Os.Process.mem ~fs_base) c) then
        c_stable := false;
      let b = Int64.to_int (Int64.logand pair.Pssp.Canary.c1 0xFFL) in
      byte0.(b) <- byte0.(b) + 1
    | None -> failwith "Theorem1.run_machine: no child"
  done;
  let chi2 = Util.Stats.chi_square_uniform ~observed:byte0 in
  {
    children;
    consistent = !consistent;
    distinct_pairs = Hashtbl.length seen_c0;
    c_stable = !c_stable;
    c1_byte0_chi2 = chi2;
    c1_uniform = chi2 < Util.Stats.chi_square_critical_256_p001;
  }

let machine_table r =
  let t =
    Util.Table.create
      ~title:
        (Printf.sprintf
           "Theorem 1, machine level: TLS shadow pairs of %d real forked children"
           r.children)
      [ "Property"; "Value" ]
  in
  Util.Table.add_row t
    [ "children whose C0 xor C1 = C"; Printf.sprintf "%d / %d" r.consistent r.children ];
  Util.Table.add_row t
    [ "distinct C0 values (re-randomization)"; string_of_int r.distinct_pairs ];
  Util.Table.add_row t
    [ "TLS canary C ever changed"; (if r.c_stable then "never" else "YES (bug)") ];
  Util.Table.add_row t
    [
      "chi-square of exposed C1 low byte";
      Printf.sprintf "%.1f (%s)" r.c1_byte0_chi2
        (if r.c1_uniform then "uniform" else "BIASED");
    ];
  t

(* Cell 0 = the statistical run, cell 1 = the machine-level run; the
   merge step unpacks them positionally. *)
let campaign () =
  Campaign.v ~name:"theorem1"
    ~title:"Theorem 1 - exposed shadow halves carry no information about C"
    ~cells:2
    ~run_cell:(fun i ->
      match i with
      | 0 -> Campaign.pack (run ())
      | _ -> Campaign.pack (run_machine ()))
    ~merge:(fun rows ->
      match rows with
      | [ stat; machine ] ->
        Util.Table.print (to_table (Campaign.unpack stat : result));
        Util.Table.print (machine_table (Campaign.unpack machine : machine_result))
      | _ -> failwith "Theorem1.campaign: expected 2 cells")
    ()
