(** Build-and-measure plumbing shared by every experiment.

    A {!deployment} captures how a program is protected and deployed —
    the axis the paper's evaluation varies: native, compiler-based
    schemes, binary-instrumented P-SSP (dynamic or static), and the
    instrumentation-based baselines with their documented deployment
    taxes (PIN dynamic translation for DynaGuard, rewriting trampolines
    for DCR — see DESIGN.md §4). *)

type deployment =
  | Native
  | Compiler of Pssp.Scheme.t
  | Instr_dynamic  (** SSP binary rewritten to P-SSP + packed preload *)
  | Instr_static  (** statically linked SSP binary rewritten to P-SSP *)
  | Dynaguard_pin  (** DynaGuard under PIN-style dynamic translation *)
  | Dcr_static  (** DCR via static rewriting (trampoline call tax) *)

val deployment_name : deployment -> string

val pin_insn_tax : int
(** Per-instruction dynamic-translation dispatch cost (cycles). *)

val dcr_call_tax : int
(** Per-call/ret trampoline cost of static rewriting (cycles). *)

type built = {
  image : Os.Image.t;
  preload : Os.Preload.mode;
  insn_tax : int;
  call_tax : int;
}

val build : deployment -> Minic.Ast.program -> built
(** Compile (and, for instrumented deployments, rewrite) a program. *)

type run = {
  stop : Os.Kernel.stop;
  cycles : int64;
  output : string;
  mem_bytes : int;
}

val run_built : ?input:bytes -> ?fuel:int -> ?seed:int64 -> built -> run

val run_bench : ?seed:int64 -> deployment -> Workload.Spec.bench -> run
(** Runs a SPEC benchmark to completion; raises [Failure] if it does
    not exit 0. *)

val overhead_pct : native:run -> run -> float

type server_run = {
  avg_request_cycles : float;
  p50_request_cycles : float;
  p99_request_cycles : float;
  server_mem_bytes : int;  (** mapped address space (resident + shared) *)
  server_resident_bytes : int;
      (** pages the server privately owns — summing this over children
          plus the parent's mapped bytes never double-counts pages
          aliased across forks (Table IV honesty) *)
  server_shared_bytes : int;  (** pages aliased with fork children *)
  forks : int;  (** forks the kernel served during the run *)
  failed_requests : int;
  tcache_hits : int;
      (** block lookups served from the server family's translation
          cache over the whole run (children included — the stats record
          is shared across the fork family) *)
  tcache_misses : int;  (** lookups that forced a decode *)
  tcache_compiles : int;  (** closure-tier translations built *)
}

val run_server :
  ?seed:int64 -> deployment -> Workload.Servers.profile -> requests:int -> server_run
(** Drive a forking server through [requests] requests (cycled through
    the profile's request mix) and average the per-request work. *)

(** One {!Net.Loadgen} campaign against one server deployment. *)
type load_run = {
  sent : int;
  completed : int;
  load_failed : int;
  aborted : int;  (** client-side abrupt disconnects *)
  refused : int;  (** connect attempts dropped by the accept backlog *)
  peak_open : int;  (** max simultaneously open connections *)
  virtual_cycles : int64;  (** kernel virtual time consumed by the run *)
  throughput_rps : float;
      (** completed requests per modelled second (via the profile's
          [cycles_per_ms] calibration) *)
  avg_latency_cycles : float;
  p50_latency_cycles : float;
  p99_latency_cycles : float;
  p999_latency_cycles : float;
  saturation_rps : float;
      (** completed requests per modelled second over the busy window
          (first completion to last), i.e. throughput with connect
          ramp-up excluded *)
  load_forks : int;
  server_alive : bool;  (** parent still serving when the load ended *)
}

val run_load :
  ?seed:int64 ->
  ?loadgen_seed:int64 ->
  ?conn_timeout:int64 ->
  ?slow_every:int ->
  ?abort_every:int ->
  deployment ->
  Workload.Servers.profile ->
  mode:Net.Loadgen.mode ->
  connections:int ->
  keepalive:int ->
  total:int ->
  load_run
(** Spawn the server, then pump a seeded {!Net.Loadgen} population of
    [connections] clients (each reusing its connection for [keepalive]
    requests) through [total] requests, interleaving client steps with
    the kernel's ready-queue scheduler and jumping virtual time across
    idle stretches. Deterministic for a given configuration regardless
    of how many pumps run on other domains. Works for every server
    architecture: forking profiles park in accept, event-loop profiles
    in epoll, sharded parents in waitpid — any quiescent block counts
    as ready. *)
