type target = Scheme of Pssp.Scheme.t | Instrumented

let target_name = function
  | Scheme s -> Pssp.Scheme.title s
  | Instrumented -> "P-SSP (binary instrumentation)"

type row = {
  target : target;
  service : string;
  broken : bool;
  trials : int;
  restarts : int;
}

type result = { rows : row list }

let build_target target ~buffer_size =
  let program = Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size) in
  match target with
  | Scheme scheme ->
    let image = Mcc.Driver.compile ~scheme program in
    (image, Mcc.Driver.preload_for scheme, Layouts.compiler_layout scheme ~buffer_size)
  | Instrumented ->
    let ssp = Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp program in
    let image, _ = Rewriter.Driver.instrument ssp in
    ( image,
      Rewriter.Driver.required_preload image,
      Layouts.instrumented_layout ~buffer_size )

(* One tick per finished campaign cell: lets a long effectiveness run
   report progress through --metrics-out / --trace-out without touching
   its stdout. *)
let g_cells = Telemetry.Registry.counter "harness.effectiveness.cells"

let attack_server ?(budget = 20_000) ?(respawn = Attack.Oracle.No_respawn)
    target ~buffer_size =
  let image, preload, layout = build_target target ~buffer_size in
  let oracle = Attack.Oracle.create ~preload ~respawn image in
  match Attack.Byte_by_byte.run oracle ~layout ~max_trials:budget with
  | Attack.Byte_by_byte.Broken { trials; _ } -> (true, trials, 0)
  | Attack.Byte_by_byte.Exhausted { trials; restarts; _ } ->
    (false, trials, restarts)
  | Attack.Byte_by_byte.Oracle_lost { trials; _ } -> (false, trials, 0)

let services = [ ("Nginx (seeded CVE)", 16); ("Ali (seeded CVE)", 32) ]

let default_targets =
  [
    Scheme Pssp.Scheme.Ssp;
    Scheme Pssp.Scheme.Pssp;
    Scheme Pssp.Scheme.Pssp_nt;
    Scheme Pssp.Scheme.Pssp_owf;
  ]
  @ List.map (fun s -> Scheme s) Pssp.Scheme.all_families
  @ [ Instrumented ]

let cells_of targets =
  List.concat_map
    (fun target -> List.map (fun service -> (target, service)) services)
    targets

let run_cell ~budget ~respawn (target, (service, buffer_size)) =
  let broken, trials, restarts =
    attack_server ~budget ~respawn target ~buffer_size
  in
  Telemetry.Registry.incr g_cells;
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.instant "effectiveness.cell"
      ~args:
        [
          ("target", target_name target);
          ("service", service);
          ("outcome", if broken then "broken" else "resisted");
          ("trials", string_of_int trials);
        ];
  { target; service; broken; trials; restarts }

let run ?(jobs = 1) ?(budget = 20_000) ?(respawn = Attack.Oracle.No_respawn)
    ?(targets = default_targets) () =
  { rows = Pool.map ~jobs (run_cell ~budget ~respawn) (cells_of targets) }

let to_table result =
  let t =
    Util.Table.create
      ~title:
        "Effectiveness (SVI-C): byte-by-byte attack against forking servers"
      [ "Protection"; "Service"; "Attack outcome"; "Trials"; "Restarts" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          target_name r.target;
          r.service;
          (if r.broken then "BROKEN (hijack verified)" else "resisted");
          string_of_int r.trials;
          string_of_int r.restarts;
        ])
    result.rows;
  t

let campaign ?(budget = 20_000) ?(respawn = Attack.Oracle.No_respawn)
    ?(targets = default_targets) () =
  let cells = cells_of targets in
  Campaign.v ~name:"effectiveness"
    ~title:"Effectiveness (SVI-C) - byte-by-byte attacks on forking servers"
    ~cells:(List.length cells)
    ~run_cell:(fun i -> Campaign.pack (run_cell ~budget ~respawn (List.nth cells i)))
    ~merge:(fun rows ->
      Util.Table.print
        (to_table { rows = List.map (fun r -> (Campaign.unpack r : row)) rows });
      print_string
        "Paper: the attack succeeds on SSP-compiled Nginx/Ali and fails on the\n\
         P-SSP-compiled versions.\n")
    ()
