(** The §VI-C effectiveness experiment: run the byte-by-byte attack
    against forking servers compiled/instrumented with each scheme. The
    paper attacked Nginx and Ali; we use two server profiles with a
    seeded unbounded-read vulnerability (CVE stand-ins). Expected shape:
    SSP falls in ~10³ trials; P-SSP and every extension hold to the
    budget; the no-nonce OWF ablation falls again. *)

type target =
  | Scheme of Pssp.Scheme.t  (** compiler-based deployment *)
  | Instrumented  (** SSP binary run through the rewriter *)

val target_name : target -> string

type row = {
  target : target;
  service : string;
  broken : bool;
  trials : int;
  restarts : int;
}

type result = { rows : row list }

val run :
  ?jobs:int ->
  ?budget:int ->
  ?respawn:Attack.Oracle.respawn ->
  ?targets:target list ->
  unit ->
  result
(** [budget] defaults to 20_000 trials per cell. Default targets:
    SSP, P-SSP, P-SSP-NT, P-SSP-OWF, instrumented P-SSP. [jobs] fans
    the target x service cells out over a {!Pool} of domains; results
    are identical for every [jobs]. [respawn] (default [No_respawn],
    the historical behaviour) replaces the victim at each attack
    restart — [Zygote] thaws the warm snapshot captured at boot,
    [Cold] boots afresh; the two are observationally identical. *)

val to_table : result -> Util.Table.t

val attack_server :
  ?budget:int ->
  ?respawn:Attack.Oracle.respawn ->
  target ->
  buffer_size:int ->
  bool * int * int
(** [(broken, trials, restarts)] for one campaign — exposed for tests. *)

val campaign :
  ?budget:int ->
  ?respawn:Attack.Oracle.respawn ->
  ?targets:target list ->
  unit ->
  Campaign.t
(** One cell per target x service pair; [targets] defaults to the full
    default target list (the bench driver's [--scheme] narrows it). *)
