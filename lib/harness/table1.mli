(** Table I: comparison of brute-force-attack defences.

    Unlike the paper's Table I (which cites numbers from the respective
    papers), every cell here is {e measured} in the simulator:
    - "BROP prevented": a real byte-by-byte campaign against a forking
      server protected by the scheme;
    - "Correct": the fork-inside-guarded-frame probe (child must exit 7,
      not die of a canary false positive);
    - overheads: SPEC-subset means for the compiler-based deployment and
      the corresponding instrumentation-based deployment (P-SSP: the
      binary rewriter; DynaGuard: PIN-style translation tax; DCR:
      static-rewriting trampoline tax — see DESIGN.md §4). *)

type row = {
  scheme : Pssp.Scheme.t;
  brop_prevented : bool;
  brop_trials : int;  (** trials the attack used (to success or budget) *)
  correct : bool;
  compiler_overhead_pct : float option;  (** None for plain SSP (baseline) *)
  instr_overhead_pct : float option;
}

type result = { rows : row list }

val run :
  ?jobs:int -> ?brop_budget:int -> ?benches:Workload.Spec.bench list -> unit -> result
(** [brop_budget] defaults to 6000 trials (SSP falls around ~1300).
    [benches] defaults to a 8-program subset balancing hot and cold
    canary paths. [jobs] fans the per-scheme campaigns out over a
    {!Pool} of domains; results are identical for every [jobs]. *)

val to_table : result -> Util.Table.t

val campaign : unit -> Campaign.t
(** One cell per scheme (default budget and benchmark subset). *)
