(** The ordered registry of bench campaigns: fig5, table1, table2,
    table3, table4, table5, effectiveness, loadbench, compat, theorem1,
    exposure, ablation — the historical experiment order.

    Campaigns are constructed from a {!config} (built after CLI
    parsing), so flag-dependent campaigns — effectiveness's budget and
    respawn mode, loadbench's traffic shape — capture the parsed
    values; the rest ignore it. *)

type config = {
  budget : int option;
      (** [--budget]: trials per effectiveness cell (default 20_000) /
          requests per loadbench cell (default 512) *)
  connections : int;  (** loadbench concurrent client population *)
  keepalive : int;  (** loadbench requests per connection *)
  load_mode : Net.Loadgen.mode;
  load_archs : Loadbench.arch list;
  respawn : Attack.Oracle.respawn;
      (** [--zygote]: victim respawn mode for effectiveness *)
  schemes : Pssp.Scheme.t list;
      (** [--scheme] (repeatable): narrow the effectiveness targets to
          these schemes; [[]] keeps the full default list *)
}

val default_config : config
(** The historical flag defaults. *)

val all : config -> Campaign.t list
val find : config -> string -> Campaign.t option
val names : config -> string list
