(** Attack-layout knowledge: what the paper's adversary model grants the
    attacker (binary + address layout, §III-A), derived from the actual
    frame layout rules of the compiler. *)

val guard_words : Pssp.Scheme.t -> int
(** Canary words above the locals for a compiler-based deployment. *)

val attack_layout :
  guard_words:int -> buffer_size:int -> Attack.Payload.layout
(** Layout for a victim whose vulnerable function owns a single
    [char\[buffer_size\]] (8-aligned) as its only array local. *)

val compiler_layout :
  Pssp.Scheme.t -> buffer_size:int -> Attack.Payload.layout

val instrumented_layout : buffer_size:int -> Attack.Payload.layout
(** Instrumented binaries keep the single-word SSP slot (§V-C). *)
