(** Declarative argv specs shared by the bench driver and [pssp_cli].

    One {!spec} per flag — name, arity, parser, help line — replaces the
    hand-rolled match ladders the two binaries used to duplicate.
    {!parse} folds flags out of an argv slice and returns the remaining
    positionals; every parse failure surfaces as a message (and a
    non-zero exit through {!parse_or_exit}), never a silent fallthrough.
    The error-message strings are part of the surface: tests pin the
    historical bench wording. *)

type action =
  | Set of (unit -> unit)  (** flag without argument *)
  | Arg of (string -> (unit, string) result)  (** flag with one argument *)

type spec = { name : string; docv : string; doc : string; action : action }

val flag : name:string -> doc:string -> (unit -> unit) -> spec
val value :
  name:string -> docv:string -> doc:string -> (string -> (unit, string) result) -> spec

val nonneg_int : name:string -> docv:string -> doc:string -> (int -> unit) -> spec
(** Rejects with ["NAME expects a non-negative integer, got X"]. *)

val pos_int : name:string -> docv:string -> doc:string -> (int -> unit) -> spec
(** Rejects with ["NAME expects a positive integer, got X"]. *)

val on_off : name:string -> doc:string -> (bool -> unit) -> spec
(** Rejects with ["NAME expects on or off, got X"]. *)

val tier_value : name:string -> doc:string -> (int -> unit) -> spec
(** Execution-tier selector: accepts [off|0] (interpreter), [1]
    (per-block closures), [2] (chained/fused), [3] (register caching),
    and the legacy alias [on] (= 3, the highest tier). Rejects with
    ["NAME expects off, 1, 2, 3 or on, got X"]. *)

val string_value : name:string -> docv:string -> doc:string -> (string -> unit) -> spec

val scheme_value : name:string -> doc:string -> (Pssp.Scheme.t -> unit) -> spec
(** Protection-scheme selector via {!Pssp.Scheme.of_name}. Rejects with
    {!unknown_scheme}'s message. *)

val unknown_scheme : string -> string
(** ["unknown scheme \"X\" (have: none ssp ... wasm-ssp)"] — the pinned
    rejection message for scheme selector flags. *)

val expects : name:string -> what:string -> string -> string
(** ["NAME expects WHAT, got X"] — the shared rejection-message shape,
    for custom {!value} parsers. *)

val missing_arg : string -> string
(** ["NAME expects an argument"] — the message {!parse} produces when a
    value flag ends the argv. *)

type parsed =
  | Positionals of string list  (** non-flag arguments, in order *)
  | Help  (** [--help]/[-h] seen *)
  | Bad of string  (** parse failure message *)

val parse : spec list -> string list -> parsed
(** Arguments matching no spec pass through as positionals (the bench
    driver rejects unknown experiment names itself, preserving its
    historical error text). *)

val usage : prog:string -> ?positional:string -> spec list -> string
(** Generated help text over the specs. *)

val parse_or_exit : prog:string -> ?positional:string -> spec list -> string list -> string list
(** {!parse}, then: [Bad] prints the message to stderr and exits 1;
    [Help] prints {!usage} and exits 0. *)

(** {2 Telemetry flags}

    The [--metrics-out] / [--trace-out] / [--profile top=N] trio, shared
    verbatim by both binaries. *)

type telemetry_opts = {
  mutable metrics_out : string option;
  mutable trace_out : string option;
  mutable profile_top : int option;
}

val telemetry_opts : unit -> telemetry_opts
val telemetry_specs : telemetry_opts -> spec list

val parse_profile_top : string -> (int, string) result
(** Parses ["top=N"], [N > 0] — exposed for [pssp_cli]'s cmdliner
    converter. *)

val telemetry_start : telemetry_opts -> unit
(** Install the trace sink and enable the profiler as requested. Call
    before the workload runs. *)

val telemetry_finish : ?resolve:(int64 -> string option) -> telemetry_opts -> unit
(** Write the metrics snapshot, print the profile report (symbolised
    through [?resolve]), and close the trace sink. Call once after the
    workload. *)
