let guard_words scheme = Pssp.Scheme.stack_words scheme

let attack_layout ~guard_words ~buffer_size =
  {
    Attack.Payload.overflow_distance = (buffer_size + 7) / 8 * 8;
    canary_len = 8 * guard_words;
  }

let compiler_layout scheme ~buffer_size =
  attack_layout ~guard_words:(guard_words scheme) ~buffer_size

let instrumented_layout ~buffer_size = attack_layout ~guard_words:1 ~buffer_size
