type row = { scheme : Pssp.Scheme.t; leak_bytes : string; hijacked : bool }

type result = { rows : row list }

let leak_distance = Workload.Vuln.leaky_overflow_distance

let le_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

(* Forge the canary region for the victim frame from the leaked region of
   the leaking frame, scheme by scheme. *)
let forge scheme leaked =
  match (scheme : Pssp.Scheme.t) with
  | Pssp.Scheme.Pssp | Pssp.Scheme.Pssp_nt ->
    (* ascending memory: C1 (at rbp-16) then C0 (at rbp-8) *)
    let c1 = Bytes.get_int64_le leaked 0 in
    let c0 = Bytes.get_int64_le leaked 8 in
    let c = Int64.logxor c0 c1 in
    (* any fresh pair XORing to C passes the victim's epilogue *)
    let c0' = 0x1122334455667788L in
    let c1' = Int64.logxor c0' c in
    Bytes.cat (le_bytes c1') (le_bytes c0')
  | Pssp.Scheme.Pssp_owf | Pssp.Scheme.Pssp_owf_weak ->
    (* replay the leaked (ciphertext, nonce) verbatim; it is bound to the
       leaking frame's return address, so it should NOT transfer *)
    Bytes.copy leaked
  | Pssp.Scheme.Ssp | Pssp.Scheme.Raf_ssp | Pssp.Scheme.Dynaguard
  | Pssp.Scheme.Dcr | Pssp.Scheme.Pssp_lv _ | Pssp.Scheme.Pssp_gb
  | Pssp.Scheme.Wasm_ssp ->
    (* single word (or chain replay): the leak is the forgery *)
    Bytes.copy leaked
  | Pssp.Scheme.Pac_canary ->
    (* replay the leaked signed canary verbatim; the MAC binds it to the
       leaking frame's address, so it transfers only between frames at
       the same address (the classic PAC replay caveat) *)
    Bytes.copy leaked
  | Pssp.Scheme.None_ | Pssp.Scheme.Shadow_compact
  | Pssp.Scheme.Shadow_parallel ->
    (* nothing on the frame to leak or forge *)
    Bytes.create 0

let attack_with_leak scheme =
  let program = Minic.Parser.parse Workload.Vuln.leaky_server in
  let image = Mcc.Driver.compile ~scheme program in
  let oracle =
    Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image
  in
  let canary_len = 8 * Pssp.Scheme.stack_words scheme in
  (* step 1: trigger the disclosure *)
  let leaked_region =
    match Attack.Oracle.query oracle (Bytes.of_string "L") with
    | Attack.Oracle.Survived out ->
      if String.length out < leak_distance + canary_len then
        failwith "Exposure: leak output too short";
      Bytes.of_string (String.sub out leak_distance canary_len)
    | _ -> failwith "Exposure: leak request crashed"
  in
  (* step 2: forge and fire at the other handler (first payload byte is
     consumed as the command byte) *)
  let layout =
    { Attack.Payload.overflow_distance = leak_distance; canary_len }
  in
  let payload =
    Bytes.cat (Bytes.of_string "X")
      (Attack.Payload.hijack layout ~canary:(forge scheme leaked_region))
  in
  let hijacked = Attack.Payload.hijacked (Attack.Oracle.query oracle payload) in
  (hijacked, Util.Hex.of_bytes leaked_region)

let run ?(schemes = [ Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_nt; Pssp.Scheme.Pssp_owf ])
    () =
  {
    rows =
      List.map
        (fun scheme ->
          let hijacked, leak_bytes = attack_with_leak scheme in
          { scheme; leak_bytes; hijacked })
        schemes;
  }

let to_table result =
  let t =
    Util.Table.create
      ~title:
        "Exposure resilience (SIV-C): leak one frame's canary, forge another \
         frame's"
      [ "Scheme"; "Leaked canary region"; "Cross-frame forgery" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          Pssp.Scheme.title r.scheme;
          r.leak_bytes;
          (if r.hijacked then "SUCCEEDS (hijack)" else "fails (detected)");
        ])
    result.rows;
  t

let default_schemes = [ Pssp.Scheme.Pssp; Pssp.Scheme.Pssp_nt; Pssp.Scheme.Pssp_owf ]

let campaign () =
  Campaign.v ~name:"exposure"
    ~title:"Exposure resilience (SIV-C) - leak one frame, forge another"
    ~cells:(List.length default_schemes)
    ~run_cell:(fun i ->
      let scheme = List.nth default_schemes i in
      let hijacked, leak_bytes = attack_with_leak scheme in
      Campaign.pack { scheme; leak_bytes; hijacked })
    ~merge:(fun rows ->
      Util.Table.print
        (to_table { rows = List.map (fun r -> (Campaign.unpack r : row)) rows }))
    ()
