type row = {
  service : string;
  native_ms : float;
  compiler_ms : float;
  instr_ms : float;
  native_mem_mb : float;
  compiler_mem_mb : float;
  instr_mem_mb : float;
}

type result = { rows : row list }

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let measure profile ~requests =
  let per_deployment d =
    Runner.run_server d profile ~requests
  in
  let native = per_deployment Runner.Native in
  let compiler = per_deployment (Runner.Compiler Pssp.Scheme.Pssp) in
  let instr = per_deployment Runner.Instr_dynamic in
  let to_ms (r : Runner.server_run) =
    r.Runner.avg_request_cycles /. profile.Workload.Servers.cycles_per_ms
  in
  {
    service = profile.Workload.Servers.profile_name;
    native_ms = to_ms native;
    compiler_ms = to_ms compiler;
    instr_ms = to_ms instr;
    native_mem_mb = mb native.Runner.server_mem_bytes;
    compiler_mem_mb = mb compiler.Runner.server_mem_bytes;
    instr_mem_mb = mb instr.Runner.server_mem_bytes;
  }

let run_web ?(requests = 300) () =
  { rows = List.map (measure ~requests) Workload.Servers.web }

let run_db ?(requests = 200) () =
  { rows = List.map (measure ~requests) Workload.Servers.db }

let to_table3 result =
  let t =
    Util.Table.create
      ~title:
        "Table III: P-SSP's performance impact on web servers (average time \
         per request, ms)"
      [ "Service"; "Native execution"; "Compiler based P-SSP"; "Instrumentation based P-SSP" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          r.service;
          Util.Table.cell_float ~digits:3 r.native_ms;
          Util.Table.cell_float ~digits:3 r.compiler_ms;
          Util.Table.cell_float ~digits:3 r.instr_ms;
        ])
    result.rows;
  t

let to_table4 result =
  let t =
    Util.Table.create
      ~title:"Table IV: P-SSP's performance impact on database servers"
      [
        "Service";
        "Native query (ms)"; "Native mem (MB)";
        "Compiler query (ms)"; "Compiler mem (MB)";
        "Instr query (ms)"; "Instr mem (MB)";
      ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          r.service;
          Util.Table.cell_float ~digits:2 r.native_ms;
          Util.Table.cell_float ~digits:2 r.native_mem_mb;
          Util.Table.cell_float ~digits:2 r.compiler_ms;
          Util.Table.cell_float ~digits:2 r.compiler_mem_mb;
          Util.Table.cell_float ~digits:2 r.instr_ms;
          Util.Table.cell_float ~digits:2 r.instr_mem_mb;
        ])
    result.rows;
  t


type latency_row = {
  lat_service : string;
  deployment : string;
  p50_ms : float;
  p99_ms : float;
}

let run_latency ?(requests = 200) () =
  List.concat_map
    (fun profile ->
      List.map
        (fun (label, deployment) ->
          let r = Runner.run_server deployment profile ~requests in
          {
            lat_service = profile.Workload.Servers.profile_name;
            deployment = label;
            p50_ms =
              r.Runner.p50_request_cycles /. profile.Workload.Servers.cycles_per_ms;
            p99_ms =
              r.Runner.p99_request_cycles /. profile.Workload.Servers.cycles_per_ms;
          })
        [ ("native", Runner.Native); ("P-SSP", Runner.Compiler Pssp.Scheme.Pssp) ])
    (Workload.Servers.web @ Workload.Servers.db)

let latency_table rows =
  let t =
    Util.Table.create
      ~title:
        "Latency distribution (extension): per-request percentiles, native vs compiler P-SSP"
      [ "Service"; "Deployment"; "p50 (ms)"; "p99 (ms)" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          r.lat_service;
          r.deployment;
          Util.Table.cell_float ~digits:3 r.p50_ms;
          Util.Table.cell_float ~digits:3 r.p99_ms;
        ])
    rows;
  t

(* ---- campaigns ---------------------------------------------------------- *)

let campaign3 () =
  let profiles = Workload.Servers.web in
  Campaign.v ~name:"table3"
    ~title:"Table III - web server response time (ms per request)"
    ~cells:(List.length profiles)
    ~run_cell:(fun i -> Campaign.pack (measure ~requests:300 (List.nth profiles i)))
    ~merge:(fun rows ->
      Util.Table.print
        (to_table3 { rows = List.map (fun r -> (Campaign.unpack r : row)) rows });
      print_string
        "Paper: Apache2 33.006/33.008/33.099; Nginx 3.088/3.090/3.088.\n")
    ()

(* Table IV interleaves two cell kinds: the per-service db rows first,
   then the latency-percentile extension's service x deployment cells. *)
type t4_cell = Db of row | Lat of latency_row

let latency_cell ~requests profile (label, deployment) =
  let r = Runner.run_server deployment profile ~requests in
  {
    lat_service = profile.Workload.Servers.profile_name;
    deployment = label;
    p50_ms = r.Runner.p50_request_cycles /. profile.Workload.Servers.cycles_per_ms;
    p99_ms = r.Runner.p99_request_cycles /. profile.Workload.Servers.cycles_per_ms;
  }

let latency_deployments =
  [ ("native", Runner.Native); ("P-SSP", Runner.Compiler Pssp.Scheme.Pssp) ]

let campaign4 () =
  let dbs = Workload.Servers.db in
  let lat_cells =
    List.concat_map
      (fun profile -> List.map (fun d -> (profile, d)) latency_deployments)
      (Workload.Servers.web @ Workload.Servers.db)
  in
  let n_db = List.length dbs in
  Campaign.v ~name:"table4"
    ~title:"Table IV - database server query time and memory"
    ~cells:(n_db + List.length lat_cells)
    ~run_cell:(fun i ->
      if i < n_db then Campaign.pack (Db (measure ~requests:200 (List.nth dbs i)))
      else
        let profile, d = List.nth lat_cells (i - n_db) in
        Campaign.pack (Lat (latency_cell ~requests:200 profile d)))
    ~merge:(fun rows ->
      let cells = List.map (fun r -> (Campaign.unpack r : t4_cell)) rows in
      let db_rows = List.filter_map (function Db r -> Some r | Lat _ -> None) cells in
      let lat_rows = List.filter_map (function Lat r -> Some r | Db _ -> None) cells in
      Util.Table.print (to_table4 { rows = db_rows });
      print_string
        "Paper: MySQL 3.33 ms & 22.59 MB in all three columns; SQLite\n\
         167.27/167.27/167 ms. The invariance across columns is the result.\n";
      Util.Table.print (latency_table lat_rows))
    ()
