(** First-class campaign execution: every bench experiment is a fixed
    number of deterministic {e cells} plus a {e merge} step that
    renders the stdout body from the cells' rows.

    Cells are self-contained (the {!Pool} contract: each builds its own
    kernel and PRNG state from fixed seeds), so any partition of the
    cell set — across domains ([jobs]) or across shards — produces the
    same rows. Rendering happens only in [merge], from the full ordered
    row list, which makes serial output byte-identical to any shard
    count by construction. *)

type t = {
  name : string;  (** CLI/Benchfile name, e.g. ["fig5"] *)
  title : string;  (** section heading printed before the body *)
  context : string;
      (** config fingerprint line printed after the heading (and
          recorded in shard files, where merging checks agreement);
          [""] when the campaign takes no configuration *)
  cells : int;  (** number of cells; cell indices are [0 .. cells-1] *)
  run_cell : int -> string;  (** marshalled row of one cell *)
  merge : string list -> unit;
      (** print the campaign body from the rows in cell order *)
}

val v :
  ?context:string ->
  name:string ->
  title:string ->
  cells:int ->
  run_cell:(int -> string) ->
  merge:(string list -> unit) ->
  unit ->
  t

val pack : 'a -> string
(** [Marshal] a row for transport across shard boundaries. Rows must be
    plain data (no closures). *)

val unpack : string -> 'a
(** Inverse of {!pack}. As with [Marshal.from_string], the result type
    is up to the caller — campaigns unpack only rows they packed. *)

val section : string -> unit
(** Print the underlined section heading (shared with the driver's
    non-campaign sections). *)

val shard_cells : t -> shards:int -> shard:int -> int list
(** Cell indices owned by [shard] of [shards]: [i mod shards = shard]. *)

val run_shard : ?jobs:int -> shards:int -> shard:int -> t -> (int * string) list
(** Compute one shard's [(cell index, row)] pairs over a {!Pool} of
    [jobs] domains. No output, no registry reset — the caller brackets
    the run with [Telemetry.Registry.reset_all]/[snapshot] to obtain
    the shard's additive metrics. *)

val render : ?context:string -> t -> (int * string) list -> unit
(** Print heading, context line, and body from the union of per-shard
    row lists (any order; must form a contiguous [0..n-1] index range —
    raises [Failure] otherwise). [?context] overrides [t.context] when
    rendering rows read back from shard files. *)

val run : ?jobs:int -> ?shards:int -> t -> (string * int) list
(** Run the whole campaign in-process as [shards] sequential passes
    (default 1) and render it; returns the merged registry snapshot.
    Each pass is bracketed by [reset_all]/[snapshot], so the returned
    metrics equal a serial run's snapshot for every shard count. *)
