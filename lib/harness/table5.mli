(** Table V: average CPU cycles spent by the canary code in the function
    prologue and epilogue, per scheme (paper: P-SSP 6, P-SSP-NT 343,
    P-SSP-LV 343/986, P-SSP-OWF 278).

    Measured as the per-call cycle delta between a protected and an
    unprotected build of a guarded leaf function called in a tight loop.
    Following the paper's counting, "P-SSP-LV with n variables" denotes
    a frame carrying n canaries, i.e. n-1 [rdrand] draws (§VI-B). *)

type row = {
  label : string;
  scheme : Pssp.Scheme.t;
  cycles : float;  (** prologue+epilogue canary cycles per call *)
}

type result = { rows : row list }

val run : ?jobs:int -> ?calls:int -> unit -> result
(** [calls] defaults to 20_000. [jobs] fans the per-scheme measurements
    out over a {!Pool} of domains; results are identical for every
    [jobs]. *)

val to_table : result -> Util.Table.t

val measure_scheme : ?calls:int -> Pssp.Scheme.t -> criticals:int -> float
(** Exposed for tests: per-call canary cost of a scheme on a frame with
    the given number of [critical] variables. *)

val campaign : unit -> Campaign.t
(** One cell per scheme row (default 20_000 calls). *)
