(** Compatibility experiments (§VI-C): P-SSP and SSP code must coexist
    in one control flow with no false positives, and the instrumented
    [__stack_chk_fail] must stay safe for plain SSP callers. *)

type scenario = {
  scenario_name : string;
  expected : string;
  passed : bool;
  detail : string;
}

type result = { scenarios : scenario list }

val run : unit -> result
val to_table : result -> Util.Table.t
val all_passed : result -> bool

val campaign : unit -> Campaign.t
(** One cell per compatibility scenario. *)
