(* Loadbench: concurrent keep-alive traffic against the server
   profiles, across server architectures and deployments. Lived in
   bench/main.ml before the Campaign API; the knobs arrive through the
   campaign constructor so the driver stays a table-driven dispatcher. *)

type arch = Fork | Event | Reuseport

let arch_profile arch profile =
  match arch with
  | Fork -> profile
  | Event -> Workload.Servers.event_loop profile
  | Reuseport -> Workload.Servers.sharded profile

let mode_name = function
  | Net.Loadgen.Closed -> "closed"
  | Net.Loadgen.Open { interarrival } -> Printf.sprintf "open/%Ld" interarrival

(* One cell = one profile x arch x deployment combination; the row
   carries only what the LOADBENCH line prints (the profile record
   itself holds no closures, but the names are all the merge needs). *)
type row = {
  row_profile : string;
  row_deployment : string;
  row_run : Runner.load_run;
}

let cells_of ~archs =
  List.concat_map
    (fun base ->
      List.concat_map
        (fun arch ->
          let profile = arch_profile arch base in
          [ (profile, Runner.Native); (profile, Runner.Compiler Pssp.Scheme.Pssp) ])
        archs)
    [ Workload.Servers.apache2; Workload.Servers.nginx ]

let print_row r =
  let lr = r.row_run in
  Printf.printf
    "LOADBENCH %s/%s: sent=%d ok=%d failed=%d aborted=%d refused=%d \
     peak_open=%d forks=%d lat_p50=%.0f lat_p99=%.0f lat_p999=%.0f \
     cycles=%Ld rps=%.1f sat_rps=%.1f alive=%s\n"
    r.row_profile r.row_deployment lr.Runner.sent lr.Runner.completed
    lr.Runner.load_failed lr.Runner.aborted lr.Runner.refused
    lr.Runner.peak_open lr.Runner.load_forks lr.Runner.p50_latency_cycles
    lr.Runner.p99_latency_cycles lr.Runner.p999_latency_cycles
    lr.Runner.virtual_cycles lr.Runner.throughput_rps lr.Runner.saturation_rps
    (if lr.Runner.server_alive then "yes" else "no")

let campaign ~mode ~connections ~keepalive ~archs ~total () =
  let cells = cells_of ~archs in
  Campaign.v ~name:"loadbench"
    ~title:"Loadbench - concurrent keep-alive traffic (lib/net scheduler)"
    ~context:
      (Printf.sprintf "mode=%s connections=%d keepalive=%d requests-per-cell=%d"
         (mode_name mode) connections keepalive total)
    ~cells:(List.length cells)
    ~run_cell:(fun i ->
      let (profile : Workload.Servers.profile), deployment = List.nth cells i in
      let r =
        Runner.run_load deployment profile ~mode ~connections ~keepalive ~total
          ~slow_every:17 ~abort_every:97
      in
      Campaign.pack
        {
          row_profile = profile.Workload.Servers.profile_name;
          row_deployment = Runner.deployment_name deployment;
          row_run = r;
        })
    ~merge:(fun rows -> List.iter (fun r -> print_row (Campaign.unpack r)) rows)
    ()
