(** Table II: code expansion by deployment (paper: 0.27% compiler, 0
    dynamic instrumentation, 2.78% static instrumentation).

    Expansion is measured against the default (SSP-compiled) binary of
    each benchmark, which is what the paper's "native code size compiled
    with the default options" means on a distribution with SSP on by
    default. *)

type row = {
  bench : string;
  ssp_bytes : int;
  compiler_pct : float;  (** P-SSP-compiled vs SSP-compiled *)
  instr_dynamic_pct : float;  (** rewritten dynamic binary (must be 0) *)
  instr_static_pct : float;  (** rewritten static binary *)
}

type result = {
  rows : row list;
  compiler_avg : float;
  instr_dynamic_avg : float;
  instr_static_avg : float;
}

val run : ?jobs:int -> ?benches:Workload.Spec.bench list -> unit -> result
(** [jobs] fans the per-benchmark builds out over a {!Pool} of domains;
    results are identical for every [jobs]. *)

val to_table : result -> Util.Table.t

val campaign : unit -> Campaign.t
(** One cell per benchmark of the full suite. *)
