(** Stack-canary exposure resilience (§IV-C / §III drawback 3).

    A memory-disclosure bug in one function ([leak_info]) hands the
    attacker that frame's canary region; the attacker then forges a
    canary for a {e different} function ([process_input]) and fires a
    hijack. Under P-SSP/P-SSP-NT the leak reveals C = C0 xor C1, so the
    forgery succeeds; under P-SSP-OWF the leaked value is a MAC bound to
    the leaking frame's return address and transfers nowhere. *)

type row = {
  scheme : Pssp.Scheme.t;
  leak_bytes : string;  (** hex of the leaked canary region *)
  hijacked : bool;  (** forged canary worked in the other frame *)
}

type result = { rows : row list }

val run : ?schemes:Pssp.Scheme.t list -> unit -> result
(** Defaults to [Pssp; Pssp_nt; Pssp_owf]. *)

val to_table : result -> Util.Table.t

val attack_with_leak : Pssp.Scheme.t -> bool * string
(** [(hijacked, leaked_hex)] — exposed for tests. *)

val campaign : unit -> Campaign.t
(** One cell per default scheme. *)
