(** Empirical check of Theorem 1: observing the exposed halves
    {m C_1^i} of fresh shadow pairs gives no information about the TLS
    canary C.

    Two statistical tests over many re-randomizations of a fixed C:
    - per-byte uniformity of C1 (chi-square against uniform, 256 bins);
    - invariance: the C1 distribution is the same under two different
      values of C (chi-square two-sample on byte 0). *)

type result = {
  samples : int;
  byte_chi2 : float array;  (** 8 per-byte chi-square statistics *)
  critical : float;  (** rejection threshold (df=255, p=0.001) *)
  uniform : bool;  (** all bytes below critical *)
  invariance_chi2 : float;
  invariant : bool;
}

val run : ?samples:int -> ?seed:int64 -> unit -> result
(** [samples] defaults to 100_000. *)

val to_table : result -> Util.Table.t

(** Machine-level variant: drive a real P-SSP fork server and read each
    child's TLS shadow pair out of its simulated memory — the theorem's
    exact setting (n forks, attacker observes the C1 halves). *)
type machine_result = {
  children : int;
  consistent : int;  (** children whose pair XORs to C *)
  distinct_pairs : int;  (** distinct C0 values observed *)
  c_stable : bool;  (** the TLS canary itself never changed *)
  c1_byte0_chi2 : float;  (** uniformity of the exposed half's low byte *)
  c1_uniform : bool;
}

val run_machine : ?children:int -> ?seed:int64 -> unit -> machine_result
(** [children] defaults to 2000. *)

val machine_table : machine_result -> Util.Table.t

val campaign : unit -> Campaign.t
(** Two cells: the statistical run and the machine-level run. *)
