type row = {
  bench : string;
  suite : [ `Int | `Fp ];
  native_cycles : int64;
  compiler_pct : float;
  instr_pct : float;
}

type result = {
  rows : row list;
  compiler_avg : float;
  instr_avg : float;
}

let measure bench =
  let native = Runner.run_bench Runner.Native bench in
  let compiler = Runner.run_bench (Runner.Compiler Pssp.Scheme.Pssp) bench in
  let instr = Runner.run_bench Runner.Instr_dynamic bench in
  {
    bench = bench.Workload.Spec.bench_name;
    suite = bench.Workload.Spec.suite;
    native_cycles = native.Runner.cycles;
    compiler_pct = Runner.overhead_pct ~native compiler;
    instr_pct = Runner.overhead_pct ~native instr;
  }

let of_rows rows =
  let avg f = Util.Stats.mean (Array.of_list (List.map f rows)) in
  {
    rows;
    compiler_avg = avg (fun r -> r.compiler_pct);
    instr_avg = avg (fun r -> r.instr_pct);
  }

let run ?(jobs = 1) ?(benches = Workload.Spec.all) () =
  of_rows (Pool.map ~jobs measure benches)

let to_table result =
  let t =
    Util.Table.create
      ~title:
        "Figure 5: Runtime overhead of P-SSP against native executions \
         (SPEC CPU2006-like suite)"
      [ "Benchmark"; "Suite"; "Native cycles"; "Compiler P-SSP"; "Instr. P-SSP" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          r.bench;
          (match r.suite with `Int -> "int" | `Fp -> "fp");
          Int64.to_string r.native_cycles;
          Util.Table.cell_pct r.compiler_pct;
          Util.Table.cell_pct r.instr_pct;
        ])
    result.rows;
  Util.Table.add_separator t;
  Util.Table.add_row t
    [
      "average";
      "";
      "";
      Util.Table.cell_pct result.compiler_avg;
      Util.Table.cell_pct result.instr_avg;
    ];
  t


let to_chart ?(width = 44) result =
  let max_pct =
    List.fold_left
      (fun acc r -> Stdlib.max acc (Stdlib.max r.compiler_pct r.instr_pct))
      0.5 result.rows
  in
  let bar pct =
    let n =
      int_of_float (Float.round (Stdlib.max 0.0 pct /. max_pct *. float_of_int width))
    in
    String.make n '#'
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 5: runtime overhead vs native (C = compiler P-SSP, I = instrumented)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-11s C %6.2f%% |%s\n" r.bench r.compiler_pct
           (bar r.compiler_pct));
      Buffer.add_string buf
        (Printf.sprintf "%-11s I %6.2f%% |%s\n" "" r.instr_pct (bar r.instr_pct)))
    result.rows;
  Buffer.add_string buf
    (Printf.sprintf "%-11s C %6.2f%%  I %6.2f%%  (paper: 0.24%% / 1.01%%)\n"
       "average" result.compiler_avg result.instr_avg);
  Buffer.contents buf

let campaign () =
  let benches = Workload.Spec.all in
  Campaign.v ~name:"fig5"
    ~title:"Figure 5 - runtime overhead vs native (28-program SPEC-like suite)"
    ~cells:(List.length benches)
    ~run_cell:(fun i -> Campaign.pack (measure (List.nth benches i)))
    ~merge:(fun rows ->
      let result = of_rows (List.map (fun r -> (Campaign.unpack r : row)) rows) in
      Util.Table.print (to_table result);
      print_newline ();
      print_string (to_chart result);
      Printf.printf
        "Paper: compiler-based 0.24%% avg, instrumentation-based 1.01%% avg.\n\
         Measured: compiler %.2f%%, instrumentation %.2f%%.\n"
        result.compiler_avg result.instr_avg)
    ()
