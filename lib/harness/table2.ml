type row = {
  bench : string;
  ssp_bytes : int;
  compiler_pct : float;
  instr_dynamic_pct : float;
  instr_static_pct : float;
}

type result = {
  rows : row list;
  compiler_avg : float;
  instr_dynamic_avg : float;
  instr_static_avg : float;
}

let expansion ~baseline ~measured =
  Util.Stats.overhead_pct ~baseline:(float_of_int baseline)
    ~measured:(float_of_int measured)

let measure bench =
  let program = Workload.Spec.parse bench in
  let ssp = Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp program in
  let pssp = Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp program in
  let instr_dyn, _ = Rewriter.Driver.instrument ssp in
  let ssp_static =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp ~linkage:Os.Image.Static program
  in
  let instr_static, _ = Rewriter.Driver.instrument ssp_static in
  let ssp_bytes = Os.Image.code_size ssp in
  {
    bench = bench.Workload.Spec.bench_name;
    ssp_bytes;
    compiler_pct = expansion ~baseline:ssp_bytes ~measured:(Os.Image.code_size pssp);
    instr_dynamic_pct =
      expansion ~baseline:ssp_bytes ~measured:(Os.Image.code_size instr_dyn);
    instr_static_pct =
      expansion
        ~baseline:(Os.Image.code_size ssp_static)
        ~measured:(Os.Image.code_size instr_static);
  }

let of_rows rows =
  let avg f = Util.Stats.mean (Array.of_list (List.map f rows)) in
  {
    rows;
    compiler_avg = avg (fun r -> r.compiler_pct);
    instr_dynamic_avg = avg (fun r -> r.instr_dynamic_pct);
    instr_static_avg = avg (fun r -> r.instr_static_pct);
  }

let run ?(jobs = 1) ?(benches = Workload.Spec.all) () =
  of_rows (Pool.map ~jobs measure benches)

let to_table result =
  let t =
    Util.Table.create
      ~title:"Table II: Code expansion rate by P-SSP implementation"
      [
        "Benchmark"; "SSP bytes"; "Compilation";
        "Instrumentation (dynamic link)"; "Instrumentation (static link)";
      ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          r.bench;
          string_of_int r.ssp_bytes;
          Util.Table.cell_pct r.compiler_pct;
          Util.Table.cell_pct r.instr_dynamic_pct;
          Util.Table.cell_pct r.instr_static_pct;
        ])
    result.rows;
  Util.Table.add_separator t;
  Util.Table.add_row t
    [
      "average";
      "";
      Util.Table.cell_pct result.compiler_avg;
      Util.Table.cell_pct result.instr_dynamic_avg;
      Util.Table.cell_pct result.instr_static_avg;
    ];
  t

let campaign () =
  let benches = Workload.Spec.all in
  Campaign.v ~name:"table2" ~title:"Table II - code expansion"
    ~cells:(List.length benches)
    ~run_cell:(fun i -> Campaign.pack (measure (List.nth benches i)))
    ~merge:(fun rows ->
      let result = of_rows (List.map (fun r -> (Campaign.unpack r : row)) rows) in
      Util.Table.print (to_table result);
      print_string
        "Paper: 0.27% compiler / 0 dynamic / 2.78% static (on multi-MB glibc\n\
         binaries; our binaries are a few KB, so fixed-size additions weigh\n\
         proportionally more - the ordering and the exact 0 are the result).\n")
    ()
