(* Shared argv handling for the bench driver and pssp_cli's hand-rolled
   corners: one declarative spec per flag (name, arity, parser, help
   line) instead of two divergent match ladders. Error messages are
   pinned by test_telemetry — the bench driver's historical strings
   ("--jobs expects a non-negative integer, got x") are the contract. *)

type action =
  | Set of (unit -> unit)  (* flag, no argument *)
  | Arg of (string -> (unit, string) result)  (* flag VALUE *)

type spec = { name : string; docv : string; doc : string; action : action }

let flag ~name ~doc f = { name; docv = ""; doc; action = Set f }
let value ~name ~docv ~doc parse = { name; docv; doc; action = Arg parse }

(* [expects] pins the shared error-message shape. *)
let expects ~name ~what got = Printf.sprintf "%s expects %s, got %s" name what got
let missing_arg name = Printf.sprintf "%s expects an argument" name

let int_value ~name ~docv ~doc ~what ~ok set =
  value ~name ~docv ~doc (fun s ->
      match int_of_string_opt s with
      | Some v when ok v -> set v; Ok ()
      | _ -> Error (expects ~name ~what s))

let nonneg_int ~name ~docv ~doc set =
  int_value ~name ~docv ~doc ~what:"a non-negative integer" ~ok:(fun v -> v >= 0) set

let pos_int ~name ~docv ~doc set =
  int_value ~name ~docv ~doc ~what:"a positive integer" ~ok:(fun v -> v > 0) set

let on_off ~name ~doc set =
  value ~name ~docv:"on|off" ~doc (fun s ->
      match s with
      | "on" -> set true; Ok ()
      | "off" -> set false; Ok ()
      | _ -> Error (expects ~name ~what:"on or off" s))

(* Compile-tier selector: numeric tiers plus the historical on/off
   aliases ("on" = the highest tier, "off" = interpreter), so scripts
   written against the PR 3 boolean flag keep working. *)
let tier_value ~name ~doc set =
  value ~name ~docv:"off|1|2|3|on" ~doc (fun s ->
      match s with
      | "off" | "0" -> set 0; Ok ()
      | "1" -> set 1; Ok ()
      | "2" -> set 2; Ok ()
      | "3" | "on" -> set 3; Ok ()
      | _ -> Error (expects ~name ~what:"off, 1, 2, 3 or on" s))

let string_value ~name ~docv ~doc set =
  value ~name ~docv ~doc (fun s -> set s; Ok ())

(* The scheme names a selector flag advertises: the paper schemes, the
   extensions, and the defense families — every [Scheme.of_name]-able
   spelling except the open-ended pssp-lvN family, which the two
   listed widths stand in for. *)
let known_scheme_names =
  List.map Pssp.Scheme.name
    (Pssp.Scheme.all_basic @ Pssp.Scheme.all_extensions
    @ [ Pssp.Scheme.Pssp_owf_weak; Pssp.Scheme.Pssp_gb ]
    @ Pssp.Scheme.all_families)

let unknown_scheme s =
  Printf.sprintf "unknown scheme %S (have: %s)" s
    (String.concat " " known_scheme_names)

let scheme_value ~name ~doc set =
  value ~name ~docv:"SCHEME" ~doc (fun s ->
      match Pssp.Scheme.of_name s with
      | Some scheme -> set scheme; Ok ()
      | None -> Error (unknown_scheme s))

type parsed = Positionals of string list | Help | Bad of string

let parse specs args =
  let rec go acc = function
    | [] -> Positionals (List.rev acc)
    | ("--help" | "-h" | "-help") :: _ -> Help
    | a :: rest -> (
      match List.find_opt (fun s -> String.equal s.name a) specs with
      | None -> go (a :: acc) rest  (* positional; unknowns rejected by caller *)
      | Some { action = Set f; _ } -> f (); go acc rest
      | Some { name; action = Arg _; _ } when rest = [] -> Bad (missing_arg name)
      | Some { action = Arg p; _ } -> (
        match p (List.hd rest) with
        | Ok () -> go acc (List.tl rest)
        | Error msg -> Bad msg))
  in
  go [] args

let usage ~prog ?(positional = "") specs =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "Usage: %s [OPTIONS]%s\nOptions:\n" prog
       (if positional = "" then "" else " " ^ positional));
  List.iter
    (fun s ->
      let lhs =
        if s.docv = "" then s.name else Printf.sprintf "%s %s" s.name s.docv
      in
      let lines = String.split_on_char '\n' s.doc in
      Buffer.add_string b (Printf.sprintf "  %-22s %s\n" lhs (List.hd lines));
      List.iter
        (fun l -> Buffer.add_string b (Printf.sprintf "  %-22s %s\n" "" l))
        (List.tl lines))
    specs;
  Buffer.contents b

let parse_or_exit ~prog ?positional specs args =
  match parse specs args with
  | Positionals p -> p
  | Help ->
    print_string (usage ~prog ?positional specs);
    exit 0
  | Bad msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

(* ---- the telemetry flag trio, shared verbatim by both binaries ---- *)

type telemetry_opts = {
  mutable metrics_out : string option;
  mutable trace_out : string option;
  mutable profile_top : int option;
}

let telemetry_opts () = { metrics_out = None; trace_out = None; profile_top = None }

let parse_profile_top s =
  match String.index_opt s '=' with
  | Some i when String.sub s 0 i = "top" -> (
    let v = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt v with
    | Some n when n > 0 -> Ok n
    | _ -> Error (expects ~name:"--profile" ~what:"top=N with N positive" s))
  | _ -> Error (expects ~name:"--profile" ~what:"top=N with N positive" s)

let telemetry_specs opts =
  [
    string_value ~name:"--metrics-out" ~docv:"FILE"
      ~doc:"write the final registry snapshot as schema-2 metrics JSON"
      (fun f -> opts.metrics_out <- Some f);
    string_value ~name:"--trace-out" ~docv:"FILE"
      ~doc:"stream trace spans (JSONL, one object per line) to FILE"
      (fun f -> opts.trace_out <- Some f);
    value ~name:"--profile" ~docv:"top=N"
      ~doc:"cycle-attributed VM profile; print the N hottest blocks/symbols"
      (fun s ->
        match parse_profile_top s with
        | Ok n ->
          opts.profile_top <- Some n;
          Ok ()
        | Error e -> Error e);
  ]

let telemetry_start opts =
  (match opts.trace_out with
  | Some file -> Telemetry.Trace.set_sink (Some (Telemetry.Trace.file_sink file))
  | None -> ());
  if opts.profile_top <> None then begin
    Telemetry.Profile.reset ();
    Telemetry.Profile.set_enabled true
  end

let telemetry_finish ?resolve opts =
  (match opts.metrics_out with
  | Some file -> Util.Benchfile.write_metrics file (Telemetry.Registry.snapshot ())
  | None -> ());
  (match opts.profile_top with
  | Some top ->
    print_string (Telemetry.Profile.report ?resolve ~top ());
    Telemetry.Profile.set_enabled false
  | None -> ());
  Telemetry.Trace.close ()
