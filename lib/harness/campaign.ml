(* First-class campaign descriptor: every experiment the bench driver
   can run is a fixed number of deterministic, self-contained cells
   plus a merge step that renders the historical stdout body from the
   cells' marshalled rows.

   The two invariants the whole shard design rests on:
   - cells are self-contained (each builds its own kernel/rng from
     fixed seeds — the {!Pool} contract), so a cell's row does not
     depend on which shard or domain computed it;
   - rendering happens only in [merge], from the ordered row list, so
     a serial run IS the 1-shard run and byte-identity between shard
     counts is structural rather than something each campaign must
     re-establish. *)

type t = {
  name : string;  (* CLI name, e.g. "fig5" *)
  title : string;  (* section heading the driver prints *)
  context : string;  (* config fingerprint line; "" = none *)
  cells : int;
  run_cell : int -> string;  (* marshalled row for cell i *)
  merge : string list -> unit;  (* print the body from rows in cell order *)
}

let v ?(context = "") ~name ~title ~cells ~run_cell ~merge () =
  { name; title; context; cells; run_cell; merge }

(* Rows cross shard boundaries (and shard files) as marshalled
   strings; cells pack plain data records only, never closures. *)
let pack v = Marshal.to_string v []
let unpack s = Marshal.from_string s 0

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Shard k of n owns the cells with index = k (mod n): contiguous
   campaigns (e.g. per-benchmark cells sorted hot-to-cold) spread
   evenly instead of one shard inheriting a hot prefix. *)
let shard_cells t ~shards ~shard =
  List.filter (fun i -> i mod shards = shard) (List.init t.cells Fun.id)

let run_shard ?(jobs = 1) ~shards ~shard t =
  if shards < 1 then invalid_arg "Campaign.run_shard: shards must be >= 1";
  if shard < 0 || shard >= shards then
    invalid_arg "Campaign.run_shard: shard index out of range";
  Pool.map ~jobs (fun i -> (i, t.run_cell i)) (shard_cells t ~shards ~shard)

let render ?context t rows =
  let context = Option.value context ~default:t.context in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iteri
    (fun k (i, _) ->
      if i <> k then
        failwith
          (Printf.sprintf "Campaign.render: %s rows not contiguous (cell %d %s)"
             t.name k
             (if i > k then "missing" else "duplicated")))
    rows;
  section t.title;
  if not (String.equal context "") then print_string (context ^ "\n");
  t.merge (List.map snd rows)

(* In-process run across [shards] sequential passes: each pass resets
   the registry, computes its cells, and snapshots; row lists
   concatenate and snapshots merge (every registry backing is additive
   over disjoint work partitions). [shards = 1] is the plain serial
   run — the same code path, so output is byte-identical for every
   shard count by construction. Returns the merged metrics snapshot
   for the perf trajectory record. *)
let run ?(jobs = 1) ?(shards = 1) t =
  let per_shard =
    List.init shards (fun s ->
        Telemetry.Registry.reset_all ();
        let rows = run_shard ~jobs ~shards ~shard:s t in
        (rows, Telemetry.Registry.snapshot ()))
  in
  let rows = List.concat_map fst per_shard in
  let metrics = Telemetry.Registry.merge (List.map snd per_shard) in
  render t rows;
  metrics
