(** A small [Domain] pool for fanning measurement campaigns out across
    cores.

    Every task must be self-contained — each harness task builds its own
    [Os.Kernel] (and therefore its own CPU, memory, and PRNG state) from
    a fixed seed, so a task's result does not depend on which domain ran
    it or in what order. [map] then stores results by input index, which
    makes the output deterministic: [map ~jobs:n f xs] returns exactly
    [List.map f xs] for every [n], and the rendered tables are
    byte-identical between serial and parallel runs. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] using [jobs]
    domains (the calling domain counts as one). [jobs <= 1], an empty
    list, or a singleton falls back to plain [List.map]. If any
    application raises, the exception from the lowest-index element is
    re-raised in the caller after all domains join. *)

val default_jobs : unit -> int
(** Number of cores visible to the runtime
    ([Domain.recommended_domain_count]), the natural [--jobs] value. *)
