type row = {
  scheme : Pssp.Scheme.t;
  brop_prevented : bool;
  brop_trials : int;
  correct : bool;
  compiler_overhead_pct : float option;
  instr_overhead_pct : float option;
}

type result = { rows : row list }

let default_benches =
  List.filter_map Workload.Spec.find
    [ "perlbench"; "gobmk"; "sjeng"; "omnetpp"; "povray"; "mcf"; "hmmer"; "lbm" ]

let buffer_size = 16

(* A real byte-by-byte campaign against a fork server under the scheme. *)
let brop_campaign scheme ~budget =
  let image =
    Mcc.Driver.compile ~scheme
      (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size))
  in
  let oracle = Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image in
  let layout = Layouts.compiler_layout scheme ~buffer_size in
  match Attack.Byte_by_byte.run oracle ~layout ~max_trials:budget with
  | Attack.Byte_by_byte.Broken { trials; _ } -> (false, trials)
  | Attack.Byte_by_byte.Exhausted { trials; _ } -> (true, trials)
  | Attack.Byte_by_byte.Oracle_lost { trials; _ } -> (true, trials)

(* Fork inside a guarded frame; the child returns through it. *)
let correctness_probe scheme =
  let image =
    Mcc.Driver.compile ~scheme (Minic.Parser.parse Workload.Vuln.raf_correctness_probe)
  in
  let kernel = Os.Kernel.create () in
  let parent = Os.Kernel.spawn kernel ~preload:(Mcc.Driver.preload_for scheme) image in
  Os.Kernel.enqueue kernel parent;
  Os.Kernel.schedule kernel;
  match Os.Kernel.stop_of parent with
  | Os.Kernel.Stop_exit 0 -> (
    match Os.Kernel.last_reaped kernel with
    | Some child -> child.Os.Process.status = Os.Process.Exited 7
    | None -> false)
  | _ -> false

let mean_overhead benches deployment =
  let pcts =
    List.map
      (fun bench ->
        let native = Runner.run_bench Runner.Native bench in
        Runner.overhead_pct ~native (Runner.run_bench deployment bench))
      benches
  in
  Util.Stats.mean (Array.of_list pcts)

let instr_deployment_for (scheme : Pssp.Scheme.t) =
  match scheme with
  | Pssp.Scheme.Pssp -> Some Runner.Instr_dynamic
  | Dynaguard -> Some Runner.Dynaguard_pin
  | Dcr -> Some Runner.Dcr_static
  | Ssp | Raf_ssp | None_ | Pssp_nt | Pssp_lv _ | Pssp_owf | Pssp_owf_weak
  | Pssp_gb | Shadow_compact | Shadow_parallel | Pac_canary | Wasm_ssp ->
    None

(* The paper's Table I set, extended with the beyond-the-paper defense
   families so every row exists for every scheme head-to-head. *)
let schemes =
  [
    Pssp.Scheme.Ssp;
    Pssp.Scheme.Raf_ssp;
    Pssp.Scheme.Dynaguard;
    Pssp.Scheme.Dcr;
    Pssp.Scheme.Pssp;
  ]
  @ Pssp.Scheme.all_families

let measure_row ~brop_budget ~benches scheme =
  let brop_prevented, brop_trials = brop_campaign scheme ~budget:brop_budget in
  let correct = correctness_probe scheme in
  let compiler_overhead_pct =
    match scheme with
    | Pssp.Scheme.Ssp -> None (* the baseline everything compares to *)
    | _ -> Some (mean_overhead benches (Runner.Compiler scheme))
  in
  let instr_overhead_pct =
    Option.map (mean_overhead benches) (instr_deployment_for scheme)
  in
  { scheme; brop_prevented; brop_trials; correct; compiler_overhead_pct;
    instr_overhead_pct }

let run ?(jobs = 1) ?(brop_budget = 6000) ?(benches = default_benches) () =
  { rows = Pool.map ~jobs (measure_row ~brop_budget ~benches) schemes }

let to_table result =
  let t =
    Util.Table.create
      ~title:"Table I: Comparison of brute force attack defence tools (measured)"
      [
        "Defence"; "BROP prevented"; "(trials)"; "Correct";
        "Compiler overhead"; "Instrumentation overhead";
      ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          Pssp.Scheme.title r.scheme;
          (if r.brop_prevented then "Yes" else "No");
          string_of_int r.brop_trials;
          (if r.correct then "Yes" else "No");
          (match r.compiler_overhead_pct with
          | Some v -> Util.Table.cell_pct v
          | None -> "-");
          (match r.instr_overhead_pct with
          | Some v -> Util.Table.cell_pct v
          | None -> "-");
        ])
    result.rows;
  t

let campaign () =
  Campaign.v ~name:"table1"
    ~title:"Table I - brute-force defence comparison (all cells measured)"
    ~cells:(List.length schemes)
    ~run_cell:(fun i ->
      Campaign.pack
        (measure_row ~brop_budget:6000 ~benches:default_benches
           (List.nth schemes i)))
    ~merge:(fun rows ->
      Util.Table.print
        (to_table { rows = List.map (fun r -> (Campaign.unpack r : row)) rows });
      print_string
        "Paper: SSP no-BROP-prevention; RAF incorrect; DynaGuard 1.5%/156%;\n\
         DCR NA/>24%; P-SSP prevents BROP, correct, lightest overheads.\n")
    ()
