type scenario = {
  scenario_name : string;
  expected : string;
  passed : bool;
  detail : string;
}

type result = { scenarios : scenario list }

let run_image ?(input = Bytes.create 0) image preload =
  let kernel = Os.Kernel.create () in
  let proc = Os.Kernel.spawn kernel ~input ~preload image in
  Os.Kernel.enqueue kernel proc;
  Os.Kernel.schedule kernel;
  (kernel, Os.Kernel.stop_of proc)

(* P-SSP child returns through frames created before fork: the defining
   compatibility property (the §III caveat). *)
let pssp_fork_return () =
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
      (Minic.Parser.parse Workload.Vuln.raf_correctness_probe)
  in
  let kernel, stop = run_image image Os.Preload.Pssp_wide in
  let child_ok =
    match Os.Kernel.last_reaped kernel with
    | Some child -> child.Os.Process.status = Os.Process.Exited 7
    | None -> false
  in
  {
    scenario_name = "P-SSP child returns into inherited (pre-fork) frames";
    expected = "no false positive; child exits 7";
    passed = stop = Os.Kernel.Stop_exit 0 && child_ok;
    detail = Os.Kernel.stop_to_string stop;
  }

(* SSP binary running under the P-SSP preload (mixed deployment). *)
let ssp_under_pssp_preload () =
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp
      (Minic.Parser.parse (Workload.Vuln.echo_once ~buffer_size:16))
  in
  let _, stop = run_image ~input:(Bytes.of_string "ok") image Os.Preload.Pssp_wide in
  {
    scenario_name = "SSP binary under the P-SSP preload library";
    expected = "runs normally";
    passed = stop = Os.Kernel.Stop_exit 0;
    detail = Os.Kernel.stop_to_string stop;
  }

(* SSP binary + the instrumented (overriding) __stack_chk_fail: a real
   smash must still abort (the final compatibility argument of §V-C). *)
let ssp_smash_with_override () =
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp
      (Minic.Parser.parse (Workload.Vuln.echo_once ~buffer_size:16))
  in
  let _, stop =
    run_image ~input:(Bytes.make 40 'A') image Os.Preload.Pssp_packed
  in
  let aborted =
    match stop with
    | Os.Kernel.Stop_kill (Os.Process.Sigabrt, _) -> true
    | _ -> false
  in
  {
    scenario_name =
      "SSP epilogue detects a smash and calls the overridden __stack_chk_fail";
    expected = "still aborts (rdi fails the packed check)";
    passed = aborted;
    detail = Os.Kernel.stop_to_string stop;
  }

(* P-SSP binary making heavy use of the SSP-era C library. *)
let pssp_calls_ssp_library () =
  let bench = Option.get (Workload.Spec.find "perlbench") in
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp (Workload.Spec.parse bench)
  in
  let _, stop = run_image image Os.Preload.Pssp_wide in
  {
    scenario_name = "P-SSP program against the stock (SSP-era) C library";
    expected = "runs normally";
    passed = stop = Os.Kernel.Stop_exit 0;
    detail = Os.Kernel.stop_to_string stop;
  }

(* Instrumented (packed) server forking across many requests. *)
let instrumented_fork_stability () =
  let ssp =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp
      (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size:16))
  in
  let image, _ = Rewriter.Driver.instrument ssp in
  let oracle =
    Attack.Oracle.create ~preload:(Rewriter.Driver.required_preload image) image
  in
  let ok = ref true in
  for i = 0 to 49 do
    match Attack.Oracle.query oracle (Bytes.of_string (Printf.sprintf "r%d" i)) with
    | Attack.Oracle.Survived _ -> ()
    | _ -> ok := false
  done;
  {
    scenario_name = "Instrumented P-SSP fork server across 50 benign requests";
    expected = "every child exits cleanly";
    passed = !ok && Attack.Oracle.server_alive oracle;
    detail = Printf.sprintf "%d queries" (Attack.Oracle.queries oracle);
  }

(* The SVI-C mixed-compilation experiment, in one binary: "library"
   functions compiled with SSP, "application" functions with P-SSP (and
   the reverse), calling through each other across a fork. *)
let mixed_source =
  {|
int lib_copy(char *dst, char *src) {
  char tmp[16];
  strcpy(tmp, src);
  strcpy(dst, tmp);
  return strlen(dst);
}

int app_handle(int round) {
  char buf[16];
  int n = lib_copy(buf, "payload");
  return n + round;
}

int app_fork_step() {
  char pad[16];
  int pid;
  pad[0] = 'x';
  pid = fork();
  if (pid == 0) {
    exit(app_handle(1));
  }
  waitpid();
  return app_handle(2) + pad[0];
}

int main() {
  int total = 0;
  int i;
  for (i = 0; i < 5; i++) {
    total += app_fork_step();
  }
  exit(total & 127);
}
|}

let mixed_schemes ~app ~lib ~label =
  let overrides = [ ("lib_copy", lib); ("app_handle", app); ("app_fork_step", app) ] in
  let image =
    Mcc.Driver.compile ~scheme:app ~scheme_overrides:overrides
      (Minic.Parser.parse mixed_source)
  in
  let preload =
    (* the preload serves whichever side needs the shadow *)
    if Pssp.Scheme.equal app Pssp.Scheme.Pssp || Pssp.Scheme.equal lib Pssp.Scheme.Pssp
    then Os.Preload.Pssp_wide
    else Os.Preload.No_preload
  in
  let kernel, stop = run_image image preload in
  ignore kernel;
  let ok = match stop with Os.Kernel.Stop_exit _ -> true | _ -> false in
  {
    scenario_name = label;
    expected = "runs across forks with no false positives";
    passed = ok;
    detail = Os.Kernel.stop_to_string stop;
  }

let scenario_cells =
  [
    pssp_fork_return;
    ssp_under_pssp_preload;
    ssp_smash_with_override;
    pssp_calls_ssp_library;
    instrumented_fork_stability;
    (fun () ->
      mixed_schemes ~app:Pssp.Scheme.Pssp ~lib:Pssp.Scheme.Ssp
        ~label:"one binary: P-SSP app functions calling SSP library functions");
    (fun () ->
      mixed_schemes ~app:Pssp.Scheme.Ssp ~lib:Pssp.Scheme.Pssp
        ~label:"one binary: SSP app functions calling P-SSP library functions");
  ]

let run () = { scenarios = List.map (fun f -> f ()) scenario_cells }

let to_table result =
  let t =
    Util.Table.create
      ~title:"Compatibility between P-SSP and SSP (SVI-C)"
      [ "Scenario"; "Expected"; "Result"; "Detail" ]
  in
  List.iter
    (fun s ->
      Util.Table.add_row t
        [
          s.scenario_name;
          s.expected;
          (if s.passed then "PASS" else "FAIL");
          s.detail;
        ])
    result.scenarios;
  t

let all_passed result = List.for_all (fun s -> s.passed) result.scenarios

let campaign () =
  Campaign.v ~name:"compat"
    ~title:"Compatibility (SVI-C) - P-SSP and SSP in one control flow"
    ~cells:(List.length scenario_cells)
    ~run_cell:(fun i -> Campaign.pack ((List.nth scenario_cells i) ()))
    ~merge:(fun rows ->
      Util.Table.print
        (to_table
           { scenarios = List.map (fun r -> (Campaign.unpack r : scenario)) rows }))
    ()
