(* ---- 1. the nonce ablation -------------------------------------------- *)

type nonce_row = { nonce_scheme : Pssp.Scheme.t; broken : bool; trials : int }

(* OWF canaries are return-address-bound, so the campaign verifies with
   a stealth (rbp-only) corruption instead of a ret hijack. *)
let nonce_schemes = [ Pssp.Scheme.Pssp_owf; Pssp.Scheme.Pssp_owf_weak ]

let nonce_cell ~budget scheme =
  let buffer_size = 16 in
  let program = Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size) in
  let image = Mcc.Driver.compile ~scheme program in
  let oracle =
    Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image
  in
  let layout = Layouts.compiler_layout scheme ~buffer_size in
  let broken, trials =
    match
      Attack.Byte_by_byte.run ~verify:Attack.Byte_by_byte.Stealth oracle
        ~layout ~max_trials:budget
    with
    | Attack.Byte_by_byte.Broken { trials; _ } -> (true, trials)
    | Attack.Byte_by_byte.Exhausted { trials; _ }
    | Attack.Byte_by_byte.Oracle_lost { trials; _ } -> (false, trials)
  in
  { nonce_scheme = scheme; broken; trials }

let run_nonce ?(budget = 30_000) () = List.map (nonce_cell ~budget) nonce_schemes

let nonce_table rows =
  let t =
    Util.Table.create
      ~title:"Ablation: the rdtsc nonce in P-SSP-OWF (SIV-C caveat)"
      [ "Variant"; "Byte-by-byte outcome"; "Trials" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          Pssp.Scheme.title r.nonce_scheme;
          (if r.broken then "BROKEN" else "resisted");
          string_of_int r.trials;
        ])
    rows;
  t

(* ---- 2. canary width, model level -------------------------------------- *)

type width_row = {
  bits : int;
  fixed_trials : int;
  rerand_trials : int;
  rerand_expected : float;
}

(* Byte-by-byte against a canary that stays fixed across "forks"
   (SSP-with-narrow-canary model). *)
let fixed_campaign rng ~bits =
  let nbytes = bits / 8 in
  let canary = Array.init nbytes (fun _ -> Util.Prng.byte rng) in
  let trials = ref 0 in
  Array.iteri
    (fun _i target ->
      (* scan guesses in random order, as a stealthy attacker would *)
      let order = Array.init 256 (fun g -> g) in
      Util.Prng.shuffle rng order;
      let rec scan k =
        incr trials;
        if order.(k) <> target then scan (k + 1)
      in
      scan 0)
    canary;
  !trials

(* Exhaustive guessing against a canary re-randomized on every trial
   (P-SSP model): success only when the whole guess matches. *)
let rerand_campaign rng ~bits ~cap =
  let mask = Int64.sub (Int64.shift_left 1L bits) 1L in
  let rec go trials =
    if trials >= cap then trials
    else begin
      let canary = Int64.logand (Util.Prng.next64 rng) mask in
      let guess = Int64.logand (Util.Prng.next64 rng) mask in
      if Int64.equal canary guess then trials + 1 else go (trials + 1)
    end
  in
  go 0

let run_width ?(widths = [ 8; 12; 16 ]) ?(seed = 0x31D7L) () =
  let rng = Util.Prng.create seed in
  List.map
    (fun bits ->
      let fixed_trials =
        if bits mod 8 = 0 then fixed_campaign rng ~bits else 0
      in
      let expected = 2.0 ** float_of_int (bits - 1) in
      let cap = int_of_float (expected *. 16.0) in
      { bits; fixed_trials; rerand_trials = rerand_campaign rng ~bits ~cap;
        rerand_expected = expected })
    widths

let width_table rows =
  let t =
    Util.Table.create
      ~title:
        "Ablation: canary width vs attack cost (model level; SV-C caveat). \
         Fixed = byte-by-byte vs a fork-constant canary; re-randomized = \
         exhaustive search, expectation 2^(w-1)."
      [ "Width (bits)"; "Fixed canary trials"; "Re-randomized trials"; "2^(w-1)" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          string_of_int r.bits;
          (if r.fixed_trials = 0 then "n/a" else string_of_int r.fixed_trials);
          string_of_int r.rerand_trials;
          Util.Table.cell_float ~digits:0 r.rerand_expected;
        ])
    rows;
  t

(* ---- 3. the global-buffer alternative (SVII-C) ------------------------- *)

type buffer_row = { depth : int; forks : int; checks : int; all_passed : bool }

(* Simulate a process: a call stack of frames whose C0 halves live "on the
   stack" and C1 halves in the global buffer; fork clones both; children
   unwind through inherited frames. *)
let simulate rng ~depth ~forks =
  let tls_canary = Util.Prng.next64 rng in
  let checks = ref 0 in
  let failures = ref 0 in
  let unwind buffer stack =
    List.iter
      (fun c0 ->
        incr checks;
        if not (Pssp.Global_buffer.check_and_pop buffer ~tls_canary ~stack_c0:c0)
        then incr failures)
      stack
  in
  (* parent builds [depth] frames *)
  let parent_buffer = Pssp.Global_buffer.create () in
  let parent_stack = ref [] in
  for _ = 1 to depth do
    let c0 = Pssp.Global_buffer.push_frame parent_buffer rng ~tls_canary in
    parent_stack := c0 :: !parent_stack
  done;
  (* each fork clones the buffer (and inherits the stack), pushes its own
     frames, then unwinds through everything including inherited frames *)
  for _ = 1 to forks do
    let child_buffer = Pssp.Global_buffer.clone parent_buffer in
    let child_stack = ref !parent_stack in
    for _ = 1 to depth do
      let c0 = Pssp.Global_buffer.push_frame child_buffer rng ~tls_canary in
      child_stack := c0 :: !child_stack
    done;
    unwind child_buffer !child_stack
  done;
  unwind parent_buffer !parent_stack;
  (!checks, !failures = 0)

let run_global_buffer ?(seed = 0x6B0FL) () =
  let rng = Util.Prng.create seed in
  List.map
    (fun (depth, forks) ->
      let checks, all_passed = simulate rng ~depth ~forks in
      { depth; forks; checks; all_passed })
    [ (4, 1); (16, 8); (64, 32) ]

let buffer_table rows =
  let t =
    Util.Table.create
      ~title:
        "Ablation: SVII-C global-buffer variant (full 64-bit pairs, SSP \
         stack layout) across fork trees"
      [ "Stack depth"; "Forks"; "Epilogue checks"; "False positives" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          string_of_int r.depth;
          string_of_int r.forks;
          string_of_int r.checks;
          (if r.all_passed then "none" else "SOME");
        ])
    rows;
  t


(* ---- 3b. the global-buffer variant as compiled code --------------------- *)

type gb_compiled = {
  gb_broken : bool;
  gb_trials : int;
  gb_guard_words : int;
  gb_cycles_per_call : float;
}

let run_global_buffer_compiled ?(budget = 12_000) () =
  let buffer_size = 16 in
  let program = Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size) in
  let image = Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp_gb program in
  let oracle = Attack.Oracle.create image in
  let layout = Layouts.compiler_layout Pssp.Scheme.Pssp_gb ~buffer_size in
  let gb_broken, gb_trials =
    match Attack.Byte_by_byte.run oracle ~layout ~max_trials:budget with
    | Attack.Byte_by_byte.Broken { trials; _ } -> (true, trials)
    | Attack.Byte_by_byte.Exhausted { trials; _ }
    | Attack.Byte_by_byte.Oracle_lost { trials; _ } -> (false, trials)
  in
  let handle =
    Option.get (Minic.Ast.find_func program "handle")
  in
  let frame = Mcc.Frame.layout ~scheme:Pssp.Scheme.Pssp_gb handle in
  {
    gb_broken;
    gb_trials;
    gb_guard_words = frame.Mcc.Frame.guard_words;
    gb_cycles_per_call = Table5.measure_scheme ~calls:5000 Pssp.Scheme.Pssp_gb ~criticals:0;
  }

let gb_compiled_table r =
  let t =
    Util.Table.create
      ~title:"Ablation: SVII-C global-buffer variant as compiled code"
      [ "Property"; "Value" ]
  in
  Util.Table.add_row t
    [
      "byte-by-byte";
      (if r.gb_broken then Printf.sprintf "BROKEN after %d" r.gb_trials
       else Printf.sprintf "resisted %d trials" r.gb_trials);
    ];
  Util.Table.add_row t
    [ "stack canary words (SSP layout preserved)"; string_of_int r.gb_guard_words ];
  Util.Table.add_row t [ "canary entropy"; "full 64 bits (vs 32 packed)" ];
  Util.Table.add_row t
    [
      "prologue+epilogue cycles per call";
      Util.Table.cell_float ~digits:1 r.gb_cycles_per_call ^ " (rdrand-bound, ~P-SSP-NT)";
    ];
  t

(* ---- 4. the defense families as compiled code --------------------------- *)

type family_row = {
  fam_scheme : Pssp.Scheme.t;
  fam_broken : bool;
  fam_trials : int;
  fam_guard_words : int;
  fam_cycles_per_call : float;
}

(* Same probes as the compiled global-buffer cell, one row per family:
   byte-by-byte outcome, on-frame guard words, prologue+epilogue cycles.
   Expected column: shadow stacks and PAC resist with zero or one guard
   word; wasm-ssp keeps the SSP layout and falls the same way. *)
let family_cell ?(budget = 12_000) scheme =
  let buffer_size = 16 in
  let program = Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size) in
  let image = Mcc.Driver.compile ~scheme program in
  let oracle =
    Attack.Oracle.create ~preload:(Mcc.Driver.preload_for scheme) image
  in
  let layout = Layouts.compiler_layout scheme ~buffer_size in
  let fam_broken, fam_trials =
    match Attack.Byte_by_byte.run oracle ~layout ~max_trials:budget with
    | Attack.Byte_by_byte.Broken { trials; _ } -> (true, trials)
    | Attack.Byte_by_byte.Exhausted { trials; _ }
    | Attack.Byte_by_byte.Oracle_lost { trials; _ } -> (false, trials)
  in
  let handle = Option.get (Minic.Ast.find_func program "handle") in
  let frame = Mcc.Frame.layout ~scheme handle in
  {
    fam_scheme = scheme;
    fam_broken;
    fam_trials;
    fam_guard_words = frame.Mcc.Frame.guard_words;
    fam_cycles_per_call = Table5.measure_scheme ~calls:5000 scheme ~criticals:0;
  }

let family_schemes = Pssp.Scheme.all_families

let run_families ?budget () = List.map (family_cell ?budget) family_schemes

let family_table rows =
  let t =
    Util.Table.create
      ~title:
        "Ablation: defense families (shadow stacks, PAC canary, Wasm SSP) \
         as compiled code"
      [ "Scheme"; "Byte-by-byte"; "Guard words"; "Cycles per call" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          Pssp.Scheme.title r.fam_scheme;
          (if r.fam_broken then Printf.sprintf "BROKEN after %d" r.fam_trials
           else Printf.sprintf "resisted %d trials" r.fam_trials);
          string_of_int r.fam_guard_words;
          Util.Table.cell_float ~digits:1 r.fam_cycles_per_call;
        ])
    rows;
  t

(* ---- the campaign ------------------------------------------------------- *)

(* Nine cells: one per nonce scheme, the width, model-level
   global-buffer, and compiled global-buffer sub-runs, then one per
   defense family. Width/Buffer stay single cells because each threads
   one PRNG through its whole sweep — splitting them would change the
   draw sequence. *)
type cell =
  | Nonce of nonce_row
  | Width of width_row list
  | Buffer of buffer_row list
  | Gb of gb_compiled
  | Family of family_row

let campaign () =
  Campaign.v ~name:"ablation"
    ~title:"Ablations - nonce, canary width, global-buffer, defense families"
    ~cells:(5 + List.length family_schemes)
    ~run_cell:(fun i ->
      Campaign.pack
        (match i with
        | 0 | 1 -> Nonce (nonce_cell ~budget:30_000 (List.nth nonce_schemes i))
        | 2 -> Width (run_width ())
        | 3 -> Buffer (run_global_buffer ())
        | 4 -> Gb (run_global_buffer_compiled ())
        | i -> Family (family_cell (List.nth family_schemes (i - 5)))))
    ~merge:(fun rows ->
      match List.map (fun r -> (Campaign.unpack r : cell)) rows with
      | Nonce n0 :: Nonce n1 :: Width w :: Buffer b :: Gb gb :: families ->
        let families =
          List.map
            (function
              | Family f -> f
              | _ -> failwith "Ablation.campaign: unexpected cell shape")
            families
        in
        Util.Table.print (nonce_table [ n0; n1 ]);
        Util.Table.print (width_table w);
        Util.Table.print (buffer_table b);
        Util.Table.print (gb_compiled_table gb);
        Util.Table.print (family_table families)
      | _ -> failwith "Ablation.campaign: unexpected cell shape")
    ()
