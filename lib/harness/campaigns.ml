(* The one ordered list of campaigns the bench driver dispatches over.
   An explicit list, not side-effect registration: the linker can drop
   a module whose registration call is its only use, and the historical
   experiment order (which the driver's "have: ..." error message and
   the default all-experiments run both expose) is easiest to pin by
   writing it down. Campaigns are built after CLI parsing so the
   constructors can capture the parsed configuration. *)

type config = {
  budget : int option;  (* --budget: effectiveness trials / loadbench requests *)
  connections : int;
  keepalive : int;
  load_mode : Net.Loadgen.mode;
  load_archs : Loadbench.arch list;
  respawn : Attack.Oracle.respawn;  (* --zygote, effectiveness only *)
  schemes : Pssp.Scheme.t list;
      (* --scheme (repeatable): narrow effectiveness to these schemes;
         [] = the full default target list *)
}

let default_config =
  {
    budget = None;
    connections = 64;
    keepalive = 8;
    load_mode = Net.Loadgen.Closed;
    load_archs = [ Loadbench.Fork; Loadbench.Event; Loadbench.Reuseport ];
    respawn = Attack.Oracle.No_respawn;
    schemes = [];
  }

let all config =
  [
    Fig5.campaign ();
    Table1.campaign ();
    Table2.campaign ();
    Table34.campaign3 ();
    Table34.campaign4 ();
    Table5.campaign ();
    Effectiveness.campaign ?budget:config.budget ~respawn:config.respawn
      ?targets:
        (match config.schemes with
        | [] -> None
        | schemes -> Some (List.map (fun s -> Effectiveness.Scheme s) schemes))
      ();
    Loadbench.campaign ~mode:config.load_mode ~connections:config.connections
      ~keepalive:config.keepalive ~archs:config.load_archs
      ~total:(Option.value config.budget ~default:512)
      ();
    Compat.campaign ();
    Theorem1.campaign ();
    Exposure.campaign ();
    Ablation.campaign ();
  ]

let find config name =
  List.find_opt (fun (c : Campaign.t) -> String.equal c.Campaign.name name) (all config)

let names config = List.map (fun (c : Campaign.t) -> c.Campaign.name) (all config)
