let default_jobs () = Domain.recommended_domain_count ()

(* One span per pool task when tracing is on. The untraced paths are
   exactly the pre-telemetry code — campaign output stays byte-identical
   with tracing off, and the serial path stays allocation-free. *)
let traced f i x =
  Telemetry.Trace.with_span "pool.task"
    ~args:[ ("index", string_of_int i) ]
    (fun () -> f x)

let map ?(jobs = 1) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = Stdlib.min jobs n in
  if jobs <= 1 || n <= 1 then
    if not (Telemetry.Trace.enabled ()) then List.map f xs
    else List.mapi (traced f) xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let tracing = Telemetry.Trace.enabled () in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match if tracing then traced f i items.(i) else f items.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end
