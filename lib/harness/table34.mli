(** Tables III and IV: service-level impact of P-SSP on web servers
    (average time per request) and database servers (query execution
    time and memory usage).

    Simulated cycles are converted to the paper's millisecond scale via
    each profile's calibration constant (see
    {!Workload.Servers.profile}), so the native column lands near the
    paper's absolute numbers and the P-SSP columns show the same
    (non-)effect. *)

type row = {
  service : string;
  native_ms : float;
  compiler_ms : float;
  instr_ms : float;
  native_mem_mb : float;
  compiler_mem_mb : float;
  instr_mem_mb : float;
}

type result = { rows : row list }

val run_web : ?requests:int -> unit -> result
(** Table III: Apache2- and Nginx-profile servers; default 300 requests. *)

val run_db : ?requests:int -> unit -> result
(** Table IV: MySQL- and SQLite-profile servers; default 200 requests. *)

val to_table3 : result -> Util.Table.t
val to_table4 : result -> Util.Table.t

type latency_row = {
  lat_service : string;
  deployment : string;
  p50_ms : float;
  p99_ms : float;
}

val run_latency : ?requests:int -> unit -> latency_row list
(** Extension beyond the paper's averages: per-request latency
    percentiles across all four services under native and compiler
    P-SSP. *)

val latency_table : latency_row list -> Util.Table.t

val campaign3 : unit -> Campaign.t
(** Table III: one cell per web profile (300 requests each). *)

val campaign4 : unit -> Campaign.t
(** Table IV: one cell per db profile plus one per service x deployment
    latency-percentile cell (200 requests each). *)
