(** Ablations of the design choices DESIGN.md calls out.

    1. {b Nonce in P-SSP-OWF} (§IV-C caveat): with the nonce pinned to
       zero the canary of a call site is fixed across forks, and the
       byte-by-byte attack works again — run it and watch it win.
    2. {b Canary width} (§V-C caveat): re-randomization degrades the
       attacker to exhaustive search of the full width; model-level
       campaigns at small widths show the 2^(w-1) scaling that makes the
       32-bit downgrade acceptable and byte-wise accumulation (w/8·128)
       catastrophic.
    3. {b Global-buffer alternative} (§VII-C): keeping C1 halves in a
       cloned per-process buffer preserves full 64-bit entropy AND the
       SSP stack layout; the model run checks correctness across fork
       trees. *)

type nonce_row = {
  nonce_scheme : Pssp.Scheme.t;
  broken : bool;
  trials : int;
}

val run_nonce : ?budget:int -> unit -> nonce_row list
(** Byte-by-byte against P-SSP-OWF and its no-nonce variant. *)

val nonce_table : nonce_row list -> Util.Table.t

type width_row = {
  bits : int;
  fixed_trials : int;  (** byte-by-byte vs a fork-constant canary *)
  rerand_trials : int;  (** exhaustive vs a re-randomized canary *)
  rerand_expected : float;  (** theory: 2^(bits-1) *)
}

val run_width : ?widths:int list -> ?seed:int64 -> unit -> width_row list
(** Model-level (no VM) campaigns; widths default to [8; 12; 16]. *)

val width_table : width_row list -> Util.Table.t

type buffer_row = {
  depth : int;
  forks : int;
  checks : int;
  all_passed : bool;
}

val run_global_buffer : ?seed:int64 -> unit -> buffer_row list
val buffer_table : buffer_row list -> Util.Table.t

type gb_compiled = {
  gb_broken : bool;  (** byte-by-byte outcome against the compiled variant *)
  gb_trials : int;
  gb_guard_words : int;  (** stack words — must equal SSP's 1 *)
  gb_cycles_per_call : float;  (** prologue+epilogue cost (rdrand-bound) *)
}

val run_global_buffer_compiled : ?budget:int -> unit -> gb_compiled
(** The SVII-C variant as real generated code: attack it, check the
    layout claim, and measure its per-call cost. *)

val gb_compiled_table : gb_compiled -> Util.Table.t

type family_row = {
  fam_scheme : Pssp.Scheme.t;
  fam_broken : bool;  (** byte-by-byte outcome against the compiled scheme *)
  fam_trials : int;
  fam_guard_words : int;  (** on-frame guard words (0 for shadow stacks) *)
  fam_cycles_per_call : float;  (** prologue+epilogue cost *)
}

val family_cell : ?budget:int -> Pssp.Scheme.t -> family_row
(** One defense-family scheme as real generated code: attack it, record
    its guard layout, and measure its per-call cost. *)

val run_families : ?budget:int -> unit -> family_row list
(** [family_cell] over {!Pssp.Scheme.all_families}. *)

val family_table : family_row list -> Util.Table.t

val campaign : unit -> Campaign.t
(** Nine cells: the two nonce schemes, the width, model-level
    global-buffer, and compiled global-buffer sub-runs (each of which
    threads one PRNG through its sweep, so each stays a single cell),
    then one cell per defense-family scheme. *)
