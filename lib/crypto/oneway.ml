type t = { key : Aes128.key }

let create ~key_lo ~key_hi = { key = Aes128.key_of_int64s key_lo key_hi }

let evaluate t ~ret ~nonce = Aes128.encrypt_int64s t.key nonce ret

let evaluate_no_nonce t ~ret = evaluate t ~ret ~nonce:0L
