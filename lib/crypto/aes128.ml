(* FIPS-197 AES-128, byte-oriented implementation. The state is kept as a
   16-byte block in the standard column-major order: byte i is row (i mod 4),
   column (i / 4) — the same layout the x86 AES-NI instructions use. *)

let sbox = [|
  0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b; 0xfe; 0xd7; 0xab; 0x76;
  0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0; 0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0;
  0xb7; 0xfd; 0x93; 0x26; 0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
  0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2; 0xeb; 0x27; 0xb2; 0x75;
  0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0; 0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84;
  0x53; 0xd1; 0x00; 0xed; 0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
  0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f; 0x50; 0x3c; 0x9f; 0xa8;
  0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5; 0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2;
  0xcd; 0x0c; 0x13; 0xec; 0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
  0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14; 0xde; 0x5e; 0x0b; 0xdb;
  0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c; 0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79;
  0xe7; 0xc8; 0x37; 0x6d; 0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
  0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f; 0x4b; 0xbd; 0x8b; 0x8a;
  0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e; 0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e;
  0xe1; 0xf8; 0x98; 0x11; 0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
  0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f; 0xb0; 0x54; 0xbb; 0x16;
|]

let inv_sbox =
  let inv = Array.make 256 0 in
  Array.iteri (fun i v -> inv.(v) <- i) sbox;
  inv

(* Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1. *)
let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1B) land 0xFF else b2 land 0xFF

let gmul a b =
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      loop (xtime a) (b lsr 1) acc
  in
  loop a b 0

(* ---- word-oriented encrypt path (T-tables) ---------------------------

   The canary schemes call AES_ENCRYPT_128 on every guarded call (the
   OWF variants), so block encryption is one of the hottest host-side
   loops in the whole simulator. The classic T-table formulation folds
   SubBytes + ShiftRows + MixColumns into four 256-entry word tables:
   one round is 16 loads and 16 xors on untagged ints instead of 16
   bit-looped GF multiplies over freshly allocated Bytes. Columns are
   32-bit words in memory order (byte r of the column in bits 8r..8r+7),
   so a state round-trips through int64 halves with plain masks.

   The byte-oriented [aesenc]/[aesenclast]/decrypt code below is kept
   as-is: it is the instruction-level semantics (and the reference the
   tables are checked against in the test suite). *)

(* tab_e.(r).(x): MixColumns of the column that has S[x] at row r and 0
   elsewhere — i.e. (2S | S<<8 | S<<16 | 3S<<24) byte-rotated left r. *)
let tab_e =
  Array.init 4 (fun r ->
      Array.init 256 (fun x ->
          let s = sbox.(x) in
          let col = [| xtime s; s; s; xtime s lxor s |] in
          (* byte i of the rotated column is col[(i - r + 4) mod 4] *)
          col.((4 - r) mod 4)
          lor (col.((5 - r) mod 4) lsl 8)
          lor (col.((6 - r) mod 4) lsl 16)
          lor (col.((7 - r) mod 4) lsl 24)))

let t0e = tab_e.(0)
let t1e = tab_e.(1)
let t2e = tab_e.(2)
let t3e = tab_e.(3)

type key = {
  rk : bytes array;  (* 11 round keys, 16 bytes each (FIPS layout) *)
  kw : int array;  (* the same 44 words, column layout of [tab_e] *)
}

let round_keys k = Array.map Bytes.copy k.rk

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |]

let sub_word w =
  sbox.(w land 0xFF)
  lor (sbox.((w lsr 8) land 0xFF) lsl 8)
  lor (sbox.((w lsr 16) land 0xFF) lsl 16)
  lor (sbox.((w lsr 24) land 0xFF) lsl 24)

(* rotate one memory-order byte left: [b0;b1;b2;b3] -> [b1;b2;b3;b0] *)
let rot_word w = (w lsr 8) lor ((w land 0xFF) lsl 24)

let expand_key key_bytes =
  if Bytes.length key_bytes <> 16 then invalid_arg "Aes128.expand_key: need 16 bytes";
  (* Key schedule over 44 words, each a column in memory order. *)
  let kw = Array.make 44 0 in
  for i = 0 to 3 do
    kw.(i) <- Int32.to_int (Bytes.get_int32_le key_bytes (4 * i)) land 0xFFFFFFFF
  done;
  for i = 4 to 43 do
    let tmp =
      if i mod 4 = 0 then sub_word (rot_word kw.(i - 1)) lxor rcon.((i / 4) - 1)
      else kw.(i - 1)
    in
    kw.(i) <- kw.(i - 4) lxor tmp
  done;
  let rk =
    Array.init 11 (fun r ->
        let b = Bytes.create 16 in
        for c = 0 to 3 do
          Bytes.set_int32_le b (4 * c) (Int32.of_int kw.((4 * r) + c))
        done;
        b)
  in
  { rk; kw }

let key_of_int64s lo hi =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 lo;
  Bytes.set_int64_le b 8 hi;
  expand_key b

let add_round_key state rk =
  let out = Bytes.create 16 in
  for i = 0 to 15 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get state i) lxor Char.code (Bytes.get rk i)))
  done;
  out

let sub_bytes state =
  let out = Bytes.create 16 in
  for i = 0 to 15 do
    Bytes.set out i (Char.chr sbox.(Char.code (Bytes.get state i)))
  done;
  out

let inv_sub_bytes state =
  let out = Bytes.create 16 in
  for i = 0 to 15 do
    Bytes.set out i (Char.chr inv_sbox.(Char.code (Bytes.get state i)))
  done;
  out

(* Byte i sits at row (i mod 4), column (i / 4). ShiftRows rotates row r
   left by r columns. *)
let shift_rows state =
  let out = Bytes.create 16 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      Bytes.set out ((4 * c) + r) (Bytes.get state ((4 * ((c + r) mod 4)) + r))
    done
  done;
  out

let inv_shift_rows state =
  let out = Bytes.create 16 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      Bytes.set out ((4 * ((c + r) mod 4)) + r) (Bytes.get state ((4 * c) + r))
    done
  done;
  out

let mix_column s0 s1 s2 s3 =
  ( gmul s0 2 lxor gmul s1 3 lxor s2 lxor s3,
    s0 lxor gmul s1 2 lxor gmul s2 3 lxor s3,
    s0 lxor s1 lxor gmul s2 2 lxor gmul s3 3,
    gmul s0 3 lxor s1 lxor s2 lxor gmul s3 2 )

let inv_mix_column s0 s1 s2 s3 =
  ( gmul s0 14 lxor gmul s1 11 lxor gmul s2 13 lxor gmul s3 9,
    gmul s0 9 lxor gmul s1 14 lxor gmul s2 11 lxor gmul s3 13,
    gmul s0 13 lxor gmul s1 9 lxor gmul s2 14 lxor gmul s3 11,
    gmul s0 11 lxor gmul s1 13 lxor gmul s2 9 lxor gmul s3 14 )

let map_columns f state =
  let out = Bytes.create 16 in
  for c = 0 to 3 do
    let g i = Char.code (Bytes.get state ((4 * c) + i)) in
    let t0, t1, t2, t3 = f (g 0) (g 1) (g 2) (g 3) in
    Bytes.set out (4 * c) (Char.chr t0);
    Bytes.set out ((4 * c) + 1) (Char.chr t1);
    Bytes.set out ((4 * c) + 2) (Char.chr t2);
    Bytes.set out ((4 * c) + 3) (Char.chr t3)
  done;
  out

let mix_columns = map_columns mix_column
let inv_mix_columns = map_columns inv_mix_column

let aesenc ~state ~round_key =
  if Bytes.length state <> 16 || Bytes.length round_key <> 16 then
    invalid_arg "Aes128.aesenc: need 16-byte operands";
  add_round_key (mix_columns (shift_rows (sub_bytes state))) round_key

let aesenclast ~state ~round_key =
  if Bytes.length state <> 16 || Bytes.length round_key <> 16 then
    invalid_arg "Aes128.aesenclast: need 16-byte operands";
  add_round_key (shift_rows (sub_bytes state)) round_key

(* The full 10-round encryption over column words. Observationally the
   same add_round_key/aesenc*9/aesenclast pipeline as before, verified
   byte-for-byte against it by the crypto tests. *)
let encrypt_cols kw c0 c1 c2 c3 =
  let c0 = ref (c0 lxor kw.(0))
  and c1 = ref (c1 lxor kw.(1))
  and c2 = ref (c2 lxor kw.(2))
  and c3 = ref (c3 lxor kw.(3)) in
  for r = 1 to 9 do
    let k = 4 * r in
    let round a b c d i =
      t0e.(a land 0xFF)
      lxor t1e.((b lsr 8) land 0xFF)
      lxor t2e.((c lsr 16) land 0xFF)
      lxor t3e.((d lsr 24) land 0xFF)
      lxor kw.(k + i)
    in
    let n0 = round !c0 !c1 !c2 !c3 0 in
    let n1 = round !c1 !c2 !c3 !c0 1 in
    let n2 = round !c2 !c3 !c0 !c1 2 in
    let n3 = round !c3 !c0 !c1 !c2 3 in
    c0 := n0;
    c1 := n1;
    c2 := n2;
    c3 := n3
  done;
  (* last round: ShiftRows + SubBytes only *)
  let last a b c d i =
    sbox.(a land 0xFF)
    lor (sbox.((b lsr 8) land 0xFF) lsl 8)
    lor (sbox.((c lsr 16) land 0xFF) lsl 16)
    lor (sbox.((d lsr 24) land 0xFF) lsl 24)
    lxor kw.(40 + i)
  in
  ( last !c0 !c1 !c2 !c3 0,
    last !c1 !c2 !c3 !c0 1,
    last !c2 !c3 !c0 !c1 2,
    last !c3 !c0 !c1 !c2 3 )

let encrypt_block key pt =
  if Bytes.length pt <> 16 then invalid_arg "Aes128.encrypt_block: need 16 bytes";
  let col i = Int32.to_int (Bytes.get_int32_le pt (4 * i)) land 0xFFFFFFFF in
  let n0, n1, n2, n3 = encrypt_cols key.kw (col 0) (col 1) (col 2) (col 3) in
  let ct = Bytes.create 16 in
  Bytes.set_int32_le ct 0 (Int32.of_int n0);
  Bytes.set_int32_le ct 4 (Int32.of_int n1);
  Bytes.set_int32_le ct 8 (Int32.of_int n2);
  Bytes.set_int32_le ct 12 (Int32.of_int n3);
  ct

let decrypt_block key ct =
  if Bytes.length ct <> 16 then invalid_arg "Aes128.decrypt_block: need 16 bytes";
  let state = ref (add_round_key ct key.rk.(10)) in
  for r = 9 downto 1 do
    state := inv_sub_bytes (inv_shift_rows !state);
    state := add_round_key !state key.rk.(r);
    state := inv_mix_columns !state
  done;
  add_round_key (inv_sub_bytes (inv_shift_rows !state)) key.rk.(0)

(* Allocation-free except the result pair: the int64 halves split
   straight into column words (bytes 0-3 = column 0 = the low 32 bits
   of [lo], and so on). *)
let encrypt_int64s key lo hi =
  let mask = 0xFFFFFFFFL in
  let w64 v = Int64.to_int (Int64.logand v mask) in
  let n0, n1, n2, n3 =
    encrypt_cols key.kw (w64 lo)
      (w64 (Int64.shift_right_logical lo 32))
      (w64 hi)
      (w64 (Int64.shift_right_logical hi 32))
  in
  let join a b =
    Int64.logor (Int64.of_int a) (Int64.shift_left (Int64.of_int b) 32)
  in
  (join n0 n1, join n2 n3)
