(** The one-way function F used by P-SSP-OWF (Algorithm 3).

    [F(ret || n, C)] is instantiated as AES-128 with the TLS canary pair
    as the key, encrypting the 128-bit block [nonce || return-address] —
    exactly the construction of Code 8: the resulting stack canary is a
    randomized MAC of the return address keyed by the master canary. *)

type t
(** A keyed instance (the expanded AES key held "in r12/r13"). *)

val create : key_lo:int64 -> key_hi:int64 -> t
(** [create ~key_lo ~key_hi] keys F with the 128-bit master secret. *)

val evaluate : t -> ret:int64 -> nonce:int64 -> int64 * int64
(** [evaluate t ~ret ~nonce] returns the 128-bit canary (lo, hi) =
    AES-128_key(nonce || ret). Deterministic in all inputs, so the
    epilogue can recompute and compare. *)

val evaluate_no_nonce : t -> ret:int64 -> int64 * int64
(** The deliberately weakened variant (nonce pinned to 0) used by the
    ablation experiment showing why §IV-C insists on a nonce: without
    it the stack canary of a given call site is a fixed value across
    executions and the byte-by-byte attack applies again. *)
