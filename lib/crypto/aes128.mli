(** Software AES-128 (FIPS-197).

    This stands in for the Intel AES-NI instructions the paper uses for
    P-SSP-OWF (§IV-C, §V-E3). Only what the scheme needs is provided:
    ECB-mode single-block encryption/decryption plus the round
    primitives ([aesenc]/[aesenclast]) that the simulated CPU exposes as
    instructions. It is used as a pseudorandom permutation over canary
    material, not to protect real secrets. *)

type key
(** An expanded 128-bit key schedule (11 round keys). *)

val expand_key : bytes -> key
(** [expand_key k] expands a 16-byte key.
    Raises [Invalid_argument] on any other length. *)

val key_of_int64s : int64 -> int64 -> key
(** [key_of_int64s lo hi] expands the 128-bit key [hi || lo] — the form
    used by P-SSP-OWF, which keeps the key in registers r12/r13. *)

val encrypt_block : key -> bytes -> bytes
(** [encrypt_block key pt] encrypts one 16-byte block.
    Raises [Invalid_argument] if [pt] is not 16 bytes. *)

val decrypt_block : key -> bytes -> bytes
(** Inverse of {!encrypt_block}. *)

val encrypt_int64s : key -> int64 -> int64 -> int64 * int64
(** [encrypt_int64s key lo hi] encrypts the block [hi || lo] (little-endian
    lane order, matching how the simulated XMM registers hold two qwords)
    and returns the ciphertext as [(lo, hi)]. *)

val round_keys : key -> bytes array
(** The 11 round keys, 16 bytes each — consumed by the simulated
    [aesenc]/[aesenclast] instructions. *)

val aesenc : state:bytes -> round_key:bytes -> bytes
(** One full AES round: SubBytes, ShiftRows, MixColumns, AddRoundKey —
    the semantics of the x86 [aesenc] instruction. *)

val aesenclast : state:bytes -> round_key:bytes -> bytes
(** Final round (no MixColumns) — the x86 [aesenclast] instruction. *)
