type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  arity : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let default_aligns arity =
  List.init arity (fun i -> if i = 0 then Left else Right)

let create ?title headers =
  let arity = List.length headers in
  if arity = 0 then invalid_arg "Table.create: no headers";
  { title; headers; arity; aligns = default_aligns arity; rows = [] }

let set_align t aligns =
  if List.length aligns <> t.arity then invalid_arg "Table.set_align: arity";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.arity then invalid_arg "Table.add_row: arity";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let left = fill / 2 in
      String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri
      (fun i c -> widths.(i) <- Stdlib.max widths.(i) (String.length c))
      cells
  in
  List.iter (function Cells c -> update c | Separator -> ()) rows;
  let buf = Buffer.create 512 in
  let rule () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "+" else "+");
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let emit_row aligns cells =
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  rule ();
  emit_row (List.init t.arity (fun _ -> Center)) t.headers;
  rule ();
  List.iter
    (function
      | Cells c -> emit_row t.aligns c
      | Separator -> rule ())
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let cell_pct ?(digits = 2) v = Printf.sprintf "%.*f%%" digits v
