(* Minimal JSON: exactly what the telemetry files need (objects, arrays,
   strings, ints, floats, bools, null), with a writer/parser pair that
   round-trips. No external dependency — the toolchain image has no
   yojson, and the subset is small enough that hand-rolling it is
   cheaper than gating the telemetry surface on an optional library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- writer -------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that parses back to the same float. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        escape_string buf k;
        Buffer.add_string buf ": ";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ---- parser -------------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %c at offset %d, got %c" ch c.pos x
  | None -> parse_error "expected %c at offset %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "bad literal at offset %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then parse_error "bad \\u escape";
        let hex = String.sub c.src c.pos 4 in
        c.pos <- c.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> parse_error "bad \\u escape %s" hex
        in
        (* basic-multilingual-plane only; enough for our own output *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
        loop ()
      | _ -> parse_error "bad escape at offset %d" c.pos)
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec loop () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      loop ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "bad number %s" s
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> parse_error "bad number %s" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; loop ()
        | Some '}' -> advance c
        | _ -> parse_error "expected , or } at offset %d" c.pos
      in
      loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; List [] end
    else begin
      let items = ref [] in
      let rec loop () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; loop ()
        | Some ']' -> advance c
        | _ -> parse_error "expected , or ] at offset %d" c.pos
      in
      loop ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected character %c at offset %d" ch c.pos

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ----------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None
let to_float_opt = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_obj_opt = function Obj fields -> Some fields | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
