(** ASCII table rendering for the benchmark harness, so each experiment
    prints rows in the same visual form as the paper's tables. *)

type align = Left | Right | Center

type t

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val set_align : t -> align list -> unit
(** Per-column alignment; defaults to [Left] for the first column and
    [Right] for the rest. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the arity differs from the header. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between row groups. *)

val render : t -> string

val print : t -> unit
(** [render] followed by [print_string]. *)

val cell_float : ?digits:int -> float -> string
(** Format a float with [digits] decimals (default 2). *)

val cell_pct : ?digits:int -> float -> string
(** Like {!cell_float} with a ["%"] suffix. *)
