(** Hexadecimal rendering helpers for debugging simulated memory and
    binary images. *)

val of_bytes : bytes -> string
(** Lowercase hex string, no separators. *)

val of_string : string -> string

val to_bytes : string -> bytes
(** Inverse of {!of_bytes}. Raises [Invalid_argument] on malformed input. *)

val int64 : int64 -> string
(** 16-digit zero-padded hex of a 64-bit value, e.g. ["00000000deadbeef"]. *)

val int64_pretty : int64 -> string
(** ["0x"]-prefixed unpadded hex. *)

val dump : ?base:int64 -> bytes -> string
(** Classic 16-bytes-per-line hexdump with ASCII gutter; [base] sets the
    address of the first byte. *)
