module Splitmix = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  (* SplitMix64, Steele et al. — the standard seeding PRNG. *)
  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
end

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let of_state (s0, s1, s2, s3) =
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    invalid_arg "Prng.of_state: all-zero state";
  { s0; s1; s2; s3 }

let create seed =
  let sm = Splitmix.create seed in
  let s0 = Splitmix.next sm in
  let s1 = Splitmix.next sm in
  let s2 = Splitmix.next sm in
  let s3 = Splitmix.next sm in
  (* SplitMix64 cannot produce four consecutive zeroes, but be safe. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then of_state (1L, 2L, 3L, 4L)
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* xoshiro256** by Blackman & Vigna. *)
let next64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let next32 t = Int64.to_int32 (Int64.shift_right_logical (next64 t) 32)

let bits t n =
  if n < 1 || n > 64 then invalid_arg "Prng.bits";
  if n = 64 then next64 t
  else Int64.shift_right_logical (next64 t) (64 - n)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec loop () =
    let v = Int64.to_int (Int64.logand (next64 t) mask) in
    let r = v mod bound in
    if v - r + (bound - 1) >= 0 then r else loop ()
  in
  loop ()

let byte t = Int64.to_int (Int64.logand (next64 t) 0xFFL)
let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v *. (1.0 /. 9007199254740992.0)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (byte t))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (next64 t)
