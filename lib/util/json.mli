(** Minimal JSON reader/writer for the telemetry files ([--metrics-out],
    [--trace-out], [BENCH_*.json]). [parse] and [to_string] round-trip:
    [parse (to_string j) = Ok j] for every value this module can build
    (float representations are chosen so they re-parse to the same
    float). Not a general-purpose JSON library — no streaming, and
    [\uXXXX] escapes outside ASCII are preserved literally rather than
    decoded to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val parse : string -> (t, string) result

val member : string -> t -> t option
(** Field of an object, [None] on missing field or non-object. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] values coerce to float. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
val to_obj_opt : t -> (string * t) list option
val to_bool_opt : t -> bool option
