(** Versioned schema for the telemetry JSON files.

    Two shapes share the version number {!schema_version}:
    - the perf trajectory record ([--bench-out], [BENCH_*.json]):
      [{"schema": 2, "pr": .., "jobs": .., "compile_tier": ..,
      "campaigns": [{"name", "wall_s", "metrics": {..}}]}]
    - the bare metrics snapshot ([--metrics-out]):
      [{"schema": 2, "metrics": {..}}]

    Metrics objects map registry metric names to integers (histograms
    are pre-flattened into per-bucket entries by the registry snapshot).
    [read (write x) = Ok x] up to float representation — the CI perf
    gate relies on this round-trip. *)

val schema_version : int

type campaign = {
  name : string;
  wall_s : float;
  metrics : (string * int) list;  (** name-sorted registry snapshot *)
}

type t = {
  pr : int;
  jobs : int;
  compile_tier : int;
      (** 0 = interpreter, 1 = per-block closures, 2 = chained/fused,
          3 = chained/fused + register caching. PR <= 6 records stored
          a boolean; the reader maps it to 0/1. *)
  campaigns : campaign list;
}

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val write : string -> t -> unit
val read : string -> (t, string) result

val metrics_snapshot_to_json : (string * int) list -> Json.t
val write_metrics : string -> (string * int) list -> unit
val read_metrics : string -> ((string * int) list, string) result
