(** Versioned schema for the telemetry JSON files.

    Two shapes share the version number {!schema_version}:
    - the perf trajectory record ([--bench-out], [BENCH_*.json], and
      the shard files [--shard K/N] writes):
      [{"schema": 3, "pr": .., "jobs": .., "compile_tier": ..,
      "shards": .., "shard"?: .., "merged_from"?: [..],
      "campaigns": [{"name", "wall_s", "metrics": {..},
      "context"?: .., "cells"?: [[i, hex], ..]}]}]
    - the bare metrics snapshot ([--metrics-out]):
      [{"schema": 3, "metrics": {..}}]

    Schema 3 adds shard provenance (shard index/count, merged-from)
    and optional per-campaign cell rows; readers accept schema 2 files
    (which read back as unsharded records) as well. Metrics objects
    map registry metric names to integers (histograms are
    pre-flattened into per-bucket entries by the registry snapshot).
    [read (write x) = Ok x] up to float representation — the CI perf
    gate relies on this round-trip. *)

val schema_version : int

type campaign = {
  name : string;
  wall_s : float;
  metrics : (string * int) list;  (** name-sorted registry snapshot *)
  context : string;
      (** campaign-config fingerprint (e.g. the loadbench header
          line); shards must agree on it before their rows may merge.
          [""] when the campaign takes no configuration. *)
  cells : (int * string) list;
      (** (cell index, hex-encoded marshalled row) pairs — present
          only in shard files, where they carry the shard's computed
          rows to the merge step *)
}

type t = {
  pr : int;
  jobs : int;
  compile_tier : int;
      (** 0 = interpreter, 1 = per-block closures, 2 = chained/fused,
          3 = chained/fused + register caching. PR <= 6 records stored
          a boolean; the reader maps it to 0/1. *)
  shards : int;  (** total shard count; 1 = unsharded *)
  shard : int option;
      (** [Some k] on a file written by [--shard K/N] (0-based) *)
  merged_from : string list;
      (** shard files a [bench merge] combined into this record *)
  campaigns : campaign list;
}

val campaign :
  ?context:string ->
  ?cells:(int * string) list ->
  name:string ->
  wall_s:float ->
  (string * int) list ->
  campaign

val make :
  ?shards:int ->
  ?shard:int ->
  ?merged_from:string list ->
  pr:int ->
  jobs:int ->
  compile_tier:int ->
  campaign list ->
  t

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val write : string -> t -> unit
val read : string -> (t, string) result

val metrics_snapshot_to_json : (string * int) list -> Json.t
val write_metrics : string -> (string * int) list -> unit
val read_metrics : string -> ((string * int) list, string) result
