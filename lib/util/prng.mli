(** Deterministic pseudo-random number generation.

    Two generators are provided:
    - {!Splitmix}: SplitMix64, used for seeding and cheap streams;
    - {!t}: xoshiro256** — the main generator backing the simulated
      [rdrand] instruction and all randomized canary material.

    Both are fully deterministic given a seed, which keeps every
    experiment in the repository reproducible. *)

module Splitmix : sig
  type t

  val create : int64 -> t
  (** [create seed] makes a SplitMix64 stream from [seed]. *)

  val next : t -> int64
  (** [next t] advances the stream and returns the next 64-bit value. *)
end

type t
(** A xoshiro256** generator. *)

val create : int64 -> t
(** [create seed] seeds a generator via SplitMix64 expansion of [seed]. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** [of_state s] builds a generator from an explicit 256-bit state.
    Raises [Invalid_argument] if the state is all zeroes. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next64 : t -> int64
(** [next64 t] returns the next 64-bit output. *)

val next32 : t -> int32
(** [next32 t] returns the next 32-bit output. *)

val bits : t -> int -> int64
(** [bits t n] returns an [n]-bit value ([1 <= n <= 64]) in the low bits. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)].
    Raises [Invalid_argument] if [bound <= 0]. *)

val byte : t -> int
(** [byte t] is a uniform value in [\[0, 255\]]. *)

val bool : t -> bool

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val bytes : t -> int -> bytes
(** [bytes t n] is a fresh buffer of [n] uniform bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t]. Used to give each simulated process its own entropy
    stream. *)
