let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let median xs = percentile xs 50.0

let min xs =
  check_nonempty "Stats.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "Stats.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  let acc =
    Array.fold_left
      (fun a x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive input";
        a +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))

let overhead_pct ~baseline ~measured =
  if baseline = 0.0 then invalid_arg "Stats.overhead_pct: zero baseline";
  (measured -. baseline) /. baseline *. 100.0

let chi_square ~expected ~observed =
  if Array.length expected <> Array.length observed then
    invalid_arg "Stats.chi_square: length mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i e ->
      if e <= 0.0 then invalid_arg "Stats.chi_square: nonpositive expected";
      let d = observed.(i) -. e in
      acc := !acc +. (d *. d /. e))
    expected;
  !acc

let chi_square_uniform ~observed =
  if Array.length observed = 0 then
    invalid_arg "Stats.chi_square_uniform: empty array";
  let k = Array.length observed in
  let total = Array.fold_left ( + ) 0 observed in
  if total <= 0 then
    invalid_arg "Stats.chi_square_uniform: no observations (all counts zero)";
  let e = float_of_int total /. float_of_int k in
  let expected = Array.make k e in
  chi_square ~expected ~observed:(Array.map float_of_int observed)

(* chi^2 inverse CDF at p=0.999, df=255 (from standard tables). *)
let chi_square_critical_256_p001 = 330.5197

let histogram ~buckets ~lo ~hi xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets";
  if hi <= lo then invalid_arg "Stats.histogram: bad range";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  Array.iter
    (fun x ->
      if Float.is_nan x then invalid_arg "Stats.histogram: NaN sample";
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.max 0 (Stdlib.min (buckets - 1) i) in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts
