(** Small statistics toolkit used by the benchmark harness and the
    security experiments (chi-square independence tests for Theorem 1). *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val median : float array -> float
(** Median (does not mutate the input). *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation. *)

val min : float array -> float
val max : float array -> float

val geomean : float array -> float
(** Geometric mean; inputs must be positive. *)

val overhead_pct : baseline:float -> measured:float -> float
(** [(measured - baseline) / baseline * 100]. *)

val chi_square : expected:float array -> observed:float array -> float
(** Pearson chi-square statistic; arrays must have equal length. *)

val chi_square_uniform : observed:int array -> float
(** Chi-square statistic against the uniform distribution over the
    observed categories. Raises [Invalid_argument] if the array is empty
    or every count is zero (no observations to test). *)

val chi_square_critical_256_p001 : float
(** Critical value for 255 degrees of freedom at significance 0.001.
    Used to test uniformity of canary byte distributions. *)

val histogram : buckets:int -> lo:float -> hi:float -> float array -> int array
(** Fixed-width histogram; out-of-range samples clamp to edge buckets.
    Raises [Invalid_argument] on a NaN sample (which has no bucket). *)
