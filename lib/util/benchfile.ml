(* Versioned on-disk schema for the perf trajectory record
   (--bench-out), the metrics snapshot (--metrics-out), and shard
   files. Schema 2 replaced the hand-rolled per-counter fields of
   BENCH_pr2/pr3.json with a generic registry snapshot: every campaign
   carries a {"metric-name": int} object. Schema 3 adds shard
   provenance — shard index/count on files written by `--shard K/N`,
   merged-from on files produced by `bench merge` — and optional
   per-campaign cell rows (hex-encoded marshalled cells a shard file
   carries so the merge step can render the combined body). Readers
   accept both versions. *)

let schema_version = 3

type campaign = {
  name : string;
  wall_s : float;
  metrics : (string * int) list;  (* name-sorted registry snapshot *)
  context : string;
      (* campaign-config fingerprint (e.g. the loadbench header line);
         shards must agree on it before their rows may merge *)
  cells : (int * string) list;
      (* (cell index, hex-encoded marshalled row) — only in shard files *)
}

type t = {
  pr : int;
  jobs : int;
  compile_tier : int;
      (* 0 = interpreter, 1 = closures, 2 = chained/fused,
         3 = chained/fused + register caching *)
  shards : int;  (* total shard count; 1 = unsharded *)
  shard : int option;  (* Some k on a shard file (0-based, of [shards]) *)
  merged_from : string list;  (* shard files a `bench merge` combined *)
  campaigns : campaign list;
}

let campaign ?(context = "") ?(cells = []) ~name ~wall_s metrics =
  { name; wall_s; metrics; context; cells }

let make ?(shards = 1) ?shard ?(merged_from = []) ~pr ~jobs ~compile_tier
    campaigns =
  { pr; jobs; compile_tier; shards; shard; merged_from; campaigns }

let metrics_to_json metrics = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) metrics)

let campaign_to_json c =
  Json.Obj
    ([
       ("name", Json.String c.name);
       ("wall_s", Json.Float c.wall_s);
       ("metrics", metrics_to_json c.metrics);
     ]
    @ (if String.equal c.context "" then []
       else [ ("context", Json.String c.context) ])
    @
    match c.cells with
    | [] -> []
    | cells ->
      [
        ( "cells",
          Json.List
            (List.map
               (fun (i, row) -> Json.List [ Json.Int i; Json.String row ])
               cells) );
      ])

let to_json t =
  Json.Obj
    ([
       ("schema", Json.Int schema_version);
       ("pr", Json.Int t.pr);
       ("jobs", Json.Int t.jobs);
       ("compile_tier", Json.Int t.compile_tier);
       ("shards", Json.Int t.shards);
     ]
    @ (match t.shard with Some k -> [ ("shard", Json.Int k) ] | None -> [])
    @ (match t.merged_from with
      | [] -> []
      | fs -> [ ("merged_from", Json.List (List.map (fun f -> Json.String f) fs)) ])
    @ [ ("campaigns", Json.List (List.map campaign_to_json t.campaigns)) ])

let write path t =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

(* ---- readers -------------------------------------------------------------- *)

let ( let* ) = Result.bind

let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what)

let check_schema j =
  let* v = require "\"schema\"" (Option.bind (Json.member "schema" j) Json.to_int_opt) in
  if v <> 2 && v <> schema_version then
    Error (Printf.sprintf "unsupported schema %d (want 2 or %d)" v schema_version)
  else Ok ()

let metrics_of_json what j =
  let* fields = require what (Json.to_obj_opt j) in
  List.fold_left
    (fun acc (k, v) ->
      let* acc = acc in
      match Json.to_int_opt v with
      | Some n -> Ok ((k, n) :: acc)
      | None -> Error (Printf.sprintf "metric %S is not an integer" k))
    (Ok []) fields
  |> Result.map List.rev

let cells_of_json j =
  match Json.to_list_opt j with
  | None -> Error "campaign \"cells\" is not a list"
  | Some entries ->
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match Json.to_list_opt e with
        | Some [ i; row ] -> (
          match (Json.to_int_opt i, Json.to_string_opt row) with
          | Some i, Some row -> Ok ((i, row) :: acc)
          | _ -> Error "ill-typed cell entry")
        | _ -> Error "ill-typed cell entry")
      (Ok []) entries
    |> Result.map List.rev

let campaign_of_json j =
  let* name = require "campaign \"name\"" (Option.bind (Json.member "name" j) Json.to_string_opt) in
  let* wall_s =
    require "campaign \"wall_s\"" (Option.bind (Json.member "wall_s" j) Json.to_float_opt)
  in
  let* metrics =
    let* m = require "campaign \"metrics\"" (Json.member "metrics" j) in
    metrics_of_json "campaign \"metrics\"" m
  in
  let context =
    Option.value ~default:""
      (Option.bind (Json.member "context" j) Json.to_string_opt)
  in
  let* cells =
    match Json.member "cells" j with
    | None -> Ok []
    | Some c -> cells_of_json c
  in
  Ok { name; wall_s; metrics; context; cells }

let of_json j =
  let* () = check_schema j in
  let* pr = require "\"pr\"" (Option.bind (Json.member "pr" j) Json.to_int_opt) in
  let* jobs = require "\"jobs\"" (Option.bind (Json.member "jobs" j) Json.to_int_opt) in
  let* compile_tier =
    (* PR <= 6 records carry the boolean tier switch; read it as 0/1 *)
    let field = Json.member "compile_tier" j in
    match Option.bind field Json.to_int_opt with
    | Some n -> Ok n
    | None -> (
      match Option.bind field Json.to_bool_opt with
      | Some b -> Ok (if b then 1 else 0)
      | None -> Error "missing or ill-typed \"compile_tier\"")
  in
  (* schema-2 files carry no shard provenance: an unsharded record *)
  let shards =
    Option.value ~default:1 (Option.bind (Json.member "shards" j) Json.to_int_opt)
  in
  let shard = Option.bind (Json.member "shard" j) Json.to_int_opt in
  let merged_from =
    match Option.bind (Json.member "merged_from" j) Json.to_list_opt with
    | None -> []
    | Some fs -> List.filter_map Json.to_string_opt fs
  in
  let* campaigns =
    let* cs = require "\"campaigns\"" (Option.bind (Json.member "campaigns" j) Json.to_list_opt) in
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* c = campaign_of_json c in
        Ok (c :: acc))
      (Ok []) cs
    |> Result.map List.rev
  in
  Ok { pr; jobs; compile_tier; shards; shard; merged_from; campaigns }

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s

let read path =
  let* s = read_file path in
  let* j = Json.parse s in
  of_json j

(* A --metrics-out snapshot: {"schema": 3, "metrics": {...}}. *)

let metrics_snapshot_to_json metrics =
  Json.Obj [ ("schema", Json.Int schema_version); ("metrics", metrics_to_json metrics) ]

let write_metrics path metrics =
  let oc = open_out path in
  output_string oc (Json.to_string (metrics_snapshot_to_json metrics));
  output_char oc '\n';
  close_out oc

let read_metrics path =
  let* s = read_file path in
  let* j = Json.parse s in
  let* () = check_schema j in
  let* m = require "\"metrics\"" (Json.member "metrics" j) in
  metrics_of_json "\"metrics\"" m
