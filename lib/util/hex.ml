let hex_digit n = "0123456789abcdef".[n]

let of_bytes b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) (hex_digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (hex_digit (c land 0xF))
  done;
  Bytes.unsafe_to_string out

let of_string s = of_bytes (Bytes.of_string s)

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.to_bytes: bad digit"

let to_bytes s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.to_bytes: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = digit_value s.[2 * i] in
    let lo = digit_value s.[(2 * i) + 1] in
    Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
  done;
  out

let int64 v = Printf.sprintf "%016Lx" v
let int64_pretty v = Printf.sprintf "0x%Lx" v

let printable c = if Char.code c >= 0x20 && Char.code c < 0x7F then c else '.'

let dump ?(base = 0L) b =
  let buf = Buffer.create 256 in
  let n = Bytes.length b in
  let line_start = ref 0 in
  while !line_start < n do
    let len = Stdlib.min 16 (n - !line_start) in
    Buffer.add_string buf
      (Printf.sprintf "%08Lx  " (Int64.add base (Int64.of_int !line_start)));
    for i = 0 to 15 do
      if i < len then
        Buffer.add_string buf
          (Printf.sprintf "%02x " (Char.code (Bytes.get b (!line_start + i))))
      else Buffer.add_string buf "   ";
      if i = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_string buf " |";
    for i = 0 to len - 1 do
      Buffer.add_char buf (printable (Bytes.get b (!line_start + i)))
    done;
    Buffer.add_string buf "|\n";
    line_start := !line_start + 16
  done;
  Buffer.contents buf
