(** Deterministic load generator: seeded client populations driving a
    simulated server over {!Conn} objects.

    Two shapes: [Closed] keeps a fixed population of clients, each with
    at most one request in flight, reconnecting (keep-alive permitting)
    as soon as the previous request resolves; [Open] admits sessions on
    a fixed interarrival clock up to the population cap.

    The generator is a pure state machine over virtual cycles — {!step}
    takes the kernel's current time and a connect thunk, so a seeded
    run replays byte-identically regardless of host timing or [--jobs].
    Responses are framed by the first ['\n']. *)

type mode = Closed | Open of { interarrival : int64 }

type t

val create :
  ?seed:int64 ->
  ?slow_every:int ->
  ?slow_gap:int64 ->
  ?abort_every:int ->
  ?retry_gap:int64 ->
  mode:mode ->
  clients:int ->
  keepalive:int ->
  total:int ->
  mix:string list ->
  unit ->
  t
(** [slow_every = n] makes every n-th request (by global index) a
    byte-at-a-time sender pausing [slow_gap] cycles between bytes;
    [abort_every = n] makes every n-th request disconnect abruptly
    halfway through sending. [keepalive] is the per-connection request
    budget (min 1); [total] the overall request budget across all
    clients; [mix] the request bodies, chosen per-request by the seeded
    PRNG. *)

val step : t -> now:int64 -> try_connect:(unit -> Conn.t option) -> bool
(** Advance every client as far as it can go at [now]. Returns true if
    any client made a transition (the pump's progress signal). *)

val next_event : t -> int64 option
(** Earliest future cycle at which some client has a scheduled move —
    the pump jumps virtual time here when the kernel quiesces. *)

val finished : t -> bool
(** All [total] requests have been started and resolved. *)

val force_finish : t -> now:int64 -> unit
(** Stall-breaker: resolve everything outstanding as failed so the pump
    reports instead of spinning. *)

type report = {
  sent : int;
  completed : int;
  failed : int;
  aborted : int;  (** client-side abrupt disconnects (counted separately) *)
  refused : int;  (** refused connect attempts (not requests) *)
  peak_open : int;
  latencies : int64 array;  (** completion order *)
  busy_cycles : int64;
      (** virtual cycles between first and last completion — the
          saturated window, excluding connect ramp-up *)
}

val report : t -> report
