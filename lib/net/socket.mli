(** A listening socket with a bounded accept backlog.

    Connections queue between the client's connect and the server's
    [accept]; a full backlog refuses further connects ([can_push] is
    false and the would-be conn is never created). Refcounted across
    fork/pthread fd-table clones — the last {!release} stops listening
    and aborts anything still queued. *)

type t

val create : unit -> t
val bind : t -> port:int -> unit
val listen : t -> backlog:int -> unit
(** Start accepting; the backlog is clamped to at least 1. *)

val port : t -> int
val backlog : t -> int
val listening : t -> bool
val pending_count : t -> int

val can_push : t -> bool
(** Listening and the backlog has room. *)

val push : t -> Conn.t -> unit
(** Queue a connection (unchecked — callers test {!can_push} first;
    the harness's compat shim pushes driver-delivered requests past the
    check on purpose). Wakes at most one parked accept waiter. *)

val add_accept_waiter : t -> key:int -> (unit -> unit) -> unit
(** Park a one-shot accept waiter. {!push} wakes waiters one at a time
    in park (FIFO) order — acceptor processes sharing a socket take
    turns. Re-adding an already-parked [key] is a no-op. *)

val note_refused : unit -> unit
(** Count one refused connect under ["net.conn.refused"]. *)

val accept_opt : t -> Conn.t option
(** Pop the oldest still-live pending connection (conns reset while
    queued are dropped silently, like a SYN-queue entry whose client
    went away). *)

val retain : t -> unit
val release : t -> now:int64 -> unit
