(** A simulated connection: client->server ("rx") and server->client
    ("tx") byte streams with partial read/write, half-close (FIN),
    abortive close (RST), and deterministic virtual-cycle timestamps.

    The server side addresses a connection through a process fd and is
    refcounted ([retain]/[server_close]) so fork/pthread clones of the
    fd table keep the connection open until the last holder closes it.
    The client side is driven directly by {!Loadgen} or the attack
    oracle. All [~now] arguments are kernel virtual cycles — nothing
    here reads a wall clock. *)

type t

val create : ?tx_capacity:int -> id:int -> now:int64 -> unit -> t
(** [tx_capacity] bounds un-consumed server->client bytes; a full TX
    buffer blocks the server's [write] (default 64 KiB). *)

val id : t -> int
val opened_at : t -> int64

val last_activity : t -> int64
(** Cycle stamp of the most recent byte or state change — the idle
    clock connection timeouts are measured against. *)

val idle_cycles : t -> now:int64 -> int64
val is_reset : t -> bool
val server_closed : t -> bool

val rx_pending : t -> int
(** Bytes sent by the client not yet read by the server. *)

val tx_pending : t -> int
(** Bytes written by the server not yet received by the client. *)

val touch : t -> now:int64 -> unit
(** Advance [last_activity] (monotonic; earlier stamps are ignored). *)

val readable : t -> bool
(** True when a server-side read would not block: pending RX bytes, an
    undelivered EOF, or a reset (the read completes with an error). *)

val writable : t -> bool
(** True when a server-side write would not block (TX space, or the
    conn is closed so the write completes with an error). *)

(** {1 Readiness waiters}

    One-shot callbacks the kernel parks on a connection instead of
    polling it. RX waiters fire when the client makes the server side
    readable (bytes, FIN, reset); TX waiters when it becomes writable
    again (client drained bytes, reset). A waiter re-registered under
    the same [key] replaces the previous one; firing happens in key
    order (the kernel keys by pid, preserving pid-order wakeups). *)

val add_rx_waiter : t -> key:int -> (unit -> unit) -> unit
val add_tx_waiter : t -> key:int -> (unit -> unit) -> unit

(** {1 Server side} *)

val retain : t -> unit
(** One more server fd references this conn (fd install, fd-table
    clone at fork/pthread_create). *)

type read_result =
  | Data of bytes  (** 1..max bytes *)
  | Would_block  (** no data yet; stream still open *)
  | Eof  (** client half-closed and drained — delivered exactly once *)
  | Closed  (** reset, or reading past the one EOF *)

val server_read : t -> now:int64 -> max:int -> read_result

type write_result =
  | Wrote of int  (** 1..len bytes accepted (partial if TX fills) *)
  | Tx_full  (** no room; caller should block *)
  | Conn_closed  (** reset or already closed server-side *)

val server_write : t -> now:int64 -> bytes -> write_result

val server_close : t -> now:int64 -> unit
(** Drop one server reference; the last drop half-closes TX (graceful
    FIN — the client can still drain buffered bytes, then sees [Eof]). *)

val abort : t -> now:int64 -> unit
(** Abortive close (RST): both directions die immediately. Used when a
    handler process crashes or a client disconnects abruptly. *)

val timeout : t -> now:int64 -> unit
(** {!abort}, counted under ["net.conn.timeouts"] — the kernel calls
    this when a blocked read/write exceeds the connection timeout. *)

(** {1 Client side} *)

val client_send : t -> now:int64 -> string -> bool
(** Append request bytes; [false] if the conn is reset or already
    half-closed client-side. *)

val client_shutdown : t -> now:int64 -> unit
(** Half-close: no more client bytes; the server's next drained read
    returns [Eof]. *)

val client_recv : t -> max:int -> read_result
(** Drain server response bytes. A reset connection returns [Closed]
    immediately and discards anything still buffered — RST kills the
    receive queue, unlike the FIN path which drains then reports
    [Eof]. *)
