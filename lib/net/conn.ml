(* A simulated TCP-ish connection: two independent byte streams (client
   -> server "rx", server -> client "tx") with partial read/write,
   half-close, reset, and deterministic-cycle timestamps. All times are
   virtual kernel cycles supplied by the caller — nothing here reads a
   wall clock, so a seeded run replays byte-identically. *)

let metric_opened = "net.conn.opened"
let metric_closed = "net.conn.closed"
let metric_reset = "net.conn.reset"
let metric_timeouts = "net.conn.timeouts"
let metric_rx_bytes = "net.bytes.rx"
let metric_tx_bytes = "net.bytes.tx"

let g_opened = Telemetry.Registry.counter metric_opened
let g_closed = Telemetry.Registry.counter metric_closed
let g_reset = Telemetry.Registry.counter metric_reset
let g_timeouts = Telemetry.Registry.counter metric_timeouts
let g_rx_bytes = Telemetry.Registry.counter metric_rx_bytes
let g_tx_bytes = Telemetry.Registry.counter metric_tx_bytes

(* One direction of the stream: every byte ever sent, a read cursor,
   and a FIN flag set when the writing side is done. *)
type half = { data : Buffer.t; mutable consumed : int; mutable fin : bool }

let make_half () = { data = Buffer.create 64; consumed = 0; fin = false }
let avail h = Buffer.length h.data - h.consumed

type t = {
  id : int;
  opened_at : int64;
  mutable last_activity : int64;
  rx : half;  (* client -> server *)
  tx : half;  (* server -> client *)
  tx_capacity : int;
  mutable reset : bool;
  mutable eof_delivered : bool;
  mutable server_refs : int;  (* server-side fds referencing this conn *)
  (* One-shot readiness waiters, keyed (by pid) so a waiter parked twice
     replaces itself instead of firing twice. RX waiters fire when the
     client makes the server side readable (bytes, FIN, RST); TX waiters
     when it makes the server side writable again (drained bytes, RST).
     Firing sorts by key, so several processes parked on one fd wake in
     pid order — the determinism contract the kernel's old global poll
     scan provided. *)
  mutable rx_waiters : (int * (unit -> unit)) list;
  mutable tx_waiters : (int * (unit -> unit)) list;
}

let create ?(tx_capacity = 65536) ~id ~now () =
  Telemetry.Registry.incr g_opened;
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.instant "net.conn.open"
      ~args:[ ("conn", string_of_int id) ]
      ~cycles:now;
  {
    id;
    opened_at = now;
    last_activity = now;
    rx = make_half ();
    tx = make_half ();
    tx_capacity;
    reset = false;
    eof_delivered = false;
    server_refs = 0;
    rx_waiters = [];
    tx_waiters = [];
  }

(* ---- readiness waiters ------------------------------------------------ *)

let add_waiter waiters ~key f = (key, f) :: List.remove_assoc key waiters
let add_rx_waiter t ~key f = t.rx_waiters <- add_waiter t.rx_waiters ~key f
let add_tx_waiter t ~key f = t.tx_waiters <- add_waiter t.tx_waiters ~key f

(* Clear before calling: a callback may register fresh waiters. *)
let fire_rx t =
  let ws = t.rx_waiters in
  t.rx_waiters <- [];
  List.iter (fun (_, f) -> f ()) (List.sort compare ws)

let fire_tx t =
  let ws = t.tx_waiters in
  t.tx_waiters <- [];
  List.iter (fun (_, f) -> f ()) (List.sort compare ws)

let id t = t.id
let opened_at t = t.opened_at
let last_activity t = t.last_activity
let is_reset t = t.reset
let server_closed t = t.tx.fin
let idle_cycles t ~now = Int64.sub now t.last_activity
let rx_pending t = avail t.rx
let tx_pending t = avail t.tx

let touch t ~now =
  if Int64.compare now t.last_activity > 0 then t.last_activity <- now

(* ---- server side ------------------------------------------------------ *)

let retain t = t.server_refs <- t.server_refs + 1

type read_result = Data of bytes | Would_block | Eof | Closed

let server_read t ~now ~max =
  if t.reset then Closed
  else begin
    let n = Stdlib.min max (avail t.rx) in
    if n > 0 then begin
      let b = Bytes.of_string (Buffer.sub t.rx.data t.rx.consumed n) in
      t.rx.consumed <- t.rx.consumed + n;
      touch t ~now;
      Telemetry.Registry.add g_rx_bytes n;
      Data b
    end
    else if t.rx.fin then
      if t.eof_delivered then Closed
      else begin
        t.eof_delivered <- true;
        Eof
      end
    else Would_block
  end

let tx_space t = t.tx_capacity - avail t.tx

type write_result = Wrote of int | Tx_full | Conn_closed

let server_write t ~now data =
  if t.reset || t.tx.fin then Conn_closed
  else begin
    let space = tx_space t in
    if space <= 0 then Tx_full
    else begin
      let n = Stdlib.min (Bytes.length data) space in
      Buffer.add_subbytes t.tx.data data 0 n;
      touch t ~now;
      Telemetry.Registry.add g_tx_bytes n;
      Wrote n
    end
  end

let close_event t ~now name =
  if Telemetry.Trace.enabled () then
    Telemetry.Trace.instant name
      ~args:[ ("conn", string_of_int t.id) ]
      ~cycles:now

let server_close t ~now =
  if t.server_refs > 0 then t.server_refs <- t.server_refs - 1;
  if t.server_refs = 0 && (not t.tx.fin) && not t.reset then begin
    t.tx.fin <- true;
    touch t ~now;
    Telemetry.Registry.incr g_closed;
    close_event t ~now "net.conn.close"
  end

let abort t ~now =
  if not t.reset then begin
    t.reset <- true;
    touch t ~now;
    Telemetry.Registry.incr g_reset;
    close_event t ~now "net.conn.reset";
    (* a reset completes every blocked operation (with an error) *)
    fire_rx t;
    fire_tx t
  end

let timeout t ~now =
  if not t.reset then begin
    Telemetry.Registry.incr g_timeouts;
    abort t ~now
  end

(* ---- client side ------------------------------------------------------ *)

let client_send t ~now data =
  if t.reset || t.rx.fin then false
  else begin
    Buffer.add_string t.rx.data data;
    touch t ~now;
    fire_rx t;
    true
  end

let client_shutdown t ~now =
  if (not t.rx.fin) && not t.reset then begin
    t.rx.fin <- true;
    touch t ~now;
    fire_rx t
  end

(* RST semantics: a reset kills the receive queue too — buffered
   response bytes are discarded, the client sees the connection die
   with an error. This is the one-bit crash signal the byte-by-byte
   attack reads (crash = RST, clean close = FIN + drained bytes), so a
   reset must never drain like a graceful close. *)
let client_recv t ~max =
  if t.reset then Closed
  else
    let n = Stdlib.min max (avail t.tx) in
    if n > 0 then begin
      let b = Bytes.of_string (Buffer.sub t.tx.data t.tx.consumed n) in
      t.tx.consumed <- t.tx.consumed + n;
      (* the server side regained TX space *)
      fire_tx t;
      Data b
    end
    else if t.tx.fin then Eof
    else Would_block

(* ---- readiness probes (epoll layer) ----------------------------------- *)

(* True when a server-side read would not block: bytes pending, an
   undelivered EOF, or a reset (the read completes with an error). *)
let readable t = t.reset || avail t.rx > 0 || (t.rx.fin && not t.eof_delivered)

let writable t = t.reset || t.tx.fin || tx_space t > 0
