(* A listening socket: a bounded accept backlog of pending connections.
   Like the kernel's SYN/accept queue, a full backlog refuses new
   connections (the client sees ECONNREFUSED and may retry). The socket
   is refcounted across fork/pthread fd-table clones; the last release
   stops listening and resets whatever is still queued. *)

let g_refused = Telemetry.Registry.counter "net.conn.refused"
let g_accepted = Telemetry.Registry.counter "net.conn.accepted"

type t = {
  mutable port : int;
  mutable backlog : int;
  mutable listening : bool;
  pending : Conn.t Queue.t;
  mutable refs : int;
  (* One-shot accept waiters in FIFO park order. Each pushed connection
     wakes exactly one waiter (wake-one, no thundering herd), so several
     acceptor processes sharing a socket take turns — the wake order is
     the order they parked, which round-robins naturally. *)
  accept_waiters : (int * (unit -> unit)) Queue.t;
}

let create () =
  {
    port = 0;
    backlog = 0;
    listening = false;
    pending = Queue.create ();
    refs = 1;
    accept_waiters = Queue.create ();
  }

let bind t ~port = t.port <- port

let listen t ~backlog =
  t.backlog <- Stdlib.max 1 backlog;
  t.listening <- true

let port t = t.port
let backlog t = t.backlog
let listening t = t.listening
let pending_count t = Queue.length t.pending
let can_push t = t.listening && Queue.length t.pending < t.backlog

let add_accept_waiter t ~key f =
  (* dedup: a process re-parking before its wakeup fired keeps its slot *)
  if not (Queue.fold (fun seen (k, _) -> seen || k = key) false t.accept_waiters)
  then Queue.push (key, f) t.accept_waiters

let push t conn =
  Queue.push conn t.pending;
  (* wake-one: the longest-parked acceptor gets this connection *)
  match Queue.take_opt t.accept_waiters with
  | Some (_, f) -> f ()
  | None -> ()

let note_refused () = Telemetry.Registry.incr g_refused

let rec accept_opt t =
  match Queue.take_opt t.pending with
  | None -> None
  | Some c ->
    (* a client that aborted while queued never reaches the server *)
    if Conn.is_reset c then accept_opt t
    else begin
      Telemetry.Registry.incr g_accepted;
      Some c
    end

let retain t = t.refs <- t.refs + 1

let release t ~now =
  if t.refs > 0 then t.refs <- t.refs - 1;
  if t.refs = 0 then begin
    t.listening <- false;
    Queue.iter (fun c -> Conn.abort c ~now) t.pending;
    Queue.clear t.pending
  end
