(* Deterministic client populations driving a simulated server.

   Two shapes:
   - [Closed]: a fixed population of clients, each with at most one
     request in flight; a client reconnects (keep-alive permitting) as
     soon as its previous request resolves.
   - [Open]: sessions arrive on a fixed interarrival clock, up to
     [clients] concurrent sessions; each session behaves like a closed
     client but goes dormant when its connection closes.

   Everything is a pure state machine over virtual cycles: [step] is
   called with the kernel's current [~now] and a [try_connect] thunk;
   request choice, slow senders and abrupt disconnects come from a
   seeded PRNG and global request indices, so a seeded run replays
   byte-identically regardless of host timing or [--jobs]. Responses
   are framed by the first '\n'. *)

let g_requests = Telemetry.Registry.counter "net.loadgen.requests"
let g_responses = Telemetry.Registry.counter "net.loadgen.responses"
let g_failures = Telemetry.Registry.counter "net.loadgen.failures"

let g_latency =
  Telemetry.Registry.histogram "net.loadgen.latency_cycles"
    ~bounds:
      [|
        1_000;
        3_000;
        10_000;
        30_000;
        100_000;
        300_000;
        1_000_000;
        3_000_000;
        10_000_000;
      |]

type mode = Closed | Open of { interarrival : int64 }

type phase =
  | Parked  (* open-loop slot waiting for an arrival *)
  | Idle of int64  (* may (re)connect once [now] reaches the stamp *)
  | Sending of {
      req : string;
      sent : int;
      next_at : int64;
      started : int64;
      gap : int64;
      abort_at : int;  (* byte index to disconnect abruptly at; -1 = never *)
    }
  | Awaiting of { started : int64; resp : Buffer.t }
  | Done

type client = {
  cid : int;
  mutable conn : Conn.t option;
  mutable left_on_conn : int;  (* keep-alive budget remaining *)
  mutable phase : phase;
}

type t = {
  mode : mode;
  keepalive : int;
  total : int;
  mix : string array;
  rng : Util.Prng.t;
  slow_every : int;
  slow_gap : int64;
  abort_every : int;
  retry_gap : int64;
  clients : client array;
  parked : int Queue.t;  (* open mode: cids awaiting an arrival, FIFO *)
  mutable active : int list;
      (* cids possibly not Parked/Done, sorted ascending — the only
         slots [step]/[next_event] visit, so a large open-mode
         population costs O(concurrency) per pump iteration, not
         O(population). Maintained lazily: parking leaves the cid in
         place and the next sweep prunes it (activation dedups against
         stale entries), so order and transitions stay byte-identical
         to the full array walk. *)
  mutable started : int;  (* requests begun (each resolves exactly once) *)
  mutable completed : int;
  mutable failed : int;
  mutable aborted : int;
  mutable refused : int;  (* refused connect attempts (not requests) *)
  mutable open_conns : int;
  mutable peak_open : int;
  mutable latencies : int64 list;  (* completion order, newest first *)
  mutable first_done : int64;  (* stamp of the first completion; -1 = none *)
  mutable last_done : int64;  (* stamp of the latest completion *)
  mutable next_arrival : int64;  (* open mode only *)
  mutable transitions : int;  (* progress detector for the pump loop *)
}

let create ?(seed = 0x10AD6E4L) ?(slow_every = 0) ?(slow_gap = 2_000L)
    ?(abort_every = 0) ?(retry_gap = 1_000L) ~mode ~clients ~keepalive ~total
    ~mix () =
  if clients <= 0 then invalid_arg "Loadgen.create: clients must be positive";
  if mix = [] then invalid_arg "Loadgen.create: empty request mix";
  let initial = match mode with Closed -> Idle 0L | Open _ -> Parked in
  let parked = Queue.create () in
  (match mode with
  | Open _ -> for cid = 0 to clients - 1 do Queue.push cid parked done
  | Closed -> ());
  {
    mode;
    keepalive = Stdlib.max 1 keepalive;
    total;
    mix = Array.of_list mix;
    rng = Util.Prng.create seed;
    slow_every;
    slow_gap;
    abort_every;
    retry_gap;
    clients =
      Array.init clients (fun cid ->
          { cid; conn = None; left_on_conn = 0; phase = initial });
    parked;
    active =
      (match mode with
      | Closed -> List.init clients Fun.id  (* everyone starts Idle *)
      | Open _ -> []);
    started = 0;
    completed = 0;
    failed = 0;
    aborted = 0;
    refused = 0;
    open_conns = 0;
    peak_open = 0;
    latencies = [];
    first_done = -1L;
    last_done = -1L;
    next_arrival = 0L;
    transitions = 0;
  }

let remaining t = t.total - t.started
let resolved t = t.completed + t.failed + t.aborted
let finished t = t.started >= t.total && resolved t >= t.total

let drop_conn t (c : client) ~now ~abortive =
  (match c.conn with
  | Some conn ->
    if abortive then Conn.abort conn ~now else Conn.client_shutdown conn ~now;
    t.open_conns <- t.open_conns - 1
  | None -> ());
  c.conn <- None;
  c.left_on_conn <- 0

(* A slot with no budget left goes dormant: open-loop slots park (their
   session is over), closed-loop clients are done for good. *)
let park t (c : client) ~now =
  drop_conn t c ~now ~abortive:false;
  match t.mode with
  | Closed -> c.phase <- Done
  | Open _ ->
    c.phase <- Parked;
    Queue.push c.cid t.parked

let after_resolve t (c : client) ~now =
  if remaining t <= 0 then park t c ~now
  else
    match t.mode with
    | Closed -> c.phase <- Idle now
    | Open _ ->
      (* one session = one connection's worth of requests *)
      if c.conn <> None && c.left_on_conn > 0 then c.phase <- Idle now
      else park t c ~now

let fail_request t (c : client) ~now =
  t.failed <- t.failed + 1;
  Telemetry.Registry.incr g_failures;
  drop_conn t c ~now ~abortive:false;
  after_resolve t c ~now

(* Begin the next request on c's live connection. Returns the new phase
   directly so callers fall through the send path this same step. *)
let begin_request t (c : client) ~now =
  t.started <- t.started + 1;
  Telemetry.Registry.incr g_requests;
  let idx = t.started in
  let req = t.mix.(Util.Prng.int t.rng (Array.length t.mix)) in
  let abort_at =
    if t.abort_every > 0 && idx mod t.abort_every = 0 then
      Stdlib.max 1 (String.length req / 2)
    else -1
  in
  let slow = t.slow_every > 0 && idx mod t.slow_every = 0 in
  let gap = if slow then t.slow_gap else 0L in
  c.left_on_conn <- c.left_on_conn - 1;
  c.phase <- Sending { req; sent = 0; next_at = now; started = now; gap; abort_at }

let conn_dead conn = Conn.is_reset conn

(* ascending insert, dropping duplicates — a parked cid pruned lazily
   may still sit in [active] when its slot re-wakes *)
let rec insert_active cid = function
  | [] -> [ cid ]
  | hd :: tl as l ->
    if cid < hd then cid :: l
    else if cid = hd then l
    else hd :: insert_active cid tl

let inactive (c : client) = match c.phase with Parked | Done -> true | _ -> false

(* One transition attempt for one client; true if anything changed. *)
let rec step_client t (c : client) ~now ~try_connect =
  match c.phase with
  | Done | Parked -> false
  | Idle at when Int64.compare now at < 0 -> false
  | Idle _ -> (
    if remaining t <= 0 then begin
      park t c ~now;
      true
    end
    else
      match c.conn with
      | Some conn when c.left_on_conn > 0 && not (conn_dead conn) ->
        (* keep-alive: reuse the live connection while budget remains *)
        begin_request t c ~now;
        ignore (step_client t c ~now ~try_connect);
        true
      | _ -> (
        (match c.conn with
        | Some _ -> drop_conn t c ~now ~abortive:false
        | None -> ());
        match try_connect () with
        | None ->
          t.refused <- t.refused + 1;
          c.phase <- Idle (Int64.add now t.retry_gap);
          true
        | Some conn ->
          c.conn <- Some conn;
          c.left_on_conn <- t.keepalive;
          t.open_conns <- t.open_conns + 1;
          if t.open_conns > t.peak_open then t.peak_open <- t.open_conns;
          begin_request t c ~now;
          ignore (step_client t c ~now ~try_connect);
          true))
  | Sending s -> (
    match c.conn with
    | None ->
      fail_request t c ~now;
      true
    | Some conn ->
      if conn_dead conn then begin
        (* server aborted us (timeout / handler crash) mid-request *)
        fail_request t c ~now;
        true
      end
      else if s.abort_at >= 0 && s.sent >= s.abort_at then begin
        (* abrupt disconnect: client vanishes mid-request *)
        t.aborted <- t.aborted + 1;
        Telemetry.Registry.incr g_failures;
        drop_conn t c ~now ~abortive:true;
        after_resolve t c ~now;
        true
      end
      else if Int64.compare now s.next_at < 0 then false
      else begin
        (* drain any early server bytes so slow trickles can't wedge on
           a full TX buffer *)
        (match Conn.client_recv conn ~max:4096 with _ -> ());
        let len = String.length s.req in
        let n =
          if Int64.compare s.gap 0L > 0 then 1 (* byte-at-a-time sender *)
          else len - s.sent
        in
        (* an aborting client stops exactly at its abort byte so the
           next transition takes the disconnect branch above *)
        let n =
          if s.abort_at >= 0 then Stdlib.min n (s.abort_at - s.sent) else n
        in
        let chunk = String.sub s.req s.sent n in
        if not (Conn.client_send conn ~now chunk) then begin
          fail_request t c ~now;
          true
        end
        else begin
          let sent = s.sent + n in
          if sent >= len then begin
            Conn.touch conn ~now;
            c.phase <- Awaiting { started = s.started; resp = Buffer.create 64 }
          end
          else
            c.phase <-
              Sending { s with sent; next_at = Int64.add now s.gap };
          true
        end
      end)
  | Awaiting a -> (
    match c.conn with
    | None ->
      fail_request t c ~now;
      true
    | Some conn -> (
      match Conn.client_recv conn ~max:4096 with
      | Conn.Data b ->
        Buffer.add_bytes a.resp b;
        if Bytes.index_opt b '\n' <> None then begin
          let latency = Int64.sub now a.started in
          t.completed <- t.completed + 1;
          Telemetry.Registry.incr g_responses;
          Telemetry.Registry.observe g_latency (Int64.to_int latency);
          t.latencies <- latency :: t.latencies;
          if Int64.compare t.first_done 0L < 0 then t.first_done <- now;
          t.last_done <- now;
          after_resolve t c ~now
        end;
        true
      | Conn.Would_block -> false
      | Conn.Eof | Conn.Closed ->
        (* server went away before a full response *)
        fail_request t c ~now;
        true))

let arrivals t ~now =
  match t.mode with
  | Closed -> false
  | Open { interarrival } ->
    let moved = ref false in
    let continue = ref true in
    while !continue do
      if Int64.compare t.next_arrival now > 0 || remaining t <= 0 then
        continue := false
      else begin
        match Queue.take_opt t.parked with
        | None -> continue := false (* at max concurrency: arrivals stall *)
        | Some cid ->
          let c = t.clients.(cid) in
          (* stale queue entries (slot re-woken some other way) are
             skipped without consuming the arrival *)
          if c.phase = Parked then begin
            c.phase <- Idle t.next_arrival;
            t.active <- insert_active cid t.active;
            t.next_arrival <- Int64.add t.next_arrival interarrival;
            moved := true
          end
      end
    done;
    !moved

let step t ~now ~try_connect =
  let moved = ref (arrivals t ~now) in
  (* sweep only the active set, pruning slots that parked (before this
     step or during their own transitions) as we rebuild the list —
     same ascending-cid visit order as the full array walk, on which
     parked/done slots were no-op transitions *)
  let rec sweep = function
    | [] -> []
    | cid :: rest ->
      let c = t.clients.(cid) in
      if inactive c then sweep rest
      else begin
        (* let a client chain transitions within one step (drain + next
           request), bounded by the phase machine itself *)
        let rec go budget =
          if budget > 0 && step_client t c ~now ~try_connect then begin
            moved := true;
            t.transitions <- t.transitions + 1;
            go (budget - 1)
          end
        in
        go 8;
        if inactive c then sweep rest else cid :: sweep rest
      end
  in
  t.active <- sweep t.active;
  !moved

(* Earliest future cycle at which some client has a scheduled move. *)
let next_event t =
  let best = ref None in
  let consider at =
    match !best with
    | None -> best := Some at
    | Some b -> if Int64.compare at b < 0 then best := Some at
  in
  (match t.mode with
  | Open _ when remaining t > 0 ->
    if not (Queue.is_empty t.parked) then consider t.next_arrival
  | _ -> ());
  List.iter
    (fun cid ->
      match t.clients.(cid).phase with
      | Idle at -> consider at
      | Sending s -> consider s.next_at
      | Parked | Awaiting _ | Done -> ())
    t.active;
  !best

(* Stall-breaker: fail everything outstanding so the pump can report
   instead of spinning. *)
let force_finish t ~now =
  Array.iter
    (fun c ->
      match c.phase with
      | Sending _ | Awaiting _ -> fail_request t c ~now
      | Idle _ -> park t c ~now
      | Parked | Done -> ())
    t.clients;
  t.active <- [];
  (* un-begun budget resolves as failed connect attempts *)
  while t.started < t.total do
    t.started <- t.started + 1;
    t.failed <- t.failed + 1;
    Telemetry.Registry.incr g_failures
  done

type report = {
  sent : int;
  completed : int;
  failed : int;
  aborted : int;
  refused : int;
  peak_open : int;
  latencies : int64 array;  (** completion order *)
  busy_cycles : int64;
      (** virtual cycles between the first and last completion — the
          saturated window, excluding connect ramp-up *)
}

let report t =
  {
    sent = t.started;
    completed = t.completed;
    failed = t.failed;
    aborted = t.aborted;
    refused = t.refused;
    peak_open = t.peak_open;
    latencies = Array.of_list (List.rev t.latencies);
    busy_cycles =
      (if Int64.compare t.first_done 0L < 0 then 0L
       else Int64.sub t.last_done t.first_done);
  }
