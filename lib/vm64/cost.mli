(** Per-instruction cycle model.

    Calibrated against the deltas the paper reports on an i7-4770K
    (Table V and §VI-B): [rdrand] "costs about 340 more CPU cycles";
    the AES path "about 272 more"; plain moves and XORs are
    single-cycle. Absolute magnitudes are a model, but the *ratios*
    between schemes — which is what Table V and Figure 5 compare — are
    preserved. *)

val cycles : Isa.Insn.t -> int

val rdrand_cycles : int
(** Exposed for the Table V calibration note. *)

val pac_cycles : int
(** Latency of one [pac]/[aut] — calibrated to the ~4-cycle QARMA
    estimate Liljestrand et al. use for PA instructions. *)

val aes_encrypt_call_cycles : int
(** Cost charged by the glibc [AES_ENCRYPT_128] helper (10 rounds plus
    key schedule, amortised), matching AES-NI latency on Haswell. *)

val syscall_cycles : int
(** Kernel entry/exit cost, charged by the OS layer per syscall. *)

val fork_cycles : int
(** Address-space clone cost model for [fork]. *)

val builtin_byte_cycles : int
(** Marginal cost per byte for memory-touching glibc builtins
    (memcpy & co): modelled at one byte/cycle. *)

val builtin_base_cycles : int
(** Fixed call overhead of any glibc builtin. *)
