(* A small explicit IR of decoded blocks, sitting between [Tcache]'s
   raw decode and [Compile]'s closure emission. Lowering is structured
   as passes — lift (decode classification), normalize (per-step
   rewrites that preserve the 1:1 retire mapping), fuse (superblock
   concatenation) — so every translation-time decision is a data
   transformation that can be inspected and tested on its own, instead
   of being interleaved with closure construction.

   The invariant every pass preserves: step [i] of the IR retires
   exactly one guest instruction with the decoded cost/callret/next of
   that instruction. Fuel accounting, cycle charging and fault
   attribution in the emitted code all index by step, so any rewrite
   that merges or splits steps would silently corrupt them — rewrites
   that cannot keep the mapping (e.g. cmp+jcc macro-fusion) do not
   belong in this IR. *)

module I = Isa.Insn
module O = Isa.Operand

type uop =
  | Exec of I.t  (* general case: emitted through the per-insn lowering *)
  | Zero of int  (* [xor r, r] zero idiom — gpr index, no operand reads *)
  | Nop_cost  (* architectural no-op that still charges its decoded
                 cost: masked shift count 0, [mov r, r] self-move *)

type step = {
  addr : int64;  (* the instruction's own address *)
  next : int64;  (* fall-through rip *)
  cost : int;  (* static cycle cost (from decode) *)
  callret : bool;  (* charged the per-call tax *)
  sets_rip : bool;  (* the emitted closure writes rip when it returns Running *)
  uop : uop;
}

(* How control leaves the (super)block when the last step retires with
   [Running] — [Stop] exits (hlt/syscall/non-inlined builtin) never
   produce [Running], and [Dynamic] exits (ret, indirect call, symbolic
   targets) leave the successor to be read out of rip at run time. *)
type exit_shape =
  | Jump of int64  (* unconditional static successor — also fall-through *)
  | Branch of { taken : int64; fall : int64 }
  | Dynamic
  | Stop

type part = { block : Tcache.block; start : int }

type t = {
  entry : int64;
  steps : step array;
  exit_ : exit_shape;
  parts : part array;  (* constituent blocks, head first, by step index *)
}

let sets_rip_on_running = function
  | I.Jmp _ | I.Jcc _ | I.Call _ | I.Call_ind _ | I.Ret -> true
  | _ -> false

(* ---- lift: one block, decode facts made explicit ------------------- *)

(* [inlinable name] — the environment can emit the builtin's body
   in-line, so a direct call to it falls through instead of exiting to
   the OS dispatch. *)
let lift ~is_builtin ~inlinable (b : Tcache.block) : t =
  let insns = b.Tcache.insns in
  let n = Array.length insns in
  let steps =
    Array.init n (fun i ->
        {
          addr = (if i = 0 then b.Tcache.bb_start else b.Tcache.nexts.(i - 1));
          next = b.Tcache.nexts.(i);
          cost = b.Tcache.costs.(i);
          callret = b.Tcache.callret.(i);
          sets_rip = sets_rip_on_running insns.(i);
          uop = Exec insns.(i);
        })
  in
  let last = insns.(n - 1) in
  let fall = b.Tcache.nexts.(n - 1) in
  let exit_ =
    match last with
    | I.Jmp (I.Abs a) -> Jump a
    | I.Jcc (_, I.Abs a) -> Branch { taken = a; fall }
    | I.Call (I.Abs a) -> (
      match is_builtin a with
      | Some name -> if inlinable name then Jump fall else Stop
      | None -> Jump a)
    | I.Jmp (I.Sym _) | I.Jcc (_, I.Sym _) | I.Call (I.Sym _) | I.Call_ind _ | I.Ret
      ->
      Dynamic
    | I.Syscall | I.Hlt -> Stop
    (* no terminator: the decoder hit the block cap or an undecodable
       byte; execution falls through to the next address *)
    | _ -> Jump fall
  in
  { entry = b.Tcache.bb_start; steps; exit_; parts = [| { block = b; start = 0 } |] }

(* ---- normalize: per-step strength reduction ------------------------- *)

(* Rewrites must be observationally identical per retired instruction:
   same registers, flags, memory, faults — only the work the closure
   does may shrink. *)
let normalize_step s =
  match s.uop with
  | Exec (I.Bin (I.Xor, O.Reg d, O.Reg sr)) when d = sr ->
    (* zero idiom: result and flags are input-independent *)
    { s with uop = Zero (Isa.Reg.index d) }
  | Exec (I.Shift (_, _, k)) when k land 63 = 0 ->
    (* x86 masked shift count 0: destination and flags untouched *)
    { s with uop = Nop_cost }
  | Exec (I.Mov (O.Reg d, O.Reg sr)) when d = sr ->
    (* self-move: no register, flag or memory effect *)
    { s with uop = Nop_cost }
  | _ -> s

let normalize t = { t with steps = Array.map normalize_step t.steps }

(* ---- def-use: which gprs a step touches, and which run hot ---------- *)

(* Per-step (reads, writes) over gpr indices, from the operand roles of
   the instruction. This drives tier 3's register-caching *heuristic*
   only: correctness there never depends on these sets being tight
   (a step the emitter cannot specialize runs through a spill/reload
   wrapper), so conservative over-approximation is fine — e.g. [Movb]
   register destinations count as read+write (low-byte merge), and
   kernel-visible steps (syscall, builtin calls) contribute nothing
   because the emitter spills everything around them anyway. *)
let step_gprs (s : step) : int list * int list =
  let ri r = Isa.Reg.index r in
  let mem_reads (m : O.mem) =
    let b = match m.O.base with Some r -> [ ri r ] | None -> [] in
    match m.O.index with Some (r, _) -> ri r :: b | None -> b
  in
  let src = function
    | O.Reg r -> [ ri r ]
    | O.Imm _ -> []
    | O.Mem m -> mem_reads m
  in
  (* address registers a destination operand reads / the gpr it writes *)
  let dst_reads = function O.Mem m -> mem_reads m | _ -> [] in
  let dst_writes = function O.Reg r -> [ ri r ] | _ -> [] in
  let rsp = ri Isa.Reg.RSP and rbp = ri Isa.Reg.RBP in
  let rax = ri Isa.Reg.RAX and rdx = ri Isa.Reg.RDX in
  match s.uop with
  | Zero r -> ([], [ r ])
  | Nop_cost -> ([], [])
  | Exec i -> (
    match i with
    | I.Nop | I.Jmp _ | I.Jcc _ | I.Syscall | I.Hlt -> ([], [])
    | I.Rdtsc -> ([], [ rax; rdx ])
    | I.Mov (d, s) | I.Movl (d, s) -> (src s @ dst_reads d, dst_writes d)
    | I.Movb (d, s) ->
      (* reg destination merges the low byte: read-modify-write *)
      (src s @ dst_reads d @ dst_writes d, dst_writes d)
    | I.Lea (r, m) -> (mem_reads m, [ ri r ])
    | I.Push o -> (rsp :: src o, [ rsp ])
    | I.Pop o -> (rsp :: dst_reads o, rsp :: dst_writes o)
    | I.Bin ((I.Cmp | I.Test), d, s) -> (src d @ src s @ dst_reads d, [])
    | I.Bin (_, d, s) -> (src d @ src s @ dst_reads d, dst_writes d)
    | I.Shift (_, o, _) | I.Neg o | I.Not o ->
      (src o @ dst_reads o, dst_writes o)
    | I.Call _ -> ([ rsp ], [ rsp ])
    | I.Call_ind o -> (rsp :: src o, [ rsp ])
    | I.Ret -> ([ rsp ], [ rsp ])
    | I.Leave -> ([ rbp ], [ rsp; rbp ])
    | I.Setcc (_, r) -> ([], [ ri r ])
    | I.Rdrand r -> ([], [ ri r ])
    | I.Pac (d, m) | I.Aut (d, m) -> ([ ri d; ri m ], [ ri d ])
    | I.Movq_to_xmm (_, r) | I.Pinsrq_high (_, r) -> ([ ri r ], [])
    | I.Movq_from_xmm (r, _) -> ([], [ ri r ])
    | I.Movhps_load (_, m) | I.Movdqu_load (_, m) | I.Pcmpeq128 (_, m) ->
      (mem_reads m, [])
    | I.Movq_store (m, _) | I.Movdqu_store (m, _) -> (mem_reads m, [])
    | I.Aesenc _ | I.Aesenclast _ -> ([], []))

(* The translation's hot gprs, most-accessed first, capped at [limit].
   A register only earns a slot when caching pays: entry reload + exit
   spill cost two array accesses, so it must be touched at least three
   times. Ties break toward the lower register index, so the plan is a
   pure function of the steps (determinism across runs and domains). *)
let cache_plan ?(limit = 2) t : int array =
  let counts = Array.make 16 0 in
  Array.iter
    (fun s ->
      let reads, writes = step_gprs s in
      List.iter (fun r -> counts.(r) <- counts.(r) + 1) reads;
      List.iter (fun r -> counts.(r) <- counts.(r) + 1) writes)
    t.steps;
  let ranked =
    List.init 16 (fun r -> r)
    |> List.filter (fun r -> counts.(r) >= 3)
    |> List.sort (fun a b ->
           if counts.(a) <> counts.(b) then compare counts.(b) counts.(a)
           else compare a b)
  in
  let rec take k = function
    | r :: tl when k > 0 -> r :: take (k - 1) tl
    | _ -> []
  in
  Array.of_list (take limit ranked)

(* ---- fuse: superblock concatenation --------------------------------- *)

let jump_target t = match t.exit_ with Jump a -> Some a | _ -> None

(* Precondition (checked): [a] exits with an unconditional static jump
   to [b]'s entry, so the concatenation retires exactly the same
   instruction stream. Control instructions inside the fused run keep
   their [sets_rip] mark: a fuel-boundary stop mid-superblock must not
   overwrite a rip a jmp/call already set. *)
let fuse a b =
  (match jump_target a with
  | Some t when Int64.equal t b.entry -> ()
  | _ -> invalid_arg "Ir.fuse: exit does not reach successor entry");
  let off = Array.length a.steps in
  {
    entry = a.entry;
    steps = Array.append a.steps b.steps;
    exit_ = b.exit_;
    parts =
      Array.append a.parts
        (Array.map (fun p -> { p with start = p.start + off }) b.parts);
  }

let length t = Array.length t.steps
let entries t = Array.map (fun p -> p.block.Tcache.bb_start) t.parts
