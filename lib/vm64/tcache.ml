type block = {
  bb_start : int64;
  insns : Isa.Insn.t array;
  lens : int array;
  costs : int array;
  callret : bool array;
  nexts : int64 array;
  bb_bytes : int;
}

let max_block_insns = 64

let is_callret = function
  | Isa.Insn.Call _ | Isa.Insn.Call_ind _ | Isa.Insn.Ret -> true
  | _ -> false

let make_block ~start pairs =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Tcache.make_block: empty block";
  let insns = Array.map fst pairs in
  let lens = Array.map snd pairs in
  let costs = Array.map Cost.cycles insns in
  let callret = Array.map is_callret insns in
  let nexts = Array.make n 0L in
  let addr = ref start in
  for i = 0 to n - 1 do
    addr := Int64.add !addr (Int64.of_int lens.(i));
    nexts.(i) <- !addr
  done;
  {
    bb_start = start;
    insns;
    lens;
    costs;
    callret;
    nexts;
    bb_bytes = Int64.to_int (Int64.sub !addr start);
  }

(* Lazy copy-on-write clone: fork children alias the parent's block
   table until either side first mutates it (new decode or
   invalidation), at which point the mutating side materialises a
   private copy. Block records themselves are immutable, so the copy is
   shallow. For the fork-server attack pattern — children execute the
   parent's already-warm text and never patch it — no copy is ever
   paid. *)
type t = {
  mutable blocks : (int64, block) Hashtbl.t;
  mutable private_table : bool;  (* sole owner of [blocks]; safe to mutate *)
}

(* Fork-path telemetry (process-wide; campaigns fan across domains). *)
let g_clones = Atomic.make 0
let g_blocks_shared = Atomic.make 0
let g_materialised = Atomic.make 0

let counters () =
  (Atomic.get g_clones, Atomic.get g_blocks_shared, Atomic.get g_materialised)

let reset_counters () =
  Atomic.set g_clones 0;
  Atomic.set g_blocks_shared 0;
  Atomic.set g_materialised 0

let create () = { blocks = Hashtbl.create 256; private_table = true }

let clone t =
  t.private_table <- false;
  Atomic.incr g_clones;
  ignore (Atomic.fetch_and_add g_blocks_shared (Hashtbl.length t.blocks));
  { blocks = t.blocks; private_table = false }

let is_shared t = not t.private_table

(* Break table sharing before the first mutation, preserving the
   per-clone isolation guarantee: a patch + invalidation (or a fresh
   decode) in one address space can never leak into a relative. *)
let own t =
  if not t.private_table then begin
    t.blocks <- Hashtbl.copy t.blocks;
    t.private_table <- true;
    Atomic.incr g_materialised
  end

let find t rip = Hashtbl.find_opt t.blocks rip

let add t block =
  own t;
  Hashtbl.replace t.blocks block.bb_start block

let invalidate_range t ~addr ~len =
  if len > 0 then begin
    let lo = addr and hi = Int64.add addr (Int64.of_int len) in
    let stale =
      Hashtbl.fold
        (fun start b acc ->
          let b_end = Int64.add b.bb_start (Int64.of_int b.bb_bytes) in
          (* overlap: [bb_start, b_end) ∩ [lo, hi) ≠ ∅ *)
          if Int64.compare b.bb_start hi < 0 && Int64.compare lo b_end < 0 then
            start :: acc
          else acc)
        t.blocks []
    in
    if stale <> [] then begin
      own t;
      List.iter (Hashtbl.remove t.blocks) stale
    end
  end

let invalidate_all t =
  if t.private_table then Hashtbl.reset t.blocks
  else begin
    (* dropping everything: a fresh empty table is the copy *)
    t.blocks <- Hashtbl.create 16;
    t.private_table <- true
  end

let stats t =
  Hashtbl.fold (fun _ b (nb, ni) -> (nb + 1, ni + Array.length b.insns)) t.blocks (0, 0)
