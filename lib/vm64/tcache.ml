type block = {
  bb_start : int64;
  insns : Isa.Insn.t array;
  lens : int array;
  costs : int array;
  callret : bool array;
  nexts : int64 array;
  bb_bytes : int;
  anchor : bytes array;
      (* page payload objects the block was decoded from, one per page
         of [bb_start, bb_start + bb_bytes). A hit is only valid while
         each page still holds the same payload *object* (physical
         equality): CoW never mutates an aliased payload in place, so
         identity implies the decoded bytes are unchanged. An empty
         anchor (test-built blocks) is always valid. *)
  mutable compiled : Compiled.slot;
  mutable fused_ranges : (int64 * int) array;
      (* extra [addr, addr+len) text extents covered by a superblock
         stored in [compiled] (tier 2 fuses successor blocks into the
         head block's slot). Invalidation treats them like the block's
         own bytes: patching ANY constituent must drop the head entry,
         or a private-page in-place patch would leave a stale fused
         translation reachable whose anchors still pass. Lives on the
         (fork-shared) record so every relative's invalidate sees it. *)
}

let max_block_insns = 64

let is_callret = function
  | Isa.Insn.Call _ | Isa.Insn.Call_ind _ | Isa.Insn.Ret -> true
  | _ -> false

let make_block ?(anchor = [||]) ~start pairs =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Tcache.make_block: empty block";
  let insns = Array.map fst pairs in
  let lens = Array.map snd pairs in
  let costs = Array.map Cost.cycles insns in
  let callret = Array.map is_callret insns in
  let nexts = Array.make n 0L in
  let addr = ref start in
  for i = 0 to n - 1 do
    addr := Int64.add !addr (Int64.of_int lens.(i));
    nexts.(i) <- !addr
  done;
  {
    bb_start = start;
    insns;
    lens;
    costs;
    callret;
    nexts;
    bb_bytes = Int64.to_int (Int64.sub !addr start);
    anchor;
    compiled = Compiled.Not_compiled;
    fused_ranges = [||];
  }

(* The cached block is only valid for a given address space while every
   page it was decoded from still holds the same payload object; CoW
   never mutates an aliased payload in place, so physical identity
   implies byte identity. This is what lets fork relatives share one
   table even as each publishes new decodes into it, and what lets
   tier-2 chain links jump straight into a successor's translation. *)
let anchor_valid mem b =
  let a = b.anchor in
  let n = Array.length a in
  n = 0
  ||
  let ok = ref true in
  for i = 0 to n - 1 do
    let addr = Int64.add b.bb_start (Int64.of_int (i * Memory.page_size)) in
    (match Memory.code_window mem addr with
    | Some (payload, _) -> if payload != Array.unsafe_get a i then ok := false
    | None -> ok := false)
  done;
  !ok

(* Lazy copy-on-write clone: fork children alias the parent's block
   table until either side first mutates it (new decode or
   invalidation), at which point the mutating side materialises a
   private copy. Block records themselves are immutable, so the copy is
   shallow. For the fork-server attack pattern — children execute the
   parent's already-warm text and never patch it — no copy is ever
   paid. *)
(* Execution-path telemetry: one record per clone family (children
   share the parent's, so the numbers survive reaping), mirroring
   [Memory.family_stats]. *)
type exec_stats = {
  mutable hits : int;  (* block lookups served from the cache *)
  mutable misses : int;  (* lookups that forced a decode *)
  mutable compiles : int;  (* blocks translated by the closure tier *)
  mutable invalidated : int;  (* cached blocks dropped by invalidation *)
  mutable chains : int;  (* tier-2 exit links patched to a successor *)
  mutable superblocks : int;  (* hot chains fused into one translation *)
  mutable chain_hops : int;  (* dispatcher returns avoided via a link *)
}

type t = {
  mutable blocks : (int64, block) Hashtbl.t;
  mutable private_table : bool;  (* sole owner of [blocks]; safe to mutate *)
  mutable epoch : int;
      (* bumped whenever invalidation drops anything from THIS space's
         table. Tier-2 chain links record the (space, epoch) they were
         resolved under and die on mismatch — the anchor cannot catch an
         in-place patch of a private page, the epoch can. *)
  xstats : exec_stats;
}

(* Fork-path telemetry (process-wide; campaigns fan across domains).
   These fire once per clone/materialise, so registry counters (shared
   atomics) are cheap here. *)
let metric_clones = "vm.tcache.clones"
let metric_blocks_shared = "vm.tcache.blocks_shared"
let metric_tables_materialised = "vm.tcache.tables_materialised"

let g_clones = Telemetry.Registry.counter metric_clones
let g_blocks_shared = Telemetry.Registry.counter metric_blocks_shared
let g_materialised = Telemetry.Registry.counter metric_tables_materialised

(* Execution-path totals fire on EVERY block dispatch, where a shared
   atomic would bounce cache lines between domains (measured: ~3x
   wall-clock on a 4-domain campaign). Instead each family registers
   its stats record once at [create] and the process totals are folded
   over the family registry on demand; the fold is published to the
   telemetry registry as the [vm.tcache.hits/misses/compiles/
   invalidated] metric group. Per-family counts are independent of
   [--jobs] scheduling, so the sums are too; they are only read after
   worker domains join (Domain.join gives the happens-before edge). *)
let registry : exec_stats list ref = ref []
let registry_mu = Mutex.create ()

let fold_exec () =
  Mutex.lock registry_mu;
  let fams = !registry in
  Mutex.unlock registry_mu;
  List.fold_left
    (fun acc (x : exec_stats) ->
      {
        hits = acc.hits + x.hits;
        misses = acc.misses + x.misses;
        compiles = acc.compiles + x.compiles;
        invalidated = acc.invalidated + x.invalidated;
        chains = acc.chains + x.chains;
        superblocks = acc.superblocks + x.superblocks;
        chain_hops = acc.chain_hops + x.chain_hops;
      })
    {
      hits = 0;
      misses = 0;
      compiles = 0;
      invalidated = 0;
      chains = 0;
      superblocks = 0;
      chain_hops = 0;
    }
    fams

let metric_hits = "vm.tcache.hits"
let metric_misses = "vm.tcache.misses"
let metric_compiles = "vm.tcache.compiles"
let metric_invalidated = "vm.tcache.invalidated"
let metric_chains = "vm.compile.chains_patched"
let metric_superblocks = "vm.compile.superblocks"
let metric_chain_hops = "vm.compile.dispatch_avoided"

let () =
  Telemetry.Registry.register_group
    ~reset:(fun () ->
      Mutex.lock registry_mu;
      registry := [];
      Mutex.unlock registry_mu)
    [
      (metric_hits, fun () -> (fold_exec ()).hits);
      (metric_misses, fun () -> (fold_exec ()).misses);
      (metric_compiles, fun () -> (fold_exec ()).compiles);
      (metric_invalidated, fun () -> (fold_exec ()).invalidated);
      (metric_chains, fun () -> (fold_exec ()).chains);
      (metric_superblocks, fun () -> (fold_exec ()).superblocks);
      (metric_chain_hops, fun () -> (fold_exec ()).chain_hops);
    ]

let create () =
  let xstats =
    {
      hits = 0;
      misses = 0;
      compiles = 0;
      invalidated = 0;
      chains = 0;
      superblocks = 0;
      chain_hops = 0;
    }
  in
  Mutex.lock registry_mu;
  registry := xstats :: !registry;
  Mutex.unlock registry_mu;
  { blocks = Hashtbl.create 256; private_table = true; epoch = 0; xstats }

let clone t =
  t.private_table <- false;
  Telemetry.Registry.incr g_clones;
  Telemetry.Registry.add g_blocks_shared (Hashtbl.length t.blocks);
  { blocks = t.blocks; private_table = false; epoch = 0; xstats = t.xstats }

let is_shared t = not t.private_table

(* Break table sharing before the first mutation, preserving the
   per-clone isolation guarantee: a patch + invalidation (or a fresh
   decode) in one address space can never leak into a relative. *)
let own t =
  if not t.private_table then begin
    t.blocks <- Hashtbl.copy t.blocks;
    t.private_table <- true;
    Telemetry.Registry.incr g_materialised
  end

let find t rip = Hashtbl.find_opt t.blocks rip

(* Hit/miss accounting is driven by {!Exec.fetch_block}, which decides
   hit-ness only after validating the block's anchor — a cached entry
   whose pages have moved on counts as a miss. *)
let note_hit t = t.xstats.hits <- t.xstats.hits + 1
let note_miss t = t.xstats.misses <- t.xstats.misses + 1
let note_compile t = t.xstats.compiles <- t.xstats.compiles + 1
let note_chain t = t.xstats.chains <- t.xstats.chains + 1
let note_superblock t = t.xstats.superblocks <- t.xstats.superblocks + 1
let note_chain_hop t = t.xstats.chain_hops <- t.xstats.chain_hops + 1
let epoch t = t.epoch

(* [publish]: insert into the table *without* breaking fork sharing.
   Sound only because hits re-validate the block's anchor: a relative
   whose page payloads differ from the publisher's treats the entry as
   a miss and decodes its own. The caller asserts publishability (every
   anchored payload is CoW-aliased, so the bytes the block was decoded
   from are the ones relatives currently see); publishing is what lets
   one fork child's decode+translation of the hot service path be
   reused by every later child in the family instead of being torn
   down with the child. Without [publish], the table is privatised
   first, exactly as before. *)
let add ?(publish = false) t block =
  if not publish then own t;
  Hashtbl.replace t.blocks block.bb_start block

let invalidate_range t ~addr ~len =
  if len > 0 then begin
    let lo = addr and hi = Int64.add addr (Int64.of_int len) in
    let overlaps start len =
      let e = Int64.add start (Int64.of_int len) in
      Int64.compare start hi < 0 && Int64.compare lo e < 0
    in
    let stale =
      Hashtbl.fold
        (fun start b acc ->
          (* overlap: [bb_start, b_end) ∩ [lo, hi) ≠ ∅ — or any fused
             extent of a superblock stored in this block's slot *)
          if
            overlaps b.bb_start b.bb_bytes
            || Array.exists (fun (a, l) -> overlaps a l) b.fused_ranges
          then start :: acc
          else acc)
        t.blocks []
    in
    if stale <> [] then begin
      own t;
      List.iter (Hashtbl.remove t.blocks) stale;
      let n = List.length stale in
      t.xstats.invalidated <- t.xstats.invalidated + n;
      t.epoch <- t.epoch + 1
    end
  end

let invalidate_all t =
  let n = Hashtbl.length t.blocks in
  if t.private_table then Hashtbl.reset t.blocks
  else begin
    (* dropping everything: a fresh empty table is the copy *)
    t.blocks <- Hashtbl.create 16;
    t.private_table <- true
  end;
  if n > 0 then begin
    t.xstats.invalidated <- t.xstats.invalidated + n;
    t.epoch <- t.epoch + 1
  end

let stats t =
  Hashtbl.fold (fun _ b (nb, ni) -> (nb + 1, ni + Array.length b.insns)) t.blocks (0, 0)

let exec_stats t =
  {
    hits = t.xstats.hits;
    misses = t.xstats.misses;
    compiles = t.xstats.compiles;
    invalidated = t.xstats.invalidated;
    chains = t.xstats.chains;
    superblocks = t.xstats.superblocks;
    chain_hops = t.xstats.chain_hops;
  }
