type block = {
  bb_start : int64;
  insns : Isa.Insn.t array;
  lens : int array;
  costs : int array;
  callret : bool array;
  nexts : int64 array;
  bb_bytes : int;
}

let max_block_insns = 64

let is_callret = function
  | Isa.Insn.Call _ | Isa.Insn.Call_ind _ | Isa.Insn.Ret -> true
  | _ -> false

let make_block ~start pairs =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Tcache.make_block: empty block";
  let insns = Array.map fst pairs in
  let lens = Array.map snd pairs in
  let costs = Array.map Cost.cycles insns in
  let callret = Array.map is_callret insns in
  let nexts = Array.make n 0L in
  let addr = ref start in
  for i = 0 to n - 1 do
    addr := Int64.add !addr (Int64.of_int lens.(i));
    nexts.(i) <- !addr
  done;
  {
    bb_start = start;
    insns;
    lens;
    costs;
    callret;
    nexts;
    bb_bytes = Int64.to_int (Int64.sub !addr start);
  }

type t = { blocks : (int64, block) Hashtbl.t }

let create () = { blocks = Hashtbl.create 256 }

(* Block records are immutable, so a shallow copy of the table is a full
   logical copy: the clone can invalidate freely without affecting the
   parent (and vice versa). *)
let clone t = { blocks = Hashtbl.copy t.blocks }

let find t rip = Hashtbl.find_opt t.blocks rip

let add t block = Hashtbl.replace t.blocks block.bb_start block

let invalidate_range t ~addr ~len =
  if len > 0 then begin
    let lo = addr and hi = Int64.add addr (Int64.of_int len) in
    let stale =
      Hashtbl.fold
        (fun start b acc ->
          let b_end = Int64.add b.bb_start (Int64.of_int b.bb_bytes) in
          (* overlap: [bb_start, b_end) ∩ [lo, hi) ≠ ∅ *)
          if Int64.compare b.bb_start hi < 0 && Int64.compare lo b_end < 0 then
            start :: acc
          else acc)
        t.blocks []
    in
    List.iter (Hashtbl.remove t.blocks) stale
  end

let invalidate_all t = Hashtbl.reset t.blocks

let stats t =
  Hashtbl.fold (fun _ b (nb, ni) -> (nb + 1, ni + Array.length b.insns)) t.blocks (0, 0)
