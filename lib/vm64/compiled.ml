type outcome =
  | Running
  | Builtin of string
  | Syscall_trap
  | Halted
  | Faulted of Fault.t

type slot = ..
type slot += Not_compiled
