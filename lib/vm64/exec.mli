(** The instruction interpreter.

    [step] retires exactly one instruction. Control leaves the
    interpreter in four ways, which the OS layer dispatches on:
    glibc-builtin calls, syscall traps, [hlt], and hardware faults. *)

type outcome =
  | Running  (** instruction retired; rip advanced *)
  | Builtin of string
      (** [call] targeted a glibc slot; rip already points past the call
          and NO return address was pushed — the OS runs the builtin and
          resumes *)
  | Syscall_trap  (** [syscall] retired; number in rax; rip advanced *)
  | Halted  (** [hlt] *)
  | Faulted of Fault.t

type env
(** Immutable execution environment: builtin address resolution. The
    fetch/decode cache lives in {!Cpu.t} (per address space; shared with
    fork children) and assumes text is not modified after loading —
    binary rewriting happens on images, before load. *)

val create_env :
  ?on_retire:(Cpu.t -> Isa.Insn.t -> unit) ->
  is_builtin:(int64 -> string option) ->
  unit ->
  env
(** [on_retire] is invoked after each instruction's cost is charged and
    before it executes — the hook behind execution tracing. *)

val step : env -> Cpu.t -> Memory.t -> outcome

type run_result =
  | Stopped of outcome  (** a non-[Running] outcome occurred *)
  | Out_of_fuel

val run : ?max_insns:int -> env -> Cpu.t -> Memory.t -> run_result
(** Step until something interesting happens. [max_insns] defaults to
    100 million — a runaway-loop backstop, not a tuning knob. *)
