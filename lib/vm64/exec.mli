(** The instruction interpreter and tier dispatcher.

    [step] retires exactly one instruction. Control leaves the
    interpreter in four ways, which the OS layer dispatches on:
    glibc-builtin calls, syscall traps, [hlt], and hardware faults.

    Untraced runs execute through the {!Compile} closure tier whenever
    the current block has a translation (building one on first
    execution); traced runs ([on_retire]) and blocks the tier rejects
    fall back to per-instruction interpretation. The two tiers are
    observationally identical — registers, flags, memory, cycle counts,
    RNG draws, fault identity and fuel accounting — so which one ran is
    invisible to everything above {!Exec}. *)

type outcome = Compiled.outcome =
  | Running  (** instruction retired; rip advanced *)
  | Builtin of string
      (** [call] targeted a glibc slot; rip already points past the call
          and NO return address was pushed — the OS runs the builtin and
          resumes *)
  | Syscall_trap  (** [syscall] retired; number in rax; rip advanced *)
  | Halted  (** [hlt] *)
  | Faulted of Fault.t

type env
(** Immutable execution environment: builtin address resolution. The
    basic-block translation cache lives in {!Cpu.t} (per address space;
    fork children start from a copy) and assumes text is not modified
    after loading — binary rewriting happens on images, before load.
    Patching loaded text requires {!Cpu.invalidate_decode} (or
    [Os.Process.patch_text], which does both) before re-execution;
    invalidation also drops the affected blocks' closure translations. *)

val create_env :
  ?on_retire:(Cpu.t -> Isa.Insn.t -> unit) ->
  ?inline_builtin:(string -> Compile.builtin_fn option) ->
  is_builtin:(int64 -> string option) ->
  unit ->
  env
(** [on_retire] is invoked after each instruction's cost is charged and
    before it executes — the hook behind execution tracing. Supplying it
    pins execution to the interpreter tier.

    [inline_builtin] (default: none) gives tier 2 permission to run the
    named builtin cores in line at direct call sites instead of exiting
    with [Builtin]. Only supply cores whose effects — memory writes,
    cycle charges, rax, fault behaviour — are exactly what the OS
    dispatcher would have produced; with inlining on, a [Stopped
    (Builtin _)] for those names simply never surfaces from {!run}. *)

val step : env -> Cpu.t -> Memory.t -> outcome

val step_block : env -> Cpu.t -> Memory.t -> max_insns:int -> outcome * int
(** Retire up to [max_insns] instructions from the pre-decoded basic
    block at rip (decoding and caching it on a miss), returning the last
    outcome and the number of instructions retired. The count is 0
    exactly when the initial fetch faulted (unmapped or undecodable
    rip) — nothing retired, nothing charged; otherwise it is >= 1.
    Cycle charging, taxes, and the [on_retire] hook are applied exactly
    as by [step] — a run dispatched block-at-a-time retires the same
    instruction stream with the same cycle counts as one dispatched with
    [step]. [max_insns] must be positive. *)

type run_result =
  | Stopped of outcome  (** a non-[Running] outcome occurred *)
  | Out_of_fuel

val run : ?max_insns:int -> env -> Cpu.t -> Memory.t -> run_result
(** Step until something interesting happens. [max_insns] defaults to
    100 million — a runaway-loop backstop, not a tuning knob. *)
