(** Basic-block translation cache.

    The interpreter decodes straight-line instruction runs once and
    stores them as flat arrays with precomputed byte lengths and cycle
    costs; {!Exec} then dispatches through the arrays instead of
    re-hashing the rip on every instruction.

    A block starts at the address execution first entered it (jump
    target, call target, or fall-through from a fuel boundary) and ends
    at the first control-transfer instruction, at a decode failure (the
    fault is re-discovered on the next fetch), or at {!max_block_insns}.
    Overlapping blocks are allowed: jumping into the middle of an
    already-cached run simply decodes a second block starting there.

    Each address space owns one cache. [clone] (the fork primitive) is
    lazy copy-on-write: parent and child alias one block table until
    either side first mutates it (new decode or invalidation), which
    materialises a private shallow copy first — so invalidation in one
    address space can never expose a relative to stale decodes, and a
    fork child that only re-executes the parent's warm text never pays
    a table copy. Cached blocks assume the underlying text does not
    change; any patch to loaded code must go through
    {!invalidate_range} (see [Cpu.invalidate_decode] /
    [Os.Process.patch_text]). *)

type block = {
  bb_start : int64;  (** address of the first instruction *)
  insns : Isa.Insn.t array;
  lens : int array;  (** encoded byte length per instruction *)
  costs : int array;  (** {!Cost.cycles} per instruction *)
  callret : bool array;  (** instruction is charged the per-call tax *)
  nexts : int64 array;  (** fall-through rip per instruction *)
  bb_bytes : int;  (** total bytes of text the block covers *)
}

val max_block_insns : int

val make_block : start:int64 -> (Isa.Insn.t * int) array -> block
(** [make_block ~start pairs] precomputes the dispatch arrays from
    decoded [(insn, byte_length)] pairs. [pairs] must be non-empty. *)

type t

val create : unit -> t

val clone : t -> t
(** Logically independent table over the same (immutable) block
    records. Physically shared until first mutation on either side. *)

val is_shared : t -> bool
(** The table is currently aliased with a fork relative — for tests
    and the fork-path telemetry. *)

val find : t -> int64 -> block option

val add : t -> block -> unit

val invalidate_range : t -> addr:int64 -> len:int -> unit
(** Drop every block overlapping [addr, addr+len). Call after patching
    loaded text, before executing it. *)

val invalidate_all : t -> unit

val stats : t -> int * int
(** [(blocks, instructions)] currently cached — for tests and debug. *)

val counters : unit -> int * int * int
(** Process-wide fork-path telemetry since {!reset_counters}:
    [(clones, blocks_shared_at_clone, tables_materialised)]. *)

val reset_counters : unit -> unit
