(** Basic-block translation cache.

    The interpreter decodes straight-line instruction runs once and
    stores them as flat arrays with precomputed byte lengths and cycle
    costs; {!Exec} then dispatches through the arrays instead of
    re-hashing the rip on every instruction.

    A block starts at the address execution first entered it (jump
    target, call target, or fall-through from a fuel boundary) and ends
    at the first control-transfer instruction, at a decode failure (the
    fault is re-discovered on the next fetch), or at {!max_block_insns}.
    Overlapping blocks are allowed: jumping into the middle of an
    already-cached run simply decodes a second block starting there.

    Each address space owns one cache. [clone] (the fork primitive) is
    lazy copy-on-write: parent and child alias one block table until
    either side first mutates it (new decode or invalidation), which
    materialises a private shallow copy first — so invalidation in one
    address space can never expose a relative to stale decodes, and a
    fork child that only re-executes the parent's warm text never pays
    a table copy. Cached blocks assume the underlying text does not
    change; any patch to loaded code must go through
    {!invalidate_range} (see [Cpu.invalidate_decode] /
    [Os.Process.patch_text]). *)

type block = {
  bb_start : int64;  (** address of the first instruction *)
  insns : Isa.Insn.t array;
  lens : int array;  (** encoded byte length per instruction *)
  costs : int array;  (** {!Cost.cycles} per instruction *)
  callret : bool array;  (** instruction is charged the per-call tax *)
  nexts : int64 array;  (** fall-through rip per instruction *)
  bb_bytes : int;  (** total bytes of text the block covers *)
  anchor : bytes array;
      (** the page payload objects the block was decoded from, one per
          covered page. {!Exec} re-validates them (physical equality
          against the space's current payloads) on every hit: CoW never
          mutates an aliased payload in place, so identity implies the
          decoded bytes are unchanged — which is what makes publishing
          blocks into a fork-shared table sound. Empty = always valid
          (test-built blocks). *)
  mutable compiled : Compiled.slot;
      (** closure-tier translation, written by {!Exec}/{!Compile};
          deterministic, so clones aliasing this record share compiled
          code for free. Starts [Not_compiled]; dropping the block drops
          the translation, which is how invalidation reaches the compile
          tier. Tier 2 may later replace a [Code] slot with a superblock
          that subsumes it (same entry semantics, more instructions). *)
  mutable fused_ranges : (int64 * int) array;
      (** extra [(addr, len)] text extents covered by a superblock
          stored in [compiled] — the fused successors' bytes.
          {!invalidate_range} treats them like the block's own range, so
          patching any constituent drops the head entry. On the shared
          record, so every fork relative's invalidation sees it. *)
}

val max_block_insns : int

val anchor_valid : Memory.t -> block -> bool
(** The block is still decodable-as-cached in this address space: every
    covered page holds the same payload {e object} it was decoded from
    (physical equality — CoW never mutates an aliased payload in
    place). Empty anchor (test-built blocks) is always valid. Checked by
    {!Exec.fetch_block} on every hit and by tier-2 chain links before
    jumping into a successor's translation. *)

val make_block : ?anchor:bytes array -> start:int64 -> (Isa.Insn.t * int) array -> block
(** [make_block ~start pairs] precomputes the dispatch arrays from
    decoded [(insn, byte_length)] pairs. [pairs] must be non-empty.
    [anchor] defaults to empty (always valid). *)

type t

val create : unit -> t

val clone : t -> t
(** Logically independent table over the same (immutable) block
    records. Physically shared until first mutation on either side. *)

val is_shared : t -> bool
(** The table is currently aliased with a fork relative — for tests
    and the fork-path telemetry. *)

val find : t -> int64 -> block option
(** Uncounted lookup. {!Exec.fetch_block} validates the block's anchor
    before treating the result as a hit. *)

val note_hit : t -> unit
(** Record one anchor-valid cache hit. *)

val note_miss : t -> unit
(** Record one lookup that forced a decode (absent or stale entry). *)

val note_compile : t -> unit
(** Record one closure-tier block translation. *)

val note_chain : t -> unit
(** Record one tier-2 exit link patched to a successor's translation. *)

val note_superblock : t -> unit
(** Record one hot chain fused into a superblock translation. *)

val note_chain_hop : t -> unit
(** Record one block-to-block transfer served by a chain link (a return
    to the dispatch loop avoided). *)

val epoch : t -> int
(** Invalidation epoch of this address space: bumped every time
    invalidation drops anything from the table. Tier-2 chain links
    record the (space, epoch) they were resolved under and are dead on
    mismatch — this is what unlinks stale successors after
    [patch_text], which mutates private pages in place where the anchor
    check cannot see it. *)

val add : ?publish:bool -> t -> block -> unit
(** Insert a block. With [~publish:true] the insert goes into the
    (possibly fork-shared) table without materialising a private copy —
    only sound when every page in the block's anchor is CoW-aliased
    (see {!Memory.payload_shared}), so relatives see exactly the bytes
    the block was decoded from; anchor re-validation on hit protects
    them once the pages diverge. Default is the private-table insert
    (materialise, then add). *)

val invalidate_range : t -> addr:int64 -> len:int -> unit
(** Drop every block overlapping [addr, addr+len). Call after patching
    loaded text, before executing it. *)

val invalidate_all : t -> unit

val stats : t -> int * int
(** [(blocks, instructions)] currently cached — for tests and debug. *)

val metric_clones : string
val metric_blocks_shared : string
val metric_tables_materialised : string
val metric_hits : string
val metric_misses : string
val metric_compiles : string
val metric_invalidated : string
val metric_chains : string
val metric_superblocks : string
val metric_chain_hops : string
(** Names under which the process-wide tcache/compile-tier totals are
    published to {!Telemetry.Registry}. clones/blocks_shared/
    tables_materialised are plain counters; the rest form one
    fold-metric group (resetting any resets all). Read process-wide
    totals with [Telemetry.Registry.read_int] on these names. *)

(** Execution-path telemetry (lookups, decodes, compile-tier activity),
    [Memory.family_stats]-style. *)
type exec_stats = {
  mutable hits : int;  (** block lookups served from the cache *)
  mutable misses : int;  (** lookups that forced a decode *)
  mutable compiles : int;  (** blocks translated by the closure tier *)
  mutable invalidated : int;  (** cached blocks dropped by invalidation *)
  mutable chains : int;  (** tier-2 exit links patched to a successor *)
  mutable superblocks : int;  (** hot chains fused into one translation *)
  mutable chain_hops : int;  (** dispatcher returns avoided via a link *)
}

val exec_stats : t -> exec_stats
(** Snapshot for this cache's clone family (shared with fork relatives,
    surviving their reaping). *)
