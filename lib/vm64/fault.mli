(** Hardware-level faults raised by the simulated machine. *)

type t =
  | Segfault of int64  (** access to an unmapped address *)
  | Bad_instruction of int64 * string  (** undecodable bytes at rip *)
  | Stack_overflow_fault of int64  (** push/call below the stack guard page *)

exception Trap of t
(** Raised by memory and execution primitives; the OS layer converts it
    into process termination. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
