(** Byte-addressable paged memory for one simulated address space.

    Pages must be explicitly mapped (the OS layer maps text, data, stack
    and TLS regions); any access to an unmapped address raises
    [Fault.Trap (Segfault _)] — which is precisely the signal the
    byte-by-byte attacker observes as a child crash. *)

type t

val create : unit -> t

val page_size : int

val map : t -> addr:int64 -> len:int -> unit
(** Map (zero-filled) all pages covering [addr, addr+len). Already
    mapped pages are left untouched. *)

val is_mapped : t -> int64 -> bool

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit

val read_u64 : t -> int64 -> int64
(** Little-endian, no alignment requirement. *)

val write_u64 : t -> int64 -> int64 -> unit

val read_u32 : t -> int64 -> int64
(** Zero-extended 32-bit load. *)

val write_u32 : t -> int64 -> int64 -> unit

val read_bytes : t -> int64 -> int -> bytes
val write_bytes : t -> int64 -> bytes -> unit

val clone : t -> t
(** Deep copy — the [fork] primitive's address-space clone. *)

val mapped_bytes : t -> int
(** Total bytes currently mapped, for the memory-usage columns of
    Table IV. *)
