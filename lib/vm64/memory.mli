(** Byte-addressable paged memory for one simulated address space, with
    copy-on-write fork.

    Pages must be explicitly mapped (the OS layer maps text, data, stack
    and TLS regions); any access to an unmapped address raises
    [Fault.Trap (Segfault _)] — which is precisely the signal the
    byte-by-byte attacker observes as a child crash.

    {!clone} (the [fork] primitive) is O(chunk table), not O(pages or
    bytes): pages live in fixed 64-page chunks of a flat array, the
    child aliases the parent's chunk records wholesale, and per-page
    records are re-materialised lazily, chunk at a time, on the first
    write in either space. The first write to a page whose payload may
    be aliased then breaks the sharing with a private copy (see
    DESIGN.md §5 for the invariants). Reads never copy. *)

type t

val create : unit -> t

val page_size : int

val map : t -> addr:int64 -> len:int -> unit
(** Map (zero-filled) all pages covering [addr, addr+len). Already
    mapped pages are left untouched. *)

val is_mapped : t -> int64 -> bool

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit

val read_u64 : t -> int64 -> int64
(** Little-endian, no alignment requirement. *)

val write_u64 : t -> int64 -> int64 -> unit

val read_u32 : t -> int64 -> int64
(** Zero-extended 32-bit load. *)

val write_u32 : t -> int64 -> int64 -> unit

val read_bytes : t -> int64 -> int -> bytes
val write_bytes : t -> int64 -> bytes -> unit

val code_window : t -> int64 -> (bytes * int) option
(** [(payload, offset)] of the page under the address, or [None] when
    unmapped — the zero-copy instruction-fetch window. The payload is
    the live (possibly CoW-shared) page: callers MUST NOT write through
    it, and must not hold it across a [write_*] to the same page (a CoW
    break swaps the payload). Valid from [offset] to the page end. *)

val cstr_len : t -> int64 -> int
(** Bytes before the first NUL at the address (page-aware strlen).
    Faults at the first unmapped byte reached before a NUL, exactly
    where a byte-at-a-time scan would. *)

val payload_shared : t -> int64 -> bool
(** The page under the address is mapped and its payload may be aliased
    by a fork relative (i.e. the bytes this space reads there are the
    bytes relatives read, until someone writes). This is the publish
    guard for {!Tcache.add}: a block decoded entirely from shared
    payloads describes bytes every current relative agrees on. *)

val clone : t -> t
(** The [fork] primitive's address-space clone. Copy-on-write at two
    levels: the child aliases the parent's chunk records (O(chunks)
    work), and page payloads stay shared until first write in either
    space. Observable behaviour is identical to a deep copy — writes in
    either space never become visible in the other. *)

val mapped_bytes : t -> int
(** Total bytes of mapped address space (resident + shared), for the
    memory-usage columns of Table IV. *)

val resident_bytes : t -> int
(** Bytes whose page payload this space privately owns. Summing
    [mapped_bytes] over a fork family double-counts aliased pages;
    parent [mapped_bytes] + children [resident_bytes] does not. *)

val shared_bytes : t -> int
(** Bytes whose page payload may be aliased by a relative
    ([mapped_bytes t = resident_bytes t + shared_bytes t]). *)

(** Fork-path telemetry. *)
type family_stats = {
  mutable clones : int;  (** {!clone} calls *)
  mutable pages_aliased : int;  (** pages shared instead of copied at clone *)
  mutable cow_breaks : int;  (** shared pages privatised by a first write *)
}

val family_stats : t -> family_stats
(** Counters for this space's clone family (shared by parent and all
    descendants, so they survive children being reaped). Returns a
    snapshot. *)

val metric_clones : string
val metric_pages_aliased : string
val metric_cow_breaks : string
(** Names under which the process-wide fork-path totals are published to
    {!Telemetry.Registry} (one metric group; resetting any of them
    resets all three). Read process-wide totals with
    [Telemetry.Registry.read_int] on these names. *)
