type t =
  | Segfault of int64
  | Bad_instruction of int64 * string
  | Stack_overflow_fault of int64

exception Trap of t

let to_string = function
  | Segfault addr -> Printf.sprintf "segmentation fault at 0x%Lx" addr
  | Bad_instruction (addr, msg) ->
    Printf.sprintf "illegal instruction at 0x%Lx: %s" addr msg
  | Stack_overflow_fault addr -> Printf.sprintf "stack overflow at 0x%Lx" addr

let pp fmt f = Format.pp_print_string fmt (to_string f)

let equal a b =
  match (a, b) with
  | Segfault x, Segfault y -> Int64.equal x y
  | Bad_instruction (x, _), Bad_instruction (y, _) -> Int64.equal x y
  | Stack_overflow_fault x, Stack_overflow_fault y -> Int64.equal x y
  | (Segfault _ | Bad_instruction _ | Stack_overflow_fault _), _ -> false
