(** Architectural state of one simulated hardware thread. *)

type flags = {
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
}

type t = {
  gprs : int64 array;  (** 16 general-purpose registers, by {!Isa.Reg.index} *)
  xmms : (int64 * int64) array;  (** 16 XMM registers as (lo, hi) qwords *)
  mutable rip : int64;
  flags : flags;
  mutable fs_base : int64;  (** TLS segment base *)
  mutable cycles : int64;  (** retired cycle count; also feeds [rdtsc] *)
  mutable insn_tax : int;
      (** extra cycles charged per instruction — models dynamic binary
          translation (PIN) overhead for the DynaGuard baseline *)
  mutable call_tax : int;
      (** extra cycles charged per call/ret — models the trampoline cost
          of static binary rewriting (the DCR deployment) *)
  mutable pac_key : int64;
      (** per-process pointer-authentication key behind the [pac]/[aut]
          instructions. Installed at spawn for pac-canary processes,
          inherited verbatim by {!clone} (fork children must still
          authenticate parent-signed frames) and {!snapshot}. *)
  rng : Util.Prng.t;  (** entropy source behind [rdrand] *)
  tcache : Tcache.t;
      (** per-address-space basic-block translation cache; fork children
          start from the parent's decoded blocks, lazily copied on the
          first mutation in either space (see {!Tcache.clone}), never
          shared across unrelated processes *)
}

val create : ?seed:int64 -> unit -> t

val get : t -> Isa.Reg.t -> int64
val set : t -> Isa.Reg.t -> int64 -> unit

val get_xmm : t -> Isa.Reg.Xmm.t -> int64 * int64
val set_xmm : t -> Isa.Reg.Xmm.t -> int64 * int64 -> unit

val clone : t -> t
(** Deep copy with an independently split RNG — used by [fork] so parent
    and child draw different entropy afterwards (as real [rdrand]
    would). *)

val snapshot : t -> t
(** Deep copy preserving the exact RNG state (unlike {!clone}, which
    splits it). Used by zygote snapshots: a process resumed from a
    snapshot must draw the same [rdrand] stream the frozen original
    would have, so restored runs are bit-identical to cold spawns. The
    translation cache is shared copy-on-mutate, like {!clone}. *)

val add_cycles : t -> int -> unit

(** {2 Pointer-authentication MAC}

    The keyed tag behind the [pac]/[aut] instructions: a 16-bit MAC
    over a value's low 48 bits and a 64-bit modifier, carried in the
    value's high 16 bits (unused VA top bits, as on AArch64). *)

val pac_sign : t -> value:int64 -> modifier:int64 -> int64
(** [pac_sign t ~value ~modifier] replaces the top 16 bits of [value]
    with the tag MAC(pac_key, low48(value), modifier). *)

val pac_auth : t -> value:int64 -> modifier:int64 -> bool
(** Whether [value]'s top 16 bits carry the valid tag for its low 48
    bits under [modifier]. *)

val pac_strip : int64 -> int64
(** Drop the tag bits: the low 48 bits of the value. *)

val invalidate_decode : t -> addr:int64 -> len:int -> unit
(** Drop cached decodes overlapping [addr, addr+len). Must be called
    after patching loaded text and before re-executing it; plain memory
    writes do not invalidate the translation cache. *)

val invalidate_decode_all : t -> unit
