let page_size = 4096
let page_bits = 12

(* Copy-on-write page store over a chunked flat table.

   Pages live in fixed 64-page chunks; a space holds an array of chunk
   records, so address translation is two array loads (no hashing) and
   [clone] — the fork primitive — is O(chunks): copy the top-level
   array and clear both sides' chunk-ownership bytes. Page *records*
   (per-space payload + privacy flag) are then materialised per chunk,
   lazily, on the first mutating access after a clone; until a space
   owns a chunk it only reads through the records, which relatives may
   share. Payloads themselves stay copy-on-write exactly as before: a
   write to a page whose payload may be aliased first replaces it with
   a private copy.

   Invariants:
   - A record reachable through an unowned chunk is never mutated (not
     its payload bytes, not its fields) — every write path calls
     [own_chunk] first, which gives this space fresh records whose
     [private_] flags are cleared (a clone happened since the chunk was
     last owned, so every payload in it is aliased by construction).
   - [no_page] and [empty_chunk] are immutable sentinels, shared by all
     spaces and domains. *)
type page = {
  mutable data : bytes;
  mutable private_ : bool;  (* sole owner of [data]; safe to write in place *)
}

(* Fork-path telemetry, shared by every space in one clone family so the
   numbers survive children being reaped. *)
type family_stats = {
  mutable clones : int;  (* Memory.clone calls in this family *)
  mutable pages_aliased : int;  (* pages shared (not copied) at clone time *)
  mutable cow_breaks : int;  (* shared pages privatised by a write *)
}

(* Process-wide totals fold over a registry of family records instead
   of hammering shared atomics from the clone/CoW hot paths (a shared
   atomic bounced between domains measurably slows [--jobs N]
   campaigns). Per-family counts are independent of scheduling, so the
   sums are too; the bench driver reads them only after worker domains
   join, which gives the happens-before edge for the plain mutable
   fields. The fold is published to the process-wide telemetry registry
   as a metric group under the [metric_*] names below. *)
let registry : family_stats list ref = ref []
let registry_mu = Mutex.create ()

let fold_families () =
  Mutex.lock registry_mu;
  let fams = !registry in
  Mutex.unlock registry_mu;
  List.fold_left
    (fun acc (f : family_stats) ->
      {
        clones = acc.clones + f.clones;
        pages_aliased = acc.pages_aliased + f.pages_aliased;
        cow_breaks = acc.cow_breaks + f.cow_breaks;
      })
    { clones = 0; pages_aliased = 0; cow_breaks = 0 }
    fams

let metric_clones = "vm.mem.clones"
let metric_pages_aliased = "vm.mem.pages_aliased"
let metric_cow_breaks = "vm.mem.cow_breaks"

let () =
  Telemetry.Registry.register_group
    ~reset:(fun () ->
      Mutex.lock registry_mu;
      registry := [];
      Mutex.unlock registry_mu)
    [
      (metric_clones, fun () -> (fold_families ()).clones);
      (metric_pages_aliased, fun () -> (fold_families ()).pages_aliased);
      (metric_cow_breaks, fun () -> (fold_families ()).cow_breaks);
    ]

let chunk_bits = 6
let chunk_pages = 1 lsl chunk_bits (* pages per chunk *)

(* 512 chunks cover the whole fixed guest layout (stack_top is page
   0x7FF0); [map] grows the table if something ever sits higher. *)
let initial_chunks = 512

let no_page = { data = Bytes.create 0; private_ = true }
let empty_chunk : page array = Array.make chunk_pages no_page

type t = {
  mutable top : page array array;  (* chunk index -> page records *)
  mutable owned : Bytes.t;  (* '\001' per chunk: records are private to us *)
  mutable mapped_pages : int;
  family : family_stats;
}

let create () =
  let family = { clones = 0; pages_aliased = 0; cow_breaks = 0 } in
  Mutex.lock registry_mu;
  registry := family :: !registry;
  Mutex.unlock registry_mu;
  {
    top = Array.make initial_chunks empty_chunk;
    owned = Bytes.make initial_chunks '\001';
    mapped_pages = 0;
    family;
  }

let page_of addr = Int64.to_int (Int64.shift_right_logical addr page_bits)
let offset_of addr = Int64.to_int (Int64.logand addr 0xFFFL)

(* Give this space its own records for chunk [c]. The fresh records
   alias the payloads with [private_] cleared: this only runs when the
   chunk is unowned, i.e. after a clone, when every payload in it is
   shared by construction. The old records are left untouched for
   whatever relatives still read through them. *)
let own_chunk t c =
  let ch = Array.unsafe_get t.top c in
  if ch == empty_chunk then t.top.(c) <- Array.make chunk_pages no_page
  else begin
    let fresh = Array.make chunk_pages no_page in
    for i = 0 to chunk_pages - 1 do
      let p = Array.unsafe_get ch i in
      if p != no_page then
        Array.unsafe_set fresh i { data = p.data; private_ = false }
    done;
    t.top.(c) <- fresh
  end;
  Bytes.unsafe_set t.owned c '\001'

let grow t chunks_needed =
  let old = Array.length t.top in
  let n = max chunks_needed (2 * old) in
  let top = Array.make n empty_chunk in
  Array.blit t.top 0 top 0 old;
  let owned = Bytes.make n '\001' in
  Bytes.blit t.owned 0 owned 0 old;
  t.top <- top;
  t.owned <- owned

let map t ~addr ~len =
  if len <= 0 then invalid_arg "Memory.map: nonpositive length";
  let first = page_of addr in
  let last = page_of (Int64.add addr (Int64.of_int (len - 1))) in
  for idx = first to last do
    let c = idx lsr chunk_bits in
    if c >= Array.length t.top then grow t (c + 1);
    if Bytes.unsafe_get t.owned c <> '\001' then own_chunk t c
    else if Array.unsafe_get t.top c == empty_chunk then
      t.top.(c) <- Array.make chunk_pages no_page;
    let ch = Array.unsafe_get t.top c in
    let s = idx land (chunk_pages - 1) in
    if Array.unsafe_get ch s == no_page then begin
      Array.unsafe_set ch s { data = Bytes.make page_size '\000'; private_ = true };
      t.mapped_pages <- t.mapped_pages + 1
    end
  done

(* Record under [addr], or [no_page] if unmapped — never raises. *)
let page_at t addr =
  let idx = page_of addr in
  let c = idx lsr chunk_bits in
  if c >= Array.length t.top || c < 0 then no_page
  else
    Array.unsafe_get (Array.unsafe_get t.top c) (idx land (chunk_pages - 1))

let is_mapped t addr = page_at t addr != no_page

let page_exn t addr =
  let p = page_at t addr in
  if p == no_page then raise (Fault.Trap (Fault.Segfault addr));
  p

(* Read path: the payload as-is, shared or not. *)
let ro_page t addr = (page_exn t addr).data

(* Write path: own the chunk's records, then break payload sharing with
   a private copy on first dirty. An unmapped address faults before any
   sharing is broken (chunk materialisation is invisible: no payload is
   copied and no counter moves). *)
let rw_page t addr =
  let idx = page_of addr in
  let c = idx lsr chunk_bits in
  if c >= Array.length t.top || c < 0 then
    raise (Fault.Trap (Fault.Segfault addr));
  if Bytes.unsafe_get t.owned c <> '\001' then own_chunk t c;
  let p = Array.unsafe_get (Array.unsafe_get t.top c) (idx land (chunk_pages - 1)) in
  if p == no_page then raise (Fault.Trap (Fault.Segfault addr));
  if p.private_ then p.data
  else begin
    let d = Bytes.copy p.data in
    p.data <- d;
    p.private_ <- true;
    t.family.cow_breaks <- t.family.cow_breaks + 1;
    d
  end

(* Decode-path window: the page payload under [addr] plus the offset
   into it, without raising. The caller must treat the payload as
   read-only — handing out the live bytes (shared or not) is exactly
   what makes zero-copy instruction fetch possible; any write through
   it would bypass CoW. *)
let code_window t addr =
  let p = page_at t addr in
  if p == no_page then None else Some (p.data, offset_of addr)

(* The page's payload may be aliased by a fork relative: either the
   whole chunk is still unowned (shared records, shared payloads), or
   our own record has not privatised its payload. *)
let payload_shared t addr =
  let idx = page_of addr in
  let c = idx lsr chunk_bits in
  if c >= Array.length t.top || c < 0 then false
  else begin
    let p = Array.unsafe_get (Array.unsafe_get t.top c) (idx land (chunk_pages - 1)) in
    p != no_page && (Bytes.unsafe_get t.owned c <> '\001' || not p.private_)
  end

let read_u8 t addr = Char.code (Bytes.get (ro_page t addr) (offset_of addr))

let write_u8 t addr v =
  Bytes.set (rw_page t addr) (offset_of addr) (Char.chr (v land 0xFF))

(* Multi-byte accesses take the fast path when they fit in one page. *)
let read_u64 t addr =
  let off = offset_of addr in
  if off + 8 <= page_size then Bytes.get_int64_le (ro_page t addr) off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  end

let write_u64 t addr v =
  let off = offset_of addr in
  if off + 8 <= page_size then Bytes.set_int64_le (rw_page t addr) off v
  else
    for i = 0 to 7 do
      let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
      write_u8 t (Int64.add addr (Int64.of_int i)) b
    done

let read_u32 t addr =
  let off = offset_of addr in
  if off + 4 <= page_size then
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le (ro_page t addr) off)) 0xFFFFFFFFL
  else begin
    let v = ref 0L in
    for i = 3 downto 0 do
      let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  end

let write_u32 t addr v =
  let off = offset_of addr in
  if off + 4 <= page_size then
    Bytes.set_int32_le (rw_page t addr) off (Int64.to_int32 v)
  else
    for i = 0 to 3 do
      let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
      write_u8 t (Int64.add addr (Int64.of_int i)) b
    done

let read_bytes t addr len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_of a in
    let chunk = Stdlib.min (len - !pos) (page_size - off) in
    Bytes.blit (ro_page t a) off out !pos chunk;
    pos := !pos + chunk
  done;
  out

(* Pages are processed in address order and [rw_page] faults on an
   unmapped page before breaking any sharing on it, so a spanning write
   that hits an unmapped page leaves exactly the prefix a per-byte loop
   would have written (and has CoW-broken only those prefix pages). *)
let write_bytes t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_of a in
    let chunk = Stdlib.min (len - !pos) (page_size - off) in
    Bytes.blit src !pos (rw_page t a) off chunk;
    pos := !pos + chunk
  done

(* Bytes until the first NUL at [addr] (page-aware strlen); faults at
   the first unmapped byte reached before a NUL, like a byte loop. *)
let cstr_len t addr =
  let rec scan a acc =
    let off = offset_of a in
    let d = ro_page t a in
    match Bytes.index_from_opt d off '\000' with
    | Some i -> acc + (i - off)
    | None -> scan (Int64.add a (Int64.of_int (page_size - off))) (acc + (page_size - off))
  in
  scan addr 0

(* O(chunks), not O(pages): the child aliases our chunk records and
   both sides drop ownership, so record (and payload) copies happen
   lazily, per chunk, on first write in either space. *)
let clone t =
  let n = t.mapped_pages in
  Bytes.fill t.owned 0 (Bytes.length t.owned) '\000';
  t.family.clones <- t.family.clones + 1;
  t.family.pages_aliased <- t.family.pages_aliased + n;
  {
    top = Array.copy t.top;
    owned = Bytes.make (Array.length t.top) '\000';
    mapped_pages = n;
    family = t.family;
  }

let mapped_bytes t = t.mapped_pages * page_size

let resident_bytes t =
  let acc = ref 0 in
  Array.iteri
    (fun c ch ->
      if Bytes.get t.owned c = '\001' && ch != empty_chunk then
        Array.iter (fun p -> if p != no_page && p.private_ then acc := !acc + page_size) ch)
    t.top;
  !acc

let shared_bytes t = mapped_bytes t - resident_bytes t

let family_stats t =
  {
    clones = t.family.clones;
    pages_aliased = t.family.pages_aliased;
    cow_breaks = t.family.cow_breaks;
  }
