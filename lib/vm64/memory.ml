let page_size = 4096
let page_bits = 12

(* [last_idx]/[last_page] memoize the most recently touched page: most
   accesses are stack- or text-local, so this skips the Hashtbl lookup
   on the hot path. Pages are never unmapped or replaced (map only adds
   missing pages), so a memoized page can never go stale. *)
type t = {
  pages : (int, bytes) Hashtbl.t;
  mutable last_idx : int;
  mutable last_page : bytes;
}

let no_page = Bytes.create 0

let create () = { pages = Hashtbl.create 64; last_idx = min_int; last_page = no_page }

let page_of addr = Int64.to_int (Int64.shift_right_logical addr page_bits)
let offset_of addr = Int64.to_int (Int64.logand addr 0xFFFL)

let map t ~addr ~len =
  if len <= 0 then invalid_arg "Memory.map: nonpositive length";
  let first = page_of addr in
  let last = page_of (Int64.add addr (Int64.of_int (len - 1))) in
  for p = first to last do
    if not (Hashtbl.mem t.pages p) then
      Hashtbl.add t.pages p (Bytes.make page_size '\000')
  done

let is_mapped t addr =
  let idx = page_of addr in
  idx = t.last_idx || Hashtbl.mem t.pages idx

let page_exn t addr =
  let idx = page_of addr in
  if idx = t.last_idx then t.last_page
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
      t.last_idx <- idx;
      t.last_page <- p;
      p
    | None -> raise (Fault.Trap (Fault.Segfault addr))

let read_u8 t addr = Char.code (Bytes.get (page_exn t addr) (offset_of addr))

let write_u8 t addr v =
  Bytes.set (page_exn t addr) (offset_of addr) (Char.chr (v land 0xFF))

(* Multi-byte accesses take the fast path when they fit in one page. *)
let read_u64 t addr =
  let off = offset_of addr in
  if off + 8 <= page_size then Bytes.get_int64_le (page_exn t addr) off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  end

let write_u64 t addr v =
  let off = offset_of addr in
  if off + 8 <= page_size then Bytes.set_int64_le (page_exn t addr) off v
  else
    for i = 0 to 7 do
      let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
      write_u8 t (Int64.add addr (Int64.of_int i)) b
    done

let read_u32 t addr =
  let off = offset_of addr in
  if off + 4 <= page_size then
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le (page_exn t addr) off)) 0xFFFFFFFFL
  else begin
    let v = ref 0L in
    for i = 3 downto 0 do
      let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  end

let write_u32 t addr v =
  let off = offset_of addr in
  if off + 4 <= page_size then
    Bytes.set_int32_le (page_exn t addr) off (Int64.to_int32 v)
  else
    for i = 0 to 3 do
      let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
      write_u8 t (Int64.add addr (Int64.of_int i)) b
    done

let read_bytes t addr len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_of a in
    let chunk = Stdlib.min (len - !pos) (page_size - off) in
    Bytes.blit (page_exn t a) off out !pos chunk;
    pos := !pos + chunk
  done;
  out

let write_bytes t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_of a in
    let chunk = Stdlib.min (len - !pos) (page_size - off) in
    Bytes.blit src !pos (page_exn t a) off chunk;
    pos := !pos + chunk
  done

let clone t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.add pages k (Bytes.copy v)) t.pages;
  { pages; last_idx = min_int; last_page = no_page }

let mapped_bytes t = Hashtbl.length t.pages * page_size
