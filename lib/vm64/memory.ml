let page_size = 4096
let page_bits = 12

(* Copy-on-write page store. Each address space owns its page *records*;
   only the [data] payloads are aliased across a fork family. A record
   whose [private_] flag is clear may be sharing its payload with some
   relative, so every write path must go through [rw_page], which
   replaces the payload with a private copy on first dirty. Records are
   never removed or replaced in the table (map only adds missing pages),
   which is what keeps the one-page memo sound: the memo caches the
   record, not the payload, so a CoW break — an in-place [data] swap —
   is visible through it. *)
type page = {
  mutable data : bytes;
  mutable private_ : bool;  (* sole owner of [data]; safe to write in place *)
}

(* Fork-path telemetry, shared by every space in one clone family so the
   numbers survive children being reaped. *)
type family_stats = {
  mutable clones : int;  (* Memory.clone calls in this family *)
  mutable pages_aliased : int;  (* pages shared (not copied) at clone time *)
  mutable cow_breaks : int;  (* shared pages privatised by a write *)
}

(* Process-wide totals (Atomic: campaigns fan kernels across domains). *)
let g_clones = Atomic.make 0
let g_pages_aliased = Atomic.make 0
let g_cow_breaks = Atomic.make 0

let counters () =
  {
    clones = Atomic.get g_clones;
    pages_aliased = Atomic.get g_pages_aliased;
    cow_breaks = Atomic.get g_cow_breaks;
  }

let reset_counters () =
  Atomic.set g_clones 0;
  Atomic.set g_pages_aliased 0;
  Atomic.set g_cow_breaks 0

(* [last_idx]/[last_page] memoize the most recently touched page record:
   most accesses are stack- or text-local, so this skips the Hashtbl
   lookup on the hot path. *)
type t = {
  pages : (int, page) Hashtbl.t;
  mutable last_idx : int;
  mutable last_page : page;
  family : family_stats;
}

let no_page = { data = Bytes.create 0; private_ = true }

let create () =
  {
    pages = Hashtbl.create 64;
    last_idx = min_int;
    last_page = no_page;
    family = { clones = 0; pages_aliased = 0; cow_breaks = 0 };
  }

let page_of addr = Int64.to_int (Int64.shift_right_logical addr page_bits)
let offset_of addr = Int64.to_int (Int64.logand addr 0xFFFL)

let map t ~addr ~len =
  if len <= 0 then invalid_arg "Memory.map: nonpositive length";
  let first = page_of addr in
  let last = page_of (Int64.add addr (Int64.of_int (len - 1))) in
  for p = first to last do
    if not (Hashtbl.mem t.pages p) then
      Hashtbl.add t.pages p { data = Bytes.make page_size '\000'; private_ = true }
  done

let is_mapped t addr =
  let idx = page_of addr in
  idx = t.last_idx || Hashtbl.mem t.pages idx

let page_exn t addr =
  let idx = page_of addr in
  if idx = t.last_idx then t.last_page
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
      t.last_idx <- idx;
      t.last_page <- p;
      p
    | None -> raise (Fault.Trap (Fault.Segfault addr))

(* Read path: the payload as-is, shared or not. *)
let ro_page t addr = (page_exn t addr).data

(* Write path: break sharing with a private copy on first dirty. *)
let rw_page t addr =
  let p = page_exn t addr in
  if p.private_ then p.data
  else begin
    let d = Bytes.copy p.data in
    p.data <- d;
    p.private_ <- true;
    t.family.cow_breaks <- t.family.cow_breaks + 1;
    Atomic.incr g_cow_breaks;
    d
  end

let read_u8 t addr = Char.code (Bytes.get (ro_page t addr) (offset_of addr))

let write_u8 t addr v =
  Bytes.set (rw_page t addr) (offset_of addr) (Char.chr (v land 0xFF))

(* Multi-byte accesses take the fast path when they fit in one page. *)
let read_u64 t addr =
  let off = offset_of addr in
  if off + 8 <= page_size then Bytes.get_int64_le (ro_page t addr) off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  end

let write_u64 t addr v =
  let off = offset_of addr in
  if off + 8 <= page_size then Bytes.set_int64_le (rw_page t addr) off v
  else
    for i = 0 to 7 do
      let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
      write_u8 t (Int64.add addr (Int64.of_int i)) b
    done

let read_u32 t addr =
  let off = offset_of addr in
  if off + 4 <= page_size then
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le (ro_page t addr) off)) 0xFFFFFFFFL
  else begin
    let v = ref 0L in
    for i = 3 downto 0 do
      let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  end

let write_u32 t addr v =
  let off = offset_of addr in
  if off + 4 <= page_size then
    Bytes.set_int32_le (rw_page t addr) off (Int64.to_int32 v)
  else
    for i = 0 to 3 do
      let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
      write_u8 t (Int64.add addr (Int64.of_int i)) b
    done

let read_bytes t addr len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_of a in
    let chunk = Stdlib.min (len - !pos) (page_size - off) in
    Bytes.blit (ro_page t a) off out !pos chunk;
    pos := !pos + chunk
  done;
  out

(* Pages are processed in address order and [rw_page] faults on an
   unmapped page before breaking any sharing on it, so a spanning write
   that hits an unmapped page leaves exactly the prefix a per-byte loop
   would have written (and has CoW-broken only those prefix pages). *)
let write_bytes t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_of a in
    let chunk = Stdlib.min (len - !pos) (page_size - off) in
    Bytes.blit src !pos (rw_page t a) off chunk;
    pos := !pos + chunk
  done

(* Bytes until the first NUL at [addr] (page-aware strlen); faults at
   the first unmapped byte reached before a NUL, like a byte loop. *)
let cstr_len t addr =
  let rec scan a acc =
    let off = offset_of a in
    let d = ro_page t a in
    match Bytes.index_from_opt d off '\000' with
    | Some i -> acc + (i - off)
    | None -> scan (Int64.add a (Int64.of_int (page_size - off))) (acc + (page_size - off))
  in
  scan addr 0

let clone t =
  let n = Hashtbl.length t.pages in
  let pages = Hashtbl.create n in
  Hashtbl.iter
    (fun k p ->
      p.private_ <- false;
      Hashtbl.add pages k { data = p.data; private_ = false })
    t.pages;
  t.family.clones <- t.family.clones + 1;
  t.family.pages_aliased <- t.family.pages_aliased + n;
  Atomic.incr g_clones;
  ignore (Atomic.fetch_and_add g_pages_aliased n);
  { pages; last_idx = min_int; last_page = no_page; family = t.family }

let mapped_bytes t = Hashtbl.length t.pages * page_size

let resident_bytes t =
  Hashtbl.fold (fun _ p acc -> if p.private_ then acc + page_size else acc) t.pages 0

let shared_bytes t =
  Hashtbl.fold (fun _ p acc -> if p.private_ then acc else acc + page_size) t.pages 0

let family_stats t =
  {
    clones = t.family.clones;
    pages_aliased = t.family.pages_aliased;
    cow_breaks = t.family.cow_breaks;
  }
