(** Explicit IR of decoded blocks — the data the compile tiers lower.

    Produced from a {!Tcache.block} by {!lift}, refined by
    {!normalize}, and concatenated into superblocks by {!fuse}; emitted
    to closures by {!Compile}. Every pass preserves the step/retire 1:1
    mapping that fuel accounting, cycle charging and fault attribution
    index by — see the invariant note in the implementation. *)

type uop =
  | Exec of Isa.Insn.t  (** general case, per-insn lowering *)
  | Zero of int  (** [xor r, r] zero idiom (gpr index): no operand reads *)
  | Nop_cost
      (** architectural no-op that still charges its decoded cost:
          masked shift count 0, [mov r, r] self-move *)

type step = {
  addr : int64;  (** the instruction's own address *)
  next : int64;  (** fall-through rip *)
  cost : int;  (** static cycle cost *)
  callret : bool;  (** charged the per-call tax *)
  sets_rip : bool;  (** emitted closure writes rip when returning Running *)
  uop : uop;
}

(** How control leaves when the last step retires [Running]. *)
type exit_shape =
  | Jump of int64
      (** unconditional static successor: jmp abs, fall-through (block
          cap / decode break), direct non-builtin call (the callee), or
          a direct inlined-builtin call (the return point) *)
  | Branch of { taken : int64; fall : int64 }  (** jcc with absolute target *)
  | Dynamic  (** successor only known from rip at run time (ret, ...) *)
  | Stop  (** never retires [Running] last: hlt, syscall, builtin exit *)

type part = { block : Tcache.block; start : int }

type t = {
  entry : int64;
  steps : step array;
  exit_ : exit_shape;
  parts : part array;  (** constituent blocks, head first, by step index *)
}

val lift :
  is_builtin:(int64 -> string option) ->
  inlinable:(string -> bool) ->
  Tcache.block ->
  t
(** Decode facts made explicit: per-step costs/nexts/rip-writing, and
    the exit shape with direct-call builtin targets resolved against the
    environment ([inlinable] decides whether a resolved builtin call
    falls through — its body emitted in line — or exits to the OS). *)

val normalize : t -> t
(** Per-step strength reduction (zero idiom, dead shifts, self-moves);
    each rewrite is observationally identical per retired instruction. *)

val step_gprs : step -> int list * int list
(** [(reads, writes)] over gpr indices, from the instruction's operand
    roles. Drives tier 3's caching heuristic only — conservative
    over-approximation is fine, correctness never depends on it. *)

val cache_plan : ?limit:int -> t -> int array
(** The translation's hot gprs, most-accessed first, at most [limit]
    (default 2). Only registers touched at least three times qualify
    (entry reload + exit spill must pay for themselves); ties break
    toward the lower index so the plan is deterministic. *)

val jump_target : t -> int64 option
(** The unconditional static successor, if the exit has one. *)

val fuse : t -> t -> t
(** [fuse a b] concatenates [b] onto [a]. Raises [Invalid_argument]
    unless [jump_target a = Some b.entry]. *)

val length : t -> int
val entries : t -> int64 array
