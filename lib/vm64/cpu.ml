type flags = {
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
}

type t = {
  gprs : int64 array;
  xmms : (int64 * int64) array;
  mutable rip : int64;
  flags : flags;
  mutable fs_base : int64;
  mutable cycles : int64;
  mutable insn_tax : int;
  mutable call_tax : int;
  rng : Util.Prng.t;
  tcache : Tcache.t;
}

let create ?(seed = 0x5EEDL) () =
  {
    gprs = Array.make 16 0L;
    xmms = Array.make 16 (0L, 0L);
    rip = 0L;
    flags = { zf = false; sf = false; cf = false; of_ = false };
    fs_base = 0L;
    cycles = 0L;
    insn_tax = 0;
    call_tax = 0;
    rng = Util.Prng.create seed;
    tcache = Tcache.create ();
  }

let get t r = t.gprs.(Isa.Reg.index r)
let set t r v = t.gprs.(Isa.Reg.index r) <- v

let get_xmm t x = t.xmms.(Isa.Reg.Xmm.index x)
let set_xmm t x v = t.xmms.(Isa.Reg.Xmm.index x) <- v

let clone t =
  {
    gprs = Array.copy t.gprs;
    xmms = Array.copy t.xmms;
    rip = t.rip;
    flags =
      { zf = t.flags.zf; sf = t.flags.sf; cf = t.flags.cf; of_ = t.flags.of_ };
    fs_base = t.fs_base;
    cycles = t.cycles;
    insn_tax = t.insn_tax;
    call_tax = t.call_tax;
    rng = Util.Prng.split t.rng;
    (* the child starts from the parent's decoded blocks (its text is
       byte-identical at fork time); the table stays physically shared
       until either side first mutates it, so a later patch +
       invalidation in either address space still cannot leak stale
       decodes into the other *)
    tcache = Tcache.clone t.tcache;
  }

let snapshot t =
  {
    gprs = Array.copy t.gprs;
    xmms = Array.copy t.xmms;
    rip = t.rip;
    flags =
      { zf = t.flags.zf; sf = t.flags.sf; cf = t.flags.cf; of_ = t.flags.of_ };
    fs_base = t.fs_base;
    cycles = t.cycles;
    insn_tax = t.insn_tax;
    call_tax = t.call_tax;
    (* exact RNG state, unlike [clone]: a resumed snapshot must replay
       the same rdrand stream a cold spawn of the same seed would *)
    rng = Util.Prng.copy t.rng;
    tcache = Tcache.clone t.tcache;
  }

let add_cycles t n = t.cycles <- Int64.add t.cycles (Int64.of_int n)

let invalidate_decode t ~addr ~len = Tcache.invalidate_range t.tcache ~addr ~len
let invalidate_decode_all t = Tcache.invalidate_all t.tcache
