type flags = {
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
}

type t = {
  gprs : int64 array;
  xmms : (int64 * int64) array;
  mutable rip : int64;
  flags : flags;
  mutable fs_base : int64;
  mutable cycles : int64;
  mutable insn_tax : int;
  mutable call_tax : int;
  mutable pac_key : int64;
  rng : Util.Prng.t;
  tcache : Tcache.t;
}

let create ?(seed = 0x5EEDL) () =
  {
    gprs = Array.make 16 0L;
    xmms = Array.make 16 (0L, 0L);
    rip = 0L;
    flags = { zf = false; sf = false; cf = false; of_ = false };
    fs_base = 0L;
    cycles = 0L;
    insn_tax = 0;
    call_tax = 0;
    pac_key = 0L;
    rng = Util.Prng.create seed;
    tcache = Tcache.create ();
  }

let get t r = t.gprs.(Isa.Reg.index r)
let set t r v = t.gprs.(Isa.Reg.index r) <- v

let get_xmm t x = t.xmms.(Isa.Reg.Xmm.index x)
let set_xmm t x v = t.xmms.(Isa.Reg.Xmm.index x) <- v

let clone t =
  {
    gprs = Array.copy t.gprs;
    xmms = Array.copy t.xmms;
    rip = t.rip;
    flags =
      { zf = t.flags.zf; sf = t.flags.sf; cf = t.flags.cf; of_ = t.flags.of_ };
    fs_base = t.fs_base;
    cycles = t.cycles;
    insn_tax = t.insn_tax;
    call_tax = t.call_tax;
    (* fork children inherit the key: frames signed by the parent must
       still authenticate when the child returns through them *)
    pac_key = t.pac_key;
    rng = Util.Prng.split t.rng;
    (* the child starts from the parent's decoded blocks (its text is
       byte-identical at fork time); the table stays physically shared
       until either side first mutates it, so a later patch +
       invalidation in either address space still cannot leak stale
       decodes into the other *)
    tcache = Tcache.clone t.tcache;
  }

let snapshot t =
  {
    gprs = Array.copy t.gprs;
    xmms = Array.copy t.xmms;
    rip = t.rip;
    flags =
      { zf = t.flags.zf; sf = t.flags.sf; cf = t.flags.cf; of_ = t.flags.of_ };
    fs_base = t.fs_base;
    cycles = t.cycles;
    insn_tax = t.insn_tax;
    call_tax = t.call_tax;
    pac_key = t.pac_key;
    (* exact RNG state, unlike [clone]: a resumed snapshot must replay
       the same rdrand stream a cold spawn of the same seed would *)
    rng = Util.Prng.copy t.rng;
    tcache = Tcache.clone t.tcache;
  }

let add_cycles t n = t.cycles <- Int64.add t.cycles (Int64.of_int n)

(* ---- pointer-authentication MAC (the [pac]/[aut] instructions) ----

   A 16-bit tag over the value's low 48 bits and a modifier (the frame
   address), keyed by the per-process [pac_key] — a SplitMix64-style
   finalizer stands in for QARMA: deterministic, cheap, and it mixes
   every input bit into the tag. Signed values carry the tag in their
   high 16 bits, like real PAC in an address space with unused VA
   top bits. *)

let pac_low48_mask = 0x0000_FFFF_FFFF_FFFFL

let pac_mix x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 33)) 0xFF51AFD7ED558CCDL in
  let x = mul (logxor x (shift_right_logical x 33)) 0xC4CEB9FE1A85EC53L in
  logxor x (shift_right_logical x 33)

let pac_tag t ~value ~modifier =
  let low = Int64.logand value pac_low48_mask in
  let h = pac_mix (Int64.logxor (pac_mix (Int64.logxor t.pac_key low)) modifier) in
  Int64.to_int (Int64.logand h 0xFFFFL)

let pac_sign t ~value ~modifier =
  let tag = pac_tag t ~value ~modifier in
  Int64.logor
    (Int64.logand value pac_low48_mask)
    (Int64.shift_left (Int64.of_int tag) 48)

let pac_auth t ~value ~modifier =
  let tag = Int64.to_int (Int64.shift_right_logical value 48) land 0xFFFF in
  tag = pac_tag t ~value ~modifier

let pac_strip value = Int64.logand value pac_low48_mask

let invalidate_decode t ~addr ~len = Tcache.invalidate_range t.tcache ~addr ~len
let invalidate_decode_all t = Tcache.invalidate_all t.tcache
