(** Canonical address-space layout for simulated processes.

    All addresses stay below 2^31 so that displacement-encoded absolute
    references always fit the ISA's 32-bit displacement fields. *)

val glibc_base : int64
(** Where the simulated C library's entry points live. *)

val glibc_slot_size : int
(** Each glibc entry point occupies one slot of this many bytes. *)

val text_base : int64
(** Program text. *)

val data_base : int64
(** Program globals / rodata. *)

val heap_base : int64
val heap_size : int

val stack_top : int64
(** Highest stack address + 8; rsp starts here and grows down. *)

val stack_size : int

val stack_guard_len : int
(** Unmapped guard region below the stack. *)

val tls_base : int64
(** FS segment base: [%fs:0] maps here. *)

val tls_size : int

val tls_canary_offset : int64
(** [%fs:0x28] — the classic glibc stack-guard slot holding C. *)

val tls_shadow_offset : int64
(** [%fs:0x2a8] — first qword (C0) of the P-SSP shadow canary. *)

val tls_shadow_offset_hi : int64
(** [%fs:0x2b0] — second qword (C1) of the P-SSP shadow canary. *)

val tls_dcr_head_offset : int64
(** [%fs:0x2b8] — DCR's pointer to the newest in-stack canary. *)

val tls_shadow_sp_offset : int64
(** [%fs:0x2c0] — the compact shadow stack's own stack pointer. Grows
    up from {!shadow_stack_base}, one qword per live return address. *)

val shadow_stack_base : int64
(** Base of the compact shadow-stack region (shadow-compact scheme).
    Mapped at spawn, cloned CoW by fork/snapshot like any region. *)

val shadow_stack_size : int

val shadow_parallel_delta : int64
(** Parallel shadow stacks mirror each return-address slot at
    [slot - shadow_parallel_delta]: a fixed offset below the stack, so
    the mirror region [stack - delta] never collides with other
    mappings and the displacement still fits the ISA's i32 fields. *)

val wasm_spill_size : int
(** Size of the writable region mapped immediately above {!stack_top}
    for wasm-ssp processes: out-of-frame writes land there silently
    instead of trapping, modelling linear-memory stores. *)

val dynaguard_buffer_base : int64
(** DynaGuard's canary-address buffer: word 0 is the live count,
    followed by the recorded canary addresses. *)

val dynaguard_buffer_size : int

val global_canary_buffer_base : int64
(** The §VII-C global buffer: word 0 is the live count, followed by the
    C1 halves matching the C0 halves on the stack. Cloned by fork along
    with the rest of the address space. *)

val global_canary_buffer_size : int
