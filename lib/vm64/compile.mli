(** Closure compilation of {!Tcache} blocks — the second execution tier.

    [compile] translates a decoded block once into an array of closures
    with everything resolvable at translation time already resolved:
    operand shapes specialized (no [read64]/[write64]/effective-address
    matching at retire time), immediates captured, FS-segment and
    missing-index addressing split into dedicated closures, direct-call
    builtin targets resolved against the environment's table, and
    straight-line cycle costs pre-summed so {!Cpu.add_cycles} runs once
    per block exit.

    The tier is semantically invisible: faults (identity and partial
    state), fuel accounting, builtin trapping, rdrand draws and the
    cycle counter after every exit are byte-for-byte those of the
    interpreter. Blocks containing [rdtsc] are {!Uncompilable} (it reads
    the cycle counter mid-block, which deferred charging would skew) and
    run interpreted, as do traced runs ([on_retire] observes every
    retire, which the compiled loop deliberately does not).

    Compiled code is immutable and keyed ([(==)]) to the [is_builtin]
    closure it was specialized against, so fork clones sharing Tcache
    block records reuse it for free, and a block reached from a
    different environment is transparently recompiled. Invalidation
    needs no extra work: dropping the {!Tcache.block} drops its slot. *)

type outcome = Compiled.outcome =
  | Running
  | Builtin of string
  | Syscall_trap
  | Halted
  | Faulted of Fault.t

type code

type Compiled.slot += Code of code | Uncompilable

val compile : is_builtin:(int64 -> string option) -> Tcache.block -> Compiled.slot
(** Always returns [Code _] or [Uncompilable]. *)

val key : code -> int64 -> string option
(** The [is_builtin] the code was specialized against. Stale if not
    physically equal to the current environment's resolver. *)

val run_code : code -> Cpu.t -> Memory.t -> limit:int -> outcome * int
(** Retire up to [limit] instructions from the block's start, returning
    the last outcome and the retire count, with the interpreter's exact
    cycle charging and rip/fault semantics. *)

val set_enabled : bool -> unit
(** Process-wide tier switch (default on). Flip only while no simulated
    cpu is mid-run — the bench driver's [--compile-tier] and tests. *)

val enabled : unit -> bool

(** {2 Shared semantics helpers}

    Single definitions used by both tiers (and by targeted tests), so
    flag arithmetic and stack discipline cannot drift between them. *)

val set_logic_flags : Cpu.flags -> int64 -> unit
val set_add_flags : Cpu.flags -> int64 -> int64 -> int64 -> unit
val set_sub_flags : Cpu.flags -> int64 -> int64 -> int64 -> unit
val cond_holds : Cpu.flags -> Isa.Insn.cond -> bool
val push : Cpu.t -> Memory.t -> int64 -> unit
val pop : Cpu.t -> Memory.t -> int64
val xmm_to_bytes : int64 * int64 -> bytes
val xmm_of_bytes : bytes -> int64 * int64
