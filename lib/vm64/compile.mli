(** Closure compilation of {!Tcache} blocks — tiers 1, 2 and 3 of the
    execution stack.

    [compile] lowers a decoded block through the explicit {!Ir}
    (lift -> normalize -> emit) into an array of closures with
    everything resolvable at translation time already resolved: operand
    shapes specialized (no [read64]/[write64]/effective-address
    matching at retire time), immediates captured, FS-segment and
    missing-index addressing split into dedicated closures, direct-call
    builtin targets resolved against the environment's table, and
    straight-line cycle costs pre-summed so {!Cpu.add_cycles} runs once
    per block exit.

    Tier 2 ([run_tier2]) executes the same translations but keeps
    control inside compiled code across block boundaries: each code
    carries chain links that are patched to the successor's translation
    the first time an exit resolves, hot codes are fused forward along
    unconditional static exits into superblock translations, and small
    pure glibc builtins can be emitted in line at their call sites
    ([compile ~inline]). Links are validated per traversal against the
    address space's identity and invalidation epoch, the target's slot
    and decode anchors, and the environment key — see the notes in the
    implementation for why each check exists (fork relatives,
    [patch_text] on private pages, superblock replacement).

    Tier 3 additionally caches the translation's hottest guest
    registers (picked by {!Ir.cache_plan}) in closure "locals" —
    arguments threaded through a continuation chain — writing them back
    to {!Cpu.t} gprs only at exits, chain transfers, kernel-visible
    outcomes and faults. The spill protocol notes in the implementation
    ([emit3]) explain why every fault still observes exact architectural
    register state.

    All tiers are semantically invisible: faults (identity and partial
    state), fuel accounting, builtin trapping, rdrand draws and the
    cycle counter after every exit are byte-for-byte those of the
    interpreter. [rdtsc] compiles against the retired prefix's static
    cycle charge (deferred charging leaves [cycles] at the entry value,
    and the charge to any mid-block point is translation-time static).
    Traced runs still interpret ([on_retire] observes every retire,
    which the compiled loop deliberately does not).

    Compiled code is immutable and keyed ([(==)]) to the [is_builtin]
    closure it was specialized against, so fork clones sharing Tcache
    block records reuse it for free, and a block reached from a
    different environment is transparently recompiled. Invalidation
    needs no extra work for single blocks: dropping the {!Tcache.block}
    drops its slot. Superblocks additionally register their fused text
    extents on the head record ([Tcache.block.fused_ranges]) so
    patching any constituent drops the head entry too. *)

type outcome = Compiled.outcome =
  | Running
  | Builtin of string
  | Syscall_trap
  | Halted
  | Faulted of Fault.t

type code

type Compiled.slot += Code of code | Uncompilable

(** [Uncompilable] is retained for slot compatibility; since [rdtsc]
    became emittable, {!compile} always returns [Code _]. *)

type builtin_fn = Cpu.t -> Memory.t -> int64
(** An inlinable builtin core: reads its arguments from the calling
    convention registers, performs the effect (memory + cycle charges)
    and returns the rax value. May raise {!Fault.Trap}. *)

val compile :
  ?inline:(string -> builtin_fn option) ->
  is_builtin:(int64 -> string option) ->
  Tcache.block ->
  Compiled.slot
(** Always returns [Code _]. [inline] (default: none)
    lets direct calls to resolved builtins execute in line — the emitted
    closure advances rip past the call, runs the core, writes rax and
    continues, instead of exiting to the OS dispatcher. Faults raised by
    the core surface as [Faulted] with rip at the return point, exactly
    as the dispatcher leaves it. *)

val key : code -> int64 -> string option
(** The [is_builtin] the code was specialized against. Stale if not
    physically equal to the current environment's resolver. *)

val cached_regs : code -> int array
(** The gpr indices the tier-3 chain caches in closure locals (a copy;
    empty when the translation has no register-caching chain — no
    register passed {!Ir.cache_plan}'s profitability bar). *)

val run_code : code -> Cpu.t -> Memory.t -> limit:int -> outcome * int
(** Retire up to [limit] instructions from the code's start, returning
    the last outcome and the retire count, with the interpreter's exact
    cycle charging and rip/fault semantics. *)

val run_tier2 :
  Cpu.t ->
  Memory.t ->
  is_builtin:(int64 -> string option) ->
  inline:(string -> builtin_fn option) ->
  code ->
  fuel:int ->
  outcome * int
(** Tier-2/3 dispatch: run the code, then keep transferring through
    live chain links (patching them on first resolution, forming
    superblocks past the hotness threshold) until fuel is exhausted, a
    non-[Running] outcome must surface to the OS, or the successor is
    not resolvable from the cache — in which case [(Running, retired)]
    bounces control back to {!Exec.step_block}'s dispatcher, which
    decodes it. At tier 3 each hop runs the register-caching chain
    instead of the per-step loop whenever remaining fuel covers the
    whole translation. Also attributes per-constituent cycles to
    {!Telemetry.Profile} when profiling is on (the caller must not note
    again). *)

val set_tier : int -> unit
(** Process-wide tier switch: 0 = interpreter, 1 = per-block closures,
    2 = chained/fused, 3 = chained/fused with register caching
    (default). Flip only while no simulated cpu is mid-run — the bench
    driver's [--compile-tier] and tests. Raises [Invalid_argument]
    outside [0..3]. *)

val tier : unit -> int

val set_enabled : bool -> unit
(** [set_enabled b] = [set_tier (if b then 3 else 0)] — legacy on/off
    switch. *)

val enabled : unit -> bool
(** Some compile tier is active ([tier () > 0]). *)

val set_fuse_threshold : int -> unit
(** Tier-2 entries a code must see before superblock formation is
    attempted (clamped to >= 1; default 16). Tests set 1 to fuse on
    first execution. *)

val get_fuse_threshold : unit -> int

(** {2 Shared semantics helpers}

    Single definitions used by both tiers (and by targeted tests), so
    flag arithmetic and stack discipline cannot drift between them. *)

val set_logic_flags : Cpu.flags -> int64 -> unit
val set_add_flags : Cpu.flags -> int64 -> int64 -> int64 -> unit
val set_sub_flags : Cpu.flags -> int64 -> int64 -> int64 -> unit
val cond_holds : Cpu.flags -> Isa.Insn.cond -> bool
val push : Cpu.t -> Memory.t -> int64 -> unit
val pop : Cpu.t -> Memory.t -> int64
val xmm_to_bytes : int64 * int64 -> bytes
val xmm_of_bytes : bytes -> int64 * int64
