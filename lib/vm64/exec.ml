type outcome = Compiled.outcome =
  | Running
  | Builtin of string
  | Syscall_trap
  | Halted
  | Faulted of Fault.t

type env = {
  is_builtin : int64 -> string option;
  inline_builtin : string -> Compile.builtin_fn option;
      (* tier-2 builtin inlining: cores a direct call may run in line
         instead of exiting to the OS dispatcher. Default: none — only
         environments whose dispatcher semantics the inline cores
         reproduce exactly (the kernel's) opt in. *)
  on_retire : (Cpu.t -> Isa.Insn.t -> unit) option;
}

let no_inline : string -> Compile.builtin_fn option = fun _ -> None

let create_env ?on_retire ?(inline_builtin = no_inline) ~is_builtin () =
  { is_builtin; inline_builtin; on_retire }

let max_insn_len = 32

(* Fetch up to [max_insn_len] bytes at rip, stopping at the first
   unmapped byte so a valid instruction at the end of a mapped region
   still decodes. Slow path: only taken when rip sits in the last
   [max_insn_len] bytes of a page (the next page may be unmapped, so
   the bytes must be collected one by one). *)
let fetch_bytes mem rip =
  let buf = Bytes.create max_insn_len in
  let rec collect i =
    if i >= max_insn_len then i
    else begin
      let addr = Int64.add rip (Int64.of_int i) in
      if Memory.is_mapped mem addr then begin
        Bytes.set buf i (Char.chr (Memory.read_u8 mem addr));
        collect (i + 1)
      end
      else i
    end
  in
  let n = collect 0 in
  if n = 0 then None else Some (Bytes.sub buf 0 n)

let fetch_slow mem rip =
  match fetch_bytes mem rip with
  | None -> Error (Fault.Segfault rip)
  | Some bytes -> (
    match Isa.Decode.decode bytes 0 with
    | insn, len -> Ok (insn, len)
    | exception Isa.Decode.Bad_encoding (_, msg) ->
      Error (Fault.Bad_instruction (rip, msg)))

(* Common path: decode in place against the mapped page. No instruction
   encodes to more than 19 bytes, so [max_insn_len] bytes of lookahead
   decide exactly the same way a page-sized window does — the slow path
   exists only for rip near a page boundary (next page possibly
   unmapped) and for unmapped rip. *)
let fetch_one mem rip =
  match Memory.code_window mem rip with
  | Some (page, off) when off + max_insn_len <= Memory.page_size -> (
    match Isa.Decode.decode page off with
    | insn, len -> Ok (insn, len)
    | exception Isa.Decode.Bad_encoding (_, msg) ->
      Error (Fault.Bad_instruction (rip, msg)))
  | _ -> fetch_slow mem rip

(* Control leaves the straight-line run after any of these. *)
let block_terminator = function
  | Isa.Insn.Jmp _ | Jcc _ | Call _ | Call_ind _ | Ret | Syscall | Hlt -> true
  | _ -> false

(* Decode a straight-line run starting at [rip]. Only a failure on the
   FIRST instruction is an error; a later bad byte just ends the block
   (the fault is re-discovered when execution reaches that address). *)
let decode_block mem rip =
  match fetch_one mem rip with
  | Error f -> Error f
  | Ok ((insn0, len0) as first) ->
    let rev = ref [ first ] in
    let count = ref 1 in
    let addr = ref (Int64.add rip (Int64.of_int len0)) in
    let stop = ref (block_terminator insn0) in
    while (not !stop) && !count < Tcache.max_block_insns do
      match fetch_one mem !addr with
      | Error _ -> stop := true
      | Ok ((insn, len) as pair) ->
        rev := pair :: !rev;
        addr := Int64.add !addr (Int64.of_int len);
        incr count;
        if block_terminator insn then stop := true
    done;
    (* Anchor the block to the payload objects its bytes came from (all
       mapped: we just decoded out of them). [!addr] is the block end. *)
    let last = Int64.sub !addr 1L in
    let npages =
      1 + Int64.to_int (Int64.sub (Int64.shift_right_logical last 12)
                          (Int64.shift_right_logical rip 12))
    in
    let anchor =
      Array.init npages (fun i ->
          let a = Int64.add rip (Int64.of_int (i * Memory.page_size)) in
          match Memory.code_window mem a with
          | Some (payload, _) -> payload
          | None -> assert false)
    in
    Ok (Tcache.make_block ~anchor ~start:rip (Array.of_list (List.rev !rev)))

(* The cached block is only valid for THIS address space while every
   page it was decoded from still holds the same payload object — the
   check lives in {!Tcache.anchor_valid} so the tier-2 chain runner
   applies the identical predicate before jumping into a successor. *)
let anchor_valid mem (b : Tcache.block) = Tcache.anchor_valid mem b

(* A freshly decoded block may be published into the fork-shared table
   (no private materialisation) when every anchored payload is still
   CoW-aliased — relatives currently read the very bytes it encodes,
   and the anchor check protects them once pages diverge. Blocks read
   from privately-written pages stay private. *)
let publishable mem (b : Tcache.block) =
  let a = b.Tcache.anchor in
  let n = Array.length a in
  let ok = ref (n > 0) in
  for i = 0 to n - 1 do
    let addr = Int64.add b.Tcache.bb_start (Int64.of_int (i * Memory.page_size)) in
    if not (Memory.payload_shared mem addr) then ok := false
  done;
  !ok

let fetch_block cpu mem =
  let tc = cpu.Cpu.tcache in
  match Tcache.find tc cpu.Cpu.rip with
  | Some b when anchor_valid mem b ->
    Tcache.note_hit tc;
    Ok b
  | _ -> (
    Tcache.note_miss tc;
    match decode_block mem cpu.Cpu.rip with
    | Error f -> Error f
    | Ok b ->
      Tcache.add tc b ~publish:(publishable mem b);
      Ok b)

let effective_address cpu (m : Isa.Operand.mem) =
  let base = match m.base with Some r -> Cpu.get cpu r | None -> 0L in
  let index =
    match m.index with
    | Some (r, s) ->
      Int64.mul (Cpu.get cpu r) (Int64.of_int (Isa.Operand.scale_factor s))
    | None -> 0L
  in
  let seg = if m.seg_fs then cpu.Cpu.fs_base else 0L in
  Int64.add (Int64.add seg base) (Int64.add index m.disp)

let read64 cpu mem = function
  | Isa.Operand.Reg r -> Cpu.get cpu r
  | Isa.Operand.Imm v -> v
  | Isa.Operand.Mem m -> Memory.read_u64 mem (effective_address cpu m)

let write64 cpu mem op v =
  match op with
  | Isa.Operand.Reg r -> Cpu.set cpu r v
  | Isa.Operand.Mem m -> Memory.write_u64 mem (effective_address cpu m) v
  | Isa.Operand.Imm _ ->
    raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "store to immediate")))

let read8 cpu mem = function
  | Isa.Operand.Reg r -> Int64.to_int (Int64.logand (Cpu.get cpu r) 0xFFL)
  | Isa.Operand.Imm v -> Int64.to_int (Int64.logand v 0xFFL)
  | Isa.Operand.Mem m -> Memory.read_u8 mem (effective_address cpu m)

let write8 cpu mem op v =
  match op with
  | Isa.Operand.Reg r ->
    (* Low-byte merge, like real mov to an 8-bit subregister. *)
    let old = Cpu.get cpu r in
    Cpu.set cpu r (Int64.logor (Int64.logand old (-256L)) (Int64.of_int (v land 0xFF)))
  | Isa.Operand.Mem m -> Memory.write_u8 mem (effective_address cpu m) v
  | Isa.Operand.Imm _ ->
    raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "store to immediate")))

let read32 cpu mem = function
  | Isa.Operand.Reg r -> Int64.logand (Cpu.get cpu r) 0xFFFFFFFFL
  | Isa.Operand.Imm v -> Int64.logand v 0xFFFFFFFFL
  | Isa.Operand.Mem m -> Memory.read_u32 mem (effective_address cpu m)

let write32 cpu mem op v =
  match op with
  | Isa.Operand.Reg r -> Cpu.set cpu r (Int64.logand v 0xFFFFFFFFL)
  | Isa.Operand.Mem m -> Memory.write_u32 mem (effective_address cpu m) v
  | Isa.Operand.Imm _ ->
    raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "store to immediate")))

(* Flag arithmetic, stack discipline and condition tests are shared with
   the closure tier — one definition, no drift. *)
let set_logic_flags = Compile.set_logic_flags
let set_add_flags = Compile.set_add_flags
let set_sub_flags = Compile.set_sub_flags
let cond_holds = Compile.cond_holds
let push = Compile.push
let pop = Compile.pop
let xmm_to_bytes = Compile.xmm_to_bytes
let xmm_of_bytes = Compile.xmm_of_bytes

let target_addr = function
  | Isa.Insn.Abs a -> a
  | Isa.Insn.Sym s -> raise (Isa.Encode.Unresolved_symbol s)

(* Top-level (not closed over per-call state) so executing an
   instruction allocates nothing on the fall-through path. *)
let continue_at cpu addr =
  cpu.Cpu.rip <- addr;
  Running

let execute env cpu mem insn next_rip =
  let flags = cpu.Cpu.flags in
  match insn with
  | Isa.Insn.Nop -> continue_at cpu next_rip
  | Mov (dst, src) ->
    write64 cpu mem dst (read64 cpu mem src);
    continue_at cpu next_rip
  | Movb (dst, src) ->
    write8 cpu mem dst (read8 cpu mem src);
    continue_at cpu next_rip
  | Movl (dst, src) ->
    write32 cpu mem dst (read32 cpu mem src);
    continue_at cpu next_rip
  | Lea (r, m) ->
    Cpu.set cpu r (effective_address cpu m);
    continue_at cpu next_rip
  | Push op ->
    push cpu mem (read64 cpu mem op);
    continue_at cpu next_rip
  | Pop op ->
    let v = pop cpu mem in
    write64 cpu mem op v;
    continue_at cpu next_rip
  | Bin (bop, dst, src) ->
    let a = read64 cpu mem dst in
    let b = read64 cpu mem src in
    (match bop with
    | Add ->
      let r = Int64.add a b in
      set_add_flags flags a b r;
      write64 cpu mem dst r
    | Sub ->
      let r = Int64.sub a b in
      set_sub_flags flags a b r;
      write64 cpu mem dst r
    | Xor ->
      let r = Int64.logxor a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | And ->
      let r = Int64.logand a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | Or ->
      let r = Int64.logor a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | Cmp ->
      let r = Int64.sub a b in
      set_sub_flags flags a b r
    | Test ->
      let r = Int64.logand a b in
      set_logic_flags flags r
    | Imul ->
      let r = Int64.mul a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | Idiv ->
      if Int64.equal b 0L then
        raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "division by zero")));
      (* x86 #DE also covers INT64_MIN / -1, whose quotient is
         unrepresentable; OCaml's Int64.div would silently wrap. *)
      if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
        raise
          (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "division overflow")));
      let r = Int64.div a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | Irem ->
      if Int64.equal b 0L then
        raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "division by zero")));
      if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
        raise
          (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "division overflow")));
      let r = Int64.rem a b in
      set_logic_flags flags r;
      write64 cpu mem dst r);
    continue_at cpu next_rip
  | Shift (sop, dst, k) -> (
    let k = k land 63 in
    (* x86: a masked shift count of 0 leaves both the destination and
       every flag untouched. *)
    match k with
    | 0 -> continue_at cpu next_rip
    | k ->
      let a = read64 cpu mem dst in
      let r =
        match sop with
        | Shl -> Int64.shift_left a k
        | Shr -> Int64.shift_right_logical a k
        | Sar -> Int64.shift_right a k
      in
      set_logic_flags flags r;
      write64 cpu mem dst r;
      continue_at cpu next_rip)
  | Neg op ->
    let a = read64 cpu mem op in
    let r = Int64.neg a in
    set_logic_flags flags r;
    (* x86: CF = (source <> 0); OF = (source = INT64_MIN, the one value
       whose negation overflows back to itself). *)
    flags.cf <- not (Int64.equal a 0L);
    flags.of_ <- Int64.equal a Int64.min_int;
    write64 cpu mem op r;
    continue_at cpu next_rip
  | Not op ->
    write64 cpu mem op (Int64.lognot (read64 cpu mem op));
    continue_at cpu next_rip
  | Setcc (c, r) ->
    Cpu.set cpu r (if cond_holds flags c then 1L else 0L);
    continue_at cpu next_rip
  | Jmp t -> continue_at cpu (target_addr t)
  | Jcc (c, t) ->
    if cond_holds flags c then continue_at cpu (target_addr t) else continue_at cpu next_rip
  | Call t -> (
    let addr = target_addr t in
    match env.is_builtin addr with
    | Some name ->
      cpu.Cpu.rip <- next_rip;
      Builtin name
    | None ->
      push cpu mem next_rip;
      continue_at cpu addr)
  | Call_ind op -> (
    let addr = read64 cpu mem op in
    match env.is_builtin addr with
    | Some name ->
      cpu.Cpu.rip <- next_rip;
      Builtin name
    | None ->
      push cpu mem next_rip;
      continue_at cpu addr)
  | Ret ->
    let addr = pop cpu mem in
    continue_at cpu addr
  | Leave ->
    Cpu.set cpu Isa.Reg.RSP (Cpu.get cpu Isa.Reg.RBP);
    let rbp = pop cpu mem in
    Cpu.set cpu Isa.Reg.RBP rbp;
    continue_at cpu next_rip
  | Rdrand r ->
    Cpu.set cpu r (Util.Prng.next64 cpu.Cpu.rng);
    flags.cf <- true;
    flags.zf <- false;
    continue_at cpu next_rip
  | Pac (d, m) ->
    let value = Cpu.get cpu d and modifier = Cpu.get cpu m in
    Cpu.set cpu d (Cpu.pac_sign cpu ~value ~modifier);
    continue_at cpu next_rip
  | Aut (d, m) ->
    let value = Cpu.get cpu d and modifier = Cpu.get cpu m in
    flags.zf <- Cpu.pac_auth cpu ~value ~modifier;
    flags.sf <- false;
    flags.cf <- false;
    flags.of_ <- false;
    Cpu.set cpu d (Cpu.pac_strip value);
    continue_at cpu next_rip
  | Rdtsc ->
    let tsc = cpu.Cpu.cycles in
    Cpu.set cpu Isa.Reg.RAX (Int64.logand tsc 0xFFFFFFFFL);
    Cpu.set cpu Isa.Reg.RDX (Int64.shift_right_logical tsc 32);
    continue_at cpu next_rip
  | Syscall ->
    cpu.Cpu.rip <- next_rip;
    Syscall_trap
  | Hlt -> Halted
  | Movq_to_xmm (x, r) ->
    Cpu.set_xmm cpu x (Cpu.get cpu r, 0L);
    continue_at cpu next_rip
  | Movq_from_xmm (r, x) ->
    let lo, _ = Cpu.get_xmm cpu x in
    Cpu.set cpu r lo;
    continue_at cpu next_rip
  | Pinsrq_high (x, r) ->
    let lo, _ = Cpu.get_xmm cpu x in
    Cpu.set_xmm cpu x (lo, Cpu.get cpu r);
    continue_at cpu next_rip
  | Movhps_load (x, m) ->
    let lo, _ = Cpu.get_xmm cpu x in
    Cpu.set_xmm cpu x (lo, Memory.read_u64 mem (effective_address cpu m));
    continue_at cpu next_rip
  | Movq_store (m, x) ->
    let lo, _ = Cpu.get_xmm cpu x in
    Memory.write_u64 mem (effective_address cpu m) lo;
    continue_at cpu next_rip
  | Movdqu_load (x, m) ->
    let ea = effective_address cpu m in
    (* explicit high-then-low read order (what the right-to-left tuple
       evaluation always compiled to), pinned so the closure tier can
       mirror the fault address of a half-unmapped access *)
    let hi = Memory.read_u64 mem (Int64.add ea 8L) in
    let lo = Memory.read_u64 mem ea in
    Cpu.set_xmm cpu x (lo, hi);
    continue_at cpu next_rip
  | Movdqu_store (m, x) ->
    let ea = effective_address cpu m in
    let lo, hi = Cpu.get_xmm cpu x in
    Memory.write_u64 mem ea lo;
    Memory.write_u64 mem (Int64.add ea 8L) hi;
    continue_at cpu next_rip
  | Aesenc (dst, src) ->
    let state = xmm_to_bytes (Cpu.get_xmm cpu dst) in
    let round_key = xmm_to_bytes (Cpu.get_xmm cpu src) in
    Cpu.set_xmm cpu dst (xmm_of_bytes (Crypto.Aes128.aesenc ~state ~round_key));
    continue_at cpu next_rip
  | Aesenclast (dst, src) ->
    let state = xmm_to_bytes (Cpu.get_xmm cpu dst) in
    let round_key = xmm_to_bytes (Cpu.get_xmm cpu src) in
    Cpu.set_xmm cpu dst (xmm_of_bytes (Crypto.Aes128.aesenclast ~state ~round_key));
    continue_at cpu next_rip
  | Pcmpeq128 (x, m) ->
    let lo, hi = Cpu.get_xmm cpu x in
    let ea = effective_address cpu m in
    let mlo = Memory.read_u64 mem ea in
    let mhi = Memory.read_u64 mem (Int64.add ea 8L) in
    flags.zf <- Int64.equal lo mlo && Int64.equal hi mhi;
    flags.sf <- false;
    flags.cf <- false;
    flags.of_ <- false;
    continue_at cpu next_rip

(* The interpreter tier: retire up to [max_insns] instructions from
   block [b], charging cycles and running the [on_retire] probe per
   instruction. Instructions before the block's terminator are
   straight-line by construction, so as long as [execute] returns
   [Running] the next array slot is the instruction at the new rip. *)
let interp_block env cpu mem b ~max_insns =
  let limit = Stdlib.min (Array.length b.Tcache.insns) max_insns in
  let rec go i =
    let insn = b.Tcache.insns.(i) in
    (match env.on_retire with Some f -> f cpu insn | None -> ());
    let call_extra = if b.Tcache.callret.(i) then cpu.Cpu.call_tax else 0 in
    Cpu.add_cycles cpu (b.Tcache.costs.(i) + cpu.Cpu.insn_tax + call_extra);
    match execute env cpu mem insn b.Tcache.nexts.(i) with
    | Running when i + 1 < limit -> go (i + 1)
    | outcome -> (outcome, i + 1)
    | exception Fault.Trap fault -> (Faulted fault, i + 1)
    | exception Isa.Encode.Unresolved_symbol s ->
      (Faulted (Fault.Bad_instruction (cpu.Cpu.rip, "unresolved symbol " ^ s)), i + 1)
  in
  go 0

(* Per-block exit accounting for the cycle profiler: everything the
   dispatch charged (pre-summed straight-line costs in the compiled
   tier, per-insn adds in the interpreter) is attributed to the block's
   start address in one note. The tier-2 chain runner attributes its
   own per-constituent cycles instead (see [Compile.run_tier2]) — its
   dispatches must NOT pass through here, or blocks would be charged
   twice. *)
let profiled cpu addr f =
  if not (Telemetry.Profile.enabled ()) then f ()
  else begin
    let c0 = cpu.Cpu.cycles in
    let r = f () in
    Telemetry.Profile.note ~addr ~cycles:(Int64.to_int (Int64.sub cpu.Cpu.cycles c0));
    r
  end

(* Tier dispatch. Traced runs always interpret (the probe observes
   every retire); otherwise a block is translated once per environment
   and the closure array is reused — including by fork relatives
   sharing the block record, since compilation is deterministic and the
   result immutable. Under tiers 2 and 3 the translation additionally
   runs through the chain runner, which keeps control inside compiled
   code across block exits until fuel runs out or a successor misses
   the cache (tier 3 further swaps each hop to the register-caching
   chain when fuel covers it). A fetch fault retires nothing. *)
let dispatch_block env cpu mem b ~max_insns =
  let addr = b.Tcache.bb_start in
  let interp () = profiled cpu addr (fun () -> interp_block env cpu mem b ~max_insns) in
  match env.on_retire with
  | Some _ -> interp ()
  | None -> (
    match Compile.tier () with
    | 0 -> interp ()
    | tier -> (
      let chained = tier >= 2 in
      let run c =
        if chained then
          Compile.run_tier2 cpu mem ~is_builtin:env.is_builtin
            ~inline:env.inline_builtin c ~fuel:max_insns
        else profiled cpu addr (fun () -> Compile.run_code c cpu mem ~limit:max_insns)
      in
      match b.Tcache.compiled with
      | Compile.Code c when Compile.key c == env.is_builtin -> run c
      | Compile.Uncompilable -> interp ()
      | _ -> (
        (* not yet compiled, or compiled against another environment.
           Tier 1 compiles without inlining, preserving its exact
           per-block dispatch protocol (builtin calls exit to the OS). *)
        let slot =
          if chained then
            Compile.compile ~inline:env.inline_builtin ~is_builtin:env.is_builtin b
          else Compile.compile ~is_builtin:env.is_builtin b
        in
        match slot with
        | Compile.Code c ->
          b.Tcache.compiled <- slot;
          Tcache.note_compile cpu.Cpu.tcache;
          run c
        | _ ->
          b.Tcache.compiled <- slot;
          interp ())))

let step_block env cpu mem ~max_insns =
  match fetch_block cpu mem with
  | Error fault -> (Faulted fault, 0)
  | Ok b -> dispatch_block env cpu mem b ~max_insns

let step env cpu mem = fst (step_block env cpu mem ~max_insns:1)

type run_result = Stopped of outcome | Out_of_fuel

let run ?(max_insns = 100_000_000) env cpu mem =
  let rec loop remaining =
    if remaining <= 0 then Out_of_fuel
    else begin
      let outcome, retired = step_block env cpu mem ~max_insns:remaining in
      match outcome with
      | Running -> loop (remaining - retired)
      | other -> Stopped other
    end
  in
  loop max_insns
