type outcome =
  | Running
  | Builtin of string
  | Syscall_trap
  | Halted
  | Faulted of Fault.t

type env = {
  is_builtin : int64 -> string option;
  on_retire : (Cpu.t -> Isa.Insn.t -> unit) option;
}

let create_env ?on_retire ~is_builtin () = { is_builtin; on_retire }

let max_insn_len = 32

(* Fetch up to [max_insn_len] bytes at rip, stopping at the first
   unmapped byte so a valid instruction at the end of a mapped region
   still decodes. *)
let fetch_bytes mem rip =
  let buf = Bytes.create max_insn_len in
  let rec collect i =
    if i >= max_insn_len then i
    else begin
      let addr = Int64.add rip (Int64.of_int i) in
      if Memory.is_mapped mem addr then begin
        Bytes.set buf i (Char.chr (Memory.read_u8 mem addr));
        collect (i + 1)
      end
      else i
    end
  in
  let n = collect 0 in
  if n = 0 then None else Some (Bytes.sub buf 0 n)

let fetch _env cpu mem =
  match Hashtbl.find_opt cpu.Cpu.decode_cache cpu.Cpu.rip with
  | Some pair -> Ok pair
  | None -> (
    match fetch_bytes mem cpu.Cpu.rip with
    | None -> Error (Fault.Segfault cpu.Cpu.rip)
    | Some bytes -> (
      match Isa.Decode.decode bytes 0 with
      | insn, len ->
        Hashtbl.add cpu.Cpu.decode_cache cpu.Cpu.rip (insn, len);
        Ok (insn, len)
      | exception Isa.Decode.Bad_encoding (_, msg) ->
        Error (Fault.Bad_instruction (cpu.Cpu.rip, msg))))

let effective_address cpu (m : Isa.Operand.mem) =
  let base = match m.base with Some r -> Cpu.get cpu r | None -> 0L in
  let index =
    match m.index with
    | Some (r, s) ->
      Int64.mul (Cpu.get cpu r) (Int64.of_int (Isa.Operand.scale_factor s))
    | None -> 0L
  in
  let seg = if m.seg_fs then cpu.Cpu.fs_base else 0L in
  Int64.add (Int64.add seg base) (Int64.add index m.disp)

let read64 cpu mem = function
  | Isa.Operand.Reg r -> Cpu.get cpu r
  | Isa.Operand.Imm v -> v
  | Isa.Operand.Mem m -> Memory.read_u64 mem (effective_address cpu m)

let write64 cpu mem op v =
  match op with
  | Isa.Operand.Reg r -> Cpu.set cpu r v
  | Isa.Operand.Mem m -> Memory.write_u64 mem (effective_address cpu m) v
  | Isa.Operand.Imm _ ->
    raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "store to immediate")))

let read8 cpu mem = function
  | Isa.Operand.Reg r -> Int64.to_int (Int64.logand (Cpu.get cpu r) 0xFFL)
  | Isa.Operand.Imm v -> Int64.to_int (Int64.logand v 0xFFL)
  | Isa.Operand.Mem m -> Memory.read_u8 mem (effective_address cpu m)

let write8 cpu mem op v =
  match op with
  | Isa.Operand.Reg r ->
    (* Low-byte merge, like real mov to an 8-bit subregister. *)
    let old = Cpu.get cpu r in
    Cpu.set cpu r (Int64.logor (Int64.logand old (-256L)) (Int64.of_int (v land 0xFF)))
  | Isa.Operand.Mem m -> Memory.write_u8 mem (effective_address cpu m) v
  | Isa.Operand.Imm _ ->
    raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "store to immediate")))

let read32 cpu mem = function
  | Isa.Operand.Reg r -> Int64.logand (Cpu.get cpu r) 0xFFFFFFFFL
  | Isa.Operand.Imm v -> Int64.logand v 0xFFFFFFFFL
  | Isa.Operand.Mem m -> Memory.read_u32 mem (effective_address cpu m)

let write32 cpu mem op v =
  match op with
  | Isa.Operand.Reg r -> Cpu.set cpu r (Int64.logand v 0xFFFFFFFFL)
  | Isa.Operand.Mem m -> Memory.write_u32 mem (effective_address cpu m) v
  | Isa.Operand.Imm _ ->
    raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "store to immediate")))

let set_logic_flags (f : Cpu.flags) r =
  f.zf <- Int64.equal r 0L;
  f.sf <- Int64.compare r 0L < 0;
  f.cf <- false;
  f.of_ <- false

let set_add_flags (f : Cpu.flags) a b r =
  f.zf <- Int64.equal r 0L;
  f.sf <- Int64.compare r 0L < 0;
  f.cf <- Int64.unsigned_compare r a < 0;
  f.of_ <- Int64.compare a 0L < 0 = (Int64.compare b 0L < 0)
           && Int64.compare r 0L < 0 <> (Int64.compare a 0L < 0)

let set_sub_flags (f : Cpu.flags) a b r =
  f.zf <- Int64.equal r 0L;
  f.sf <- Int64.compare r 0L < 0;
  f.cf <- Int64.unsigned_compare a b < 0;
  f.of_ <- Int64.compare a 0L < 0 <> (Int64.compare b 0L < 0)
           && Int64.compare r 0L < 0 <> (Int64.compare a 0L < 0)

let cond_holds (f : Cpu.flags) = function
  | Isa.Insn.E -> f.zf
  | NE -> not f.zf
  | L -> f.sf <> f.of_
  | LE -> f.zf || f.sf <> f.of_
  | G -> (not f.zf) && f.sf = f.of_
  | GE -> f.sf = f.of_
  | B -> f.cf
  | BE -> f.cf || f.zf
  | A -> (not f.cf) && not f.zf
  | AE -> not f.cf
  | S -> f.sf
  | NS -> not f.sf

let push cpu mem v =
  let rsp = Int64.sub (Cpu.get cpu Isa.Reg.RSP) 8L in
  Cpu.set cpu Isa.Reg.RSP rsp;
  Memory.write_u64 mem rsp v

let pop cpu mem =
  let rsp = Cpu.get cpu Isa.Reg.RSP in
  let v = Memory.read_u64 mem rsp in
  Cpu.set cpu Isa.Reg.RSP (Int64.add rsp 8L);
  v

let xmm_to_bytes (lo, hi) =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 lo;
  Bytes.set_int64_le b 8 hi;
  b

let xmm_of_bytes b = (Bytes.get_int64_le b 0, Bytes.get_int64_le b 8)

let target_addr = function
  | Isa.Insn.Abs a -> a
  | Isa.Insn.Sym s -> raise (Isa.Encode.Unresolved_symbol s)

let execute env cpu mem insn next_rip =
  let flags = cpu.Cpu.flags in
  let continue_at addr =
    cpu.Cpu.rip <- addr;
    Running
  in
  let fallthrough () = continue_at next_rip in
  match insn with
  | Isa.Insn.Nop -> fallthrough ()
  | Mov (dst, src) ->
    write64 cpu mem dst (read64 cpu mem src);
    fallthrough ()
  | Movb (dst, src) ->
    write8 cpu mem dst (read8 cpu mem src);
    fallthrough ()
  | Movl (dst, src) ->
    write32 cpu mem dst (read32 cpu mem src);
    fallthrough ()
  | Lea (r, m) ->
    Cpu.set cpu r (effective_address cpu m);
    fallthrough ()
  | Push op ->
    push cpu mem (read64 cpu mem op);
    fallthrough ()
  | Pop op ->
    let v = pop cpu mem in
    write64 cpu mem op v;
    fallthrough ()
  | Bin (bop, dst, src) ->
    let a = read64 cpu mem dst in
    let b = read64 cpu mem src in
    (match bop with
    | Add ->
      let r = Int64.add a b in
      set_add_flags flags a b r;
      write64 cpu mem dst r
    | Sub ->
      let r = Int64.sub a b in
      set_sub_flags flags a b r;
      write64 cpu mem dst r
    | Xor ->
      let r = Int64.logxor a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | And ->
      let r = Int64.logand a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | Or ->
      let r = Int64.logor a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | Cmp ->
      let r = Int64.sub a b in
      set_sub_flags flags a b r
    | Test ->
      let r = Int64.logand a b in
      set_logic_flags flags r
    | Imul ->
      let r = Int64.mul a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | Idiv ->
      if Int64.equal b 0L then
        raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "division by zero")));
      let r = Int64.div a b in
      set_logic_flags flags r;
      write64 cpu mem dst r
    | Irem ->
      if Int64.equal b 0L then
        raise (Fault.Trap (Fault.Bad_instruction (cpu.Cpu.rip, "division by zero")));
      let r = Int64.rem a b in
      set_logic_flags flags r;
      write64 cpu mem dst r);
    fallthrough ()
  | Shift (sop, dst, k) ->
    let a = read64 cpu mem dst in
    let k = k land 63 in
    let r =
      match sop with
      | Shl -> Int64.shift_left a k
      | Shr -> Int64.shift_right_logical a k
      | Sar -> Int64.shift_right a k
    in
    set_logic_flags flags r;
    write64 cpu mem dst r;
    fallthrough ()
  | Neg op ->
    let r = Int64.neg (read64 cpu mem op) in
    set_logic_flags flags r;
    flags.cf <- not (Int64.equal r 0L);
    write64 cpu mem op r;
    fallthrough ()
  | Not op ->
    write64 cpu mem op (Int64.lognot (read64 cpu mem op));
    fallthrough ()
  | Setcc (c, r) ->
    Cpu.set cpu r (if cond_holds flags c then 1L else 0L);
    fallthrough ()
  | Jmp t -> continue_at (target_addr t)
  | Jcc (c, t) ->
    if cond_holds flags c then continue_at (target_addr t) else fallthrough ()
  | Call t -> (
    let addr = target_addr t in
    match env.is_builtin addr with
    | Some name ->
      cpu.Cpu.rip <- next_rip;
      Builtin name
    | None ->
      push cpu mem next_rip;
      continue_at addr)
  | Call_ind op -> (
    let addr = read64 cpu mem op in
    match env.is_builtin addr with
    | Some name ->
      cpu.Cpu.rip <- next_rip;
      Builtin name
    | None ->
      push cpu mem next_rip;
      continue_at addr)
  | Ret ->
    let addr = pop cpu mem in
    continue_at addr
  | Leave ->
    Cpu.set cpu Isa.Reg.RSP (Cpu.get cpu Isa.Reg.RBP);
    let rbp = pop cpu mem in
    Cpu.set cpu Isa.Reg.RBP rbp;
    fallthrough ()
  | Rdrand r ->
    Cpu.set cpu r (Util.Prng.next64 cpu.Cpu.rng);
    flags.cf <- true;
    flags.zf <- false;
    fallthrough ()
  | Rdtsc ->
    let tsc = cpu.Cpu.cycles in
    Cpu.set cpu Isa.Reg.RAX (Int64.logand tsc 0xFFFFFFFFL);
    Cpu.set cpu Isa.Reg.RDX (Int64.shift_right_logical tsc 32);
    fallthrough ()
  | Syscall ->
    cpu.Cpu.rip <- next_rip;
    Syscall_trap
  | Hlt -> Halted
  | Movq_to_xmm (x, r) ->
    Cpu.set_xmm cpu x (Cpu.get cpu r, 0L);
    fallthrough ()
  | Movq_from_xmm (r, x) ->
    let lo, _ = Cpu.get_xmm cpu x in
    Cpu.set cpu r lo;
    fallthrough ()
  | Pinsrq_high (x, r) ->
    let lo, _ = Cpu.get_xmm cpu x in
    Cpu.set_xmm cpu x (lo, Cpu.get cpu r);
    fallthrough ()
  | Movhps_load (x, m) ->
    let lo, _ = Cpu.get_xmm cpu x in
    Cpu.set_xmm cpu x (lo, Memory.read_u64 mem (effective_address cpu m));
    fallthrough ()
  | Movq_store (m, x) ->
    let lo, _ = Cpu.get_xmm cpu x in
    Memory.write_u64 mem (effective_address cpu m) lo;
    fallthrough ()
  | Movdqu_load (x, m) ->
    let ea = effective_address cpu m in
    Cpu.set_xmm cpu x (Memory.read_u64 mem ea, Memory.read_u64 mem (Int64.add ea 8L));
    fallthrough ()
  | Movdqu_store (m, x) ->
    let ea = effective_address cpu m in
    let lo, hi = Cpu.get_xmm cpu x in
    Memory.write_u64 mem ea lo;
    Memory.write_u64 mem (Int64.add ea 8L) hi;
    fallthrough ()
  | Aesenc (dst, src) ->
    let state = xmm_to_bytes (Cpu.get_xmm cpu dst) in
    let round_key = xmm_to_bytes (Cpu.get_xmm cpu src) in
    Cpu.set_xmm cpu dst (xmm_of_bytes (Crypto.Aes128.aesenc ~state ~round_key));
    fallthrough ()
  | Aesenclast (dst, src) ->
    let state = xmm_to_bytes (Cpu.get_xmm cpu dst) in
    let round_key = xmm_to_bytes (Cpu.get_xmm cpu src) in
    Cpu.set_xmm cpu dst (xmm_of_bytes (Crypto.Aes128.aesenclast ~state ~round_key));
    fallthrough ()
  | Pcmpeq128 (x, m) ->
    let lo, hi = Cpu.get_xmm cpu x in
    let ea = effective_address cpu m in
    let mlo = Memory.read_u64 mem ea in
    let mhi = Memory.read_u64 mem (Int64.add ea 8L) in
    flags.zf <- Int64.equal lo mlo && Int64.equal hi mhi;
    flags.sf <- false;
    flags.cf <- false;
    flags.of_ <- false;
    fallthrough ()

let step env cpu mem =
  match fetch env cpu mem with
  | Error fault -> Faulted fault
  | Ok (insn, len) -> (
    (match env.on_retire with Some f -> f cpu insn | None -> ());
    let call_extra =
      match insn with
      | Isa.Insn.Call _ | Isa.Insn.Call_ind _ | Isa.Insn.Ret -> cpu.Cpu.call_tax
      | _ -> 0
    in
    Cpu.add_cycles cpu (Cost.cycles insn + cpu.Cpu.insn_tax + call_extra);
    let next_rip = Int64.add cpu.Cpu.rip (Int64.of_int len) in
    match execute env cpu mem insn next_rip with
    | outcome -> outcome
    | exception Fault.Trap fault -> Faulted fault
    | exception Isa.Encode.Unresolved_symbol s ->
      Faulted (Fault.Bad_instruction (cpu.Cpu.rip, "unresolved symbol " ^ s)))

type run_result = Stopped of outcome | Out_of_fuel

let run ?(max_insns = 100_000_000) env cpu mem =
  let rec loop remaining =
    if remaining <= 0 then Out_of_fuel
    else
      match step env cpu mem with
      | Running -> loop (remaining - 1)
      | other -> Stopped other
  in
  loop max_insns
