(** The compile-tier attachment point, kept free of dependencies so the
    translation cache can hold compiled code without a module cycle.

    {!Tcache.block} stores a [slot]; {!Compile} (which must sit above
    {!Cpu} in the dependency order, while [Tcache] sits below it)
    extends [slot] with its actual code representation. [outcome] is the
    interpreter's exit status, defined here so both the closure tier and
    {!Exec} share one type ([Exec.outcome] re-exports it). *)

type outcome =
  | Running  (** instruction retired; rip advanced *)
  | Builtin of string  (** [call] targeted a glibc slot *)
  | Syscall_trap  (** [syscall] retired; rip advanced *)
  | Halted  (** [hlt] *)
  | Faulted of Fault.t

type slot = ..

type slot += Not_compiled  (** block not yet considered by the compile tier *)
