(* Closure compilation of Tcache blocks, lowered from the explicit
   {!Ir} in passes (lift -> normalize -> fuse -> emit): every decision
   that depends only on the instruction encoding — operand shape,
   immediate values, addressing mode, builtin resolution for direct
   calls — is taken once here, so the retire loop left in [run_code] is
   an array walk over pre-specialized closures. Cycle charging and rip
   updates are deferred to block exit (see the protocol notes on
   [run_code]); both were per-instruction allocations in the interpreter
   (boxed Int64 for [Cpu.add_cycles], caml_modify for rip).

   Tier 2 ([run_tier2]) additionally chains compiled blocks through
   their exits — a taken/fall-through/return transfer jumps straight
   into the successor's translation instead of returning to
   [Exec.step_block]'s dispatch loop — and fuses hot unconditional
   chains into superblock translations. See the link-validity notes on
   [link_live] for how invalidation and CoW forks unlink stale
   successors.

   Tier 3 ([emit3]) caches the translation's hottest guest registers in
   closure "locals" — arguments threaded through a continuation chain —
   so their reads and writes stop going through the [Cpu.gprs] array
   (and its caml_modify write barrier) at every access. The spill
   protocol notes on [emit3] explain why faults still observe exact
   architectural state. *)

module I = Isa.Insn
module O = Isa.Operand

type outcome = Compiled.outcome =
  | Running
  | Builtin of string
  | Syscall_trap
  | Halted
  | Faulted of Fault.t

type op = Cpu.t -> Memory.t -> outcome

type builtin_fn = Cpu.t -> Memory.t -> int64

(* A patched exit: the successor translation this code may enter
   directly, valid only for the address space and invalidation epoch it
   was resolved under (a fork relative or a post-invalidation run must
   re-resolve — see [link_live]). *)
type link = {
  mutable l_space : Tcache.t option;  (* the space the link was resolved in *)
  mutable l_epoch : int;
  mutable l_addr : int64;  (* entry rip the target translates *)
  mutable l_target : code option;
}

and code = {
  ops : op array;
  addrs : int64 array;  (* address of each instruction *)
  nexts : int64 array;  (* fall-through rip of each instruction *)
  csum : int array;  (* csum.(k) = static cycles of the first k insns *)
  crsum : int array;  (* crsum.(k) = call/ret insns among the first k *)
  sets_rip : bool array;
      (* closure writes rip when returning Running — terminators, which
         superblock fusion can place mid-array *)
  exit_ : Ir.exit_shape;
  blocks : Tcache.block array;  (* constituent blocks, head first *)
  starts : int array;  (* first instruction index of each constituent *)
  key : int64 -> string option;
      (* the [is_builtin] the code was specialized against; compare with
         (==) — code compiled for another environment must be rebuilt *)
  mutable hot : int;  (* tier-2 entry count, drives superblock formation *)
  mutable fuse_tried : bool;
  link_a : link;  (* taken / unconditional / dynamic target cache *)
  link_b : link;  (* fall-through side of a two-way branch *)
  cached : int array;  (* tier-3 cached gpr indices, [||] when t3 = None *)
  t3 : (Cpu.t -> Memory.t -> outcome * int) option;
      (* tier-3 register-caching chain: runs the whole translation (no
         fuel boundary inside, so only entered with fuel >= length),
         returning [run_code]'s (outcome, retired) — the caller settles
         cycles with [charge_exit] exactly like [run_code]'s finish *)
}

type Compiled.slot += Code of code | Uncompilable

(* Tier switch, read once per block dispatch. Atomic so bench/tests can
   force a tier while campaign domains are quiescent.
   0 = interpreter, 1 = per-block closures (PR 3), 2 = chained/fused
   (PR 7), 3 = chained/fused with register caching (default). *)
let tier_flag = Atomic.make 3

let set_tier n =
  if n < 0 || n > 3 then invalid_arg "Compile.set_tier: expected 0, 1, 2 or 3";
  Atomic.set tier_flag n

let tier () = Atomic.get tier_flag
let set_enabled b = set_tier (if b then 3 else 0)
let enabled () = tier () > 0

(* Entries before a code becomes a superblock-formation candidate.
   Tests force 1 to fuse immediately; the default keeps cold paths out
   of the fused store. *)
let fuse_threshold = Atomic.make 16
let set_fuse_threshold n = Atomic.set fuse_threshold (Stdlib.max 1 n)
let get_fuse_threshold () = Atomic.get fuse_threshold

(* ---- Semantics helpers shared with the interpreter tier ------------ *)
(* [Exec] aliases these; keeping one definition means the two tiers
   cannot drift on flag arithmetic or stack discipline. *)

let set_logic_flags (f : Cpu.flags) r =
  f.zf <- Int64.equal r 0L;
  f.sf <- Int64.compare r 0L < 0;
  f.cf <- false;
  f.of_ <- false

let set_add_flags (f : Cpu.flags) a b r =
  f.zf <- Int64.equal r 0L;
  f.sf <- Int64.compare r 0L < 0;
  f.cf <- Int64.unsigned_compare r a < 0;
  f.of_ <- Int64.compare a 0L < 0 = (Int64.compare b 0L < 0)
           && Int64.compare r 0L < 0 <> (Int64.compare a 0L < 0)

let set_sub_flags (f : Cpu.flags) a b r =
  f.zf <- Int64.equal r 0L;
  f.sf <- Int64.compare r 0L < 0;
  f.cf <- Int64.unsigned_compare a b < 0;
  f.of_ <- Int64.compare a 0L < 0 <> (Int64.compare b 0L < 0)
           && Int64.compare r 0L < 0 <> (Int64.compare a 0L < 0)

let cond_holds (f : Cpu.flags) = function
  | I.E -> f.zf
  | NE -> not f.zf
  | L -> f.sf <> f.of_
  | LE -> f.zf || f.sf <> f.of_
  | G -> (not f.zf) && f.sf = f.of_
  | GE -> f.sf = f.of_
  | B -> f.cf
  | BE -> f.cf || f.zf
  | A -> (not f.cf) && not f.zf
  | AE -> not f.cf
  | S -> f.sf
  | NS -> not f.sf

let push cpu mem v =
  let rsp = Int64.sub (Cpu.get cpu Isa.Reg.RSP) 8L in
  Cpu.set cpu Isa.Reg.RSP rsp;
  Memory.write_u64 mem rsp v

let pop cpu mem =
  let rsp = Cpu.get cpu Isa.Reg.RSP in
  let v = Memory.read_u64 mem rsp in
  Cpu.set cpu Isa.Reg.RSP (Int64.add rsp 8L);
  v

let xmm_to_bytes (lo, hi) =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 lo;
  Bytes.set_int64_le b 8 hi;
  b

let xmm_of_bytes b = (Bytes.get_int64_le b 0, Bytes.get_int64_le b 8)

(* ---- Operand specialization ---------------------------------------- *)

let rsp_i = Isa.Reg.index Isa.Reg.RSP
let rbp_i = Isa.Reg.index Isa.Reg.RBP
let rax_i = Isa.Reg.index Isa.Reg.RAX
let rdx_i = Isa.Reg.index Isa.Reg.RDX

(* Effective address, one closure per addressing mode. Int64 addition is
   associative modulo 2^64, so the specialized sums equal the
   interpreter's seg + base + (index*scale + disp). *)
let rec ea_of (m : O.mem) : Cpu.t -> int64 =
  match (m.O.seg_fs, m.O.base, m.O.index) with
  | true, None, None ->
    let d = m.O.disp in
    fun cpu -> Int64.add cpu.Cpu.fs_base d
  | true, _, _ ->
    let inner = ea_of { m with O.seg_fs = false } in
    fun cpu -> Int64.add cpu.Cpu.fs_base (inner cpu)
  | false, None, None ->
    let d = m.O.disp in
    fun _ -> d
  | false, Some b, None ->
    let b = Isa.Reg.index b and d = m.O.disp in
    fun cpu -> Int64.add (Array.unsafe_get cpu.Cpu.gprs b) d
  | false, None, Some (x, s) ->
    let x = Isa.Reg.index x in
    let s = Int64.of_int (O.scale_factor s) and d = m.O.disp in
    fun cpu -> Int64.add (Int64.mul (Array.unsafe_get cpu.Cpu.gprs x) s) d
  | false, Some b, Some (x, s) ->
    let b = Isa.Reg.index b and x = Isa.Reg.index x in
    let s = Int64.of_int (O.scale_factor s) and d = m.O.disp in
    fun cpu ->
      Int64.add
        (Array.unsafe_get cpu.Cpu.gprs b)
        (Int64.add (Int64.mul (Array.unsafe_get cpu.Cpu.gprs x) s) d)

let store_to_imm addr = Fault.Trap (Fault.Bad_instruction (addr, "store to immediate"))

let read64_of : O.t -> Cpu.t -> Memory.t -> int64 = function
  | O.Reg r ->
    let i = Isa.Reg.index r in
    fun cpu _ -> Array.unsafe_get cpu.Cpu.gprs i
  | O.Imm v -> fun _ _ -> v
  | O.Mem m ->
    let ea = ea_of m in
    fun cpu mem -> Memory.read_u64 mem (ea cpu)

let write64_of addr : O.t -> Cpu.t -> Memory.t -> int64 -> unit = function
  | O.Reg r ->
    let i = Isa.Reg.index r in
    fun cpu _ v -> Array.unsafe_set cpu.Cpu.gprs i v
  | O.Mem m ->
    let ea = ea_of m in
    fun cpu mem v -> Memory.write_u64 mem (ea cpu) v
  | O.Imm _ -> fun _ _ _ -> raise (store_to_imm addr)

let read8_of : O.t -> Cpu.t -> Memory.t -> int = function
  | O.Reg r ->
    let i = Isa.Reg.index r in
    fun cpu _ -> Int64.to_int (Int64.logand (Array.unsafe_get cpu.Cpu.gprs i) 0xFFL)
  | O.Imm v ->
    let v = Int64.to_int (Int64.logand v 0xFFL) in
    fun _ _ -> v
  | O.Mem m ->
    let ea = ea_of m in
    fun cpu mem -> Memory.read_u8 mem (ea cpu)

let write8_of addr : O.t -> Cpu.t -> Memory.t -> int -> unit = function
  | O.Reg r ->
    let i = Isa.Reg.index r in
    fun cpu _ v ->
      (* Low-byte merge, like real mov to an 8-bit subregister. *)
      let old = Array.unsafe_get cpu.Cpu.gprs i in
      Array.unsafe_set cpu.Cpu.gprs i
        (Int64.logor (Int64.logand old (-256L)) (Int64.of_int (v land 0xFF)))
  | O.Mem m ->
    let ea = ea_of m in
    fun cpu mem v -> Memory.write_u8 mem (ea cpu) v
  | O.Imm _ -> fun _ _ _ -> raise (store_to_imm addr)

let read32_of : O.t -> Cpu.t -> Memory.t -> int64 = function
  | O.Reg r ->
    let i = Isa.Reg.index r in
    fun cpu _ -> Int64.logand (Array.unsafe_get cpu.Cpu.gprs i) 0xFFFFFFFFL
  | O.Imm v ->
    let v = Int64.logand v 0xFFFFFFFFL in
    fun _ _ -> v
  | O.Mem m ->
    let ea = ea_of m in
    fun cpu mem -> Memory.read_u32 mem (ea cpu)

let write32_of addr : O.t -> Cpu.t -> Memory.t -> int64 -> unit = function
  | O.Reg r ->
    let i = Isa.Reg.index r in
    fun cpu _ v -> Array.unsafe_set cpu.Cpu.gprs i (Int64.logand v 0xFFFFFFFFL)
  | O.Mem m ->
    let ea = ea_of m in
    fun cpu mem v -> Memory.write_u32 mem (ea cpu) v
  | O.Imm _ -> fun _ _ _ -> raise (store_to_imm addr)

let cond_test : I.cond -> Cpu.flags -> bool = function
  | I.E -> fun f -> f.Cpu.zf
  | I.NE -> fun f -> not f.Cpu.zf
  | I.L -> fun f -> f.Cpu.sf <> f.Cpu.of_
  | I.LE -> fun f -> f.Cpu.zf || f.Cpu.sf <> f.Cpu.of_
  | I.G -> fun f -> (not f.Cpu.zf) && f.Cpu.sf = f.Cpu.of_
  | I.GE -> fun f -> f.Cpu.sf = f.Cpu.of_
  | I.B -> fun f -> f.Cpu.cf
  | I.BE -> fun f -> f.Cpu.cf || f.Cpu.zf
  | I.A -> fun f -> (not f.Cpu.cf) && not f.Cpu.zf
  | I.AE -> fun f -> not f.Cpu.cf
  | I.S -> fun f -> f.Cpu.sf
  | I.NS -> fun f -> not f.Cpu.sf

(* ---- Per-instruction translation ----------------------------------- *)

(* [addr] is the instruction's own address (what cpu.rip reads during
   its interpretation — rip itself is stale while compiled code runs),
   [next] its fall-through rip. Each closure must mutate state in the
   interpreter's order so a fault mid-instruction leaves identical
   partial state; comments call out the spots where that order is
   load-bearing. *)
let insn_op ~is_builtin ~inline ~addr ~next (insn : I.t) : op =
  match insn with
  | I.Nop -> fun _ _ -> Running
  (* mov, fused operand shapes first *)
  | I.Mov (O.Reg d, O.Imm v) ->
    let d = Isa.Reg.index d in
    fun cpu _ ->
      Array.unsafe_set cpu.Cpu.gprs d v;
      Running
  | I.Mov (O.Reg d, O.Reg s) ->
    let d = Isa.Reg.index d and s = Isa.Reg.index s in
    fun cpu _ ->
      Array.unsafe_set cpu.Cpu.gprs d (Array.unsafe_get cpu.Cpu.gprs s);
      Running
  | I.Mov (O.Reg d, O.Mem m) ->
    let d = Isa.Reg.index d and ea = ea_of m in
    fun cpu mem ->
      Array.unsafe_set cpu.Cpu.gprs d (Memory.read_u64 mem (ea cpu));
      Running
  | I.Mov (O.Mem m, O.Reg s) ->
    let ea = ea_of m and s = Isa.Reg.index s in
    fun cpu mem ->
      Memory.write_u64 mem (ea cpu) (Array.unsafe_get cpu.Cpu.gprs s);
      Running
  | I.Mov (O.Mem m, O.Imm v) ->
    let ea = ea_of m in
    fun cpu mem ->
      Memory.write_u64 mem (ea cpu) v;
      Running
  | I.Mov (dst, src) ->
    let rd = read64_of src and wr = write64_of addr dst in
    fun cpu mem ->
      (* source read faults before a store-to-immediate traps *)
      let v = rd cpu mem in
      wr cpu mem v;
      Running
  | I.Movb (dst, src) ->
    let rd = read8_of src and wr = write8_of addr dst in
    fun cpu mem ->
      let v = rd cpu mem in
      wr cpu mem v;
      Running
  | I.Movl (dst, src) ->
    let rd = read32_of src and wr = write32_of addr dst in
    fun cpu mem ->
      let v = rd cpu mem in
      wr cpu mem v;
      Running
  | I.Lea (r, m) ->
    let r = Isa.Reg.index r and ea = ea_of m in
    fun cpu _ ->
      Array.unsafe_set cpu.Cpu.gprs r (ea cpu);
      Running
  | I.Push (O.Reg s) ->
    let s = Isa.Reg.index s in
    fun cpu mem ->
      (* value read before rsp moves: push rsp stores the old rsp *)
      let v = Array.unsafe_get cpu.Cpu.gprs s in
      let rsp = Int64.sub (Array.unsafe_get cpu.Cpu.gprs rsp_i) 8L in
      Array.unsafe_set cpu.Cpu.gprs rsp_i rsp;
      Memory.write_u64 mem rsp v;
      Running
  | I.Push (O.Imm v) ->
    fun cpu mem ->
      let rsp = Int64.sub (Array.unsafe_get cpu.Cpu.gprs rsp_i) 8L in
      Array.unsafe_set cpu.Cpu.gprs rsp_i rsp;
      Memory.write_u64 mem rsp v;
      Running
  | I.Push op ->
    let rd = read64_of op in
    fun cpu mem ->
      let v = rd cpu mem in
      push cpu mem v;
      Running
  | I.Pop (O.Reg d) ->
    let d = Isa.Reg.index d in
    fun cpu mem ->
      let rsp = Array.unsafe_get cpu.Cpu.gprs rsp_i in
      let v = Memory.read_u64 mem rsp in
      (* rsp bump before the destination write: pop rsp ends at v *)
      Array.unsafe_set cpu.Cpu.gprs rsp_i (Int64.add rsp 8L);
      Array.unsafe_set cpu.Cpu.gprs d v;
      Running
  | I.Pop op ->
    let wr = write64_of addr op in
    fun cpu mem ->
      let v = pop cpu mem in
      wr cpu mem v;
      Running
  (* binops, fused shapes for the compiler's stack/compare idioms *)
  | I.Bin (I.Add, O.Reg d, O.Imm v) ->
    let d = Isa.Reg.index d in
    fun cpu _ ->
      let a = Array.unsafe_get cpu.Cpu.gprs d in
      let r = Int64.add a v in
      set_add_flags cpu.Cpu.flags a v r;
      Array.unsafe_set cpu.Cpu.gprs d r;
      Running
  | I.Bin (I.Sub, O.Reg d, O.Imm v) ->
    let d = Isa.Reg.index d in
    fun cpu _ ->
      let a = Array.unsafe_get cpu.Cpu.gprs d in
      let r = Int64.sub a v in
      set_sub_flags cpu.Cpu.flags a v r;
      Array.unsafe_set cpu.Cpu.gprs d r;
      Running
  | I.Bin (I.Cmp, O.Reg d, O.Imm v) ->
    let d = Isa.Reg.index d in
    fun cpu _ ->
      let a = Array.unsafe_get cpu.Cpu.gprs d in
      set_sub_flags cpu.Cpu.flags a v (Int64.sub a v);
      Running
  | I.Bin (I.Cmp, O.Reg d, O.Reg s) ->
    let d = Isa.Reg.index d and s = Isa.Reg.index s in
    fun cpu _ ->
      let a = Array.unsafe_get cpu.Cpu.gprs d in
      let b = Array.unsafe_get cpu.Cpu.gprs s in
      set_sub_flags cpu.Cpu.flags a b (Int64.sub a b);
      Running
  | I.Bin (bop, dst, src) -> (
    let rd_d = read64_of dst and rd_s = read64_of src in
    match bop with
    | I.Add ->
      let wr = write64_of addr dst in
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        let r = Int64.add a b in
        (* flags settle before the destination write, so a faulting
           mem-dst store still leaves them updated (as interpreted) *)
        set_add_flags cpu.Cpu.flags a b r;
        wr cpu mem r;
        Running
    | I.Sub ->
      let wr = write64_of addr dst in
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        let r = Int64.sub a b in
        set_sub_flags cpu.Cpu.flags a b r;
        wr cpu mem r;
        Running
    | I.Xor ->
      let wr = write64_of addr dst in
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        let r = Int64.logxor a b in
        set_logic_flags cpu.Cpu.flags r;
        wr cpu mem r;
        Running
    | I.And ->
      let wr = write64_of addr dst in
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        let r = Int64.logand a b in
        set_logic_flags cpu.Cpu.flags r;
        wr cpu mem r;
        Running
    | I.Or ->
      let wr = write64_of addr dst in
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        let r = Int64.logor a b in
        set_logic_flags cpu.Cpu.flags r;
        wr cpu mem r;
        Running
    | I.Cmp ->
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        set_sub_flags cpu.Cpu.flags a b (Int64.sub a b);
        Running
    | I.Test ->
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        set_logic_flags cpu.Cpu.flags (Int64.logand a b);
        Running
    | I.Imul ->
      let wr = write64_of addr dst in
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        let r = Int64.mul a b in
        set_logic_flags cpu.Cpu.flags r;
        wr cpu mem r;
        Running
    | I.Idiv ->
      let wr = write64_of addr dst in
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        if Int64.equal b 0L then
          raise (Fault.Trap (Fault.Bad_instruction (addr, "division by zero")));
        if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
          raise (Fault.Trap (Fault.Bad_instruction (addr, "division overflow")));
        let r = Int64.div a b in
        set_logic_flags cpu.Cpu.flags r;
        wr cpu mem r;
        Running
    | I.Irem ->
      let wr = write64_of addr dst in
      fun cpu mem ->
        let a = rd_d cpu mem in
        let b = rd_s cpu mem in
        if Int64.equal b 0L then
          raise (Fault.Trap (Fault.Bad_instruction (addr, "division by zero")));
        if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
          raise (Fault.Trap (Fault.Bad_instruction (addr, "division overflow")));
        let r = Int64.rem a b in
        set_logic_flags cpu.Cpu.flags r;
        wr cpu mem r;
        Running)
  | I.Shift (sop, dst, k) -> (
    match k land 63 with
    (* masked count 0: no read, no flag or destination change *)
    | 0 -> fun _ _ -> Running
    | k ->
      let rd = read64_of dst and wr = write64_of addr dst in
      let shift =
        match sop with
        | I.Shl -> fun a -> Int64.shift_left a k
        | I.Shr -> fun a -> Int64.shift_right_logical a k
        | I.Sar -> fun a -> Int64.shift_right a k
      in
      fun cpu mem ->
        let r = shift (rd cpu mem) in
        set_logic_flags cpu.Cpu.flags r;
        wr cpu mem r;
        Running)
  | I.Neg op ->
    let rd = read64_of op and wr = write64_of addr op in
    fun cpu mem ->
      let a = rd cpu mem in
      let r = Int64.neg a in
      let flags = cpu.Cpu.flags in
      set_logic_flags flags r;
      flags.Cpu.cf <- not (Int64.equal a 0L);
      flags.Cpu.of_ <- Int64.equal a Int64.min_int;
      wr cpu mem r;
      Running
  | I.Not op ->
    let rd = read64_of op and wr = write64_of addr op in
    fun cpu mem ->
      let v = Int64.lognot (rd cpu mem) in
      wr cpu mem v;
      Running
  | I.Setcc (c, r) ->
    let test = cond_test c and r = Isa.Reg.index r in
    fun cpu _ ->
      Array.unsafe_set cpu.Cpu.gprs r (if test cpu.Cpu.flags then 1L else 0L);
      Running
  (* control transfers: the only closures that write rip *)
  | I.Jmp (I.Abs a) ->
    fun cpu _ ->
      cpu.Cpu.rip <- a;
      Running
  | I.Jmp (I.Sym s) -> fun _ _ -> raise (Isa.Encode.Unresolved_symbol s)
  | I.Jcc (c, I.Abs a) ->
    let test = cond_test c in
    fun cpu _ ->
      cpu.Cpu.rip <- (if test cpu.Cpu.flags then a else next);
      Running
  | I.Jcc (c, I.Sym s) ->
    let test = cond_test c in
    fun cpu _ ->
      (* symbolic target only resolves (and faults) when taken *)
      if test cpu.Cpu.flags then raise (Isa.Encode.Unresolved_symbol s)
      else begin
        cpu.Cpu.rip <- next;
        Running
      end
  | I.Call (I.Sym s) -> fun _ _ -> raise (Isa.Encode.Unresolved_symbol s)
  | I.Call (I.Abs a) -> (
    (* direct calls resolve the builtin table once, here; [code.key]
       guards against running under a different environment *)
    match is_builtin a with
    | Some name -> (
      match inline name with
      | Some f ->
        (* builtin inlining: the pure core runs inside the block and
           control falls through, so chains and superblocks continue
           straight across the call. Protocol match with the OS path:
           rip advances past the call before the body runs (the kernel
           dispatches after the call retired), the return value lands
           in rax, and a fault inside the body kills with rip already
           past the call — which is why the Trap is consumed here and
           not left to [run_code]'s handler (that would rewind rip to
           the call itself). Cycle charges happen inside [f], exactly
           as the OS dispatch would have charged them. *)
        fun cpu mem ->
          cpu.Cpu.rip <- next;
          (match f cpu mem with
          | v ->
            Array.unsafe_set cpu.Cpu.gprs rax_i v;
            Running
          | exception Fault.Trap fault -> Faulted fault)
      | None ->
        fun cpu _ ->
          cpu.Cpu.rip <- next;
          Builtin name)
    | None ->
      fun cpu mem ->
        push cpu mem next;
        cpu.Cpu.rip <- a;
        Running)
  | I.Call_ind op ->
    let rd = read64_of op in
    fun cpu mem ->
      let a = rd cpu mem in
      (match is_builtin a with
      | Some name ->
        cpu.Cpu.rip <- next;
        Builtin name
      | None ->
        push cpu mem next;
        cpu.Cpu.rip <- a;
        Running)
  | I.Ret ->
    fun cpu mem ->
      let a = pop cpu mem in
      cpu.Cpu.rip <- a;
      Running
  | I.Leave ->
    fun cpu mem ->
      Array.unsafe_set cpu.Cpu.gprs rsp_i (Array.unsafe_get cpu.Cpu.gprs rbp_i);
      let rbp = pop cpu mem in
      Array.unsafe_set cpu.Cpu.gprs rbp_i rbp;
      Running
  | I.Rdrand r ->
    let r = Isa.Reg.index r in
    fun cpu _ ->
      Array.unsafe_set cpu.Cpu.gprs r (Util.Prng.next64 cpu.Cpu.rng);
      let flags = cpu.Cpu.flags in
      flags.Cpu.cf <- true;
      flags.Cpu.zf <- false;
      Running
  | I.Pac (d, m) ->
    let d = Isa.Reg.index d and m = Isa.Reg.index m in
    fun cpu _ ->
      let value = Array.unsafe_get cpu.Cpu.gprs d in
      let modifier = Array.unsafe_get cpu.Cpu.gprs m in
      Array.unsafe_set cpu.Cpu.gprs d (Cpu.pac_sign cpu ~value ~modifier);
      Running
  | I.Aut (d, m) ->
    let d = Isa.Reg.index d and m = Isa.Reg.index m in
    fun cpu _ ->
      let value = Array.unsafe_get cpu.Cpu.gprs d in
      let modifier = Array.unsafe_get cpu.Cpu.gprs m in
      let flags = cpu.Cpu.flags in
      flags.Cpu.zf <- Cpu.pac_auth cpu ~value ~modifier;
      flags.Cpu.sf <- false;
      flags.Cpu.cf <- false;
      flags.Cpu.of_ <- false;
      Array.unsafe_set cpu.Cpu.gprs d (Cpu.pac_strip value);
      Running
  | I.Rdtsc ->
    (* reads cpu.cycles mid-block, which deferred charging leaves at the
       block-entry value; [emit] intercepts it with a closure that adds
       the retired prefix's static charge (it needs the prefix sums this
       per-insn lowering does not see) *)
    assert false
  | I.Syscall ->
    fun cpu _ ->
      cpu.Cpu.rip <- next;
      Syscall_trap
  | I.Hlt ->
    fun cpu _ ->
      (* the interpreter leaves rip at the hlt itself *)
      cpu.Cpu.rip <- addr;
      Halted
  | I.Movq_to_xmm (x, r) ->
    let x = Isa.Reg.Xmm.index x and r = Isa.Reg.index r in
    fun cpu _ ->
      Array.unsafe_set cpu.Cpu.xmms x (Array.unsafe_get cpu.Cpu.gprs r, 0L);
      Running
  | I.Movq_from_xmm (r, x) ->
    let r = Isa.Reg.index r and x = Isa.Reg.Xmm.index x in
    fun cpu _ ->
      let lo, _ = Array.unsafe_get cpu.Cpu.xmms x in
      Array.unsafe_set cpu.Cpu.gprs r lo;
      Running
  | I.Pinsrq_high (x, r) ->
    let x = Isa.Reg.Xmm.index x and r = Isa.Reg.index r in
    fun cpu _ ->
      let lo, _ = Array.unsafe_get cpu.Cpu.xmms x in
      Array.unsafe_set cpu.Cpu.xmms x (lo, Array.unsafe_get cpu.Cpu.gprs r);
      Running
  | I.Movhps_load (x, m) ->
    let x = Isa.Reg.Xmm.index x and ea = ea_of m in
    fun cpu mem ->
      let lo, _ = Array.unsafe_get cpu.Cpu.xmms x in
      let hi = Memory.read_u64 mem (ea cpu) in
      Array.unsafe_set cpu.Cpu.xmms x (lo, hi);
      Running
  | I.Movq_store (m, x) ->
    let ea = ea_of m and x = Isa.Reg.Xmm.index x in
    fun cpu mem ->
      let lo, _ = Array.unsafe_get cpu.Cpu.xmms x in
      Memory.write_u64 mem (ea cpu) lo;
      Running
  | I.Movdqu_load (x, m) ->
    let x = Isa.Reg.Xmm.index x and ea = ea_of m in
    fun cpu mem ->
      let a = ea cpu in
      (* high qword first, matching the interpreter's read order, so a
         half-unmapped access faults at the same address *)
      let hi = Memory.read_u64 mem (Int64.add a 8L) in
      let lo = Memory.read_u64 mem a in
      Array.unsafe_set cpu.Cpu.xmms x (lo, hi);
      Running
  | I.Movdqu_store (m, x) ->
    let ea = ea_of m and x = Isa.Reg.Xmm.index x in
    fun cpu mem ->
      let a = ea cpu in
      let lo, hi = Array.unsafe_get cpu.Cpu.xmms x in
      Memory.write_u64 mem a lo;
      Memory.write_u64 mem (Int64.add a 8L) hi;
      Running
  | I.Aesenc (dst, src) ->
    let d = Isa.Reg.Xmm.index dst and s = Isa.Reg.Xmm.index src in
    fun cpu _ ->
      let state = xmm_to_bytes (Array.unsafe_get cpu.Cpu.xmms d) in
      let round_key = xmm_to_bytes (Array.unsafe_get cpu.Cpu.xmms s) in
      Array.unsafe_set cpu.Cpu.xmms d
        (xmm_of_bytes (Crypto.Aes128.aesenc ~state ~round_key));
      Running
  | I.Aesenclast (dst, src) ->
    let d = Isa.Reg.Xmm.index dst and s = Isa.Reg.Xmm.index src in
    fun cpu _ ->
      let state = xmm_to_bytes (Array.unsafe_get cpu.Cpu.xmms d) in
      let round_key = xmm_to_bytes (Array.unsafe_get cpu.Cpu.xmms s) in
      Array.unsafe_set cpu.Cpu.xmms d
        (xmm_of_bytes (Crypto.Aes128.aesenclast ~state ~round_key));
      Running
  | I.Pcmpeq128 (x, m) ->
    let x = Isa.Reg.Xmm.index x and ea = ea_of m in
    fun cpu mem ->
      let lo, hi = Array.unsafe_get cpu.Cpu.xmms x in
      let a = ea cpu in
      let mlo = Memory.read_u64 mem a in
      let mhi = Memory.read_u64 mem (Int64.add a 8L) in
      let flags = cpu.Cpu.flags in
      flags.Cpu.zf <- Int64.equal lo mlo && Int64.equal hi mhi;
      flags.Cpu.sf <- false;
      flags.Cpu.cf <- false;
      flags.Cpu.of_ <- false;
      Running

(* ---- Uop lowering ---------------------------------------------------- *)

let nop_op : op = fun _ _ -> Running

let uop_op ~is_builtin ~inline ~addr ~next (u : Ir.uop) : op =
  match u with
  | Ir.Zero r ->
    (* normalized [xor r, r]: no operand reads, constant flag settle *)
    fun cpu _ ->
      Array.unsafe_set cpu.Cpu.gprs r 0L;
      let f = cpu.Cpu.flags in
      f.Cpu.zf <- true;
      f.Cpu.sf <- false;
      f.Cpu.cf <- false;
      f.Cpu.of_ <- false;
      Running
  | Ir.Nop_cost -> nop_op
  | Ir.Exec insn -> insn_op ~is_builtin ~inline ~addr ~next insn

(* ---- Tier 3: guest-register caching in closure locals ---------------- *)

(* Tier 3 threads the translation's hottest guest registers (picked by
   [Ir.cache_plan]) through the emitted code as plain int64 arguments
   instead of routing every access through the [Cpu.gprs] array. OCaml
   has no mutable locals that survive closure boundaries without
   boxing, so the "locals" are the arguments of a continuation chain:
   step [i]'s closure computes its effect on the cached values and
   tail-calls step [i+1] with the results. Exact-arity indirect tail
   calls keep the chain flat on the stack, and an unchanged boxed-int64
   argument is a pointer pass — no re-boxing and no caml_modify write
   barrier, the costs this tier removes.

   Spill protocol (the correctness core): [Cpu.gprs] is stale for the
   cached registers while the chain runs, so every point where the
   architectural state becomes observable must first write the cached
   values back:

   - faults: each specialized step with a fault point carries its own
     handler that spills, settles rip to the step's address and returns
     [Faulted] — with the values architecturally current at that fault
     point (a push that faults on its store spills the
     already-decremented rsp, exactly the interpreter's partial state);
   - exits and chain transfers: the exit continuation spills before
     control returns to [run_tier2] or the dispatcher;
   - kernel-visible outcomes (syscall, hlt, non-inlined builtin calls)
     and steps the emitter does not specialize (xmm traffic, byte/word
     moves, division, inlined builtin bodies, dynamic calls): a generic
     wrapper spills, runs the tier-1 closure — which reads and writes
     [Cpu.gprs] directly, so [Os.Glibc] and builtin cores see exact
     registers — and reloads the cached values on the way back in.

   Spilling every slot unconditionally (clean or dirty) keeps the
   protocol one plain store per slot; clean spills rewrite the same
   value. The plan is a heuristic only: registers outside it simply
   stay in [Cpu.gprs], and unspecialized shapes run through the generic
   wrapper, so plan quality affects speed, never semantics. *)

(* Kept registered for metric-schema continuity: since rdtsc became
   emittable (the last uncompilable shape), nothing increments it. *)
let (_ : Telemetry.Registry.counter) =
  Telemetry.Registry.counter "vm.compile.uncompilable"

(* Emit-time tier-3 telemetry: registers cached per translation, and
   static spill/reload sites emitted (fault handlers, generic-wrapper
   crossings, chain entry/exit). *)
let g_regs_cached = Telemetry.Registry.counter "vm.compile.regs_cached"
let g_spills = Telemetry.Registry.counter "vm.compile.spills"
let g_reloads = Telemetry.Registry.counter "vm.compile.reloads"

type k3 = Cpu.t -> Memory.t -> int64 -> int64 -> outcome * int

(* Where a register lives during the chain: slot A / slot B (the two
   threaded arguments) or its [Cpu.gprs] cell. *)
type slot = SA | SB | SN of int

let emit3 ~is_builtin (ir : Ir.t) ~(ops : op array) ~(addrs : int64 array)
    ~(nexts : int64 array) ~(sets_rip : bool array) :
    (int array * (Cpu.t -> Memory.t -> outcome * int)) option =
  let plan = Ir.cache_plan ir in
  if Array.length plan = 0 then None
  else begin
    let steps = ir.Ir.steps in
    let n = Array.length steps in
    let ra = plan.(0) in
    let rb = if Array.length plan > 1 then plan.(1) else -1 in
    let sloti i = if i = ra then SA else if i = rb then SB else SN i in
    let slot r = sloti (Isa.Reg.index r) in
    (* static spill/reload sites, counted as they are emitted *)
    let spills = ref 0 and reloads = ref 0 in
    let spill cpu va vb =
      Array.unsafe_set cpu.Cpu.gprs ra va;
      if rb >= 0 then Array.unsafe_set cpu.Cpu.gprs rb vb
    in
    (* fault exit for step [i]: flush, rip at the faulting instruction *)
    let faulted i =
      incr spills;
      fun f cpu va vb ->
        spill cpu va vb;
        cpu.Cpu.rip <- Array.unsafe_get addrs i;
        (Faulted f, i + 1)
    in
    (* universal fallback: flush, run the tier-1 closure against
       [Cpu.gprs], reload on the way back in *)
    let generic i (k : k3) : k3 =
      incr spills;
      incr reloads;
      let op = Array.unsafe_get ops i in
      let addr = Array.unsafe_get addrs i in
      fun cpu mem va vb ->
        spill cpu va vb;
        (match op cpu mem with
        | Running ->
          let va' = Array.unsafe_get cpu.Cpu.gprs ra in
          let vb' = if rb >= 0 then Array.unsafe_get cpu.Cpu.gprs rb else vb in
          k cpu mem va' vb'
        | outcome -> (outcome, i + 1)
        | exception Fault.Trap f ->
          cpu.Cpu.rip <- addr;
          (Faulted f, i + 1)
        | exception Isa.Encode.Unresolved_symbol s ->
          cpu.Cpu.rip <- addr;
          (Faulted (Fault.Bad_instruction (addr, "unresolved symbol " ^ s)), i + 1))
    in
    (* effective address against the cached values. [None] bounces the
       step to the generic wrapper — only fs-segment or scaled-index
       uses of a *cached* register are left unspecialized. *)
    let ea3 (m : O.mem) : (Cpu.t -> int64 -> int64 -> int64) option =
      let is_cached r = match slot r with SN _ -> false | _ -> true in
      let base_cached =
        match m.O.base with Some r -> is_cached r | None -> false
      in
      let index_cached =
        match m.O.index with Some (r, _) -> is_cached r | None -> false
      in
      if not (base_cached || index_cached) then
        let ea = ea_of m in
        Some (fun cpu _ _ -> ea cpu)
      else if m.O.seg_fs || index_cached then None
      else
        match (m.O.base, m.O.index) with
        | Some b, None -> (
          let d = m.O.disp in
          match slot b with
          | SA -> Some (fun _ va _ -> Int64.add va d)
          | SB -> Some (fun _ _ vb -> Int64.add vb d)
          | SN _ -> None)
        | Some b, Some (x, s) -> (
          let x = Isa.Reg.index x in
          let s = Int64.of_int (O.scale_factor s) and d = m.O.disp in
          match slot b with
          | SA ->
            Some
              (fun cpu va _ ->
                Int64.add va
                  (Int64.add (Int64.mul (Array.unsafe_get cpu.Cpu.gprs x) s) d))
          | SB ->
            Some
              (fun cpu _ vb ->
                Int64.add vb
                  (Int64.add (Int64.mul (Array.unsafe_get cpu.Cpu.gprs x) s) d))
          | SN _ -> None)
        | None, _ -> None
    in
    (* a 64-bit source read against the cached values *)
    let src64 : O.t -> (Cpu.t -> Memory.t -> int64 -> int64 -> int64) option =
      function
      | O.Reg r -> (
        match slot r with
        | SA -> Some (fun _ _ va _ -> va)
        | SB -> Some (fun _ _ _ vb -> vb)
        | SN j -> Some (fun cpu _ _ _ -> Array.unsafe_get cpu.Cpu.gprs j))
      | O.Imm v -> Some (fun _ _ _ _ -> v)
      | O.Mem m -> (
        match ea3 m with
        | None -> None
        | Some ea ->
          Some (fun cpu mem va vb -> Memory.read_u64 mem (ea cpu va vb)))
    in
    (* chain exit: flush, settle rip like [run_code]'s fuel-boundary
       stop, bounce to the chain/dispatch logic *)
    let exit_k : k3 =
      incr spills;
      let last_sets = Array.unsafe_get sets_rip (n - 1) in
      let fall = Array.unsafe_get nexts (n - 1) in
      fun cpu _ va vb ->
        spill cpu va vb;
        if not last_sets then cpu.Cpu.rip <- fall;
        (Running, n)
    in
    (* Per-step specialization. Every arm mutates state in the
       interpreter's order (value reads before rsp moves, flags before
       destination writes, register writes before the store that can
       fault), so the spilled state at any fault point is exactly the
       interpreted partial state. *)
    let step3 i (k : k3) : k3 =
      match (Array.unsafe_get steps i).Ir.uop with
      | Ir.Nop_cost | Ir.Exec I.Nop -> k
      | Ir.Zero r -> (
        let set0 (f : Cpu.flags) =
          f.Cpu.zf <- true;
          f.Cpu.sf <- false;
          f.Cpu.cf <- false;
          f.Cpu.of_ <- false
        in
        match sloti r with
        | SA ->
          fun cpu mem _ vb ->
            set0 cpu.Cpu.flags;
            k cpu mem 0L vb
        | SB ->
          fun cpu mem va _ ->
            set0 cpu.Cpu.flags;
            k cpu mem va 0L
        | SN j ->
          fun cpu mem va vb ->
            Array.unsafe_set cpu.Cpu.gprs j 0L;
            set0 cpu.Cpu.flags;
            k cpu mem va vb)
      | Ir.Exec (I.Mov (O.Reg d, O.Imm v)) -> (
        match slot d with
        | SA -> fun cpu mem _ vb -> k cpu mem v vb
        | SB -> fun cpu mem va _ -> k cpu mem va v
        | SN j ->
          fun cpu mem va vb ->
            Array.unsafe_set cpu.Cpu.gprs j v;
            k cpu mem va vb)
      | Ir.Exec (I.Mov (O.Reg d, O.Reg sr)) -> (
        match (slot d, slot sr) with
        | SA, SA | SB, SB -> k
        | SA, SB -> fun cpu mem _ vb -> k cpu mem vb vb
        | SB, SA -> fun cpu mem va _ -> k cpu mem va va
        | SA, SN j ->
          fun cpu mem _ vb -> k cpu mem (Array.unsafe_get cpu.Cpu.gprs j) vb
        | SB, SN j ->
          fun cpu mem va _ -> k cpu mem va (Array.unsafe_get cpu.Cpu.gprs j)
        | SN j, SA ->
          fun cpu mem va vb ->
            Array.unsafe_set cpu.Cpu.gprs j va;
            k cpu mem va vb
        | SN j, SB ->
          fun cpu mem va vb ->
            Array.unsafe_set cpu.Cpu.gprs j vb;
            k cpu mem va vb
        | SN j, SN j' ->
          fun cpu mem va vb ->
            Array.unsafe_set cpu.Cpu.gprs j (Array.unsafe_get cpu.Cpu.gprs j');
            k cpu mem va vb)
      | Ir.Exec (I.Mov (O.Reg d, O.Mem m)) -> (
        match ea3 m with
        | None -> generic i k
        | Some ea -> (
          let fault = faulted i in
          match slot d with
          | SA -> (
            fun cpu mem va vb ->
              match Memory.read_u64 mem (ea cpu va vb) with
              | v -> k cpu mem v vb
              | exception Fault.Trap f -> fault f cpu va vb)
          | SB -> (
            fun cpu mem va vb ->
              match Memory.read_u64 mem (ea cpu va vb) with
              | v -> k cpu mem va v
              | exception Fault.Trap f -> fault f cpu va vb)
          | SN j -> (
            fun cpu mem va vb ->
              match Memory.read_u64 mem (ea cpu va vb) with
              | v ->
                Array.unsafe_set cpu.Cpu.gprs j v;
                k cpu mem va vb
              | exception Fault.Trap f -> fault f cpu va vb)))
      | Ir.Exec (I.Mov (O.Mem m, ((O.Reg _ | O.Imm _) as src))) -> (
        match (ea3 m, src64 src) with
        | Some ea, Some rd -> (
          let fault = faulted i in
          fun cpu mem va vb ->
            let v = rd cpu mem va vb in
            match Memory.write_u64 mem (ea cpu va vb) v with
            | () -> k cpu mem va vb
            | exception Fault.Trap f -> fault f cpu va vb)
        | _ -> generic i k)
      | Ir.Exec (I.Lea (r, m)) -> (
        match ea3 m with
        | None -> generic i k
        | Some ea -> (
          match slot r with
          | SA -> fun cpu mem va vb -> k cpu mem (ea cpu va vb) vb
          | SB -> fun cpu mem va vb -> k cpu mem va (ea cpu va vb)
          | SN j ->
            fun cpu mem va vb ->
              Array.unsafe_set cpu.Cpu.gprs j (ea cpu va vb);
              k cpu mem va vb))
      | Ir.Exec (I.Push ((O.Reg _ | O.Imm _) as src)) -> (
        match src64 src with
        | None -> generic i k
        | Some rd -> (
          let fault = faulted i in
          match sloti rsp_i with
          | SA -> (
            fun cpu mem va vb ->
              (* value read before rsp moves: push rsp stores old rsp *)
              let v = rd cpu mem va vb in
              let rsp = Int64.sub va 8L in
              match Memory.write_u64 mem rsp v with
              | () -> k cpu mem rsp vb
              | exception Fault.Trap f -> fault f cpu rsp vb)
          | SB -> (
            fun cpu mem va vb ->
              let v = rd cpu mem va vb in
              let rsp = Int64.sub vb 8L in
              match Memory.write_u64 mem rsp v with
              | () -> k cpu mem va rsp
              | exception Fault.Trap f -> fault f cpu va rsp)
          | SN j -> (
            fun cpu mem va vb ->
              let v = rd cpu mem va vb in
              let rsp = Int64.sub (Array.unsafe_get cpu.Cpu.gprs j) 8L in
              Array.unsafe_set cpu.Cpu.gprs j rsp;
              match Memory.write_u64 mem rsp v with
              | () -> k cpu mem va vb
              | exception Fault.Trap f -> fault f cpu va vb)))
      | Ir.Exec (I.Pop (O.Reg d)) -> (
        let fault = faulted i in
        (* rsp bump before the destination write: pop rsp ends at v *)
        match (sloti rsp_i, slot d) with
        | SA, SA -> (
          fun cpu mem va vb ->
            match Memory.read_u64 mem va with
            | v -> k cpu mem v vb
            | exception Fault.Trap f -> fault f cpu va vb)
        | SA, SB -> (
          fun cpu mem va vb ->
            match Memory.read_u64 mem va with
            | v -> k cpu mem (Int64.add va 8L) v
            | exception Fault.Trap f -> fault f cpu va vb)
        | SA, SN j -> (
          fun cpu mem va vb ->
            match Memory.read_u64 mem va with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j v;
              k cpu mem (Int64.add va 8L) vb
            | exception Fault.Trap f -> fault f cpu va vb)
        | SB, SA -> (
          fun cpu mem va vb ->
            match Memory.read_u64 mem vb with
            | v -> k cpu mem v (Int64.add vb 8L)
            | exception Fault.Trap f -> fault f cpu va vb)
        | SB, SB -> (
          fun cpu mem va vb ->
            match Memory.read_u64 mem vb with
            | v -> k cpu mem va v
            | exception Fault.Trap f -> fault f cpu va vb)
        | SB, SN j -> (
          fun cpu mem va vb ->
            match Memory.read_u64 mem vb with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j v;
              k cpu mem va (Int64.add vb 8L)
            | exception Fault.Trap f -> fault f cpu va vb)
        | SN j, SA -> (
          fun cpu mem va vb ->
            let rsp = Array.unsafe_get cpu.Cpu.gprs j in
            match Memory.read_u64 mem rsp with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j (Int64.add rsp 8L);
              k cpu mem v vb
            | exception Fault.Trap f -> fault f cpu va vb)
        | SN j, SB -> (
          fun cpu mem va vb ->
            let rsp = Array.unsafe_get cpu.Cpu.gprs j in
            match Memory.read_u64 mem rsp with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j (Int64.add rsp 8L);
              k cpu mem va v
            | exception Fault.Trap f -> fault f cpu va vb)
        | SN j, SN j' -> (
          fun cpu mem va vb ->
            let rsp = Array.unsafe_get cpu.Cpu.gprs j in
            match Memory.read_u64 mem rsp with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j (Int64.add rsp 8L);
              Array.unsafe_set cpu.Cpu.gprs j' v;
              k cpu mem va vb
            | exception Fault.Trap f -> fault f cpu va vb))
      | Ir.Exec (I.Bin (I.Add, O.Reg d, O.Imm v)) -> (
        match slot d with
        | SA ->
          fun cpu mem va vb ->
            let r = Int64.add va v in
            set_add_flags cpu.Cpu.flags va v r;
            k cpu mem r vb
        | SB ->
          fun cpu mem va vb ->
            let r = Int64.add vb v in
            set_add_flags cpu.Cpu.flags vb v r;
            k cpu mem va r
        | SN j ->
          fun cpu mem va vb ->
            let a = Array.unsafe_get cpu.Cpu.gprs j in
            let r = Int64.add a v in
            set_add_flags cpu.Cpu.flags a v r;
            Array.unsafe_set cpu.Cpu.gprs j r;
            k cpu mem va vb)
      | Ir.Exec (I.Bin (I.Sub, O.Reg d, O.Imm v)) -> (
        match slot d with
        | SA ->
          fun cpu mem va vb ->
            let r = Int64.sub va v in
            set_sub_flags cpu.Cpu.flags va v r;
            k cpu mem r vb
        | SB ->
          fun cpu mem va vb ->
            let r = Int64.sub vb v in
            set_sub_flags cpu.Cpu.flags vb v r;
            k cpu mem va r
        | SN j ->
          fun cpu mem va vb ->
            let a = Array.unsafe_get cpu.Cpu.gprs j in
            let r = Int64.sub a v in
            set_sub_flags cpu.Cpu.flags a v r;
            Array.unsafe_set cpu.Cpu.gprs j r;
            k cpu mem va vb)
      | Ir.Exec (I.Bin (I.Cmp, O.Reg d, O.Imm v)) -> (
        match slot d with
        | SA ->
          fun cpu mem va vb ->
            set_sub_flags cpu.Cpu.flags va v (Int64.sub va v);
            k cpu mem va vb
        | SB ->
          fun cpu mem va vb ->
            set_sub_flags cpu.Cpu.flags vb v (Int64.sub vb v);
            k cpu mem va vb
        | SN j ->
          fun cpu mem va vb ->
            let a = Array.unsafe_get cpu.Cpu.gprs j in
            set_sub_flags cpu.Cpu.flags a v (Int64.sub a v);
            k cpu mem va vb)
      | Ir.Exec (I.Bin ((I.Cmp | I.Test) as bop, d, s)) -> (
        match (src64 d, src64 s) with
        | Some rd, Some rs -> (
          let fault = faulted i in
          let setf =
            match bop with
            | I.Cmp ->
              fun f a b -> set_sub_flags f a b (Int64.sub a b)
            | _ -> fun f a b -> set_logic_flags f (Int64.logand a b)
          in
          fun cpu mem va vb ->
            match
              let a = rd cpu mem va vb in
              let b = rs cpu mem va vb in
              setf cpu.Cpu.flags a b
            with
            | () -> k cpu mem va vb
            | exception Fault.Trap f -> fault f cpu va vb)
        | _ -> generic i k)
      | Ir.Exec (I.Bin (bop, O.Reg d, s)) -> (
        match src64 s with
        | None -> generic i k
        | Some rs -> (
          let addr = Array.unsafe_get addrs i in
          let apply =
            match bop with
            | I.Add ->
              fun f a b ->
                let r = Int64.add a b in
                set_add_flags f a b r;
                r
            | I.Sub ->
              fun f a b ->
                let r = Int64.sub a b in
                set_sub_flags f a b r;
                r
            | I.Xor ->
              fun f a b ->
                let r = Int64.logxor a b in
                set_logic_flags f r;
                r
            | I.And ->
              fun f a b ->
                let r = Int64.logand a b in
                set_logic_flags f r;
                r
            | I.Or ->
              fun f a b ->
                let r = Int64.logor a b in
                set_logic_flags f r;
                r
            | I.Imul ->
              fun f a b ->
                let r = Int64.mul a b in
                set_logic_flags f r;
                r
            | I.Idiv ->
              fun f a b ->
                if Int64.equal b 0L then
                  raise
                    (Fault.Trap (Fault.Bad_instruction (addr, "division by zero")));
                if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
                  raise
                    (Fault.Trap
                       (Fault.Bad_instruction (addr, "division overflow")));
                let r = Int64.div a b in
                set_logic_flags f r;
                r
            | I.Irem ->
              fun f a b ->
                if Int64.equal b 0L then
                  raise
                    (Fault.Trap (Fault.Bad_instruction (addr, "division by zero")));
                if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
                  raise
                    (Fault.Trap
                       (Fault.Bad_instruction (addr, "division overflow")));
                let r = Int64.rem a b in
                set_logic_flags f r;
                r
            | I.Cmp | I.Test -> assert false (* matched above *)
          in
          let fault = faulted i in
          match slot d with
          | SA -> (
            fun cpu mem va vb ->
              match
                let b = rs cpu mem va vb in
                apply cpu.Cpu.flags va b
              with
              | r -> k cpu mem r vb
              | exception Fault.Trap f -> fault f cpu va vb)
          | SB -> (
            fun cpu mem va vb ->
              match
                let b = rs cpu mem va vb in
                apply cpu.Cpu.flags vb b
              with
              | r -> k cpu mem va r
              | exception Fault.Trap f -> fault f cpu va vb)
          | SN j -> (
            fun cpu mem va vb ->
              match
                let a = Array.unsafe_get cpu.Cpu.gprs j in
                let b = rs cpu mem va vb in
                apply cpu.Cpu.flags a b
              with
              | r ->
                Array.unsafe_set cpu.Cpu.gprs j r;
                k cpu mem va vb
              | exception Fault.Trap f -> fault f cpu va vb)))
      | Ir.Exec (I.Shift (sop, O.Reg d, kk)) when kk land 63 <> 0 -> (
        let kk = kk land 63 in
        let sh =
          match sop with
          | I.Shl -> fun a -> Int64.shift_left a kk
          | I.Shr -> fun a -> Int64.shift_right_logical a kk
          | I.Sar -> fun a -> Int64.shift_right a kk
        in
        match slot d with
        | SA ->
          fun cpu mem va vb ->
            let r = sh va in
            set_logic_flags cpu.Cpu.flags r;
            k cpu mem r vb
        | SB ->
          fun cpu mem va vb ->
            let r = sh vb in
            set_logic_flags cpu.Cpu.flags r;
            k cpu mem va r
        | SN j ->
          fun cpu mem va vb ->
            let r = sh (Array.unsafe_get cpu.Cpu.gprs j) in
            set_logic_flags cpu.Cpu.flags r;
            Array.unsafe_set cpu.Cpu.gprs j r;
            k cpu mem va vb)
      | Ir.Exec (I.Setcc (c, r)) -> (
        let test = cond_test c in
        match slot r with
        | SA ->
          fun cpu mem _ vb ->
            k cpu mem (if test cpu.Cpu.flags then 1L else 0L) vb
        | SB ->
          fun cpu mem va _ ->
            k cpu mem va (if test cpu.Cpu.flags then 1L else 0L)
        | SN j ->
          fun cpu mem va vb ->
            Array.unsafe_set cpu.Cpu.gprs j
              (if test cpu.Cpu.flags then 1L else 0L);
            k cpu mem va vb)
      | Ir.Exec (I.Jmp (I.Abs tgt)) ->
        fun cpu mem va vb ->
          cpu.Cpu.rip <- tgt;
          k cpu mem va vb
      | Ir.Exec (I.Jcc (c, I.Abs tgt)) ->
        let test = cond_test c in
        let next = Array.unsafe_get nexts i in
        fun cpu mem va vb ->
          cpu.Cpu.rip <- (if test cpu.Cpu.flags then tgt else next);
          k cpu mem va vb
      | Ir.Exec (I.Call (I.Abs tgt)) when Option.is_none (is_builtin tgt) -> (
        let next = Array.unsafe_get nexts i in
        let fault = faulted i in
        match sloti rsp_i with
        | SA -> (
          fun cpu mem va vb ->
            let rsp = Int64.sub va 8L in
            match Memory.write_u64 mem rsp next with
            | () ->
              cpu.Cpu.rip <- tgt;
              k cpu mem rsp vb
            | exception Fault.Trap f -> fault f cpu rsp vb)
        | SB -> (
          fun cpu mem va vb ->
            let rsp = Int64.sub vb 8L in
            match Memory.write_u64 mem rsp next with
            | () ->
              cpu.Cpu.rip <- tgt;
              k cpu mem va rsp
            | exception Fault.Trap f -> fault f cpu va rsp)
        | SN j -> (
          fun cpu mem va vb ->
            let rsp = Int64.sub (Array.unsafe_get cpu.Cpu.gprs j) 8L in
            Array.unsafe_set cpu.Cpu.gprs j rsp;
            match Memory.write_u64 mem rsp next with
            | () ->
              cpu.Cpu.rip <- tgt;
              k cpu mem va vb
            | exception Fault.Trap f -> fault f cpu va vb))
      | Ir.Exec I.Ret -> (
        let fault = faulted i in
        match sloti rsp_i with
        | SA -> (
          fun cpu mem va vb ->
            match Memory.read_u64 mem va with
            | a ->
              cpu.Cpu.rip <- a;
              k cpu mem (Int64.add va 8L) vb
            | exception Fault.Trap f -> fault f cpu va vb)
        | SB -> (
          fun cpu mem va vb ->
            match Memory.read_u64 mem vb with
            | a ->
              cpu.Cpu.rip <- a;
              k cpu mem va (Int64.add vb 8L)
            | exception Fault.Trap f -> fault f cpu va vb)
        | SN j -> (
          fun cpu mem va vb ->
            let rsp = Array.unsafe_get cpu.Cpu.gprs j in
            match Memory.read_u64 mem rsp with
            | a ->
              Array.unsafe_set cpu.Cpu.gprs j (Int64.add rsp 8L);
              cpu.Cpu.rip <- a;
              k cpu mem va vb
            | exception Fault.Trap f -> fault f cpu va vb))
      | Ir.Exec I.Leave -> (
        (* rsp := rbp first, so a faulting pop spills rsp = rbp *)
        let fault = faulted i in
        match (sloti rsp_i, sloti rbp_i) with
        | SA, SB -> (
          fun cpu mem _ vb ->
            match Memory.read_u64 mem vb with
            | v -> k cpu mem (Int64.add vb 8L) v
            | exception Fault.Trap f -> fault f cpu vb vb)
        | SB, SA -> (
          fun cpu mem va _ ->
            match Memory.read_u64 mem va with
            | v -> k cpu mem v (Int64.add va 8L)
            | exception Fault.Trap f -> fault f cpu va va)
        | SA, SN j -> (
          fun cpu mem _ vb ->
            let rbp = Array.unsafe_get cpu.Cpu.gprs j in
            match Memory.read_u64 mem rbp with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j v;
              k cpu mem (Int64.add rbp 8L) vb
            | exception Fault.Trap f -> fault f cpu rbp vb)
        | SB, SN j -> (
          fun cpu mem va _ ->
            let rbp = Array.unsafe_get cpu.Cpu.gprs j in
            match Memory.read_u64 mem rbp with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j v;
              k cpu mem va (Int64.add rbp 8L)
            | exception Fault.Trap f -> fault f cpu va rbp)
        | SN j, SA -> (
          fun cpu mem va vb ->
            Array.unsafe_set cpu.Cpu.gprs j va;
            match Memory.read_u64 mem va with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j (Int64.add va 8L);
              k cpu mem v vb
            | exception Fault.Trap f -> fault f cpu va vb)
        | SN j, SB -> (
          fun cpu mem va vb ->
            Array.unsafe_set cpu.Cpu.gprs j vb;
            match Memory.read_u64 mem vb with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j (Int64.add vb 8L);
              k cpu mem va v
            | exception Fault.Trap f -> fault f cpu va vb)
        | SN j, SN j' -> (
          fun cpu mem va vb ->
            let rbp = Array.unsafe_get cpu.Cpu.gprs j' in
            Array.unsafe_set cpu.Cpu.gprs j rbp;
            match Memory.read_u64 mem rbp with
            | v ->
              Array.unsafe_set cpu.Cpu.gprs j (Int64.add rbp 8L);
              Array.unsafe_set cpu.Cpu.gprs j' v;
              k cpu mem va vb
            | exception Fault.Trap f -> fault f cpu va vb)
        | (SA, SA | SB, SB) -> generic i k (* rsp and rbp are distinct *))
      | _ -> generic i k
    in
    let rec build i = if i >= n then exit_k else step3 i (build (i + 1)) in
    let chain = build 0 in
    incr reloads;
    let entry cpu mem =
      let va = Array.unsafe_get cpu.Cpu.gprs ra in
      let vb = if rb >= 0 then Array.unsafe_get cpu.Cpu.gprs rb else 0L in
      chain cpu mem va vb
    in
    Telemetry.Registry.add g_regs_cached (Array.length plan);
    Telemetry.Registry.add g_spills !spills;
    Telemetry.Registry.add g_reloads !reloads;
    Some (plan, entry)
  end

(* ---- Block translation: lift -> normalize -> emit -------------------- *)

let fresh_link () = { l_space = None; l_epoch = 0; l_addr = 0L; l_target = None }

let emit ~is_builtin ~inline (ir : Ir.t) : code =
  let steps = ir.Ir.steps in
  let n = Array.length steps in
  let addrs = Array.map (fun (s : Ir.step) -> s.Ir.addr) steps in
  let nexts = Array.map (fun (s : Ir.step) -> s.Ir.next) steps in
  let sets_rip = Array.map (fun (s : Ir.step) -> s.Ir.sets_rip) steps in
  let csum = Array.make (n + 1) 0 in
  let crsum = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    csum.(i + 1) <- csum.(i) + steps.(i).Ir.cost;
    crsum.(i + 1) <- crsum.(i) + Bool.to_int steps.(i).Ir.callret
  done;
  let ops =
    Array.init n (fun i ->
        match steps.(i).Ir.uop with
        | Ir.Exec I.Rdtsc ->
          (* Deferred charging leaves cpu.cycles at the block-entry value
             while compiled code runs, but the interpreter charges
             instruction [i] before executing it — so the tsc it would
             read here is the entry cycles plus the retired prefix's
             static charge, all known at translation time. *)
          let static = csum.(i + 1) and calls = crsum.(i + 1) in
          let retired = i + 1 in
          fun cpu _ ->
            let tsc =
              Int64.add cpu.Cpu.cycles
                (Int64.of_int
                   (static + (retired * cpu.Cpu.insn_tax)
                   + (calls * cpu.Cpu.call_tax)))
            in
            Array.unsafe_set cpu.Cpu.gprs rax_i (Int64.logand tsc 0xFFFFFFFFL);
            Array.unsafe_set cpu.Cpu.gprs rdx_i (Int64.shift_right_logical tsc 32);
            Running
        | u -> uop_op ~is_builtin ~inline ~addr:addrs.(i) ~next:nexts.(i) u)
  in
  let cached, t3 =
    match emit3 ~is_builtin ir ~ops ~addrs ~nexts ~sets_rip with
    | Some (plan, f) -> (plan, Some f)
    | None -> ([||], None)
  in
  {
    ops;
    addrs;
    nexts;
    csum;
    crsum;
    sets_rip;
    exit_ = ir.Ir.exit_;
    blocks = Array.map (fun (p : Ir.part) -> p.Ir.block) ir.Ir.parts;
    starts = Array.map (fun (p : Ir.part) -> p.Ir.start) ir.Ir.parts;
    key = is_builtin;
    hot = 0;
    fuse_tried = Array.length ir.Ir.parts > 1;
    link_a = fresh_link ();
    link_b = fresh_link ();
    cached;
    t3;
  }

let no_inline : string -> builtin_fn option = fun _ -> None

let block_ir ~is_builtin ~inline (b : Tcache.block) =
  let inlinable name = Option.is_some (inline name) in
  Ir.normalize (Ir.lift ~is_builtin ~inlinable b)

let compile ?(inline = no_inline) ~is_builtin (b : Tcache.block) : Compiled.slot =
  Code (emit ~is_builtin ~inline (block_ir ~is_builtin ~inline b))

let key (c : code) = c.key
let cached_regs (c : code) = Array.copy c.cached

(* ---- Execution ------------------------------------------------------ *)

(* Protocol: while compiled code runs, cpu.rip is stale (still the block
   entry). Straight-line closures never touch it; control closures set
   it before returning; every exit path below settles it to exactly what
   the interpreter would have left. Cycles (static cost + insn tax +
   call tax) are settled once per exit from the prefix sums — the
   interpreter charges instruction [i] before executing it, so a block
   that retires k instructions has charged the first k either way. *)
let charge_exit (code : code) cpu k =
  Cpu.add_cycles cpu
    (Array.unsafe_get code.csum k
    + (k * cpu.Cpu.insn_tax)
    + (Array.unsafe_get code.crsum k * cpu.Cpu.call_tax))

let run_code (code : code) cpu mem ~limit =
  let ops = code.ops in
  let n = Array.length ops in
  let limit = if limit < n then limit else n in
  let finish outcome k =
    charge_exit code cpu k;
    (outcome, k)
  in
  let rec go i =
    match (Array.unsafe_get ops i) cpu mem with
    | Running when i + 1 < limit -> go (i + 1)
    | Running ->
      (* stop here (terminator or fuel boundary): settle rip to the
         fall-through unless this closure already wrote it — in a
         superblock, jmp/call closures sit mid-array too *)
      if not (Array.unsafe_get code.sets_rip i) then
        cpu.Cpu.rip <- Array.unsafe_get code.nexts i;
      finish Running (i + 1)
    | outcome -> finish outcome (i + 1)
    | exception Fault.Trap fault ->
      cpu.Cpu.rip <- Array.unsafe_get code.addrs i;
      finish (Faulted fault) (i + 1)
    | exception Isa.Encode.Unresolved_symbol s ->
      let a = Array.unsafe_get code.addrs i in
      cpu.Cpu.rip <- a;
      finish (Faulted (Fault.Bad_instruction (a, "unresolved symbol " ^ s))) (i + 1)
  in
  go 0

(* ---- Tier 2: chaining, superblocks, profiling attribution ----------- *)

(* Every constituent is still decodable-as-cached in this space. The
   dispatcher's fetch validated the head block only; a superblock's
   tail constituents need their own check (their pages may have
   CoW-diverged without any invalidation — e.g. a relative published
   the fused translation before the pages split). *)
let code_anchors_ok mem (c : code) =
  let ok = ref true in
  for i = 0 to Array.length c.blocks - 1 do
    if not (Tcache.anchor_valid mem (Array.unsafe_get c.blocks i)) then ok := false
  done;
  !ok

(* The code is still what the head block's slot holds. Replacing the
   slot (superblock formation, stale-superblock strip) retargets every
   chain link pointing at the old translation on its next traversal. *)
let slot_current (c : code) =
  match (Array.unsafe_get c.blocks 0).Tcache.compiled with
  | Code c' -> c' == c
  | _ -> false

(* A link may be followed only when every way it can go stale is ruled
   out:
   - [l_addr]: the exit really goes where the target translates
     (dynamic exits — ret, indirect call — carry a 1-entry inline
     cache);
   - [l_space] (==): links live in code objects that fork relatives
     share; a link resolved in one address space says nothing about
     another, so each space claims links for itself;
   - [l_epoch]: invalidation in this space since resolution — the ONLY
     signal for [patch_text]'s in-place mutation of a private page,
     which anchors cannot see;
   - [slot_current] + anchors + [key]: the target is this space's live,
     decode-consistent translation for the right environment. *)
let link_live tc mem (l : link) rip key =
  match l.l_target with
  | None -> None
  | Some c ->
    if
      Int64.equal l.l_addr rip
      && (match l.l_space with Some s -> s == tc | None -> false)
      && l.l_epoch = Tcache.epoch tc
      && c.key == key
      && slot_current c
      && code_anchors_ok mem c
    then Some c
    else None

let link_for (c : code) rip =
  match c.exit_ with
  | Ir.Branch { taken; _ } ->
    if Int64.equal rip taken then c.link_a else c.link_b
  | _ -> c.link_a

let install_link tc (l : link) rip target =
  l.l_space <- Some tc;
  l.l_epoch <- Tcache.epoch tc;
  l.l_addr <- rip;
  l.l_target <- Some target;
  Tcache.note_chain tc

(* Resolve the translation for [rip] in this space, compiling the
   cached block if needed. [None] bounces to the dispatcher (block not
   cached / stale / uncompilable), which decodes and accounts the miss. *)
let resolve tc mem ~is_builtin ~inline rip =
  match Tcache.find tc rip with
  | Some b when Tcache.anchor_valid mem b -> (
    match b.Tcache.compiled with
    | Code c when c.key == is_builtin -> Some c
    | Uncompilable -> None
    | _ -> (
      match compile ~inline ~is_builtin b with
      | Code c as slot ->
        b.Tcache.compiled <- slot;
        Tcache.note_compile tc;
        Some c
      | slot ->
        b.Tcache.compiled <- slot;
        None))
  | _ -> None

(* Superblock caps: enough to swallow a guarded call's prologue + body
   + epilogue chain, small enough that tail duplication (a block fused
   into several superblocks) stays cheap. *)
let max_super_parts = 8
let max_super_insns = 256

(* Fuse the hot single-block [c] forward along unconditional static
   exits (fall-through, jmp abs, direct call) while the successors are
   already this space's live translations. Conditional branches and
   dynamic exits end the superblock — they stay chain links — and an
   exit back into the superblock's own entries stops growth (the loop
   closes through a link instead). The fused translation replaces the
   head block's slot: entering the head runs the whole chain, side
   entries to constituents keep their own per-block translations
   (tail duplication, the classic trace-JIT shape). *)
let try_fuse tc mem ~is_builtin ~inline (c : code) =
  c.fuse_tried <- true;
  let head = Array.unsafe_get c.blocks 0 in
  let entry_of (b : Tcache.block) = b.Tcache.bb_start in
  let rec grow ir parts =
    if List.length parts >= max_super_parts || Ir.length ir >= max_super_insns
    then ir
    else
      match Ir.jump_target ir with
      | None -> ir
      | Some a ->
        if List.exists (fun b -> Int64.equal (entry_of b) a) parts then ir
        else begin
          match Tcache.find tc a with
          | Some b
            when Tcache.anchor_valid mem b
                 && Ir.length ir + Array.length b.Tcache.insns <= max_super_insns
            -> grow (Ir.fuse ir (block_ir ~is_builtin ~inline b)) (b :: parts)
          | _ -> ir
        end
  in
  let ir = block_ir ~is_builtin ~inline head in
  let fused = grow ir [ head ] in
  if Array.length fused.Ir.parts < 2 then None
  else begin
    let sc = emit ~is_builtin ~inline fused in
    (* register the tail constituents' text extents on the (shared)
       head record BEFORE publishing the translation, so no invalidate
       can observe the superblock without its ranges *)
    head.Tcache.fused_ranges <-
      Array.map
        (fun (b : Tcache.block) -> (b.Tcache.bb_start, b.Tcache.bb_bytes))
        (Array.sub sc.blocks 1 (Array.length sc.blocks - 1));
    head.Tcache.compiled <- Code sc;
    Tcache.note_superblock tc;
    Some sc
  end

(* Per-constituent cycle attribution for the profiler: the same static
   prefix-sum formula [run_code]'s finish charges with, split at
   constituent boundaries, clamped to the retired prefix. Note order
   inside a dispatch is irrelevant (the profiler aggregates by
   address), so fused output is byte-identical to the per-block tiers. *)
let note_profile (c : code) cpu k =
  let parts = Array.length c.starts in
  let n = Array.length c.ops in
  let charge i = c.csum.(i) + (i * cpu.Cpu.insn_tax) + (c.crsum.(i) * cpu.Cpu.call_tax) in
  let j = ref 0 in
  while !j < parts && c.starts.(!j) < k do
    let lo = c.starts.(!j) in
    let hi = if !j + 1 < parts then c.starts.(!j + 1) else n in
    let hi = if k < hi then k else hi in
    Telemetry.Profile.note
      ~addr:(Array.unsafe_get c.blocks !j).Tcache.bb_start
      ~cycles:(charge hi - charge lo);
    incr j
  done

(* The tier-2 block runner: execute [c0], then keep transferring
   through live (or freshly patched) chain links until fuel runs out,
   a non-[Running] outcome exits to the OS, or the successor is not
   resolvable in-cache (bounce to the dispatcher, which decodes it).
   Fuel, cycle and fault accounting are exactly the per-block tier's:
   each hop retires through [run_code] with the remaining fuel. *)
let run_tier2 cpu mem ~is_builtin ~inline (c0 : code) ~fuel =
  let tc = cpu.Cpu.tcache in
  let profiling = Telemetry.Profile.enabled () in
  let threshold = Atomic.get fuse_threshold in
  let tier3 = Atomic.get tier_flag >= 3 in
  let rec enter (c : code) fuel acc =
    let c =
      if c.fuse_tried || c.hot < threshold then c
      else match try_fuse tc mem ~is_builtin ~inline c with Some sc -> sc | None -> c
    in
    c.hot <- c.hot + 1;
    let outcome, k =
      (* The register-caching chain has no fuel boundary inside it, so
         it only runs when fuel covers the whole translation; otherwise
         (and at tier 2) the per-step loop retires with exact limits. *)
      match c.t3 with
      | Some run3 when tier3 && fuel >= Array.length c.ops ->
        let ((_, k) as r) = run3 cpu mem in
        charge_exit c cpu k;
        r
      | _ -> run_code c cpu mem ~limit:fuel
    in
    if profiling then note_profile c cpu k;
    let acc = acc + k and fuel = fuel - k in
    match outcome with
    | Running when fuel > 0 -> follow c fuel acc
    | _ -> (outcome, acc)
  and follow c fuel acc =
    let rip = cpu.Cpu.rip in
    let l = link_for c rip in
    match link_live tc mem l rip is_builtin with
    | Some target ->
      Tcache.note_chain_hop tc;
      enter target fuel acc
    | None -> (
      match c.exit_ with
      | Ir.Stop -> (Running, acc)
      | _ -> (
        match resolve tc mem ~is_builtin ~inline rip with
        | Some target ->
          install_link tc l rip target;
          Tcache.note_chain_hop tc;
          enter target fuel acc
        | None -> (Running, acc)))
  in
  (* The dispatcher validated the head block's anchor; a superblock's
     tail constituents may still have gone stale. Strip back to a
     single-block translation rather than run stale code. *)
  let c0 =
    if Array.length c0.blocks > 1 && not (code_anchors_ok mem c0) then begin
      let head = Array.unsafe_get c0.blocks 0 in
      head.Tcache.fused_ranges <- [||];
      match compile ~inline ~is_builtin head with
      | Code c as slot ->
        head.Tcache.compiled <- slot;
        Tcache.note_compile tc;
        c
      | _ -> assert false (* compile always returns Code *)
    end
    else c0
  in
  enter c0 fuel 0
