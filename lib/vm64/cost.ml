let rdrand_cycles = 334
let pac_cycles = 4
let aes_encrypt_call_cycles = 110
let syscall_cycles = 150
let fork_cycles = 2500
let builtin_byte_cycles = 1
let builtin_base_cycles = 4

let cycles = function
  | Isa.Insn.Nop -> 1
  | Mov _ | Movb _ | Movl _ -> 1
  | Lea _ -> 1
  | Push _ | Pop _ -> 1
  | Bin (Imul, _, _) -> 3
  | Bin ((Idiv | Irem), _, _) -> 22
  | Bin _ -> 1
  | Shift _ -> 1
  | Neg _ | Not _ -> 1
  | Jmp _ -> 1
  | Jcc _ -> 1
  | Setcc _ -> 1
  | Call _ | Call_ind _ -> 2
  | Ret -> 2
  | Leave -> 2
  | Rdrand _ -> rdrand_cycles
  (* Liljestrand et al. measure ~4 cycles per QARMA-latency pac/aut *)
  | Pac _ | Aut _ -> pac_cycles
  | Rdtsc -> 24
  | Syscall -> 2 (* trap itself; kernel work charged separately *)
  | Hlt -> 1
  | Movq_to_xmm _ | Movq_from_xmm _ | Pinsrq_high _ -> 1
  | Movhps_load _ | Movq_store _ -> 1
  | Movdqu_load _ | Movdqu_store _ -> 2
  | Aesenc _ | Aesenclast _ -> 7
  | Pcmpeq128 _ -> 2
