(** Whole-canary brute force (§III-C1) — the only strategy left against
    P-SSP. Each trial guesses the complete canary region and fires a
    full hijack payload; expected work is 2^(8·len-1) trials, so within
    any realistic budget it fails. Used by the security experiments to
    show P-SSP degrades the byte-by-byte attacker to exhaustive
    search. *)

type outcome =
  | Broken of { canary : bytes; trials : int }
  | Exhausted of { trials : int }
  | Oracle_lost of { trials : int; detail : string }

val outcome_to_string : outcome -> string

val run :
  ?seed:int64 -> Oracle.t -> layout:Payload.layout -> max_trials:int -> outcome
(** Uniform random guesses (with a P-SSP-shaped twist: guesses for a
    2-word canary are generated as a random pair, which is how an
    attacker aware of the C0^C1 structure would search). *)
