type transport = Magic | Net_conn

(* What happens to the victim when the attack declares a restart (a
   full byte-sweep failed — the canary moved under the attacker) or
   loses the server: keep hammering the same long-lived parent (the
   historical oracle), cold-boot a fresh kernel + spawn + warmup, or
   thaw a warm zygote snapshot captured at the first accept. Cold and
   Zygote are observationally identical — the snapshot round-trip is
   bit-exact — so they bench the same attack while isolating the
   restart cost the prefork pattern amortizes. *)
type respawn = No_respawn | Cold | Zygote

type t = {
  mutable kernel : Os.Kernel.t;
  mutable server : Os.Process.t;
  transport : transport;
  mutable queries : int;
  mutable alive : bool;
  (* the respawn recipe *)
  seed : int64;
  preload : Os.Preload.mode;
  insn_tax : int;
  image : Os.Image.t;
  respawn : respawn;
  snapshot : Os.Snapshot.t option;  (* [Some] iff [Zygote] *)
  mutable respawns : int;
}

let g_respawns = Telemetry.Registry.counter "attack.victim_respawns"

(* Cold boot: fresh kernel, spawn, run to the first accept. *)
let boot ~seed ~preload ~insn_tax image =
  let kernel = Os.Kernel.create ~seed () in
  let server = Os.Kernel.spawn kernel ~preload ~insn_tax image in
  Os.Kernel.enqueue kernel server;
  Os.Kernel.schedule kernel;
  match Os.Kernel.stop_of server with
  | Os.Kernel.Stop_accept -> (kernel, server)
  | other ->
    failwith
      ("Oracle.create: server did not reach accept: "
      ^ Os.Kernel.stop_to_string other)

let create ?(seed = 0xA77ACCL) ?(preload = Os.Preload.No_preload)
    ?(insn_tax = 0) ?(respawn = No_respawn) image =
  let kernel, server = boot ~seed ~preload ~insn_tax image in
  (* A server that bound a listening socket on its way to accept is
     probed over real connections; the legacy victims keep the magic
     request channel. *)
  let transport =
    match Os.Glibc.listener_of server.Os.Process.io with
    | Some _ -> Net_conn
    | None -> Magic
  in
  let snapshot =
    match respawn with
    | Zygote -> Some (Os.Snapshot.capture kernel server)
    | No_respawn | Cold -> None
  in
  {
    kernel;
    server;
    transport;
    queries = 0;
    alive = true;
    seed;
    preload;
    insn_tax;
    image;
    respawn;
    snapshot;
    respawns = 0;
  }

let restart_victim t =
  match t.respawn with
  | No_respawn -> false
  | Cold | Zygote ->
    let kernel, server =
      match t.snapshot with
      | None -> boot ~seed:t.seed ~preload:t.preload ~insn_tax:t.insn_tax t.image
      | Some snap ->
        let kernel = Os.Kernel.create ~seed:t.seed () in
        let server = Os.Snapshot.resume kernel snap in
        (kernel, server)
    in
    t.kernel <- kernel;
    t.server <- server;
    t.alive <- true;
    t.respawns <- t.respawns + 1;
    Telemetry.Registry.incr g_respawns;
    true

type response =
  | Survived of string
  | Crashed of Os.Process.signal * string
  | Server_down of string

let child_fate t ~drain =
  match Os.Kernel.last_reaped t.kernel with
  | Some child -> (
    match child.Os.Process.status with
    | Os.Process.Exited _ -> Survived (drain child)
    | Os.Process.Killed (signal, msg) -> Crashed (signal, msg)
    | _ -> Server_down "child in impossible state")
  | None -> Server_down "no child reaped"

(* Pull the response off a cleanly-closed connection: exit FINs the
   conn, so buffered bytes drain before the EOF. Only consulted for
   surviving children — a crashed child's conn was reset, and RST
   discards the receive queue (client_recv returns Closed at once). *)
let drain_conn conn =
  let buf = Buffer.create 64 in
  let rec go () =
    match Net.Conn.client_recv conn ~max:4096 with
    | Net.Conn.Data b ->
      Buffer.add_bytes buf b;
      go ()
    | Net.Conn.Would_block | Net.Conn.Eof | Net.Conn.Closed -> ()
  in
  go ();
  Buffer.contents buf

let query_net t payload =
  match Os.Kernel.connect t.kernel t.server with
  | None -> Server_down "connection refused"
  | Some conn -> (
    let now = Os.Kernel.now t.kernel in
    ignore (Net.Conn.client_send conn ~now (Bytes.to_string payload));
    Net.Conn.client_shutdown conn ~now;
    Os.Kernel.schedule t.kernel;
    match Os.Kernel.stop_of t.server with
    | Os.Kernel.Stop_accept ->
      Os.Kernel.reap_zombies t.kernel t.server;
      child_fate t ~drain:(fun _ -> drain_conn conn)
    | other ->
      t.alive <- false;
      Server_down (Os.Kernel.stop_to_string other))

let query_magic t payload =
  Os.Kernel.deliver_request t.kernel t.server payload;
  Os.Kernel.schedule t.kernel;
  Os.Kernel.reap_zombies t.kernel t.server;
  match Os.Kernel.stop_of t.server with
  | Os.Kernel.Stop_accept -> child_fate t ~drain:Os.Process.stdout
  | other ->
    t.alive <- false;
    Server_down (Os.Kernel.stop_to_string other)

let query t payload =
  if not t.alive then Server_down "server already down"
  else begin
    t.queries <- t.queries + 1;
    match t.transport with
    | Net_conn -> query_net t payload
    | Magic -> query_magic t payload
  end

let transport t = t.transport
let queries t = t.queries
let server_alive t = t.alive
let respawns t = t.respawns
