type t = {
  kernel : Os.Kernel.t;
  server : Os.Process.t;
  mutable queries : int;
  mutable alive : bool;
}

let create ?(seed = 0xA77ACCL) ?(preload = Os.Preload.No_preload)
    ?(insn_tax = 0) image =
  let kernel = Os.Kernel.create ~seed () in
  let server = Os.Kernel.spawn kernel ~preload ~insn_tax image in
  match Os.Kernel.run kernel server with
  | Os.Kernel.Stop_accept -> { kernel; server; queries = 0; alive = true }
  | other ->
    failwith
      ("Oracle.create: server did not reach accept: "
      ^ Os.Kernel.stop_to_string other)

type response =
  | Survived of string
  | Crashed of Os.Process.signal * string
  | Server_down of string

let query t payload =
  if not t.alive then Server_down "server already down"
  else begin
    t.queries <- t.queries + 1;
    match Os.Kernel.resume_with_request t.kernel t.server payload with
    | Os.Kernel.Stop_accept -> (
      match Os.Kernel.last_reaped t.kernel with
      | Some child -> (
        match child.Os.Process.status with
        | Os.Process.Exited _ -> Survived (Os.Process.stdout child)
        | Os.Process.Killed (signal, msg) -> Crashed (signal, msg)
        | Os.Process.Runnable | Os.Process.Blocked_accept ->
          Server_down "child in impossible state")
      | None -> Server_down "no child reaped")
    | other ->
      t.alive <- false;
      Server_down (Os.Kernel.stop_to_string other)
  end

let queries t = t.queries
let server_alive t = t.alive
