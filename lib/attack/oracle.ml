type transport = Magic | Net_conn

type t = {
  kernel : Os.Kernel.t;
  server : Os.Process.t;
  transport : transport;
  mutable queries : int;
  mutable alive : bool;
}

let create ?(seed = 0xA77ACCL) ?(preload = Os.Preload.No_preload)
    ?(insn_tax = 0) image =
  let kernel = Os.Kernel.create ~seed () in
  let server = Os.Kernel.spawn kernel ~preload ~insn_tax image in
  match Os.Kernel.run kernel server with
  | Os.Kernel.Stop_accept ->
    (* A server that bound a listening socket on its way to accept is
       probed over real connections; the legacy victims keep the magic
       request channel. *)
    let transport =
      match Os.Glibc.listener_of server.Os.Process.io with
      | Some _ -> Net_conn
      | None -> Magic
    in
    { kernel; server; transport; queries = 0; alive = true }
  | other ->
    failwith
      ("Oracle.create: server did not reach accept: "
      ^ Os.Kernel.stop_to_string other)

type response =
  | Survived of string
  | Crashed of Os.Process.signal * string
  | Server_down of string

let child_fate t ~drain =
  match Os.Kernel.last_reaped t.kernel with
  | Some child -> (
    match child.Os.Process.status with
    | Os.Process.Exited _ -> Survived (drain child)
    | Os.Process.Killed (signal, msg) -> Crashed (signal, msg)
    | _ -> Server_down "child in impossible state")
  | None -> Server_down "no child reaped"

(* Pull the response off a cleanly-closed connection: exit FINs the
   conn, so buffered bytes drain before the EOF. Only consulted for
   surviving children — a crashed child's conn was reset, and RST
   discards the receive queue (client_recv returns Closed at once). *)
let drain_conn conn =
  let buf = Buffer.create 64 in
  let rec go () =
    match Net.Conn.client_recv conn ~max:4096 with
    | Net.Conn.Data b ->
      Buffer.add_bytes buf b;
      go ()
    | Net.Conn.Would_block | Net.Conn.Eof | Net.Conn.Closed -> ()
  in
  go ();
  Buffer.contents buf

let query_net t payload =
  match Os.Kernel.connect t.kernel t.server with
  | None -> Server_down "connection refused"
  | Some conn -> (
    let now = Os.Kernel.now t.kernel in
    ignore (Net.Conn.client_send conn ~now (Bytes.to_string payload));
    Net.Conn.client_shutdown conn ~now;
    match Os.Kernel.run t.kernel t.server with
    | Os.Kernel.Stop_accept ->
      Os.Kernel.reap_zombies t.kernel t.server;
      child_fate t ~drain:(fun _ -> drain_conn conn)
    | other ->
      t.alive <- false;
      Server_down (Os.Kernel.stop_to_string other))

let query_magic t payload =
  match Os.Kernel.resume_with_request t.kernel t.server payload with
  | Os.Kernel.Stop_accept -> child_fate t ~drain:Os.Process.stdout
  | other ->
    t.alive <- false;
    Server_down (Os.Kernel.stop_to_string other)

let query t payload =
  if not t.alive then Server_down "server already down"
  else begin
    t.queries <- t.queries + 1;
    match t.transport with
    | Net_conn -> query_net t payload
    | Magic -> query_magic t payload
  end

let transport t = t.transport
let queries t = t.queries
let server_alive t = t.alive
