(** Overflow payload construction.

    The attacker is assumed to know the victim binary (the paper's
    adversary model gives away source, binary and address layout): in
    particular the distance from the vulnerable buffer to the canary,
    the canary width, and that saved-rbp and the return address sit
    right above the canary. *)

type layout = {
  overflow_distance : int;
      (** bytes from the buffer's first byte to the first canary byte *)
  canary_len : int;  (** total canary bytes guarding the return address *)
}

val magic_ret : int64
(** The (unmapped) address the hijack payload redirects the return to; a
    child segfaulting exactly there proves control-flow capture. *)

val filler : int -> bytes
(** [n] bytes of ['A']. *)

val guess_prefix : layout -> known:bytes -> guess:int -> bytes
(** Byte-by-byte probe: fill up to the canary, replay the [known]
    recovered bytes, then one [guess] byte. Nothing beyond the guess is
    touched. *)

val hijack : layout -> canary:bytes -> bytes
(** Full exploit: fill, write the (believed) canary, clobber saved rbp,
    and point the return address at {!magic_ret}.
    Raises [Invalid_argument] if [canary] length differs from the
    layout's [canary_len]. *)

val hijacked : Oracle.response -> bool
(** Did the child demonstrably jump to {!magic_ret}? *)

val stealth_corruption : layout -> canary:bytes -> bytes
(** Exploit variant that leaves the return address intact: fill, write
    the (believed) canary, clobber only the saved rbp word. Surviving
    this payload proves undetected corruption beyond the canary — the
    success criterion when the canary is bound to the return address
    (P-SSP-OWF), where {!hijack} would self-invalidate. *)
