type layout = { overflow_distance : int; canary_len : int }

let magic_ret = 0xDEAD0000L

let filler n = Bytes.make n 'A'

let guess_prefix layout ~known ~guess =
  let k = Bytes.length known in
  if k >= layout.canary_len then
    invalid_arg "Payload.guess_prefix: canary already fully known";
  let b = Bytes.create (layout.overflow_distance + k + 1) in
  Bytes.fill b 0 layout.overflow_distance 'A';
  Bytes.blit known 0 b layout.overflow_distance k;
  Bytes.set b (layout.overflow_distance + k) (Char.chr (guess land 0xFF));
  b

let hijack layout ~canary =
  if Bytes.length canary <> layout.canary_len then
    invalid_arg "Payload.hijack: canary length mismatch";
  (* [filler][canary][saved rbp][return address] *)
  let b = Bytes.create (layout.overflow_distance + layout.canary_len + 16) in
  Bytes.fill b 0 layout.overflow_distance 'A';
  Bytes.blit canary 0 b layout.overflow_distance layout.canary_len;
  let off = layout.overflow_distance + layout.canary_len in
  Bytes.set_int64_le b off 0L (* saved rbp: junk; never dereferenced before ret *);
  Bytes.set_int64_le b (off + 8) magic_ret;
  b

let stealth_corruption layout ~canary =
  if Bytes.length canary <> layout.canary_len then
    invalid_arg "Payload.stealth_corruption: canary length mismatch";
  let b = Bytes.create (layout.overflow_distance + layout.canary_len + 8) in
  Bytes.fill b 0 layout.overflow_distance 'A';
  Bytes.blit canary 0 b layout.overflow_distance layout.canary_len;
  Bytes.set_int64_le b (layout.overflow_distance + layout.canary_len)
    0x4242424242424242L;
  b

let hijacked = function
  | Oracle.Crashed (Os.Process.Sigsegv, msg) ->
    let needle = Printf.sprintf "0x%Lx" magic_ret in
    let rec contains i =
      if i + String.length needle > String.length msg then false
      else if String.sub msg i (String.length needle) = needle then true
      else contains (i + 1)
    in
    contains 0
  | Oracle.Survived _ | Oracle.Crashed _ | Oracle.Server_down _ -> false
