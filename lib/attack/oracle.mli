(** The attacker's oracle: a forking network server under test.

    One long-lived parent process accepts requests; each request is
    handled by a forked child that reads attacker-controlled input into
    a stack buffer. The parent reaps crashed children and keeps serving
    — exactly the worker-pool pattern the byte-by-byte attack of §II-B
    exploits. The attacker learns one bit (and the crash signature) per
    request: did the child survive? *)

type t

type transport =
  | Magic  (** legacy request channel: payload becomes the child's input *)
  | Net_conn
      (** probes travel over a {!Net.Conn}: connect, send payload, FIN,
          observe the child's fate (and response bytes) through the
          socket layer — chosen automatically when the server binds a
          listening socket (e.g. {!Workload.Vuln.fork_server_net}) *)

(** Victim lifecycle across attack restarts (a restart = a full
    byte-sweep failed, or the parent died). [No_respawn] keeps
    hammering the same long-lived parent — the historical oracle.
    [Cold] boots a fresh kernel + spawn + warmup each restart; [Zygote]
    thaws a warm {!Os.Snapshot} captured at the first accept. Cold and
    Zygote are observationally identical (the snapshot round-trip is
    bit-exact), isolating exactly the restart cost the prefork/zygote
    pattern amortizes. *)
type respawn = No_respawn | Cold | Zygote

val create :
  ?seed:int64 ->
  ?preload:Os.Preload.mode ->
  ?insn_tax:int ->
  ?respawn:respawn ->
  Os.Image.t ->
  t
(** Spawn the server and run it to its first [accept] (capturing the
    zygote snapshot there when [respawn] is [Zygote]; default
    [No_respawn]). Raises [Failure] if the image never reaches
    [accept]. *)

val restart_victim : t -> bool
(** Replace the victim per the [respawn] policy; [false] (and no-op)
    under [No_respawn]. The replacement is booted to its first
    [accept] and the oracle is alive again; the query/trial counter
    keeps counting. Counts under ["attack.victim_respawns"]. *)

val respawns : t -> int
(** Victim replacements served by {!restart_victim} so far. *)

val transport : t -> transport

type response =
  | Survived of string
      (** child exited normally; its stdout (magic) or its connection
          response (net) *)
  | Crashed of Os.Process.signal * string  (** signal and fault message *)
  | Server_down of string  (** the parent itself died — oracle gone *)

val query : t -> bytes -> response
(** Deliver one request and observe the child's fate. *)

val queries : t -> int
(** Number of requests made so far (the attack's trial counter). *)

val server_alive : t -> bool
