type outcome =
  | Broken of { canary : bytes; trials : int }
  | Exhausted of { trials : int; restarts : int; max_bytes_recovered : int }
  | Oracle_lost of { trials : int; detail : string }

let outcome_to_string = function
  | Broken { canary; trials } ->
    Printf.sprintf "BROKEN after %d trials (canary %s)" trials
      (Util.Hex.of_bytes canary)
  | Exhausted { trials; restarts; max_bytes_recovered } ->
    Printf.sprintf "exhausted after %d trials (%d restarts, at most %d byte(s) held)"
      trials restarts max_bytes_recovered
  | Oracle_lost { trials; detail } ->
    Printf.sprintf "oracle lost after %d trials: %s" trials detail

exception Stop of outcome

type verify_mode = Hijack | Stealth

(* Process-wide restart total across all attack runs in a campaign,
   alongside the per-run count reported in [Exhausted]. Restarts are
   rare (one per full byte-sweep failure), so a registry counter is
   cheap. *)
let g_restarts = Telemetry.Registry.counter "attack.restarts"

let run ?(verify = Hijack) oracle ~layout ~max_trials =
  let restarts = ref 0 in
  let note_restart () =
    restarts := !restarts + 1;
    Telemetry.Registry.incr g_restarts;
    if Telemetry.Trace.enabled () then
      Telemetry.Trace.instant "attack.restart"
        ~args:[ ("run_restarts", string_of_int !restarts) ];
    (* under a Cold/Zygote oracle the restart also replaces the victim
       (fresh worker pool / respawned service); a No_respawn oracle
       keeps the same parent, as the historical attack did *)
    ignore (Oracle.restart_victim oracle)
  in
  let deepest = ref 0 in
  let budget_left () = max_trials - Oracle.queries oracle in
  let check_budget () =
    if budget_left () <= 0 then
      raise
        (Stop
           (Exhausted
              {
                trials = Oracle.queries oracle;
                restarts = !restarts;
                max_bytes_recovered = !deepest;
              }))
  in
  let query payload =
    check_budget ();
    match Oracle.query oracle payload with
    | Oracle.Server_down detail ->
      raise (Stop (Oracle_lost { trials = Oracle.queries oracle; detail }))
    | response -> response
  in
  (* Recover one byte given the already-confirmed prefix. *)
  let recover_byte known =
    let rec try_guess guess =
      if guess > 0xFF then None
      else begin
        match query (Payload.guess_prefix layout ~known ~guess) with
        | Oracle.Survived _ -> Some guess
        | Oracle.Crashed _ -> try_guess (guess + 1)
        | Oracle.Server_down _ -> assert false (* handled in query *)
      end
    in
    try_guess 0
  in
  let rec attempt () =
    let rec collect known =
      deepest := max !deepest (Bytes.length known);
      if Bytes.length known = layout.Payload.canary_len then known
      else
        match recover_byte known with
        | Some byte -> collect (Bytes.cat known (Bytes.make 1 (Char.chr byte)))
        | None ->
          (* no byte survived a full sweep: canary moved under us *)
          note_restart ();
          check_budget ();
          collect (Bytes.create 0)
    in
    let canary = collect (Bytes.create 0) in
    let verified =
      match verify with
      | Hijack -> Payload.hijacked (query (Payload.hijack layout ~canary))
      | Stealth -> (
        match query (Payload.stealth_corruption layout ~canary) with
        | Oracle.Survived _ -> true
        | Oracle.Crashed _ | Oracle.Server_down _ -> false)
    in
    if verified then Broken { canary; trials = Oracle.queries oracle }
    else begin
      note_restart ();
      attempt ()
    end
  in
  try attempt () with Stop outcome -> outcome
