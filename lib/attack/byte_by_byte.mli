(** The byte-by-byte attack of §II-B.

    Guess the canary one byte at a time, lowest address first: overflow
    exactly up to byte [k] with bytes [0..k-1] replayed from previous
    successes; a surviving child confirms byte [k]. Against SSP's
    fork-constant canary this needs ~128 trials per byte (~1024 total
    on 64-bit). Against P-SSP every fork re-randomizes the pair, so
    "confirmed" bytes are stale and the final exploit never verifies —
    the attacker's advantage does not accumulate (Theorem 1). *)

type outcome =
  | Broken of { canary : bytes; trials : int }
      (** full canary recovered AND a control-flow hijack verified *)
  | Exhausted of { trials : int; restarts : int; max_bytes_recovered : int }
      (** trial budget spent without a verified exploit *)
  | Oracle_lost of { trials : int; detail : string }

val outcome_to_string : outcome -> string

type verify_mode =
  | Hijack  (** overwrite the return address; verify the jump landed *)
  | Stealth
      (** leave the return address alone; verify the child survives a
          corruption of the saved-rbp word beyond the canary. Needed
          against return-address-bound canaries (P-SSP-OWF), where a
          hijack payload invalidates the very canary being replayed. *)

val run :
  ?verify:verify_mode ->
  Oracle.t ->
  layout:Payload.layout ->
  max_trials:int ->
  outcome
(** Run until verified success or the budget is exhausted. Each
    completed canary recovery is verified per [verify] (default
    {!Hijack}); a failed verification restarts the attack from scratch
    (as a real BROP attacker must when the canary turns out wrong). *)
