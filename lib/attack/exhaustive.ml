type outcome =
  | Broken of { canary : bytes; trials : int }
  | Exhausted of { trials : int }
  | Oracle_lost of { trials : int; detail : string }

let outcome_to_string = function
  | Broken { canary; trials } ->
    Printf.sprintf "BROKEN after %d trials (canary %s)" trials
      (Util.Hex.of_bytes canary)
  | Exhausted { trials } -> Printf.sprintf "exhausted after %d trials" trials
  | Oracle_lost { trials; detail } ->
    Printf.sprintf "oracle lost after %d trials: %s" trials detail

let run ?(seed = 0xB47EL) oracle ~layout ~max_trials =
  let rng = Util.Prng.create seed in
  let rec loop () =
    if Oracle.queries oracle >= max_trials then
      Exhausted { trials = Oracle.queries oracle }
    else begin
      let canary = Util.Prng.bytes rng layout.Payload.canary_len in
      match Oracle.query oracle (Payload.hijack layout ~canary) with
      | Oracle.Server_down detail ->
        Oracle_lost { trials = Oracle.queries oracle; detail }
      | response ->
        if Payload.hijacked response then
          Broken { canary; trials = Oracle.queries oracle }
        else loop ()
    end
  in
  loop ()
