(** Deliberately vulnerable victim programs for the security
    experiments. *)

val fork_server : buffer_size:int -> string
(** The §II-B victim: a forking server whose child handler reads the
    whole request into a fixed stack buffer with no bounds check.
    [buffer_size] should be a multiple of 8 so the overflow distance to
    the canary is exactly [buffer_size]. *)

val fork_server_net : buffer_size:int -> string
(** {!fork_server} over a real {!Net.Conn} file descriptor: the child
    handler [read]s up to 1024 bytes of connection payload into its
    fixed stack buffer in one unchecked call — the same overflow, but
    reachable by a remote client through the socket layer. *)

val echo_once : buffer_size:int -> string
(** Single-shot vulnerable program (spawn, feed input, observe). *)

val raf_correctness_probe : string
(** The Table I "Correctness" experiment: [fork] happens inside a
    canary-guarded function and the child then returns from it. Schemes
    that refresh the TLS canary without fixing live stack frames
    (RAF-SSP) falsely abort the child; correct schemes let it exit with
    code 7. *)

val leaky_server : string
(** Exposure-resilience victim (§IV-C). Two distinct handlers: a first
    byte of ['L'] routes to [leak_info], which discloses 64 bytes
    starting at its own 16-byte buffer via an out-of-bounds read
    (covering its canary region); any other first byte is consumed and
    the remaining input goes down [process_input]'s unbounded-overflow
    path. Leak and overflow live in different functions, so a forged
    canary must transfer across frames to win. *)

val leaky_overflow_distance : int
(** Bytes from the vulnerable buffer's start to the canary region in
    both handler frames (the buffer is the only local array). *)

val lv_stealth_victim : string
(** P-SSP-LV demonstration: a [critical] buffer sits above a plain
    buffer; a measured overflow from the plain buffer corrupts the
    critical one without ever reaching the return-address guard.
    Undetected by SSP/P-SSP-NT; caught by P-SSP-LV's per-variable
    canary. Prints the critical buffer's first byte so corruption is
    observable. *)

val lv_stealth_payload : bytes
(** A 24-byte payload that corrupts the critical buffer (or its LV
    canary) but stops short of the return-address guard. *)
