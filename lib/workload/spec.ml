type bench = {
  bench_name : string;
  suite : [ `Int | `Fp ];
  source : string;
}

let all =
  List.map
    (fun (bench_name, source) -> { bench_name; suite = `Int; source })
    Spec_int.all
  @ List.map
      (fun (bench_name, source) -> { bench_name; suite = `Fp; source })
      Spec_fp.all

let find name = List.find_opt (fun b -> String.equal b.bench_name name) all

let names = List.map (fun b -> b.bench_name) all

let cache : (string, Minic.Ast.program) Hashtbl.t = Hashtbl.create 32

let parse bench =
  match Hashtbl.find_opt cache bench.bench_name with
  | Some p -> p
  | None ->
    let p = Minic.Parser.parse bench.source in
    Hashtbl.add cache bench.bench_name p;
    p
