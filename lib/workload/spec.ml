type bench = {
  bench_name : string;
  suite : [ `Int | `Fp ];
  source : string;
}

let all =
  List.map
    (fun (bench_name, source) -> { bench_name; suite = `Int; source })
    Spec_int.all
  @ List.map
      (fun (bench_name, source) -> { bench_name; suite = `Fp; source })
      Spec_fp.all

let find name = List.find_opt (fun b -> String.equal b.bench_name name) all

let names = List.map (fun b -> b.bench_name) all

(* The parse cache is the one piece of mutable state shared across the
   harness's worker domains, so it takes a lock; parsing outside it is
   redundant at worst (two domains racing on the same bench both parse,
   last write wins on an immutable AST). *)
let cache : (string, Minic.Ast.program) Hashtbl.t = Hashtbl.create 32
let cache_lock = Mutex.create ()

let parse bench =
  let cached =
    Mutex.lock cache_lock;
    let p = Hashtbl.find_opt cache bench.bench_name in
    Mutex.unlock cache_lock;
    p
  in
  match cached with
  | Some p -> p
  | None ->
    let p = Minic.Parser.parse bench.source in
    Mutex.lock cache_lock;
    Hashtbl.replace cache bench.bench_name p;
    Mutex.unlock cache_lock;
    p
