type profile = {
  profile_name : string;
  source : string;
  requests : string list;
  cycles_per_ms : float;
}

(* Request framing shared by every profile: pull bytes off the
   connection one at a time (slow senders may trickle) until a blank
   line ends an HTTP-style request, the peer half-closes (EOF frames
   the one-line DB queries), or the connection dies. Bounds-checked —
   the deliberately vulnerable handlers live in {!Vuln}. *)
let recv_req_src =
  {|
int recv_req(int fd, char req[], int cap) {
  char ch[1];
  int n = 0;
  int r = read(fd, ch, 1);
  while (r > 0) {
    if (n < cap) {
      req[n] = ch[0];
      n++;
    }
    if (n >= 2 && req[n - 1] == '\n' && req[n - 2] == '\n') {
      return n;
    }
    r = read(fd, ch, 1);
  }
  return n;
}
|}

(* Blocking request loop over a profile's [respond]: every profile
   defines `int respond(int fd, char req[], int n)` (parse + compute +
   write the answer) and gets this same driver. The event-loop skeleton
   reuses the same respond with its own non-blocking framing. *)
let handle_src ~cap =
  Printf.sprintf
    {|
int handle(int fd) {
  char req[%d];
  int n = recv_req(fd, req, %d);
  while (n > 0) {
    respond(fd, req, n);
    n = recv_req(fd, req, %d);
  }
  return 0;
}
|}
    (cap + 1) cap cap

(* Shared fork-per-connection skeleton (the worker-pool pattern of
   §II-B): the child serves its connection to completion; the parent
   reaps opportunistically with waitpid_nb so it can keep accepting
   while children are still serving — this is where the concurrency
   under {!Net.Loadgen} traffic comes from. *)
let serve_skeleton =
  {|
int serve() {
  int lfd;
  int fd;
  int pid;
  lfd = socket();
  bind(lfd, 8080);
  listen(lfd, 64);
  while (1) {
    fd = accept();
    if (fd < 0) {
      break;
    }
    pid = fork();
    if (pid == 0) {
      handle(fd);
      close(fd);
      exit(0);
    }
    close(fd);
    pid = waitpid_nb();
    while (pid > 0) {
      pid = waitpid_nb();
    }
  }
  return 0;
}

int main() {
  setup();
  serve();
  return 0;
}
|}

(* Apache2-like: verbose header parsing, content generation, checksums. *)
let apache2 =
  {
    profile_name = "Apache2";
    cycles_per_ms = 25750.0;
    requests =
      [
        "GET /index.html HTTP/1.1\nHost: a\nUser-Agent: ab\nAccept: */*\n\n";
        "GET /big/page HTTP/1.1\nHost: a\nCookie: s=12345678\nAccept: */*\n\n";
      ];
    source =
      {|
int body[2048];

int setup() {
  int i;
  for (i = 0; i < 2048; i++) {
    body[i] = (i * 31 + 7) % 256;
  }
  return 0;
}

int parse_headers(char req[], int len) {
  char name[32];
  int count = 0;
  int i = 0;
  int nlen = 0;
  int in_name = 1;
  for (i = 0; i < len; i++) {
    if (req[i] == '\n') {
      count++;
      in_name = 1;
      nlen = 0;
    } else {
      if (req[i] == ':') {
        in_name = 0;
      } else {
        if (in_name == 1 && nlen < 31) {
          name[nlen] = req[i];
          nlen++;
        }
      }
    }
  }
  return count + name[0];
}

int render(int pages) {
  int acc = 0;
  int p;
  for (p = 0; p < pages; p++) {
    int i;
    for (i = 0; i < 2048; i++) {
      acc = (acc + body[i] * (p + 1)) % 16777213;
    }
  }
  return acc;
}
|}
      ^ recv_req_src
      ^ {|
int respond(int fd, char req[], int n) {
  int headers = parse_headers(req, n);
  int etag = render(6);
  write_str(fd, "HTTP/1.1 200 OK etag=");
  write_int(fd, (etag + headers) % 1000000);
  write_str(fd, "\n");
  return 0;
}
|}
      ^ handle_src ~cap:255 ^ serve_skeleton;
  }

(* Nginx-like: minimal parsing, tiny static response. *)
let nginx =
  {
    profile_name = "Nginx";
    cycles_per_ms = 21420.0;
    requests =
      [ "GET / HTTP/1.1\nHost: n\n\n"; "GET /static.css HTTP/1.1\nHost: n\n\n" ];
    source =
      {|
int mime[64];

int setup() {
  int i;
  for (i = 0; i < 64; i++) {
    mime[i] = i * 7 % 19;
  }
  return 0;
}

int route(char req[], int len) {
  int h = 0;
  int i;
  for (i = 0; i < len && req[i] != '\n'; i++) {
    h = (h * 33 + req[i]) % 8191;
  }
  return mime[h % 64];
}

int render(int kind) {
  int acc = kind;
  int i;
  for (i = 0; i < 900; i++) {
    acc = (acc * 17 + i) % 16777213;
  }
  return acc;
}
|}
      ^ recv_req_src
      ^ {|
int respond(int fd, char req[], int n) {
  int kind = route(req, n);
  write_str(fd, "HTTP/1.1 200 OK v=");
  write_int(fd, render(kind));
  write_str(fd, "\n");
  return 0;
}
|}
      ^ handle_src ~cap:127 ^ serve_skeleton;
  }

(* MySQL-like: point queries via binary search plus a small aggregate. *)
let mysql =
  {
    profile_name = "MySQL";
    cycles_per_ms = 3370.0;
    requests = [ "SELECT 481"; "SELECT 77"; "SELECT 1019" ];
    source =
      {|
int keys[1024];
int vals[1024];

int setup() {
  int i;
  for (i = 0; i < 1024; i++) {
    keys[i] = i * 3 + 1;
    vals[i] = (i * 2654435761) % 100000;
  }
  return 0;
}

int parse_key(char q[], int len) {
  int k = 0;
  int i;
  for (i = 0; i < len; i++) {
    if (q[i] >= '0' && q[i] <= '9') {
      k = k * 10 + (q[i] - '0');
    }
  }
  return k;
}

int lookup(int key) {
  int lo = 0;
  int hi = 1023;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (keys[mid] == key) {
      return vals[mid];
    }
    if (keys[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

int aggregate(int around) {
  int acc = 0;
  int i;
  int start = around % 992;
  if (start < 0) { start = 0; }
  for (i = start; i < start + 32; i++) {
    acc += vals[i];
  }
  return acc;
}
|}
      ^ recv_req_src
      ^ {|
int respond(int fd, char q[], int n) {
  int key = parse_key(q, n);
  int hit = lookup(key);
  write_str(fd, "row=");
  write_int(fd, hit);
  write_str(fd, " agg=");
  write_int(fd, aggregate(key));
  write_str(fd, "\n");
  return 0;
}
|}
      ^ handle_src ~cap:63 ^ serve_skeleton;
  }

(* SQLite-like: full-table scan with predicate plus an insertion sort of
   the matching rows (scan-dominated, hence the paper's much larger
   per-query time). *)
let sqlite =
  {
    profile_name = "SQLite";
    cycles_per_ms = 1920.0;
    requests = [ "SCAN 7"; "SCAN 3" ];
    source =
      {|
int rows[4096];
int result[64];

int setup() {
  int i;
  for (i = 0; i < 4096; i++) {
    rows[i] = (i * 48271) % 65537;
  }
  return 0;
}

int parse_pred(char q[], int len) {
  int k = 0;
  int i;
  for (i = 0; i < len; i++) {
    if (q[i] >= '0' && q[i] <= '9') {
      k = k * 10 + (q[i] - '0');
    }
  }
  if (k < 2) { k = 2; }
  return k;
}

int scan(int modulus) {
  int found = 0;
  int i;
  for (i = 0; i < 4096; i++) {
    if (rows[i] % modulus == 0) {
      if (found < 64) {
        result[found] = rows[i];
      }
      found++;
    }
  }
  return found;
}

int sort_results(int n) {
  int i;
  if (n > 64) { n = 64; }
  for (i = 1; i < n; i++) {
    int v = result[i];
    int j = i - 1;
    while (j >= 0 && result[j] > v) {
      result[j + 1] = result[j];
      j--;
    }
    result[j + 1] = v;
  }
  if (n > 0) { return result[0]; }
  return 0;
}
|}
      ^ recv_req_src
      ^ {|
int respond(int fd, char q[], int n) {
  int pred = parse_pred(q, n);
  int found = scan(pred);
  int smallest = sort_results(found);
  write_str(fd, "rows=");
  write_int(fd, found);
  write_str(fd, " min=");
  write_int(fd, smallest);
  write_str(fd, "\n");
  return 0;
}
|}
      ^ handle_src ~cap:63 ^ serve_skeleton;
  }

(* Thread-per-connection variant of the serve loop. The handler runs in
   a thread created with pthread_create (which receives the connection
   fd as its argument); the main loop joins it before accepting again
   (matching the drive-one-request-at-a-time harness). *)
let serve_skeleton_threaded =
  {|
int conn_worker(int arg) {
  handle(arg);
  close(arg);
  return 0;
}

int serve() {
  int lfd;
  int fd;
  lfd = socket();
  bind(lfd, 8080);
  listen(lfd, 64);
  while (1) {
    fd = accept();
    if (fd < 0) {
      break;
    }
    pthread_create(&conn_worker, fd);
    close(fd);
    waitpid();
  }
  return 0;
}

int main() {
  setup();
  serve();
  return 0;
}
|}

(* Everything before the serve loop — setup, service logic, recv_req,
   respond, handle — is shared by all server architectures; only the
   skeleton after "int serve()" differs. *)
let service_prefix profile =
  let marker = "
int serve()" in
  let rec find i =
    if i + String.length marker > String.length profile.source then
      String.length profile.source
    else if String.sub profile.source i (String.length marker) = marker then i
    else find (i + 1)
  in
  String.sub profile.source 0 (find 0)

let with_skeleton profile ~suffix ~skeleton =
  {
    profile with
    profile_name = profile.profile_name ^ suffix;
    source = service_prefix profile ^ skeleton;
  }

let threaded profile =
  with_skeleton profile ~suffix:" (threads)" ~skeleton:serve_skeleton_threaded

(* Event-driven single-process server: every fd is non-blocking, an
   epoll_wait readiness loop drains whatever turned readable, and
   per-connection request framing is incremental — partial requests
   park in a flat per-fd buffer (fd * EV_CAP, since the kernel reuses
   low fds) until the blank-line terminator lands, then the profile's
   [respond] runs. EOF flushes a terminator-less request (the DB query
   framing), so the same mixes work against every architecture. *)
let ev_max_fds = 512
let ev_cap = 128

let serve_skeleton_event =
  Printf.sprintf
    {|
int ev_nreq[%d];
char ev_buf[%d];

int ev_flush(int fd, int n) {
  char req[%d];
  int base = fd * %d;
  int j = 0;
  while (j < n) {
    req[j] = ev_buf[base + j];
    j++;
  }
  respond(fd, req, n);
  return 0;
}

int ev_feed(int fd) {
  char chunk[64];
  int base = fd * %d;
  int n = ev_nreq[fd];
  int r = read(fd, chunk, 64);
  while (r > 0) {
    int i = 0;
    while (i < r) {
      if (n < %d) {
        ev_buf[base + n] = chunk[i];
        n++;
      }
      if (n >= 2 && ev_buf[base + n - 1] == '\n' && ev_buf[base + n - 2] == '\n') {
        ev_flush(fd, n);
        n = 0;
      }
      i++;
    }
    r = read(fd, chunk, 64);
  }
  if (r == 0) {
    if (n > 0) {
      ev_flush(fd, n);
    }
    ev_nreq[fd] = 0;
    return 1;
  }
  if (r == -1) {
    ev_nreq[fd] = 0;
    return 1;
  }
  ev_nreq[fd] = n;
  return 0;
}

int serve() {
  int events[64];
  int lfd;
  int nev;
  int k;
  int fd;
  int cfd;
  lfd = socket();
  bind(lfd, 8080);
  listen(lfd, 256);
  set_nonblock(lfd);
  while (1) {
    nev = epoll_wait(events, 64);
    if (nev < 0) {
      break;
    }
    k = 0;
    while (k < nev) {
      fd = events[k];
      if (fd == lfd) {
        cfd = accept();
        while (cfd >= 0) {
          if (cfd < %d) {
            set_nonblock(cfd);
            ev_nreq[cfd] = 0;
          } else {
            close(cfd);
          }
          cfd = accept();
        }
      } else {
        if (ev_feed(fd) == 1) {
          close(fd);
        }
      }
      k++;
    }
  }
  return 0;
}

int main() {
  setup();
  serve();
  return 0;
}
|}
    ev_max_fds (ev_max_fds * ev_cap) ev_cap ev_cap ev_cap ev_cap ev_max_fds

let event_loop profile =
  with_skeleton profile ~suffix:" (event)" ~skeleton:serve_skeleton_event

(* SO_REUSEPORT-style sharding: the parent forks N acceptor children,
   each of which opens its own listening socket on the same port; the
   kernel round-robins incoming connects across the port's listeners.
   Each shard serves its connections to completion, one at a time. The
   parent owns no socket — it just holds the shards. *)
let serve_skeleton_sharded ~shards =
  Printf.sprintf
    {|
int shard_serve() {
  int lfd;
  int fd;
  lfd = socket();
  bind(lfd, 8080);
  listen(lfd, 64);
  while (1) {
    fd = accept();
    if (fd < 0) {
      break;
    }
    handle(fd);
    close(fd);
  }
  return 0;
}

int serve() {
  int i;
  int pid;
  i = 0;
  while (i < %d) {
    pid = fork();
    if (pid == 0) {
      shard_serve();
      exit(0);
    }
    i++;
  }
  while (1) {
    waitpid();
  }
  return 0;
}

int main() {
  setup();
  serve();
  return 0;
}
|}
    shards

let sharded ?(shards = 4) profile =
  with_skeleton profile
    ~suffix:(Printf.sprintf " (reuseport x%d)" shards)
    ~skeleton:(serve_skeleton_sharded ~shards)

let web = [ apache2; nginx ]
let db = [ mysql; sqlite ]
