type profile = {
  profile_name : string;
  source : string;
  requests : string list;
  cycles_per_ms : float;
}

(* Shared fork-per-request skeleton (the worker-pool pattern of §II-B). *)
let serve_skeleton =
  {|
int serve() {
  int pid;
  while (1) {
    if (accept() < 0) {
      break;
    }
    pid = fork();
    if (pid == 0) {
      handle();
      exit(0);
    }
    waitpid();
  }
  return 0;
}

int main() {
  setup();
  serve();
  return 0;
}
|}

(* Apache2-like: verbose header parsing, content generation, checksums. *)
let apache2 =
  {
    profile_name = "Apache2";
    cycles_per_ms = 25270.0;
    requests =
      [
        "GET /index.html HTTP/1.1\nHost: a\nUser-Agent: ab\nAccept: */*\n\n";
        "GET /big/page HTTP/1.1\nHost: a\nCookie: s=12345678\nAccept: */*\n\n";
      ];
    source =
      {|
int body[2048];

int setup() {
  int i;
  for (i = 0; i < 2048; i++) {
    body[i] = (i * 31 + 7) % 256;
  }
  return 0;
}

int parse_headers(char req[], int len) {
  char name[32];
  int count = 0;
  int i = 0;
  int nlen = 0;
  int in_name = 1;
  for (i = 0; i < len; i++) {
    if (req[i] == '\n') {
      count++;
      in_name = 1;
      nlen = 0;
    } else {
      if (req[i] == ':') {
        in_name = 0;
      } else {
        if (in_name == 1 && nlen < 31) {
          name[nlen] = req[i];
          nlen++;
        }
      }
    }
  }
  return count + name[0];
}

int render(int pages) {
  int acc = 0;
  int p;
  for (p = 0; p < pages; p++) {
    int i;
    for (i = 0; i < 2048; i++) {
      acc = (acc + body[i] * (p + 1)) % 16777213;
    }
  }
  return acc;
}

int handle() {
  char req[256];
  int n = read_n(req, 255);
  int headers = parse_headers(req, n);
  int etag = render(6);
  print_str("HTTP/1.1 200 OK etag=");
  print_int((etag + headers) % 1000000);
  print_str("\n");
  return 0;
}
|}
      ^ serve_skeleton;
  }

(* Nginx-like: minimal parsing, tiny static response. *)
let nginx =
  {
    profile_name = "Nginx";
    cycles_per_ms = 18940.0;
    requests =
      [ "GET / HTTP/1.1\nHost: n\n\n"; "GET /static.css HTTP/1.1\nHost: n\n\n" ];
    source =
      {|
int mime[64];

int setup() {
  int i;
  for (i = 0; i < 64; i++) {
    mime[i] = i * 7 % 19;
  }
  return 0;
}

int route(char req[], int len) {
  int h = 0;
  int i;
  for (i = 0; i < len && req[i] != '\n'; i++) {
    h = (h * 33 + req[i]) % 8191;
  }
  return mime[h % 64];
}

int render(int kind) {
  int acc = kind;
  int i;
  for (i = 0; i < 900; i++) {
    acc = (acc * 17 + i) % 16777213;
  }
  return acc;
}

int handle() {
  char req[128];
  int n = read_n(req, 127);
  int kind = route(req, n);
  print_str("HTTP/1.1 200 OK v=");
  print_int(render(kind));
  print_str("\n");
  return 0;
}
|}
      ^ serve_skeleton;
  }

(* MySQL-like: point queries via binary search plus a small aggregate. *)
let mysql =
  {
    profile_name = "MySQL";
    cycles_per_ms = 2430.0;
    requests = [ "SELECT 481"; "SELECT 77"; "SELECT 1019" ];
    source =
      {|
int keys[1024];
int vals[1024];

int setup() {
  int i;
  for (i = 0; i < 1024; i++) {
    keys[i] = i * 3 + 1;
    vals[i] = (i * 2654435761) % 100000;
  }
  return 0;
}

int parse_key(char q[], int len) {
  int k = 0;
  int i;
  for (i = 0; i < len; i++) {
    if (q[i] >= '0' && q[i] <= '9') {
      k = k * 10 + (q[i] - '0');
    }
  }
  return k;
}

int lookup(int key) {
  int lo = 0;
  int hi = 1023;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (keys[mid] == key) {
      return vals[mid];
    }
    if (keys[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

int aggregate(int around) {
  int acc = 0;
  int i;
  int start = around % 992;
  if (start < 0) { start = 0; }
  for (i = start; i < start + 32; i++) {
    acc += vals[i];
  }
  return acc;
}

int handle() {
  char q[64];
  int n = read_n(q, 63);
  int key = parse_key(q, n);
  int hit = lookup(key);
  print_str("row=");
  print_int(hit);
  print_str(" agg=");
  print_int(aggregate(key));
  print_str("\n");
  return 0;
}
|}
      ^ serve_skeleton;
  }

(* SQLite-like: full-table scan with predicate plus an insertion sort of
   the matching rows (scan-dominated, hence the paper's much larger
   per-query time). *)
let sqlite =
  {
    profile_name = "SQLite";
    cycles_per_ms = 1910.0;
    requests = [ "SCAN 7"; "SCAN 3" ];
    source =
      {|
int rows[4096];
int result[64];

int setup() {
  int i;
  for (i = 0; i < 4096; i++) {
    rows[i] = (i * 48271) % 65537;
  }
  return 0;
}

int parse_pred(char q[], int len) {
  int k = 0;
  int i;
  for (i = 0; i < len; i++) {
    if (q[i] >= '0' && q[i] <= '9') {
      k = k * 10 + (q[i] - '0');
    }
  }
  if (k < 2) { k = 2; }
  return k;
}

int scan(int modulus) {
  int found = 0;
  int i;
  for (i = 0; i < 4096; i++) {
    if (rows[i] % modulus == 0) {
      if (found < 64) {
        result[found] = rows[i];
      }
      found++;
    }
  }
  return found;
}

int sort_results(int n) {
  int i;
  if (n > 64) { n = 64; }
  for (i = 1; i < n; i++) {
    int v = result[i];
    int j = i - 1;
    while (j >= 0 && result[j] > v) {
      result[j + 1] = result[j];
      j--;
    }
    result[j + 1] = v;
  }
  if (n > 0) { return result[0]; }
  return 0;
}

int handle() {
  char q[64];
  int n = read_n(q, 63);
  int pred = parse_pred(q, n);
  int found = scan(pred);
  int smallest = sort_results(found);
  print_str("rows=");
  print_int(found);
  print_str(" min=");
  print_int(smallest);
  print_str("\n");
  return 0;
}
|}
      ^ serve_skeleton;
  }

(* Thread-per-request variant of the serve loop. The handler runs in a
   thread created with pthread_create; the main loop joins it before
   accepting again (matching the drive-one-request-at-a-time harness). *)
let serve_skeleton_threaded =
  {|
int conn_worker(int arg) {
  handle();
  return 0;
}

int serve() {
  while (1) {
    if (accept() < 0) {
      break;
    }
    pthread_create(&conn_worker, 0);
    waitpid();
  }
  return 0;
}

int main() {
  setup();
  serve();
  return 0;
}
|}

let threaded profile =
  let prefix =
    match String.index_opt profile.source 'i' with
    | _ ->
      (* everything before the fork skeleton is the service logic *)
      let marker = "
int serve()" in
      let rec find i =
        if i + String.length marker > String.length profile.source then
          String.length profile.source
        else if String.sub profile.source i (String.length marker) = marker then i
        else find (i + 1)
      in
      String.sub profile.source 0 (find 0)
  in
  {
    profile with
    profile_name = profile.profile_name ^ " (threads)";
    source = prefix ^ serve_skeleton_threaded;
  }

let web = [ apache2; nginx ]
let db = [ mysql; sqlite ]
