let serve_skeleton =
  {|
int serve() {
  int pid;
  while (1) {
    if (accept() < 0) {
      break;
    }
    pid = fork();
    if (pid == 0) {
      handle();
      exit(0);
    }
    waitpid();
  }
  return 0;
}

int main() {
  serve();
  return 0;
}
|}

let fork_server ~buffer_size =
  Printf.sprintf
    {|
int handle() {
  char buf[%d];
  read_input(buf);
  print_str("OK\n");
  return 0;
}
|}
    buffer_size
  ^ serve_skeleton

(* Connection-oriented variant of the serve loop: requests arrive over
   a {!Net.Conn} fd instead of the magic input channel. The blocking
   waitpid keeps per-probe child attribution exact for the oracle. *)
let serve_skeleton_net =
  {|
int serve() {
  int lfd;
  int fd;
  int pid;
  lfd = socket();
  bind(lfd, 8080);
  listen(lfd, 16);
  while (1) {
    fd = accept();
    if (fd < 0) {
      break;
    }
    pid = fork();
    if (pid == 0) {
      handle(fd);
      close(fd);
      exit(0);
    }
    close(fd);
    waitpid();
  }
  return 0;
}

int main() {
  serve();
  return 0;
}
|}

let fork_server_net ~buffer_size =
  Printf.sprintf
    {|
int handle(int fd) {
  char buf[%d];
  int n = read(fd, buf, 1024);
  write_str(fd, "OK\n");
  return 0;
}
|}
    buffer_size
  ^ serve_skeleton_net

let echo_once ~buffer_size =
  Printf.sprintf
    {|
int handle() {
  char buf[%d];
  read_input(buf);
  print_str("handled\n");
  return 0;
}

int main() {
  handle();
  return 0;
}
|}
    buffer_size

let raf_correctness_probe =
  {|
int child_task() {
  char pad[16];
  pad[0] = 'c';
  return pad[0];
}

int risky_fork() {
  char buf[16];
  int pid;
  strcpy(buf, "parent");
  pid = fork();
  if (pid == 0) {
    child_task();
    return 7;
  }
  waitpid();
  return buf[0];
}

int main() {
  int r = risky_fork();
  if (r == 7) {
    exit(7);
  }
  print_str("parent done\n");
  return 0;
}
|}

let leaky_overflow_distance = 24

let leaky_server =
  {|
int handle() {
  char cmd[8];
  char buf[16];
  int n;
  int k;
  n = read_n(cmd, 1);
  if (n > 0 && cmd[0] == 'L') {
    for (k = 0; k < 64; k++) {
      putchar(buf[k]);
    }
    return 0;
  }
  read_input(buf);
  print_str("OK\n");
  return 0;
}
|}
  ^ serve_skeleton

let lv_stealth_victim =
  {|
int handle() {
  critical char audit[16];
  char input[16];
  int i;
  for (i = 0; i < 16; i++) {
    audit[i] = 'G';
  }
  read_input(input);
  print_str("audit=");
  putchar(audit[0]);
  print_str("\n");
  return 0;
}

int main() {
  handle();
  return 0;
}
|}

let lv_stealth_payload =
  (* 16 bytes fill the plain buffer; 8 more land on whatever sits above
     it: the critical buffer (P-SSP-NT layout) or its LV canary. *)
  Bytes.cat (Bytes.make 16 'A') (Bytes.make 8 'X')
