(** Random well-typed Mini-C program generation, for differential
    testing: every generated program terminates, exits 0, and prints a
    data-dependent transcript — so any divergence between two builds
    (schemes, optimisation levels) is a compiler or scheme bug.

    Generation is deterministic in the seed. Programs deliberately
    include at least one stack buffer per function (so every protection
    scheme emits canary code on every frame) and avoid the documented
    Mini-C limits (no shadowing, constant shifts, ≤6 parameters,
    non-zero divisors, bounded loops, no recursion). *)

val generate : seed:int64 -> Minic.Ast.program
(** Build a random program as an AST. *)

val generate_source : seed:int64 -> string
(** The same program as source text (via the pretty-printer). *)
