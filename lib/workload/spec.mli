(** The SPEC CPU2006-like benchmark suite: 28 Mini-C programs (12
    integer, 16 fixed-point "floating point") used by Figure 5 and
    Tables I/II. Each source is self-contained, deterministic, prints a
    final checksum, and owns at least one stack buffer so canary code is
    emitted. *)

type bench = {
  bench_name : string;
  suite : [ `Int | `Fp ];
  source : string;
}

val all : bench list
(** All 28, integer suite first. *)

val find : string -> bench option

val names : string list

val parse : bench -> Minic.Ast.program
(** Parse (and cache) a benchmark's source.
    Raises on parse errors — exercised by the test suite. *)
