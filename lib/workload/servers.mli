(** Network-service workload models for Tables III and IV.

    Each is a forking request server in Mini-C: the parent accepts, a
    child parses and answers the request, the parent reaps and loops.
    Per-request work is calibrated so the four services' relative
    response times match the paper's measurements (Apache2 heavy, Nginx
    light, MySQL point queries, SQLite scan-dominated). *)

type profile = {
  profile_name : string;
  source : string;
  requests : string list;  (** representative request mix *)
  cycles_per_ms : float;
      (** calibration constant mapping simulated cycles to the paper's
          wall-clock scale for this service *)
}

val apache2 : profile
val nginx : profile
val mysql : profile
val sqlite : profile

val web : profile list
val db : profile list

val threaded : profile -> profile
(** The paper runs its services "in the multithread mode": this variant
    handles each request in a thread spawned with [pthread_create]
    instead of a forked child. Canary-wise the interesting difference is
    that the P-SSP preload refreshes the shadow pair per thread
    (SV-A wraps [pthread_create] like [fork]). *)

val event_loop : profile -> profile
(** Event-driven single-process variant: non-blocking fds, an
    [epoll_wait] readiness loop, incremental keep-alive request framing
    in flat per-fd buffers, and the profile's own [respond] for the
    work. One process serves every connection — the architecture whose
    canary exposure P-SSP's per-request re-randomisation cannot rely on
    fork to refresh. *)

val sharded : ?shards:int -> profile -> profile
(** SO_REUSEPORT-style variant: [shards] forked acceptor processes each
    listen on the same port (their own sockets); the kernel round-robins
    incoming connects across the port's live listeners. Default 4. *)
