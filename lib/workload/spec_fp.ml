(* The SPECfp-like half of the suite: 16 Mini-C programs. Mini-C has no
   floating point, so each kernel runs in 16.16 fixed-point (the [fx_]
   helpers), preserving the numeric-kernel instruction mix: multiply-add
   chains, stencils, reductions, table lookups. *)

(* Shared fixed-point preamble spliced into every program. *)
let fx_prelude =
  {|
int fx_mul(int a, int b) {
  return (a * b) >> 16;
}

int fx_div(int a, int b) {
  if (b == 0) { return 0; }
  return (a << 16) / b;
}
|}

(* bwaves: 3-point wave equation stencil over a 1-D line. *)
let bwaves =
  fx_prelude
  ^ {|
int cur[256];
int prev[256];
int nxt[256];

int step_wave(int c2) {
  int i;
  int acc = 0;
  for (i = 1; i < 255; i++) {
    int lap = cur[i - 1] - 2 * cur[i] + cur[i + 1];
    nxt[i] = 2 * cur[i] - prev[i] + fx_mul(c2, lap);
    acc = (acc + nxt[i]) % 1000000007;
  }
  for (i = 0; i < 256; i++) {
    prev[i] = cur[i];
    cur[i] = nxt[i];
  }
  return acc;
}

int main() {
  char tag[8];
  int t;
  int total = 0;
  strcpy(tag, "bw");
  for (t = 0; t < 256; t++) {
    cur[t] = (t % 32) << 16;
    prev[t] = cur[t];
  }
  for (t = 0; t < 220; t++) {
    total = (total + step_wave(6553)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* gamess: small dense matrix-matrix multiply chains. *)
let gamess =
  fx_prelude
  ^ {|
int ma[144];
int mb[144];
int mc[144];

int matmul12() {
  int i;
  for (i = 0; i < 12; i++) {
    int j;
    for (j = 0; j < 12; j++) {
      int acc = 0;
      int k;
      for (k = 0; k < 12; k++) {
        acc += fx_mul(ma[i * 12 + k], mb[k * 12 + j]);
      }
      mc[i * 12 + j] = acc % 1048576;
    }
  }
  return mc[0];
}

int main() {
  char tag[8];
  int round;
  int total = 0;
  int x = 31;
  strcpy(tag, "gms");
  for (round = 0; round < 60; round++) {
    int i;
    for (i = 0; i < 144; i++) {
      x = (x * 48271) % 2147483647;
      ma[i] = x % 131072;
      mb[i] = (x >> 5) % 131072;
    }
    total = (total + matmul12()) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* milc: lattice link "multiplication" sweep (complex-ish pairs). *)
let milc =
  fx_prelude
  ^ {|
int re[512];
int im[512];

int link_sweep(int phase_re, int phase_im) {
  int i;
  int acc = 0;
  for (i = 0; i < 512; i++) {
    int nr = fx_mul(re[i], phase_re) - fx_mul(im[i], phase_im);
    int ni = fx_mul(re[i], phase_im) + fx_mul(im[i], phase_re);
    re[i] = nr % 1048576;
    im[i] = ni % 1048576;
    acc = (acc + nr + ni) % 1000000007;
  }
  return acc;
}

int main() {
  char site[16];
  int i;
  int total = 0;
  strcpy(site, "milc");
  for (i = 0; i < 512; i++) {
    re[i] = (i % 64) << 10;
    im[i] = ((i * 3) % 64) << 10;
  }
  for (i = 0; i < 120; i++) {
    total = (total + link_sweep(64000, 12000)) % 1000000007;
  }
  print_int(total + site[0]);
  print_str("\n");
  return 0;
}
|}

(* zeusmp: 2-D 5-point diffusion stencil on a 24x24 grid. *)
let zeusmp =
  fx_prelude
  ^ {|
int field[576];
int buf2[576];

int diffuse(int kappa) {
  int y;
  int acc = 0;
  for (y = 1; y < 23; y++) {
    int x;
    for (x = 1; x < 23; x++) {
      int c = field[y * 24 + x];
      int lap = field[y * 24 + x - 1] + field[y * 24 + x + 1]
              + field[(y - 1) * 24 + x] + field[(y + 1) * 24 + x] - 4 * c;
      buf2[y * 24 + x] = c + fx_mul(kappa, lap);
      acc = (acc + buf2[y * 24 + x]) % 1000000007;
    }
  }
  for (y = 0; y < 576; y++) {
    field[y] = buf2[y];
  }
  return acc;
}

int main() {
  char tag[8];
  int t;
  int total = 0;
  strcpy(tag, "zmp");
  for (t = 0; t < 576; t++) {
    field[t] = ((t % 48) << 14) % 1048576;
  }
  for (t = 0; t < 70; t++) {
    total = (total + diffuse(9830)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* gromacs: pairwise force accumulation with a cutoff test. *)
let gromacs =
  fx_prelude
  ^ {|
int px[96];
int py[96];
int fx_[96];
int fy[96];

int forces(int cutoff2) {
  int i;
  int interactions = 0;
  for (i = 0; i < 96; i++) {
    fx_[i] = 0;
    fy[i] = 0;
  }
  for (i = 0; i < 96; i++) {
    int j;
    for (j = i + 1; j < 96; j++) {
      int dx = px[i] - px[j];
      int dy = py[i] - py[j];
      int d2 = fx_mul(dx, dx) + fx_mul(dy, dy);
      if (d2 < cutoff2 && d2 > 0) {
        int f = fx_div(65536, d2);
        fx_[i] += fx_mul(f, dx);
        fy[i] += fx_mul(f, dy);
        fx_[j] -= fx_mul(f, dx);
        fy[j] -= fx_mul(f, dy);
        interactions++;
      }
    }
  }
  return interactions;
}

int main() {
  char tag[8];
  int i;
  int total = 0;
  int x = 9;
  strcpy(tag, "gro");
  for (i = 0; i < 96; i++) {
    x = (x * 75 + 74) % 65537;
    px[i] = (x % 640) << 10;
    x = (x * 75 + 74) % 65537;
    py[i] = (x % 640) << 10;
  }
  for (i = 0; i < 25; i++) {
    total += forces(40 << 16);
    px[i % 96] += 1 << 12;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* cactusADM: 3-D-flavoured stencil with mixed coefficients. *)
let cactusadm =
  fx_prelude
  ^ {|
int u[512];
int v[512];

int evolve(int dt) {
  int k;
  int acc = 0;
  for (k = 8; k < 504; k++) {
    int rhs = u[k - 8] + u[k + 8] + u[k - 1] + u[k + 1] - 4 * u[k];
    v[k] = u[k] + fx_mul(dt, rhs);
    acc = (acc + v[k]) % 1000000007;
  }
  for (k = 0; k < 512; k++) {
    u[k] = v[k];
  }
  return acc;
}

int main() {
  char tag[8];
  int t;
  int total = 0;
  strcpy(tag, "adm");
  for (t = 0; t < 512; t++) {
    u[t] = ((t * 5) % 97) << 12;
  }
  for (t = 0; t < 90; t++) {
    total = (total + evolve(3276)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* leslie3d: upwind advection sweep. *)
let leslie3d =
  fx_prelude
  ^ {|
int q[400];
int qn[400];

int advect(int vel) {
  int i;
  int acc = 0;
  for (i = 1; i < 400; i++) {
    int grad = q[i] - q[i - 1];
    qn[i] = q[i] - fx_mul(vel, grad);
    acc = (acc + qn[i]) % 1000000007;
  }
  qn[0] = qn[399];
  for (i = 0; i < 400; i++) {
    q[i] = qn[i];
  }
  return acc;
}

int main() {
  char tag[8];
  int t;
  int total = 0;
  strcpy(tag, "les");
  for (t = 0; t < 400; t++) {
    q[t] = ((t % 40) << 14) % 1048576;
  }
  for (t = 0; t < 130; t++) {
    total = (total + advect(19660)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* namd: velocity-Verlet n-body integration on a small cluster. *)
let namd =
  fx_prelude
  ^ {|
int posx[48];
int posy[48];
int velx[48];
int vely[48];

int integrate(int dt) {
  int i;
  int acc = 0;
  for (i = 0; i < 48; i++) {
    int ax = 0;
    int ay = 0;
    int j;
    for (j = 0; j < 48; j++) {
      if (j != i) {
        int dx = posx[j] - posx[i];
        int dy = posy[j] - posy[i];
        int d2 = fx_mul(dx, dx) + fx_mul(dy, dy) + 65536;
        ax += fx_div(dx, d2);
        ay += fx_div(dy, d2);
      }
    }
    velx[i] += fx_mul(dt, ax);
    vely[i] += fx_mul(dt, ay);
    posx[i] += fx_mul(dt, velx[i]);
    posy[i] += fx_mul(dt, vely[i]);
    acc = (acc + posx[i] + posy[i]) % 1000000007;
  }
  return acc;
}

int main() {
  char tag[8];
  int i;
  int total = 0;
  strcpy(tag, "nmd");
  for (i = 0; i < 48; i++) {
    posx[i] = (i % 7) << 16;
    posy[i] = (i % 11) << 16;
    velx[i] = 0;
    vely[i] = 0;
  }
  for (i = 0; i < 30; i++) {
    total = (total + integrate(655)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* dealII: conjugate-gradient-flavoured sparse mat-vec iterations. *)
let dealii =
  fx_prelude
  ^ {|
int xvec[200];
int rvec[200];
int diag[200];

int matvec_residual() {
  int i;
  int acc = 0;
  for (i = 0; i < 200; i++) {
    int left = 0;
    int right = 0;
    if (i > 0) { left = xvec[i - 1]; }
    if (i < 199) { right = xvec[i + 1]; }
    rvec[i] = fx_mul(diag[i], xvec[i]) - ((left + right) >> 1);
    acc = (acc + rvec[i]) % 1000000007;
  }
  return acc;
}

int update_x(int alpha) {
  int i;
  for (i = 0; i < 200; i++) {
    xvec[i] += fx_mul(alpha, rvec[i]);
  }
  return xvec[100];
}

int main() {
  char tag[8];
  int it;
  int total = 0;
  strcpy(tag, "dII");
  for (it = 0; it < 200; it++) {
    xvec[it] = (it % 13) << 14;
    diag[it] = (2 << 16) + ((it % 5) << 12);
  }
  for (it = 0; it < 110; it++) {
    total = (total + matvec_residual()) % 1000000007;
    total = (total + update_x(-1310)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* soplex: simplex-style pivoting over a small dense tableau. *)
let soplex =
  fx_prelude
  ^ {|
int tab[300];

int pick_pivot_col() {
  int best = -1;
  int best_v = 0;
  int j;
  for (j = 0; j < 19; j++) {
    int v = tab[14 * 20 + j];
    if (v < best_v) {
      best_v = v;
      best = j;
    }
  }
  return best;
}

int pivot(int prow, int pcol) {
  int pval = tab[prow * 20 + pcol];
  int i;
  if (pval == 0) { return 0; }
  for (i = 0; i < 15; i++) {
    if (i != prow) {
      int factor = fx_div(tab[i * 20 + pcol], pval);
      int j;
      for (j = 0; j < 20; j++) {
        tab[i * 20 + j] -= fx_mul(factor, tab[prow * 20 + j]);
        tab[i * 20 + j] = tab[i * 20 + j] % 1073741824;
      }
    }
  }
  return 1;
}

int main() {
  char tag[8];
  int round;
  int total = 0;
  int x = 13;
  strcpy(tag, "spx");
  for (round = 0; round < 40; round++) {
    int i;
    for (i = 0; i < 300; i++) {
      x = (x * 48271) % 2147483647;
      tab[i] = (x % 131072) - 65536;
    }
    int steps = 0;
    while (steps < 10) {
      int col = pick_pivot_col();
      if (col < 0) { break; }
      pivot((steps * 7 + 3) % 14, col);
      steps++;
    }
    total = (total + tab[0] + steps) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* povray: ray-sphere intersection casting over a pixel grid. *)
let povray =
  fx_prelude
  ^ {|
int sph_x[8];
int sph_y[8];
int sph_r2[8];

int cast(int rx, int ry) {
  char hit_order[8];
  int nearest = -1;
  int nearest_d = 1000000000;
  int hits = 0;
  int s;
  for (s = 0; s < 8; s++) {
    hit_order[s] = 0;
    int dx = rx - sph_x[s];
    int dy = ry - sph_y[s];
    int d2 = fx_mul(dx, dx) + fx_mul(dy, dy);
    if (d2 < sph_r2[s] && d2 < nearest_d) {
      nearest_d = d2;
      nearest = s;
      hit_order[hits % 8] = s + 1;
      hits++;
    }
  }
  if (nearest == -1) { return 0; }
  return nearest * 31 + (nearest_d >> 12) + hit_order[0];
}

int main() {
  char tag[8];
  int s;
  int total = 0;
  strcpy(tag, "pov");
  for (s = 0; s < 8; s++) {
    sph_x[s] = (s * 17 % 64) << 16;
    sph_y[s] = (s * 29 % 64) << 16;
    sph_r2[s] = (9 + s) << 16;
  }
  int py;
  for (py = 0; py < 64; py++) {
    int px;
    for (px = 0; px < 64; px++) {
      total = (total + cast(px << 16, py << 16)) % 1000000007;
    }
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* calculix: beam deflection relaxation (tridiagonal smoothing). *)
let calculix =
  fx_prelude
  ^ {|
int defl[300];
int load[300];

int relax_beam() {
  int i;
  int change = 0;
  for (i = 1; i < 299; i++) {
    int target = ((defl[i - 1] + defl[i + 1]) >> 1) + fx_mul(load[i], 163);
    int d = target - defl[i];
    if (d < 0) { d = -d; }
    change = (change + d) % 1000000007;
    defl[i] = target;
  }
  return change;
}

int main() {
  char tag[8];
  int i;
  int total = 0;
  strcpy(tag, "ccx");
  for (i = 0; i < 300; i++) {
    defl[i] = 0;
    load[i] = ((i % 30) - 15) << 10;
  }
  for (i = 0; i < 160; i++) {
    total = (total + relax_beam()) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* GemsFDTD: staggered-grid E/H field updates. *)
let gemsfdtd =
  fx_prelude
  ^ {|
int ez[440];
int hy[440];

int update_h(int coef) {
  int i;
  int acc = 0;
  for (i = 0; i < 439; i++) {
    hy[i] += fx_mul(coef, ez[i + 1] - ez[i]);
    acc = (acc + hy[i]) % 1000000007;
  }
  return acc;
}

int update_e(int coef) {
  int i;
  int acc = 0;
  for (i = 1; i < 440; i++) {
    ez[i] += fx_mul(coef, hy[i] - hy[i - 1]);
    acc = (acc + ez[i]) % 1000000007;
  }
  return acc;
}

int main() {
  char tag[8];
  int t;
  int total = 0;
  strcpy(tag, "fdt");
  for (t = 0; t < 440; t++) {
    ez[t] = 0;
    hy[t] = 0;
  }
  for (t = 0; t < 110; t++) {
    ez[220] = (t % 64) << 14;
    total = (total + update_h(32768)) % 1000000007;
    total = (total + update_e(32768)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* tonto: symmetric rank-1 updates on a triangular matrix. *)
let tonto =
  fx_prelude
  ^ {|
int sym[231];
int vecv[21];

int rank1_update(int scale) {
  int i;
  int acc = 0;
  int idx = 0;
  for (i = 0; i < 21; i++) {
    int j;
    for (j = 0; j <= i; j++) {
      sym[idx] += fx_mul(scale, fx_mul(vecv[i], vecv[j]));
      sym[idx] = sym[idx] % 1073741824;
      acc = (acc + sym[idx]) % 1000000007;
      idx++;
    }
  }
  return acc;
}

int main() {
  char tag[8];
  int r;
  int total = 0;
  int x = 37;
  strcpy(tag, "tnt");
  for (r = 0; r < 231; r++) {
    sym[r] = 0;
  }
  for (r = 0; r < 150; r++) {
    int i;
    for (i = 0; i < 21; i++) {
      x = (x * 75 + 74) % 65537;
      vecv[i] = (x % 512) << 7;
    }
    total = (total + rank1_update(655)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* lbm: lattice-Boltzmann streaming + collision over a 1-D lattice. *)
let lbm =
  fx_prelude
  ^ {|
int f0[200];
int f1[200];
int f2[200];

int collide_stream(int omega) {
  int i;
  int acc = 0;
  for (i = 0; i < 200; i++) {
    int rho = f0[i] + f1[i] + f2[i];
    int ueq = f1[i] - f2[i];
    int eq0 = fx_mul(rho, 43690);
    int eq1 = fx_mul(rho, 10922) + (ueq >> 1);
    int eq2 = fx_mul(rho, 10922) - (ueq >> 1);
    f0[i] += fx_mul(omega, eq0 - f0[i]);
    f1[i] += fx_mul(omega, eq1 - f1[i]);
    f2[i] += fx_mul(omega, eq2 - f2[i]);
    acc = (acc + rho) % 1000000007;
  }
  /* stream f1 right, f2 left */
  for (i = 199; i > 0; i--) {
    f1[i] = f1[i - 1];
  }
  for (i = 0; i < 199; i++) {
    f2[i] = f2[i + 1];
  }
  return acc;
}

int main() {
  char tag[8];
  int t;
  int total = 0;
  strcpy(tag, "lbm");
  for (t = 0; t < 200; t++) {
    f0[t] = 43690;
    f1[t] = 10922 + ((t % 9) << 8);
    f2[t] = 10922;
  }
  for (t = 0; t < 140; t++) {
    total = (total + collide_stream(45875)) % 1000000007;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* sphinx3: DTW-style acoustic alignment over feature frames. *)
let sphinx3 =
  fx_prelude
  ^ {|
int feat[320];
int model[320];
int dp[41];

int frame_cost(int f, int m) {
  int k;
  int acc = 0;
  for (k = 0; k < 8; k++) {
    int d = feat[f * 8 + k] - model[m * 8 + k];
    acc += fx_mul(d, d) >> 8;
  }
  return acc;
}

int align() {
  int m;
  int f;
  for (m = 0; m <= 40; m++) {
    dp[m] = 1000000000;
  }
  dp[0] = 0;
  for (f = 0; f < 40; f++) {
    for (m = 40; m > 0; m--) {
      int stay = dp[m];
      int move = dp[m - 1];
      int best = stay;
      if (move < stay) { best = move; }
      if (best < 1000000000) {
        dp[m] = best + frame_cost(f, m - 1);
      }
    }
    dp[0] = dp[0] + frame_cost(f, 0);
  }
  return dp[40];
}

int main() {
  char tag[8];
  int i;
  int total = 0;
  int x = 53;
  strcpy(tag, "sph");
  for (i = 0; i < 320; i++) {
    x = (x * 75 + 74) % 65537;
    feat[i] = (x % 256) << 8;
    model[i] = ((x >> 3) % 256) << 8;
  }
  for (i = 0; i < 12; i++) {
    total = (total + align()) % 1000000007;
    feat[i * 8] += 256;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

let all =
  [
    ("bwaves", bwaves);
    ("gamess", gamess);
    ("milc", milc);
    ("zeusmp", zeusmp);
    ("gromacs", gromacs);
    ("cactusADM", cactusadm);
    ("leslie3d", leslie3d);
    ("namd", namd);
    ("dealII", dealii);
    ("soplex", soplex);
    ("povray", povray);
    ("calculix", calculix);
    ("GemsFDTD", gemsfdtd);
    ("tonto", tonto);
    ("lbm", lbm);
    ("sphinx3", sphinx3);
  ]
