(* The SPECint-like half of the benchmark suite: 12 Mini-C programs, each
   modelled on the computational profile of its namesake (call-heavy,
   recursion-heavy, buffer-heavy, ...) so that per-scheme prologue overhead
   spreads across programs the way Figure 5 of the paper shows. *)

(* perlbench: string scanning, tokenising and hashing. *)
let perlbench =
  {|
int hash_str(char s[], int len) {
  char norm[32];
  int h = 5381;
  int i;
  for (i = 0; i < len; i++) {
    char c = s[i];
    if (c >= 'A' && c <= 'Z') {
      c = c + 32;
    }
    norm[i] = c;
  }
  for (i = 0; i < len; i++) {
    h = (h << 5) + h + norm[i];
    h = h & 16777215;
  }
  return h;
}

int tokenize(char line[], int len) {
  char word[32];
  int count = 0;
  int wlen = 0;
  int i;
  int h = 0;
  for (i = 0; i < len; i++) {
    if (line[i] == ' ') {
      if (wlen > 0) {
        h = h ^ hash_str(word, wlen);
        count++;
        wlen = 0;
      }
    } else {
      if (wlen < 31) {
        word[wlen] = line[i];
        wlen++;
      }
    }
  }
  if (wlen > 0) {
    h = h ^ hash_str(word, wlen);
    count++;
  }
  return count + h;
}

int fill_line(char line[], int seed, int len) {
  int i;
  int x = seed;
  for (i = 0; i < len; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    if (x % 5 == 0) {
      line[i] = ' ';
    } else {
      line[i] = 'a' + (x % 26);
    }
  }
  return x;
}

int main() {
  char line[128];
  int total = 0;
  int seed = 42;
  int round;
  for (round = 0; round < 120; round++) {
    seed = fill_line(line, seed, 128);
    total = total + tokenize(line, 128);
  }
  print_int(total);
  print_str("\n");
  return 0;
}
|}

(* bzip2: run-length encoding / decoding round trips over a buffer. *)
let bzip2 =
  {|
int rle_encode(char src[], int n, char dst[]) {
  int i = 0;
  int o = 0;
  while (i < n) {
    char c = src[i];
    int run = 1;
    while (i + run < n && src[i + run] == c && run < 200) {
      run++;
    }
    dst[o] = c;
    dst[o + 1] = run;
    o += 2;
    i += run;
  }
  return o;
}

int rle_decode(char src[], int n, char dst[]) {
  int i = 0;
  int o = 0;
  while (i < n) {
    char c = src[i];
    int run = src[i + 1];
    int j;
    for (j = 0; j < run; j++) {
      dst[o] = c;
      o++;
    }
    i += 2;
  }
  return o;
}

int checksum(char buf[], int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i++) {
    acc = (acc + buf[i]) & 65535;
  }
  return acc;
}

int main() {
  char raw[256];
  char packed[256];
  char unpacked[256];
  int round;
  int total = 0;
  int x = 7;
  for (round = 0; round < 150; round++) {
    int i;
    for (i = 0; i < 256; i++) {
      x = (x * 75 + 74) % 65537;
      raw[i] = 'a' + ((x >> 4) % 4);
    }
    total += rle_decode(packed, rle_encode(raw, 256, packed), unpacked);
    total = (total + checksum(unpacked, 256)) & 1048575;
  }
  print_int(total);
  print_str("\n");
  return 0;
}
|}

(* gcc: a recursive-descent arithmetic expression evaluator over a
   synthesised token stream (compiler front-end profile). *)
let gcc =
  {|
int toks[256];
int pos = 0;
int ntoks = 0;

int gen_tokens(int seed) {
  /* alternate number / op tokens: ops coded 1000+ */
  int i;
  int x = seed;
  ntoks = 255;
  for (i = 0; i < 255; i++) {
    x = (x * 1103515245 + 12345) & 2147483647;
    if (i % 2 == 0) {
      toks[i] = x % 97 + 1;
    } else {
      toks[i] = 1000 + (x % 3);
    }
  }
  return x;
}

int parse_factor() {
  int v = toks[pos];
  pos++;
  return v;
}

int parse_term() {
  int v = parse_factor();
  while (pos < ntoks && toks[pos] == 1002) {
    pos++;
    v = v * parse_factor();
    v = v % 1000003;
  }
  return v;
}

int parse_expr() {
  int v = parse_term();
  while (pos < ntoks && (toks[pos] == 1000 || toks[pos] == 1001)) {
    int op = toks[pos];
    pos++;
    if (op == 1000) {
      v = v + parse_term();
    } else {
      v = v - parse_term();
    }
    v = v % 1000003;
  }
  return v;
}

int main() {
  char scratch[64];
  int total = 0;
  int seed = 99;
  int round;
  for (round = 0; round < 160; round++) {
    seed = gen_tokens(seed);
    pos = 0;
    total = (total + parse_expr()) % 1000003;
    scratch[round % 64] = total;
  }
  print_int(total + scratch[0]);
  print_str("\n");
  return 0;
}
|}

(* mcf: Bellman-Ford-style relaxation over a small arc array. *)
let mcf =
  {|
int dist[64];
int arc_from[160];
int arc_to[160];
int arc_cost[160];

int build(int seed) {
  int i;
  int x = seed;
  for (i = 0; i < 160; i++) {
    x = (x * 48271) % 2147483647;
    arc_from[i] = x % 64;
    x = (x * 48271) % 2147483647;
    arc_to[i] = x % 64;
    x = (x * 48271) % 2147483647;
    arc_cost[i] = x % 100 + 1;
  }
  return x;
}

int relax_all() {
  int changed = 0;
  int i;
  for (i = 0; i < 160; i++) {
    int u = arc_from[i];
    int v = arc_to[i];
    int nd = dist[u] + arc_cost[i];
    if (nd < dist[v]) {
      dist[v] = nd;
      changed++;
    }
  }
  return changed;
}

int main() {
  char tag[16];
  int rounds = 0;
  int seed = 3;
  int trial;
  int total = 0;
  strcpy(tag, "mcf");
  for (trial = 0; trial < 40; trial++) {
    int i;
    seed = build(seed);
    for (i = 1; i < 64; i++) {
      dist[i] = 1000000;
    }
    dist[0] = 0;
    rounds = 0;
    while (relax_all() > 0 && rounds < 64) {
      rounds++;
    }
    total += dist[63] + rounds;
  }
  print_int(total + tag[0]);
  print_str("\n");
  return 0;
}
|}

(* gobmk: negamax over a tiny capture game — deep recursion profile. *)
let gobmk =
  {|
int board[16];

int evaluate() {
  int score = 0;
  int i;
  for (i = 0; i < 16; i++) {
    score += board[i] * (i + 1);
  }
  return score;
}

int negamax(int depth, int who) {
  char moves[16];
  int best = -100000;
  int i;
  if (depth == 0) {
    return who * evaluate();
  }
  for (i = 0; i < 16; i++) {
    if (board[i] == 0) {
      moves[i] = 1;
    } else {
      moves[i] = 0;
    }
  }
  for (i = 0; i < 16; i++) {
    if (moves[i] == 1) {
      int v;
      board[i] = who;
      v = -negamax(depth - 1, -who);
      board[i] = 0;
      if (v > best) {
        best = v;
      }
    }
  }
  if (best == -100000) {
    return who * evaluate();
  }
  return best;
}

int main() {
  int total = 0;
  int game;
  for (game = 0; game < 6; game++) {
    int i;
    for (i = 0; i < 16; i++) {
      if ((i + game) % 3 == 0) {
        board[i] = 1;
      } else {
        if ((i + game) % 3 == 1) {
          board[i] = -1;
        } else {
          board[i] = 0;
        }
      }
    }
    total += negamax(3, 1);
  }
  print_int(total);
  print_str("\n");
  return 0;
}
|}

(* hmmer: Viterbi dynamic programming over a profile table. *)
let hmmer =
  {|
int vit[80];
int nxt[80];
int emit_cost[320];
int trans_cost[80];

int viterbi_step(int obs) {
  int s;
  for (s = 0; s < 80; s++) {
    int stay = vit[s] + trans_cost[s];
    int move = 1000000;
    if (s > 0) {
      move = vit[s - 1] + 3;
    }
    int best = stay;
    if (move < stay) {
      best = move;
    }
    nxt[s] = best + emit_cost[(s % 4) * 80 + obs % 80];
  }
  for (s = 0; s < 80; s++) {
    vit[s] = nxt[s];
  }
  return vit[79];
}

int main() {
  char seq[200];
  int i;
  int x = 17;
  int total = 0;
  for (i = 0; i < 320; i++) {
    emit_cost[i] = (i * 7) % 23;
  }
  for (i = 0; i < 80; i++) {
    trans_cost[i] = (i * 3) % 11;
    vit[i] = 0;
  }
  for (i = 0; i < 200; i++) {
    x = (x * 75 + 74) % 65537;
    seq[i] = x % 80;
  }
  for (i = 0; i < 200; i++) {
    total = (total + viterbi_step(seq[i])) % 1000000007;
  }
  print_int(total);
  print_str("\n");
  return 0;
}
|}

(* sjeng: alpha-beta with a transposition-table flavoured hash probe. *)
let sjeng =
  {|
int tt_key[128];
int tt_val[128];

int probe(int key) {
  int idx = key % 128;
  if (idx < 0) { idx = -idx; }
  if (tt_key[idx] == key) {
    return tt_val[idx];
  }
  return -1;
}

int store(int key, int val) {
  int idx = key % 128;
  if (idx < 0) { idx = -idx; }
  tt_key[idx] = key;
  tt_val[idx] = val;
  return idx;
}

int search(int pos, int depth, int alpha, int beta) {
  char line[24];
  int cached;
  int m;
  if (depth == 0) {
    return (pos * 2654435761) % 199 - 99;
  }
  cached = probe(pos * 31 + depth);
  if (cached != -1) {
    return cached - 100;
  }
  line[depth % 24] = depth;
  for (m = 0; m < 4; m++) {
    int child = pos * 5 + m * 3 + 1;
    int v = -search(child % 100000, depth - 1, -beta, -alpha);
    if (v > alpha) {
      alpha = v;
    }
    if (alpha >= beta) {
      break;
    }
  }
  for (m = 0; m < 24; m++) {
    line[m] = (line[m] + depth) & 127;
  }
  store(pos * 31 + depth, alpha + 100 + line[depth % 24] - depth);
  return alpha;
}

int main() {
  int total = 0;
  int root;
  for (root = 0; root < 24; root++) {
    total += search(root * 977, 5, -10000, 10000);
  }
  print_int(total);
  print_str("\n");
  return 0;
}
|}

(* libquantum: gate simulation by bit-twiddling a register vector. *)
let libquantum =
  {|
int amp[256];

int hadamard_like(int target) {
  int i;
  int mask = 1 << 0;
  int touched = 0;
  mask = 1;
  if (target == 1) { mask = 2; }
  if (target == 2) { mask = 4; }
  if (target == 3) { mask = 8; }
  if (target == 4) { mask = 16; }
  if (target == 5) { mask = 32; }
  if (target == 6) { mask = 64; }
  if (target == 7) { mask = 128; }
  for (i = 0; i < 256; i++) {
    if ((i & mask) == 0) {
      int a = amp[i];
      int b = amp[i | mask];
      amp[i] = (a + b) % 65521;
      amp[i | mask] = (a - b) % 65521;
      touched++;
    }
  }
  return touched;
}

int cnot_like(int ctrl_mask, int tgt_mask) {
  int i;
  int swaps = 0;
  for (i = 0; i < 256; i++) {
    if ((i & ctrl_mask) != 0 && (i & tgt_mask) == 0) {
      int tmp = amp[i];
      amp[i] = amp[i | tgt_mask];
      amp[i | tgt_mask] = tmp;
      swaps++;
    }
  }
  return swaps;
}

int main() {
  char circuit[64];
  int i;
  int total = 0;
  for (i = 0; i < 256; i++) {
    amp[i] = i;
  }
  for (i = 0; i < 64; i++) {
    circuit[i] = i % 8;
  }
  for (i = 0; i < 64; i++) {
    total += hadamard_like(circuit[i]);
    total += cnot_like(1 << 2, 1 << 5);
    total = total % 1000003;
  }
  print_int(total + amp[17]);
  print_str("\n");
  return 0;
}
|}

(* h264ref: sum-of-absolute-differences block matching (motion search). *)
let h264ref =
  {|
int frame_a[1024];
int frame_b[1024];

int sad_block(int ax, int ay, int bx, int by) {
  int acc = 0;
  int dy;
  for (dy = 0; dy < 8; dy++) {
    int dx;
    for (dx = 0; dx < 8; dx++) {
      int d = frame_a[(ay + dy) * 32 + ax + dx] - frame_b[(by + dy) * 32 + bx + dx];
      if (d < 0) { d = -d; }
      acc += d;
    }
  }
  return acc;
}

int best_match(int ax, int ay) {
  char visited[25];
  int best = 1000000000;
  int oy;
  for (oy = 0; oy < 5; oy++) {
    int ox;
    for (ox = 0; ox < 5; ox++) {
      int s;
      visited[oy * 5 + ox] = 1;
      s = sad_block(ax, ay, ox * 4, oy * 4);
      if (s < best) {
        best = s;
      }
    }
  }
  return best + visited[12] - 1;
}

int main() {
  int i;
  int total = 0;
  int x = 5;
  for (i = 0; i < 1024; i++) {
    x = (x * 75 + 74) % 65537;
    frame_a[i] = x % 256;
    frame_b[i] = (x >> 3) % 256;
  }
  for (i = 0; i < 9; i++) {
    total += best_match((i % 3) * 8, (i / 3) * 8);
  }
  print_int(total);
  print_str("\n");
  return 0;
}
|}

(* omnetpp: discrete event simulation with a binary-heap event queue. *)
let omnetpp =
  {|
int heap_t[128];
int heap_id[128];
int heap_n = 0;

int heap_push(int time, int id) {
  int i = heap_n;
  heap_n++;
  heap_t[i] = time;
  heap_id[i] = id;
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (heap_t[parent] <= heap_t[i]) {
      break;
    }
    int tt = heap_t[parent]; heap_t[parent] = heap_t[i]; heap_t[i] = tt;
    int ti = heap_id[parent]; heap_id[parent] = heap_id[i]; heap_id[i] = ti;
    i = parent;
  }
  return heap_n;
}

int heap_pop() {
  int top = heap_id[0];
  int i = 0;
  heap_n--;
  heap_t[0] = heap_t[heap_n];
  heap_id[0] = heap_id[heap_n];
  while (1) {
    int l = 2 * i + 1;
    int r = 2 * i + 2;
    int m = i;
    if (l < heap_n && heap_t[l] < heap_t[m]) { m = l; }
    if (r < heap_n && heap_t[r] < heap_t[m]) { m = r; }
    if (m == i) { break; }
    int tt = heap_t[m]; heap_t[m] = heap_t[i]; heap_t[i] = tt;
    int ti = heap_id[m]; heap_id[m] = heap_id[i]; heap_id[i] = ti;
    i = m;
  }
  return top;
}

int dispatch_event(int id, int now) {
  char name[16];
  name[0] = 'e';
  name[1] = 'v';
  name[2] = '0' + (id % 10);
  name[3] = 0;
  return strlen(name) + id * now;
}

int main() {
  char kind[8];
  int clock = 0;
  int processed = 0;
  int x = 11;
  int total = 0;
  strcpy(kind, "evt");
  heap_push(5, 1);
  heap_push(3, 2);
  heap_push(9, 3);
  while (processed < 4000) {
    int id = heap_pop();
    processed++;
    x = (x * 48271) % 2147483647;
    clock += x % 7;
    total = (total + dispatch_event(id, clock)) % 1000000007;
    if (heap_n < 100) {
      heap_push(clock + (x % 13), (id * 3 + 1) % 97);
      if (x % 2 == 0) {
        heap_push(clock + (x % 29), (id * 5 + 2) % 97);
      }
    }
  }
  print_int(total + kind[0]);
  print_str("\n");
  return 0;
}
|}

(* astar: grid pathfinding with open-list scans and heuristics. *)
let astar =
  {|
int grid[400];
int gscore[400];
int open_set[400];

int heuristic(int a, int b) {
  int ax = a % 20;
  int ay = a / 20;
  int bx = b % 20;
  int by = b / 20;
  int dx = ax - bx;
  int dy = ay - by;
  if (dx < 0) { dx = -dx; }
  if (dy < 0) { dy = -dy; }
  return dx + dy;
}

int pick_best(int goal) {
  int best = -1;
  int best_f = 1000000000;
  int i;
  for (i = 0; i < 400; i++) {
    if (open_set[i] == 1) {
      int f = gscore[i] + heuristic(i, goal);
      if (f < best_f) {
        best_f = f;
        best = i;
      }
    }
  }
  return best;
}

int try_step(int cur, int nb, int goal) {
  if (nb < 0 || nb >= 400) { return 0; }
  if (grid[nb] == 1) { return 0; }
  int cand = gscore[cur] + 1;
  if (cand < gscore[nb]) {
    gscore[nb] = cand;
    open_set[nb] = 1;
  }
  return goal == nb;
}

int expand(int cur, int goal) {
  int nbrs[4];
  int k;
  int reached = 0;
  nbrs[0] = cur - 1;
  nbrs[1] = cur + 1;
  nbrs[2] = cur - 20;
  nbrs[3] = cur + 20;
  for (k = 0; k < 4; k++) {
    reached = reached + try_step(cur, nbrs[k], goal);
  }
  return reached;
}

int solve(int start, int goal) {
  int i;
  for (i = 0; i < 400; i++) {
    gscore[i] = 1000000;
    open_set[i] = 0;
  }
  gscore[start] = 0;
  open_set[start] = 1;
  int iter = 0;
  while (iter < 1200) {
    int cur = pick_best(goal);
    if (cur == -1) { return -1; }
    if (cur == goal) { return gscore[goal]; }
    open_set[cur] = 0;
    expand(cur, goal);
    iter++;
  }
  return -2;
}

int main() {
  char name[8];
  int i;
  int x = 23;
  int total = 0;
  strcpy(name, "map");
  for (i = 0; i < 400; i++) {
    x = (x * 75 + 74) % 65537;
    if (x % 6 == 0 && i != 0 && i != 399) {
      grid[i] = 1;
    } else {
      grid[i] = 0;
    }
  }
  total += solve(0, 399);
  total += solve(19, 380);
  print_int(total + name[0]);
  print_str("\n");
  return 0;
}
|}

(* xalancbmk: XML-flavoured tag parsing with an explicit element stack. *)
let xalancbmk =
  {|
int gen_doc(char doc[], int cap, int seed) {
  int i = 0;
  int x = seed;
  int depth = 0;
  while (i < cap - 8) {
    x = (x * 1103515245 + 12345) & 2147483647;
    if ((x % 3 != 0 || depth == 0) && depth < 12) {
      doc[i] = '<';
      doc[i + 1] = 'a' + (depth % 26);
      doc[i + 2] = '>';
      i += 3;
      depth++;
    } else {
      doc[i] = '<';
      doc[i + 1] = '/';
      depth--;
      doc[i + 2] = 'a' + (depth % 26);
      doc[i + 3] = '>';
      i += 4;
    }
  }
  while (depth > 0) {
    depth--;
    if (i + 4 <= cap) {
      doc[i] = '<';
      doc[i + 1] = '/';
      doc[i + 2] = 'a' + (depth % 26);
      doc[i + 3] = '>';
      i += 4;
    }
  }
  return i;
}

int match_tag(char stack[], int sp, char c) {
  char expected[4];
  if (sp == 0) {
    return 0;
  }
  expected[0] = stack[sp - 1];
  expected[1] = 0;
  if (expected[0] != c) {
    return 0;
  }
  return 1;
}

int parse_doc(char doc[], int len) {
  char stack[32];
  int sp = 0;
  int i = 0;
  int wellformed = 1;
  int elements = 0;
  while (i + 2 < len) {
    if (doc[i] == '<' && doc[i + 1] == '/') {
      if (match_tag(stack, sp, doc[i + 2]) == 0) {
        wellformed = 0;
      } else {
        sp--;
      }
      i += 4;
    } else {
      if (doc[i] == '<') {
        if (sp < 32) {
          stack[sp] = doc[i + 1];
          sp++;
          elements++;
        }
        i += 3;
      } else {
        i++;
      }
    }
  }
  return elements * 2 + wellformed * 100000 + sp;
}

int main() {
  char doc[512];
  int total = 0;
  int seed = 77;
  int round;
  for (round = 0; round < 60; round++) {
    int len = gen_doc(doc, 512, seed + round);
    total = (total + parse_doc(doc, len)) % 1000000007;
  }
  print_int(total);
  print_str("\n");
  return 0;
}
|}

let all =
  [
    ("perlbench", perlbench);
    ("bzip2", bzip2);
    ("gcc", gcc);
    ("mcf", mcf);
    ("gobmk", gobmk);
    ("hmmer", hmmer);
    ("sjeng", sjeng);
    ("libquantum", libquantum);
    ("h264ref", h264ref);
    ("omnetpp", omnetpp);
    ("astar", astar);
    ("xalancbmk", xalancbmk);
  ]
