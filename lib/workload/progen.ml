open Minic.Ast

type st = {
  rng : Util.Prng.t;
  mutable fresh : int;
  mutable scalars : string list;  (** int locals in scope *)
  buffer : string;  (** the function's char buffer *)
  buffer_len : int;
  callees : (string * int) list;  (** previously generated (name, arity) *)
}

let fresh st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s%d" prefix st.fresh

let pick st xs = List.nth xs (Util.Prng.int st.rng (List.length xs))

let small_int st = Eint (Int64.of_int (Util.Prng.int st.rng 200 - 100))

(* ---- expressions ----------------------------------------------------------- *)

let rec gen_expr st depth =
  if depth = 0 then gen_leaf st
  else
    match Util.Prng.int st.rng 10 with
    | 0 | 1 | 2 ->
      let op = pick st [ Add; Sub; Mul; Band; Bor; Bxor ] in
      Ebinop (op, gen_expr st (depth - 1), gen_expr st (depth - 1))
    | 3 ->
      (* division guarded by a non-zero literal divisor *)
      let d = 1 + Util.Prng.int st.rng 30 in
      Ebinop
        ( pick st [ Div; Rem ],
          gen_expr st (depth - 1),
          Eint (Int64.of_int d) )
    | 4 ->
      Ebinop
        ( pick st [ Eq; Ne; Lt; Le; Gt; Ge ],
          gen_expr st (depth - 1),
          gen_expr st (depth - 1) )
    | 5 -> Ebinop (pick st [ Land; Lor ], gen_expr st (depth - 1), gen_expr st (depth - 1))
    | 6 -> Ebinop (pick st [ Shl; Shr ], gen_expr st (depth - 1), Eint (Int64.of_int (Util.Prng.int st.rng 8)))
    | 7 -> Eunop (pick st [ Neg; Lnot; Bnot ], gen_expr st (depth - 1))
    | 8 when st.callees <> [] ->
      let name, arity = pick st st.callees in
      Ecall (name, List.init arity (fun _ -> gen_expr st (depth - 1)))
    | _ ->
      (* an in-bounds buffer read: index masked by a literal *)
      let idx = Util.Prng.int st.rng st.buffer_len in
      Eindex (Evar st.buffer, Eint (Int64.of_int idx))

and gen_leaf st =
  if st.scalars <> [] && Util.Prng.bool st.rng then Evar (pick st st.scalars)
  else small_int st

(* ---- statements ------------------------------------------------------------- *)

let rec gen_stmt st depth =
  match Util.Prng.int st.rng 8 with
  | 0 | 1 when st.scalars <> [] ->
    Sassign (Evar (pick st st.scalars), gen_expr st 2)
  | 2 ->
    (* in-bounds buffer write *)
    let idx = Util.Prng.int st.rng st.buffer_len in
    Sassign
      ( Eindex (Evar st.buffer, Eint (Int64.of_int idx)),
        Ebinop (Band, gen_expr st 1, Eint 127L) )
  | 3 when depth > 0 ->
    (* variables introduced inside a branch may never be initialised at
       runtime (the branch may not run), so they must not leak into the
       enclosing scope *)
    let saved = st.scalars in
    let then_ = gen_block st (depth - 1) in
    st.scalars <- saved;
    let else_ = gen_block st (depth - 1) in
    st.scalars <- saved;
    Sif (gen_expr st 2, then_, else_)
  | 4 when depth > 0 ->
    (* a bounded counting loop over a fresh variable *)
    let v = fresh st "i" in
    let bound = 1 + Util.Prng.int st.rng 8 in
    let body = gen_block st (depth - 1) in
    st.scalars <- v :: st.scalars;
    Sblock
      [
        Sdecl { d_name = v; d_ty = Tint; d_critical = false; d_init = Some (Eint 0L) };
        Swhile
          ( Ebinop (Lt, Evar v, Eint (Int64.of_int bound)),
            body @ [ Sassign (Evar v, Ebinop (Add, Evar v, Eint 1L)) ] );
      ]
  | 5 -> Sexpr (Ecall ("print_int", [ gen_expr st 2 ]))
  | _ when st.scalars <> [] ->
    Sassign
      ( Evar (pick st st.scalars),
        Ebinop (Add, Evar (pick st st.scalars), gen_expr st 1) )
  | _ -> Sexpr (gen_expr st 1)

and gen_block st depth =
  List.init (1 + Util.Prng.int st.rng 3) (fun _ -> gen_stmt st depth)

(* ---- functions ------------------------------------------------------------- *)

let gen_function rng ~name ~callees ~fresh_base =
  let arity = 1 + Util.Prng.int rng 3 in
  let params = List.init arity (fun i -> (Printf.sprintf "%s_p%d" name i, Tint)) in
  let buffer = name ^ "_buf" in
  let buffer_len = 8 * (1 + Util.Prng.int rng 3) in
  let st =
    {
      rng;
      fresh = fresh_base;
      scalars = List.map fst params;
      buffer;
      buffer_len;
      callees;
    }
  in
  let acc = name ^ "_acc" in
  st.scalars <- acc :: st.scalars;
  let init_var = name ^ "_k" in
  let body =
    [
      Sdecl { d_name = buffer; d_ty = Tarray (Tchar, buffer_len); d_critical = false; d_init = None };
      Sdecl { d_name = acc; d_ty = Tint; d_critical = false; d_init = Some (Eint 0L) };
      (* initialise the whole buffer: uninitialised stack reads would
         differ between frame layouts (i.e. between schemes) *)
      Sdecl { d_name = init_var; d_ty = Tint; d_critical = false; d_init = Some (Eint 0L) };
      Swhile
        ( Ebinop (Lt, Evar init_var, Eint (Int64.of_int buffer_len)),
          [
            Sassign
              ( Eindex (Evar buffer, Evar init_var),
                Ebinop (Band, Ebinop (Mul, Evar init_var, Eint 13L), Eint 127L) );
            Sassign (Evar init_var, Ebinop (Add, Evar init_var, Eint 1L));
          ] );
    ]
    @ List.concat (List.init 3 (fun _ -> [ gen_stmt st 2 ]))
    @ [
        Sreturn
          (Some
             (Ebinop
                ( Band,
                  Ebinop (Add, Evar acc, Eindex (Evar buffer, Eint 0L)),
                  Eint 0xFFFFFL )));
      ]
  in
  ({ f_name = name; f_params = params; f_ret = Tint; f_body = body }, st.fresh)

let generate ~seed =
  let rng = Util.Prng.create seed in
  let nfuncs = 2 + Util.Prng.int rng 3 in
  let rec build i callees fresh_base funcs =
    if i = nfuncs then List.rev funcs
    else begin
      let name = Printf.sprintf "fn%d" i in
      let f, fresh_base =
        gen_function rng ~name ~callees ~fresh_base
      in
      build (i + 1) ((name, List.length f.f_params) :: callees) fresh_base (f :: funcs)
    end
  in
  let funcs = build 0 [] 0 [] in
  let main_body =
    List.concat_map
      (fun f ->
        let args =
          List.map (fun _ -> Eint (Int64.of_int (Util.Prng.int rng 50))) f.f_params
        in
        [
          Sexpr (Ecall ("print_int", [ Ecall (f.f_name, args) ]));
          Sexpr (Ecall ("putchar", [ Echar ' ' ]));
        ])
      funcs
    @ [ Sreturn (Some (Eint 0L)) ]
  in
  {
    globals =
      [ { d_name = "gseed"; d_ty = Tint; d_critical = false; d_init = Some (Eint 3L) } ];
    funcs =
      funcs
      @ [ { f_name = "main"; f_params = []; f_ret = Tint; f_body = main_body } ];
  }

let generate_source ~seed = Minic.Pretty.program_to_string (generate ~seed)
