(** Top-level binary instrumentation: upgrade an SSP-compiled image to
    P-SSP (the paper's ~1100-LoC binary rewriter).

    For dynamically linked binaries only the function prologues and
    epilogues change (zero code expansion, Table II); the modified
    [__stack_chk_fail] arrives at runtime via the preload library. For
    statically linked binaries a new section with P-SSP-aware glibc
    replacements is appended and the embedded stubs are hooked. *)

type report = {
  prologues_patched : int;
  epilogues_patched : int;
  stubs_hooked : int;
  bytes_added : int;
  original_size : int;
}

val pp_report : Format.formatter -> report -> unit

val instrument : Os.Image.t -> Os.Image.t * report
(** Returns a patched deep copy tagged ["pssp-instr"] (dynamic) or
    ["pssp-instr-static"]; the input image is untouched.
    Raises [Patch.Patch_error] on layout violations (none occur for
    mcc-produced SSP binaries — asserted by tests). *)

val required_preload : Os.Image.t -> Os.Preload.mode
(** What to run an image under: instrumented dynamic binaries need the
    packed-shadow preload; instrumented static binaries are
    self-contained; everything else keeps its compiler-chosen mode. *)
