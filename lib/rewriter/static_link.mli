(** Dyninst-style treatment of statically linked binaries (§V-D).

    A new code section is appended holding P-SSP-aware replacements for
    the embedded glibc functions, plus a constructor; the original
    [fork] / [pthread_create] / [__stack_chk_fail] stubs are hooked with
    a [jmp] at their entry. This is the source of the 2.78% code
    expansion Table II reports for static binaries. *)

type added = {
  extra_base : int64;
  check_addr : int64;  (** combined check-and-fail (Figs. 3/4) *)
  fork_addr : int64;  (** fork wrapper refreshing the child's shadow *)
  pthread_addr : int64;
  ctor_addr : int64;  (** [setup_p-ssp]: initial shadow before main *)
}

val append_section : Os.Image.t -> added
(** Build and attach the extra section (mutates the image's [extra]
    fields) and register its symbols, including ["__pssp_ctor"] which
    the loader runs before [main]. *)

val hook_stub : Os.Image.t -> stub:string -> target:int64 -> bool
(** Overwrite the named stub's entry with [jmp target] (padded with
    [nop]). Returns [false] if the stub symbol is absent. *)
